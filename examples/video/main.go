// Video example: compete with a DASH video client (the Fig. 11
// workload). A 1080p client is application-limited (inelastic): Nimbus
// stays in delay mode and keeps the queue short. A 4K client wants more
// than its fair share (elastic): Nimbus switches to TCP-competitive mode
// and defends its throughput.
//
// Run with: go run ./examples/video
package main

import (
	"fmt"

	"nimbus/internal/cc"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/exp"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

func main() {
	dur := 90 * sim.Second
	for _, quality := range []string{"1080p", "4k"} {
		r := exp.NewRig(exp.NetConfig{
			RateMbps: 48,
			RTT:      50 * sim.Millisecond,
			Buffer:   100 * sim.Millisecond,
			Seed:     7,
		})
		sch := exp.MustScheme("nimbus", r.MuBps)
		probe := r.AddFlow(sch, 50*sim.Millisecond, 0)

		ladder := crosstraffic.Ladder1080p
		if quality == "4k" {
			ladder = crosstraffic.Ladder4K
		}
		video := &crosstraffic.VideoClient{
			Net:    r.Net,
			Rng:    r.Rng.Split("video"),
			RTT:    50 * sim.Millisecond,
			Ladder: ladder,
			NewCC:  func() transport.Controller { return cc.NewCubic() },
		}
		video.Start(0)

		r.Sch.RunUntil(dur)

		qd := probe.Delay.Summary()
		fmt.Printf("%s video: nimbus %.1f Mbit/s (qdelay mean %.1f ms), video %.1f Mbit/s avg bitrate %.1f Mbit/s, rebuffers %d, final mode %s\n",
			quality,
			probe.MeanMbps(5*sim.Second, dur), qd.Mean,
			float64(video.Sender().DeliveredBytes)*8/dur.Seconds()/1e6,
			video.MeanBitrate()/1e6,
			video.Rebuffers,
			sch.Nimbus.Mode())
	}
	fmt.Println("\nexpected: delay mode + low delay vs 1080p; competitive mode + fair share vs 4K")
}
