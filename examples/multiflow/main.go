// Multiflow example: three Nimbus flows share a bottleneck using the
// pulser/watcher protocol (§6). With no explicit coordination, exactly
// one flow pulses at a time; the others infer its mode from the FFT of
// their own receive rates and follow it. The flows share fairly and keep
// the queue short.
//
// Run with: go run ./examples/multiflow
package main

import (
	"fmt"

	"nimbus/internal/core"
	"nimbus/internal/exp"
	"nimbus/internal/sim"
)

func main() {
	r := exp.NewRig(exp.NetConfig{
		RateMbps: 96,
		RTT:      50 * sim.Millisecond,
		Buffer:   100 * sim.Millisecond,
		Seed:     3,
	})
	var flows []*core.Nimbus
	var probes []*exp.FlowProbe
	for i := 0; i < 3; i++ {
		s := exp.MustScheme("nimbus(multiflow=true)", r.MuBps)
		flows = append(flows, s.Nimbus)
		probes = append(probes, r.AddFlow(s, 50*sim.Millisecond, 0))
	}

	fmt.Printf("%6s %28s %22s %10s\n", "t(s)", "per-flow Mbit/s", "roles", "qdelay ms")
	var prev []uint64 = make([]uint64, 3)
	var report func()
	report = func() {
		now := r.Sch.Now()
		if now > 0 && int(now.Seconds())%5 == 0 {
			rates := ""
			roles := ""
			for i, p := range probes {
				rates += fmt.Sprintf(" %8.1f", float64(p.Sender.DeliveredBytes-prev[i])*8/5e6)
				prev[i] = p.Sender.DeliveredBytes
				roles += fmt.Sprintf(" %7s", flows[i].Role())
			}
			fmt.Printf("%6.0f %s %s %10.1f\n", now.Seconds(), rates, roles, r.Net.QueueDelayNow().Millis())
		}
		if now < 60*sim.Second {
			r.Sch.After(sim.Second, report)
		}
	}
	r.Sch.After(sim.Second, report)
	r.Sch.RunUntil(60 * sim.Second)
	fmt.Println("\nexpected: one pulser, two watchers; ~32 Mbit/s each; queue a few ms (delay mode)")
}
