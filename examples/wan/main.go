// WAN example: a bulk Nimbus transfer sharing a 96 Mbit/s link with the
// heavy-tailed trace workload (the paper's CAIDA-derived cross traffic),
// compared against Cubic and Vegas on the same workload and seed. This
// is the Fig. 9 scenario as a library consumer would write it.
//
// Run with: go run ./examples/wan
package main

import (
	"fmt"

	"nimbus/internal/exp"
	"nimbus/internal/sim"
)

func main() {
	dur := 60 * sim.Second
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "scheme", "Mbit/s", "median RTT", "p95 RTT", "p95 qdelay")
	for _, scheme := range []string{"nimbus", "cubic", "vegas"} {
		r := exp.NewRig(exp.NetConfig{
			RateMbps: 96,
			RTT:      50 * sim.Millisecond,
			Buffer:   100 * sim.Millisecond,
			Seed:     42,
		})
		sch := exp.MustScheme(scheme, r.MuBps)
		probe := r.AddFlow(sch, 50*sim.Millisecond, 0)
		if err := exp.AddCross(r, "trace", 0.5*r.MuBps, 50*sim.Millisecond); err != nil {
			panic(err)
		}
		r.Sch.RunUntil(dur)
		rtt := probe.RTTms.Summary()
		qd := probe.Delay.Summary()
		fmt.Printf("%-8s %10.1f %9.0f ms %9.0f ms %9.0f ms\n",
			scheme, probe.MeanMbps(5*sim.Second, dur), rtt.P50, rtt.P95, qd.P95)
	}
	fmt.Println("\nexpected: nimbus ~ cubic throughput at a much lower median RTT; vegas loses throughput")
}
