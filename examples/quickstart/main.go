// Quickstart: run one Nimbus flow against cross traffic that changes
// from elastic (a Cubic flow) to inelastic (a constant-bit-rate stream)
// and watch the elasticity detector switch modes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

func main() {
	// 1. Build the network: a 48 Mbit/s bottleneck with 100 ms of
	// buffering (the Fig. 1 configuration).
	sch := sim.NewScheduler()
	rate := 48e6
	link := netem.NewLink(sch, rate, netem.NewDropTail(netem.BufferBytesForDelay(rate, 100*sim.Millisecond)))
	net := netem.NewNetwork(sch, link)
	rng := sim.NewRand(1)

	// 2. Build a Nimbus flow: Cubic in TCP-competitive mode, BasicDelay
	// in delay-control mode, oracle knowledge of the link rate.
	nimbus := core.NewNimbus(core.Config{
		Mu:          core.Oracle{Rate: rate},
		Competitive: cc.NewCubic(),
	})
	sender := transport.NewSender(net, 50*sim.Millisecond, nimbus, transport.Backlogged{}, rng)
	sender.Start(0)

	// 3. Cross traffic: a Cubic flow for 30-90 s, then 24 Mbit/s CBR
	// for 90-150 s.
	cubic := transport.NewSender(net, 50*sim.Millisecond, cc.NewCubic(), transport.Backlogged{}, rng.Split("cubic"))
	cubic.Start(30 * sim.Second)
	sch.At(90*sim.Second, func() {
		cubic.Stop()
		net.Detach(cubic.ID())
	})
	cbr := crosstraffic.NewCBR(net, 40*sim.Millisecond, 24e6)
	cbr.Start(90 * sim.Second)

	// 4. Report once per second.
	fmt.Printf("%6s %12s %12s %8s %8s\n", "t(s)", "nimbus Mbps", "qdelay ms", "eta", "mode")
	var lastBytes uint64
	var report func()
	report = func() {
		now := sch.Now()
		mbps := float64(sender.DeliveredBytes-lastBytes) * 8 / 1e6
		lastBytes = sender.DeliveredBytes
		if now > 0 && int(now.Seconds())%5 == 0 {
			fmt.Printf("%6.0f %12.1f %12.1f %8.2f %8s\n",
				now.Seconds(), mbps, net.QueueDelayNow().Millis(),
				nimbus.LastEta(), nimbus.Mode())
		}
		if now < 150*sim.Second {
			sch.After(sim.Second, report)
		}
	}
	sch.After(sim.Second, report)

	sch.RunUntil(150 * sim.Second)
	fmt.Printf("\nmode switches: %d (expect: into competitive ~35s, back to delay ~95s)\n", nimbus.ModeSwitches)
}
