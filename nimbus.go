// Package nimbus is the public facade of this repository: a faithful
// reproduction of "Elasticity Detection: A Building Block for Internet
// Congestion Control" (Goyal et al.), comprising the elasticity detector,
// the Nimbus mode-switching congestion controller, every congestion
// control baseline the paper evaluates, a packet-level discrete-event
// network emulator, the paper's cross-traffic workloads, and a harness
// that regenerates every table and figure (see DESIGN.md).
//
// The exported names here are aliases for the implementation packages
// under internal/, so downstream users get one import:
//
//	det := nimbus.NewDetector(nimbus.DefaultDetectorConfig())
//	ctrl := nimbus.New(nimbus.Config{Mu: nimbus.Oracle{Rate: 96e6}, Competitive: nimbus.NewCubic()})
//
// For ready-made experiment scenarios, see RunExperiment and cmd/.
package nimbus

import (
	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/exp"
	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Core contribution: the elasticity detector and the Nimbus controller.
type (
	// Detector is the FFT-based elasticity detector (§3).
	Detector = core.Detector
	// DetectorConfig parameterizes the detector.
	DetectorConfig = core.DetectorConfig
	// Pulse is the asymmetric sinusoidal rate pulse (Fig. 7).
	Pulse = core.Pulse
	// Config parameterizes a Nimbus flow (§4).
	Config = core.Config
	// Nimbus is the mode-switching congestion controller.
	Nimbus = core.Nimbus
	// Telemetry is the per-tick snapshot Nimbus reports.
	Telemetry = core.Telemetry
	// Mode is delay-control or TCP-competitive.
	Mode = core.Mode
	// Role is pulser or watcher (§6).
	Role = core.Role
	// MuEstimator supplies the bottleneck rate µ.
	MuEstimator = core.MuEstimator
	// Oracle is a MuEstimator that returns a known link rate.
	Oracle = core.Oracle
	// BasicDelayConfig parameterizes the BasicDelay algorithm (Eq. 4).
	BasicDelayConfig = core.BasicDelayConfig
)

// Modes and roles.
const (
	ModeDelay       = core.ModeDelay
	ModeCompetitive = core.ModeCompetitive
	RolePulser      = core.RolePulser
	RoleWatcher     = core.RoleWatcher
)

// New returns a Nimbus controller (attach it to a transport.Sender or an
// exp.Rig).
func New(cfg Config) *Nimbus { return core.NewNimbus(cfg) }

// NewDetector returns a standalone elasticity detector; feed it
// cross-traffic rate samples and read Elasticity/Elastic.
func NewDetector(cfg DetectorConfig) *Detector { return core.NewDetector(cfg) }

// DefaultDetectorConfig returns the paper's detector parameters (10 ms
// samples, 5 s FFT, ηthresh = 2).
func DefaultDetectorConfig() DetectorConfig { return core.DefaultDetectorConfig() }

// EstimateZ implements the cross-traffic rate estimator ẑ = µS/R − S
// (Eq. 1).
func EstimateZ(mu, S, R float64) float64 { return core.EstimateZ(mu, S, R) }

// BasicDelayRate computes the BasicDelay sending rate (Eq. 4).
func BasicDelayRate(cfg BasicDelayConfig, mu, S, z float64, x, xmin sim.Time) float64 {
	return core.BasicDelayRate(cfg, mu, S, z, x, xmin)
}

// NewMaxReceiveRate returns the BBR-style µ estimator used by the
// paper's implementation.
func NewMaxReceiveRate(window sim.Time) MuEstimator { return core.NewMaxReceiveRate(window) }

// Congestion control baselines (all implement transport.Controller).
var (
	NewCubic    = cc.NewCubic
	NewReno     = cc.NewReno
	NewVegas    = cc.NewVegas
	NewCopa     = cc.NewCopa
	NewBBR      = cc.NewBBR
	NewVivace   = cc.NewVivace
	NewCompound = cc.NewCompound
)

// Simulation substrate re-exports.
type (
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Scheduler is the discrete-event loop.
	Scheduler = sim.Scheduler
	// Network is the single-bottleneck topology (Fig. 2).
	Network = netem.Network
	// Link is the rate-limited bottleneck.
	Link = netem.Link
	// Packet is a data packet at the bottleneck.
	Packet = netem.Packet
	// Sender is the transport endpoint controllers plug into.
	Sender = transport.Sender
	// Controller is the congestion-control interface.
	Controller = transport.Controller
)

// Experiment harness re-exports.
type (
	// Rig is a ready-made bottleneck network for experiments.
	Rig = exp.Rig
	// NetConfig configures a Rig.
	NetConfig = exp.NetConfig
	// Scheme is a named congestion controller.
	Scheme = exp.Scheme
	// SchemeOpts tunes scheme construction.
	SchemeOpts = exp.SchemeOpts
)

// NewRig builds an emulated bottleneck.
func NewRig(cfg NetConfig) *Rig { return exp.NewRig(cfg) }

// NewScheme builds a congestion controller by name ("nimbus", "cubic",
// "bbr", ...; see internal/exp.NewScheme for the full list).
func NewScheme(name string, muBps float64, opts SchemeOpts) Scheme {
	return exp.NewScheme(name, muBps, opts)
}

// RunExperiment regenerates one of the paper's tables or figures by id
// ("fig01".."fig26", "table1", "tableE") and returns the textual report.
// quick=true uses shortened horizons suitable for tests and benchmarks.
func RunExperiment(id string, seed int64, quick bool) (string, error) {
	return exp.Run(id, seed, quick)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return exp.IDs() }
