// Package nimbus is the public facade of this repository: a faithful
// reproduction of "Elasticity Detection: A Building Block for Internet
// Congestion Control" (Goyal et al.), comprising the elasticity detector,
// the Nimbus mode-switching congestion controller, every congestion
// control baseline the paper evaluates, a packet-level discrete-event
// network emulator, the paper's cross-traffic workloads, and a harness
// that regenerates every table and figure (see DESIGN.md).
//
// The exported names here are aliases for the implementation packages
// under internal/, so downstream users get one import:
//
//	det := nimbus.NewDetector(nimbus.DefaultDetectorConfig())
//	ctrl := nimbus.New(nimbus.Config{Mu: nimbus.Oracle{Rate: 96e6}, Competitive: nimbus.NewCubic()})
//
// For ready-made experiment scenarios, see RunExperiment and cmd/.
package nimbus

import (
	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/exp"
	"nimbus/internal/netem"
	"nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Core contribution: the elasticity detector and the Nimbus controller.
type (
	// Detector is the FFT-based elasticity detector (§3).
	Detector = core.Detector
	// DetectorConfig parameterizes the detector.
	DetectorConfig = core.DetectorConfig
	// Pulse is the asymmetric sinusoidal rate pulse (Fig. 7).
	Pulse = core.Pulse
	// Config parameterizes a Nimbus flow (§4).
	Config = core.Config
	// Nimbus is the mode-switching congestion controller.
	Nimbus = core.Nimbus
	// Telemetry is the per-tick snapshot Nimbus reports.
	Telemetry = core.Telemetry
	// Mode is delay-control or TCP-competitive.
	Mode = core.Mode
	// Role is pulser or watcher (§6).
	Role = core.Role
	// MuEstimator supplies the bottleneck rate µ.
	MuEstimator = core.MuEstimator
	// Oracle is a MuEstimator that returns a known link rate.
	Oracle = core.Oracle
	// BasicDelayConfig parameterizes the BasicDelay algorithm (Eq. 4).
	BasicDelayConfig = core.BasicDelayConfig
)

// Modes and roles.
const (
	ModeDelay       = core.ModeDelay
	ModeCompetitive = core.ModeCompetitive
	RolePulser      = core.RolePulser
	RoleWatcher     = core.RoleWatcher
)

// New returns a Nimbus controller (attach it to a transport.Sender or an
// exp.Rig).
func New(cfg Config) *Nimbus { return core.NewNimbus(cfg) }

// NewDetector returns a standalone elasticity detector; feed it
// cross-traffic rate samples and read Elasticity/Elastic.
func NewDetector(cfg DetectorConfig) *Detector { return core.NewDetector(cfg) }

// DefaultDetectorConfig returns the paper's detector parameters (10 ms
// samples, 5 s FFT, ηthresh = 2).
func DefaultDetectorConfig() DetectorConfig { return core.DefaultDetectorConfig() }

// EstimateZ implements the cross-traffic rate estimator ẑ = µS/R − S
// (Eq. 1).
func EstimateZ(mu, S, R float64) float64 { return core.EstimateZ(mu, S, R) }

// BasicDelayRate computes the BasicDelay sending rate (Eq. 4).
func BasicDelayRate(cfg BasicDelayConfig, mu, S, z float64, x, xmin sim.Time) float64 {
	return core.BasicDelayRate(cfg, mu, S, z, x, xmin)
}

// NewMaxReceiveRate returns the BBR-style µ estimator used by the
// paper's implementation.
func NewMaxReceiveRate(window sim.Time) MuEstimator { return core.NewMaxReceiveRate(window) }

// Congestion control baselines (all implement transport.Controller).
var (
	NewCubic    = cc.NewCubic
	NewReno     = cc.NewReno
	NewVegas    = cc.NewVegas
	NewCopa     = cc.NewCopa
	NewBBR      = cc.NewBBR
	NewVivace   = cc.NewVivace
	NewCompound = cc.NewCompound
)

// Simulation substrate re-exports.
type (
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Scheduler is the discrete-event loop.
	Scheduler = sim.Scheduler
	// Network is the emulated network: the paper's single bottleneck
	// (Fig. 2) by default, or any multi-hop Topology.
	Network = netem.Network
	// Topology is a network of named nodes, directed links, and per-flow
	// routes; Network is its alias.
	Topology = netem.Topology
	// TopologySpec is a parsed topology description (presets like
	// "parking-lot", or chain specs like "access(x4,5ms)->bn").
	TopologySpec = netem.TopoSpec
	// Route is a flow path: ordered hops for the data and ACK directions.
	Route = netem.Route
	// Hop is one wire-delay + link step of a route.
	Hop = netem.Hop
	// Link is a rate-limited hop (the bottleneck in the trivial topology).
	Link = netem.Link
	// Packet is a data packet traversing the topology.
	Packet = netem.Packet
	// Sender is the transport endpoint controllers plug into.
	Sender = transport.Sender
	// Controller is the congestion-control interface.
	Controller = transport.Controller
)

// Experiment harness re-exports.
type (
	// Rig is a ready-made bottleneck network for experiments.
	Rig = exp.Rig
	// NetConfig configures a Rig.
	NetConfig = exp.NetConfig
	// Scheme is a constructed congestion controller with its spec.
	Scheme = exp.Scheme
	// SchemeSpec is a typed, serializable scheme reference: a registered
	// name plus explicit parameters, with the canonical string form
	// "nimbus(pulse=0.25,mu=est)".
	SchemeSpec = scheme.Spec
	// SchemeParam declares one typed parameter of a registered scheme.
	SchemeParam = scheme.Param
	// SchemeInfo describes a registered scheme (name, doc, parameters).
	SchemeInfo = scheme.Info
	// FlowSpec declares a group of flows on a Rig: scheme spec, count,
	// start/stop times, and application source.
	FlowSpec = exp.FlowSpec
	// Flow is one instantiated flow of a FlowSpec.
	Flow = exp.Flow
)

// NewRig builds an emulated bottleneck.
func NewRig(cfg NetConfig) *Rig { return exp.NewRig(cfg) }

// ParseScheme parses a scheme spec string ("nimbus", "copa(delta=0.1)").
func ParseScheme(s string) (SchemeSpec, error) { return scheme.Parse(s) }

// MustParseScheme is ParseScheme for known-good literals; panics on error.
func MustParseScheme(s string) SchemeSpec { return scheme.MustParse(s) }

// BuildScheme constructs a scheme from its spec via the registry. muBps
// is the nominal bottleneck rate for µ oracles; mu optionally overrides
// the µ estimator (pass nil outside time-varying links).
func BuildScheme(sp SchemeSpec, muBps float64, mu MuEstimator) (Scheme, error) {
	return exp.BuildScheme(sp, muBps, mu)
}

// MustScheme parses a spec string and builds it, panicking on error —
// the one-liner for experiments:
//
//	s := nimbus.MustScheme("nimbus(pulse=0.1,mu=est)", 96e6)
//	rig.AddFlow(s, 50*nimbus.Millisecond, 0)
func MustScheme(s string, muBps float64) Scheme { return exp.MustScheme(s, muBps) }

// Schemes lists every registered scheme with its typed parameters,
// defaults, and docs (what the CLIs print for -list-schemes).
func Schemes() []SchemeInfo { return scheme.List() }

// RegisterScheme adds a scheme to the registry, making it available to
// spec strings, scenarios, and sweeps everywhere in the harness.
func RegisterScheme(name, doc string, params []SchemeParam, factory scheme.Factory) {
	scheme.Register(name, doc, params, factory)
}

// ParseFlowMix parses the "nimbus*2+cubic@10" flow-mix syntax into
// FlowSpecs for Rig.AddFlowSpecs (see exp.ParseFlowMix).
func ParseFlowMix(mix string) ([]FlowSpec, error) { return exp.ParseFlowMix(mix) }

// ParseTopology resolves a topology spec string: "" or "single" (the
// paper's one-hop topology), a registered preset name, or a chain spec
// like "access(100mbps,5ms)->bn(48mbps,droptail)".
func ParseTopology(s string) (TopologySpec, error) { return netem.ParseTopology(s) }

// RegisterTopology adds a preset topology to the registry, making it
// available to spec strings, scenarios, and sweeps everywhere.
func RegisterTopology(name, doc string, spec TopologySpec) {
	netem.RegisterTopology(name, doc, spec)
}

// TopologyNames lists the registered topology presets.
func TopologyNames() []string { return netem.TopologyNames() }

// RunExperiment regenerates one of the paper's tables or figures by id
// ("fig01".."fig26", "table1", "tableE") and returns the textual report.
// quick=true uses shortened horizons suitable for tests and benchmarks.
func RunExperiment(id string, seed int64, quick bool) (string, error) {
	return exp.Run(id, seed, quick)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return exp.IDs() }
