package nimbus

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeDetector(t *testing.T) {
	det := NewDetector(DefaultDetectorConfig())
	dt := det.Config().SampleInterval.Seconds()
	for i := 0; i < det.WindowSamples(); i++ {
		det.AddSample(48e6 + 6e6*math.Sin(2*math.Pi*5*float64(i)*dt))
	}
	if !det.Elastic(5) {
		t.Fatal("facade detector missed a clean 5 Hz signal")
	}
}

func TestFacadeEstimateZ(t *testing.T) {
	mu, S, z := 96e6, 40e6, 30e6
	R := mu * S / (S + z)
	if got := EstimateZ(mu, S, R); math.Abs(got-z) > 1 {
		t.Fatalf("EstimateZ = %v, want %v", got, z)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 32 {
		t.Fatalf("got %d experiments, want 32 (25 figures, table1, tableE, mobile, coexist, topo, churn, fidelity)", len(ids))
	}
	out, err := RunExperiment("fig07", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pulse") {
		t.Fatalf("unexpected fig07 output: %q", out)
	}
	if _, err := RunExperiment("nope", 1, true); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestFacadeSchemes(t *testing.T) {
	for _, name := range []string{"nimbus", "cubic", "bbr", "nimbus(pulse=0.1,mu=est)"} {
		s := MustScheme(name, 96e6)
		if s.Ctrl == nil {
			t.Fatalf("scheme %s nil", name)
		}
	}
	if len(Schemes()) < 15 {
		t.Fatalf("scheme registry lists %d schemes", len(Schemes()))
	}
	if sp := MustParseScheme("copa(delta=0.1)"); sp.String() != "copa(delta=0.1)" {
		t.Fatalf("spec round trip: %s", sp)
	}
	if _, err := ParseScheme("not a spec!"); err == nil {
		t.Fatal("ParseScheme accepted garbage")
	}
	if NewCubic() == nil || NewReno() == nil || NewVegas() == nil ||
		NewCopa() == nil || NewBBR() == nil || NewVivace() == nil || NewCompound() == nil {
		t.Fatal("baseline constructor returned nil")
	}
}

func TestFacadeNimbusConstruction(t *testing.T) {
	n := New(Config{Mu: Oracle{Rate: 96e6}, Competitive: NewCubic()})
	if n.Mode() != ModeDelay {
		t.Fatalf("initial mode = %v", n.Mode())
	}
	if n.Role() != RolePulser {
		t.Fatalf("initial role before Init = %v", n.Role())
	}
}

func TestFacadeBasicDelayRate(t *testing.T) {
	cfg := BasicDelayConfig{Alpha: 0.8, Beta: 0.5, TargetDelay: Time(12500000)}
	x := Time(62500000) // 62.5 ms = xmin + dt
	rate := BasicDelayRate(cfg, 96e6, 40e6, 56e6, x, Time(50000000))
	if math.Abs(rate-40e6) > 1e3 {
		t.Fatalf("equilibrium rate = %v", rate)
	}
}
