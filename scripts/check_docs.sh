#!/usr/bin/env bash
# check_docs.sh [REPO_ROOT]
#
# Gates CI on documentation coverage:
#
#   - Every CLI flag defined in cmd/*/main.go must be mentioned (as
#     "-flagname") in README.md or docs/*.md. A new flag lands with its
#     documentation or the build fails.
#   - Every experiment family in exp.Families (internal/exp/registry.go)
#     must have a "## family" section in docs/experiments.md.
#   - Every HTTP route the service daemon registers (internal/svc/server.go)
#     must be mentioned verbatim ("METHOD /path") in docs/service.md.
#
# Flags are extracted from flag.String/Bool/Int/... call sites, families
# from the Families literal, routes from mux.HandleFunc patterns, so the
# source of truth stays the code.
set -euo pipefail

root=${1:-$(dirname "$0")/..}
cd "$root"

docs="README.md docs/*.md"
fail=0

# --- every CLI flag is documented ------------------------------------

flags=$(grep -hoE 'flag\.(String|Bool|Int|Int64|Uint|Float64|Duration)\("[^"]+"' cmd/*/main.go |
    sed -E 's/.*\("([^"]+)".*/\1/' | sort -u || true)
if [ -z "$flags" ]; then
    echo "check_docs: found no flag definitions under cmd/ — extraction broken?" >&2
    exit 1
fi

for f in $flags; do
    # Match "-flag" followed by a non-flag-name character (space, comma,
    # quote, backtick, equals, end of line) so -rate doesn't satisfy
    # -rate-pattern's requirement.
    if ! grep -qE -- "-$f([^a-z0-9-]|$)" $docs; then
        echo "check_docs: FAIL — flag -$f (cmd/*/main.go) is not mentioned in README.md or docs/" >&2
        fail=1
    fi
done
n=$(echo "$flags" | wc -l)
echo "check_docs: $n CLI flags checked against $docs"

# --- every experiment family has a docs section ----------------------

families=$(awk '/^var Families = /,/^}/' internal/exp/registry.go |
    grep -oE '^[[:space:]]*\{"[a-z0-9-]+"' | sed -E 's/.*"([^"]+)"/\1/' || true)
if [ -z "$families" ]; then
    echo "check_docs: found no Families entries in internal/exp/registry.go — extraction broken?" >&2
    exit 1
fi

for fam in $families; do
    if ! grep -qE "^## $fam( |$)" docs/experiments.md; then
        echo "check_docs: FAIL — experiment family \"$fam\" has no \"## $fam\" section in docs/experiments.md" >&2
        fail=1
    fi
done
n=$(echo "$families" | wc -l)
echo "check_docs: $n experiment families checked against docs/experiments.md"

# --- every service route is documented -------------------------------

routes=$(grep -oE 'mux\.HandleFunc\("[A-Z]+ [^"]+"' internal/svc/server.go |
    sed -E 's/.*"([^"]+)"?/\1/' | sort -u || true)
if [ -z "$routes" ]; then
    echo "check_docs: found no mux.HandleFunc routes in internal/svc/server.go — extraction broken?" >&2
    exit 1
fi

while IFS= read -r route; do
    if ! grep -qF -- "$route" docs/service.md; then
        echo "check_docs: FAIL — route \"$route\" (internal/svc/server.go) is not mentioned in docs/service.md" >&2
        fail=1
    fi
done <<EOF
$routes
EOF
n=$(echo "$routes" | wc -l)
echo "check_docs: $n service routes checked against docs/service.md"

[ "$fail" -eq 0 ] && echo "check_docs: OK"
exit "$fail"
