#!/usr/bin/env bash
# chaos_smoke.sh [REPO_ROOT]
#
# End-to-end crash-safety smoke for nimbus-svc, run by CI's chaos-smoke
# job. Four phases, each against a fresh daemon:
#
#   1. kill -9 mid-job: a daemon with slowed cells is SIGKILLed while a
#      job is running, restarted over the same cache dir, and must
#      replay the journal — the job resumes under its original id and
#      its results match a clean local run (wall-clock normalized).
#   2. hung cells: with every cell frozen by a hang failpoint, the
#      per-cell watchdog reaps them into error rows and the results
#      request completes instead of hanging.
#   3. disk errors: with every cache write failing, the daemon degrades
#      to pass-through — results still correct, disk_errors counted.
#   4. overload: with -max-jobs 1 and a job in flight, a second
#      submission is shed with 429 + Retry-After, and the retrying
#      client (nimbus-bench -remote) rides it out.
#
# Requires: curl, jq, cmp. Uses port 9137 and a scratch dir under
# $TMPDIR; safe to run locally.
set -euo pipefail

root=${1:-$(dirname "$0")/..}
cd "$root"

PORT=9137
BASE="http://127.0.0.1:$PORT"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/nimbus-chaos.XXXXXX")
SVC_PID=""

cleanup() {
    [ -n "$SVC_PID" ] && kill -9 "$SVC_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "chaos_smoke: FAIL — $*" >&2; [ -f "$WORK/svc.log" ] && tail -30 "$WORK/svc.log" >&2; exit 1; }

start_daemon() { # start_daemon <cachedir> [extra flags...]
    local cachedir=$1; shift
    bin/nimbus-svc -listen "127.0.0.1:$PORT" -cachedir "$cachedir" -code-version chaos-v1 "$@" \
        >>"$WORK/svc.log" 2>&1 &
    SVC_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$BASE/readyz" >/dev/null; then return 0; fi
        kill -0 "$SVC_PID" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.1
    done
    fail "daemon did not become ready"
}

stop_daemon() {
    [ -n "$SVC_PID" ] && kill "$SVC_PID" 2>/dev/null && wait "$SVC_PID" 2>/dev/null || true
    SVC_PID=""
}

kill9_daemon() {
    kill -9 "$SVC_PID"
    wait "$SVC_PID" 2>/dev/null || true
    SVC_PID=""
}

metric() { curl -s "$BASE/metrics" | jq -r ".$1"; }

echo "chaos_smoke: building binaries"
go build -o bin/ ./cmd/nimbus-svc ./cmd/nimbus-bench

cat > "$WORK/grid.json" <<'EOF'
{
  "base": {"rtt_ms": 20, "buffer_ms": 50, "duration_sec": 5, "seed": 1},
  "schemes": ["nimbus", "cubic"],
  "rates_mbps": [24],
  "link_traces": ["", "cell-ramp"]
}
EOF

echo "chaos_smoke: clean local baseline"
bin/nimbus-bench -grid "$WORK/grid.json" -out "$WORK/local.json" >/dev/null 2>&1
jq 'map(.wall_sec = 0)' "$WORK/local.json" > "$WORK/local.norm.json"

# --- phase 1: kill -9 mid-job, restart, journal replay ----------------

echo "chaos_smoke: phase 1 — kill -9 mid-job, restart, resume"
start_daemon "$WORK/cache1" -fsync -failpoints 'cell-run=sleep:400ms'
job=$(curl -sf -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d "$(jq '{grid: .}' "$WORK/grid.json")" | jq -r .id)
[ -n "$job" ] && [ "$job" != null ] || fail "phase 1: submission failed"
sleep 1 # let some (not all) cells land in the cache before the crash
kill9_daemon
echo "chaos_smoke: phase 1 — daemon killed mid-job $job, restarting"
start_daemon "$WORK/cache1" # no failpoints: the resumed cells run at speed
[ "$(metric journal_replayed)" -ge 1 ] || fail "phase 1: journal_replayed is 0 after restart"
curl -sf "$BASE/jobs/$job/results" > "$WORK/resumed.json" || fail "phase 1: resumed job $job lost"
jq -e 'map(select(.err != null and .err != "")) | length == 0' "$WORK/resumed.json" >/dev/null \
    || fail "phase 1: resumed job has error rows: $(cat "$WORK/resumed.json")"
jq 'map(.wall_sec = 0)' "$WORK/resumed.json" > "$WORK/resumed.norm.json"
cmp "$WORK/local.norm.json" "$WORK/resumed.norm.json" \
    || fail "phase 1: resumed results differ from clean local run"
state=$(curl -sf "$BASE/jobs/$job" | jq -r .state)
[ "$state" = done ] || fail "phase 1: resumed job state is $state, want done"
stop_daemon
echo "chaos_smoke: phase 1 OK — job $job survived kill -9, results byte-identical (wall-clock normalized)"

# --- phase 2: hung cells are reaped by the watchdog -------------------

echo "chaos_smoke: phase 2 — watchdog reaps hung cells"
start_daemon "$WORK/cache2" -failpoints 'cell-run=hang:1' -cell-timeout 1s
job=$(curl -sf -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d "$(jq '{grid: ., workers: 8}' "$WORK/grid.json")" | jq -r .id)
curl -sf --max-time 60 "$BASE/jobs/$job/results" > "$WORK/hung.json" \
    || fail "phase 2: results request hung — watchdog did not release waiters"
total=$(jq length "$WORK/hung.json")
reaped=$(jq '[.[] | select(.err | tostring | contains("watchdog"))] | length' "$WORK/hung.json")
[ "$reaped" = "$total" ] || fail "phase 2: $reaped/$total rows are watchdog errors"
[ "$(metric watchdog_kills)" -eq "$total" ] || fail "phase 2: watchdog_kills != $total"
stop_daemon
echo "chaos_smoke: phase 2 OK — $reaped hung cells reaped, waiters released"

# --- phase 3: disk errors degrade to pass-through ---------------------

echo "chaos_smoke: phase 3 — disk-write errors degrade, not fail"
start_daemon "$WORK/cache3" -failpoints 'disk-write=err:1'
bin/nimbus-bench -grid "$WORK/grid.json" -remote "$BASE" -out "$WORK/noDisk.json" >/dev/null 2>&1 \
    || fail "phase 3: remote run failed under disk errors"
jq 'map(.wall_sec = 0)' "$WORK/noDisk.json" > "$WORK/noDisk.norm.json"
cmp "$WORK/local.norm.json" "$WORK/noDisk.norm.json" \
    || fail "phase 3: degraded results differ from clean local run"
[ "$(metric disk_errors)" -ge 1 ] || fail "phase 3: disk_errors not counted"
stop_daemon
echo "chaos_smoke: phase 3 OK — correct results with a broken disk, $(jq length "$WORK/noDisk.json") cells"

# --- phase 4: overload sheds with 429, retrying client rides it out ---

echo "chaos_smoke: phase 4 — overload shedding and client retry"
start_daemon "$WORK/cache4" -max-jobs 1 -failpoints 'cell-run=sleep:300ms'
job=$(curl -sf -X POST "$BASE/jobs" -H 'Content-Type: application/json' \
    -d "$(jq '{grid: ., workers: 1}' "$WORK/grid.json")" | jq -r .id)
code=$(curl -s -o "$WORK/shed.json" -w '%{http_code}' -X POST "$BASE/jobs" \
    -H 'Content-Type: application/json' -d "$(jq '{grid: .}' "$WORK/grid.json")")
[ "$code" = 429 ] || fail "phase 4: second submission got $code, want 429"
retry_after=$(curl -s -D - -o /dev/null -X POST "$BASE/jobs" \
    -H 'Content-Type: application/json' -d "$(jq '{grid: .}' "$WORK/grid.json")" \
    | tr -d '\r' | awk 'tolower($1) == "retry-after:" {print $2}')
[ "$retry_after" = 1 ] || fail "phase 4: Retry-After header is '$retry_after', want 1"
# The self-healing client backs off on the 429s and completes once the
# first job frees capacity.
bin/nimbus-bench -grid "$WORK/grid.json" -remote "$BASE" -out "$WORK/retried.json" >/dev/null 2>&1 \
    || fail "phase 4: retrying client did not ride out the overload"
jq 'map(.wall_sec = 0)' "$WORK/retried.json" > "$WORK/retried.norm.json"
cmp "$WORK/local.norm.json" "$WORK/retried.norm.json" \
    || fail "phase 4: post-overload results differ from clean local run"
[ "$(metric jobs_shed)" -ge 2 ] || fail "phase 4: jobs_shed not counted"
stop_daemon
echo "chaos_smoke: phase 4 OK — shed with 429 + Retry-After, retrying client succeeded"

echo "chaos_smoke: OK — all 4 phases passed"
