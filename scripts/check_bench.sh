#!/usr/bin/env bash
# check_bench.sh BENCH_OUTPUT BASELINE_FILE
#
# Gates CI on the simulator hot paths: reads allocs/op for each gated
# benchmark from `go test -bench` output and fails if it regressed more
# than 20% against the checked-in baseline. A zero baseline is a hard
# gate: the benchmark must stay allocation-free.
set -euo pipefail

bench_out=$1
baseline_file=$2

# benchmark-name baseline-key pairs, one gate per line.
gates="
BenchmarkSimulatorThroughput allocs_per_op
BenchmarkTopologyThroughput topo_allocs_per_op
"

fail=0
while read -r bench key; do
    [ -z "$bench" ] && continue
    current=$(awk -v b="$bench" '$1 ~ "^"b {
        for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }' "$bench_out")
    if [ -z "$current" ]; then
        echo "check_bench: no $bench allocs/op in $bench_out" >&2
        fail=1
        continue
    fi
    baseline=$(awk -F= -v k="^$key=" '$0 ~ k { print $2 }' "$baseline_file")
    if [ -z "$baseline" ]; then
        echo "check_bench: no $key= line in $baseline_file" >&2
        fail=1
        continue
    fi
    limit=$(( baseline + baseline / 5 ))
    echo "$bench allocs/op: current=$current baseline=$baseline limit(+20%)=$limit"
    if [ "$current" -gt "$limit" ]; then
        echo "check_bench: FAIL — $bench allocs/op regressed beyond 20% of baseline" >&2
        echo "If the increase is intentional, update $baseline_file in the same PR." >&2
        fail=1
    fi
done <<< "$gates"

[ "$fail" -eq 0 ] && echo "check_bench: OK"
exit "$fail"
