#!/usr/bin/env bash
# check_bench.sh BENCH_OUTPUT BASELINE_FILE [COMPARE_OUT]
#
# Gates CI on the simulator hot paths: reads allocs/op (and, for the
# micro-benchmarks, ns/op) for each gated benchmark from `go test -bench`
# output and fails on regressions against the checked-in baseline.
#
#   - allocs/op: fail beyond +20% of baseline. A zero baseline is a hard
#     gate: the benchmark must stay allocation-free.
#   - ns/op: fail beyond 3x baseline. The band is deliberately wide —
#     CI hardware varies and these benches run at small -benchtime — so
#     it only catches order-of-magnitude regressions (an accidental
#     alloc-per-packet, a dropped fast path), not few-percent drift.
#
# When COMPARE_OUT is given, a before/after table of every gated metric
# is written there (uploaded as a CI artifact alongside the profiles).
set -euo pipefail

bench_out=$1
baseline_file=$2
compare_out=${3:-}

# benchmark-name alloc-baseline-key ns-baseline-key ("-" = no ns gate),
# one gate per line.
gates="
BenchmarkSimulatorThroughput allocs_per_op -
BenchmarkSimulatorThroughputBurst burst_allocs_per_op -
BenchmarkTopologyThroughput topo_allocs_per_op -
BenchmarkRealPlanAnalyze realplan_allocs_per_op realplan_ns_per_op
BenchmarkLinkBurst linkburst_allocs_per_op linkburst_ns_per_op
BenchmarkSchedulerChurn/heap-10k schedchurn_heap_allocs_per_op schedchurn_heap_ns_per_op
BenchmarkSchedulerChurn/wheel-10k schedchurn_wheel_allocs_per_op schedchurn_wheel_ns_per_op
BenchmarkFluidLink fluidlink_allocs_per_op fluidlink_ns_per_op
BenchmarkSweepFluidVsPacket sweepfluid_allocs_per_op -
"

[ -n "$compare_out" ] && printf '%-36s %-12s %10s %10s %10s %s\n' \
    benchmark metric current baseline limit status > "$compare_out"

# extract BENCH UNIT: the value of the UNIT column for the exactly-named
# benchmark (go appends -GOMAXPROCS to the name in the output).
extract() {
    awk -v b="$1" -v unit="$2" '$1 ~ "^"b"(-[0-9]+)?$" {
        for (i = 2; i <= NF; i++) if ($i == unit) print $(i-1)
    }' "$bench_out"
}

baseline_of() {
    awk -F= -v k="^$1=" '$0 ~ k { print $2 }' "$baseline_file"
}

record() { # bench metric current baseline limit status
    [ -n "$compare_out" ] && printf '%-36s %-12s %10s %10s %10s %s\n' \
        "$1" "$2" "$3" "$4" "$5" "$6" >> "$compare_out"
    echo "$1 $2: current=$3 baseline=$4 limit=$5 [$6]"
}

fail=0
while read -r bench akey nskey; do
    [ -z "$bench" ] && continue

    current=$(extract "$bench" allocs/op)
    if [ -z "$current" ]; then
        echo "check_bench: no $bench allocs/op in $bench_out" >&2
        fail=1
    else
        baseline=$(baseline_of "$akey")
        if [ -z "$baseline" ]; then
            echo "check_bench: no $akey= line in $baseline_file" >&2
            fail=1
        else
            limit=$(( baseline + baseline / 5 ))
            status=OK
            if [ "$current" -gt "$limit" ]; then
                status=FAIL
                echo "check_bench: FAIL — $bench allocs/op regressed beyond 20% of baseline" >&2
                echo "If the increase is intentional, update $baseline_file in the same PR." >&2
                fail=1
            fi
            record "$bench" allocs/op "$current" "$baseline" "$limit" "$status"
        fi
    fi

    [ "$nskey" = "-" ] && continue
    ns=$(extract "$bench" ns/op)
    if [ -z "$ns" ]; then
        echo "check_bench: no $bench ns/op in $bench_out" >&2
        fail=1
        continue
    fi
    nsbase=$(baseline_of "$nskey")
    if [ -z "$nsbase" ]; then
        echo "check_bench: no $nskey= line in $baseline_file" >&2
        fail=1
        continue
    fi
    # ns/op may be fractional; compare in awk.
    nslimit=$(awk -v b="$nsbase" 'BEGIN { printf "%d", 3 * b }')
    status=OK
    if awk -v c="$ns" -v l="$nslimit" 'BEGIN { exit !(c > l) }'; then
        status=FAIL
        echo "check_bench: FAIL — $bench ns/op ($ns) beyond 3x baseline ($nsbase)" >&2
        echo "If the slowdown is intentional, update $baseline_file in the same PR." >&2
        fail=1
    fi
    record "$bench" ns/op "$ns" "$nsbase" "$nslimit" "$status"
done <<< "$gates"

# Relative gate: the hashed timer wheel must stay at least 2x the heap's
# ops/s under the 10k-timer churn load. Both sides run on the same
# hardware in the same process, so unlike the absolute ns/op bands this
# ratio is stable across CI machines — it is the wheel's reason to exist.
heap_ns=$(extract "BenchmarkSchedulerChurn/heap-10k" ns/op)
wheel_ns=$(extract "BenchmarkSchedulerChurn/wheel-10k" ns/op)
if [ -n "$heap_ns" ] && [ -n "$wheel_ns" ]; then
    if awk -v h="$heap_ns" -v w="$wheel_ns" 'BEGIN { exit !(h < 2 * w) }'; then
        echo "check_bench: FAIL — timer wheel only $(awk -v h="$heap_ns" -v w="$wheel_ns" 'BEGIN { printf "%.2f", h / w }')x the heap (need >= 2x): heap $heap_ns ns/op vs wheel $wheel_ns ns/op" >&2
        fail=1
    else
        echo "BenchmarkSchedulerChurn wheel speedup: $(awk -v h="$heap_ns" -v w="$wheel_ns" 'BEGIN { printf "%.2f", h / w }')x over heap [OK]"
    fi
fi

# Relative gate: the fluid cross-traffic path must execute at least 3x
# fewer scheduler events than the per-packet path on the cross-heavy
# sweep cell. The ratio is a simulator invariant (event counts are
# deterministic per seed), so the gate is tight where the wall-clock
# bands cannot be — it is the fluid path's reason to exist.
fluid_ratio=$(extract "BenchmarkSweepFluidVsPacket" events_ratio)
if [ -n "$fluid_ratio" ]; then
    if awk -v r="$fluid_ratio" 'BEGIN { exit !(r < 3) }'; then
        echo "check_bench: FAIL — fluid cross traffic only ${fluid_ratio}x fewer events than per-packet (need >= 3x)" >&2
        fail=1
    else
        echo "BenchmarkSweepFluidVsPacket event reduction: ${fluid_ratio}x over per-packet [OK]"
    fi
fi

[ "$fail" -eq 0 ] && echo "check_bench: OK"
exit "$fail"
