#!/usr/bin/env bash
# check_bench.sh BENCH_OUTPUT BASELINE_FILE
#
# Gates CI on the simulator hot path: reads allocs/op for
# BenchmarkSimulatorThroughput from `go test -bench` output and fails if
# it regressed more than 20% against the checked-in baseline.
set -euo pipefail

bench_out=$1
baseline_file=$2

current=$(awk '$1 ~ /^BenchmarkSimulatorThroughput/ {
    for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
}' "$bench_out")
if [ -z "$current" ]; then
    echo "check_bench: no BenchmarkSimulatorThroughput allocs/op in $bench_out" >&2
    exit 1
fi

baseline=$(awk -F= '/^allocs_per_op=/ { print $2 }' "$baseline_file")
if [ -z "$baseline" ]; then
    echo "check_bench: no allocs_per_op= line in $baseline_file" >&2
    exit 1
fi

limit=$(( baseline + baseline / 5 ))
echo "allocs/op: current=$current baseline=$baseline limit(+20%)=$limit"
if [ "$current" -gt "$limit" ]; then
    echo "check_bench: FAIL — allocs/op regressed beyond 20% of baseline" >&2
    echo "If the increase is intentional, update $baseline_file in the same PR." >&2
    exit 1
fi
echo "check_bench: OK"
