// Command nimbus-svc is the experiment daemon: it accepts sweep jobs (a
// runner.Grid as JSON) over HTTP, expands them to scenarios, and runs
// only the cells whose content-addressed cache key misses. Results are
// keyed by canonical scenario key + effective seed + code version, stored
// in a two-tier cache (in-memory LRU over <cachedir>/<sha256(key)>.json),
// and deduplicated in flight — concurrent clients submitting overlapping
// grids share one simulation per cell. docs/service.md documents the API;
// nimbus-bench -remote is the standard client.
//
// The daemon is crash-safe: every job submission is journaled
// (write-ahead) to <cachedir>/journal/wal before it starts, and on boot
// the journal is replayed — jobs pending at a crash resume, completed
// ids keep answering. -fsync makes journal and cache writes durable
// before acknowledgment; -failpoints injects faults for chaos testing.
//
// Usage:
//
//	nimbus-svc -listen 127.0.0.1:9037 -cachedir ~/.cache/nimbus-svc
//	nimbus-svc -cachedir /tmp/c -workers 8 -cache-entries 16384
//	nimbus-svc -code-version v-test     # override the build hash (tests, migrations)
//	nimbus-svc -fsync -cell-timeout 5m -max-jobs 64
//	nimbus-svc -failpoints 'disk-write=err:0.5,cell-run=hang:1'   # chaos testing
//	nimbus-svc -pprof                   # profiling endpoints at /debug/pprof/
//
// Endpoints: POST /jobs, GET /jobs/{id}, GET /jobs/{id}/events,
// GET /jobs/{id}/results, DELETE /jobs/{id}, GET /cache/stats,
// GET /metrics, GET /healthz, GET /readyz (and, with -pprof, the
// net/http/pprof handlers under /debug/pprof/).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"nimbus/internal/exp"
	"nimbus/internal/fault"
	"nimbus/internal/svc"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		listen       = flag.String("listen", "127.0.0.1:9037", "address to serve the HTTP API on")
		cachedir     = flag.String("cachedir", defaultCacheDir(), "directory for the on-disk result cache (created if missing)")
		cacheEntries = flag.Int("cache-entries", 4096, "in-memory cache tier size, entries (the disk tier is unbounded)")
		workers      = flag.Int("workers", 0, "default per-job worker pool size (0 = all cores; jobs may override per submission)")
		maxCells     = flag.Int("max-cells", 1_000_000, "reject grids expanding to more cells than this")
		codeVersion  = flag.String("code-version", "", "override the cache key's code-version component (default: hash of this executable)")
		timerWheel   = flag.Bool("timer-wheel", false, "back every scheduler with the hashed timer wheel instead of the 4-ary heap (identical results; faster under dense timer churn)")
		fsync        = flag.Bool("fsync", false, "fsync journal appends and cache writes before acknowledging (crash-durable; slower)")
		failpoints   = flag.String("failpoints", "", "comma-separated fault injections, e.g. 'disk-write=err:0.5,cell-run=hang:1' (also via NIMBUS_FAILPOINTS; chaos testing only)")
		cellTimeout  = flag.Duration("cell-timeout", 0, "per-cell watchdog: reap a cell still simulating after this long (0 = no watchdog)")
		maxJobs      = flag.Int("max-jobs", 0, "shed new submissions with 429 while this many jobs are running (0 = unbounded)")
		maxInflight  = flag.Int("max-inflight-cells", 0, "shed new submissions while this many cells are simulating (0 = unbounded)")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/ (off by default; enable only on trusted networks)")
	)
	flag.Parse()
	exp.TimerWheel = *timerWheel

	logger := log.New(os.Stderr, "nimbus-svc: ", log.LstdFlags)
	spec := *failpoints
	if spec == "" {
		spec = os.Getenv("NIMBUS_FAILPOINTS")
	}
	if spec != "" {
		if err := fault.Set(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		logger.Printf("FAULT INJECTION ARMED: %s", spec)
	}

	version := *codeVersion
	if version == "" {
		version = svc.CodeVersion()
	}
	store, err := svc.NewStore(*cachedir, *cacheEntries, version)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	store.Fsync = *fsync

	journal, records, err := svc.OpenJournal(filepath.Join(*cachedir, "journal"), *fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer journal.Close()

	server := &svc.Server{
		Store:            store,
		Run:              exp.RunScenario,
		Workers:          *workers,
		MaxCells:         *maxCells,
		Journal:          journal,
		CellTimeout:      *cellTimeout,
		MaxJobs:          *maxJobs,
		MaxInflightCells: *maxInflight,
		Logf:             logger.Printf,
	}
	server.Start()
	if n := server.Replay(records); n > 0 {
		logger.Printf("journal: replayed %d job(s) from %d record(s)", n, len(records))
	}
	server.SetReady()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	logger.Printf("serving on http://%s (cache %s, code version %s)", ln.Addr(), *cachedir, version)

	handler := server.Handler()
	if *pprofOn {
		// Explicit pprof routes on a fresh mux (not DefaultServeMux), so
		// nothing else registered globally leaks onto the daemon's port.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		logger.Printf("pprof endpoints enabled at /debug/pprof/")
	}

	hs := &http.Server{
		Handler: handler,
		// Bounds how long a client may dribble headers, so stalled or
		// hostile connections cannot pin accept slots forever.
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
		// In-flight requests (a long results wait, a streaming events
		// reader) get a bounded grace period; the cache is already
		// consistent on disk at every instant thanks to atomic writes.
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}
	return 0
}

// defaultCacheDir puts the cache under the user cache root when known,
// falling back to a project-local directory (useful in containers where
// HOME is unset).
func defaultCacheDir() string {
	if dir, err := os.UserCacheDir(); err == nil {
		return dir + "/nimbus-svc"
	}
	return ".nimbus-svc-cache"
}
