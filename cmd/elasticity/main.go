// Command elasticity is the offline measurement/diagnostic use of the
// elasticity detector (§1): feed it a cross-traffic rate time series (one
// value per line, or CSV "t,rate") sampled at a fixed interval, and it
// reports the elasticity metric η and the classification.
//
// Usage:
//
//	elasticity -fp 5 -interval 10ms < zseries.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/sim"
)

func main() {
	var (
		fp       = flag.Float64("fp", 5, "pulse frequency to test, Hz")
		interval = flag.Duration("interval", 10*time.Millisecond, "sample interval of the input series")
		window   = flag.Duration("window", 5*time.Second, "FFT window")
		thresh   = flag.Float64("threshold", 2, "elasticity threshold")
	)
	flag.Parse()

	det := core.NewDetector(core.DetectorConfig{
		SampleInterval: sim.FromDuration(*interval),
		FFTDuration:    sim.FromDuration(*window),
		Threshold:      *thresh,
	})

	sc := bufio.NewScanner(os.Stdin)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Accept "rate" or "t,rate".
		if i := strings.LastIndexByte(line, ','); i >= 0 {
			line = strings.TrimSpace(line[i+1:])
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
			continue
		}
		det.AddSample(v)
		n++
		if det.Ready() && n%det.WindowSamples() == 0 {
			report(det, *fp)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !det.Ready() {
		fmt.Fprintf(os.Stderr, "need %d samples for a full window, got %d\n", det.WindowSamples(), n)
		os.Exit(1)
	}
	report(det, *fp)
}

func report(det *core.Detector, fp float64) {
	eta := det.Elasticity(fp)
	class := "INELASTIC"
	if eta >= det.Threshold() {
		class = "ELASTIC"
	}
	fmt.Printf("eta(fp=%.1fHz) = %.3f  threshold = %.1f  =>  %s\n", fp, eta, det.Threshold(), class)
}
