// Command elasticity is the offline measurement/diagnostic use of the
// elasticity detector (§1): feed it a cross-traffic rate time series (one
// value per line, or CSV "t,rate") sampled at a fixed interval, and it
// reports the elasticity metric η and the classification. Several pulse
// frequencies can be tested at once; they are analyzed in parallel on
// -workers cores.
//
// Instead of stdin, -link-trace resamples a capacity trace (an embedded
// netem trace name or a time_ms,mbps file) at -interval and analyzes
// that — a quick check of whether a path's rate variation itself looks
// elastic to the detector. -topology does the same for a topology spec's
// bottleneck link: "elasticity -topology 'bn(48mbps,pattern=step:6:24:2000)'"
// analyzes the bottleneck hop's scheduled capacity signal (the spec's
// bottleneck needs an absolute rate, since there is no scenario to
// inherit one from). -churn simulates a session-arrival workload
// (internal/workload) on the standard bottleneck and analyzes its
// aggregate delivered rate — what churning Internet traffic actually
// looks like to the detector. -fluid does the same for a fluid-model
// aggregate (internal/crosstraffic.Fluid): "elasticity -fluid cubic:24"
// simulates the rate process alone on the standard bottleneck and
// analyzes its delivered rate, a direct check that the fluid
// approximation still shows the detector the signature the per-packet
// source would (elastic aggregates self-congest into a sawtooth).
//
// The uniform listing flags every CLI in this repo shares are available
// here too: -list-traces (embedded capacity traces for -link-trace),
// -list-topologies (topology presets for -topology), -list-schemes (the
// scheme registry), -list-experiments (paper experiment ids, runnable
// with nimbus-bench -run).
//
// Usage:
//
//	elasticity -fp 5 -interval 10ms < zseries.csv
//	elasticity -fp 5,2,1 -workers 4 < zseries.csv
//	elasticity -fp 5 -link-trace cell-ramp -trace-dur 60s
//	elasticity -fp 5 -topology 'access(100mbps,5ms)->bn(48mbps,pattern=ramp:12:48:8000)'
//	elasticity -fp 5 -churn "bulk(load=24)" -trace-dur 60s
//	elasticity -fp 5 -fluid cubic:24 -trace-dur 60s
//	elasticity -list-traces
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/exp"
	"nimbus/internal/netem"
	"nimbus/internal/runner"
	"nimbus/internal/sim"
	"nimbus/internal/workload"
)

func main() {
	var (
		fps      = flag.String("fp", "5", "pulse frequencies to test, Hz, comma-separated")
		interval = flag.Duration("interval", 10*time.Millisecond, "sample interval of the input series")
		window   = flag.Duration("window", 5*time.Second, "FFT window")
		thresh   = flag.Float64("threshold", 2, "elasticity threshold")
		rfft     = flag.Bool("rfft", false, "analyze with the packed real-input FFT (faster; matches the default spectra to ~1e-12)")
		workers  = flag.Int("workers", 0, "parallel analyses (0 = all cores)")
		trace    = flag.String("link-trace", "", "analyze a capacity trace (embedded name or time_ms,mbps file) instead of stdin")
		topo     = flag.String("topology", "", "analyze a topology spec's bottleneck-link capacity signal instead of stdin (the bottleneck needs an absolute rate)")
		churn    = flag.String("churn", "", "analyze the aggregate delivered rate of a simulated session workload (a workload spec like bulk(load=24)) instead of stdin")
		fluid    = flag.String("fluid", "", "analyze the delivered rate of a fluid-model aggregate (kind[:rateMbps], e.g. cubic:24) on the standard bottleneck instead of stdin")
		traceDur = flag.Duration("trace-dur", 60*time.Second, "how much signal to generate with -link-trace/-topology/-churn")

		listSchemes     = flag.Bool("list-schemes", false, "list registered schemes with their typed params and exit")
		listTraces      = flag.Bool("list-traces", false, "list embedded link capacity traces and exit")
		listTopologies  = flag.Bool("list-topologies", false, "list registered topology presets and exit")
		listExperiments = flag.Bool("list-experiments", false, "list paper experiment ids (run them with nimbus-bench -run) and exit")
	)
	flag.Parse()
	if exp.HandleListFlags(*listSchemes, *listTraces, *listTopologies, *listExperiments) {
		return
	}

	freqs := parseFreqs(*fps)
	cfg := core.DetectorConfig{
		SampleInterval: sim.FromDuration(*interval),
		FFTDuration:    sim.FromDuration(*window),
		Threshold:      *thresh,
		RFFT:           *rfft,
	}

	sources := 0
	for _, s := range []string{*trace, *topo, *churn, *fluid} {
		if s != "" {
			sources++
		}
	}
	var samples []float64
	var err error
	switch {
	case sources > 1:
		fmt.Fprintln(os.Stderr, "pick one of -link-trace, -topology, -churn and -fluid")
		os.Exit(2)
	case *trace != "":
		samples, err = traceSamples(*trace, cfg.SampleInterval, sim.FromDuration(*traceDur))
	case *topo != "":
		samples, err = topoSamples(*topo, cfg.SampleInterval, sim.FromDuration(*traceDur))
	case *churn != "":
		samples, err = churnSamples(*churn, cfg.SampleInterval, sim.FromDuration(*traceDur))
	case *fluid != "":
		samples, err = fluidSamples(*fluid, cfg.SampleInterval, sim.FromDuration(*traceDur))
	default:
		samples, err = readSamples(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	need := core.NewDetector(cfg).WindowSamples()
	if len(samples) < need {
		fmt.Fprintf(os.Stderr, "need %d samples for a full window, got %d\n", need, len(samples))
		os.Exit(1)
	}

	// Each frequency gets its own detector (the analysis reuses scratch
	// buffers internally), fed the same series; the analyses run in
	// parallel and report in input order.
	type verdict struct {
		fp, eta float64
		every   []float64 // eta per full window, in series order
	}
	out := runner.Map(*workers, len(freqs), func(i int) verdict {
		det := core.NewDetector(cfg)
		v := verdict{fp: freqs[i]}
		for n, s := range samples {
			det.AddSample(s)
			if det.Ready() && (n+1)%det.WindowSamples() == 0 {
				v.every = append(v.every, det.Elasticity(freqs[i]))
			}
		}
		v.eta = det.Elasticity(freqs[i])
		return v
	})

	for _, v := range out {
		for _, eta := range v.every {
			report(v.fp, eta, *thresh)
		}
		report(v.fp, v.eta, *thresh)
	}
}

func report(fp, eta, thresh float64) {
	class := "INELASTIC"
	if eta >= thresh {
		class = "ELASTIC"
	}
	fmt.Printf("eta(fp=%.1fHz) = %.3f  threshold = %.1f  =>  %s\n", fp, eta, thresh, class)
}

// traceSamples resamples a rate schedule at the detector's interval.
func traceSamples(nameOrPath string, interval, dur sim.Time) ([]float64, error) {
	s, err := netem.LoadTrace(nameOrPath)
	if err != nil {
		return nil, err
	}
	var out []float64
	for t := sim.Time(0); t < dur; t += interval {
		out = append(out, s.RateAt(t))
	}
	return out, nil
}

// topoSamples resamples a topology spec's bottleneck-link capacity
// schedule (its pattern anchored at its absolute rate, or the constant
// rate) at the detector's interval.
func topoSamples(topoSpec string, interval, dur sim.Time) ([]float64, error) {
	ts, err := netem.ParseTopology(topoSpec)
	if err != nil {
		return nil, err
	}
	// There is no scenario here, so resolve the bottleneck at a zero
	// nominal rate: all-absolute chains order correctly (the slowest
	// link wins), and any scale- or inherit-rate link resolves to 0,
	// gets picked, and lands in the no-absolute-rate error below.
	bn := ts.LinkByName(ts.BottleneckAt(0))
	if bn.RateMbps <= 0 {
		return nil, fmt.Errorf("topology %q: bottleneck link %q has no absolute rate to analyze; give one, e.g. %s(48mbps)",
			topoSpec, bn.Name, bn.Name)
	}
	sched := netem.ConstantRate(bn.RateMbps * 1e6)
	if bn.Pattern != "" {
		sched, err = netem.ParsePattern(bn.Pattern, bn.RateMbps*1e6)
		if err != nil {
			return nil, err
		}
	}
	var out []float64
	for t := sim.Time(0); t < dur; t += interval {
		out = append(out, sched.RateAt(t))
	}
	return out, nil
}

// churnSamples simulates a session workload (internal/workload) alone on
// the standard 96 Mbit/s bottleneck and samples its aggregate delivered
// rate at the detector's interval — the measurement use of the detector
// against realistic churning traffic rather than a synthetic series.
func churnSamples(churnSpec string, interval, dur sim.Time) ([]float64, error) {
	wsp, err := workload.ParseSpec(churnSpec)
	if err != nil {
		return nil, err
	}
	r := exp.NewRig(exp.NetConfig{
		RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond,
		Seed: 1, TimerWheel: true,
	})
	var bytes float64
	gen := &workload.Generator{
		Net: r.Net, Rng: r.Rng.Split("churn"), Spec: wsp,
		RTT: 50 * sim.Millisecond, MuBps: r.MuBps,
		OnDeliver: func(p *netem.Packet, now sim.Time) { bytes += float64(p.Size) },
	}
	if err := gen.Start(0); err != nil {
		return nil, err
	}
	var out []float64
	var sample func()
	sample = func() {
		out = append(out, bytes*8/interval.Seconds())
		bytes = 0
		if r.Sch.Now()+interval <= dur {
			r.Sch.After(interval, sample)
		}
	}
	r.Sch.After(interval, sample)
	r.Sch.RunUntil(dur)
	return out, nil
}

// fluidSamples simulates a fluid-model aggregate (crosstraffic.Fluid)
// alone on the standard 96 Mbit/s bottleneck and samples its delivered
// rate at the detector's interval — the fluid counterpart of -churn,
// checking the rate-process approximation shows the detector the same
// elastic/inelastic signature as the packet source it replaces. The
// spec is kind[:rateMbps]; an elastic kind (cubic, reno) defaults to
// no target rate and grows until it self-congests.
func fluidSamples(spec string, interval, dur sim.Time) ([]float64, error) {
	kind, rateMbps := spec, 0.0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind = spec[:i]
		v, err := strconv.ParseFloat(spec[i+1:], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-fluid: bad rate in %q (want kind[:rateMbps], e.g. cubic:24)", spec)
		}
		rateMbps = v
	}
	if !crosstraffic.HasFluidModel(kind) {
		return nil, fmt.Errorf("-fluid: no fluid model for kind %q (want cbr, poisson, cubic, or reno)", kind)
	}
	const rtt = 50 * sim.Millisecond
	r := exp.NewRig(exp.NetConfig{
		RateMbps: 96, RTT: rtt, Buffer: 100 * sim.Millisecond,
		Seed: 1, TimerWheel: true, Fluid: "on",
	})
	fsp, _ := crosstraffic.ParseFluidSpec("on")
	src, err := crosstraffic.NewFluid(r.Net, "", kind, rateMbps*1e6, rtt, fsp, r.Rng.Split("fluid-"+kind))
	if err != nil {
		return nil, err
	}
	src.Start(0)
	var out []float64
	var last float64
	var sample func()
	sample = func() {
		delivered, _ := r.Link.FluidStats()
		out = append(out, (delivered-last)*8/interval.Seconds())
		last = delivered
		if r.Sch.Now()+interval <= dur {
			r.Sch.After(interval, sample)
		}
	}
	r.Sch.After(interval, sample)
	r.Sch.RunUntil(dur)
	return out, nil
}

func readSamples(f *os.File) ([]float64, error) {
	sc := bufio.NewScanner(f)
	var out []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Accept "rate" or "t,rate".
		if i := strings.LastIndexByte(line, ','); i >= 0 {
			line = strings.TrimSpace(line[i+1:])
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipping %q: %v\n", line, err)
			continue
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func parseFreqs(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-fp: bad frequency %q: %v\n", p, err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "-fp: no frequencies given")
		os.Exit(2)
	}
	return out
}
