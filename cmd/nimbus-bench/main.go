// Command nimbus-bench regenerates the paper's tables and figures. Each
// experiment id corresponds to one table or figure (see DESIGN.md for
// the index); "all" runs everything.
//
// Usage:
//
//	nimbus-bench -list
//	nimbus-bench -run fig08 [-seed 1] [-full]
//	nimbus-bench -run all -full
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nimbus/internal/exp"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiment ids and exit")
		run  = flag.String("run", "", "experiment id to run (or \"all\")")
		seed = flag.Int64("seed", 1, "simulation seed")
		full = flag.Bool("full", false, "run at the paper's full horizons (slower)")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-8s %s\n", id, exp.Registry[id].Title)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	ids := []string{*run}
	if *run == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := exp.Run(id, *seed, !*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) [%.1fs wall] ====\n%s\n", id, exp.Registry[id].Title, time.Since(start).Seconds(), out)
	}
}
