// Command nimbus-bench regenerates the paper's tables and figures, and
// benchmarks the simulator through the parallel sweep engine. Each
// experiment id corresponds to one table or figure (see DESIGN.md for the
// index); "all" runs everything. Figure grids fan out across -workers
// cores; results are identical for any worker count. The uniform listing
// flags (shared with nimbus-sim and elasticity) document everything the
// harness can run: -list-experiments (experiment ids), -list-schemes
// (registered scheme specs with typed params), -list-traces (embedded
// capacity traces).
//
// Usage:
//
//	nimbus-bench -list-experiments
//	nimbus-bench -list-schemes
//	nimbus-bench -list-traces
//	nimbus-bench -list-topologies
//	nimbus-bench -run fig08 [-seed 1] [-full] [-workers 8]
//	nimbus-bench -run mobile          # schemes x time-varying link traces
//	nimbus-bench -run coexist         # heterogeneous flow mixes x traces
//	nimbus-bench -run topo            # parking-lot fairness, congested ACK paths
//	nimbus-bench -run churn           # schemes x session-arrival workloads
//	nimbus-bench -run all -full
//	nimbus-bench -benchmark [-bench-out BENCH_runner.json] [-topology access-hop]
//	nimbus-bench -benchmark -churn "bulk(load=24)" -timer-wheel
//	nimbus-bench -grid sweep.json -out results.json
//	nimbus-bench -grid sweep.json -remote http://127.0.0.1:9037 -out results.json
//
// -grid runs an arbitrary sweep described by a runner.Grid JSON file;
// with -remote it is submitted to a nimbus-svc daemon instead of
// simulated locally, streaming the daemon's per-cell progress and saving
// the response verbatim — byte-identical to a local run of the same grid
// (cells the daemon has seen before come from its cache and are not
// simulated at all).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nimbus/internal/crosstraffic"
	"nimbus/internal/exp"
	"nimbus/internal/netem"
	"nimbus/internal/runner"
	"nimbus/internal/scheme"
	"nimbus/internal/svc"
	"nimbus/internal/workload"
)

func main() {
	// main wraps realMain so the deferred profile writers run before the
	// process exits — including on error exits, whose profiles are exactly
	// the ones worth inspecting.
	os.Exit(realMain())
}

func realMain() int {
	var (
		list            = flag.Bool("list", false, "alias for -list-experiments")
		listExperiments = flag.Bool("list-experiments", false, "list experiment ids and exit")
		listSchemes     = flag.Bool("list-schemes", false, "list registered schemes with their typed params and exit")
		listTraces      = flag.Bool("list-traces", false, "list embedded link capacity traces and exit")
		listTopologies  = flag.Bool("list-topologies", false, "list registered topology presets and exit")
		run             = flag.String("run", "", "experiment id to run (or \"all\")")
		topo            = flag.String("topology", "", "topology(ies) for the -benchmark sweep: preset names or chain specs, comma-separated (default: the single bottleneck)")
		burst           = flag.Int("burst", 0, "burst link forwarding budget for the -benchmark sweep (0/1 = off; burst cells get their own scenario keys)")
		churn           = flag.String("churn", "", "churn workload(s) for the -benchmark sweep: workload specs like bulk(load=24), comma-separated (default: no session churn)")
		fluid           = flag.String("fluid", "", "fluid cross-traffic spec(s) for the -benchmark sweep: off, on, or dt=5ms, comma-separated — run the cross aggregate as a rate process instead of packets (fluid cells get their own scenario keys)")
		seed            = flag.Int64("seed", 1, "simulation seed")
		full            = flag.Bool("full", false, "run at the paper's full horizons (slower)")
		workers         = flag.Int("workers", 0, "worker pool size for experiment grids (0 = all cores, 1 = sequential)")
		timerWheel      = flag.Bool("timer-wheel", false, "back every scheduler with the hashed timer wheel instead of the 4-ary heap (identical results; faster under dense timer churn)")
		bench           = flag.Bool("benchmark", false, "run the canonical scenario sweep and report events/sec per scenario")
		benchOut        = flag.String("bench-out", "BENCH_runner.json", "where -benchmark writes its results (.json or .csv)")
		gridFile        = flag.String("grid", "", "run the sweep grid described by this JSON file (a runner.Grid document)")
		remote          = flag.String("remote", "", "submit the -grid or -benchmark sweep to a nimbus-svc daemon at this base URL instead of simulating locally")
		outFile         = flag.String("out", "", "where -grid writes its results (.json or .csv; remote responses are saved verbatim, so use .json)")
		cpuprofile      = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memprofile      = flag.String("memprofile", "", "write a heap profile to this file when the run completes")
	)
	flag.Parse()
	exp.Workers = *workers
	exp.TimerWheel = *timerWheel

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	switch {
	case exp.HandleListFlags(*listSchemes, *listTraces, *listTopologies, *list || *listExperiments):
	case *gridFile != "":
		return runGridFile(*gridFile, *remote, *workers, *outFile)
	case *bench:
		return runBenchmark(*seed, *workers, *benchOut, *topo, *burst, *churn, *fluid, *remote)
	case *run == "":
		flag.Usage()
		return 2
	default:
		ids := []string{*run}
		if *run == "all" {
			ids = exp.IDs()
		}
		for _, id := range ids {
			start := time.Now()
			out, err := exp.Run(id, *seed, !*full)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("==== %s (%s) [%.1fs wall] ====\n%s\n", id, exp.Registry[id].Title, time.Since(start).Seconds(), out)
		}
	}
	return 0
}

// benchGrid is the canonical perf-tracking sweep: every scheme family the
// repo implements against the cross-traffic kinds that stress different
// parts of the stack, at two link rates. It exists so BENCH_runner.json
// is comparable across commits. -topology adds a topology axis (the
// default keeps the historical single-bottleneck grid). -churn swaps the
// cross-traffic axis for session-workload cells, benchmarking the
// scheduler under dense per-flow timer churn.
func benchGrid(seed int64, topos, churns []string, burst int, fluids []string) runner.Grid {
	g := runner.Grid{
		Base: runner.Scenario{
			RTTms: 50, BufferMs: 100, DurationSec: 30, Seed: seed,
			LinkBurst: burst,
		},
		RatesMbps:  []float64{96, 192},
		Schemes:    scheme.Specs("nimbus", "cubic", "bbr", "copa"),
		Topologies: topos,
		Churns:     churns,
		Fluids:     fluids,
		Crosses: []runner.Cross{
			{Kind: "none"},
			{Kind: "poisson", RateMbps: 48},
			{Kind: "cubic"},
		},
	}
	if len(churns) > 0 {
		// Session arrivals are the cross traffic in churn cells; the
		// cross axis would just run the same workload three times.
		g.Crosses = nil
	}
	return g
}

// runGridFile executes an arbitrary sweep grid from a JSON file — the
// same document POST /jobs accepts — either locally or on a nimbus-svc
// daemon. Spec-valued fields (schemes, topologies, flow mixes, churn)
// must already be canonical, as the CLIs and Grid emitters write them:
// the strings enter scenario keys (and so cache keys) verbatim.
func runGridFile(path, remote string, workers int, out string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var g runner.Grid
	if err := json.Unmarshal(b, &g); err != nil {
		fmt.Fprintf(os.Stderr, "-grid %s: %v\n", path, err)
		return 2
	}
	if remote != "" {
		return runRemote(remote, g, workers, out)
	}
	scs := g.Expand()
	fmt.Fprintf(os.Stderr, "grid %s: %d scenarios on %d workers\n", path, len(scs), effectiveWorkers(workers))
	rn := &runner.Runner{Workers: workers, OnProgress: runner.Progress(os.Stderr)}
	start := time.Now()
	rs := rn.Run(scs, exp.RunScenario)
	printResults(rs, time.Since(start).Seconds())
	return writeResults(out, rs)
}

// runRemote submits a grid to a nimbus-svc daemon, streams its per-cell
// progress to stderr, and saves the results document verbatim — the
// bytes the daemon emits are the bytes a local batch run would have
// written, which is what makes remote and local runs comparable with cmp.
func runRemote(base string, g runner.Grid, workers int, out string) int {
	ctx := context.Background()
	client := svc.NewClient(base)
	// Self-healing: back off on load-shed 429s and resume the event
	// stream across a daemon restart instead of failing the sweep.
	client.Retry = svc.DefaultRetry
	created, err := client.Submit(ctx, g, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "remote job %s: %d cells on %s\n", created.ID, created.Total, base)
	if err := client.StreamEvents(ctx, created.ID, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "event stream: %v\n", err)
	}
	raw, err := client.RawResults(ctx, created.ID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var rs []runner.Result
	if err := json.Unmarshal(raw, &rs); err != nil {
		fmt.Fprintf(os.Stderr, "decoding daemon results: %v\n", err)
		return 1
	}
	if st, err := client.Status(ctx, created.ID); err == nil {
		fmt.Fprintf(os.Stderr, "remote job %s: %s — %d hit / %d miss / %d shared / %d errors in %.1fs\n",
			st.ID, st.State, st.Cells.Hit, st.Cells.Miss, st.Cells.Shared, st.Cells.Errors, st.ElapsedSec)
	}
	var wall float64
	for _, r := range rs {
		wall += r.WallSec
	}
	printResults(rs, wall)
	if out != "" {
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "wrote %s (daemon response, verbatim)\n", out)
	}
	return 0
}

// printResults renders the shared per-scenario table plus the aggregate
// throughput line.
func printResults(rs []runner.Result, wall float64) {
	var events uint64
	fmt.Printf("%-36s %12s %10s %12s\n", "scenario", "events", "wall s", "events/s")
	for _, r := range rs {
		if r.Err != "" {
			fmt.Printf("%-36s ERROR: %s\n", r.Scenario.Name, r.Err)
			continue
		}
		events += r.Events
		fmt.Printf("%-36s %12d %10.2f %12.0f\n", r.Scenario.Name, r.Events, r.WallSec, r.EventsPerSec())
	}
	if wall > 0 {
		fmt.Printf("total: %d events in %.1fs wall (%.0f events/s aggregate)\n",
			events, wall, float64(events)/wall)
	}
}

// writeResults persists results locally (JSON or CSV by extension),
// reporting the path like every other emit path in this binary.
func writeResults(out string, rs []runner.Result) int {
	if out == "" {
		return 0
	}
	if err := runner.WriteFile(out, rs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	return 0
}

func runBenchmark(seed int64, workers int, out, topo string, burst int, churn, fluid, remote string) int {
	var topos []string
	for _, it := range scheme.SplitList(topo) {
		c, err := netem.CanonicalTopology(it)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-topology:", err)
			return 2
		}
		topos = append(topos, c)
	}
	var churns []string
	for _, it := range scheme.SplitList(churn) {
		wsp, err := workload.ParseSpec(it)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-churn:", err)
			return 2
		}
		churns = append(churns, wsp.String())
	}
	if burst < 0 || burst > netem.MaxBurst {
		fmt.Fprintf(os.Stderr, "-burst: budget %d out of range 0..%d\n", burst, netem.MaxBurst)
		return 2
	}
	var fluids []string
	for _, it := range scheme.SplitList(fluid) {
		fs, err := crosstraffic.ParseFluidSpec(it)
		if err != nil {
			fmt.Fprintln(os.Stderr, "-fluid:", err)
			return 2
		}
		fluids = append(fluids, fs.String())
	}
	g := benchGrid(seed, topos, churns, burst, fluids)
	if remote != "" {
		return runRemote(remote, g, workers, out)
	}
	scs := g.Expand()
	fmt.Fprintf(os.Stderr, "benchmark: %d scenarios on %d workers\n", len(scs), effectiveWorkers(workers))
	start := time.Now()
	rn := &runner.Runner{Workers: workers, OnProgress: runner.Progress(os.Stderr)}
	rs := rn.Run(scs, exp.RunScenario)
	wall := time.Since(start).Seconds()

	for _, r := range rs {
		if r.Err != "" {
			fmt.Fprintf(os.Stderr, "scenario %s failed: %s\n", r.Scenario.Name, r.Err)
			return 1
		}
	}
	printResults(rs, wall)
	return writeResults(out, rs)
}

func effectiveWorkers(w int) int {
	if w == 0 {
		return runner.DefaultWorkers()
	}
	return w
}
