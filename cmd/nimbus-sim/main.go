// Command nimbus-sim runs scenarios on the emulated bottleneck. With
// scalar flags it runs one scenario and prints a per-second trace plus a
// summary — the quickest way to watch Nimbus (or any baseline) against a
// chosen cross traffic mix. Schemes are typed specs resolved in the
// scheme registry: "-scheme nimbus(pulse=0.1,mu=est)" parameterizes the
// scheme inline (-list-schemes documents every scheme and parameter).
// "-flows nimbus*2+cubic@10" replaces the single scheme under test with
// a heterogeneous flow mix (counts, staggered joins, finite flows) and
// reports per-flow throughput plus Jain/JSD fairness. "-churn
// bulk(load=24)" runs a session-arrival workload (internal/workload)
// against the scheme under test — short flows arriving and departing for
// the whole horizon — and reports churn_* metrics (completion times,
// fairness, elastic ground truth) alongside the usual ones. The bottleneck may
// be time-varying: -link-trace names an embedded capacity trace (or a
// time_ms,mbps file) and -rate-pattern applies a step/ramp/outage
// pattern to the nominal rate. The path may be multi-hop: -topology
// selects a registered preset (single, access-hop, parking-lot,
// rev-congested; see -list-topologies) or a chain spec like
// "access(x4,5ms)->bn", and multi-hop runs report per-hop
// utilization/drops/queueing. Any of -scheme, -flows, -churn, -rate,
// -rtt, -buf, -aqm, -cross, -link-trace, -rate-pattern, -topology and -seed
// also accept comma-separated lists (commas inside a spec's parentheses
// don't split); the cartesian product then runs as a parallel sweep on
// -workers cores and prints one summary row per scenario (optionally
// written to -out as JSON or CSV).
//
// Examples:
//
//	nimbus-sim -scheme nimbus -rate 96 -rtt 50ms -buf 100ms -cross cubic -dur 60s
//	nimbus-sim -scheme "nimbus(pulse=0.125,mu=est),cubic,bbr" -rate 48,96 \
//	    -cross poisson -workers 8 -out sweep.csv
//	nimbus-sim -flows "nimbus+cubic,nimbus*2+bbr@10" -link-trace cell-ramp,wifi-cafe
//	nimbus-sim -scheme nimbus -rate-pattern step:12:48:4000,outage:20000:5000 -dur 60s
//	nimbus-sim -scheme nimbus,cubic -topology access-hop,parking-lot -out topo.json
//	nimbus-sim -scheme nimbus -churn "bulk(load=24),web(load=12)" -dur 60s
//	nimbus-sim -list-schemes
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"nimbus/internal/crosstraffic"
	"nimbus/internal/exp"
	"nimbus/internal/netem"
	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/workload"
)

func main() {
	// main wraps realMain so the deferred profile writers run before the
	// process exits.
	os.Exit(realMain())
}

func realMain() int {
	var (
		scheme  = flag.String("scheme", "nimbus", "scheme spec(s) under test, comma-separated (see -list-schemes)")
		flows   = flag.String("flows", "", "heterogeneous flow mix(es) replacing -scheme: SPEC[*COUNT][@STARTs[:STOPs]] joined by \"+\"; comma-separated for sweeps")
		churn   = flag.String("churn", "", "session-arrival workload(s) competing with -scheme: workload specs like bulk(load=24), web(load=12,cc=bbr), trace(src=flash-crowd); comma-separated for sweeps")
		rate    = flag.String("rate", "96", "bottleneck link rate(s), Mbit/s, comma-separated")
		rtt     = flag.String("rtt", "50ms", "base RTT(s), comma-separated durations")
		buf     = flag.String("buf", "100ms", "buffer depth(s) (time at link rate), comma-separated durations")
		aqm     = flag.String("aqm", "droptail", "queue discipline(s): droptail, pie, codel; comma-separated")
		trace   = flag.String("link-trace", "", "time-varying link capacity trace(s): embedded names (see -list-traces) or time_ms,mbps files; comma-separated")
		pattern = flag.String("rate-pattern", "", "time-varying link pattern(s): step:LO:HI:PERIODms, ramp:MIN:MAX:PERIODms, outage:ATms:DURms, constant; comma-separated")
		topo    = flag.String("topology", "", "path topology(ies): preset names (see -list-topologies) or chain specs like access(x4,5ms)->bn; comma-separated")
		burst   = flag.Int("burst", 0, "burst link forwarding budget: retire up to N packets per completion event on constant-rate drop-tail links (0/1 = off; changes event timing, not counters)")
		cross   = flag.String("cross", "none", "cross traffic: none, cubic, reno, poisson, cbr, trace, video4k, video1080p")
		crossMb = flag.Float64("cross-rate", 48, "cross traffic rate for poisson/cbr/trace, Mbit/s")
		fluid   = flag.String("fluid", "", "fluid cross-traffic spec(s): off, on, or dt=5ms, comma-separated for sweeps — simulate the cross aggregate as a rate process instead of packets (cbr/poisson/cubic/reno kinds only; approximate, so fluid cells get their own scenario keys)")
		dur     = flag.Duration("dur", 60*time.Second, "simulated duration")
		seed    = flag.String("seed", "1", "random seed(s), comma-separated")
		workers = flag.Int("workers", 0, "sweep worker pool size (0 = all cores, 1 = sequential)")
		wheel   = flag.Bool("timer-wheel", false, "back every scheduler with the hashed timer wheel instead of the 4-ary heap (identical results; faster under dense timer churn)")
		out     = flag.String("out", "", "write sweep results to this file (.json or .csv)")
		quiet   = flag.Bool("quiet", false, "suppress the per-second trace (single-scenario mode)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file when the run completes")

		listSchemes     = flag.Bool("list-schemes", false, "list registered schemes with their typed params and exit")
		listTraces      = flag.Bool("list-traces", false, "list embedded link capacity traces and exit")
		listTopologies  = flag.Bool("list-topologies", false, "list registered topology presets and exit")
		listExperiments = flag.Bool("list-experiments", false, "list paper experiment ids (run them with nimbus-bench -run) and exit")
	)
	flag.Parse()
	exp.TimerWheel = *wheel
	if exp.HandleListFlags(*listSchemes, *listTraces, *listTopologies, *listExperiments) {
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *burst < 0 || *burst > netem.MaxBurst {
		fatalf("-burst: budget %d out of range 0..%d", *burst, netem.MaxBurst)
	}
	grid := runner.Grid{
		Base: runner.Scenario{
			CrossRateMbps: *crossMb,
			DurationSec:   sim.FromDuration(*dur).Seconds(),
			LinkBurst:     *burst,
		},
		RatesMbps:    parseFloats(*rate, "-rate"),
		LinkTraces:   splitStrings(*trace),
		RatePatterns: splitStrings(*pattern),
		Topologies:   topoList(*topo),
		RTTsMs:       parseDurationsMs(*rtt, "-rtt"),
		BuffersMs:    parseDurationsMs(*buf, "-buf"),
		AQMs:         splitStrings(*aqm),
		Crosses:      crossList(*cross, *crossMb),
		Fluids:       fluidList(*fluid),
		Seeds:        parseInts(*seed, "-seed"),
	}
	if *flows != "" {
		if *churn != "" {
			fatalf("-flows and -churn are mutually exclusive")
		}
		grid.FlowMixes = flowMixes(*flows)
	} else {
		grid.Schemes = specList(*scheme)
		if len(grid.Schemes) == 0 {
			fatalf("-scheme: no values given")
		}
	}
	grid.Churns = churnList(*churn)
	scs := grid.Expand()
	if len(scs) == 1 {
		// Single-scenario mode runs with the requested seed itself (the
		// historical behavior); seed derivation only matters for sweeps,
		// where cells must not share random streams.
		scs[0].RunSeed = 0
		runSingle(scs[0], *quiet)
		return 0
	}
	runSweep(scs, *workers, *out)
	return 0
}

// fluidList splits and canonicalizes the -fluid value: "off"/"none" map
// to the empty (exact per-packet) axis value, "on" and "dt=..." to
// their canonical spec strings, so equivalent spellings land on the
// same scenario key and derived seed.
func fluidList(s string) []string {
	items := splitStrings(s)
	for i, it := range items {
		fs, err := crosstraffic.ParseFluidSpec(it)
		if err != nil {
			fatalf("-fluid: %v", err)
		}
		items[i] = fs.String()
	}
	return items
}

// specList parses a comma-separated scheme spec list, validating each
// spec against the registry (names and parameters) so typos fail before
// the sweep starts.
func specList(s string) []spec.Spec {
	sps, err := spec.ParseList(s)
	if err != nil {
		fatalf("-scheme: %v", err)
	}
	for _, sp := range sps {
		if err := spec.Validate(sp); err != nil {
			fatalf("-scheme: %v (see -list-schemes)", err)
		}
	}
	return sps
}

// flowMixes splits and validates the -flows value — mix syntax plus
// every item's scheme spec — and canonicalizes each mix, so equivalent
// spellings ("nimbus + cubic" vs "nimbus+cubic") land on the same
// scenario key and derived seed.
func flowMixes(s string) []string {
	mixes := spec.SplitList(s)
	if len(mixes) == 0 {
		fatalf("-flows: no values given")
	}
	for i, mix := range mixes {
		fss, err := exp.ParseFlowMix(mix)
		if err != nil {
			fatalf("-flows: %v", err)
		}
		for _, fs := range fss {
			if err := spec.Validate(fs.Scheme); err != nil {
				fatalf("-flows: %v (see -list-schemes)", err)
			}
		}
		mixes[i] = exp.FormatFlowMix(fss)
	}
	return mixes
}

// churnList splits and canonicalizes the -churn value (commas inside a
// workload spec's parentheses don't split): equivalent spellings like
// "bulk(load=24.0)" and "bulk(load=24)" land on the same scenario key
// and derived seed.
func churnList(s string) []string {
	items := spec.SplitList(s)
	for i, it := range items {
		wsp, err := workload.ParseSpec(it)
		if err != nil {
			fatalf("-churn: %v", err)
		}
		items[i] = wsp.String()
	}
	return items
}

// topoList splits and canonicalizes the -topology value (commas inside a
// chain spec's parentheses don't split). Canonicalization maps the single
// topology to "", so "-topology single" lands on the same scenario key
// (and seed, and results) as the default.
func topoList(s string) []string {
	items := spec.SplitList(s)
	for i, it := range items {
		c, err := netem.CanonicalTopology(it)
		if err != nil {
			fatalf("-topology: %v (see -list-topologies)", err)
		}
		items[i] = c
	}
	return items
}

// crossList expands a comma-separated -cross value; every kind shares the
// -cross-rate.
func crossList(kinds string, rateMbps float64) []runner.Cross {
	var out []runner.Cross
	for _, k := range splitStrings(kinds) {
		out = append(out, runner.Cross{Kind: k, RateMbps: rateMbps})
	}
	if len(out) == 0 {
		fatalf("-cross: no values given")
	}
	return out
}

// runSweep executes the grid on the worker pool and prints a summary table.
func runSweep(scs []runner.Scenario, workers int, out string) {
	rn := &runner.Runner{Workers: workers, OnProgress: runner.Progress(os.Stderr)}
	rs := rn.Run(scs, exp.RunScenario)

	fmt.Printf("%-40s %10s %12s %12s %12s\n", "scenario", "Mbit/s", "qdelay p95", "mode sw", "events/s")
	for _, r := range rs {
		if r.Err != "" {
			fmt.Printf("%-40s ERROR: %s\n", r.Scenario.Name, r.Err)
			continue
		}
		modeSw := "-"
		if v, ok := r.Metrics["mode_switches"]; ok {
			modeSw = strconv.Itoa(int(v))
		}
		fmt.Printf("%-40s %10.2f %9.1f ms %12s %12.0f\n",
			r.Scenario.Name, r.Metrics["mean_mbps"], r.Metrics["qdelay_p95_ms"], modeSw, r.EventsPerSec())
	}
	if out != "" {
		if err := runner.WriteFile(out, rs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
}

// runSingle preserves the classic single-scenario view: a per-second
// trace of throughput, queueing delay and Nimbus mode, then a summary.
func runSingle(sc runner.Scenario, quiet bool) {
	if sc.FlowMix != "" || sc.Churn != "" {
		runSingleMetrics(sc)
		return
	}
	r, scheme, probe, err := rigFor(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	end := sim.FromSeconds(sc.DurationSec)
	if !quiet {
		fmt.Printf("%6s %10s %10s %8s %10s\n", "t(s)", "Mbit/s", "delay(ms)", "mode", "eta")
		var report func()
		report = func() {
			now := r.Sch.Now()
			if now > 0 {
				mode, eta := "-", "-"
				if scheme.Nimbus != nil {
					mode = scheme.Nimbus.Mode().String()
					eta = fmt.Sprintf("%.2f", scheme.Nimbus.LastEta())
				}
				fmt.Printf("%6.0f %10.2f %10.2f %8s %10s\n",
					now.Seconds(),
					probe.MeanMbps(now-sim.Second, now),
					r.Net.QueueDelayNow().Millis(),
					mode, eta)
			}
			if now < end {
				r.Sch.After(sim.Second, report)
			}
		}
		r.Sch.After(0, report)
	}
	r.Sch.RunUntil(end)

	fmt.Printf("\nsummary: scheme=%s mean=%.2f Mbit/s", sc.Scheme, probe.MeanMbps(0, end))
	d := probe.Delay.Summary()
	fmt.Printf(" qdelay mean=%.1fms p50=%.1fms p95=%.1fms", d.Mean, d.P50, d.P95)
	if scheme.Nimbus != nil {
		fmt.Printf(" modeSwitches=%d finalMode=%s role=%s",
			scheme.Nimbus.ModeSwitches, scheme.Nimbus.Mode(), scheme.Nimbus.Role())
	}
	fmt.Println()
}

// runSingleMetrics runs one flow-mix or churn scenario and prints every
// metric the run produced (per-flow throughputs, fairness, delays,
// churn_* summaries), sorted by name.
func runSingleMetrics(sc runner.Scenario) {
	r := exp.RunScenario(sc)
	if r.Err != "" {
		fmt.Fprintln(os.Stderr, r.Err)
		os.Exit(2)
	}
	if sc.FlowMix != "" {
		fmt.Printf("flows: %s\n", sc.FlowMix)
	} else {
		fmt.Printf("scheme: %s  churn: %s\n", sc.Scheme, sc.Churn)
	}
	names := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("%-18s %12.3f\n", k, r.Metrics[k])
	}
}

// rigFor materializes the scenario, turning harness panics (unknown
// scheme or AQM) into flag-style errors instead of stack traces.
func rigFor(sc runner.Scenario) (r *exp.Rig, scheme exp.Scheme, probe *exp.FlowProbe, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%v", p)
		}
	}()
	return exp.RigForScenario(sc)
}

func splitStrings(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseFloats(s, flagName string) []float64 {
	var out []float64
	for _, p := range splitStrings(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			fatalf("%s: bad value %q: %v", flagName, p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("%s: no values given", flagName)
	}
	return out
}

func parseInts(s, flagName string) []int64 {
	var out []int64
	for _, p := range splitStrings(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			fatalf("%s: bad value %q: %v", flagName, p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fatalf("%s: no values given", flagName)
	}
	return out
}

func parseDurationsMs(s, flagName string) []float64 {
	var out []float64
	for _, p := range splitStrings(s) {
		d, err := time.ParseDuration(p)
		if err != nil {
			fatalf("%s: bad duration %q: %v", flagName, p, err)
		}
		out = append(out, sim.FromDuration(d).Millis())
	}
	if len(out) == 0 {
		fatalf("%s: no values given", flagName)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
