// Command nimbus-sim runs a single configurable scenario on the emulated
// bottleneck and prints a per-second trace plus a summary. It is the
// quickest way to watch Nimbus (or any baseline) against a chosen cross
// traffic mix.
//
// Example:
//
//	nimbus-sim -scheme nimbus -rate 96 -rtt 50ms -buf 100ms \
//	    -cross cubic -dur 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nimbus/internal/exp"
	"nimbus/internal/sim"
)

func main() {
	var (
		scheme  = flag.String("scheme", "nimbus", "congestion control scheme (see internal/exp.NewScheme)")
		rate    = flag.Float64("rate", 96, "bottleneck link rate, Mbit/s")
		rtt     = flag.Duration("rtt", 50*time.Millisecond, "base RTT")
		buf     = flag.Duration("buf", 100*time.Millisecond, "buffer depth (time at link rate)")
		aqm     = flag.String("aqm", "droptail", "queue discipline: droptail, pie, codel")
		cross   = flag.String("cross", "none", "cross traffic: none, cubic, reno, poisson, cbr, trace, video4k, video1080p")
		crossMb = flag.Float64("cross-rate", 48, "cross traffic rate for poisson/cbr/trace, Mbit/s")
		dur     = flag.Duration("dur", 60*time.Second, "simulated duration")
		seed    = flag.Int64("seed", 1, "random seed")
		quiet   = flag.Bool("quiet", false, "suppress the per-second trace")
	)
	flag.Parse()

	r := exp.NewRig(exp.NetConfig{
		RateMbps: *rate,
		RTT:      sim.FromDuration(*rtt),
		Buffer:   sim.FromDuration(*buf),
		AQM:      *aqm,
		Seed:     *seed,
	})
	sch := exp.NewScheme(*scheme, r.MuBps, exp.SchemeOpts{})
	probe := r.AddFlow(sch, sim.FromDuration(*rtt), 0)
	if err := exp.AddCross(r, *cross, *crossMb*1e6, sim.FromDuration(*rtt)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	end := sim.FromDuration(*dur)
	if !*quiet {
		fmt.Printf("%6s %10s %10s %8s %10s\n", "t(s)", "Mbit/s", "delay(ms)", "mode", "eta")
		var report func()
		report = func() {
			now := r.Sch.Now()
			if now > 0 {
				mode, eta := "-", "-"
				if sch.Nimbus != nil {
					mode = sch.Nimbus.Mode().String()
					eta = fmt.Sprintf("%.2f", sch.Nimbus.LastEta())
				}
				fmt.Printf("%6.0f %10.2f %10.2f %8s %10s\n",
					now.Seconds(),
					probe.MeanMbps(now-sim.Second, now),
					r.Net.QueueDelayNow().Millis(),
					mode, eta)
			}
			if now < end {
				r.Sch.After(sim.Second, report)
			}
		}
		r.Sch.After(0, report)
	}
	r.Sch.RunUntil(end)

	fmt.Printf("\nsummary: scheme=%s mean=%.2f Mbit/s", *scheme, probe.MeanMbps(0, end))
	d := probe.Delay.Summary()
	fmt.Printf(" qdelay mean=%.1fms p50=%.1fms p95=%.1fms", d.Mean, d.P50, d.P95)
	if sch.Nimbus != nil {
		fmt.Printf(" modeSwitches=%d finalMode=%s role=%s",
			sch.Nimbus.ModeSwitches, sch.Nimbus.Mode(), sch.Nimbus.Role())
	}
	fmt.Println()
}
