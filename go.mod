module nimbus

go 1.23
