module nimbus

go 1.24
