package nimbus

import (
	"math"
	"testing"

	"nimbus/internal/exp"
	"nimbus/internal/fft"
	"nimbus/internal/netem"
	"nimbus/internal/runner"
	scheme "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

// One benchmark per paper artifact: each iteration regenerates the
// table/figure at the quick horizon and reports simulated seconds per
// wall second. Run a single artifact with e.g.
//
//	go test -bench BenchmarkFig08 -benchtime 1x
//
// The full-horizon reproductions are produced by cmd/nimbus-bench -full.
func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := exp.Run(id, int64(i)+1, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig01(b *testing.B)  { benchExperiment(b, "fig01") }
func BenchmarkFig03(b *testing.B)  { benchExperiment(b, "fig03") }
func BenchmarkFig04(b *testing.B)  { benchExperiment(b, "fig04") }
func BenchmarkFig05(b *testing.B)  { benchExperiment(b, "fig05") }
func BenchmarkFig06(b *testing.B)  { benchExperiment(b, "fig06") }
func BenchmarkFig07(b *testing.B)  { benchExperiment(b, "fig07") }
func BenchmarkFig08(b *testing.B)  { benchExperiment(b, "fig08") }
func BenchmarkFig09(b *testing.B)  { benchExperiment(b, "fig09") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }
func BenchmarkFig23(b *testing.B)  { benchExperiment(b, "fig23") }
func BenchmarkFig24(b *testing.B)  { benchExperiment(b, "fig24") }
func BenchmarkFig25(b *testing.B)  { benchExperiment(b, "fig25") }
func BenchmarkFig26(b *testing.B)  { benchExperiment(b, "fig26") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTableE(b *testing.B) { benchExperiment(b, "tableE") }
func BenchmarkMobile(b *testing.B) { benchExperiment(b, "mobile") }
func BenchmarkTopo(b *testing.B)   { benchExperiment(b, "topo") }

// Micro-benchmarks of the hot paths.

func BenchmarkFFT512(b *testing.B) {
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = 48e6 + 6e6*math.Sin(2*math.Pi*5*float64(i)*0.01)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := fft.Analyze(samples, 100)
		if spec.At(5) == 0 {
			b.Fatal("no signal")
		}
	}
}

func BenchmarkGoertzel(b *testing.B) {
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = math.Sin(2 * math.Pi * 5 * float64(i) * 0.01)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fft.Goertzel(samples, 100, 5)
	}
}

func BenchmarkDetectorTick(b *testing.B) {
	det := NewDetector(DefaultDetectorConfig())
	for i := 0; i < det.WindowSamples(); i++ {
		det.AddSample(48e6 + 6e6*math.Sin(2*math.Pi*5*float64(i)*0.01))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.AddSample(48e6)
		if det.Elasticity(5) <= 0 {
			b.Fatal("eta <= 0")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput: one Cubic
// flow saturating a 96 Mbit/s link; the metric is simulated packet
// deliveries per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := exp.NewRig(exp.NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: int64(i)})
		s := exp.MustScheme("cubic", r.MuBps)
		r.AddFlow(s, 50*sim.Millisecond, 0)
		r.Sch.RunUntil(10 * sim.Second)
		b.ReportMetric(float64(r.Link.DeliveredPackets)/float64(b.N), "pkts/op")
	}
}

// BenchmarkTopologyThroughput measures multi-hop forwarding in steady
// state: one packet pushed end-to-end across the access-hop topology
// (two links, an inter-hop wire, receiver delivery, pool recycling) per
// op, with the rig built once and all pools warmed before the timer
// starts. The CI bench smoke gates allocs/op at zero: hop forwarding
// must stay on pooled timers and the shared packet pool.
func BenchmarkTopologyThroughput(b *testing.B) {
	r := exp.NewRig(exp.NetConfig{
		RateMbps: 96, RTT: 10 * sim.Millisecond, Buffer: 100 * sim.Millisecond,
		Seed: 1, Topology: "access-hop",
	})
	att := r.Net.AttachOn("", 10*sim.Millisecond)
	att.Receive = func(p *netem.Packet, now sim.Time) { r.Net.PutPacket(p) }
	seq := uint64(0)
	send := func() {
		p := r.Net.GetPacket()
		*p = netem.Packet{Seq: seq, Size: 1500}
		seq++
		att.Send(p)
		r.Sch.Run()
	}
	for i := 0; i < 256; i++ {
		send() // warm the packet pool, timer pool, and queue rings
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
}

// BenchmarkSimulatorThroughputBurst is BenchmarkSimulatorThroughput with
// burst link forwarding on (budget 16): the same Cubic flow, but the
// bottleneck retires queued back-to-back packets with one completion
// event each. Compare against the ungated baseline for the event-count
// win; the flag changes event timing, not counters (see netem.SetBurst).
func BenchmarkSimulatorThroughputBurst(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := exp.NewRig(exp.NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: int64(i), LinkBurst: 16})
		s := exp.MustScheme("cubic", r.MuBps)
		r.AddFlow(s, 50*sim.Millisecond, 0)
		r.Sch.RunUntil(10 * sim.Second)
		b.ReportMetric(float64(r.Link.DeliveredPackets)/float64(b.N), "pkts/op")
	}
}

// BenchmarkNimbusFlow measures the full Nimbus stack (detector, pulses,
// FFT every 10 ms) in simulation.
func BenchmarkNimbusFlow(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := exp.NewRig(exp.NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: int64(i)})
		s := exp.MustScheme("nimbus", r.MuBps)
		r.AddFlow(s, 50*sim.Millisecond, 0)
		r.Sch.RunUntil(10 * sim.Second)
	}
}

// BenchmarkNimbusFlowRFFT is BenchmarkNimbusFlow with the packed
// real-input FFT detector path (nimbus(rfft)): the FFT-heavy cell the
// rFFT optimization targets.
func BenchmarkNimbusFlowRFFT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := exp.NewRig(exp.NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: int64(i)})
		s := exp.MustScheme("nimbus(rfft)", r.MuBps)
		r.AddFlow(s, 50*sim.Millisecond, 0)
		r.Sch.RunUntil(10 * sim.Second)
	}
}

// BenchmarkSweepFluidVsPacket runs the fidelity family's headline cell
// (a Nimbus flow against 84 Mbit/s of CBR cross traffic, 0.875 of the
// bottleneck) twice per iteration — exact per-packet cross traffic, then
// the same aggregate as a fluid rate process — and reports the event
// reduction the fluid path buys. The CI bench smoke gates events_ratio
// at >= 3x (scripts/check_bench.sh); the fidelity experiment family
// gates the accuracy side of the same trade.
func BenchmarkSweepFluidVsPacket(b *testing.B) {
	base := runner.Scenario{
		Scheme: scheme.New("nimbus"), RateMbps: 96, RTTms: 50, BufferMs: 100,
		Cross: "cbr", CrossRateMbps: 84,
		DurationSec: 10, Seed: 1,
	}
	fluid := base
	fluid.FluidCross = "on"
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		base.Seed, fluid.Seed = int64(i)+1, int64(i)+1
		rp := exp.RunScenario(base)
		rf := exp.RunScenario(fluid)
		if rp.Err != "" || rf.Err != "" {
			b.Fatalf("packet err=%q fluid err=%q", rp.Err, rf.Err)
		}
		ratio = float64(rp.Events) / float64(rf.Events)
	}
	b.ReportMetric(ratio, "events_ratio")
}
