package svc

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nimbus/internal/runner"
)

func testScenario(seed int64) runner.Scenario {
	return runner.Scenario{
		Name: "cell", RateMbps: 96, RTTms: 50, BufferMs: 100,
		DurationSec: 30, Seed: seed,
	}
}

func testResult(sc runner.Scenario) runner.Result {
	return runner.Result{
		Scenario: sc,
		Metrics:  map[string]float64{"mean_mbps": 42.5, "qdelay_p95_ms": 3.25},
		Events:   123456,
		WallSec:  1.5,
	}
}

func newTestStore(t *testing.T, dir string, entries int, version string) *Store {
	t.Helper()
	s, err := NewStore(dir, entries, version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreSingleflight: N concurrent submitters of the same cell run ONE
// simulation; everyone gets its result; exactly one caller reports Miss
// and the rest report Shared (none of them hit memory — the entry did not
// exist when they arrived).
func TestStoreSingleflight(t *testing.T) {
	s := newTestStore(t, t.TempDir(), 16, "v1")
	sc := testScenario(1)
	key := s.Key(sc)

	var runs atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	results := make([]runner.Result, callers)
	outcomes := make([]Outcome, callers)
	var ready, finished sync.WaitGroup
	ready.Add(callers)
	finished.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer finished.Done()
			ready.Done()
			results[i], outcomes[i] = s.GetOrRun(context.Background(), key, func() runner.Result {
				runs.Add(1)
				<-gate // hold the flight open until every caller has arrived
				return testResult(sc)
			})
		}()
	}
	ready.Wait()
	// Every caller is launched; the one holding the flight is parked on
	// the gate and the rest are (or will be) waiting on it. Waiters
	// accumulate in the Shared counter — poll it so the gate only opens
	// once all 15 are provably parked on the flight, making the "one run"
	// assertion meaningful rather than racy.
	for s.Stats().Shared < callers-1 {
		runtime.Gosched()
	}
	close(gate)
	finished.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent submitters ran %d simulations, want 1", callers, got)
	}
	miss, shared := 0, 0
	for i := range outcomes {
		switch outcomes[i] {
		case Miss:
			miss++
		case Shared:
			shared++
		default:
			t.Fatalf("caller %d: unexpected outcome %v", i, outcomes[i])
		}
		if results[i].Events != 123456 {
			t.Fatalf("caller %d got wrong result: %+v", i, results[i])
		}
	}
	if miss != 1 || shared != callers-1 {
		t.Fatalf("outcomes: %d miss + %d shared, want 1 + %d", miss, shared, callers-1)
	}
}

// TestStoreCorruptEntryIsMissAndRewritten: truncated or foreign bytes at
// a key's content address are treated as a miss, the cell re-simulates,
// and the entry is atomically rewritten to a valid one.
func TestStoreCorruptEntryIsMissAndRewritten(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir, 16, "v1")
	sc := testScenario(1)
	key := s.Key(sc)

	for name, garbage := range map[string]string{
		"truncated-json": `{"key":"` + key + `","result":{"scenario":{"na`,
		"empty":          "",
		"foreign":        `{"hello":"world"}`,
	} {
		if err := os.WriteFile(s.Path(key), []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		runs := 0
		r, oc := s.GetOrRun(context.Background(), key, func() runner.Result {
			runs++
			return testResult(sc)
		})
		if oc != Miss || runs != 1 {
			t.Fatalf("%s: outcome %v after %d runs, want miss after 1", name, oc, runs)
		}
		if r.Events != 123456 {
			t.Fatalf("%s: wrong result %+v", name, r)
		}
		// The entry is rewritten and valid: a fresh store (cold memory
		// tier) must read it back from disk.
		cold := newTestStore(t, dir, 16, "v1")
		if got, ok := cold.Get(key); !ok || got.Events != 123456 {
			t.Fatalf("%s: rewritten entry unreadable: ok=%v %+v", name, ok, got)
		}
		if cold.Stats().Corrupt != 0 {
			t.Fatalf("%s: rewritten entry still counts corrupt", name)
		}
		// No temp files leak from the atomic write.
		ents, err := filepath.Glob(filepath.Join(dir, ".put-*"))
		if err != nil || len(ents) != 0 {
			t.Fatalf("%s: leftover temp files %v (err %v)", name, ents, err)
		}
		// Reset the memory tier for the next flavor of garbage.
		s = newTestStore(t, dir, 16, "v1")
	}
}

// TestStoreCodeVersionInvalidates: the same scenario under a different
// code version is a different content address — a rebuilt simulator never
// serves results computed by the old code.
func TestStoreCodeVersionInvalidates(t *testing.T) {
	dir := t.TempDir()
	sc := testScenario(1)

	v1 := newTestStore(t, dir, 16, "v1")
	runs := 0
	run := func() runner.Result { runs++; return testResult(sc) }
	if _, oc := v1.GetOrRun(context.Background(), v1.Key(sc), run); oc != Miss {
		t.Fatalf("first run: outcome %v, want miss", oc)
	}

	v2 := newTestStore(t, dir, 16, "v2")
	if v1.Key(sc) == v2.Key(sc) {
		t.Fatalf("code version not in cache key: %s", v1.Key(sc))
	}
	if _, oc := v2.GetOrRun(context.Background(), v2.Key(sc), run); oc != Miss {
		t.Fatalf("changed code version: outcome %v, want miss", oc)
	}
	if runs != 2 {
		t.Fatalf("ran %d simulations across versions, want 2", runs)
	}
	// Same version, fresh process: served from disk without running.
	v1b := newTestStore(t, dir, 16, "v1")
	if _, oc := v1b.GetOrRun(context.Background(), v1b.Key(sc), run); oc != HitDisk {
		t.Fatalf("same code version across restart: outcome %v, want disk hit", oc)
	}
	if runs != 2 {
		t.Fatalf("restart re-ran the simulation (%d runs)", runs)
	}
}

// TestStoreTiers walks one key through the tiers: miss → memory hit →
// (evicted) disk hit → memory hit again.
func TestStoreTiers(t *testing.T) {
	s := newTestStore(t, t.TempDir(), 1, "v1") // memory tier holds ONE entry
	a, b := testScenario(1), testScenario(2)
	run := func(sc runner.Scenario) func() runner.Result {
		return func() runner.Result { return testResult(sc) }
	}

	if _, oc := s.GetOrRun(context.Background(), s.Key(a), run(a)); oc != Miss {
		t.Fatalf("a: %v, want miss", oc)
	}
	if _, oc := s.GetOrRun(context.Background(), s.Key(a), run(a)); oc != HitMem {
		t.Fatalf("a again: %v, want memory hit", oc)
	}
	// b evicts a from the single-entry memory tier...
	if _, oc := s.GetOrRun(context.Background(), s.Key(b), run(b)); oc != Miss {
		t.Fatalf("b: %v, want miss", oc)
	}
	if st := s.Stats(); st.Evictions != 1 || st.MemEntries != 1 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// ...but a's disk copy survives.
	if _, oc := s.GetOrRun(context.Background(), s.Key(a), run(a)); oc != HitDisk {
		t.Fatalf("a after eviction: %v, want disk hit", oc)
	}
	if _, oc := s.GetOrRun(context.Background(), s.Key(a), run(a)); oc != HitMem {
		t.Fatalf("a promoted: %v, want memory hit", oc)
	}
}

// TestStoreErrorResultsNotCached: a failing cell reports its error but is
// re-attempted on the next request instead of pinning the failure.
func TestStoreErrorResultsNotCached(t *testing.T) {
	s := newTestStore(t, t.TempDir(), 16, "v1")
	sc := testScenario(1)
	key := s.Key(sc)
	runs := 0
	fail := func() runner.Result {
		runs++
		return runner.Result{Scenario: sc, Err: "bad scheme"}
	}
	if r, oc := s.GetOrRun(context.Background(), key, fail); oc != Miss || r.Err == "" {
		t.Fatalf("outcome %v err %q", oc, r.Err)
	}
	if r, oc := s.GetOrRun(context.Background(), key, fail); oc != Miss || r.Err == "" {
		t.Fatalf("second attempt: outcome %v err %q — error was cached", oc, r.Err)
	}
	if runs != 2 {
		t.Fatalf("error result cached after %d runs", runs)
	}
	if _, err := os.Stat(s.Path(key)); !os.IsNotExist(err) {
		t.Fatalf("error result written to disk: %v", err)
	}
}

// TestStoreDiskEnvelope pins the on-disk layout (docs/service.md): the
// file sits at sha256(key).json and holds {"key": ..., "result": ...},
// with the recorded key checked on read so a hash collision or a file
// renamed by hand cannot serve the wrong scenario's result.
func TestStoreDiskEnvelope(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, dir, 16, "v1")
	sc := testScenario(1)
	key := s.Key(sc)
	wantSuffix := "/" + "1" + "/v1" // CacheKey = Key()/seed/codeVersion
	if !strings.HasSuffix(key, wantSuffix) {
		t.Fatalf("store key %q does not end in %q", key, wantSuffix)
	}
	s.GetOrRun(context.Background(), key, func() runner.Result { return testResult(sc) })

	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	if e.Key != key || e.Result.Events != 123456 {
		t.Fatalf("envelope %+v does not round-trip key/result", e)
	}

	// An entry recorded under a different key is rejected even though it
	// is valid JSON at the right path.
	other := s.Key(testScenario(2))
	e.Key = other
	b, _ = json.Marshal(e)
	if err := os.WriteFile(s.Path(key), b, 0o644); err != nil {
		t.Fatal(err)
	}
	cold := newTestStore(t, dir, 16, "v1")
	if _, ok := cold.Get(key); ok {
		t.Fatal("entry with mismatched recorded key served as a hit")
	}
	if cold.Stats().Corrupt != 1 {
		t.Fatalf("key mismatch not counted corrupt: %+v", cold.Stats())
	}
}
