// Package svc is the experiment service: a long-running daemon that
// accepts sweep jobs (a runner.Grid over HTTP/JSON), expands them to
// scenarios, and simulates only the cells whose results are not already
// cached. Results are content-addressed by runner.Scenario.CacheKey —
// canonical scenario key, effective seed, and the simulator's code
// version — the same idea named-data networks use to make data
// location-independent and shareable: any client submitting an
// overlapping grid hits the same cache entries, and concurrent
// submissions of the same cell share one in-flight simulation.
//
// The package splits into four pieces: Store (two-tier result cache),
// Job (one submitted sweep and its progress), Server (the HTTP surface,
// cmd/nimbus-svc wires it to exp.RunScenario), and Client (the typed
// consumer, used by nimbus-bench -remote). Server takes its RunFunc as
// configuration so the package — and its tests — stay free of the
// experiment layer.
package svc

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"nimbus/internal/fault"
	"nimbus/internal/runner"
)

// Outcome says where GetOrRun found (or put) a result.
type Outcome int

const (
	// Miss: no usable cached result; this caller ran the simulation.
	Miss Outcome = iota
	// HitMem: served from the in-memory LRU tier.
	HitMem
	// HitDisk: served from the on-disk tier (and promoted to memory).
	HitDisk
	// Shared: another caller was already simulating this key; this one
	// waited and shares its result without running anything.
	Shared
)

func (o Outcome) String() string {
	switch o {
	case HitMem:
		return "hit-mem"
	case HitDisk:
		return "hit-disk"
	case Shared:
		return "shared"
	}
	return "miss"
}

// Hit reports whether the outcome avoided running a simulation.
func (o Outcome) Hit() bool { return o != Miss }

// StoreStats is a snapshot of the cache counters (GET /cache/stats).
type StoreStats struct {
	// MemHits / DiskHits / Misses / Shared count GetOrRun outcomes.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	Shared   uint64 `json:"shared"`
	// Evictions counts entries dropped from the memory tier (the disk
	// copy survives eviction).
	Evictions uint64 `json:"evictions"`
	// Corrupt counts disk entries rejected as unreadable — truncated
	// writes, foreign files, key mismatches — each treated as a miss and
	// rewritten.
	Corrupt uint64 `json:"corrupt"`
	// DiskErrors counts IO failures on the disk tier (reads that failed
	// for reasons other than absence, and writes that could not persist).
	// Each one degrades the store to pass-through for that operation —
	// the miss simulates, the result is still served and kept in memory —
	// instead of failing the cell.
	DiskErrors uint64 `json:"disk_errors"`
	// Inflight is the number of simulations currently running.
	Inflight int `json:"inflight"`
	// MemEntries is the current size of the memory tier.
	MemEntries int `json:"mem_entries"`
	// CodeVersion is the version component of every key this store
	// composes.
	CodeVersion string `json:"code_version"`
}

// entry is the on-disk envelope. Storing the full key (not just its hash)
// makes corruption and hash collisions detectable on read: an entry whose
// recorded key differs from the requested one is rejected as corrupt.
type entry struct {
	Key    string        `json:"key"`
	Result runner.Result `json:"result"`
}

// flight is one in-progress simulation that concurrent callers of the
// same key wait on.
type flight struct {
	done chan struct{}
	r    runner.Result
}

// Store is the two-tier content-addressed result cache: an in-memory LRU
// over an on-disk directory of <sha256(key)>.json files. Disk writes are
// atomic (temp file + rename in the same directory), so readers — and
// crashed writers — never observe a partial entry; unreadable entries are
// treated as misses and rewritten. GetOrRun deduplicates concurrent
// computes per key, so N clients submitting the same cell cost one
// simulation.
type Store struct {
	dir         string
	codeVersion string
	maxEntries  int

	// Fsync, when set (before serving), makes disk writes crash-durable:
	// the temp file is synced before the rename and the directory after
	// it, so a result acknowledged as cached survives power loss, not
	// just process death. Off by default — the rename alone already
	// guarantees no reader ever sees a partial entry.
	Fsync bool

	mu       sync.Mutex
	lru      *list.List // of *memEntry; front is most recent
	byKey    map[string]*list.Element
	inflight map[string]*flight
	stats    StoreStats
}

type memEntry struct {
	key string
	r   runner.Result
}

// NewStore opens (creating if needed) the cache directory. maxEntries
// bounds the memory tier only — the disk tier is bounded by the
// filesystem and pruned by deleting files (safe at any time; the store
// re-reads or re-simulates). maxEntries <= 0 selects a default of 4096.
func NewStore(dir string, maxEntries int, codeVersion string) (*Store, error) {
	if codeVersion == "" {
		return nil, fmt.Errorf("svc: empty code version would let a rebuild serve stale results")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("svc: cache dir: %w", err)
	}
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Store{
		dir:         dir,
		codeVersion: codeVersion,
		maxEntries:  maxEntries,
		lru:         list.New(),
		byKey:       map[string]*list.Element{},
		inflight:    map[string]*flight{},
	}, nil
}

// Key composes the cache key for a scenario under this store's code
// version (runner.Scenario.CacheKey).
func (s *Store) Key(sc runner.Scenario) string {
	return sc.CacheKey(s.codeVersion)
}

// Path returns the on-disk address of a key: <dir>/<sha256(key)>.json.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".json")
}

// GetOrRun returns the cached result for key, or runs run() exactly once
// across all concurrent callers of the same key and caches its result.
// Error results (Result.Err != "") are returned but never cached: a
// malformed scenario stays an error, but a transient failure is not
// pinned forever. ctx cancels the wait of a sharing caller (the caller
// actually running the simulation completes it — a finished result is
// worth caching).
func (s *Store) GetOrRun(ctx context.Context, key string, run func() runner.Result) (runner.Result, Outcome) {
	s.mu.Lock()
	// Memory tier.
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		r := el.Value.(*memEntry).r
		s.stats.MemHits++
		s.mu.Unlock()
		return r, HitMem
	}
	// Someone else is already computing this key: wait and share.
	if fl, ok := s.inflight[key]; ok {
		s.stats.Shared++
		s.mu.Unlock()
		select {
		case <-fl.done:
			return fl.r, Shared
		case <-ctx.Done():
			return runner.Result{Err: ctx.Err().Error()}, Shared
		}
	}
	// Take the singleflight slot before touching disk, so two callers
	// never both read (or both re-simulate) the same entry.
	fl := &flight{done: make(chan struct{})}
	s.inflight[key] = fl
	s.stats.Inflight++
	s.mu.Unlock()

	if r, ok := s.readDisk(key); ok {
		s.settle(key, fl, r, true, HitDisk)
		return r, HitDisk
	}

	r := run()
	if r.Err == "" {
		if err := s.writeDisk(key, r); err != nil {
			// The result is still good; only persistence failed. Serve
			// it (and keep it in memory) rather than failing the cell.
			s.countDiskError()
			fmt.Fprintf(os.Stderr, "svc: cache write for %s: %v\n", s.Path(key), err)
		}
	}
	s.settle(key, fl, r, r.Err == "", Miss)
	return r, Miss
}

// Get returns the cached result for key without computing anything:
// memory first, then disk (promoting to memory). It does not wait for
// in-flight computes.
func (s *Store) Get(key string) (runner.Result, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		r := el.Value.(*memEntry).r
		s.stats.MemHits++
		s.mu.Unlock()
		return r, true
	}
	s.mu.Unlock()
	r, ok := s.readDisk(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !ok {
		s.stats.Misses++
		return runner.Result{}, false
	}
	s.stats.DiskHits++
	s.insertLocked(key, r)
	return r, true
}

// settle publishes a flight's result to waiters, records the outcome,
// inserts into the memory tier when the result is cacheable, and releases
// the singleflight slot.
func (s *Store) settle(key string, fl *flight, r runner.Result, cache bool, oc Outcome) {
	fl.r = r
	close(fl.done)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.inflight, key)
	s.stats.Inflight--
	if cache {
		s.insertLocked(key, r)
	}
	if oc == HitDisk {
		s.stats.DiskHits++
	} else {
		s.stats.Misses++
	}
}

// insertLocked adds a result to the memory tier, evicting from the cold
// end past maxEntries. Callers hold s.mu.
func (s *Store) insertLocked(key string, r runner.Result) {
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*memEntry).r = r
		return
	}
	s.byKey[key] = s.lru.PushFront(&memEntry{key: key, r: r})
	for s.lru.Len() > s.maxEntries {
		cold := s.lru.Back()
		delete(s.byKey, cold.Value.(*memEntry).key)
		s.lru.Remove(cold)
		s.stats.Evictions++
	}
}

// readDisk loads a key's entry from the disk tier. Any failure —
// missing, truncated, unparseable, or recorded under a different key —
// is a miss; corrupt entries are counted and will be overwritten by the
// next writeDisk, and IO errors (including injected ones — the
// "disk-read" failpoint) additionally count as disk_errors. A failing
// disk therefore degrades the store to pass-through: misses simulate,
// jobs keep completing.
func (s *Store) readDisk(key string) (runner.Result, bool) {
	if err := fault.Fire(context.Background(), "disk-read"); err != nil {
		s.countDiskError()
		return runner.Result{}, false
	}
	b, err := os.ReadFile(s.Path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.countDiskError()
		}
		return runner.Result{}, false
	}
	var e entry
	if json.Unmarshal(b, &e) != nil || e.Key != key {
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return runner.Result{}, false
	}
	return e.Result, true
}

// writeDisk persists an entry atomically: marshal, write to a temp file
// in the cache directory, rename onto the content address. Readers see
// the old bytes or the new bytes, never a prefix. With Fsync set the
// temp file is synced before the rename and the directory after it, so
// the entry also survives power loss. The "disk-write" failpoint fails
// the write (err mode) or — torn mode — leaves a truncated file at the
// final path, simulating a crash mid-write by a non-atomic writer; the
// key-verified read path must then reject it as corrupt.
func (s *Store) writeDisk(key string, r runner.Result) error {
	b, err := json.Marshal(entry{Key: key, Result: r})
	if err != nil {
		return err
	}
	if torn, ferr := fault.FireWrite("disk-write"); ferr != nil {
		if torn {
			os.WriteFile(s.Path(key), b[:len(b)/2], 0o644)
		}
		return ferr
	}
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if s.Fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if s.Fsync {
		syncDir(s.dir)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename is durable, not just
// ordered. Errors are ignored: some filesystems refuse directory fsync,
// and the write itself already succeeded.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// countDiskError bumps the disk_errors counter.
func (s *Store) countDiskError() {
	s.mu.Lock()
	s.stats.DiskErrors++
	s.mu.Unlock()
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemEntries = s.lru.Len()
	st.CodeVersion = s.codeVersion
	return st
}
