package svc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"nimbus/internal/fault"
	"nimbus/internal/runner"
)

// Record is one entry of the daemon's job journal: a write-ahead log of
// job lifecycle edges, replayed on startup so submitted jobs survive a
// crash. Submit records carry everything needed to rebuild the job (the
// original grid — expansion is deterministic — and the requested worker
// count); cancel and done records carry only the id.
type Record struct {
	// Type is recSubmit, recCancel, or recDone.
	Type string `json:"t"`
	// ID is the job id the record applies to.
	ID string `json:"id"`
	// Grid is the submitted sweep (submit records only).
	Grid *runner.Grid `json:"grid,omitempty"`
	// Workers is the requested per-job pool size (submit records only;
	// 0 = the daemon default at replay time).
	Workers int `json:"workers,omitempty"`
	// State is the terminal state (done records only).
	State JobState `json:"state,omitempty"`
}

const (
	recSubmit = "submit"
	recCancel = "cancel"
	recDone   = "done"
)

// Journal is the append-only WAL the daemon replays on startup. One
// record per line of JSON, written with a single O_APPEND write (and an
// optional fsync) so a record is either wholly present or a torn tail
// that replay drops. It lives in its own directory under the cache dir
// (journal/wal) so cache pruning tools that delete *.json entries never
// touch it.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	dir   string
	fsync bool
	// dirty is set after a failed or torn append: the next successful
	// append starts with a newline so the partial line on disk becomes a
	// complete (corrupt, skipped-on-replay) record instead of merging
	// with the new one.
	dirty bool
	errs  atomic.Uint64
}

// OpenJournal opens (creating if needed) the journal in dir and replays
// whatever is already there: records are returned in append order,
// corrupt-but-complete lines are skipped, and a torn tail — the partial
// record of an append cut down by a crash — is dropped and truncated
// away so future appends start on a clean boundary. fsync makes every
// append crash-durable before it is acknowledged.
func OpenJournal(dir string, fsync bool) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("svc: journal dir: %w", err)
	}
	path := filepath.Join(dir, "wal")
	b, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("svc: journal read: %w", err)
	}
	records, keep := replayRecords(b)
	if keep < len(b) {
		if err := os.Truncate(path, int64(keep)); err != nil {
			return nil, nil, fmt.Errorf("svc: journal truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("svc: journal open: %w", err)
	}
	return &Journal{f: f, dir: dir, fsync: fsync}, records, nil
}

// replayRecords parses newline-delimited JSON records. keep is the byte
// length of the longest newline-terminated prefix: everything past it is
// a torn tail. Complete lines that fail to parse (a torn append that a
// later append terminated, manual edits) are skipped but kept on disk.
func replayRecords(b []byte) (recs []Record, keep int) {
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminator, the record never fully landed
		}
		line := b[off : off+nl]
		off += nl + 1
		keep = off
		var rec Record
		if len(line) == 0 || json.Unmarshal(line, &rec) != nil || rec.Type == "" || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, keep
}

// Append writes one record to the WAL: a single write of the marshaled
// line (plus fsync when configured), threaded through the
// "journal-append" failpoint. Errors are counted (surfaced as
// disk_errors in /metrics) and returned; the caller logs and keeps
// serving — losing durability for one edge beats refusing the job.
func (j *Journal) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		j.errs.Add(1)
		return fmt.Errorf("svc: journal marshal: %w", err)
	}
	line := append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dirty {
		// Terminate the partial line a previous failed append left, so
		// replay skips it as one corrupt record instead of swallowing
		// this record into it.
		line = append([]byte{'\n'}, line...)
	}
	if torn, ferr := fault.FireWrite("journal-append"); ferr != nil {
		if torn {
			j.f.Write(line[:len(line)/2])
		}
		j.dirty = true
		j.errs.Add(1)
		return fmt.Errorf("svc: journal append: %w", ferr)
	}
	if n, err := j.f.Write(line); err != nil {
		if n > 0 {
			j.dirty = true
		}
		j.errs.Add(1)
		return fmt.Errorf("svc: journal append: %w", err)
	}
	j.dirty = false
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			j.errs.Add(1)
			return fmt.Errorf("svc: journal fsync: %w", err)
		}
	}
	return nil
}

// Errors returns the count of failed appends since open.
func (j *Journal) Errors() uint64 { return j.errs.Load() }

// Close closes the WAL file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
