package svc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"nimbus/internal/runner"
)

// JobRequest is the POST /jobs body: a sweep grid plus an optional
// per-job worker count (0 inherits the server default).
type JobRequest struct {
	Grid    runner.Grid `json:"grid"`
	Workers int         `json:"workers,omitempty"`
}

// JobCreated is the POST /jobs response.
type JobCreated struct {
	ID string `json:"id"`
	// Total is the number of cells the grid expanded to.
	Total int `json:"total"`
}

// Metrics is the GET /metrics document: cache counters plus job-level
// aggregates for observability.
type Metrics struct {
	Cache StoreStats `json:"cache"`
	// JobsSubmitted / JobsDone / JobsCanceled / JobsRunning count job
	// lifecycles since the daemon started.
	JobsSubmitted int `json:"jobs_submitted"`
	JobsDone      int `json:"jobs_done"`
	JobsCanceled  int `json:"jobs_canceled"`
	JobsRunning   int `json:"jobs_running"`
	// CellsSimulated / SimEvents / SimWallSec aggregate the cells that
	// actually ran (cache misses): total simulator events and the
	// wall-clock they took, summed over cells (not elapsed time — cells
	// run in parallel).
	CellsSimulated int     `json:"cells_simulated"`
	SimEvents      uint64  `json:"sim_events"`
	SimWallSec     float64 `json:"sim_wall_sec"`
	// EventsPerSec is SimEvents/SimWallSec: aggregate simulator
	// throughput per worker across everything this daemon computed.
	EventsPerSec float64 `json:"events_per_sec"`
	UptimeSec    float64 `json:"uptime_sec"`
}

// Server owns the job table and the HTTP surface. Run is the simulation
// entry point (cmd/nimbus-svc wires exp.RunScenario; tests wire stubs),
// so the package never imports the experiment layer.
type Server struct {
	// Store caches results; required.
	Store *Store
	// Run executes one scenario; required.
	Run runner.RunFunc
	// Workers is the default per-job worker pool (0 = all cores).
	Workers int
	// MaxCells rejects grids expanding past this many cells (0 = the
	// 1e6 default) so a typo'd sweep cannot OOM the daemon.
	MaxCells int
	// Logf, if set, receives one line per job lifecycle edge.
	Logf func(format string, args ...any)

	mu      sync.Mutex
	jobs    map[string]*Job
	nextID  int
	started time.Time

	jobsDone, jobsCanceled int
	cellsSimulated         int
	simEvents              uint64
	simWallSec             float64
}

// Handler returns the daemon's routing table. Every route below must be
// documented in docs/service.md — scripts/check_docs.sh diffs this
// function against the docs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /cache/stats", s.handleCacheStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	scs := req.Grid.Expand()
	if len(scs) == 0 {
		httpError(w, http.StatusBadRequest, "grid expanded to no scenarios")
		return
	}
	maxCells := s.MaxCells
	if maxCells == 0 {
		maxCells = 1_000_000
	}
	if len(scs) > maxCells {
		httpError(w, http.StatusBadRequest, "grid expanded to %d cells (limit %d)", len(scs), maxCells)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.Workers
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.nextID++
	id := strconv.Itoa(s.nextID)
	j := newJob(id, scs, cancel)
	if s.jobs == nil {
		s.jobs = map[string]*Job{}
	}
	s.jobs[id] = j
	s.mu.Unlock()

	s.logf("job %s: submitted, %d cells, %d workers", id, len(scs), workers)
	go s.runJob(ctx, j, workers)
	writeJSON(w, http.StatusAccepted, JobCreated{ID: id, Total: len(scs)})
}

// runJob executes a job's cells through the store: hits cost a lookup,
// misses simulate (deduplicated across concurrent jobs by the store's
// singleflight), and every completion appends the progress line a local
// runner would print, tagged with how the cell was satisfied.
func (s *Server) runJob(ctx context.Context, j *Job, workers int) {
	start := time.Now()
	n := len(j.scs)
	// Written by the cell's own worker in the run closure, read by OnCell
	// for the same index in the same goroutine afterwards — no races.
	outcomes := make([]Outcome, n)
	started := make([]bool, n)
	done := 0 // OnCell calls are serialized by the runner
	rn := &runner.Runner{Workers: workers}
	rn.OnCell = func(i int, r runner.Result) {
		done++
		label := outcomes[i].String()
		if !started[i] {
			label = "canceled"
		}
		line := fmt.Sprintf("%s  [%s]", runner.FormatProgress(time.Since(start), done, n, r), label)
		j.cellFinished(started[i], outcomes[i], r, line)
		if started[i] && outcomes[i] == Miss && r.Err == "" {
			s.mu.Lock()
			s.cellsSimulated++
			s.simEvents += r.Events
			s.simWallSec += r.WallSec
			s.mu.Unlock()
		}
	}
	rs := rn.RunGrid(ctx, j.scs, func(i int, sc runner.Scenario) runner.Result {
		started[i] = true
		j.cellStarted()
		r, oc := s.Store.GetOrRun(ctx, s.Store.Key(sc), func() runner.Result {
			// Guard panics here, not just in the runner: a panicking
			// scenario must still settle the store's flight, or every
			// job sharing this cell would hang.
			t0 := time.Now()
			r := guardedRun(s.Run, sc)
			if r.WallSec == 0 {
				r.WallSec = time.Since(t0).Seconds()
			}
			return r
		})
		outcomes[i] = oc
		return r
	})
	state := JobDone
	if ctx.Err() != nil {
		state = JobCanceled
	}
	j.finish(state, rs)
	s.mu.Lock()
	if state == JobCanceled {
		s.jobsCanceled++
	} else {
		s.jobsDone++
	}
	s.mu.Unlock()
	st := j.Status()
	s.logf("job %s: %s in %.1fs — %d hit / %d miss / %d shared / %d errors",
		j.id, state, st.ElapsedSec, st.Cells.Hit, st.Cells.Miss, st.Cells.Shared, st.Cells.Errors)
}

// guardedRun converts a panicking scenario into an error row, mirroring
// the runner's own guard.
func guardedRun(run runner.RunFunc, sc runner.Scenario) (r runner.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = runner.Result{Scenario: sc, Err: fmt.Sprint(p)}
		}
	}()
	return run(sc)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	j.StreamLog(r.Context(), func(chunk []byte) error {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleResults blocks until the job completes, then emits the merged
// results with runner.WriteJSON — the same encoder the batch CLIs use, so
// for the same grid and seed the response is byte-identical to a local
// nimbus-bench run (the acceptance contract nimbus-bench -remote and the
// CI smoke verify).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	rs, err := j.Results(r.Context())
	if err != nil {
		// The client went away while waiting; nothing useful to write.
		return
	}
	w.Header().Set("Content-Type", "application/json")
	runner.WriteJSON(w, rs)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.cancel()
	s.logf("job %s: cancel requested", j.id)
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Store.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := Metrics{
		Cache:          s.Store.Stats(),
		JobsSubmitted:  s.nextID,
		JobsDone:       s.jobsDone,
		JobsCanceled:   s.jobsCanceled,
		JobsRunning:    s.nextID - s.jobsDone - s.jobsCanceled,
		CellsSimulated: s.cellsSimulated,
		SimEvents:      s.simEvents,
		SimWallSec:     s.simWallSec,
	}
	if !s.started.IsZero() {
		m.UptimeSec = time.Since(s.started).Seconds()
	}
	s.mu.Unlock()
	if m.SimWallSec > 0 {
		m.EventsPerSec = float64(m.SimEvents) / m.SimWallSec
	}
	writeJSON(w, http.StatusOK, m)
}

// Start stamps the uptime epoch; callers serving Handler() over a real
// listener call it once at boot.
func (s *Server) Start() {
	s.mu.Lock()
	s.started = time.Now()
	s.mu.Unlock()
}
