package svc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/fault"
	"nimbus/internal/runner"
)

// JobRequest is the POST /jobs body: a sweep grid plus an optional
// per-job worker count (0 inherits the server default).
type JobRequest struct {
	Grid    runner.Grid `json:"grid"`
	Workers int         `json:"workers,omitempty"`
}

// JobCreated is the POST /jobs response.
type JobCreated struct {
	ID string `json:"id"`
	// Total is the number of cells the grid expanded to.
	Total int `json:"total"`
}

// Metrics is the GET /metrics document: cache counters plus job-level
// aggregates and fault-tolerance counters for observability (the chaos
// CI job asserts on the latter).
type Metrics struct {
	Cache StoreStats `json:"cache"`
	// JobsSubmitted / JobsDone / JobsCanceled / JobsRunning count job
	// lifecycles since the daemon started.
	JobsSubmitted int `json:"jobs_submitted"`
	JobsDone      int `json:"jobs_done"`
	JobsCanceled  int `json:"jobs_canceled"`
	JobsRunning   int `json:"jobs_running"`
	// CellsSimulated / SimEvents / SimWallSec aggregate the cells that
	// actually ran (cache misses): total simulator events and the
	// wall-clock they took, summed over cells (not elapsed time — cells
	// run in parallel).
	CellsSimulated int     `json:"cells_simulated"`
	SimEvents      uint64  `json:"sim_events"`
	SimWallSec     float64 `json:"sim_wall_sec"`
	// EventsPerSec is SimEvents/SimWallSec: aggregate simulator
	// throughput per worker across everything this daemon computed.
	EventsPerSec float64 `json:"events_per_sec"`
	UptimeSec    float64 `json:"uptime_sec"`
	// DiskErrors aggregates IO failures across the store's disk tier and
	// the job journal. Nonzero means the daemon is degraded (serving by
	// simulating, journaling best-effort), not failing.
	DiskErrors uint64 `json:"disk_errors"`
	// WatchdogKills counts cells reaped by the per-cell watchdog.
	WatchdogKills int `json:"watchdog_kills"`
	// JobsShed counts submissions rejected with 429 under overload.
	JobsShed int `json:"jobs_shed"`
	// JournalReplayed counts jobs rebuilt from the journal at startup.
	JournalReplayed int `json:"journal_replayed"`
	// EventsResumed counts event streams that reconnected with ?from=N
	// (clients riding through a restart or connection loss).
	EventsResumed int `json:"events_resumed"`
}

// Server owns the job table and the HTTP surface. Run is the simulation
// entry point (cmd/nimbus-svc wires exp.RunScenario; tests wire stubs),
// so the package never imports the experiment layer.
type Server struct {
	// Store caches results; required.
	Store *Store
	// Run executes one scenario; required.
	Run runner.RunFunc
	// Workers is the default per-job worker pool (0 = all cores).
	Workers int
	// MaxCells rejects grids expanding past this many cells (0 = the
	// 1e6 default) so a typo'd sweep cannot OOM the daemon.
	MaxCells int
	// Journal, when set, records every job lifecycle edge (write-ahead on
	// submit) and is what Replay rebuilds the table from after a restart.
	// nil runs journal-less: jobs die with the process, as before.
	Journal *Journal
	// CellTimeout, when > 0, is the per-cell watchdog: a cell still
	// simulating after this wall-clock bound is reaped into an error row,
	// its singleflight waiters are released with that error, and the job
	// moves on. 0 disables the watchdog.
	CellTimeout time.Duration
	// MaxJobs, when > 0, sheds new submissions with 429 + Retry-After
	// while this many jobs are running — load shedding instead of
	// collapse. 0 is unbounded.
	MaxJobs int
	// MaxInflightCells, when > 0, sheds new submissions while the store
	// has at least this many simulations in flight. 0 is unbounded.
	MaxInflightCells int
	// Logf, if set, receives one line per job lifecycle edge.
	Logf func(format string, args ...any)

	ready atomic.Bool

	mu      sync.Mutex
	jobs    map[string]*Job
	nextID  int
	started time.Time

	jobsDone, jobsCanceled int
	cellsSimulated         int
	simEvents              uint64
	simWallSec             float64

	watchdogKills   int
	jobsShed        int
	journalReplayed int
	eventsResumed   int
}

// maxJobBody bounds the POST /jobs request body: large enough for any
// sane grid document, small enough that a hostile client cannot balloon
// daemon memory with one request.
const maxJobBody = 8 << 20

// Handler returns the daemon's routing table. Every route below must be
// documented in docs/service.md — scripts/check_docs.sh diffs this
// function against the docs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /cache/stats", s.handleCacheStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxJobBody)
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "job request exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	scs := req.Grid.Expand()
	if len(scs) == 0 {
		httpError(w, http.StatusBadRequest, "grid expanded to no scenarios")
		return
	}
	maxCells := s.MaxCells
	if maxCells == 0 {
		maxCells = 1_000_000
	}
	if len(scs) > maxCells {
		httpError(w, http.StatusBadRequest, "grid expanded to %d cells (limit %d)", len(scs), maxCells)
		return
	}
	if reason := s.shed(); reason != "" {
		// Load shedding, not collapse: tell the client when to come back
		// instead of queueing unboundedly and degrading every job.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "overloaded: %s; retry later", reason)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.Workers
	}

	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.nextID++
	id := strconv.Itoa(s.nextID)
	j := newJob(id, scs, cancel)
	if s.jobs == nil {
		s.jobs = map[string]*Job{}
	}
	s.jobs[id] = j
	s.mu.Unlock()

	// Write-ahead: the submission is journaled before the job starts, so
	// a crash at any later point replays it.
	s.appendJournal(Record{Type: recSubmit, ID: id, Grid: &req.Grid, Workers: req.Workers})
	s.logf("job %s: submitted, %d cells, %d workers", id, len(scs), workers)
	go s.runJob(ctx, j, workers)
	writeJSON(w, http.StatusAccepted, JobCreated{ID: id, Total: len(scs)})
}

// shed decides whether to reject a new submission under overload,
// returning a human-readable reason (empty = admit). Both bounds are
// soft admission checks, not hard guarantees — two racing submissions
// may both pass — which is fine: the point is a bounded queue, not an
// exact one.
func (s *Server) shed() string {
	if s.MaxJobs > 0 {
		s.mu.Lock()
		running := s.nextID - s.jobsDone - s.jobsCanceled
		s.mu.Unlock()
		if running >= s.MaxJobs {
			s.countShed()
			return fmt.Sprintf("%d jobs already running (limit %d)", running, s.MaxJobs)
		}
	}
	if s.MaxInflightCells > 0 {
		if inflight := s.Store.Stats().Inflight; inflight >= s.MaxInflightCells {
			s.countShed()
			return fmt.Sprintf("%d cells already in flight (limit %d)", inflight, s.MaxInflightCells)
		}
	}
	return ""
}

func (s *Server) countShed() {
	s.mu.Lock()
	s.jobsShed++
	s.mu.Unlock()
}

// appendJournal records a lifecycle edge, degrading gracefully: a WAL
// failure costs crash-durability for that edge, never availability.
func (s *Server) appendJournal(rec Record) {
	if s.Journal == nil {
		return
	}
	if err := s.Journal.Append(rec); err != nil {
		s.logf("journal: %v (continuing without durability for this record)", err)
	}
}

// runJob executes a job's cells through the store: hits cost a lookup,
// misses simulate (deduplicated across concurrent jobs by the store's
// singleflight), and every completion appends the progress line a local
// runner would print, tagged with how the cell was satisfied.
func (s *Server) runJob(ctx context.Context, j *Job, workers int) {
	start := time.Now()
	n := len(j.scs)
	// Written by the cell's own worker in the run closure, read by OnCell
	// for the same index in the same goroutine afterwards — no races.
	outcomes := make([]Outcome, n)
	started := make([]bool, n)
	done := 0 // OnCell calls are serialized by the runner
	rn := &runner.Runner{Workers: workers}
	rn.OnCell = func(i int, r runner.Result) {
		done++
		label := outcomes[i].String()
		if !started[i] {
			label = "canceled"
		}
		line := fmt.Sprintf("%s  [%s]", runner.FormatProgress(time.Since(start), done, n, r), label)
		j.cellFinished(started[i], outcomes[i], r, line)
		if started[i] && outcomes[i] == Miss && r.Err == "" {
			s.mu.Lock()
			s.cellsSimulated++
			s.simEvents += r.Events
			s.simWallSec += r.WallSec
			s.mu.Unlock()
		}
	}
	rs := rn.RunGrid(ctx, j.scs, func(i int, sc runner.Scenario) runner.Result {
		started[i] = true
		j.cellStarted()
		r, oc := s.Store.GetOrRun(ctx, s.Store.Key(sc), func() runner.Result {
			// The watchdog gets a fresh context, not the job's: a
			// canceled job must not abort a cell other jobs may be
			// sharing (in-flight cells finish and cache). Guard panics
			// here, not just in the runner: a panicking scenario must
			// still settle the store's flight, or every job sharing
			// this cell would hang. Likewise a hung cell: the watchdog's
			// error row settles the flight, releasing every waiter.
			t0 := time.Now()
			r, reaped := runner.RunWatched(context.Background(), sc, s.CellTimeout, func(cctx context.Context) runner.Result {
				if err := fault.Fire(cctx, "cell-run"); err != nil {
					return runner.Result{Scenario: sc, Err: err.Error()}
				}
				return guardedRun(s.Run, sc)
			})
			if reaped {
				s.mu.Lock()
				s.watchdogKills++
				s.mu.Unlock()
				s.logf("job %s: watchdog reaped cell %s after %v", j.id, sc.Name, s.CellTimeout)
			}
			if r.WallSec == 0 {
				r.WallSec = time.Since(t0).Seconds()
			}
			return r
		})
		outcomes[i] = oc
		return r
	})
	state := JobDone
	if ctx.Err() != nil {
		state = JobCanceled
	}
	j.finish(state, rs)
	s.mu.Lock()
	if state == JobCanceled {
		s.jobsCanceled++
	} else {
		s.jobsDone++
	}
	s.mu.Unlock()
	s.appendJournal(Record{Type: recDone, ID: j.id, State: state})
	st := j.Status()
	s.logf("job %s: %s in %.1fs — %d hit / %d miss / %d shared / %d errors",
		j.id, state, st.ElapsedSec, st.Cells.Hit, st.Cells.Miss, st.Cells.Shared, st.Cells.Errors)
}

// guardedRun converts a panicking scenario into an error row, mirroring
// the runner's own guard.
func guardedRun(run runner.RunFunc, sc runner.Scenario) (r runner.Result) {
	defer func() {
		if p := recover(); p != nil {
			r = runner.Result{Scenario: sc, Err: fmt.Sprint(p)}
		}
	}()
	return run(sc)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	// ?from=N resumes the stream after the first N progress lines — the
	// self-healing client passes the count it has already delivered, so
	// a reconnect (or a daemon restart mid-job) neither drops nor
	// duplicates lines.
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad from offset %q", q)
			return
		}
		from = v
	}
	if from > 0 {
		s.mu.Lock()
		s.eventsResumed++
		s.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	j.StreamLog(r.Context(), from, func(chunk []byte) error {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// handleResults blocks until the job completes, then emits the merged
// results with runner.WriteJSON — the same encoder the batch CLIs use, so
// for the same grid and seed the response is byte-identical to a local
// nimbus-bench run (the acceptance contract nimbus-bench -remote and the
// CI smoke verify).
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	rs, err := j.Results(r.Context())
	if err != nil {
		// The client went away while waiting; nothing useful to write.
		return
	}
	w.Header().Set("Content-Type", "application/json")
	runner.WriteJSON(w, rs)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.cancel()
	s.appendJournal(Record{Type: recCancel, ID: j.id})
	s.logf("job %s: cancel requested", j.id)
	writeJSON(w, http.StatusOK, j.Status())
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the job table has been rebuilt from the
// journal and the daemon is accepting work. Load balancers and the chaos
// harness gate on this, not on /healthz, so a replaying daemon is not
// handed traffic early.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		httpError(w, http.StatusServiceUnavailable, "not ready: journal replay in progress")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Store.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	m := Metrics{
		Cache:          s.Store.Stats(),
		JobsSubmitted:  s.nextID,
		JobsDone:       s.jobsDone,
		JobsCanceled:   s.jobsCanceled,
		JobsRunning:    s.nextID - s.jobsDone - s.jobsCanceled,
		CellsSimulated: s.cellsSimulated,
		SimEvents:      s.simEvents,
		SimWallSec:     s.simWallSec,

		WatchdogKills:   s.watchdogKills,
		JobsShed:        s.jobsShed,
		JournalReplayed: s.journalReplayed,
		EventsResumed:   s.eventsResumed,
	}
	if !s.started.IsZero() {
		m.UptimeSec = time.Since(s.started).Seconds()
	}
	s.mu.Unlock()
	if m.SimWallSec > 0 {
		m.EventsPerSec = float64(m.SimEvents) / m.SimWallSec
	}
	m.DiskErrors = m.Cache.DiskErrors
	if s.Journal != nil {
		m.DiskErrors += s.Journal.Errors()
	}
	writeJSON(w, http.StatusOK, m)
}

// Start stamps the uptime epoch; callers serving Handler() over a real
// listener call it once at boot.
func (s *Server) Start() {
	s.mu.Lock()
	s.started = time.Now()
	s.mu.Unlock()
}

// SetReady flips /readyz to 200. The daemon calls it after Replay has
// rebuilt the job table.
func (s *Server) SetReady() { s.ready.Store(true) }

// Replay rebuilds the job table from journal records (as returned by
// OpenJournal) and resumes every journaled job, returning how many. Call
// it after Start and before serving traffic.
//
// Replay semantics:
//
//   - A job with no done record (pending or running at the crash)
//     resumes exactly where the cache left it: completed cells are disk
//     hits, the rest simulate.
//   - A completed job re-resolves through the cache — every cacheable
//     cell comes back byte-identical (cached rows keep their original
//     wall-clock), so GET /jobs/{id}/results keeps answering across
//     restarts. Error rows (never cached) re-run.
//   - A canceled job (cancel record, or done record in the canceled
//     state) replays with its context already canceled: every cell
//     reports a canceled error row, preserving the id and terminal state
//     without re-simulating work the operator threw away.
func (s *Server) Replay(records []Record) int {
	type replayJob struct {
		grid     *runner.Grid
		workers  int
		canceled bool
	}
	byID := map[string]*replayJob{}
	var order []string
	for _, rec := range records {
		switch rec.Type {
		case recSubmit:
			if rec.Grid == nil || byID[rec.ID] != nil {
				continue
			}
			byID[rec.ID] = &replayJob{grid: rec.Grid, workers: rec.Workers}
			order = append(order, rec.ID)
		case recCancel:
			if rj := byID[rec.ID]; rj != nil {
				rj.canceled = true
			}
		case recDone:
			if rj := byID[rec.ID]; rj != nil && rec.State == JobCanceled {
				rj.canceled = true
			}
		}
	}
	maxCells := s.MaxCells
	if maxCells == 0 {
		maxCells = 1_000_000
	}
	n := 0
	for _, id := range order {
		rj := byID[id]
		scs := safeExpand(rj.grid)
		if len(scs) == 0 || len(scs) > maxCells {
			s.logf("journal: skipping job %s (grid expands to %d cells)", id, len(scs))
			continue
		}
		workers := rj.workers
		if workers == 0 {
			workers = s.Workers
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.mu.Lock()
		if num, err := strconv.Atoi(id); err == nil && num > s.nextID {
			s.nextID = num
		}
		if s.jobs == nil {
			s.jobs = map[string]*Job{}
		}
		j := newJob(id, scs, cancel)
		s.jobs[id] = j
		s.journalReplayed++
		s.mu.Unlock()
		if rj.canceled {
			cancel()
		}
		s.logf("journal: replaying job %s (%d cells, canceled=%v)", id, len(scs), rj.canceled)
		go s.runJob(ctx, j, workers)
		n++
	}
	return n
}

// safeExpand expands a journaled grid, converting a panic (a record from
// an incompatible build) into an empty expansion instead of taking the
// daemon down during replay.
func safeExpand(g *runner.Grid) (scs []runner.Scenario) {
	defer func() { _ = recover() }()
	return g.Expand()
}
