package svc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sync"
)

// CodeVersion identifies the simulation code baked into this process, for
// use as the third component of every cache key: a result simulated by
// one build must never be served by a build that could produce different
// bytes. It is the SHA-256 of the running executable — the strictest
// cheap proxy for "the compiled simulation packages": any code change
// (including embedded trace corpora, which feed results) produces a new
// binary and so a new version, while editing docs, scripts, or CI leaves
// the binary and every cached result valid. Rebuilding identical sources
// with a different toolchain also rolls the version; that over-invalidates
// but never serves stale results, the failure mode that matters.
//
// When the executable cannot be read (some container images unlink it),
// the module's VCS revision from build info stands in; failing that, a
// per-process unique string disables cross-restart caching entirely
// rather than guessing. cmd/nimbus-svc's -code-version flag overrides the
// computed value for tests and controlled cache migrations.
func CodeVersion() string {
	codeVersionOnce.Do(func() { codeVersion = computeCodeVersion() })
	return codeVersion
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

func computeCodeVersion() string {
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return "exe-" + hex.EncodeToString(h.Sum(nil))[:16]
			}
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, modified := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		// A dirty checkout's revision does not identify its code.
		if rev != "" && modified != "true" {
			return "vcs-" + rev
		}
	}
	return fmt.Sprintf("pid-%d-unversioned", os.Getpid())
}
