package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/fault"
	"nimbus/internal/runner"
)

// TestJournalReplayTornTail: OpenJournal returns complete records in
// order, skips corrupt-but-complete lines, and truncates the torn tail a
// crash mid-append leaves, so subsequent appends land on a clean
// boundary.
func TestJournalReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	g := smallGrid()
	var wal bytes.Buffer
	mustLine := func(rec Record) {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		wal.Write(b)
		wal.WriteByte('\n')
	}
	mustLine(Record{Type: recSubmit, ID: "1", Grid: &g})
	wal.WriteString("garbage{{{not json\n") // corrupt complete line: skipped
	wal.WriteString("{\"t\":\"done\"}\n")   // missing id: skipped
	mustLine(Record{Type: recDone, ID: "1", State: JobDone})
	complete := wal.Len()
	wal.WriteString(`{"t":"submit","id":"2","gri`) // torn tail: dropped + truncated

	path := filepath.Join(dir, "wal")
	if err := os.WriteFile(path, wal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := OpenJournal(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Type != recSubmit || recs[0].ID != "1" || recs[1].Type != recDone {
		t.Fatalf("replayed %+v, want the submit and done records for job 1", recs)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(complete) {
		t.Fatalf("torn tail not truncated: size %d, want %d", fi.Size(), complete)
	}
	// Appends after a torn-tail recovery land on a clean boundary.
	if err := j.Append(Record{Type: recCancel, ID: "1"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs2, err := OpenJournal(dir, true) // fsync path exercises the same replay
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 3 || recs2[2].Type != recCancel {
		t.Fatalf("after append, replay = %+v, want 3 records ending in cancel", recs2)
	}
}

// TestJournalTornAppendRecovery: a fault-injected torn append (half the
// line persisted, then "crash") is counted, and the next successful
// append terminates the partial line so replay loses exactly the torn
// record — never a neighbor.
func TestJournalTornAppendRecovery(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	j, _, err := OpenJournal(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: recSubmit, ID: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := fault.Set("journal-append=torn:1"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: recSubmit, ID: "2"}); err == nil {
		t.Fatal("torn append reported success")
	}
	if j.Errors() != 1 {
		t.Fatalf("Errors() = %d, want 1", j.Errors())
	}
	fault.Reset()
	if err := j.Append(Record{Type: recSubmit, ID: "3"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs, err := OpenJournal(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "1" || recs[1].ID != "3" {
		t.Fatalf("replay after torn append = %+v, want records 1 and 3 (2 lost, not merged)", recs)
	}
}

// TestServerJournalReplay is the crash/restart acceptance test: a daemon
// with a journal is "killed" (server torn down, journal reopened), and
// the replacement replays the journal — the completed job's id still
// answers with byte-identical results, the canceled job replays
// canceled, and new ids continue past the old ones.
func TestServerJournalReplay(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	journalDir := filepath.Join(dir, "journal")
	ctx := context.Background()

	var block atomic.Bool
	release := make(chan struct{})
	run := func(sc runner.Scenario) runner.Result {
		if block.Load() {
			<-release
		}
		return stubRun(sc)
	}

	journal1, recs, err := OpenJournal(journalDir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	srv1 := &Server{Store: newTestStore(t, cacheDir, 64, "test-v1"), Run: run, Workers: 2, Journal: journal1}
	srv1.Start()
	hs1 := httptest.NewServer(srv1.Handler())
	client1 := NewClient(hs1.URL)

	// Job 1 completes normally.
	created1, err := client1.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	raw1, err := client1.RawResults(ctx, created1.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 (a different grid, so its cells miss and block) is canceled
	// mid-flight.
	block.Store(true)
	g2 := smallGrid()
	g2.Base.Seed = 7
	created2, err := client1.Submit(ctx, g2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Cancel(ctx, created2.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	if _, err := client1.Results(ctx, created2.ID); err != nil {
		t.Fatal(err)
	}

	// "Crash": tear the daemon down and bring a new one up over the same
	// cache dir and journal.
	hs1.Close()
	journal1.Close()
	journal2, recs, err := OpenJournal(journalDir, false)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := &Server{Store: newTestStore(t, cacheDir, 64, "test-v1"), Run: stubRun, Workers: 2, Journal: journal2}
	srv2.Start()
	if n := srv2.Replay(recs); n != 2 {
		t.Fatalf("Replay resumed %d jobs, want 2 (records: %+v)", n, recs)
	}
	srv2.SetReady()
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	client2 := NewClient(hs2.URL)

	// The completed job's id answers across the restart, byte-identically:
	// every cell resolves from the disk cache.
	raw1b, err := client2.RawResults(ctx, created1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw1b) {
		t.Fatalf("results changed across restart:\nbefore: %s\nafter:  %s", raw1, raw1b)
	}
	st1, err := client2.Status(ctx, created1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != JobDone || st1.Cells.Miss != 0 {
		t.Fatalf("replayed done job %+v, want done with zero re-simulation", st1)
	}

	// The canceled job replays canceled: id and terminal state preserved,
	// no work re-simulated.
	rs2, err := client2.Results(ctx, created2.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client2.Status(ctx, created2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobCanceled {
		t.Fatalf("replayed canceled job state %q, want canceled", st2.State)
	}
	for _, r := range rs2 {
		if !strings.Contains(r.Err, "canceled") {
			t.Fatalf("replayed canceled job has a non-canceled row: %+v", r)
		}
	}

	// Ids continue past the journaled ones — no collisions after restart.
	created3, err := client2.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if created3.ID != "3" {
		t.Fatalf("first post-restart id = %q, want 3", created3.ID)
	}
	if _, err := client2.RawResults(ctx, created3.ID); err != nil {
		t.Fatal(err)
	}
	m, err := client2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JournalReplayed != 2 {
		t.Fatalf("metrics journal_replayed = %d, want 2", m.JournalReplayed)
	}
}

// TestCancelSharedCellStillCompletes is the DELETE/singleflight
// regression test: jobs A and B share an in-flight cell through the
// store; canceling A must not poison the flight — B's cells all complete
// without error.
func TestCancelSharedCellStillCompletes(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan string, 16)
	client, _ := newTestServer(t, func(sc runner.Scenario) runner.Result {
		entered <- sc.Name
		<-release
		return stubRun(sc)
	})
	ctx := context.Background()

	a, err := client.Submit(ctx, smallGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // A's cell 0 is in flight
	b, err := client.Submit(ctx, smallGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Give B's worker a moment to attach to A's in-flight cell before the
	// cancellation, so the shared-flight path is what's exercised.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := client.Status(ctx, b.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cells.Running > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.Cancel(ctx, a.ID); err != nil {
		t.Fatal(err)
	}
	close(release)

	rsB, err := client.Results(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rsB {
		if r.Err != "" {
			t.Fatalf("B's cell %d errored after A's cancel: %q", i, r.Err)
		}
	}
	stB, _ := client.Status(ctx, b.ID)
	if stB.State != JobDone {
		t.Fatalf("B's state %q, want done", stB.State)
	}
	// A's in-flight cell completed (and cached); its unstarted cells
	// report cancellation.
	rsA, err := client.Results(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rsA[0].Err != "" {
		t.Fatalf("A's in-flight cell should have completed: %+v", rsA[0])
	}
}

// TestServerShedsUnderOverload: with MaxJobs reached, submissions get a
// 429 carrying Retry-After, surfaced as a typed *APIError; a client with
// Retry configured backs off and succeeds once capacity frees up.
func TestServerShedsUnderOverload(t *testing.T) {
	release := make(chan struct{})
	store := newTestStore(t, t.TempDir(), 64, "test-v1")
	srv := &Server{
		Store:   store,
		Run:     func(sc runner.Scenario) runner.Result { <-release; return stubRun(sc) },
		Workers: 2,
		MaxJobs: 1,
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	client := NewClient(hs.URL)
	ctx := context.Background()

	created1, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, smallGrid(), 0)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("shed submit error %v (%T), want *APIError", err, err)
	}
	if apiErr.Status != http.StatusTooManyRequests || apiErr.RetryAfter != time.Second {
		t.Fatalf("shed error %+v, want 429 with Retry-After 1s", apiErr)
	}
	if !strings.Contains(apiErr.Message, "overloaded") {
		t.Fatalf("shed error message %q does not say overloaded", apiErr.Message)
	}

	// A retrying client rides the overload out: capacity frees while it
	// backs off.
	retrying := NewClient(hs.URL)
	retrying.Retry = Retry{Attempts: 20, Base: 20 * time.Millisecond, Max: 100 * time.Millisecond}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	created2, err := retrying.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatalf("retrying submit failed: %v", err)
	}
	if _, err := retrying.RawResults(ctx, created1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := retrying.RawResults(ctx, created2.ID); err != nil {
		t.Fatal(err)
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsShed == 0 {
		t.Fatalf("metrics jobs_shed = 0 after shedding, want > 0")
	}
}

// TestServerWatchdogReapsHungCells: with a hang failpoint freezing every
// cell, the per-cell watchdog reaps them into error rows, results
// waiters are released (not hung forever), the kills are counted, and —
// because the injected hang honors the context the watchdog cancels —
// no goroutines leak. After clearing the fault the same grid simulates
// cleanly (error rows were never cached).
func TestServerWatchdogReapsHungCells(t *testing.T) {
	t.Cleanup(fault.Reset)
	baseline := runtime.NumGoroutine()
	store := newTestStore(t, t.TempDir(), 64, "test-v1")
	srv := &Server{Store: store, Run: stubRun, Workers: 2, CellTimeout: 50 * time.Millisecond}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	client := NewClient(hs.URL)
	ctx := context.Background()

	if err := fault.Set("cell-run=hang:1"); err != nil {
		t.Fatal(err)
	}
	created, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []runner.Result, 1)
	go func() {
		rs, err := client.Results(ctx, created.ID)
		if err != nil {
			t.Error(err)
		}
		done <- rs
	}()
	var rs []runner.Result
	select {
	case rs = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("results blocked: watchdog did not release singleflight waiters")
	}
	for i, r := range rs {
		if !strings.Contains(r.Err, "watchdog") {
			t.Fatalf("hung cell %d row %+v, want a watchdog error", i, r)
		}
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.WatchdogKills != created.Total {
		t.Fatalf("metrics watchdog_kills = %d, want %d", m.WatchdogKills, created.Total)
	}

	// Recovery: clear the fault and the same grid simulates cleanly —
	// watchdog error rows were not cached.
	fault.Reset()
	created2, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := client.Results(ctx, created2.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs2 {
		if r.Err != "" {
			t.Fatalf("post-recovery cell %d errored: %q", i, r.Err)
		}
	}

	// The reaped cells' goroutines exited (the injected hang honors the
	// canceled context): goroutine count settles back to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStoreTornWriteDetectedOnRestart is store-level crash consistency:
// a torn cache write (crash mid-write simulated at the final path) is
// detected by the key-verified read after "restart" — counted as corrupt,
// served as a miss, never as wrong data.
func TestStoreTornWriteDetectedOnRestart(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := t.TempDir()
	store1 := newTestStore(t, dir, 64, "test-v1")
	sc := smallGrid().Expand()[0]
	key := store1.Key(sc)

	if err := fault.Set("disk-write=torn:1"); err != nil {
		t.Fatal(err)
	}
	r, _ := store1.GetOrRun(context.Background(), key, func() runner.Result { return stubRun(sc) })
	if r.Err != "" {
		t.Fatalf("torn persist must not fail the simulation itself: %+v", r)
	}
	if st := store1.Stats(); st.DiskErrors == 0 {
		t.Fatalf("torn write not counted in disk_errors: %+v", st)
	}
	fault.Reset()

	// "Restart": a fresh store over the same dir must reject the torn
	// entry, not serve it.
	store2 := newTestStore(t, dir, 64, "test-v1")
	if _, ok := store2.Get(key); ok {
		t.Fatal("torn cache entry served as a hit")
	}
	if st := store2.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1: %+v", st.Corrupt, st)
	}
	// The cell simply re-simulates — degraded, not wrong.
	r2, oc := store2.GetOrRun(context.Background(), key, func() runner.Result { return stubRun(sc) })
	if r2.Err != "" || oc != Miss {
		t.Fatalf("re-run after corruption = %+v (%v), want a clean miss", r2, oc)
	}
}

// TestEventsResumeFrom: GET /jobs/{id}/events?from=N skips exactly the
// first N lines, and a bad offset is a 400.
func TestEventsResumeFrom(t *testing.T) {
	client, _ := newTestServer(t, stubRun)
	ctx := context.Background()
	created, err := client.Submit(ctx, smallGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := client.StreamEvents(ctx, created.ID, &full); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(full.String(), "\n")

	resp, err := http.Get(client.Base + "/jobs/" + created.ID + "/events?from=2")
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := strings.Join(lines[2:], "")
	if string(tail) != want {
		t.Fatalf("?from=2 = %q, want %q", tail, want)
	}

	resp, err = http.Get(client.Base + "/jobs/" + created.ID + "/events?from=potato")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from offset: status %d, want 400", resp.StatusCode)
	}
}

// cutConn aborts the first /events response after one complete line has
// been flushed, simulating a daemon dying mid-stream, then passes every
// later request through untouched.
type cutHandler struct {
	inner http.Handler
	done  atomic.Bool
}

func (c *cutHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/events") && c.done.CompareAndSwap(false, true) {
		c.inner.ServeHTTP(&cutWriter{ResponseWriter: w}, r)
		return
	}
	c.inner.ServeHTTP(w, r)
}

type cutWriter struct {
	http.ResponseWriter
	sent int
}

func (cw *cutWriter) Write(b []byte) (int, error) {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		cw.ResponseWriter.Write(b[:i+1])
		if f, ok := cw.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		// Abort the connection mid-body: the client sees a transport
		// error after exactly one complete line, like a daemon crash.
		panic(http.ErrAbortHandler)
	}
	return cw.ResponseWriter.Write(b)
}

// TestStreamEventsResumesAfterDrop: the self-healing client rides
// through a connection cut mid-stream — it reconnects with ?from=N and
// the consumer sees every progress line exactly once.
func TestStreamEventsResumesAfterDrop(t *testing.T) {
	store := newTestStore(t, t.TempDir(), 64, "test-v1")
	srv := &Server{Store: store, Run: stubRun, Workers: 1}
	srv.Start()
	hs := httptest.NewServer(&cutHandler{inner: srv.Handler()})
	t.Cleanup(hs.Close)
	client := NewClient(hs.URL)
	client.Retry = Retry{Attempts: 5, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond}
	ctx := context.Background()

	created, err := client.Submit(ctx, smallGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := client.StreamEvents(ctx, created.ID, &buf); err != nil {
		t.Fatalf("stream did not survive the cut: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != created.Total {
		t.Fatalf("resumed stream delivered %d lines, want %d (no drops, no dups):\n%s",
			len(lines), created.Total, buf.String())
	}
	seen := map[string]bool{}
	for _, ln := range lines {
		name := ln[strings.Index(ln, "]")+1:]
		if seen[name] {
			t.Fatalf("line duplicated across resume: %q", ln)
		}
		seen[name] = true
	}
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.EventsResumed != 1 {
		t.Fatalf("metrics events_resumed = %d, want 1", m.EventsResumed)
	}
}

// TestClientAPIErrorTyped: non-2xx responses surface as *APIError with
// the status, the server's message, and the raw body — inspectable by
// callers via errors.As.
func TestClientAPIErrorTyped(t *testing.T) {
	client, _ := newTestServer(t, stubRun)
	_, err := client.Status(context.Background(), "999")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v (%T), want *APIError", err, err)
	}
	if apiErr.Status != http.StatusNotFound || !strings.Contains(apiErr.Message, "no job") {
		t.Fatalf("APIError %+v, want 404 with a no-job message", apiErr)
	}
	if !strings.Contains(apiErr.Error(), "/jobs/999") || !strings.Contains(apiErr.Error(), "404") {
		t.Fatalf("Error() = %q, want the path and status", apiErr.Error())
	}
	if apiErr.Body == "" {
		t.Fatal("APIError.Body empty, want the raw response body")
	}
}

// TestHealthzReadyz: /healthz answers immediately; /readyz gates on
// SetReady (journal replay completion).
func TestHealthzReadyz(t *testing.T) {
	store := newTestStore(t, t.TempDir(), 4, "v")
	srv := &Server{Store: store, Run: stubRun}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	get := func(path string) int {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before SetReady = %d, want 503", got)
	}
	srv.SetReady()
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after SetReady = %d, want 200", got)
	}
}
