package svc

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/runner"
	"nimbus/internal/sim"
)

// stubRun is a deterministic stand-in for exp.RunScenario: metrics depend
// only on the scenario (through the derived seed), like a real run.
func stubRun(sc runner.Scenario) runner.Result {
	rng := sim.NewRand(sc.EffectiveSeed())
	return runner.Result{
		Scenario: sc,
		Metrics: map[string]float64{
			"mean_mbps":     sc.RateMbps * rng.Float64(),
			"qdelay_p95_ms": 10 * rng.Float64(),
		},
		Events:  uint64(sc.EffectiveSeed()&0xffff) + 1,
		WallSec: 0.25, // fixed so remote and "local" runs are byte-comparable
	}
}

func smallGrid() runner.Grid {
	return runner.Grid{
		Base:      runner.Scenario{RateMbps: 96, RTTms: 50, BufferMs: 100, DurationSec: 5, Seed: 1},
		RatesMbps: []float64{48, 96},
		RTTsMs:    []float64{25, 50},
	}
}

// newTestServer wires a Server over a stub run function and returns a
// client pointed at it plus the shared run counter.
func newTestServer(t *testing.T, run runner.RunFunc) (*Client, *Server) {
	t.Helper()
	store := newTestStore(t, t.TempDir(), 64, "test-v1")
	// No Logf: the job goroutine outlives a test's last HTTP response by
	// a few statements, and t.Logf after test completion panics.
	srv := &Server{Store: store, Run: run, Workers: 2}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return NewClient(hs.URL), srv
}

// TestServerEndToEnd drives the full surface through the Client: submit,
// results byte-identical to a local batch run, second submission all
// cache hits with identical raw bytes, status and metrics accounting.
func TestServerEndToEnd(t *testing.T) {
	var runs atomic.Int64
	client, _ := newTestServer(t, func(sc runner.Scenario) runner.Result {
		runs.Add(1)
		return stubRun(sc)
	})
	ctx := context.Background()
	g := smallGrid()

	created, err := client.Submit(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if created.Total != 4 {
		t.Fatalf("submitted grid expanded to %d cells, want 4", created.Total)
	}
	remote1, err := client.RawResults(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The daemon's results document is byte-identical to what the batch
	// CLIs emit for the same grid: same cells, same order, same encoder.
	local := (&runner.Runner{Workers: 1}).Run(g.Expand(), stubRun)
	var want bytes.Buffer
	if err := runner.WriteJSON(&want, local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote1, want.Bytes()) {
		t.Fatalf("remote results differ from local batch output:\nremote: %s\nlocal:  %s", remote1, want.Bytes())
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("first job ran %d cells, want 4", got)
	}

	// Second submission of the same grid: zero simulations, 100%% hits,
	// raw bytes identical to the first response.
	created2, err := client.Submit(ctx, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote2, err := client.RawResults(ctx, created2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("repeated submission re-simulated (%d total runs, want 4)", got)
	}
	if !bytes.Equal(remote1, remote2) {
		t.Fatalf("repeated submission not byte-identical:\n1: %s\n2: %s", remote1, remote2)
	}
	st, err := client.Status(ctx, created2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Cells.Hit != 4 || st.Cells.Miss != 0 || st.Done != 4 {
		t.Fatalf("second job status %+v, want done with 4 hits", st)
	}

	// Metrics reflect both jobs.
	m, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsSubmitted != 2 || m.JobsDone != 2 || m.CellsSimulated != 4 {
		t.Fatalf("metrics %+v, want 2 jobs done / 4 cells simulated", m)
	}
	if m.SimEvents == 0 || m.EventsPerSec == 0 {
		t.Fatalf("metrics missing throughput aggregates: %+v", m)
	}
	cs, err := client.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Misses != 4 || cs.MemHits != 4 || cs.CodeVersion != "test-v1" {
		t.Fatalf("cache stats %+v, want 4 misses + 4 memory hits", cs)
	}
}

// TestServerEvents: the events stream carries one runner.FormatProgress
// line per cell, tagged with the cache outcome, and terminates when the
// job does.
func TestServerEvents(t *testing.T) {
	client, _ := newTestServer(t, stubRun)
	ctx := context.Background()
	created, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := client.StreamEvents(ctx, created.ID, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != created.Total {
		t.Fatalf("streamed %d lines, want %d:\n%s", len(lines), created.Total, buf.String())
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, "[") || !strings.Contains(ln, "ev/s") {
			t.Fatalf("line %d is not a progress line: %q", i, ln)
		}
		if !strings.HasSuffix(ln, "[miss]") {
			t.Fatalf("line %d missing outcome tag: %q", i, ln)
		}
	}
	// A second submission's stream shows hits.
	created2, _ := client.Submit(ctx, smallGrid(), 0)
	buf.Reset()
	if err := client.StreamEvents(ctx, created2.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "[hit-"); n != created2.Total {
		t.Fatalf("second stream shows %d hits, want %d:\n%s", n, created2.Total, buf.String())
	}
}

// TestServerCancel: DELETE stops a running job; cells not yet started
// report cancellation, in-flight cells complete and are cached.
func TestServerCancel(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan string, 16)
	client, _ := newTestServer(t, func(sc runner.Scenario) runner.Result {
		entered <- sc.Name
		<-release
		return stubRun(sc)
	})
	ctx := context.Background()
	// One worker: cell 0 blocks in the stub, cells 1..3 are pending.
	created, err := client.Submit(ctx, smallGrid(), 1)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // cell 0 is in flight
	if _, err := client.Cancel(ctx, created.ID); err != nil {
		t.Fatal(err)
	}
	close(release)

	rs, err := client.Results(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4", len(rs))
	}
	if rs[0].Err != "" {
		t.Fatalf("in-flight cell should complete, got error %q", rs[0].Err)
	}
	canceled := 0
	for _, r := range rs[1:] {
		if strings.Contains(r.Err, "canceled") {
			canceled++
		}
	}
	if canceled != 3 {
		t.Fatalf("%d cells canceled, want 3: %+v", canceled, rs)
	}
	st, err := client.Status(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobCanceled || st.Cells.Errors != 3 || st.Cells.Miss != 1 {
		t.Fatalf("status %+v, want canceled with 1 miss + 3 errors", st)
	}
	// The completed cell's result was cached: resubmitting costs 3 runs.
	created2, _ := client.Submit(ctx, smallGrid(), 0)
	if _, err := client.RawResults(ctx, created2.ID); err != nil {
		t.Fatal(err)
	}
	st2, _ := client.Status(ctx, created2.ID)
	if st2.Cells.Hit != 1 || st2.Cells.Miss != 3 {
		t.Fatalf("after cancel, second job %+v, want 1 hit + 3 misses", st2)
	}
}

// TestServerConcurrentJobsShareCells: two jobs over the same grid
// submitted back-to-back cost one simulation per cell between them.
func TestServerConcurrentJobsShareCells(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	client, _ := newTestServer(t, func(sc runner.Scenario) runner.Result {
		runs.Add(1)
		<-release
		return stubRun(sc)
	})
	ctx := context.Background()
	a, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	ra, err := client.RawResults(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := client.RawResults(ctx, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Fatalf("concurrent jobs disagree:\na: %s\nb: %s", ra, rb)
	}
	if got := runs.Load(); got != 4 {
		t.Fatalf("two overlapping jobs ran %d simulations, want 4 (one per cell)", got)
	}
	sa, _ := client.Status(ctx, a.ID)
	sb, _ := client.Status(ctx, b.ID)
	shared := sa.Cells.Shared + sb.Cells.Shared + sa.Cells.Hit + sb.Cells.Hit
	if sa.Cells.Miss+sb.Cells.Miss != 4 || shared != 4 {
		t.Fatalf("cells not shared across jobs: a=%+v b=%+v", sa.Cells, sb.Cells)
	}
}

// TestServerBadRequests: malformed grids and unknown jobs produce typed
// errors, not hangs.
func TestServerBadRequests(t *testing.T) {
	client, _ := newTestServer(t, stubRun)
	ctx := context.Background()
	created, err := client.Submit(ctx, runner.Grid{}, 0)
	if err != nil {
		t.Fatalf("an empty grid still expands to its base cell: %v", err)
	}
	// Drain the job so its goroutine is quiet before the test exits.
	if _, err := client.RawResults(ctx, created.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Status(ctx, "999"); err == nil || !strings.Contains(err.Error(), "no job") {
		t.Fatalf("unknown job: err = %v, want not-found", err)
	}
	if _, err := client.Cancel(ctx, "999"); err == nil {
		t.Fatal("cancel of unknown job should fail")
	}
	srv2 := &Server{Store: newTestStore(t, t.TempDir(), 4, "v"), Run: stubRun, MaxCells: 2}
	hs := httptest.NewServer(srv2.Handler())
	defer hs.Close()
	big := NewClient(hs.URL)
	if _, err := big.Submit(ctx, smallGrid(), 0); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized grid: err = %v, want cell-limit rejection", err)
	}
}

// TestServerResultsWaitsForCompletion: a results request issued while the
// job is still running blocks until completion instead of returning a
// partial document.
func TestServerResultsWaitsForCompletion(t *testing.T) {
	release := make(chan struct{})
	client, _ := newTestServer(t, func(sc runner.Scenario) runner.Result {
		<-release
		return stubRun(sc)
	})
	ctx := context.Background()
	created, err := client.Submit(ctx, smallGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []runner.Result, 1)
	go func() {
		rs, err := client.Results(ctx, created.ID)
		if err != nil {
			t.Error(err)
		}
		got <- rs
	}()
	select {
	case <-got:
		t.Fatal("results returned before any cell completed")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case rs := <-got:
		if len(rs) != 4 {
			t.Fatalf("got %d results, want 4", len(rs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("results never returned after completion")
	}
}
