package svc

import (
	"context"
	"sync"
	"time"

	"nimbus/internal/runner"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	// JobRunning: cells are executing (jobs start immediately on submit;
	// admission control is the per-job worker pool, not a serial queue,
	// so overlapping jobs share in-flight cells through the store).
	JobRunning JobState = "running"
	// JobDone: every cell completed (some may carry per-cell errors).
	JobDone JobState = "done"
	// JobCanceled: DELETE /jobs/{id} stopped the job; cells that had not
	// started report a canceled error, in-flight cells finished (their
	// results are cached).
	JobCanceled JobState = "canceled"
)

// CellCounts breaks a job's cells down by how they were (or will be)
// satisfied. Hit+Miss+Shared+Errors+Running+Pending == Total at all
// times.
type CellCounts struct {
	// Hit counts cells served from the cache (memory or disk tier).
	Hit int `json:"hit"`
	// Miss counts cells this job simulated.
	Miss int `json:"miss"`
	// Shared counts cells another in-flight job was already simulating.
	Shared int `json:"shared"`
	// Errors counts cells that completed with a per-cell error
	// (malformed scenario, cancellation).
	Errors int `json:"errors"`
	// Running counts cells currently executing.
	Running int `json:"running"`
	// Pending counts cells not yet started.
	Pending int `json:"pending"`
}

// JobStatus is the GET /jobs/{id} document.
type JobStatus struct {
	ID    string     `json:"id"`
	State JobState   `json:"state"`
	Total int        `json:"total"`
	Done  int        `json:"done"`
	Cells CellCounts `json:"cells"`
	// Events is the simulator events executed by this job's misses (cache
	// hits cost zero).
	Events uint64 `json:"events"`
	// ElapsedSec is wall-clock time since submission (frozen at
	// completion).
	ElapsedSec float64 `json:"elapsed_sec"`
	// Err is a whole-job failure (bad grid); per-cell errors live in the
	// results.
	Err string `json:"err,omitempty"`
}

// Job is one submitted sweep: its expanded scenarios, per-cell progress,
// the growing event log, and — once done — results in submission order.
type Job struct {
	id     string
	scs    []runner.Scenario
	cancel context.CancelFunc
	start  time.Time

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on any event-log or state change
	state   JobState
	cells   CellCounts
	done    int
	events  uint64
	elapsed time.Duration // frozen on completion
	results []runner.Result
	log     []byte
	// lineOff[i] is the byte offset where progress line i starts in log.
	// StreamLog's ?from=N resume support maps a line count to a byte
	// offset through it; line counts (unlike byte offsets) survive a
	// daemon restart, because a replayed job re-emits the same number of
	// lines even though their text (tags, timings) differs.
	lineOff []int
}

func newJob(id string, scs []runner.Scenario, cancel context.CancelFunc) *Job {
	j := &Job{id: id, scs: scs, cancel: cancel, start: time.Now(), state: JobRunning}
	j.cells.Pending = len(scs)
	j.cond = sync.NewCond(&j.mu)
	return j
}

// Status snapshots the job for GET /jobs/{id}.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	elapsed := j.elapsed
	if j.state == JobRunning {
		elapsed = time.Since(j.start)
	}
	return JobStatus{
		ID: j.id, State: j.state, Total: len(j.scs), Done: j.done,
		Cells: j.cells, Events: j.events, ElapsedSec: elapsed.Seconds(),
	}
}

// cellStarted moves one cell pending → running.
func (j *Job) cellStarted() {
	j.mu.Lock()
	j.cells.Pending--
	j.cells.Running++
	j.mu.Unlock()
}

// cellFinished retires a running cell with its outcome and appends the
// run's progress line to the event log. Cells cancelled before starting
// come through with started=false (they were never moved to running).
func (j *Job) cellFinished(started bool, oc Outcome, r runner.Result, line string) {
	j.mu.Lock()
	if started {
		j.cells.Running--
	} else {
		j.cells.Pending--
	}
	switch {
	case r.Err != "":
		j.cells.Errors++
	case oc == Miss:
		j.cells.Miss++
		j.events += r.Events
	case oc == Shared:
		j.cells.Shared++
	default:
		j.cells.Hit++
	}
	j.done++
	j.lineOff = append(j.lineOff, len(j.log))
	j.log = append(j.log, line...)
	j.log = append(j.log, '\n')
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish records the terminal state and the results (submission order).
func (j *Job) finish(state JobState, rs []runner.Result) {
	j.mu.Lock()
	j.state = state
	j.results = rs
	j.elapsed = time.Since(j.start)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// Results blocks until the job reaches a terminal state, then returns its
// results (submission order, one per scenario). ctx aborts the wait.
func (j *Job) Results(ctx context.Context) ([]runner.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// The broadcast takes the lock so it cannot slip into the window
	// between a waiter's ctx check and its cond.Wait (a lost wakeup).
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	for j.state == JobRunning {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		j.cond.Wait()
	}
	return j.results, nil
}

// StreamLog writes the job's event log to emit, skipping the first from
// complete lines, then following appends until the job reaches a
// terminal state and the log is drained. from=0 streams from the
// beginning; a resuming client passes the number of lines it already
// delivered, so the stream neither drops nor duplicates progress lines
// across a reconnect. If from lines have not been emitted yet, StreamLog
// waits until they are (or the job ends). emit is called without the job
// lock held; returning an error stops the stream (a disconnected
// client). ctx also stops it.
func (j *Job) StreamLog(ctx context.Context, from int, emit func(chunk []byte) error) error {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	for len(j.lineOff) < from && j.state == JobRunning && ctx.Err() == nil {
		j.cond.Wait()
	}
	off := len(j.log) // from past the end: resume at the live tail
	if from < len(j.lineOff) {
		off = j.lineOff[from]
	}
	j.mu.Unlock()
	for {
		j.mu.Lock()
		for off == len(j.log) && j.state == JobRunning && ctx.Err() == nil {
			j.cond.Wait()
		}
		chunk := j.log[off:]
		off = len(j.log)
		terminal := j.state != JobRunning
		j.mu.Unlock()
		if len(chunk) > 0 {
			if err := emit(chunk); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if terminal && len(chunk) == 0 {
			return nil
		}
	}
}
