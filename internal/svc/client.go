package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nimbus/internal/runner"
)

// APIError is a non-2xx daemon response: the status code, the path that
// produced it, the server's error message (when the body carried one),
// and a truncated copy of the raw body. Retry logic inspects it — 429
// means "come back after RetryAfter", a 404 after a restart means the
// daemon lost the job — and so can callers, via errors.As.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Path is the request path that failed.
	Path string
	// Message is the server's error document's "error" field, if any.
	Message string
	// Body is the raw response body, truncated to 4 KiB.
	Body string
	// RetryAfter is the parsed Retry-After header (0 if absent): how long
	// the daemon asked us to back off. Set on load-shed 429s.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("svc: %s: %s (HTTP %d)", e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("svc: %s: HTTP %d", e.Path, e.Status)
}

// Retry configures the client's backoff on failed requests. The zero
// value disables retries (one attempt, fail fast) — existing callers and
// tests keep their old semantics; resilient callers set DefaultRetry.
type Retry struct {
	// Attempts is the total number of tries, including the first.
	// <= 1 disables retrying.
	Attempts int
	// Base is the first backoff delay; each retry doubles it.
	Base time.Duration
	// Max caps the backoff delay (and doubles as the cap on honoring a
	// server-supplied Retry-After).
	Max time.Duration
}

// DefaultRetry is the backoff nimbus-bench -remote uses: five attempts,
// exponential from 200ms, capped at 5s, with jitter. Worst case ~10s of
// retrying — enough to ride out a daemon restart, short enough that a
// genuinely dead daemon fails the run promptly.
var DefaultRetry = Retry{Attempts: 5, Base: 200 * time.Millisecond, Max: 5 * time.Second}

// Client is the typed consumer of a nimbus-svc daemon. The zero HTTP
// client is usable; Base is the daemon's root URL ("http://host:port").
// nimbus-bench -remote runs entirely through it, which is the proof that
// the daemon and the batch CLIs produce identical results.
//
// With Retry set, the client self-heals: idempotent calls back off
// exponentially (with jitter) on transport errors and load-shed 429s,
// honor Retry-After, and StreamEvents resumes a dropped stream from the
// last progress line it delivered — so a sweep rides through a daemon
// restart without dropping or duplicating output.
type Client struct {
	Base  string
	HTTP  *http.Client
	Retry Retry
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// retryable reports whether err is worth another attempt of method.
//
//   - A 429 retries regardless of method: the daemon shed the request, so
//     it had no effect.
//   - Other API errors are the daemon answering authoritatively (404, 400)
//     — retrying cannot change the answer.
//   - Transport errors retry for idempotent methods (GET, DELETE). A POST
//     retries only on connection-refused, where the request provably never
//     reached the daemon; any other mid-flight failure could mean the job
//     was created and retrying would submit it twice.
func retryable(method string, err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusTooManyRequests
	}
	if method == http.MethodGet || method == http.MethodDelete {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// backoff sleeps before retry attempt (0-based), honoring ctx. The delay
// doubles per attempt from Base, capped at Max, then jittered to
// [d/2, d) so a fleet of clients shed by the same daemon does not return
// in lockstep. A server-supplied Retry-After (floored at Base, capped at
// Max) wins when longer.
func (c *Client) backoff(ctx context.Context, attempt int, err error) error {
	d := c.Retry.Base
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 0; i < attempt && d < c.Retry.Max; i++ {
		d *= 2
	}
	if c.Retry.Max > 0 && d > c.Retry.Max {
		d = c.Retry.Max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > d {
		d = apiErr.RetryAfter
		if c.Retry.Max > 0 && d > c.Retry.Max {
			d = c.Retry.Max
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do issues a request and decodes the JSON response into out (unless
// nil), retrying per c.Retry. Non-2xx responses surface as *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = b
	}
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if werr := c.backoff(ctx, attempt-1, err); werr != nil {
				return werr
			}
		}
		err = c.doOnce(ctx, method, path, payload, out)
		if err == nil || ctx.Err() != nil || !retryable(method, err) {
			return err
		}
	}
	return err
}

func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp, path)
	}
	if out == nil {
		// Drain so the connection is reusable; the body is small (a JSON
		// document) on every route used with out == nil.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// apiError converts a non-2xx response into an *APIError, consuming (a
// bounded prefix of) the body. The caller still owns closing the body.
func apiError(resp *http.Response, path string) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &APIError{Status: resp.StatusCode, Path: path, Body: string(b)}
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &doc) == nil {
		e.Message = doc.Error
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// Submit posts a sweep grid and returns the created job. workers 0 uses
// the daemon's default pool size. Submit retries only failures where the
// job provably does not exist (connection refused, load-shed 429) — a
// mid-flight transport error is surfaced, never blindly retried, so a
// sweep is never submitted twice.
func (c *Client) Submit(ctx context.Context, g runner.Grid, workers int) (JobCreated, error) {
	var created JobCreated
	err := c.do(ctx, http.MethodPost, "/jobs", JobRequest{Grid: g, Workers: workers}, &created)
	return created, err
}

// Status fetches a job's status document.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// StreamEvents copies the job's progress lines to w as they happen,
// returning when the job completes (or ctx ends). The lines are the ones
// runner.Progress would print locally, tagged with each cell's cache
// outcome.
//
// With Retry set the stream self-heals: only complete lines are written
// to w, the client counts them, and when the connection drops (daemon
// restart, network blip) it reconnects with ?from=<count> so the daemon
// skips what was already delivered. The consumer sees each progress line
// exactly once, across any number of reconnects.
func (c *Client) StreamEvents(ctx context.Context, id string, w io.Writer) error {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	delivered := 0
	failures := 0
	var err error
	for {
		var n int
		n, err = c.streamOnce(ctx, id, delivered, w)
		delivered += n
		if err == nil {
			// Clean end of stream. The daemon ends the stream at a terminal
			// state — but a crashing daemon can also close the socket after
			// a complete line, which is indistinguishable here. Trust the
			// status document, not the EOF.
			st, serr := c.Status(ctx, id)
			if serr == nil && st.State != JobRunning {
				return nil
			}
			if serr != nil {
				err = serr
			} else {
				err = fmt.Errorf("svc: event stream ended but job %s still %s", id, st.State)
			}
		}
		if ctx.Err() != nil {
			return err
		}
		if n > 0 {
			failures = 0 // the connection made progress; reset the budget
		}
		failures++
		if failures >= attempts || !retryable(http.MethodGet, err) {
			return err
		}
		if werr := c.backoff(ctx, failures-1, err); werr != nil {
			return werr
		}
	}
}

// streamOnce runs one /events connection, emitting only complete lines
// to w from line offset `from`, and returns how many lines it delivered.
// A partial trailing line (the connection died mid-line) is discarded —
// the reconnect re-fetches it whole.
func (c *Client) streamOnce(ctx context.Context, id string, from int, w io.Writer) (int, error) {
	path := "/jobs/" + id + "/events"
	url := c.Base + path
	if from > 0 {
		url += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return 0, apiError(resp, path)
	}
	n := 0
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if strings.HasSuffix(line, "\n") {
			if _, werr := io.WriteString(w, line); werr != nil {
				return n, werr
			}
			n++
		}
		if err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
	}
}

// RawResults blocks until the job completes and returns the results
// document exactly as the daemon emitted it. Callers that persist results
// write these bytes verbatim: the daemon encodes with the same
// runner.WriteJSON as the batch CLIs, so saved remote results are
// byte-comparable to local ones. Retries (idempotent GET) per c.Retry.
func (c *Client) RawResults(ctx context.Context, id string) ([]byte, error) {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if werr := c.backoff(ctx, attempt-1, err); werr != nil {
				return nil, werr
			}
		}
		var b []byte
		b, err = c.rawResultsOnce(ctx, id)
		if err == nil {
			return b, nil
		}
		if ctx.Err() != nil || !retryable(http.MethodGet, err) {
			return nil, err
		}
	}
	return nil, err
}

func (c *Client) rawResultsOnce(ctx context.Context, id string) ([]byte, error) {
	path := "/jobs/" + id + "/results"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, path)
	}
	return io.ReadAll(resp.Body)
}

// Results is RawResults decoded into result rows.
func (c *Client) Results(ctx context.Context, id string) ([]runner.Result, error) {
	b, err := c.RawResults(ctx, id)
	if err != nil {
		return nil, err
	}
	var rs []runner.Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("svc: decoding results: %w", err)
	}
	return rs, nil
}

// Cancel asks the daemon to stop a job; cells not yet started will not
// run.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st)
	return st, err
}

// CacheStats fetches the store counters.
func (c *Client) CacheStats(ctx context.Context) (StoreStats, error) {
	var st StoreStats
	err := c.do(ctx, http.MethodGet, "/cache/stats", nil, &st)
	return st, err
}

// Metrics fetches the daemon-wide observability document.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}
