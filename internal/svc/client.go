package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"nimbus/internal/runner"
)

// Client is the typed consumer of a nimbus-svc daemon. The zero HTTP
// client is usable; Base is the daemon's root URL ("http://host:port").
// nimbus-bench -remote runs entirely through it, which is the proof that
// the daemon and the batch CLIs produce identical results.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient returns a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (unless
// nil). Non-2xx responses surface the server's error document.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp, path)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func apiError(resp *http.Response, path string) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return fmt.Errorf("svc: %s: %s", path, e.Error)
	}
	return fmt.Errorf("svc: %s: %s", path, resp.Status)
}

// Submit posts a sweep grid and returns the created job. workers 0 uses
// the daemon's default pool size.
func (c *Client) Submit(ctx context.Context, g runner.Grid, workers int) (JobCreated, error) {
	var created JobCreated
	err := c.do(ctx, http.MethodPost, "/jobs", JobRequest{Grid: g, Workers: workers}, &created)
	return created, err
}

// Status fetches a job's status document.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// StreamEvents copies the job's progress lines to w as they happen,
// returning when the job completes (or ctx/connection ends). The lines
// are the ones runner.Progress would print locally, tagged with each
// cell's cache outcome.
func (c *Client) StreamEvents(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp, "/jobs/"+id+"/events")
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// RawResults blocks until the job completes and returns the results
// document exactly as the daemon emitted it. Callers that persist results
// write these bytes verbatim: the daemon encodes with the same
// runner.WriteJSON as the batch CLIs, so saved remote results are
// byte-comparable to local ones.
func (c *Client) RawResults(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/results", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, "/jobs/"+id+"/results")
	}
	return io.ReadAll(resp.Body)
}

// Results is RawResults decoded into result rows.
func (c *Client) Results(ctx context.Context, id string) ([]runner.Result, error) {
	b, err := c.RawResults(ctx, id)
	if err != nil {
		return nil, err
	}
	var rs []runner.Result
	if err := json.Unmarshal(b, &rs); err != nil {
		return nil, fmt.Errorf("svc: decoding results: %w", err)
	}
	return rs, nil
}

// Cancel asks the daemon to stop a job; cells not yet started will not
// run.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st)
	return st, err
}

// CacheStats fetches the store counters.
func (c *Client) CacheStats(ctx context.Context) (StoreStats, error) {
	var st StoreStats
	err := c.do(ctx, http.MethodGet, "/cache/stats", nil, &st)
	return st, err
}

// Metrics fetches the daemon-wide observability document.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}
