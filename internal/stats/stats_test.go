package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"nimbus/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if !almost(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if !almost(w.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", w.Var())
	}
	if w.N() != len(xs) {
		t.Fatalf("n = %d", w.N())
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter out NaN/Inf quick-generated values.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, x := range clean {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		return almost(w.Mean(), mean, 1e-6*(1+math.Abs(mean)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.75, 40}, {0.1, 14},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Fatalf("P%.2f = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{50, 10, 40, 20, 30}
	got := Percentiles(xs, 0, 0.25, 0.5, 0.75, 1)
	want := []float64{10, 20, 30, 40, 50}
	for i := range want {
		if !almost(got[i], want[i], 1e-9) {
			t.Fatalf("Percentiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// One sort, same answers as repeated Percentile calls.
	for i, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got[i] != Percentile(xs, p) {
			t.Fatalf("Percentiles(%v) = %v disagrees with Percentile %v", p, got[i], Percentile(xs, p))
		}
	}
	if xs[0] != 50 {
		t.Fatal("input mutated")
	}
	for _, v := range Percentiles(nil, 0.5, 0.9) {
		if !math.IsNaN(v) {
			t.Fatal("empty input should yield NaNs")
		}
	}
	sorted := []float64{1, 2, 3, 4}
	ps := PercentilesSorted(sorted, 0.5)
	if ps[0] != Percentile(sorted, 0.5) {
		t.Fatalf("PercentilesSorted = %v", ps[0])
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P50 != 50 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !almost(s.P95, 95, 1e-9) {
		t.Fatalf("p95 = %v", s.P95)
	}
	if !almost(s.Mean, 50, 1e-9) {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cdf := CDF(xs, 0)
	if len(cdf) != 4 {
		t.Fatalf("cdf len = %d", len(cdf))
	}
	if cdf[0].X != 1 || cdf[3].X != 4 || cdf[3].P != 1 {
		t.Fatalf("cdf = %+v", cdf)
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) {
		t.Fatal("cdf not sorted")
	}
	small := CDF(make([]float64, 1000), 10)
	if len(small) > 110 {
		t.Fatalf("downsampled cdf too large: %d", len(small))
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(0)
	for i := 0; i < 50; i++ {
		e.Add(10)
	}
	if !almost(e.Value(), 10, 1e-6) {
		t.Fatalf("ewma = %v", e.Value())
	}
}

func TestEWMAFirstSampleInitializes(t *testing.T) {
	e := NewEWMA(0.1)
	if e.Initialized() {
		t.Fatal("initialized before any sample")
	}
	e.Add(42)
	if e.Value() != 42 {
		t.Fatalf("first sample should initialize: %v", e.Value())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestAlphaForCutoff(t *testing.T) {
	// Higher cutoff -> larger alpha (less smoothing).
	a1 := AlphaForCutoff(1, 0.01)
	a5 := AlphaForCutoff(5, 0.01)
	if !(a5 > a1 && a1 > 0 && a5 < 1) {
		t.Fatalf("alphas: %v %v", a1, a5)
	}
}

// EWMA low-pass property: a high-frequency square wave should be strongly
// attenuated relative to its input amplitude.
func TestEWMAAttenuatesHighFrequency(t *testing.T) {
	alpha := AlphaForCutoff(5, 0.01) // 5 Hz cutoff at 100 Hz sampling
	e := NewEWMA(alpha)
	// 25 Hz square wave, amplitude 1.
	var min, max float64 = 1, -1
	for i := 0; i < 1000; i++ {
		x := 1.0
		if (i/2)%2 == 1 {
			x = -1
		}
		v := e.Add(x)
		if i > 100 {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if (max-min)/2 > 0.5 {
		t.Fatalf("25 Hz amplitude not attenuated: %v", (max-min)/2)
	}
}

func TestWindowedMax(t *testing.T) {
	w := NewWindowedMax(int64(10 * sim.Second))
	w.Add(int64(1*sim.Second), 5)
	w.Add(int64(2*sim.Second), 3)
	if w.Max() != 5 {
		t.Fatalf("max = %v", w.Max())
	}
	// The 5 expires at t=11s+.
	w.Add(int64(12*sim.Second), 1)
	if w.Max() != 3 && w.Max() != 1 {
		t.Fatalf("max after expiry = %v", w.Max())
	}
	w.Add(int64(13*sim.Second), 10)
	if w.Max() != 10 {
		t.Fatalf("max = %v", w.Max())
	}
}

func TestWindowedMinBasics(t *testing.T) {
	w := NewWindowedMin(100)
	if !w.Empty() {
		t.Fatal("new filter not empty")
	}
	w.Add(0, 5)
	w.Add(10, 7)
	w.Add(20, 3)
	if w.Min() != 3 {
		t.Fatalf("min = %v", w.Min())
	}
	w.Add(200, 9) // everything else expired
	if w.Min() != 9 {
		t.Fatalf("min after expiry = %v", w.Min())
	}
}

// Property: WindowedMax always returns the true max of the samples within
// the window.
func TestWindowedMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		w := NewWindowedMax(1000)
		type kv struct {
			t int64
			v float64
		}
		var hist []kv
		for i, v := range clean {
			tm := int64(i * 100)
			w.Add(tm, v)
			hist = append(hist, kv{tm, v})
			// Brute-force max over the window [tm-1000, tm]; the filter
			// keeps the last sample even if expired, matching its
			// "latest estimate" semantics, so include it.
			want := math.Inf(-1)
			for _, h := range hist {
				if h.t >= tm-1000 {
					want = math.Max(want, h.v)
				}
			}
			if w.Max() < want-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 || r.Full() {
		t.Fatal("new ring state wrong")
	}
	for i := 1; i <= 3; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 3 || r.Full() {
		t.Fatal("ring fill state wrong")
	}
	got := r.Snapshot(nil)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v", got)
		}
	}
	r.Push(4)
	r.Push(5) // evicts 1
	if !r.Full() || r.Len() != 4 {
		t.Fatal("full ring state wrong")
	}
	got = r.Snapshot(got)
	want = []float64{2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot after wrap = %v", got)
		}
	}
	if r.At(0) != 5 || r.At(3) != 2 {
		t.Fatalf("At: newest=%v oldest=%v", r.At(0), r.At(3))
	}
}

// Property: the running windowed sum tracks a direct summation of the
// window across fills, wraps, and long churn.
func TestRingSum(t *testing.T) {
	r := NewRing(5)
	if r.Sum() != 0 {
		t.Fatal("empty ring sum not 0")
	}
	direct := func() float64 {
		s := 0.0
		for _, v := range r.Snapshot(nil) {
			s += v
		}
		return s
	}
	for i := 1; i <= 137; i++ {
		r.Push(float64(i%17) - 8)
		d := direct()
		if math.Abs(r.Sum()-d) > 1e-9 {
			t.Fatalf("after %d pushes: Sum = %v, direct = %v", i, r.Sum(), d)
		}
	}
	if math.Abs(r.Sum()/float64(r.Len())-Mean(r.Snapshot(nil))) > 1e-12 {
		t.Fatal("Sum/Len disagrees with Mean of snapshot")
	}
}

func TestRingAtPanics(t *testing.T) {
	r := NewRing(2)
	r.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	r.At(1)
}

// Property: snapshot returns the last min(n, cap) pushed values in order.
func TestRingProperty(t *testing.T) {
	f := func(vals []float64, capRaw uint8) bool {
		capN := int(capRaw%16) + 1
		r := NewRing(capN)
		for _, v := range vals {
			r.Push(v)
		}
		snap := r.Snapshot(nil)
		n := len(vals)
		if n > capN {
			n = capN
		}
		if len(snap) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if snap[i] != vals[len(vals)-n+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
