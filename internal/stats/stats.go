// Package stats provides the small statistical toolbox the experiments
// need: running moments, percentiles and CDFs, exponentially weighted
// moving averages, windowed extrema, and histograms. Everything is
// allocation-conscious but favours clarity; the simulator is the hot path,
// not the statistics.
package stats

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance in a single pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
// The input slice is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return percentileSorted(cp, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Percentiles returns the p-quantiles (each p in [0,1]) of xs, sorting a
// single copy once — the multi-quantile companion to Percentile, which
// copies and sorts per call. Empty input yields NaN for every quantile.
// The input slice is not modified.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for i, p := range ps {
		out[i] = percentileSorted(cp, p)
	}
	return out
}

// PercentilesSorted is Percentiles for input that is already sorted
// ascending; it neither copies nor sorts.
func PercentilesSorted(sorted []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Summary bundles the usual reporting quantiles of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P10, P25, P50 float64
	P75, P90, P95, P99 float64
	Max                float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Std: nan, Min: nan, P10: nan, P25: nan,
			P50: nan, P75: nan, P90: nan, P95: nan, P99: nan, Max: nan}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	var w Welford
	for _, x := range cp {
		w.Add(x)
	}
	s.Mean, s.Std = w.Mean(), w.Std()
	s.Min, s.Max = cp[0], cp[len(cp)-1]
	s.P10 = percentileSorted(cp, 0.10)
	s.P25 = percentileSorted(cp, 0.25)
	s.P50 = percentileSorted(cp, 0.50)
	s.P75 = percentileSorted(cp, 0.75)
	s.P90 = percentileSorted(cp, 0.90)
	s.P95 = percentileSorted(cp, 0.95)
	s.P99 = percentileSorted(cp, 0.99)
	return s
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // cumulative probability in (0,1]
}

// CDF returns the empirical CDF of xs, downsampled to at most maxPoints
// evenly spaced points (by rank). maxPoints <= 0 means no downsampling.
func CDF(xs []float64, maxPoints int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	step := 1
	if maxPoints > 0 && n > maxPoints {
		step = n / maxPoints
	}
	out := make([]CDFPoint, 0, n/step+1)
	for i := 0; i < n; i += step {
		out = append(out, CDFPoint{X: cp[i], P: float64(i+1) / float64(n)})
	}
	if out[len(out)-1].P != 1 {
		out = append(out, CDFPoint{X: cp[n-1], P: 1})
	}
	return out
}

// EWMA is an exponentially weighted moving average with a fixed smoothing
// factor per sample. The zero value is ready to use: the first sample
// initializes the average.
type EWMA struct {
	Alpha float64 // weight of the new sample, in (0,1]
	val   float64
	init  bool
}

// NewEWMA returns an EWMA with the given per-sample weight.
func NewEWMA(alpha float64) *EWMA { return &EWMA{Alpha: alpha} }

// AlphaForCutoff returns the EWMA weight that implements a single-pole
// low-pass filter with cutoff frequency fc (Hz) when sampled every dt
// seconds: alpha = dt / (dt + 1/(2*pi*fc)).
func AlphaForCutoff(fc, dt float64) float64 {
	rc := 1 / (2 * math.Pi * fc)
	return dt / (dt + rc)
}

// Add incorporates a sample and returns the new average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.val, e.init = x, true
		return x
	}
	e.val += e.Alpha * (x - e.val)
	return e.val
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.val }

// Initialized reports whether at least one sample has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Reset clears the average.
func (e *EWMA) Reset() { e.val, e.init = 0, false }
