package stats

// WindowedMax tracks the maximum of a value over a sliding window of
// "time" (any monotonically nondecreasing int64 key, typically sim.Time).
// It is the standard monotonic-deque construction: amortized O(1) per
// sample. Used for BBR-style max-bandwidth filters and µ estimation.
type WindowedMax struct {
	Window int64 // width of the window in key units
	keys   []int64
	vals   []float64
}

// NewWindowedMax returns a filter over the given window width.
func NewWindowedMax(window int64) *WindowedMax {
	return &WindowedMax{Window: window}
}

// Add inserts a sample at key t. Keys must be nondecreasing.
func (w *WindowedMax) Add(t int64, v float64) {
	// Drop samples dominated by the new one.
	for len(w.vals) > 0 && w.vals[len(w.vals)-1] <= v {
		w.vals = w.vals[:len(w.vals)-1]
		w.keys = w.keys[:len(w.keys)-1]
	}
	w.keys = append(w.keys, t)
	w.vals = append(w.vals, v)
	w.expire(t)
}

func (w *WindowedMax) expire(t int64) {
	cut := t - w.Window
	i := 0
	for i < len(w.keys)-1 && w.keys[i] < cut {
		i++
	}
	if i > 0 {
		w.keys = w.keys[i:]
		w.vals = w.vals[i:]
	}
}

// Max returns the maximum over the window ending at the latest Add (0 if
// no samples).
func (w *WindowedMax) Max() float64 {
	if len(w.vals) == 0 {
		return 0
	}
	return w.vals[0]
}

// Empty reports whether the filter holds no samples.
func (w *WindowedMax) Empty() bool { return len(w.vals) == 0 }

// WindowedMin is the mirror image of WindowedMax.
type WindowedMin struct {
	Window int64
	keys   []int64
	vals   []float64
}

// NewWindowedMin returns a min filter over the given window width.
func NewWindowedMin(window int64) *WindowedMin {
	return &WindowedMin{Window: window}
}

// Add inserts a sample at key t. Keys must be nondecreasing.
func (w *WindowedMin) Add(t int64, v float64) {
	for len(w.vals) > 0 && w.vals[len(w.vals)-1] >= v {
		w.vals = w.vals[:len(w.vals)-1]
		w.keys = w.keys[:len(w.keys)-1]
	}
	w.keys = append(w.keys, t)
	w.vals = append(w.vals, v)
	cut := t - w.Window
	i := 0
	for i < len(w.keys)-1 && w.keys[i] < cut {
		i++
	}
	if i > 0 {
		w.keys = w.keys[i:]
		w.vals = w.vals[i:]
	}
}

// Min returns the minimum over the window (0 if no samples).
func (w *WindowedMin) Min() float64 {
	if len(w.vals) == 0 {
		return 0
	}
	return w.vals[0]
}

// Empty reports whether the filter holds no samples.
func (w *WindowedMin) Empty() bool { return len(w.vals) == 0 }

// Ring is a fixed-capacity ring buffer of float64 samples with O(1)
// append; it retains the most recent Cap samples and maintains a running
// windowed sum so the window mean is O(1). Used for the detector's
// z-history and Nimbus's rate history.
type Ring struct {
	buf  []float64
	next int
	full bool
	sum  float64
}

// NewRing returns a ring holding up to n samples.
func NewRing(n int) *Ring { return &Ring{buf: make([]float64, n)} }

// Push appends a sample, evicting the oldest when full.
func (r *Ring) Push(v float64) {
	if r.full {
		r.sum -= r.buf[r.next]
	}
	r.sum += v
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Sum returns the running sum of the samples currently in the window.
// It is maintained incrementally (add on push, subtract on evict), so
// it can drift from a fresh summation by floating-point rounding after
// very long runs; callers comparing against sharp thresholds should
// treat it as approximate at the last few ulps.
func (r *Ring) Sum() float64 { return r.sum }

// Len returns the number of samples currently held.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Full reports whether the ring holds Cap samples.
func (r *Ring) Full() bool { return r.full }

// Snapshot copies the samples oldest-first into dst (allocating if dst is
// too small) and returns the slice.
func (r *Ring) Snapshot(dst []float64) []float64 {
	n := r.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if !r.full {
		copy(dst, r.buf[:r.next])
		return dst
	}
	k := copy(dst, r.buf[r.next:])
	copy(dst[k:], r.buf[:r.next])
	return dst
}

// At returns the i-th most recent sample (At(0) is the newest). It panics
// if i >= Len.
func (r *Ring) At(i int) float64 {
	if i >= r.Len() {
		panic("stats: Ring.At out of range")
	}
	idx := r.next - 1 - i
	if idx < 0 {
		idx += len(r.buf)
	}
	return r.buf[idx]
}
