// Package fault is a minimal failpoint framework for chaos testing the
// experiment service. Call sites name a point ("disk-write", "cell-run")
// and fire it on their hot path; the whole table is off by default and
// the disabled fast path is a single atomic load, so production traffic
// pays one branch per instrumented operation and nothing else.
//
// Points are armed from a spec string — the daemon's -failpoints flag or
// the NIMBUS_FAILPOINTS environment variable:
//
//	disk-write=err:0.5,cell-run=hang:1
//	journal-append=torn
//	cell-run=sleep:400ms
//
// Each item is name=mode[:arg]. Modes:
//
//   - err[:p]   — the operation fails with ErrInjected (probability p,
//     default 1).
//   - hang[:p]  — the operation blocks until its context is done or the
//     table changes (Set/Reset), then fails. This is how chaos tests
//     freeze a cell under the watchdog without leaking goroutines: the
//     watchdog cancels the cell context and the hang returns.
//   - sleep[:d] — the operation stalls for d (a Go duration, or a bare
//     number of milliseconds; default 100ms) and then proceeds normally.
//     Used to stretch job wall-clock so kill -9 lands mid-job reliably.
//   - torn[:p]  — a write-shaped operation persists a prefix of its
//     payload and then fails, simulating a crash mid-write. Only
//     meaningful for call sites using FireWrite; Fire treats it as err.
//
// The probability stream is seeded deterministically so a chaos run with
// fractional probabilities is reproducible within one process.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the action an armed failpoint injects.
type Mode uint8

const (
	// Off: the point is not armed (or the probability roll passed).
	Off Mode = iota
	// Err: fail the operation with ErrInjected.
	Err
	// Hang: block until the context is done or the table changes.
	Hang
	// Sleep: stall for the configured delay, then proceed.
	Sleep
	// Torn: persist a prefix of the payload, then fail (write sites).
	Torn
)

// ErrInjected is the error every injected failure resolves to, so call
// sites and tests can identify synthetic faults with errors.Is.
var ErrInjected = errors.New("injected fault")

type point struct {
	mode  Mode
	prob  float64
	delay time.Duration
	hits  uint64
}

var (
	// armed is the disabled fast path: one atomic load when no failpoint
	// is configured.
	armed atomic.Bool

	mu      sync.Mutex
	points  map[string]*point
	release = make(chan struct{})
	rng     = rand.New(rand.NewSource(1))
)

// Set replaces the active failpoint table from a spec string (see the
// package comment for the grammar). An empty spec disarms everything.
// Any table change releases goroutines blocked in a hang — they return
// ErrInjected, so a test can un-wedge what it froze.
func Set(spec string) error {
	table := map[string]*point{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, val, ok := strings.Cut(item, "=")
		if !ok || name == "" {
			return fmt.Errorf("fault: %q is not name=mode[:arg]", item)
		}
		modeStr, arg, hasArg := strings.Cut(val, ":")
		p := &point{prob: 1}
		switch modeStr {
		case "err":
			p.mode = Err
		case "hang":
			p.mode = Hang
		case "sleep":
			p.mode = Sleep
			p.delay = 100 * time.Millisecond
		case "torn":
			p.mode = Torn
		default:
			return fmt.Errorf("fault: %q: unknown mode %q (want err, hang, sleep, or torn)", item, modeStr)
		}
		if hasArg {
			if p.mode == Sleep {
				d, err := parseDelay(arg)
				if err != nil {
					return fmt.Errorf("fault: %q: %v", item, err)
				}
				p.delay = d
			} else {
				f, err := strconv.ParseFloat(arg, 64)
				if err != nil || f <= 0 || f > 1 {
					return fmt.Errorf("fault: %q: probability must be in (0,1], got %q", item, arg)
				}
				p.prob = f
			}
		}
		table[name] = p
	}
	mu.Lock()
	points = table
	close(release) // wake hangers; they observe the table change and fail
	release = make(chan struct{})
	armed.Store(len(table) > 0)
	mu.Unlock()
	return nil
}

// parseDelay accepts a Go duration ("250ms", "2s") or a bare number of
// milliseconds ("250").
func parseDelay(s string) (time.Duration, error) {
	if ms, err := strconv.Atoi(s); err == nil {
		if ms < 0 {
			return 0, fmt.Errorf("negative delay %q", s)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad delay %q (want a duration or milliseconds)", s)
	}
	return d, nil
}

// Reset disarms every failpoint and releases anything blocked in a hang.
func Reset() { Set("") } //nolint:errcheck // the empty spec cannot fail

// Enabled reports whether any failpoint is armed.
func Enabled() bool { return armed.Load() }

// Hits returns how many times the named point has triggered (rolled its
// probability and injected) since it was last Set.
func Hits(name string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if p := points[name]; p != nil {
		return p.hits
	}
	return 0
}

// eval rolls the named point once, counting a trigger, and returns the
// injected mode plus the release channel current at roll time.
func eval(name string) (Mode, time.Duration, chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		return Off, 0, release
	}
	if p.prob < 1 && rng.Float64() >= p.prob {
		return Off, 0, release
	}
	p.hits++
	return p.mode, p.delay, release
}

// Fire evaluates the named failpoint on a non-write path. Err (and Torn,
// which only write sites can honor properly) returns ErrInjected; Hang
// blocks until ctx is done (returning ctx.Err()) or the table changes
// (returning ErrInjected); Sleep stalls, honoring ctx, then proceeds.
// Unarmed or probability-passed points return nil.
func Fire(ctx context.Context, name string) error {
	if !armed.Load() {
		return nil
	}
	mode, delay, rel := eval(name)
	switch mode {
	case Err, Torn:
		return fmt.Errorf("%s: %w", name, ErrInjected)
	case Sleep:
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	case Hang:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-rel:
			return fmt.Errorf("%s: %w", name, ErrInjected)
		}
	}
	return nil
}

// FireWrite evaluates the named failpoint on a write path. torn=true
// instructs the caller to persist a prefix of its payload before failing
// with err — simulating a crash mid-write. Sleep stalls inline; Hang is
// not meaningful on write paths and degrades to Err.
func FireWrite(name string) (torn bool, err error) {
	if !armed.Load() {
		return false, nil
	}
	mode, delay, _ := eval(name)
	switch mode {
	case Err, Hang:
		return false, fmt.Errorf("%s: %w", name, ErrInjected)
	case Torn:
		return true, fmt.Errorf("%s: %w", name, ErrInjected)
	case Sleep:
		time.Sleep(delay)
	}
	return false, nil
}
