package fault

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDisabledFastPath: with no table armed, firing is a no-op.
func TestDisabledFastPath(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() after Reset")
	}
	if err := Fire(context.Background(), "anything"); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
	if torn, err := FireWrite("anything"); torn || err != nil {
		t.Fatalf("disabled FireWrite returned torn=%v err=%v", torn, err)
	}
}

// TestSpecParsing: good specs arm the named points, bad specs error.
func TestSpecParsing(t *testing.T) {
	t.Cleanup(Reset)
	good := []string{
		"",
		"a=err",
		"a=err:0.5,b=hang:1",
		"a=sleep:250ms, b=torn",
		"a=sleep:250",
	}
	for _, spec := range good {
		if err := Set(spec); err != nil {
			t.Errorf("Set(%q) = %v, want nil", spec, err)
		}
	}
	bad := []string{
		"a",            // no mode
		"=err",         // no name
		"a=explode",    // unknown mode
		"a=err:2",      // probability out of range
		"a=err:x",      // unparseable probability
		"a=sleep:-1ms", // negative delay
	}
	for _, spec := range bad {
		if err := Set(spec); err == nil {
			t.Errorf("Set(%q) succeeded, want error", spec)
		}
	}
}

// TestErrMode: an armed err point fails every time with ErrInjected, and
// only the named point.
func TestErrMode(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("boom=err"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Fire(context.Background(), "boom"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Fire(boom) = %v, want ErrInjected", err)
		}
	}
	if err := Fire(context.Background(), "other"); err != nil {
		t.Fatalf("Fire(other) = %v, want nil", err)
	}
	if got := Hits("boom"); got != 3 {
		t.Fatalf("Hits(boom) = %d, want 3", got)
	}
}

// TestHangReleasedByContext: a hang blocks until its context is
// canceled, then returns the context's error — the watchdog's release
// path, which is what keeps chaos tests goroutine-leak-free.
func TestHangReleasedByContext(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("stuck=hang"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Fire(ctx, "stuck") }()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("released hang returned %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("hang did not release on context cancel")
	}
}

// TestHangReleasedByReset: Reset un-wedges hangers with ErrInjected.
func TestHangReleasedByReset(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("stuck=hang"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = Fire(context.Background(), "stuck")
		}()
	}
	time.Sleep(20 * time.Millisecond)
	Reset()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hanger %d returned %v, want ErrInjected", i, err)
		}
	}
}

// TestSleepMode: sleep stalls at least the configured delay and then
// proceeds without error.
func TestSleepMode(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("slow=sleep:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Fire(context.Background(), "slow"); err != nil {
		t.Fatalf("sleep Fire = %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("sleep returned after %v, want >= 30ms", d)
	}
}

// TestTornMode: write sites get the torn instruction plus the error;
// non-write sites degrade torn to a plain injected error.
func TestTornMode(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("w=torn"); err != nil {
		t.Fatal(err)
	}
	torn, err := FireWrite("w")
	if !torn || !errors.Is(err, ErrInjected) {
		t.Fatalf("FireWrite = torn=%v err=%v, want torn ErrInjected", torn, err)
	}
	if err := Fire(context.Background(), "w"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Fire on torn point = %v, want ErrInjected", err)
	}
}

// TestProbability: a p=0.5 point triggers some but not all of many
// rolls (the stream is seeded, so this is deterministic in practice).
func TestProbability(t *testing.T) {
	t.Cleanup(Reset)
	if err := Set("maybe=err:0.5"); err != nil {
		t.Fatal(err)
	}
	hits := 0
	const rolls = 200
	for i := 0; i < rolls; i++ {
		if err := Fire(context.Background(), "maybe"); err != nil {
			hits++
		}
	}
	if hits == 0 || hits == rolls {
		t.Fatalf("p=0.5 point hit %d/%d rolls", hits, rolls)
	}
	if got := Hits("maybe"); got != uint64(hits) {
		t.Fatalf("Hits = %d, want %d", got, hits)
	}
}
