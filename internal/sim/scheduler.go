package sim

import "container/heap"

// Timer is a handle to a scheduled event. Cancelling a Timer prevents its
// callback from running; cancelling an already-fired or already-cancelled
// timer is a no-op.
//
// Timers returned by At/After are owned by the caller and are never
// recycled. Events scheduled through AtFunc/AfterFunc/AfterArg return no
// handle; their Timer structs are pooled and reused by the scheduler, which
// makes them allocation-free in steady state — that is the right API for
// high-frequency fire-and-forget events (per-packet transmissions,
// propagation delays, ACK deliveries).
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	afn       func(arg any)
	arg       any
	cancelled bool
	fired     bool
	pooled    bool
}

// Cancel prevents the timer's callback from running.
func (t *Timer) Cancel() {
	if t != nil {
		t.cancelled = true
	}
}

// Fired reports whether the timer's callback has already run.
func (t *Timer) Fired() bool { return t != nil && t.fired }

// When returns the simulated time at which the timer fires.
func (t *Timer) When() Time { return t.at }

func (t *Timer) run() {
	if t.fn != nil {
		t.fn()
	} else if t.afn != nil {
		t.afn(t.arg)
	}
}

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among same-time events
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a discrete-event scheduler. Events execute strictly in
// timestamp order; events with equal timestamps execute in the order they
// were scheduled. A Scheduler is not safe for concurrent use: the simulation
// is single-threaded by design so results are deterministic. Parallelism
// lives one layer up, in internal/runner, which runs many independent
// schedulers at once.
type Scheduler struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	free    []*Timer
	// Executed counts events run, useful for progress reporting and tests.
	Executed uint64
	// PoolReuses counts pooled timers recycled from the free list
	// (observable in tests; it stays zero if only At/After are used).
	PoolReuses uint64
}

// NewScheduler returns a scheduler with the clock at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any, pooled bool) *Timer {
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	s.seq++
	var ev *Timer
	if n := len(s.free); pooled && n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.PoolReuses++
		*ev = Timer{at: t, seq: s.seq, fn: fn, afn: afn, arg: arg, pooled: true}
	} else {
		ev = &Timer{at: t, seq: s.seq, fn: fn, afn: afn, arg: arg, pooled: pooled}
	}
	heap.Push(&s.events, ev)
	return ev
}

// release returns a pooled timer to the free list once the scheduler is
// done with it (fired or discarded while cancelled). Caller-owned timers
// are left for the garbage collector because the caller may still hold the
// handle.
func (s *Scheduler) release(ev *Timer) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	return s.schedule(t, fn, nil, nil, false)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtFunc schedules fn at absolute time t with no handle: the event cannot
// be cancelled, and its Timer is pooled.
func (s *Scheduler) AtFunc(t Time, fn func()) {
	s.schedule(t, fn, nil, nil, true)
}

// AfterFunc schedules fn to run d after the current time with no handle.
func (s *Scheduler) AfterFunc(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn, nil, nil, true)
}

// AfterArg schedules fn(arg) to run d after the current time with no
// handle. Passing the argument through the event (instead of capturing it)
// lets callers reuse one fn for every packet, so the per-event cost is
// zero allocations in steady state.
func (s *Scheduler) AfterArg(d Time, fn func(arg any), arg any) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, nil, fn, arg, true)
}

// Pending returns the number of events currently queued (including
// cancelled events not yet discarded).
func (s *Scheduler) Pending() int { return len(s.events) }

// FreeTimers returns the current size of the timer free list (tests).
func (s *Scheduler) FreeTimers() int { return len(s.free) }

// Stop halts Run/RunUntil after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// step runs the earliest event. It returns false when no events remain.
func (s *Scheduler) step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		if ev.cancelled {
			s.release(ev)
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.Executed++
		ev.run()
		s.release(ev)
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled beyond end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.stopped = false
	for !s.stopped {
		// Peek at the earliest non-cancelled event.
		for len(s.events) > 0 && s.events[0].cancelled {
			s.release(heap.Pop(&s.events).(*Timer))
		}
		if len(s.events) == 0 || s.events[0].at > end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}
