package sim

import "container/heap"

// Timer is a handle to a scheduled event. Cancelling a Timer prevents its
// callback from running; cancelling an already-fired or already-cancelled
// timer is a no-op.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// Cancel prevents the timer's callback from running.
func (t *Timer) Cancel() {
	if t != nil {
		t.cancelled = true
	}
}

// Fired reports whether the timer's callback has already run.
func (t *Timer) Fired() bool { return t != nil && t.fired }

// When returns the simulated time at which the timer fires.
func (t *Timer) When() Time { return t.at }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among same-time events
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Scheduler is a discrete-event scheduler. Events execute strictly in
// timestamp order; events with equal timestamps execute in the order they
// were scheduled. A Scheduler is not safe for concurrent use: the simulation
// is single-threaded by design so results are deterministic.
type Scheduler struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// Executed counts events run, useful for progress reporting and tests.
	Executed uint64
}

// NewScheduler returns a scheduler with the clock at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	s.seq++
	ev := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Pending returns the number of events currently queued (including
// cancelled events not yet discarded).
func (s *Scheduler) Pending() int { return len(s.events) }

// Stop halts Run/RunUntil after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// step runs the earliest event. It returns false when no events remain.
func (s *Scheduler) step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.Executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled beyond end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.stopped = false
	for !s.stopped {
		// Peek at the earliest non-cancelled event.
		for len(s.events) > 0 && s.events[0].cancelled {
			heap.Pop(&s.events)
		}
		if len(s.events) == 0 || s.events[0].at > end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}
