package sim

// Timer is a handle to a scheduled event. Cancelling a Timer prevents its
// callback from running; cancelling an already-fired or already-cancelled
// timer is a no-op.
//
// Timers returned by At/After are owned by the caller and are never
// recycled by the scheduler — though the caller can recycle one through
// Rearm. Events scheduled through AtFunc/AfterFunc/AfterArg return no
// handle; their Timer structs are pooled and reused by the scheduler, which
// makes them allocation-free in steady state — that is the right API for
// high-frequency fire-and-forget events (per-packet transmissions,
// propagation delays, ACK deliveries).
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	afn       func(arg any)
	arg       any
	sch       *Scheduler
	idx       int // position in the event heap; -1 when not queued
	cancelled bool
	fired     bool
	pooled    bool
}

// Cancel prevents the timer's callback from running. The event is removed
// from the queue immediately (and a pooled timer is released back to the
// free list on the spot), so cancelled events never linger in the heap and
// a cancelled caller-owned handle is immediately recyclable via Rearm.
func (t *Timer) Cancel() {
	if t == nil || t.cancelled || t.fired {
		return
	}
	t.cancelled = true
	if t.idx >= 0 && t.sch != nil {
		t.sch.qremove(t)
		t.sch.release(t)
	}
}

// Fired reports whether the timer's callback has already run.
func (t *Timer) Fired() bool { return t != nil && t.fired }

// When returns the simulated time at which the timer fires.
func (t *Timer) When() Time { return t.at }

func (t *Timer) run() {
	if t.fn != nil {
		t.fn()
	} else if t.afn != nil {
		t.afn(t.arg)
	}
}

// eventHeap is a 4-ary min-heap of pending timers, specialized to *Timer.
// It orders events by (at, seq) — the same strict total order the previous
// container/heap implementation used, and since every (at, seq) pair is
// unique, pop order (and therefore every simulation result) is identical.
// The 4-ary layout halves tree depth versus binary, and the manual
// siftUp/siftDown avoid container/heap's interface boxing and indirect
// Less/Swap calls on the simulator's single hottest structure. Each timer
// carries its heap index so Cancel can remove it in O(log n) instead of
// leaving garbage to be drained at pop time.
type eventHeap []*Timer

// timerLess is the event order: timestamp, then FIFO among equal times.
func timerLess(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(t *Timer) {
	es := append(*h, t)
	*h = es
	t.idx = len(es) - 1
	es.siftUp(t.idx)
}

func (h eventHeap) siftUp(i int) {
	t := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !timerLess(t, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].idx = i
		i = p
	}
	h[i] = t
	t.idx = i
}

// siftDown reports whether the element at i moved.
func (h eventHeap) siftDown(i int) bool {
	t := h[i]
	n := len(h)
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], t) {
			break
		}
		h[i] = h[m]
		h[i].idx = i
		i = m
	}
	h[i] = t
	t.idx = i
	return i != start
}

func (h *eventHeap) pop() *Timer {
	es := *h
	n := len(es)
	if n == 0 {
		return nil
	}
	t := es[0]
	last := es[n-1]
	es[n-1] = nil
	es = es[:n-1]
	*h = es
	if n > 1 {
		es[0] = last
		last.idx = 0
		es.siftDown(0)
	}
	t.idx = -1
	return t
}

func (h *eventHeap) remove(t *Timer) {
	es := *h
	i := t.idx
	n := len(es)
	last := es[n-1]
	es[n-1] = nil
	es = es[:n-1]
	*h = es
	if i < n-1 {
		es[i] = last
		last.idx = i
		if !es.siftDown(i) {
			es.siftUp(i)
		}
	}
	t.idx = -1
}

// Scheduler is a discrete-event scheduler. Events execute strictly in
// timestamp order; events with equal timestamps execute in the order they
// were scheduled. A Scheduler is not safe for concurrent use: the simulation
// is single-threaded by design so results are deterministic. Parallelism
// lives one layer up, in internal/runner, which runs many independent
// schedulers at once.
type Scheduler struct {
	now     Time
	events  eventHeap
	wheel   *timerWheel // non-nil after UseTimerWheel; replaces events
	seq     uint64
	stopped bool
	free    []*Timer
	// Executed counts events run, useful for progress reporting and tests.
	Executed uint64
	// PoolReuses counts pooled timers recycled from the free list
	// (observable in tests; it stays zero if only At/After are used).
	PoolReuses uint64
}

// NewScheduler returns a scheduler with the clock at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

func (s *Scheduler) schedule(t Time, fn func(), afn func(any), arg any, pooled bool) *Timer {
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	s.seq++
	var ev *Timer
	if n := len(s.free); pooled && n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		s.PoolReuses++
		*ev = Timer{at: t, seq: s.seq, fn: fn, afn: afn, arg: arg, sch: s, pooled: true}
	} else {
		ev = &Timer{at: t, seq: s.seq, fn: fn, afn: afn, arg: arg, sch: s, pooled: pooled}
	}
	s.qpush(ev)
	return ev
}

// release returns a pooled timer to the free list once the scheduler is
// done with it (fired or cancelled). Caller-owned timers are left for the
// garbage collector because the caller may still hold the handle.
func (s *Scheduler) release(ev *Timer) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, because it would silently reorder causality.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	return s.schedule(t, fn, nil, nil, false)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Rearm schedules fn at absolute time t, recycling the caller-owned handle
// tm: a still-pending tm is cancelled (removed from the queue) first, and
// the same Timer struct is reused for the new event, so periodically
// re-armed timers — pacing gaps, retransmission timeouts — cost zero
// allocations in steady state. A nil tm allocates a fresh handle, so
// callers can unconditionally write
//
//	s.timer = sch.Rearm(s.timer, at, fn)
//
// The returned pointer is the caller's new handle (tm itself when reused);
// the old handle must not be retained separately.
func (s *Scheduler) Rearm(tm *Timer, t Time, fn func()) *Timer {
	if tm == nil {
		return s.At(t, fn)
	}
	if tm.pooled {
		panic("sim: Rearm on a pooled (no-handle) timer")
	}
	tm.Cancel()
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	s.seq++
	*tm = Timer{at: t, seq: s.seq, fn: fn, sch: s}
	s.qpush(tm)
	return tm
}

// AtFunc schedules fn at absolute time t with no handle: the event cannot
// be cancelled, and its Timer is pooled.
func (s *Scheduler) AtFunc(t Time, fn func()) {
	s.schedule(t, fn, nil, nil, true)
}

// AfterFunc schedules fn to run d after the current time with no handle.
func (s *Scheduler) AfterFunc(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, fn, nil, nil, true)
}

// AfterArg schedules fn(arg) to run d after the current time with no
// handle. Passing the argument through the event (instead of capturing it)
// lets callers reuse one fn for every packet, so the per-event cost is
// zero allocations in steady state.
func (s *Scheduler) AfterArg(d Time, fn func(arg any), arg any) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, nil, fn, arg, true)
}

// Pending returns the number of events currently queued. Cancelled events
// are removed at Cancel time, so they are never counted.
func (s *Scheduler) Pending() int { return s.qlen() }

// FreeTimers returns the current size of the timer free list (tests).
func (s *Scheduler) FreeTimers() int { return len(s.free) }

// Stop halts Run/RunUntil after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// step runs the earliest event. It returns false when no events remain.
// Cancelled events never reach this point: Cancel removes them from the
// queue (releasing pooled ones) immediately, so Run and RunUntil share
// this single drain-free pop path.
func (s *Scheduler) step() bool {
	ev := s.qpop()
	if ev == nil {
		return false
	}
	s.now = ev.at
	ev.fired = true
	s.Executed++
	ev.run()
	s.release(ev)
	return true
}

// Run executes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil executes events with timestamps <= end, then sets the clock to
// end. Events scheduled beyond end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.stopped = false
	for !s.stopped {
		head := s.qpeek()
		if head == nil || head.at > end {
			break
		}
		s.step()
	}
	if s.now < end {
		s.now = end
	}
}
