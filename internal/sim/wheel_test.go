package sim

import (
	"testing"
)

// runQueueWorkload drives one scheduler through a deterministic mix of
// schedule/cancel/rearm/RunUntil traffic spanning ties, the wheel horizon
// (events > 268ms ahead land in the overflow heap and must cascade back),
// and mid-run scheduling, and returns the execution order. The heap and
// the wheel must produce identical sequences.
func runQueueWorkload(s *Scheduler, seed int64) []int {
	rng := NewRand(seed)
	var got []int
	id := 0
	var handles []*Timer
	schedule := func(d Time) {
		i := id
		id++
		handles = append(handles, s.At(s.Now()+d, func() { got = append(got, i) }))
	}
	// Phase 1: a burst with many ties and a few far-future events.
	for i := 0; i < 400; i++ {
		schedule(Time(rng.Intn(40)) * Millisecond)
	}
	for i := 0; i < 50; i++ {
		schedule(Time(rng.Intn(4000)) * Millisecond) // beyond the wheel span
	}
	// Cancel a third (repeats included), rearm a few.
	for i := 0; i < 150; i++ {
		handles[rng.Intn(len(handles))].Cancel()
	}
	for i := 0; i < 40; i++ {
		tm := handles[rng.Intn(len(handles))]
		j := id
		id++
		s.Rearm(tm, s.Now()+Time(rng.Intn(600))*Millisecond, func() { got = append(got, j) })
	}
	// Phase 2: interleave RunUntil slices with fresh events, so the
	// queue is exercised while partially drained and the clock jumps to
	// horizons with no event on them.
	for round := 0; round < 20; round++ {
		s.RunUntil(s.Now() + Time(rng.Intn(300))*Millisecond)
		for i := 0; i < 20; i++ {
			schedule(Time(rng.Intn(500)) * Millisecond)
		}
		handles[rng.Intn(len(handles))].Cancel()
	}
	// Phase 3: self-rearming timers (the pacing pattern) for a while.
	var pace *Timer
	left := 300
	var fire func()
	fire = func() {
		got = append(got, -1)
		left--
		if left > 0 {
			pace = s.Rearm(pace, s.Now()+Time(10+rng.Intn(990))*Microsecond, fire)
		}
	}
	pace = s.Rearm(nil, s.Now()+Microsecond, fire)
	s.Run()
	return got
}

// TestWheelMatchesHeap runs the identical randomized workload on a
// heap-backed and a wheel-backed scheduler and requires the execution
// orders to be byte-identical — the wheel's core contract.
func TestWheelMatchesHeap(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 99, 12345} {
		heap := NewScheduler()
		wheel := NewScheduler()
		wheel.UseTimerWheel()
		if !wheel.UsingTimerWheel() || heap.UsingTimerWheel() {
			t.Fatal("UsingTimerWheel misreports")
		}
		a := runQueueWorkload(heap, seed)
		b := runQueueWorkload(wheel, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: heap ran %d events, wheel ran %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: order diverges at event %d: heap=%d wheel=%d", seed, i, a[i], b[i])
			}
		}
		if heap.Executed != wheel.Executed {
			t.Fatalf("seed %d: Executed: heap=%d wheel=%d", seed, heap.Executed, wheel.Executed)
		}
	}
}

// TestWheelOverflowCascade pins the overflow path: events far beyond the
// wheel span must still fire in exact (at, seq) order as the window
// advances across multiple revolutions.
func TestWheelOverflowCascade(t *testing.T) {
	s := NewScheduler()
	s.UseTimerWheel()
	var got []Time
	// Events every 100ms out to 3s — ~11 wheel revolutions — plus ties.
	for i := 30; i >= 0; i-- { // scheduled in reverse time order
		at := Time(i) * 100 * Millisecond
		s.At(at, func() { got = append(got, at) })
		s.At(at, func() { got = append(got, at) }) // tie: seq order
	}
	s.Run()
	if len(got) != 62 {
		t.Fatalf("ran %d events, want 62", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

// TestWheelPendingAndCancel checks bookkeeping across both tiers.
func TestWheelPendingAndCancel(t *testing.T) {
	s := NewScheduler()
	s.UseTimerWheel()
	near := s.At(Millisecond, func() {})
	far := s.At(10*Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	near.Cancel()
	far.Cancel()
	if s.Pending() != 0 {
		t.Fatalf("Pending after cancels = %d, want 0", s.Pending())
	}
	s.Run()
	if s.Executed != 0 {
		t.Fatalf("cancelled events ran: Executed = %d", s.Executed)
	}
}

func TestUseTimerWheelLateIsAnError(t *testing.T) {
	s := NewScheduler()
	s.At(Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("UseTimerWheel with queued events did not panic")
		}
	}()
	s.UseTimerWheel()
}

// churnPopulation arms n self-rearming timers with a precomputed gap
// table: 90% pace-like gaps (10µs–1ms), 10% RTO-like (100–300ms, long
// enough that some land in the wheel's overflow heap). Every closure is
// built up front so the steady state allocates nothing.
func churnPopulation(s *Scheduler, n int) {
	rng := NewRand(7)
	gaps := make([]Time, 4096)
	for i := range gaps {
		if i%10 == 0 {
			gaps[i] = Time(100+rng.Intn(200)) * Millisecond
		} else {
			gaps[i] = Time(10+rng.Intn(990)) * Microsecond
		}
	}
	timers := make([]*Timer, n)
	gi := 0
	for i := 0; i < n; i++ {
		i := i
		var fire func()
		fire = func() {
			gi++
			timers[i] = s.Rearm(timers[i], s.Now()+gaps[gi&4095], fire)
		}
		timers[i] = s.Rearm(nil, Time(i)*Microsecond, fire)
	}
}

// BenchmarkSchedulerChurn compares the 4-ary heap and the hashed timer
// wheel under 10k concurrent self-rearming timers — the event-queue load
// of a 10k-flow churn scenario. One op is one event (pop + rearm push).
func BenchmarkSchedulerChurn(b *testing.B) {
	for _, bench := range []struct {
		name  string
		wheel bool
	}{{"heap-10k", false}, {"wheel-10k", true}} {
		b.Run(bench.name, func(b *testing.B) {
			s := NewScheduler()
			if bench.wheel {
				s.UseTimerWheel()
			}
			churnPopulation(s, 10000)
			// Warm ~10 wheel revolutions so every bucket and the
			// overflow heap reach steady-state capacity (append doubles
			// bucket slices for a few revolutions; see the alloc test).
			s.RunUntil(3 * Second)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.step()
			}
		})
	}
}

// TestSchedulerWheelChurnAllocFree asserts the wheel's steady state
// allocates nothing under the 10k-timer churn load.
func TestSchedulerWheelChurnAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-timer warmup")
	}
	s := NewScheduler()
	s.UseTimerWheel()
	churnPopulation(s, 10000)
	// Warm for ~10 wheel revolutions: bucket capacities grow toward the
	// maximum occupancy ever seen (append doubling), so the steady state
	// is allocation-free only once every hot bucket has seen its max.
	s.RunUntil(3 * Second)
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 50; i++ {
			s.step()
		}
	})
	if allocs > 0 {
		t.Fatalf("wheel churn allocates %.3f/op in steady state, want 0", allocs)
	}
}
