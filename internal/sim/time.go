// Package sim provides a deterministic discrete-event simulation kernel:
// a nanosecond-resolution virtual clock, an event scheduler with cancellable
// timers, and a seeded random source. Every experiment in this repository
// runs on top of this kernel, which makes runs exactly reproducible for a
// given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated clocks
// never consult the wall clock.
type Time int64

// Convenient durations expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time with millisecond precision, e.g. "12.340s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// FromSeconds converts a number of seconds to a Time delta.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromDuration converts a time.Duration to a Time delta.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }
