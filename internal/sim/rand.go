package sim

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source for simulations. It wraps
// math/rand with the distributions the workload generators need. Each
// component that needs randomness should derive its own Rand via Split so
// that adding a component does not perturb the random streams of others.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a Rand seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent Rand from this one, keyed by label so the
// derivation is stable across code changes that reorder calls.
func (r *Rand) Split(label string) *Rand {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= uint64(r.r.Int63())
	return NewRand(int64(h))
}

// Int63 returns a uniform non-negative 63-bit sample.
func (r *Rand) Int63() int64 { return r.r.Int63() }

// DeriveSeed maps (base seed, label) to an independent per-run seed via
// Rand.Split. The derivation builds a fresh root each call, so it depends
// only on its inputs — never on how many other seeds were derived first.
// The sweep engine uses it to give every scenario in a grid its own
// isolated random stream regardless of worker scheduling order.
func DeriveSeed(base int64, label string) int64 {
	return NewRand(base).Split(label).Int63()
}

// Float64 returns a uniform sample in [0,1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Exp returns an exponential sample with the given mean.
func (r *Rand) Exp(mean float64) float64 { return r.r.ExpFloat64() * mean }

// ExpTime returns an exponential Time delta with the given mean.
func (r *Rand) ExpTime(mean Time) Time {
	return Time(r.r.ExpFloat64() * float64(mean))
}

// Normal returns a normal sample with the given mean and stddev.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return r.r.NormFloat64()*stddev + mean
}

// Pareto returns a bounded Pareto-type sample with scale xm and shape alpha.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.r.Float64()
	for u == 0 {
		u = r.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns a log-normal sample with parameters mu, sigma (of the
// underlying normal).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.r.NormFloat64()*sigma + mu)
}
