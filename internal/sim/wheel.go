package sim

import "math/bits"

// timerWheel is the hashed-timer-wheel event queue: a ring of per-slot
// buckets hashed by expiry time, in front of an overflow heap for events
// beyond the wheel's horizon. It exists for dense short-horizon timer
// churn — at 10k+ concurrent flows the pace/RTO timers make the 4-ary
// heap's O(log n) push/pop/remove the simulator's hot path, while the
// wheel arms and cancels in O(1).
//
// The wheel is exact, not approximate: it pops events in the same strict
// (at, seq) total order as the heap, so enabling it never changes a
// simulation result (Scheduler.UseTimerWheel documents the contract;
// the sim tests and the exp-level identity tests enforce it).
//
// Layout and invariants:
//
//   - The window [base, base+span) is divided into slotCount slots of
//     width 1<<shift ns. An event with at-base < span lives in bucket
//     (at>>shift)&mask; anything later lives in the overflow heap.
//   - base only advances (pop aligns it down to the popped event's
//     slot), and every push satisfies at >= now >= base, so a bucket
//     index is unambiguous: each slot maps to exactly one time window
//     of the current revolution.
//   - When base advances, overflow events that entered the window are
//     cascaded into their buckets, so the overflow heap never holds an
//     event earlier than any bucket event.
//   - Buckets are unsorted arrays (O(1) append on arm, O(1) swap-remove
//     on cancel, via Timer.idx) until first popped from; then the bucket
//     is heapified in place with the same 4-ary sift code the main heap
//     uses and served in (at, seq) order. Sorting k events costs O(k log
//     k) against k·O(log n) under the heap — and k is bucket-sized, so
//     the constant is cache-local.
//   - occ is an occupancy bitmap over slots; finding the next non-empty
//     bucket is a word scan, not a slot walk.
type timerWheel struct {
	shift uint
	mask  int
	span  Time
	base  Time // aligned start of the window; only advances
	size  int  // events in buckets (excluding overflow)

	slots    [][]*Timer
	heaped   []bool // slot has been heapified and must stay a heap
	occ      []uint64
	overflow eventHeap
}

// Wheel geometry: 2^13 ns ≈ 8.2 µs slots and 32768 slots give a ≈268 ms
// horizon — wide enough that pacing gaps and min-RTO rearms stay O(1) in
// the buckets, while exponential-backoff RTOs overflow to the heap
// (where they are few and usually cancelled long before cascading).
// Narrow slots keep buckets shallow even at 10k dense pace timers
// (~75/bucket instead of ~600 at 64 µs slots), which is what makes the
// serve path beat the global heap's log n. The fixed cost is ~1 MB of
// slot headers per wheel-enabled scheduler — noise next to a 10k-flow
// simulation's packet state.
const (
	wheelShift = 13
	wheelSlots = 32768
)

func newTimerWheel(now Time) *timerWheel {
	w := &timerWheel{
		shift:  wheelShift,
		mask:   wheelSlots - 1,
		span:   Time(wheelSlots) << wheelShift,
		slots:  make([][]*Timer, wheelSlots),
		heaped: make([]bool, wheelSlots),
		occ:    make([]uint64, wheelSlots/64),
	}
	w.base = now &^ (Time(1)<<w.shift - 1)
	return w
}

func (w *timerWheel) len() int { return w.size + len(w.overflow) }

func (w *timerWheel) push(t *Timer) {
	if t.at-w.base >= w.span {
		w.overflow.push(t)
		return
	}
	w.pushBucket(t)
}

func (w *timerWheel) pushBucket(t *Timer) {
	s := int(t.at>>w.shift) & w.mask
	if w.heaped[s] {
		(*eventHeap)(&w.slots[s]).push(t)
	} else {
		b := append(w.slots[s], t)
		t.idx = len(b) - 1
		w.slots[s] = b
	}
	w.occ[s>>6] |= 1 << uint(s&63)
	w.size++
}

func (w *timerWheel) remove(t *Timer) {
	if t.at-w.base >= w.span {
		w.overflow.remove(t)
		return
	}
	s := int(t.at>>w.shift) & w.mask
	if w.heaped[s] {
		(*eventHeap)(&w.slots[s]).remove(t)
	} else {
		b := w.slots[s]
		i, n := t.idx, len(b)
		last := b[n-1]
		b[n-1] = nil
		b = b[:n-1]
		if i < n-1 {
			b[i] = last
			last.idx = i
		}
		w.slots[s] = b
		t.idx = -1
	}
	if len(w.slots[s]) == 0 {
		w.occ[s>>6] &^= 1 << uint(s&63)
		w.heaped[s] = false
	}
	w.size--
}

// firstSlot returns the earliest non-empty bucket: the first set
// occupancy bit in circular slot order starting at base's slot. Events
// all lie within one revolution of base, so circular order is time
// order. Must not be called with empty buckets.
func (w *timerWheel) firstSlot() int {
	start := int(w.base>>w.shift) & w.mask
	wi := start >> 6
	word := w.occ[wi] &^ (1<<uint(start&63) - 1)
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi == len(w.occ) {
			wi = 0
		}
		word = w.occ[wi]
	}
}

// peek returns the earliest event without removing it. It may heapify
// the head bucket, but never moves base.
func (w *timerWheel) peek() *Timer {
	if w.size == 0 {
		if len(w.overflow) == 0 {
			return nil
		}
		return w.overflow[0]
	}
	s := w.firstSlot()
	if !w.heaped[s] {
		w.heapify(s)
	}
	return w.slots[s][0]
}

func (w *timerWheel) pop() *Timer {
	var t *Timer
	if w.size == 0 {
		if len(w.overflow) == 0 {
			return nil
		}
		t = w.overflow.pop()
	} else {
		s := w.firstSlot()
		if !w.heaped[s] {
			w.heapify(s)
		}
		t = (*eventHeap)(&w.slots[s]).pop()
		if len(w.slots[s]) == 0 {
			w.occ[s>>6] &^= 1 << uint(s&63)
			w.heaped[s] = false
		}
		w.size--
	}
	w.advance(t.at)
	return t
}

// advance slides the window forward so it starts at now's slot, and
// cascades overflow events that entered the window into their buckets.
// The slots being vacated (times < now's slot start) are necessarily
// empty — everything there has already popped — so the buckets the
// cascaded events land in are fresh.
func (w *timerWheel) advance(now Time) {
	nb := now &^ (Time(1)<<w.shift - 1)
	if nb <= w.base {
		return
	}
	w.base = nb
	for len(w.overflow) > 0 && w.overflow[0].at-nb < w.span {
		w.pushBucket(w.overflow.pop())
	}
}

// heapify turns an unsorted bucket into a 4-ary min-heap in place. Once
// heaped, a bucket stays a heap (push/remove maintain the property)
// until it empties.
func (w *timerWheel) heapify(s int) {
	b := eventHeap(w.slots[s])
	for i := (len(b) - 2) >> 2; i >= 0; i-- {
		b.siftDown(i)
	}
	w.heaped[s] = true
}

// UseTimerWheel replaces the scheduler's 4-ary heap with the hashed
// timer wheel. Both structures pop events in the identical (at, seq)
// total order, so results are byte-for-byte the same either way; the
// wheel trades the heap's O(log n) arm/cancel for O(1), which wins
// when many thousands of short-horizon timers (pacing, RTO) churn at
// once and loses nothing measurable otherwise. It must be called
// before any event is scheduled; flipping the structure mid-run would
// require migrating the queue, which no caller needs.
func (s *Scheduler) UseTimerWheel() {
	if s.wheel != nil {
		return
	}
	if len(s.events) > 0 {
		panic("sim: UseTimerWheel called with events already queued")
	}
	s.wheel = newTimerWheel(s.now)
}

// UsingTimerWheel reports whether the wheel is the active event queue.
func (s *Scheduler) UsingTimerWheel() bool { return s.wheel != nil }

// The scheduler routes every queue operation through these helpers; the
// wheel-nil branch is the historical heap path, untouched.

func (s *Scheduler) qpush(t *Timer) {
	if s.wheel != nil {
		s.wheel.push(t)
		return
	}
	s.events.push(t)
}

func (s *Scheduler) qpop() *Timer {
	if s.wheel != nil {
		return s.wheel.pop()
	}
	return s.events.pop()
}

func (s *Scheduler) qpeek() *Timer {
	if s.wheel != nil {
		return s.wheel.peek()
	}
	if len(s.events) == 0 {
		return nil
	}
	return s.events[0]
}

func (s *Scheduler) qremove(t *Timer) {
	if s.wheel != nil {
		s.wheel.remove(t)
		return
	}
	s.events.remove(t)
}

func (s *Scheduler) qlen() int {
	if s.wheel != nil {
		return s.wheel.len()
	}
	return len(s.events)
}
