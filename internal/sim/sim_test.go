package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds: got %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Fatalf("FromSeconds: got %v, want 250ms", got)
	}
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Fatalf("Millis: got %v, want 2", got)
	}
	if s := (12340 * Millisecond).String(); s != "12.340s" {
		t.Fatalf("String: got %q", s)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(Millisecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Fired() {
		t.Fatal("Fired() true for cancelled timer")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10*Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 40*Millisecond {
		t.Fatalf("clock = %v, want 40ms", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d * Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*Millisecond {
		t.Fatalf("clock = %v, want 25ms", s.Now())
	}
	s.RunUntil(100 * Millisecond)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Millisecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5*Millisecond, func() {})
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 3 {
			s.Stop()
		}
		s.After(Millisecond, tick)
	}
	s.After(0, tick)
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt)", count)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	s1 := r.Split("a")
	r2 := NewRand(7)
	s2 := r2.Split("a")
	if s1.Float64() != s2.Float64() {
		t.Fatal("Split not deterministic for same label/parent state")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~5", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(2)
	f := func(u uint8) bool {
		x := r.Pareto(100, 1.5)
		return x >= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpTimeNonNegative(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(10 * Millisecond); d < 0 {
			t.Fatal("negative ExpTime")
		}
	}
}
