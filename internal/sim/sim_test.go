package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds: got %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Fatalf("FromSeconds: got %v, want 250ms", got)
	}
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Fatalf("Millis: got %v, want 2", got)
	}
	if s := (12340 * Millisecond).String(); s != "12.340s" {
		t.Fatalf("String: got %q", s)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(Millisecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Fired() {
		t.Fatal("Fired() true for cancelled timer")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10*Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 40*Millisecond {
		t.Fatalf("clock = %v, want 40ms", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d * Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*Millisecond {
		t.Fatalf("clock = %v, want 25ms", s.Now())
	}
	s.RunUntil(100 * Millisecond)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Millisecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5*Millisecond, func() {})
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 3 {
			s.Stop()
		}
		s.After(Millisecond, tick)
	}
	s.After(0, tick)
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt)", count)
	}
}

func TestSchedulerTimerPoolReuse(t *testing.T) {
	s := NewScheduler()
	// Fire a pooled event; its Timer must land on the free list.
	ran := 0
	s.AfterFunc(Millisecond, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("pooled event ran %d times, want 1", ran)
	}
	if s.FreeTimers() != 1 {
		t.Fatalf("free list has %d timers after fire, want 1", s.FreeTimers())
	}
	// The next pooled event must reuse it rather than allocate.
	s.AfterArg(Millisecond, func(arg any) { ran += arg.(int) }, 2)
	if s.FreeTimers() != 0 {
		t.Fatalf("free list has %d timers after reschedule, want 0", s.FreeTimers())
	}
	s.Run()
	if ran != 3 || s.PoolReuses != 1 {
		t.Fatalf("ran=%d reuses=%d, want 3 and 1", ran, s.PoolReuses)
	}
}

func TestSchedulerPoolCancelLifecycle(t *testing.T) {
	// Cancelled caller-owned timers are discarded but never recycled: the
	// caller still holds the handle, so recycling would let a stale Cancel
	// kill an unrelated future event. Pooled events interleaved with them
	// must keep firing in order.
	s := NewScheduler()
	var order []int
	tm := s.At(2*Millisecond, func() { order = append(order, -1) })
	s.AtFunc(1*Millisecond, func() { order = append(order, 1) })
	s.AtFunc(3*Millisecond, func() { order = append(order, 3) })
	tm.Cancel()
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
	if tm.Fired() {
		t.Fatal("cancelled timer reports fired")
	}
	// Both pooled timers recycled; the cancelled caller-owned one is not.
	if s.FreeTimers() != 2 {
		t.Fatalf("free list = %d, want 2", s.FreeTimers())
	}
	// A stale Cancel on the fired handle must not disturb future events.
	tm.Cancel()
	fired := false
	s.AfterFunc(Millisecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event after stale Cancel did not fire")
	}
}

func TestSchedulerPooledSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	// Warm the pool.
	s.AfterFunc(0, func() {})
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterFunc(Microsecond, func() {})
		s.Run()
	})
	if allocs > 0.1 {
		t.Fatalf("pooled scheduling allocates %.2f/op, want 0", allocs)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(42, "rate=96/rtt=50")
	b := DeriveSeed(42, "rate=96/rtt=50")
	if a != b {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, "rate=96/rtt=100") == a {
		t.Fatal("DeriveSeed ignores label")
	}
	if DeriveSeed(43, "rate=96/rtt=50") == a {
		t.Fatal("DeriveSeed ignores base seed")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	s1 := r.Split("a")
	r2 := NewRand(7)
	s2 := r2.Split("a")
	if s1.Float64() != s2.Float64() {
		t.Fatal("Split not deterministic for same label/parent state")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~5", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(2)
	f := func(u uint8) bool {
		x := r.Pareto(100, 1.5)
		return x >= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpTimeNonNegative(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(10 * Millisecond); d < 0 {
			t.Fatal("negative ExpTime")
		}
	}
}
