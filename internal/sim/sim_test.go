package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds: got %v, want 1.5", got)
	}
	if got := FromSeconds(0.25); got != 250*Millisecond {
		t.Fatalf("FromSeconds: got %v, want 250ms", got)
	}
	if got := (2 * Millisecond).Millis(); got != 2 {
		t.Fatalf("Millis: got %v, want 2", got)
	}
	if s := (12340 * Millisecond).String(); s != "12.340s" {
		t.Fatalf("String: got %q", s)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Millisecond, func() { order = append(order, 3) })
	s.At(10*Millisecond, func() { order = append(order, 1) })
	s.At(20*Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if s.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(Millisecond, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Fired() {
		t.Fatal("Fired() true for cancelled timer")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(10*Millisecond, tick)
		}
	}
	s.After(0, tick)
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if s.Now() != 40*Millisecond {
		t.Fatalf("clock = %v, want 40ms", s.Now())
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d * Millisecond
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(25 * Millisecond)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25*Millisecond {
		t.Fatalf("clock = %v, want 25ms", s.Now())
	}
	s.RunUntil(100 * Millisecond)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Millisecond, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5*Millisecond, func() {})
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 3 {
			s.Stop()
		}
		s.After(Millisecond, tick)
	}
	s.After(0, tick)
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt)", count)
	}
}

func TestSchedulerTimerPoolReuse(t *testing.T) {
	s := NewScheduler()
	// Fire a pooled event; its Timer must land on the free list.
	ran := 0
	s.AfterFunc(Millisecond, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("pooled event ran %d times, want 1", ran)
	}
	if s.FreeTimers() != 1 {
		t.Fatalf("free list has %d timers after fire, want 1", s.FreeTimers())
	}
	// The next pooled event must reuse it rather than allocate.
	s.AfterArg(Millisecond, func(arg any) { ran += arg.(int) }, 2)
	if s.FreeTimers() != 0 {
		t.Fatalf("free list has %d timers after reschedule, want 0", s.FreeTimers())
	}
	s.Run()
	if ran != 3 || s.PoolReuses != 1 {
		t.Fatalf("ran=%d reuses=%d, want 3 and 1", ran, s.PoolReuses)
	}
}

func TestSchedulerPoolCancelLifecycle(t *testing.T) {
	// Cancelled caller-owned timers are discarded but never recycled: the
	// caller still holds the handle, so recycling would let a stale Cancel
	// kill an unrelated future event. Pooled events interleaved with them
	// must keep firing in order.
	s := NewScheduler()
	var order []int
	tm := s.At(2*Millisecond, func() { order = append(order, -1) })
	s.AtFunc(1*Millisecond, func() { order = append(order, 1) })
	s.AtFunc(3*Millisecond, func() { order = append(order, 3) })
	tm.Cancel()
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
	if tm.Fired() {
		t.Fatal("cancelled timer reports fired")
	}
	// Both pooled timers recycled; the cancelled caller-owned one is not.
	if s.FreeTimers() != 2 {
		t.Fatalf("free list = %d, want 2", s.FreeTimers())
	}
	// A stale Cancel on the fired handle must not disturb future events.
	tm.Cancel()
	fired := false
	s.AfterFunc(Millisecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event after stale Cancel did not fire")
	}
}

func TestSchedulerPooledSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	// Warm the pool.
	s.AfterFunc(0, func() {})
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterFunc(Microsecond, func() {})
		s.Run()
	})
	if allocs > 0.1 {
		t.Fatalf("pooled scheduling allocates %.2f/op, want 0", allocs)
	}
}

func TestSchedulerCancelRemovesImmediately(t *testing.T) {
	// Cancel removes the event from the queue on the spot — there is no
	// lazy cancelled-event drain left in either Run or RunUntil, so
	// Pending drops at Cancel time on both paths.
	t.Run("Run", func(t *testing.T) {
		s := NewScheduler()
		fired := false
		tm := s.At(2*Millisecond, func() { fired = true })
		s.At(3*Millisecond, func() {})
		if s.Pending() != 2 {
			t.Fatalf("Pending = %d, want 2", s.Pending())
		}
		tm.Cancel()
		if s.Pending() != 1 {
			t.Fatalf("Pending after Cancel = %d, want 1 (eager removal)", s.Pending())
		}
		s.Run()
		if fired {
			t.Fatal("cancelled event fired via Run")
		}
	})
	t.Run("RunUntil", func(t *testing.T) {
		s := NewScheduler()
		fired := false
		tm := s.At(2*Millisecond, func() { fired = true })
		s.At(3*Millisecond, func() {})
		tm.Cancel()
		if s.Pending() != 1 {
			t.Fatalf("Pending after Cancel = %d, want 1 (eager removal)", s.Pending())
		}
		s.RunUntil(10 * Millisecond)
		if fired {
			t.Fatal("cancelled event fired via RunUntil")
		}
		if s.Executed != 1 {
			t.Fatalf("Executed = %d, want 1", s.Executed)
		}
	})
	// Cancelling mid-queue (not the earliest, not the last) must keep the
	// heap ordered on both paths.
	t.Run("MidQueueOrder", func(t *testing.T) {
		s := NewScheduler()
		var order []int
		var tms []*Timer
		for i := 1; i <= 9; i++ {
			i := i
			tms = append(tms, s.At(Time(i)*Millisecond, func() { order = append(order, i) }))
		}
		tms[4].Cancel()
		tms[1].Cancel()
		s.RunUntil(6 * Millisecond)
		s.Run()
		want := []int{1, 3, 4, 6, 7, 8, 9}
		if len(order) != len(want) {
			t.Fatalf("order = %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order = %v, want %v", order, want)
			}
		}
	})
}

func TestSchedulerRearm(t *testing.T) {
	s := NewScheduler()
	// A nil handle allocates; subsequent rearms recycle the same struct.
	var tm *Timer
	count := 0
	tm = s.Rearm(tm, Millisecond, func() { count++ })
	first := tm
	tm = s.Rearm(tm, 2*Millisecond, func() { count += 10 }) // displaces the pending event
	if tm != first {
		t.Fatal("Rearm did not reuse the caller-owned Timer struct")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (old event removed)", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10 (only the rearmed event runs)", count)
	}
	if s.Now() != 2*Millisecond {
		t.Fatalf("clock = %v, want 2ms", s.Now())
	}
	// Rearming a fired handle reuses it too.
	tm2 := s.Rearm(tm, 5*Millisecond, func() { count++ })
	if tm2 != first {
		t.Fatal("Rearm of a fired handle did not reuse the struct")
	}
	s.Run()
	if count != 11 {
		t.Fatalf("count = %d, want 11", count)
	}
}

func TestSchedulerRearmSteadyStateAllocs(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	tm := s.Rearm(nil, Microsecond, fn)
	allocs := testing.AllocsPerRun(1000, func() {
		tm = s.Rearm(tm, s.Now()+Microsecond, fn)
		s.Run()
	})
	if allocs > 0 {
		t.Fatalf("Rearm allocates %.2f/op in steady state, want 0", allocs)
	}
}

// TestSchedulerHeapMatchesReference drives the 4-ary heap through a
// randomized schedule/cancel workload and checks the execution order
// against the (at, seq) total order computed independently.
func TestSchedulerHeapMatchesReference(t *testing.T) {
	rng := NewRand(99)
	s := NewScheduler()
	type ev struct {
		at  Time
		id  int
		tm  *Timer
		cut bool
	}
	var evs []*ev
	var got []int
	for i := 0; i < 500; i++ {
		at := Time(rng.Intn(50)) * Millisecond // many ties to exercise seq order
		e := &ev{at: at, id: i}
		e.tm = s.At(at, func() { got = append(got, e.id) })
		evs = append(evs, e)
	}
	// Cancel a third of them, including repeats and already-cancelled.
	for i := 0; i < 200; i++ {
		e := evs[rng.Intn(len(evs))]
		e.tm.Cancel()
		e.cut = true
	}
	s.Run()
	var want []int
	for _, e := range evs { // evs is already in (at, seq)-stable order per at via stable scan
		if !e.cut {
			want = append(want, e.id)
		}
	}
	// Reference order: sort by (at, id) — id order equals seq order here.
	sort.SliceStable(want, func(i, j int) bool { return evs[want[i]].at < evs[want[j]].at })
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// BenchmarkSchedulerPooledChurn measures the event queue under the
// simulator's real mix: pooled fire-and-forget events plus a rearmed
// cancellable timer, all allocation-free in steady state. (The 10k-timer
// heap-vs-wheel comparison lives in BenchmarkSchedulerChurn in
// wheel_test.go.)
func BenchmarkSchedulerPooledChurn(b *testing.B) {
	s := NewScheduler()
	noop := func() {}
	anoop := func(any) {}
	var tm *Timer
	// Warm the pool and the rearmable handle.
	for i := 0; i < 64; i++ {
		s.AfterFunc(Time(i)*Microsecond, noop)
	}
	tm = s.Rearm(tm, 100*Microsecond, noop)
	s.Run()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.AfterFunc(Microsecond, noop)
		s.AfterArg(2*Microsecond, anoop, nil)
		s.AfterFunc(3*Microsecond, noop)
		tm = s.Rearm(tm, s.Now()+2*Microsecond, noop) // rearmed before firing...
		tm = s.Rearm(tm, s.Now()+4*Microsecond, noop) // ...and again (removal path)
		s.Run()
	}
}

func TestSchedulerChurnAllocFree(t *testing.T) {
	s := NewScheduler()
	noop := func() {}
	anoop := func(any) {}
	var tm *Timer
	for i := 0; i < 64; i++ {
		s.AfterFunc(Time(i)*Microsecond, noop)
	}
	tm = s.Rearm(tm, 100*Microsecond, noop)
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterFunc(Microsecond, noop)
		s.AfterArg(2*Microsecond, anoop, nil)
		tm = s.Rearm(tm, s.Now()+2*Microsecond, noop)
		tm = s.Rearm(tm, s.Now()+4*Microsecond, noop)
		s.Run()
	})
	if allocs > 0 {
		t.Fatalf("scheduler churn allocates %.2f/op in steady state, want 0", allocs)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	a := DeriveSeed(42, "rate=96/rtt=50")
	b := DeriveSeed(42, "rate=96/rtt=50")
	if a != b {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, "rate=96/rtt=100") == a {
		t.Fatal("DeriveSeed ignores label")
	}
	if DeriveSeed(43, "rate=96/rtt=50") == a {
		t.Fatal("DeriveSeed ignores base seed")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	s1 := r.Split("a")
	r2 := NewRand(7)
	s2 := r2.Split("a")
	if s1.Float64() != s2.Float64() {
		t.Fatal("Split not deterministic for same label/parent state")
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(1)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~5", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRand(2)
	f := func(u uint8) bool {
		x := r.Pareto(100, 1.5)
		return x >= 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpTimeNonNegative(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(10 * Millisecond); d < 0 {
			t.Fatal("negative ExpTime")
		}
	}
}
