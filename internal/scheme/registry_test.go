package scheme_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	// Importing the implementation packages runs their init-time
	// registrations — the same way every binary gets its registry.
	_ "nimbus/internal/cc"
	_ "nimbus/internal/core"
	"nimbus/internal/scheme"
	"nimbus/internal/transport"
)

const testMuBps = 96e6

func TestRegistryNonEmpty(t *testing.T) {
	want := []string{
		"bbr", "compound", "copa", "copa-default", "cubic", "fixedwindow",
		"nimbus", "nimbus-competitive", "nimbus-copa", "nimbus-delay",
		"nimbus-reno", "nimbus-vegas", "reno", "vegas", "vivace",
	}
	got := scheme.Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registered schemes = %v, want %v", got, want)
	}
}

// TestEverySchemeRoundTripsAndBuilds is the registry's contract: each
// registered scheme parses from its bare name, round-trips through the
// canonical string form with every parameter made explicit, constructs
// successfully with defaults, and rejects unknown and mistyped
// parameters.
func TestEverySchemeRoundTripsAndBuilds(t *testing.T) {
	for _, info := range scheme.List() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			if info.Doc == "" {
				t.Error("registered without a doc string")
			}

			// Bare name round-trips.
			sp, err := scheme.Parse(info.Name)
			if err != nil {
				t.Fatalf("name does not parse: %v", err)
			}
			if sp.String() != info.Name {
				t.Fatalf("canonical form of bare name = %q", sp.String())
			}

			// Defaults construct.
			ctrl, err := scheme.Build(sp, scheme.BuildContext{MuBps: testMuBps})
			if err != nil {
				t.Fatalf("Build with defaults: %v", err)
			}
			if ctrl == nil {
				t.Fatal("Build returned nil controller")
			}

			// Every parameter, set explicitly to its default, still parses,
			// round-trips, and builds.
			full := sp
			for _, p := range info.Params {
				full = full.With(p.Name, p.Default)
			}
			reparsed, err := scheme.Parse(full.String())
			if err != nil {
				t.Fatalf("explicit-params form %q does not parse: %v", full, err)
			}
			if !reparsed.Equal(full) {
				t.Fatalf("round trip changed spec: %q vs %q", full, reparsed)
			}
			if _, err := scheme.Build(reparsed, scheme.BuildContext{MuBps: testMuBps}); err != nil {
				t.Fatalf("Build with explicit defaults: %v", err)
			}

			// Unknown parameters are rejected.
			if _, err := scheme.Build(sp.With("no_such_param", scheme.Num(1)), scheme.BuildContext{MuBps: testMuBps}); err == nil {
				t.Error("unknown parameter was accepted")
			}

			// Kind mismatches are rejected.
			for _, p := range info.Params {
				wrong := scheme.Str("x")
				if p.Kind == scheme.KindString {
					wrong = scheme.Num(1)
				}
				if _, err := scheme.Build(sp.With(p.Name, wrong), scheme.BuildContext{MuBps: testMuBps}); err == nil {
					t.Errorf("param %s accepted a %s value", p.Name, wrong.Kind)
				}
			}

			// Enum violations are rejected.
			for _, p := range info.Params {
				if len(p.Enum) > 0 {
					if _, err := scheme.Build(sp.With(p.Name, scheme.Str("bogus-enum")), scheme.BuildContext{MuBps: testMuBps}); err == nil {
						t.Errorf("enum param %s accepted an out-of-set value", p.Name)
					}
				}
			}
		})
	}
}

func TestBuildUnknownScheme(t *testing.T) {
	if _, err := scheme.Build(scheme.MustParse("quic"), scheme.BuildContext{MuBps: testMuBps}); err == nil {
		t.Fatal("unknown scheme built successfully")
	}
}

// controllerConstructors maps every exported New* constructor in
// internal/cc and internal/core that returns a congestion controller to
// the registered scheme(s) that construct it. Helper constructors that do
// not return a transport.Controller are listed as exempt.
//
// TestEveryControllerRegistered walks both packages' sources: if you add
// a controller constructor, this test fails until you either register a
// scheme for it (scheme.Register in the package's register.go) and map it
// here, or consciously exempt it.
var controllerConstructors = map[string]string{
	// internal/cc
	"NewCubic":           "cubic",
	"NewReno":            "reno",
	"NewVegas":           "vegas",
	"NewCopa":            "copa",
	"NewCopaDefaultMode": "copa-default",
	"NewBBR":             "bbr",
	"NewVivace":          "vivace",
	"NewCompound":        "compound",
	"NewFixedWindow":     "fixedwindow",
	// internal/core
	"NewNimbus": "nimbus", // the whole nimbus-* family goes through it
	// Exempt: not congestion controllers.
	"NewRateEstimator":  "",
	"NewDetector":       "",
	"NewMaxReceiveRate": "",
}

func TestEveryControllerRegistered(t *testing.T) {
	for _, dir := range []string{"../cc", "../core"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for file, f := range pkg.Files {
				if strings.HasSuffix(file, "_test.go") {
					continue
				}
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Recv != nil || !fn.Name.IsExported() || !strings.HasPrefix(fn.Name.Name, "New") {
						continue
					}
					schemeName, known := controllerConstructors[fn.Name.Name]
					if !known {
						t.Errorf("%s: constructor %s is not mapped in controllerConstructors: register a scheme for it (see %s/register.go) and add the mapping, or exempt it",
							dir, fn.Name.Name, dir)
						continue
					}
					if schemeName == "" {
						continue // exempt helper
					}
					if _, ok := scheme.Lookup(schemeName); !ok {
						t.Errorf("constructor %s maps to scheme %q which is not registered", fn.Name.Name, schemeName)
					}
				}
			}
		}
	}
}

func TestRegisterRejectsAmbiguousStringValues(t *testing.T) {
	for _, bad := range []scheme.Param{
		{Name: "v", Kind: scheme.KindString, Default: scheme.Str("1")},
		{Name: "v", Kind: scheme.KindString, Default: scheme.Str("true")},
		{Name: "v", Kind: scheme.KindString, Default: scheme.Str("a"), Enum: []string{"a", "2"}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register accepted ambiguous string value %+v", bad)
				}
			}()
			scheme.Register("ambiguous-test", "doc", []scheme.Param{bad}, func(scheme.BuildContext, scheme.Args) (transport.Controller, error) {
				return nil, nil
			})
		}()
	}
}
