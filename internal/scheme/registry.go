package scheme

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Param declares one typed parameter of a registered scheme: its kind,
// default, and doc string. Build validates every explicit Spec parameter
// against these declarations, so a typo'd or mistyped parameter is an
// error, not a silent default.
type Param struct {
	Name    string
	Kind    Kind
	Default Value
	// Enum, for KindString params, restricts the value to this set.
	Enum []string
	Doc  string
}

// MuEstimator mirrors core.MuEstimator structurally so implementation
// packages can self-register without this package importing them.
type MuEstimator interface {
	Observe(now sim.Time, rateBps float64)
	Mu() float64
}

// BuildContext carries the run-time wiring a factory may need beyond its
// declared parameters.
type BuildContext struct {
	// MuBps is the nominal bottleneck rate, for schemes whose µ oracle
	// needs the true link rate.
	MuBps float64
	// Mu, when non-nil, is the environment's true-rate µ source. Rigs
	// with time-varying links pass a link oracle here: a fixed-rate
	// oracle would hand the controller a stale µ the moment the capacity
	// moves. Factories use it for oracle-µ configurations only — a spec
	// that explicitly asks for an estimator keeps the estimator.
	Mu MuEstimator
}

// Args are a factory's resolved parameters: declared defaults overlaid
// with the spec's explicit values, kind-checked. The typed getters panic
// on an undeclared name — that is a factory bug, not user input.
type Args struct{ vals map[string]Value }

func (a Args) get(name string, k Kind) Value {
	v, ok := a.vals[name]
	if !ok || v.Kind != k {
		panic(fmt.Sprintf("scheme: factory read undeclared or mistyped %s param %q", k, name))
	}
	return v
}

// Float returns a declared float parameter.
func (a Args) Float(name string) float64 { return a.get(name, KindFloat).Num }

// Bool returns a declared bool parameter.
func (a Args) Bool(name string) bool { return a.get(name, KindBool).Bool }

// Str returns a declared string parameter.
func (a Args) Str(name string) string { return a.get(name, KindString).Str }

// Factory constructs a scheme's controller from its resolved parameters.
type Factory func(ctx BuildContext, args Args) (transport.Controller, error)

type entry struct {
	name    string
	doc     string
	params  []Param // sorted by name
	byName  map[string]Param
	factory Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]*entry{}
)

// Register adds a scheme to the registry. It panics on a duplicate name
// or a malformed declaration — registration runs from init functions, so
// any failure is a programming error caught by the first test that
// imports the package.
func Register(name, doc string, params []Param, factory Factory) {
	if err := checkToken(name, "scheme name"); err != nil {
		panic("scheme: Register: " + err.Error())
	}
	if factory == nil {
		panic("scheme: Register(" + name + "): nil factory")
	}
	e := &entry{name: name, doc: doc, factory: factory, byName: make(map[string]Param, len(params))}
	for _, p := range params {
		if err := checkToken(p.Name, "parameter name"); err != nil {
			panic("scheme: Register(" + name + "): " + err.Error())
		}
		if _, dup := e.byName[p.Name]; dup {
			panic("scheme: Register(" + name + "): duplicate param " + p.Name)
		}
		if p.Default.Kind != p.Kind {
			panic(fmt.Sprintf("scheme: Register(%s): param %s declared %s but default is %s",
				name, p.Name, p.Kind, p.Default.Kind))
		}
		if len(p.Enum) > 0 {
			if p.Kind != KindString {
				panic(fmt.Sprintf("scheme: Register(%s): param %s has an enum but kind %s", name, p.Name, p.Kind))
			}
			if !contains(p.Enum, p.Default.Str) {
				panic(fmt.Sprintf("scheme: Register(%s): param %s default %q not in enum %v",
					name, p.Name, p.Default.Str, p.Enum))
			}
		}
		// String values must survive the canonical round trip: a payload
		// the parser would reclassify ("1", "true") could never be set
		// from a spec string, and would break Spec.String()/Key()
		// stability for specs built in code.
		if p.Kind == KindString {
			for _, s := range append([]string{p.Default.Str}, p.Enum...) {
				if v, err := parseValue(s); err != nil || v.Kind != KindString {
					panic(fmt.Sprintf("scheme: Register(%s): param %s string value %q would re-parse as a %s — pick a non-numeric, non-boolean token",
						name, p.Name, s, v.Kind))
				}
			}
		}
		e.byName[p.Name] = p
		e.params = append(e.params, p)
	}
	sort.Slice(e.params, func(i, j int) bool { return e.params[i].Name < e.params[j].Name })
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("scheme: Register: duplicate scheme " + name)
	}
	registry[name] = e
}

// Build constructs the controller a spec describes: it resolves the
// spec's name in the registry, validates every explicit parameter
// against the declarations (unknown names, kind mismatches, enum
// violations, and non-finite floats are errors), overlays them on the
// defaults, and calls the factory.
func Build(sp Spec, ctx BuildContext) (transport.Controller, error) {
	regMu.RLock()
	e, ok := registry[sp.Name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("scheme: unknown scheme %q (known: %s)", sp.Name, strings.Join(Names(), ", "))
	}
	vals := make(map[string]Value, len(e.params))
	for _, p := range e.params {
		vals[p.Name] = p.Default
	}
	for k, v := range sp.Params {
		decl, ok := e.byName[k]
		if !ok {
			return nil, fmt.Errorf("scheme: %s has no parameter %q (has: %s)", sp.Name, k, paramNames(e))
		}
		if v.Kind != decl.Kind {
			return nil, fmt.Errorf("scheme: %s parameter %q wants %s, got %s %q", sp.Name, k, decl.Kind, v.Kind, v)
		}
		if decl.Kind == KindFloat && (math.IsNaN(v.Num) || math.IsInf(v.Num, 0)) {
			return nil, fmt.Errorf("scheme: %s parameter %q must be finite", sp.Name, k)
		}
		if len(decl.Enum) > 0 && !contains(decl.Enum, v.Str) {
			return nil, fmt.Errorf("scheme: %s parameter %q must be one of %s, got %q",
				sp.Name, k, strings.Join(decl.Enum, "|"), v.Str)
		}
		vals[k] = v
	}
	ctrl, err := e.factory(ctx, Args{vals: vals})
	if err != nil {
		return nil, fmt.Errorf("scheme: building %s: %w", sp, err)
	}
	if ctrl == nil {
		return nil, fmt.Errorf("scheme: factory for %s returned no controller", sp.Name)
	}
	return ctrl, nil
}

// Validate checks that a spec would build: the name is registered, every
// explicit parameter is declared with the right kind, and the factory
// accepts the resolved values. CLIs use it to fail flag parsing before a
// sweep starts instead of producing one error row per cell. The trial
// construction uses a nominal context and is discarded.
func Validate(sp Spec) error {
	_, err := Build(sp, BuildContext{MuBps: 96e6})
	return err
}

// Info describes a registered scheme for listings and docs.
type Info struct {
	Name   string
	Doc    string
	Params []Param // sorted by name
}

// Lookup returns the registration info for one scheme.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return Info{}, false
	}
	return Info{Name: e.name, Doc: e.doc, Params: append([]Param(nil), e.params...)}, true
}

// HasParam reports whether a registered scheme declares the parameter.
func HasParam(name, param string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return false
	}
	_, ok = e.byName[param]
	return ok
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// List returns the info for every registered scheme, sorted by name.
func List() []Info {
	names := Names()
	out := make([]Info, 0, len(names))
	for _, n := range names {
		info, _ := Lookup(n)
		out = append(out, info)
	}
	return out
}

// FormatList renders the registry as the text every CLI's -list-schemes
// prints: one line per scheme, then one indented line per parameter with
// its type, default, and doc.
func FormatList() string {
	var b strings.Builder
	for _, info := range List() {
		fmt.Fprintf(&b, "%-20s %s\n", info.Name, info.Doc)
		for _, p := range info.Params {
			typ := p.Kind.String()
			if len(p.Enum) > 0 {
				typ = strings.Join(p.Enum, "|")
			}
			fmt.Fprintf(&b, "  %-12s %-22s default=%-8s %s\n", p.Name, typ, p.Default, p.Doc)
		}
	}
	return b.String()
}

func paramNames(e *entry) string {
	if len(e.params) == 0 {
		return "none"
	}
	names := make([]string, len(e.params))
	for i, p := range e.params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
