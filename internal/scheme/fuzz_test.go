package scheme

import "testing"

// FuzzParseSpec asserts the parser's two safety properties on arbitrary
// input: it never panics, and every accepted spec round-trips through its
// canonical form (Parse(s).String() is a fixed point that reparses to the
// same Spec). The seed corpus under testdata/fuzz covers every syntactic
// feature; `go test` replays it on every run, `go test -fuzz=FuzzParseSpec`
// explores beyond it.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"cubic",
		"nimbus",
		"nimbus(pulse=0.25,mu=est)",
		"nimbus(multiflow)",
		"copa(delta=0.1)",
		"nimbus-vegas(multiflow=true,fp=6)",
		"fixedwindow(cwnd=-12.5)",
		"NIMBUS( Pulse = 0.1 )",
		"a(b=1e300,c=true,d=tok_en.x)",
		"bad(",
		"(x=1)",
		"a(b=1,b=2)",
		"a(=)",
		"a(b==c)",
		"x(y=inf)",
		"x(y=nan)",
		"x(y=0x1p3)",
		"\x00\xff",
		"a(b=1))",
		",,,",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := Parse(s) // must not panic
		if err != nil {
			return
		}
		canon := sp.String()
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not reparse: %v", canon, s, err)
		}
		if got := sp2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", s, canon, got)
		}
		if !sp2.Equal(sp) {
			t.Fatalf("round trip changed the spec: %q: %#v vs %#v", s, sp, sp2)
		}
		// SplitList must never panic either, and rejoining its items must
		// preserve every parseable item.
		for _, item := range SplitList(s) {
			_, _ = Parse(item)
		}
	})
}
