package scheme

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"cubic", "cubic"},
		{" cubic ", "cubic"},
		{"CUBIC", "cubic"},
		{"nimbus()", "nimbus"},
		{"nimbus(pulse=0.25)", "nimbus(pulse=0.25)"},
		{"nimbus(pulse=0.250)", "nimbus(pulse=0.25)"},
		{"nimbus( mu = est , pulse=0.1 )", "nimbus(mu=est,pulse=0.1)"},
		{"nimbus(pulse=0.1,mu=est)", "nimbus(mu=est,pulse=0.1)"}, // params sort
		{"nimbus(multiflow)", "nimbus(multiflow=true)"},          // bare key = true
		{"nimbus(multiflow=TRUE)", "nimbus(multiflow=true)"},
		{"copa(delta=0.1)", "copa(delta=0.1)"},
		{"nimbus(fp=1e1)", "nimbus(fp=10)"},
		{"nimbus-vegas(multiflow=true)", "nimbus-vegas(multiflow=true)"},
		{"fixedwindow(cwnd=-1)", "fixedwindow(cwnd=-1)"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := sp.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form must be a fixed point.
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", sp.String(), err)
		}
		if again.String() != sp.String() {
			t.Errorf("canonical form of %q not stable: %q -> %q", c.in, sp.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "  ", "(x=1)", "cubic)", "nimbus(", "nimbus(pulse=0.25",
		"nimbus(pulse=)", "nimbus(=1)", "nimbus(pulse=0.1,pulse=0.2)",
		"nimbus(pulse=0.1))", "nimbus(a b=1)", "-cubic", "cu bic",
		"nimbus(x=@)", "nimbus(,)",
	}
	for _, s := range bad {
		if sp, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %v, want error", s, sp)
		}
	}
}

func TestParseValueKinds(t *testing.T) {
	sp := MustParse("x(a=1.5,b=true,c=est,d=false)")
	want := map[string]Value{
		"a": Num(1.5), "b": Flag(true), "c": Str("est"), "d": Flag(false),
	}
	if !reflect.DeepEqual(sp.Params, want) {
		t.Fatalf("params = %#v, want %#v", sp.Params, want)
	}
}

func TestSpecWith(t *testing.T) {
	base := MustParse("nimbus")
	got := base.With("mu", Str("est"))
	if got.String() != "nimbus(mu=est)" {
		t.Fatalf("With: %s", got)
	}
	if base.String() != "nimbus" {
		t.Fatalf("With mutated the receiver: %s", base)
	}
}

func TestSpecJSON(t *testing.T) {
	type wrap struct {
		S Spec `json:"s"`
	}
	in := wrap{S: MustParse("nimbus(mu=est,pulse=0.1)")}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"s":"nimbus(mu=est,pulse=0.1)"}` {
		t.Fatalf("marshal: %s", data)
	}
	var out wrap
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.S.Equal(in.S) {
		t.Fatalf("round trip: %s != %s", out.S, in.S)
	}
	// The zero Spec survives a round trip (scenarios with no scheme).
	data, err = json.Marshal(wrap{})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.S.Zero() {
		t.Fatalf("zero spec round trip: %#v", out.S)
	}
}

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"cubic", []string{"cubic"}},
		{"nimbus,cubic,bbr", []string{"nimbus", "cubic", "bbr"}},
		{"nimbus(pulse=0.1,mu=est),cubic", []string{"nimbus(pulse=0.1,mu=est)", "cubic"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b,", []string{"a", "b"}},
		{"", nil},
		{"a(b,c),d(e),f", []string{"a(b,c)", "d(e)", "f"}},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseList(t *testing.T) {
	sps, err := ParseList("nimbus(mu=est),cubic")
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 2 || sps[0].String() != "nimbus(mu=est)" || sps[1].String() != "cubic" {
		t.Fatalf("ParseList: %v", sps)
	}
	if _, err := ParseList("cubic,!bad"); err == nil {
		t.Fatal("want error for bad item")
	}
}
