// Package scheme is the typed congestion-control scheme API: a
// serializable Spec (a scheme name plus typed parameters) with a
// canonical string form — "nimbus(pulse=0.25,mu=est)", "cubic",
// "copa(delta=0.1)" — and a registry that the implementation packages
// (internal/cc, internal/core) populate at init time. Everything that
// names a scheme — experiment scenarios, CLI flags, sweep grids, the
// public facade — goes through Spec; everything that constructs one goes
// through Build. The package deliberately knows nothing about the
// experiment harness: factories receive only a BuildContext (the nominal
// link rate and an optional µ-estimator override) and their resolved
// parameters.
package scheme

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind is the type of a parameter value.
type Kind int

const (
	// KindFloat is a finite float64 parameter.
	KindFloat Kind = iota
	// KindBool is a true/false flag.
	KindBool
	// KindString is a token parameter, optionally restricted to an enum.
	KindString
)

// String names the kind for docs and error messages.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is one typed parameter value.
type Value struct {
	Kind Kind
	Num  float64 // KindFloat
	Bool bool    // KindBool
	Str  string  // KindString
}

// Num returns a float value.
func Num(v float64) Value { return Value{Kind: KindFloat, Num: v} }

// Flag returns a bool value.
func Flag(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// String renders the value in its canonical spec-string form.
func (v Value) String() string {
	switch v.Kind {
	case KindFloat:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		return v.Str
	}
}

// Spec is a parsed scheme reference: a registered scheme name plus the
// parameters the caller set explicitly. Parameters left unset take the
// registered defaults at Build time, and are omitted from the canonical
// string — so the canonical form of a default-configured scheme is just
// its name, which keeps scenario keys (and therefore derived seeds)
// stable when a scheme grows a new parameter.
type Spec struct {
	Name   string
	Params map[string]Value
}

// New returns a Spec for name with no explicit parameters.
func New(name string) Spec { return Spec{Name: name} }

// With returns a copy of the spec with one parameter set.
func (s Spec) With(key string, v Value) Spec {
	p := make(map[string]Value, len(s.Params)+1)
	for k, pv := range s.Params {
		p[k] = pv
	}
	p[key] = v
	return Spec{Name: s.Name, Params: p}
}

// String renders the canonical form: the lowercase name, then any
// explicit parameters sorted by key, each value canonically formatted.
// Parse(s.String()) reproduces s for any Spec that Parse can produce.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Params[k].String())
	}
	b.WriteByte(')')
	return b.String()
}

// Zero reports whether the spec is the zero value (no scheme named).
func (s Spec) Zero() bool { return s.Name == "" && len(s.Params) == 0 }

// Equal reports whether two specs are the same scheme with the same
// explicit parameters.
func (s Spec) Equal(o Spec) bool { return s.String() == o.String() }

// MarshalJSON encodes the spec as its canonical string, so JSON results
// and grids read (and diff) the same as CLI flags.
func (s Spec) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(s.String())), nil
}

// UnmarshalJSON parses a canonical spec string. An empty string decodes
// to the zero Spec (scenarios with no scheme under test).
func (s *Spec) UnmarshalJSON(data []byte) error {
	str, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("scheme: spec must be a JSON string: %w", err)
	}
	if str == "" {
		*s = Spec{}
		return nil
	}
	sp, err := Parse(str)
	if err != nil {
		return err
	}
	*s = sp
	return nil
}

// MustParse parses a spec string, panicking on error. For literals.
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// Specs parses a list of spec strings (panicking on error), for literal
// scheme lists in experiment definitions.
func Specs(ss ...string) []Spec {
	out := make([]Spec, len(ss))
	for i, s := range ss {
		out[i] = MustParse(s)
	}
	return out
}

// Parse parses a spec string: NAME or NAME(key=value,...). Names and
// keys are lowercased; values are numbers, true/false, or bare tokens.
// A bare key with no "=value" is shorthand for key=true. Whitespace
// around any token is ignored. Parse validates syntax only — whether the
// name is registered and the parameters are declared is Build's job, so
// specs for schemes compiled out of a binary still parse and print.
func Parse(input string) (Spec, error) {
	s := strings.TrimSpace(input)
	if s == "" {
		return Spec{}, fmt.Errorf("scheme: empty spec")
	}
	name := s
	params := ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Spec{}, fmt.Errorf("scheme: %q: missing closing parenthesis", input)
		}
		name, params = s[:i], s[i+1:len(s)-1]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if err := checkToken(name, "scheme name"); err != nil {
		return Spec{}, fmt.Errorf("scheme: %q: %w", input, err)
	}
	sp := Spec{Name: name}
	params = strings.TrimSpace(params)
	if params == "" {
		return sp, nil
	}
	sp.Params = make(map[string]Value)
	for _, part := range strings.Split(params, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		if err := checkToken(key, "parameter name"); err != nil {
			return Spec{}, fmt.Errorf("scheme: %q: %w", input, err)
		}
		if _, dup := sp.Params[key]; dup {
			return Spec{}, fmt.Errorf("scheme: %q: duplicate parameter %q", input, key)
		}
		if !hasVal {
			sp.Params[key] = Flag(true)
			continue
		}
		v, err := parseValue(strings.TrimSpace(val))
		if err != nil {
			return Spec{}, fmt.Errorf("scheme: %q: parameter %q: %w", input, key, err)
		}
		sp.Params[key] = v
	}
	return sp, nil
}

// parseValue infers the value's kind: number, bool literal, or token.
// Non-finite "numbers" (inf, nan) fall through to tokens so that float
// parameters are always finite.
func parseValue(s string) (Value, error) {
	if s == "" {
		return Value{}, fmt.Errorf("empty value")
	}
	ls := strings.ToLower(s)
	switch ls {
	case "true":
		return Flag(true), nil
	case "false":
		return Flag(false), nil
	}
	if f, err := strconv.ParseFloat(ls, 64); err == nil && !math.IsInf(f, 0) && !math.IsNaN(f) {
		return Num(f), nil
	}
	if err := checkToken(ls, "value"); err != nil {
		return Value{}, err
	}
	return Str(ls), nil
}

// checkToken enforces the token charset for names, keys, and string
// values: lowercase letters, digits, and [-_.], starting with a letter
// or digit.
func checkToken(s, what string) error {
	if s == "" {
		return fmt.Errorf("empty %s", what)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_' || c == '.') && i > 0:
		default:
			return fmt.Errorf("bad %s %q: character %q not allowed", what, s, c)
		}
	}
	return nil
}

// SplitList splits a comma-separated list of spec strings, ignoring
// commas inside parentheses, so CLI flags can sweep parameterized specs:
// "nimbus(pulse=0.1,mu=est),cubic" → ["nimbus(pulse=0.1,mu=est)",
// "cubic"]. Empty items are dropped.
func SplitList(s string) []string { return SplitTop(s, ',') }

// SplitTop splits s on sep at parenthesis depth zero, trimming items and
// dropping empty ones. Flow-mix syntax splits on '+' the same way spec
// lists split on ','.
func SplitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if item := strings.TrimSpace(s[start:end]); item != "" {
			out = append(out, item)
		}
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}

// ParseList parses a comma-separated list of spec strings (commas inside
// parentheses do not split).
func ParseList(s string) ([]Spec, error) {
	items := SplitList(s)
	out := make([]Spec, 0, len(items))
	for _, it := range items {
		sp, err := Parse(it)
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	return out, nil
}
