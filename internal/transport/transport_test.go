package transport

import (
	"testing"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// fixedCC is a minimal window controller for transport-mechanics tests.
type fixedCC struct {
	cwnd int
	pace float64

	acks     int
	losses   int
	timeouts int
	rtts     []sim.Time
}

func (f *fixedCC) Init(env *Env) {}
func (f *fixedCC) OnAck(a AckInfo) {
	f.acks++
	f.rtts = append(f.rtts, a.RTT)
}
func (f *fixedCC) OnLoss(l LossInfo) {
	f.losses++
	if l.Timeout {
		f.timeouts++
	}
}
func (f *fixedCC) Control() Transmission {
	return Transmission{CwndBytes: f.cwnd, PaceBps: f.pace}
}

type env struct {
	sch  *sim.Scheduler
	link *netem.Link
	net  *netem.Network
}

func newEnv(rateMbps float64, bufMs sim.Time) *env {
	sch := sim.NewScheduler()
	rate := rateMbps * 1e6
	link := netem.NewLink(sch, rate, netem.NewDropTail(netem.BufferBytesForDelay(rate, bufMs)))
	return &env{sch: sch, link: link, net: netem.NewNetwork(sch, link)}
}

func TestWindowLimitedThroughput(t *testing.T) {
	// With cwnd = BDP, a window flow should achieve exactly the link rate
	// after the first RTT.
	e := newEnv(48, 100*sim.Millisecond)
	rtt := 50 * sim.Millisecond
	bdp := int(48e6 / 8 * rtt.Seconds()) // 300 kB
	cc := &fixedCC{cwnd: bdp}
	s := NewSender(e.net, rtt, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(10 * sim.Second)
	gotMbps := float64(s.DeliveredBytes) * 8 / 10 / 1e6
	if gotMbps < 44 || gotMbps > 48.5 {
		t.Fatalf("throughput = %.1f Mbit/s, want ~48", gotMbps)
	}
	if s.LostPackets != 0 {
		t.Fatalf("unexpected losses: %d", s.LostPackets)
	}
}

func TestRTTMeasurement(t *testing.T) {
	e := newEnv(96, 100*sim.Millisecond)
	rtt := 80 * sim.Millisecond
	cc := &fixedCC{cwnd: 2 * 1500}
	s := NewSender(e.net, rtt, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(2 * sim.Second)
	if len(cc.rtts) == 0 {
		t.Fatal("no RTT samples")
	}
	tx := e.link.TxTime(1500)
	min := cc.rtts[0]
	for _, r := range cc.rtts {
		if r < min {
			min = r
		}
	}
	if min < rtt+tx || min > rtt+2*tx+sim.Millisecond {
		t.Fatalf("min RTT = %v, want ~%v", min, rtt+tx)
	}
	if s.SRTT() < rtt {
		t.Fatalf("srtt = %v below base", s.SRTT())
	}
}

func TestPacingRate(t *testing.T) {
	// Pure pacing at 10 Mbit/s on an idle 100 Mbit/s link: delivery must
	// match the pacing rate, not the link rate.
	e := newEnv(100, 100*sim.Millisecond)
	cc := &fixedCC{cwnd: 1 << 24, pace: 10e6}
	s := NewSender(e.net, 40*sim.Millisecond, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(10 * sim.Second)
	gotMbps := float64(s.DeliveredBytes) * 8 / 10 / 1e6
	if gotMbps < 9.5 || gotMbps > 10.5 {
		t.Fatalf("paced throughput = %.2f, want ~10", gotMbps)
	}
}

func TestDupAckLossDetection(t *testing.T) {
	// Overdrive a small buffer: drops must be detected and reported.
	e := newEnv(10, 20*sim.Millisecond)
	cc := &fixedCC{cwnd: 1 << 22} // far beyond BDP+buffer
	s := NewSender(e.net, 40*sim.Millisecond, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(5 * sim.Second)
	if cc.losses == 0 {
		t.Fatal("no losses detected despite overdriven buffer")
	}
	if s.LostPackets == 0 {
		t.Fatal("sender loss counter zero")
	}
}

func TestInflightConservation(t *testing.T) {
	e := newEnv(10, 20*sim.Millisecond)
	cc := &fixedCC{cwnd: 64 * 1500}
	s := NewSender(e.net, 40*sim.Millisecond, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	for tEnd := sim.Second; tEnd <= 5*sim.Second; tEnd += sim.Second {
		e.sch.RunUntil(tEnd)
		if s.Inflight() < 0 {
			t.Fatalf("negative inflight: %d", s.Inflight())
		}
		if s.Inflight() > cc.cwnd+1500 {
			t.Fatalf("inflight %d exceeds window %d", s.Inflight(), cc.cwnd)
		}
	}
}

func TestFiniteFlowCompletes(t *testing.T) {
	e := newEnv(48, 100*sim.Millisecond)
	var fct sim.Time
	src := NewFiniteFlow(150000, func(now sim.Time) { fct = now })
	cc := &fixedCC{cwnd: 20 * 1500}
	s := NewSender(e.net, 50*sim.Millisecond, cc, src, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(10 * sim.Second)
	if !src.Done() {
		t.Fatal("flow did not complete")
	}
	// 150 kB = 100 pkts, window 20: ~5 RTTs plus change.
	if fct < 100*sim.Millisecond || fct > 2*sim.Second {
		t.Fatalf("fct = %v", fct)
	}
	if src.DeliveredBytes() < 150000 {
		t.Fatalf("delivered %d < size", src.DeliveredBytes())
	}
}

func TestFiniteFlowCompletesDespiteLosses(t *testing.T) {
	// Tiny buffer forces drops; the refund mechanism must still deliver
	// all bytes.
	e := newEnv(5, 10*sim.Millisecond)
	var done bool
	src := NewFiniteFlow(400000, func(now sim.Time) { done = true })
	cc := &fixedCC{cwnd: 80 * 1500}
	s := NewSender(e.net, 30*sim.Millisecond, cc, src, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(30 * sim.Second)
	if s.LostPackets == 0 {
		t.Fatal("test needs losses to be meaningful")
	}
	if !done {
		t.Fatalf("flow did not complete despite refunds (delivered %d)", src.DeliveredBytes())
	}
}

func TestRTOFiresWhenEverythingDrops(t *testing.T) {
	// Buffer of one packet and a burst: most of the window drops; without
	// enough dup-ACKs the RTO must recover the flow.
	sch := sim.NewScheduler()
	rate := 1e6
	link := netem.NewLink(sch, rate, netem.NewDropTail(3000))
	net := netem.NewNetwork(sch, link)
	cc := &fixedCC{cwnd: 40 * 1500}
	s := NewSender(net, 20*sim.Millisecond, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	sch.RunUntil(10 * sim.Second)
	if s.Timeouts == 0 && cc.losses == 0 {
		t.Fatal("no loss signal of any kind")
	}
	if s.DeliveredBytes == 0 {
		t.Fatal("flow made no progress")
	}
}

func TestStopHaltsTransmission(t *testing.T) {
	e := newEnv(48, 100*sim.Millisecond)
	cc := &fixedCC{cwnd: 100 * 1500}
	s := NewSender(e.net, 50*sim.Millisecond, cc, Backlogged{}, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(sim.Second)
	sent := s.SentBytes
	s.Stop()
	e.sch.RunUntil(3 * sim.Second)
	if s.SentBytes != sent {
		t.Fatal("sender kept transmitting after Stop")
	}
}

func TestChunkSourceWake(t *testing.T) {
	e := newEnv(48, 100*sim.Millisecond)
	cc := &fixedCC{cwnd: 100 * 1500}
	src := &ChunkSource{}
	chunks := 0
	src.OnChunkDone = func(now sim.Time) { chunks++ }
	s := NewSender(e.net, 50*sim.Millisecond, cc, src, sim.NewRand(1))
	s.Start(0)
	e.sch.RunUntil(100 * sim.Millisecond) // idle: no data yet
	if s.SentBytes != 0 {
		t.Fatal("sent without app data")
	}
	src.AddChunk(30000)
	e.sch.RunUntil(2 * sim.Second)
	if chunks != 1 {
		t.Fatalf("chunk completions = %d, want 1", chunks)
	}
	// Second chunk after idle period must also transmit (Wake path).
	src.AddChunk(30000)
	e.sch.RunUntil(4 * sim.Second)
	if chunks != 2 {
		t.Fatalf("chunk completions = %d, want 2", chunks)
	}
}

func TestAckInfoFields(t *testing.T) {
	e := newEnv(96, 100*sim.Millisecond)
	var got []AckInfo
	cc := &fixedCC{cwnd: 4 * 1500}
	s := NewSender(e.net, 60*sim.Millisecond, cc, Backlogged{}, sim.NewRand(1))
	s.OnAckHook = func(a AckInfo) { got = append(got, a) }
	s.Start(0)
	e.sch.RunUntil(sim.Second)
	if len(got) < 10 {
		t.Fatalf("too few acks: %d", len(got))
	}
	var lastDel uint64
	for _, a := range got {
		if a.RTT != a.AckedAt-a.SentAt {
			t.Fatal("RTT inconsistent with timestamps")
		}
		if a.Delivered < lastDel {
			t.Fatal("Delivered went backwards")
		}
		lastDel = a.Delivered
		if a.Bytes <= 0 || a.QueueDelay < 0 {
			t.Fatalf("bad ack: %+v", a)
		}
	}
}
