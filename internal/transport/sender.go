package transport

import (
	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// Timing constants for the retransmission timer, mirroring common TCP
// practice (RFC 6298, with a floor suited to simulated WAN RTTs).
const (
	minRTO    = 200 * sim.Millisecond
	maxRTO    = 4 * sim.Second
	dupThresh = 3 // dup-ACK threshold for loss declaration
)

type pktRec struct {
	seq    uint64
	size   int
	sentAt sim.Time
	acked  bool
	lost   bool
	dup    int
}

// ackRec carries one delivered packet's ACK state across the reverse
// propagation delay. Records are pooled per sender so the per-ACK cost is
// allocation-free; the pooled record rides on the scheduler event as its
// argument instead of being captured in a fresh closure.
type ackRec struct {
	seq       uint64
	size      int
	sentAt    sim.Time
	qd        sim.Time
	delivered uint64
}

// Sender is a transport endpoint: it emits MSS-sized packets subject to
// the controller's window and pacing rate, tracks ACKs, declares losses
// via dup-ACK counting and an RTO, and reports everything to the
// controller. The receiver side is folded in: delivered packets generate
// ACK events on the uncongested reverse path.
type Sender struct {
	env  Env
	att  *netem.Attachment
	cc   Controller
	app  Source
	mss  int
	name string

	nextSeq  uint64
	inflight int
	unacked  []*pktRec
	head     int

	srtt, rttvar sim.Time
	rto          sim.Time
	rtoTimer     *sim.Timer
	rtoBackoff   int

	paceTimer  *sim.Timer
	nextSendAt sim.Time

	stopped bool

	// Reusable callbacks and free lists for the per-packet hot path.
	// Packets come from the topology's shared pool and are recycled at
	// delivery (the receiver is the last holder: netem never retains a
	// packet past Deliver, and the ACK state rides on a pooled ackRec), so
	// emit is allocation-free in steady state; dropped packets are simply
	// left to the garbage collector. The shared pool also lets the
	// topology recycle in-flight packets of flows detached mid-stream.
	trySendFn func()
	onRTOFn   func()
	onAckFn   func(arg any)
	ackFree   []*ackRec
	recFree   []*pktRec

	// Counters and hooks.
	SentBytes      uint64
	DeliveredBytes uint64
	LostPackets    uint64
	Timeouts       uint64
	// OnAckHook, if set, observes every AckInfo (metrics).
	OnAckHook func(a AckInfo)
	// OnDeliverHook, if set, observes every delivered packet at the
	// receiver (metrics: per-packet queueing delay, throughput).
	OnDeliverHook func(p *netem.Packet, now sim.Time)
}

// NewSender attaches a flow with the given controller and source to the
// network's default route with base RTT rtt. The flow does not transmit
// until Start.
func NewSender(net *netem.Network, rtt sim.Time, cc Controller, app Source, rng *sim.Rand) *Sender {
	return NewSenderOn(net, "", rtt, cc, app, rng)
}

// NewSenderOn is NewSender on a named route of the topology ("" is the
// default route). Unknown routes panic, mirroring netem.AttachOn.
func NewSenderOn(net *netem.Network, route string, rtt sim.Time, cc Controller, app Source, rng *sim.Rand) *Sender {
	att := net.AttachOn(route, rtt)
	s := &Sender{
		att: att,
		cc:  cc,
		app: app,
		mss: netem.DefaultMSS,
		rto: 1 * sim.Second,
	}
	s.env = Env{Sch: net.Sch, Rand: rng, MSS: s.mss, ID: att.ID, Sender: s}
	s.trySendFn = s.trySend
	s.onRTOFn = s.onRTO
	s.onAckFn = s.onAckEvent
	att.Receive = s.onDeliver
	if ch, ok := app.(*ChunkSource); ok {
		ch.Wake = s.Wake
	}
	return s
}

// ID returns the flow's identifier at the bottleneck.
func (s *Sender) ID() netem.FlowID { return s.att.ID }

// MSS returns the segment size.
func (s *Sender) MSS() int { return s.mss }

// SRTT returns the smoothed RTT estimate (0 before any sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// BaseRTT returns the flow's two-way propagation delay.
func (s *Sender) BaseRTT() sim.Time { return s.att.BaseRTT() }

// Inflight returns bytes currently in flight.
func (s *Sender) Inflight() int { return s.inflight }

// Attachment exposes the flow's network attachment (for experiments).
func (s *Sender) Attachment() *netem.Attachment { return s.att }

// Start initializes the controller and begins transmission at time start.
func (s *Sender) Start(start sim.Time) {
	s.cc.Init(&s.env)
	s.env.Sch.At(start, s.trySendFn)
}

// Stop halts transmission and cancels timers. In-flight packets drain but
// their ACKs are ignored.
func (s *Sender) Stop() {
	s.stopped = true
	s.rtoTimer.Cancel()
	s.paceTimer.Cancel()
	s.att.Receive = nil
}

// Wake restarts transmission after the application adds data.
func (s *Sender) Wake() {
	if !s.stopped {
		s.trySend()
	}
}

// trySend transmits as many packets as the window, pacing rate, and
// application allow, then arms the pacing timer if pacing-limited.
func (s *Sender) trySend() {
	if s.stopped {
		return
	}
	for {
		tr := s.cc.Control()
		// Window check; always allow at least one packet in flight so a
		// sub-MSS window cannot deadlock the flow.
		if tr.CwndBytes > 0 && s.inflight > 0 && s.inflight+s.mss > tr.CwndBytes {
			return // window-limited; ACKs will re-trigger
		}
		avail := s.app.Available(s.env.Sch.Now())
		if avail <= 0 {
			return // app-limited; Wake will re-trigger
		}
		if tr.PaceBps > 0 {
			now := s.env.Sch.Now()
			if s.nextSendAt > now {
				s.armPace(s.nextSendAt)
				return
			}
			size := s.mss
			if avail < size {
				size = avail
			}
			s.emit(size)
			gap := sim.FromSeconds(float64(size*8) / tr.PaceBps)
			if s.nextSendAt < now {
				s.nextSendAt = now
			}
			s.nextSendAt += gap
		} else {
			size := s.mss
			if avail < size {
				size = avail
			}
			s.emit(size)
		}
	}
}

func (s *Sender) emit(size int) {
	now := s.env.Sch.Now()
	p := s.att.GetPacket()
	*p = netem.Packet{Seq: s.nextSeq, Size: size}
	s.nextSeq++
	var r *pktRec
	if n := len(s.recFree); n > 0 {
		r = s.recFree[n-1]
		s.recFree = s.recFree[:n-1]
		*r = pktRec{seq: p.Seq, size: size, sentAt: now}
	} else {
		r = &pktRec{seq: p.Seq, size: size, sentAt: now}
	}
	s.unacked = append(s.unacked, r)
	s.inflight += size
	s.SentBytes += uint64(size)
	s.app.Consume(size)
	s.att.Send(p)
	if s.rtoTimer == nil || s.rtoTimer.Fired() {
		s.armRTO()
	}
}

func (s *Sender) armPace(at sim.Time) {
	if s.paceTimer != nil && !s.paceTimer.Fired() && s.paceTimer.When() <= at {
		return
	}
	// Rearm recycles the handle's Timer struct, so per-packet pacing costs
	// no allocation once the flow is warm.
	s.paceTimer = s.env.Sch.Rearm(s.paceTimer, at, s.trySendFn)
}

// KickPacing clears any pending pacing gap so a rate increase takes
// effect immediately (used by rate-based controllers after large jumps).
func (s *Sender) KickPacing() {
	now := s.env.Sch.Now()
	if s.nextSendAt > now {
		s.nextSendAt = now
		s.trySend()
	}
}

func (s *Sender) armRTO() {
	d := s.rto << uint(s.rtoBackoff)
	if d > maxRTO {
		d = maxRTO
	}
	// Re-armed on every ACK; Rearm cancels the pending timeout and reuses
	// its Timer struct in place of a fresh allocation.
	s.rtoTimer = s.env.Sch.Rearm(s.rtoTimer, s.env.Sch.Now()+d, s.onRTOFn)
}

func (s *Sender) onRTO() {
	if s.stopped || s.inflight == 0 {
		return
	}
	s.Timeouts++
	s.rtoBackoff++
	now := s.env.Sch.Now()
	// Declare everything outstanding lost, refund, notify once.
	lostBytes := 0
	for i := s.head; i < len(s.unacked); i++ {
		r := s.unacked[i]
		if !r.acked && !r.lost {
			r.lost = true
			lostBytes += r.size
			s.LostPackets++
		}
	}
	s.compact()
	s.inflight = 0
	s.app.Refund(lostBytes)
	s.cc.OnLoss(LossInfo{Now: now, Bytes: lostBytes, Timeout: true, Inflight: 0})
	s.armRTO()
	s.trySend()
}

// onDeliver runs at the receiver when a data packet exits the bottleneck.
func (s *Sender) onDeliver(p *netem.Packet, now sim.Time) {
	if s.stopped {
		return
	}
	s.DeliveredBytes += uint64(p.Size)
	s.app.Delivered(p.Size, now)
	if s.OnDeliverHook != nil {
		s.OnDeliverHook(p, now)
	}
	var rec *ackRec
	if n := len(s.ackFree); n > 0 {
		rec = s.ackFree[n-1]
		s.ackFree = s.ackFree[:n-1]
	} else {
		rec = &ackRec{}
	}
	*rec = ackRec{seq: p.Seq, size: p.Size, sentAt: p.SentAt, qd: p.QueueDelay, delivered: s.DeliveredBytes}
	s.att.SendAckArg(s.onAckFn, rec)
	// The packet is dead past this point: the link handed it over, the ACK
	// state was copied onto rec, and the hooks above do not retain it.
	s.att.PutPacket(p)
}

// onAckEvent runs at the sender when an ACK arrives on the reverse path.
func (s *Sender) onAckEvent(arg any) {
	rec := arg.(*ackRec)
	r := *rec
	s.ackFree = append(s.ackFree, rec)
	s.handleAck(r.seq, r.size, r.sentAt, r.qd, r.delivered, s.env.Sch.Now())
}

func (s *Sender) handleAck(seq uint64, size int, sentAt, qd sim.Time, delivered uint64, now sim.Time) {
	if s.stopped {
		return
	}
	rtt := now - sentAt
	s.updateRTT(rtt)
	s.rtoBackoff = 0

	// Loss notifications are snapshotted by value: compact() below may
	// recycle the underlying pktRecs into recFree, and Refund can
	// re-enter emit (via Wake), which would overwrite them mid-loop.
	type lossEntry struct {
		seq  uint64
		size int
	}
	var losses []lossEntry
	found := false
	for i := s.head; i < len(s.unacked); i++ {
		r := s.unacked[i]
		if r.seq > seq {
			break
		}
		if r.seq == seq {
			if !r.acked && !r.lost {
				r.acked = true
				s.inflight -= r.size
			}
			// A lost-then-acked packet was a spurious declaration; the
			// refunded bytes are simply sent again, which is harmless
			// for throughput accounting.
			found = true
			break
		}
		if !r.acked && !r.lost {
			r.dup++
			if r.dup >= dupThresh {
				r.lost = true
				s.inflight -= r.size
				s.LostPackets++
				losses = append(losses, lossEntry{r.seq, r.size})
			}
		}
	}
	_ = found
	s.compact()

	for _, l := range losses {
		s.app.Refund(l.size)
		s.cc.OnLoss(LossInfo{Seq: l.seq, Bytes: l.size, Now: now, Inflight: s.inflight})
	}
	ai := AckInfo{
		Seq:        seq,
		Bytes:      size,
		SentAt:     sentAt,
		AckedAt:    now,
		RTT:        rtt,
		QueueDelay: qd,
		Inflight:   s.inflight,
		Delivered:  delivered,
	}
	s.cc.OnAck(ai)
	if s.OnAckHook != nil {
		s.OnAckHook(ai)
	}
	if s.inflight > 0 {
		s.armRTO()
	} else {
		s.rtoTimer.Cancel()
	}
	s.trySend()
}

func (s *Sender) updateRTT(rtt sim.Time) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar += (d - s.rttvar) / 4
		s.srtt += (rtt - s.srtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < minRTO {
		s.rto = minRTO
	}
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
}

func (s *Sender) compact() {
	for s.head < len(s.unacked) {
		r := s.unacked[s.head]
		if !r.acked && !r.lost {
			break
		}
		s.recFree = append(s.recFree, r)
		s.unacked[s.head] = nil
		s.head++
	}
	if s.head > 4096 && s.head*2 >= len(s.unacked) {
		n := copy(s.unacked, s.unacked[s.head:])
		s.unacked = s.unacked[:n]
		s.head = 0
	}
}
