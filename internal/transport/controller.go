// Package transport implements the endpoint machinery the congestion
// control algorithms plug into: an in-order sender with per-packet ACKs,
// duplicate-ACK (SACK-like) loss detection, a retransmission timeout,
// window- and pacing-based transmission, and application sources
// (backlogged, finite flow, chunked). This is the substitute for the Linux
// TCP stack + CCP datapath used by the paper: it reproduces the property
// the elasticity detector relies on — ACK clocking, where changes in the
// receive rate are reflected in the send rate one RTT later.
package transport

import (
	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// AckInfo is delivered to the controller for every acknowledged packet.
type AckInfo struct {
	Seq        uint64
	Bytes      int
	SentAt     sim.Time // when the packet left the sender
	AckedAt    sim.Time // when the ACK reached the sender (now)
	RTT        sim.Time // AckedAt - SentAt
	QueueDelay sim.Time // bottleneck queueing delay experienced by the packet
	Inflight   int      // bytes in flight after this ACK
	Delivered  uint64   // cumulative bytes delivered to the receiver
}

// LossInfo is delivered to the controller for every packet declared lost.
type LossInfo struct {
	Seq      uint64
	Bytes    int
	Now      sim.Time
	Timeout  bool // true when declared by RTO rather than dup-ACKs
	Inflight int
}

// Transmission tells the sender how it may transmit.
type Transmission struct {
	// CwndBytes caps bytes in flight. <= 0 means no window cap.
	CwndBytes int
	// PaceBps, when > 0, paces transmissions at this rate (bits/s).
	// When <= 0, transmission is purely ACK-clocked by the window.
	PaceBps float64
}

// Env gives a controller access to its environment.
type Env struct {
	Sch  *sim.Scheduler
	Rand *sim.Rand
	MSS  int
	ID   netem.FlowID
	// Sender is the transport endpoint the controller is attached to.
	Sender *Sender
}

// Controller is a congestion control algorithm.
type Controller interface {
	// Init is called once before any traffic is sent.
	Init(env *Env)
	// OnAck is called for every acknowledged packet.
	OnAck(a AckInfo)
	// OnLoss is called for every packet declared lost.
	OnLoss(l LossInfo)
	// Control returns the current transmission constraints. It is
	// consulted before every packet transmission.
	Control() Transmission
}
