package transport

import "nimbus/internal/sim"

// Source is the application feeding a sender. Sizes are in bytes.
type Source interface {
	// Available returns how many bytes the application has ready.
	Available(now sim.Time) int
	// Consume tells the source n bytes were handed to the transport.
	Consume(n int)
	// Refund returns n bytes to the source after a loss (the transport
	// does not replay byte streams; lost bytes are simply re-credited,
	// which models retransmission for throughput/FCT purposes).
	Refund(n int)
	// Delivered tells the source n bytes arrived at the receiver.
	Delivered(n int, now sim.Time)
}

// Backlogged is an infinite source: the flow always has data.
type Backlogged struct{}

// Available always reports plenty of data.
func (Backlogged) Available(sim.Time) int  { return 1 << 30 }
func (Backlogged) Consume(int)             {}
func (Backlogged) Refund(int)              {}
func (Backlogged) Delivered(int, sim.Time) {}

// FiniteFlow is a fixed-size transfer (e.g. one flow from the WAN trace
// workload). OnComplete fires when all bytes have been delivered.
type FiniteFlow struct {
	Size       int
	OnComplete func(now sim.Time)

	toSend    int
	delivered int
	done      bool
}

// NewFiniteFlow returns a finite source of the given size in bytes.
func NewFiniteFlow(size int, onComplete func(now sim.Time)) *FiniteFlow {
	return &FiniteFlow{Size: size, OnComplete: onComplete, toSend: size}
}

// Available returns the bytes not yet handed to the transport.
func (f *FiniteFlow) Available(sim.Time) int { return f.toSend }

// Consume removes bytes from the send budget.
func (f *FiniteFlow) Consume(n int) {
	f.toSend -= n
	if f.toSend < 0 {
		f.toSend = 0
	}
}

// Refund re-credits lost bytes so they are sent again.
func (f *FiniteFlow) Refund(n int) { f.toSend += n }

// Delivered tracks receiver progress and fires OnComplete once.
func (f *FiniteFlow) Delivered(n int, now sim.Time) {
	f.delivered += n
	if !f.done && f.delivered >= f.Size {
		f.done = true
		if f.OnComplete != nil {
			f.OnComplete(now)
		}
	}
}

// Done reports whether the transfer completed.
func (f *FiniteFlow) Done() bool { return f.done }

// DeliveredBytes returns bytes received so far.
func (f *FiniteFlow) DeliveredBytes() int { return f.delivered }

// ChunkSource models a chunked application (DASH video): the application
// enqueues chunks over time; between chunks the flow is idle
// (application-limited). OnChunkDone fires when a chunk is fully
// delivered.
type ChunkSource struct {
	OnChunkDone func(now sim.Time)
	// Wake is set by the sender; the source calls it when new data
	// arrives so transmission resumes.
	Wake func()

	toSend     int
	pendingDel int // bytes of the current chunk not yet delivered
}

// AddChunk enqueues a chunk of n bytes.
func (c *ChunkSource) AddChunk(n int) {
	c.toSend += n
	c.pendingDel += n
	if c.Wake != nil {
		c.Wake()
	}
}

// Available returns undelivered-to-transport bytes.
func (c *ChunkSource) Available(sim.Time) int { return c.toSend }

// Consume removes bytes from the send budget.
func (c *ChunkSource) Consume(n int) { c.toSend -= n }

// Refund re-credits lost bytes.
func (c *ChunkSource) Refund(n int) {
	c.toSend += n
	if c.Wake != nil {
		c.Wake()
	}
}

// Delivered tracks chunk completion.
func (c *ChunkSource) Delivered(n int, now sim.Time) {
	c.pendingDel -= n
	if c.pendingDel <= 0 && c.OnChunkDone != nil {
		done := c.OnChunkDone
		c.pendingDel = 0
		done(now)
	}
}
