package crosstraffic

import (
	"math"
	"testing"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// newFluidNet is newNet with the bottleneck's fluid term enabled, as
// exp.NewRig does for fluid scenarios.
func newFluidNet(rateMbps float64) (*sim.Scheduler, *netem.Network, *netem.Link) {
	sch, net, link := newNet(rateMbps)
	link.EnableFluid(netem.BufferBytesForDelay(rateMbps*1e6, 100*sim.Millisecond))
	return sch, net, link
}

func TestParseFluidSpec(t *testing.T) {
	cases := []struct {
		in        string
		want      FluidSpec
		canonical string
	}{
		{"", FluidSpec{}, ""},
		{"off", FluidSpec{}, ""},
		{"none", FluidSpec{}, ""},
		{"  OFF  ", FluidSpec{}, ""},
		{"on", FluidSpec{Enabled: true, DT: DefaultFluidDT}, "on"},
		{"dt=10ms", FluidSpec{Enabled: true, DT: DefaultFluidDT}, "on"},
		{"dt=5ms", FluidSpec{Enabled: true, DT: 5 * sim.Millisecond}, "dt=5ms"},
		{"on,dt=2ms", FluidSpec{Enabled: true, DT: 2 * sim.Millisecond}, "dt=2ms"},
		{"dt=0.5ms", FluidSpec{Enabled: true, DT: 500 * sim.Microsecond}, "dt=0.5ms"},
	}
	for _, c := range cases {
		got, err := ParseFluidSpec(c.in)
		if err != nil {
			t.Fatalf("ParseFluidSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseFluidSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if s := got.String(); s != c.canonical {
			t.Fatalf("ParseFluidSpec(%q).String() = %q, want %q", c.in, s, c.canonical)
		}
		// The canonical form must round-trip to the same spec.
		back, err := ParseFluidSpec(got.String())
		if err != nil || back != got {
			t.Fatalf("canonical %q does not round-trip: %+v, %v", got.String(), back, err)
		}
	}
	for _, bad := range []string{"dt=", "dt=0ms", "dt=-3ms", "dt=2s", "dt=1001ms", "burst=4", "on,off", "dt=xms"} {
		if _, err := ParseFluidSpec(bad); err == nil {
			t.Fatalf("ParseFluidSpec(%q) accepted a bad spec", bad)
		}
	}
}

func TestHasFluidModel(t *testing.T) {
	for _, kind := range []string{"cbr", "poisson", "cubic", "reno"} {
		if !HasFluidModel(kind) {
			t.Fatalf("HasFluidModel(%q) = false", kind)
		}
	}
	for _, kind := range []string{"", "none", "trace", "video1080p", "video4k"} {
		if HasFluidModel(kind) {
			t.Fatalf("HasFluidModel(%q) = true; kind must stay per-packet", kind)
		}
	}
}

// TestFluidCBRRate is TestCBRRate's fluid counterpart: a 24 Mbit/s CBR
// aggregate on a 96 link delivers its rate — with exactly one rate
// transition for the whole run instead of one event per packet.
func TestFluidCBRRate(t *testing.T) {
	sch, net, link := newFluidNet(96)
	f, err := NewFluid(net, "", "cbr", 24e6, 40*sim.Millisecond, FluidSpec{Enabled: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Start(0)
	sch.RunUntil(10 * sim.Second)
	delivered, _ := link.FluidStats()
	got := delivered * 8 / 10 / 1e6
	if math.Abs(got-24) > 0.5 {
		t.Fatalf("fluid CBR delivered %.2f Mbit/s, want ~24", got)
	}
	if f.RateChanges != 1 {
		t.Fatalf("CBR made %d rate changes, want exactly 1", f.RateChanges)
	}
}

// TestFluidPoissonMeanRate checks the resampled process preserves the
// mean and actually varies: over 20 s the delivered rate lands on the
// offered mean while the per-interval rate is not constant.
func TestFluidPoissonMeanRate(t *testing.T) {
	sch, net, link := newFluidNet(96)
	f, err := NewFluid(net, "", "poisson", 48e6, 40*sim.Millisecond,
		FluidSpec{Enabled: true, DT: DefaultFluidDT}, sim.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	f.Start(0)
	sch.RunUntil(20 * sim.Second)
	delivered, _ := link.FluidStats()
	got := delivered * 8 / 20 / 1e6
	if math.Abs(got-48) > 2 {
		t.Fatalf("fluid Poisson delivered %.2f Mbit/s, want ~48", got)
	}
	// ~2000 resample ticks; nearly all should change the applied rate.
	if f.RateChanges < 1000 {
		t.Fatalf("Poisson made only %d rate changes over 2000 intervals", f.RateChanges)
	}
}

// TestFluidElasticSawtooth runs the AIMD aggregate alone on the link:
// it must grow past its start rate, self-congest into fluid drops, and
// cut back — the sawtooth an elastic source shows the detector — while
// staying capacity-bound on average.
func TestFluidElasticSawtooth(t *testing.T) {
	for _, kind := range []string{"cubic", "reno"} {
		t.Run(kind, func(t *testing.T) {
			sch, net, link := newFluidNet(48)
			f, err := NewFluid(net, "", kind, 0, 50*sim.Millisecond,
				FluidSpec{Enabled: true}, sim.NewRand(7))
			if err != nil {
				t.Fatal(err)
			}
			f.Start(0)
			var peak, trough float64
			probe := func() {}
			probe = func() {
				r := f.RateBps()
				if r > peak {
					peak = r
				}
				if peak > 0 && r < peak*0.8 && (trough == 0 || r < trough) {
					trough = r
				}
				sch.After(100*sim.Millisecond, probe)
			}
			sch.After(100*sim.Millisecond, probe)
			sch.RunUntil(60 * sim.Second)
			_, dropped := link.FluidStats()
			if dropped <= 0 {
				t.Fatal("elastic aggregate never self-congested (no fluid drops)")
			}
			if peak < 40e6 {
				t.Fatalf("peak rate %.1f Mbit/s never approached the 48 Mbit/s link", peak/1e6)
			}
			if trough == 0 {
				t.Fatal("rate never backed off after its peak: no sawtooth")
			}
			delivered, _ := link.FluidStats()
			got := delivered * 8 / 60 / 1e6
			if got < 30 || got > 49 {
				t.Fatalf("elastic aggregate delivered %.1f Mbit/s on a 48 link", got)
			}
		})
	}
}

// TestFluidStop pins withdrawal: after Stop the applied rate is zero
// and no further fluid arrives.
func TestFluidStop(t *testing.T) {
	sch, net, link := newFluidNet(96)
	f, err := NewFluid(net, "", "cbr", 24e6, 40*sim.Millisecond, FluidSpec{Enabled: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Start(0)
	sch.RunUntil(5 * sim.Second)
	f.Stop()
	at5, _ := link.FluidStats()
	sch.RunUntil(10 * sim.Second)
	at10, _ := link.FluidStats()
	if at10 != at5 {
		t.Fatalf("fluid kept arriving after Stop: %.0f -> %.0f", at5, at10)
	}
	if link.FluidRate() != 0 {
		t.Fatalf("link fluid rate = %v after Stop, want 0", link.FluidRate())
	}
}

// TestFluidEventFootprint is the optimization's core claim at the
// source level: the fluid Poisson aggregate's whole scheduler footprint
// (one event per resample) is >=5x smaller than the packet source's
// (one per packet plus delivery), at the same offered rate.
func TestFluidEventFootprint(t *testing.T) {
	dur := 10 * sim.Second
	schP, netP, _ := newNet(96)
	NewPoisson(netP, 40*sim.Millisecond, 48e6, sim.NewRand(5)).Start(0)
	schP.RunUntil(dur)
	packetEvents := schP.Executed

	schF, netF, _ := newFluidNet(96)
	f, err := NewFluid(netF, "", "poisson", 48e6, 40*sim.Millisecond,
		FluidSpec{Enabled: true}, sim.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	f.Start(0)
	schF.RunUntil(dur)
	fluidEvents := schF.Executed

	if fluidEvents*5 > packetEvents {
		t.Fatalf("fluid path executed %d events vs %d per-packet: want >=5x reduction",
			fluidEvents, packetEvents)
	}
}

func TestNewFluidRejectsBadInputs(t *testing.T) {
	_, net, _ := newFluidNet(96)
	if _, err := NewFluid(net, "", "trace", 24e6, 40*sim.Millisecond, FluidSpec{Enabled: true}, nil); err == nil {
		t.Fatal("NewFluid accepted a kind with no fluid model")
	}
	if _, err := NewFluid(net, "no-such-route", "cbr", 24e6, 40*sim.Millisecond, FluidSpec{Enabled: true}, nil); err == nil {
		t.Fatal("NewFluid accepted an unknown route")
	}
}

// FuzzParseFluidSpec fuzzes the spec grammar: no input may panic, any
// accepted input must produce a canonical form that re-parses to the
// same spec, and the canonical form must be idempotent.
func FuzzParseFluidSpec(f *testing.F) {
	for _, seed := range []string{
		"", "off", "none", "on", "dt=10ms", "dt=5ms", "on,dt=2ms",
		"dt=0.5ms", "dt=", "dt=0ms", "dt=2s", "burst=4", "ON , dt=3MS",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseFluidSpec(s)
		if err != nil {
			return
		}
		if spec.Enabled && (spec.DT <= 0 || spec.DT > maxFluidDT) {
			t.Fatalf("ParseFluidSpec(%q) accepted out-of-range DT %v", s, spec.DT)
		}
		canon := spec.String()
		back, err := ParseFluidSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, err)
		}
		if back != spec {
			t.Fatalf("ParseFluidSpec(%q) = %+v, but its canonical %q re-parses to %+v", s, spec, canon, back)
		}
		if back.String() != canon {
			t.Fatalf("canonical form not idempotent: %q -> %q", canon, back.String())
		}
	})
}
