package crosstraffic

import (
	"math"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// SizeSampler draws flow sizes in bytes.
type SizeSampler interface {
	Sample(rng *sim.Rand) int
}

// HeavyTailedSizes is the stand-in for the CAIDA 2016 flow-size
// distribution (§8.1): a bucketed log-uniform mixture whose bytes are
// dominated by a small number of very large flows, so the offered load
// alternates between periods with large elastic flows and periods of
// only short/inelastic flows — the structure Figs 9–12 depend on.
//
// Buckets (probability, size range): most flows are small (mice), most
// bytes belong to elephants, mean ≈ 1.4 MB.
type HeavyTailedSizes struct{}

type sizeBucket struct {
	p      float64
	lo, hi float64 // bytes
}

var caidaBuckets = []sizeBucket{
	{0.55, 2e3, 15e3},
	{0.30, 15e3, 150e3},
	{0.10, 150e3, 1.5e6},
	{0.04, 1.5e6, 15e6},
	{0.009, 15e6, 150e6},
	{0.001, 150e6, 300e6},
}

// Sample draws one flow size.
func (HeavyTailedSizes) Sample(rng *sim.Rand) int {
	u := rng.Float64()
	acc := 0.0
	b := caidaBuckets[len(caidaBuckets)-1]
	for _, c := range caidaBuckets {
		acc += c.p
		if u < acc {
			b = c
			break
		}
	}
	// Log-uniform within the bucket.
	lo, hi := b.lo, b.hi
	v := lo * math.Pow(hi/lo, rng.Float64())
	return int(v)
}

// MeanBytes returns the analytic mean of the distribution (for computing
// arrival rates from offered loads). For a log-uniform on [lo,hi] the
// mean is (hi-lo)/ln(hi/lo).
func (HeavyTailedSizes) MeanBytes() float64 {
	m := 0.0
	for _, b := range caidaBuckets {
		m += b.p * (b.hi - b.lo) / math.Log(b.hi/b.lo)
	}
	return m
}

// ElasticThresholdBytes is the paper's ground-truth rule (Fig. 12): flows
// larger than the initial congestion window of 10 packets are guaranteed
// ACK-clocked over their lifetime and counted elastic.
const ElasticThresholdBytes = 10 * netem.DefaultMSS

// FlowRecord describes one completed cross flow.
type FlowRecord struct {
	Size    int
	Started sim.Time
	FCT     sim.Time
}

// TraceWorkload generates Cubic cross flows with Poisson arrivals and
// heavy-tailed sizes at a configured offered load (the WAN cross-traffic
// workload of §8.1).
type TraceWorkload struct {
	Net     *netem.Network
	Rng     *sim.Rand
	LoadBps float64     // offered load in bits/s
	RTT     sim.Time    // cross-flow base RTT
	Route   string      // topology route the flows take ("" = default)
	Sizes   SizeSampler // defaults to HeavyTailedSizes
	// NewCC builds the congestion controller per flow (default Cubic is
	// supplied by the caller; required).
	NewCC func() transport.Controller
	// MaxFlows caps concurrently active flows (0 = no cap) to bound
	// memory in pathological overload.
	MaxFlows int

	stopped   bool
	active    map[netem.FlowID]*activeFlow
	completed []FlowRecord

	// ElasticBytes tracks bytes currently owned by active "elastic"
	// flows (size above threshold) for ground-truth computation.
	elasticActive int
}

type activeFlow struct {
	sender  *transport.Sender
	size    int
	started sim.Time
	elastic bool
}

// Start begins flow arrivals at time at.
func (w *TraceWorkload) Start(at sim.Time) {
	if w.Sizes == nil {
		w.Sizes = HeavyTailedSizes{}
	}
	if w.active == nil {
		w.active = make(map[netem.FlowID]*activeFlow)
	}
	w.Net.Sch.At(at, w.arrival)
}

// Stop halts new arrivals; active flows run to completion.
func (w *TraceWorkload) Stop() { w.stopped = true }

func (w *TraceWorkload) meanGap() sim.Time {
	mb := 1.4e6
	if m, ok := w.Sizes.(interface{ MeanBytes() float64 }); ok {
		mb = m.MeanBytes()
	}
	flowsPerSec := w.LoadBps / 8 / mb
	return sim.FromSeconds(1 / flowsPerSec)
}

func (w *TraceWorkload) arrival() {
	if w.stopped {
		return
	}
	w.spawnFlow()
	w.Net.Sch.After(w.Rng.ExpTime(w.meanGap()), w.arrival)
}

func (w *TraceWorkload) spawnFlow() {
	if w.MaxFlows > 0 && len(w.active) >= w.MaxFlows {
		return
	}
	size := w.Sizes.Sample(w.Rng)
	now := w.Net.Sch.Now()
	var sender *transport.Sender
	af := &activeFlow{size: size, started: now, elastic: size > ElasticThresholdBytes}
	src := transport.NewFiniteFlow(size, func(done sim.Time) {
		w.finish(af, done)
	})
	sender = transport.NewSenderOn(w.Net, w.Route, w.RTT, w.NewCC(), src, w.Rng.Split("flow"))
	af.sender = sender
	w.active[sender.ID()] = af
	if af.elastic {
		w.elasticActive++
	}
	sender.Start(now)
}

func (w *TraceWorkload) finish(af *activeFlow, done sim.Time) {
	af.sender.Stop()
	w.Net.Detach(af.sender.ID())
	delete(w.active, af.sender.ID())
	if af.elastic {
		w.elasticActive--
	}
	w.completed = append(w.completed, FlowRecord{
		Size: af.size, Started: af.started, FCT: done - af.started,
	})
}

// Completed returns records of all finished flows.
func (w *TraceWorkload) Completed() []FlowRecord { return w.completed }

// ActiveFlows returns the number of in-progress flows.
func (w *TraceWorkload) ActiveFlows() int { return len(w.active) }

// ElasticActive reports whether any active flow is in the elastic class
// AND still has enough remaining bytes to be backlogged (ground truth for
// detector accuracy).
func (w *TraceWorkload) ElasticActive() bool { return w.elasticActive > 0 }

// ElasticByteFraction returns the fraction of currently-active flow bytes
// belonging to elastic flows (Fig. 12's ground-truth signal).
func (w *TraceWorkload) ElasticByteFraction() float64 {
	totalRem, elasticRem := 0.0, 0.0
	for _, af := range w.active {
		rem := float64(af.size) - float64(af.sender.DeliveredBytes)
		if rem < 0 {
			rem = 0
		}
		totalRem += rem
		if af.elastic {
			elasticRem += rem
		}
	}
	if totalRem == 0 {
		return 0
	}
	return elasticRem / totalRem
}
