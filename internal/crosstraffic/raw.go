// Package crosstraffic generates the cross-traffic workloads of the
// paper's evaluation: inelastic raw sources (constant bit-rate and
// Poisson packet arrivals), elastic congestion-controlled flow groups,
// the heavy-tailed trace-driven WAN workload standing in for the CAIDA
// trace, and DASH-style video clients.
package crosstraffic

import (
	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// RawSource injects packets directly into the bottleneck without any
// transport: nothing acknowledges them and nothing adapts. It models the
// paper's inelastic traffic (CBR streams and Poisson arrivals at a mean
// rate). The rate can change over time via SetRate.
type RawSource struct {
	att *netem.Attachment
	sch *sim.Scheduler
	rng *sim.Rand

	rateBps float64
	poisson bool
	size    int

	running bool
	gen     int // invalidates scheduled arrivals after rate changes/stops
	seq     uint64

	// Hot-path reuse: one prebound arrival callback rides on pooled
	// scheduler events with the boxed generation as its argument (re-boxed
	// only when the generation changes), and delivered packets come back
	// through the attachment's receive hook into the topology's shared
	// packet pool — so steady-state injection allocates nothing.
	arriveFn func(arg any)
	genArg   any

	SentPackets uint64
}

// NewCBR returns a constant bit-rate source at rateBps on the default
// route.
func NewCBR(net *netem.Network, rtt sim.Time, rateBps float64) *RawSource {
	return NewCBROn(net, "", rtt, rateBps)
}

// NewCBROn is NewCBR on a named route of the topology.
func NewCBROn(net *netem.Network, route string, rtt sim.Time, rateBps float64) *RawSource {
	return newRaw(net, route, rtt, rateBps, false, nil)
}

// NewPoisson returns a source with Poisson packet arrivals at mean
// rateBps on the default route.
func NewPoisson(net *netem.Network, rtt sim.Time, rateBps float64, rng *sim.Rand) *RawSource {
	return NewPoissonOn(net, "", rtt, rateBps, rng)
}

// NewPoissonOn is NewPoisson on a named route of the topology.
func NewPoissonOn(net *netem.Network, route string, rtt sim.Time, rateBps float64, rng *sim.Rand) *RawSource {
	return newRaw(net, route, rtt, rateBps, true, rng)
}

func newRaw(net *netem.Network, route string, rtt sim.Time, rateBps float64, poisson bool, rng *sim.Rand) *RawSource {
	att := net.AttachOn(route, rtt)
	r := &RawSource{
		att:     att,
		sch:     net.Sch,
		rng:     rng,
		rateBps: rateBps,
		poisson: poisson,
		size:    netem.DefaultMSS,
	}
	r.arriveFn = r.arrive
	r.genArg = r.gen
	// Raw packets generate no ACKs; the receive hook's only job is to
	// return them to the shared pool once the delivery taps have seen them.
	att.Receive = func(p *netem.Packet, now sim.Time) {
		att.PutPacket(p)
	}
	return r
}

// ID returns the flow id at the bottleneck.
func (r *RawSource) ID() netem.FlowID { return r.att.ID }

// Start begins injection at time at.
func (r *RawSource) Start(at sim.Time) {
	r.sch.At(at, func() {
		if r.running {
			return
		}
		r.running = true
		r.bumpGen()
		r.scheduleNext()
	})
}

// Stop halts injection (takes effect immediately).
func (r *RawSource) Stop() {
	r.running = false
	r.bumpGen()
}

// SetRate changes the mean rate; 0 pauses the source.
func (r *RawSource) SetRate(bps float64) {
	r.rateBps = bps
	if r.running {
		r.bumpGen()
		r.scheduleNext()
	}
}

// RateBps returns the configured mean rate.
func (r *RawSource) RateBps() float64 { return r.rateBps }

// bumpGen invalidates in-flight arrival events and re-boxes the generation
// argument (the only allocation on a rate change, never per packet).
func (r *RawSource) bumpGen() {
	r.gen++
	r.genArg = r.gen
}

// arrive is the pooled-event callback for one packet arrival: inject,
// then schedule the next arrival of the same generation.
func (r *RawSource) arrive(arg any) {
	if arg.(int) != r.gen || !r.running {
		return
	}
	r.seq++
	r.SentPackets++
	p := r.att.GetPacket()
	*p = netem.Packet{Seq: r.seq, Size: r.size, Raw: true}
	r.att.Send(p)
	r.scheduleNext()
}

func (r *RawSource) scheduleNext() {
	if !r.running || r.rateBps <= 0 {
		return
	}
	mean := sim.FromSeconds(float64(r.size*8) / r.rateBps)
	gap := mean
	if r.poisson {
		gap = r.rng.ExpTime(mean)
	}
	r.sch.AfterArg(gap, r.arriveFn, r.genArg)
}
