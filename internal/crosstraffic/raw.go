// Package crosstraffic generates the cross-traffic workloads of the
// paper's evaluation: inelastic raw sources (constant bit-rate and
// Poisson packet arrivals), elastic congestion-controlled flow groups,
// the heavy-tailed trace-driven WAN workload standing in for the CAIDA
// trace, and DASH-style video clients.
package crosstraffic

import (
	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// RawSource injects packets directly into the bottleneck without any
// transport: nothing acknowledges them and nothing adapts. It models the
// paper's inelastic traffic (CBR streams and Poisson arrivals at a mean
// rate). The rate can change over time via SetRate.
type RawSource struct {
	att *netem.Attachment
	sch *sim.Scheduler
	rng *sim.Rand

	rateBps float64
	poisson bool
	size    int

	running bool
	gen     int // invalidates scheduled arrivals after rate changes/stops
	seq     uint64

	SentPackets uint64
}

// NewCBR returns a constant bit-rate source at rateBps.
func NewCBR(net *netem.Network, rtt sim.Time, rateBps float64) *RawSource {
	return newRaw(net, rtt, rateBps, false, nil)
}

// NewPoisson returns a source with Poisson packet arrivals at mean
// rateBps.
func NewPoisson(net *netem.Network, rtt sim.Time, rateBps float64, rng *sim.Rand) *RawSource {
	return newRaw(net, rtt, rateBps, true, rng)
}

func newRaw(net *netem.Network, rtt sim.Time, rateBps float64, poisson bool, rng *sim.Rand) *RawSource {
	att := net.Attach(rtt)
	return &RawSource{
		att:     att,
		sch:     net.Sch,
		rng:     rng,
		rateBps: rateBps,
		poisson: poisson,
		size:    netem.DefaultMSS,
	}
}

// ID returns the flow id at the bottleneck.
func (r *RawSource) ID() netem.FlowID { return r.att.ID }

// Start begins injection at time at.
func (r *RawSource) Start(at sim.Time) {
	r.sch.At(at, func() {
		if r.running {
			return
		}
		r.running = true
		r.gen++
		r.scheduleNext(r.gen)
	})
}

// Stop halts injection (takes effect immediately).
func (r *RawSource) Stop() {
	r.running = false
	r.gen++
}

// SetRate changes the mean rate; 0 pauses the source.
func (r *RawSource) SetRate(bps float64) {
	r.rateBps = bps
	if r.running {
		r.gen++
		r.scheduleNext(r.gen)
	}
}

// RateBps returns the configured mean rate.
func (r *RawSource) RateBps() float64 { return r.rateBps }

func (r *RawSource) scheduleNext(gen int) {
	if !r.running || r.rateBps <= 0 {
		return
	}
	mean := sim.FromSeconds(float64(r.size*8) / r.rateBps)
	gap := mean
	if r.poisson {
		gap = r.rng.ExpTime(mean)
	}
	r.sch.After(gap, func() {
		if gen != r.gen || !r.running {
			return
		}
		r.seq++
		r.SentPackets++
		r.att.Send(&netem.Packet{Seq: r.seq, Size: r.size, Raw: true})
		r.scheduleNext(gen)
	})
}
