package crosstraffic

import (
	"math"
	"testing"

	"nimbus/internal/cc"
	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

func newNet(rateMbps float64) (*sim.Scheduler, *netem.Network, *netem.Link) {
	sch := sim.NewScheduler()
	rate := rateMbps * 1e6
	link := netem.NewLink(sch, rate, netem.NewDropTail(netem.BufferBytesForDelay(rate, 100*sim.Millisecond)))
	return sch, netem.NewNetwork(sch, link), link
}

func TestCBRRate(t *testing.T) {
	sch, net, link := newNet(96)
	cbr := NewCBR(net, 40*sim.Millisecond, 24e6)
	cbr.Start(0)
	sch.RunUntil(10 * sim.Second)
	got := float64(link.DeliveredBytes) * 8 / 10 / 1e6
	if math.Abs(got-24) > 0.5 {
		t.Fatalf("CBR delivered %.2f Mbit/s, want ~24", got)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	sch, net, link := newNet(96)
	p := NewPoisson(net, 40*sim.Millisecond, 48e6, sim.NewRand(5))
	p.Start(0)
	sch.RunUntil(20 * sim.Second)
	got := float64(link.DeliveredBytes) * 8 / 20 / 1e6
	if math.Abs(got-48) > 2 {
		t.Fatalf("Poisson delivered %.2f Mbit/s, want ~48", got)
	}
}

func TestRawSourceStop(t *testing.T) {
	sch, net, link := newNet(96)
	cbr := NewCBR(net, 40*sim.Millisecond, 24e6)
	cbr.Start(0)
	sch.RunUntil(5 * sim.Second)
	cbr.Stop()
	at5 := link.DeliveredBytes
	sch.RunUntil(10 * sim.Second)
	// Only in-flight packets may trickle in after Stop: at 24 Mbit/s
	// with a 20 ms forward delay that is ~40 packets.
	if link.DeliveredBytes > at5+60*netem.DefaultMSS {
		t.Fatalf("source kept sending after Stop: %d -> %d", at5, link.DeliveredBytes)
	}
}

func TestRawSourceSetRate(t *testing.T) {
	sch, net, link := newNet(96)
	cbr := NewCBR(net, 40*sim.Millisecond, 10e6)
	cbr.Start(0)
	sch.RunUntil(5 * sim.Second)
	cbr.SetRate(40e6)
	before := link.DeliveredBytes
	sch.RunUntil(10 * sim.Second)
	phase2 := float64(link.DeliveredBytes-before) * 8 / 5 / 1e6
	if math.Abs(phase2-40) > 2 {
		t.Fatalf("after SetRate delivered %.1f Mbit/s, want ~40", phase2)
	}
}

func TestHeavyTailedSizes(t *testing.T) {
	rng := sim.NewRand(3)
	var s HeavyTailedSizes
	n := 200000
	var sum float64
	small := 0
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		if v < 2000 || v > 300e6 {
			t.Fatalf("size %d out of bounds", v)
		}
		if v <= 15000 {
			small++
		}
		sum += float64(v)
	}
	mean := sum / float64(n)
	want := s.MeanBytes()
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("empirical mean %.0f vs analytic %.0f", mean, want)
	}
	// Most flows are mice.
	if frac := float64(small) / float64(n); frac < 0.5 || frac > 0.6 {
		t.Fatalf("small-flow fraction = %.2f, want ~0.55", frac)
	}
}

func TestTraceWorkloadOfferedLoad(t *testing.T) {
	sch, net, link := newNet(96)
	w := &TraceWorkload{
		Net:     net,
		Rng:     sim.NewRand(1),
		LoadBps: 48e6,
		RTT:     50 * sim.Millisecond,
		NewCC:   func() transport.Controller { return cc.NewCubic() },
	}
	w.Start(0)
	dur := 120 * sim.Second
	sch.RunUntil(dur)
	got := float64(link.DeliveredBytes) * 8 / dur.Seconds() / 1e6
	// Offered 48 on a 96 link: delivered should be near 48 (allowing
	// heavy-tail variance at this horizon).
	if got < 20 || got > 90 {
		t.Fatalf("trace workload delivered %.1f Mbit/s at 48 offered", got)
	}
	if len(w.Completed()) < 50 {
		t.Fatalf("only %d flows completed", len(w.Completed()))
	}
	// Some flows must be classed elastic at some point; spot-check the
	// ground-truth helpers don't panic and fractions are sane.
	if f := w.ElasticByteFraction(); f < 0 || f > 1 {
		t.Fatalf("elastic fraction = %v", f)
	}
}

func TestTraceWorkloadFCTOrdering(t *testing.T) {
	sch, net, _ := newNet(96)
	w := &TraceWorkload{
		Net:     net,
		Rng:     sim.NewRand(2),
		LoadBps: 30e6,
		RTT:     50 * sim.Millisecond,
		NewCC:   func() transport.Controller { return cc.NewCubic() },
	}
	w.Start(0)
	sch.RunUntil(90 * sim.Second)
	recs := w.Completed()
	if len(recs) < 30 {
		t.Fatalf("too few completions: %d", len(recs))
	}
	// Larger flows should take longer on average: compare mean FCT of
	// mice vs elephants.
	var miceSum, miceN, elSum, elN float64
	for _, r := range recs {
		if r.Size <= 15000 {
			miceSum += r.FCT.Seconds()
			miceN++
		} else if r.Size > 1.5e6 {
			elSum += r.FCT.Seconds()
			elN++
		}
	}
	if miceN == 0 || elN == 0 {
		t.Skip("sample too small for both classes")
	}
	if elSum/elN <= miceSum/miceN {
		t.Fatalf("elephant FCT %.2fs <= mouse FCT %.2fs", elSum/elN, miceSum/miceN)
	}
}

func TestVideo1080pIsApplicationLimited(t *testing.T) {
	// Alone on a 48 Mbit/s link a 1080p client must settle at the top
	// ladder rung (8 Mbit/s), far below the link rate: application
	// limited => inelastic.
	sch, net, link := newNet(48)
	v := &VideoClient{
		Net: net, Rng: sim.NewRand(4), RTT: 50 * sim.Millisecond,
		Ladder: Ladder1080p,
		NewCC:  func() transport.Controller { return cc.NewCubic() },
	}
	v.Start(0)
	dur := 60 * sim.Second
	sch.RunUntil(dur)
	got := float64(link.DeliveredBytes) * 8 / dur.Seconds() / 1e6
	if got > 12 {
		t.Fatalf("1080p delivered %.1f Mbit/s, should be app-limited ~8", got)
	}
	if v.ChunksFetched < 10 {
		t.Fatalf("only %d chunks fetched", v.ChunksFetched)
	}
	if v.Rebuffers > 2 {
		t.Fatalf("%d rebuffers on an idle fat link", v.Rebuffers)
	}
}

func TestVideo4KIsNetworkLimited(t *testing.T) {
	// A 4K client sharing a 48 Mbit/s link with a Cubic flow wants more
	// than its fair share: it should be continuously downloading
	// (network-limited) and consume a large fraction of the link.
	sch, net, _ := newNet(48)
	v := &VideoClient{
		Net: net, Rng: sim.NewRand(4), RTT: 50 * sim.Millisecond,
		Ladder: Ladder4K,
		NewCC:  func() transport.Controller { return cc.NewCubic() },
	}
	v.Start(0)
	cu := transport.NewSender(net, 50*sim.Millisecond, cc.NewCubic(), transport.Backlogged{}, sim.NewRand(8))
	cu.Start(0)
	dur := 60 * sim.Second
	sch.RunUntil(dur)
	videoMbps := float64(v.Sender().DeliveredBytes) * 8 / dur.Seconds() / 1e6
	if videoMbps < 10 {
		t.Fatalf("4K video got %.1f Mbit/s", videoMbps)
	}
}
