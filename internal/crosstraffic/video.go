package crosstraffic

import (
	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// VideoClient models a DASH video client (§8.1, Fig. 11): it downloads
// fixed-duration chunks over a persistent congestion-controlled
// connection, picks the bitrate with a throughput-based ABR rule, and
// paces requests to keep a playback buffer near its target. Whether the
// traffic is elastic depends on the ladder versus the available rate:
//   - a 4K ladder exceeding the fair share keeps the connection always
//     downloading (network-limited => ACK-clocked => elastic);
//   - a 1080p ladder below the fair share leaves idle gaps between chunks
//     (application-limited => inelastic).
type VideoClient struct {
	Net *netem.Network
	Rng *sim.Rand
	RTT sim.Time
	// Route is the topology route the connection takes ("" = default).
	Route string
	// Ladder is the available bitrates in bits/s, ascending.
	Ladder []float64
	// ChunkDuration is the media duration per chunk (default 4 s).
	ChunkDuration sim.Time
	// BufferTarget is the playback buffer the client maintains
	// (default 12 s).
	BufferTarget sim.Time
	// NewCC builds the transport congestion controller (required;
	// typically Cubic).
	NewCC func() transport.Controller

	sender *transport.Sender
	src    *transport.ChunkSource

	tputEst    *stats.EWMA // bits/s
	bufLevel   sim.Time
	lastUpdate sim.Time
	chunkStart sim.Time
	chunkBits  float64
	playing    bool
	stopped    bool

	ChunksFetched int
	Rebuffers     int
	bitrateSum    float64
}

// Ladders used in the paper's two experiments.
var (
	Ladder4K    = []float64{10e6, 16e6, 25e6, 40e6}
	Ladder1080p = []float64{1e6, 2.5e6, 5e6, 8e6}
)

// Start connects the client and requests the first chunk.
func (v *VideoClient) Start(at sim.Time) {
	if v.ChunkDuration == 0 {
		v.ChunkDuration = 4 * sim.Second
	}
	if v.BufferTarget == 0 {
		v.BufferTarget = 12 * sim.Second
	}
	v.tputEst = stats.NewEWMA(0.3)
	v.src = &transport.ChunkSource{OnChunkDone: v.onChunkDone}
	v.sender = transport.NewSenderOn(v.Net, v.Route, v.RTT, v.NewCC(), v.src, v.Rng.Split("video"))
	v.Net.Sch.At(at, func() {
		v.lastUpdate = v.Net.Sch.Now()
		v.sender.Start(v.Net.Sch.Now())
		v.requestChunk()
	})
}

// Stop halts the client.
func (v *VideoClient) Stop() {
	v.stopped = true
	v.sender.Stop()
}

// Sender exposes the underlying transport (metrics).
func (v *VideoClient) Sender() *transport.Sender { return v.sender }

func (v *VideoClient) drainPlayback(now sim.Time) {
	if v.playing {
		v.bufLevel -= now - v.lastUpdate
		if v.bufLevel < 0 {
			v.bufLevel = 0
			v.playing = false // rebuffering
			v.Rebuffers++
		}
	}
	v.lastUpdate = now
}

func (v *VideoClient) pickBitrate() float64 {
	est := v.tputEst.Value()
	choice := v.Ladder[0]
	for _, b := range v.Ladder {
		if b <= 0.8*est {
			choice = b
		}
	}
	return choice
}

func (v *VideoClient) requestChunk() {
	if v.stopped {
		return
	}
	now := v.Net.Sch.Now()
	v.drainPlayback(now)
	br := v.pickBitrate()
	v.bitrateSum += br
	v.chunkStart = now
	v.chunkBits = br * v.ChunkDuration.Seconds()
	v.src.AddChunk(int(v.chunkBits / 8))
}

func (v *VideoClient) onChunkDone(now sim.Time) {
	if v.stopped {
		return
	}
	v.ChunksFetched++
	v.drainPlayback(now)
	dl := (now - v.chunkStart).Seconds()
	if dl > 0 {
		v.tputEst.Add(v.chunkBits / dl)
	}
	v.bufLevel += v.ChunkDuration
	if v.bufLevel >= v.ChunkDuration {
		v.playing = true
	}
	if v.bufLevel < v.BufferTarget {
		v.requestChunk()
		return
	}
	// Wait until the buffer drains to the target, then fetch.
	wait := v.bufLevel - v.BufferTarget
	v.Net.Sch.After(wait, v.requestChunk)
}

// MeanBitrate returns the average requested bitrate (bits/s).
func (v *VideoClient) MeanBitrate() float64 {
	if v.ChunksFetched == 0 {
		return 0
	}
	return v.bitrateSum / float64(v.ChunksFetched)
}

// BufferLevel returns the current playback buffer (diagnostics).
func (v *VideoClient) BufferLevel() sim.Time { return v.bufLevel }
