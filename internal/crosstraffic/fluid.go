package crosstraffic

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// Fluid cross traffic approximates an aggregate source as a
// piecewise-constant rate process applied to its route's links
// (Link.AddFluidRate) instead of a stream of packet events: one
// scheduler event per rate change, however high the rate. Three
// aggregate models cover the existing packet sources:
//
//   - cbr: a constant rate — zero recurring events.
//   - poisson: the rate is resampled every DT from the Poisson
//     arrival count of that interval, preserving the coarse-grained
//     variance the detector's FFT observes while erasing per-packet
//     jitter inside each interval.
//   - cubic / reno: an AIMD rate process ticked once per RTT — the
//     MM1-style approximation of an elastic flow group. Each tick reads
//     the route's dropped-fluid delta as its congestion signal, cutting
//     the rate by the scheme's beta (cubic 0.7, reno 0.5) on loss and
//     otherwise adding one MSS per RTT, so the aggregate self-congests
//     into the sawtooth an elastic source shows a detector.

// DefaultFluidDT is the resample interval stochastic fluid models use
// when the spec doesn't set one: coarse enough to amortize events,
// fine relative to the detector's multi-second FFT window.
const DefaultFluidDT = 10 * sim.Millisecond

// maxFluidDT bounds the resample interval: beyond one second the
// process is effectively CBR and the spec is almost certainly a typo.
const maxFluidDT = sim.Second

// FluidSpec is the parsed form of the -fluid flag / fluid_cross
// scenario field.
type FluidSpec struct {
	// Enabled gates the whole fluid path; the zero spec is "off".
	Enabled bool
	// DT is the rate-resample interval of stochastic models (poisson).
	// CBR ignores it; elastic models tick per RTT.
	DT sim.Time
}

// ParseFluidSpec parses a fluid spec string: "" , "off", and "none"
// disable the fluid path; "on" enables it with the default resample
// interval; "dt=5ms" enables it with that interval. Tokens are
// comma-separated for forward compatibility, though dt= is the only
// parameter today.
func ParseFluidSpec(s string) (FluidSpec, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "", "off", "none":
		return FluidSpec{}, nil
	}
	spec := FluidSpec{Enabled: true, DT: DefaultFluidDT}
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "on":
			// The explicit default; composes with dt= in either order.
		case strings.HasPrefix(tok, "dt="):
			v := strings.TrimSuffix(strings.TrimPrefix(tok, "dt="), "ms")
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return FluidSpec{}, fmt.Errorf("crosstraffic: bad fluid dt %q (want dt=10ms)", tok)
			}
			dt := sim.FromSeconds(ms / 1000)
			if dt <= 0 || dt > maxFluidDT {
				return FluidSpec{}, fmt.Errorf("crosstraffic: fluid dt %q out of range (0, %v]", tok, maxFluidDT)
			}
			spec.DT = dt
		default:
			return FluidSpec{}, fmt.Errorf("crosstraffic: unknown fluid parameter %q (want on, off, or dt=10ms)", tok)
		}
	}
	return spec, nil
}

// String renders the canonical form ParseFluidSpec round-trips: "" when
// disabled, "on" at the default interval, "dt=<ms>ms" otherwise.
func (f FluidSpec) String() string {
	if !f.Enabled {
		return ""
	}
	if f.DT == DefaultFluidDT {
		return "on"
	}
	return "dt=" + strconv.FormatFloat(f.DT.Seconds()*1000, 'g', -1, 64) + "ms"
}

// HasFluidModel reports whether a cross-traffic kind has a fluid
// approximation. Kinds without one (trace, video*) always run exact
// per-packet, whatever the fluid spec says.
func HasFluidModel(kind string) bool {
	switch kind {
	case "cbr", "poisson", "cubic", "reno":
		return true
	}
	return false
}

// Fluid is one aggregate background source modeled as a rate process on
// the forward links of a route. The links must have fluid enabled
// (Link.EnableFluid) before the source starts.
type Fluid struct {
	sch   *sim.Scheduler
	rng   *sim.Rand
	links []*netem.Link

	kind    string // "cbr", "poisson", "cubic", "reno"
	meanBps float64
	dt      sim.Time
	rtt     sim.Time
	size    int

	rate        float64 // currently applied rate
	running     bool
	gen         int
	tickFn      func(arg any)
	genArg      any
	lastDropped float64
	cooldown    int     // ticks left before another multiplicative decrease
	win         float64 // elastic models: window of in-flight bits

	// RateChanges counts applied rate transitions — the fluid path's
	// whole event footprint, reported by the fidelity family against
	// the packet path's per-packet event count.
	RateChanges uint64
}

// NewFluid returns a fluid aggregate of the given kind and mean rate on
// a route of the topology ("" = default). rtt paces elastic models (and
// approximates the aggregate's feedback delay); rng drives stochastic
// resampling and may be nil for cbr.
func NewFluid(net *netem.Network, route string, kind string, rateBps float64, rtt sim.Time, spec FluidSpec, rng *sim.Rand) (*Fluid, error) {
	switch kind {
	case "cbr", "poisson", "cubic", "reno":
	default:
		return nil, fmt.Errorf("crosstraffic: no fluid model for cross kind %q (want cbr, poisson, cubic, or reno)", kind)
	}
	r := net.Route(route)
	if r == nil {
		return nil, fmt.Errorf("crosstraffic: no route %q in topology", route)
	}
	f := &Fluid{
		sch:     net.Sch,
		rng:     rng,
		kind:    kind,
		meanBps: rateBps,
		dt:      spec.DT,
		rtt:     rtt,
		size:    netem.DefaultMSS,
	}
	if f.dt <= 0 {
		f.dt = DefaultFluidDT
	}
	for _, h := range r.Fwd {
		f.links = append(f.links, h.Link)
	}
	f.tickFn = f.tick
	f.genArg = f.gen
	return f, nil
}

// Links returns the route links the source loads (fidelity metrics).
func (f *Fluid) Links() []*netem.Link { return f.links }

// RateBps returns the currently applied aggregate rate.
func (f *Fluid) RateBps() float64 { return f.rate }

// Start begins the rate process at time at.
func (f *Fluid) Start(at sim.Time) {
	f.sch.At(at, func() {
		if f.running {
			return
		}
		f.running = true
		f.bumpGen()
		switch f.kind {
		case "cbr":
			// One transition for the whole run.
			f.setRate(f.meanBps)
		case "poisson":
			f.resample()
			f.scheduleTick(f.dt)
		default: // elastic AIMD window
			start := f.meanBps
			if start <= 0 {
				start = float64(f.size*8) / f.rtt.Seconds()
			}
			f.win = start * f.rtt.Seconds()
			f.lastDropped = f.droppedNow()
			f.setRate(start)
			f.scheduleTick(f.rtt)
		}
	})
}

// Stop halts the process, withdrawing the applied rate immediately.
func (f *Fluid) Stop() {
	f.running = false
	f.bumpGen()
	f.setRate(0)
}

func (f *Fluid) bumpGen() {
	f.gen++
	f.genArg = f.gen
}

func (f *Fluid) scheduleTick(after sim.Time) {
	f.sch.AfterArg(after, f.tickFn, f.genArg)
}

// tick is the pooled-event callback advancing the rate process one
// interval: resample (poisson) or AIMD-adjust (elastic), then schedule
// the next tick of the same generation.
func (f *Fluid) tick(arg any) {
	if arg.(int) != f.gen || !f.running {
		return
	}
	switch f.kind {
	case "poisson":
		f.resample()
		f.scheduleTick(f.dt)
	default:
		f.aimd()
		f.scheduleTick(f.rtt)
	}
}

// resample draws the next interval's rate from the Poisson arrival
// count of a DT window at the mean rate, so the applied process has the
// variance of the packet arrivals it replaces at the resample scale.
func (f *Fluid) resample() {
	lambda := f.meanBps * f.dt.Seconds() / float64(f.size*8)
	n := f.poissonDraw(lambda)
	f.setRate(n * float64(f.size*8) / f.dt.Seconds())
}

// poissonDraw samples a Poisson count: Knuth's product-of-uniforms for
// small means, the normal approximation beyond (exact enough at these
// scales and O(1) in the mean).
func (f *Fluid) poissonDraw(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		floor := math.Exp(-lambda)
		p := 1.0
		for i := 0; i < 256; i++ {
			p *= f.rng.Float64()
			if p < floor {
				return float64(i)
			}
		}
		return 256
	}
	n := f.rng.Normal(lambda, math.Sqrt(lambda))
	if n < 0 {
		return 0
	}
	return math.Round(n)
}

// aimd advances the elastic model one RTT. The state is a window of
// in-flight bits, not a rate: the applied arrival rate is
// win / (rtt + qdelay), so a growing queue throttles the aggregate
// within one tick — the fluid limit of ACK self-clocking, which is
// what makes a real elastic flow visibly respond to Nimbus's pulses
// at the pulse frequency. The window itself evolves by AIMD:
// multiplicative decrease (cubic 0.7, reno 0.5) when the route
// dropped fluid since the last tick, additive increase otherwise,
// with cubic's steeper post-cut regrowth approximated by a larger
// step. A one-tick cooldown after each cut makes a drop burst one
// loss event, as a window-based flow would register it.
func (f *Fluid) aimd() {
	dropped := f.droppedNow()
	mss := float64(f.size * 8)
	switch {
	case dropped > f.lastDropped && f.cooldown == 0:
		beta := 0.7 // cubic
		if f.kind == "reno" {
			beta = 0.5
		}
		f.win *= beta
		f.cooldown = 1
	default:
		if f.cooldown > 0 {
			f.cooldown--
		}
		step := mss
		if f.kind == "cubic" {
			step = 4 * mss
		}
		f.win += step
	}
	f.lastDropped = dropped
	if f.win < mss {
		f.win = mss
	}
	f.setRate(f.win / (f.rtt + f.routeQueueDelay()).Seconds())
}

// routeQueueDelay sums the route's current queueing delay — packet
// bytes plus standing fluid over each link's drain rate — the feedback
// signal the elastic window model self-clocks against.
func (f *Fluid) routeQueueDelay() sim.Time {
	var total sim.Time
	for _, l := range f.links {
		rate := l.Rate()
		if rate <= 0 {
			continue
		}
		bytes := float64(l.Q.BytesQueued()) + l.FluidBacklog()
		total += sim.FromSeconds(bytes * 8 / rate)
	}
	return total
}

// droppedNow sums the dropped-fluid bytes over the route's links — the
// aggregate's congestion signal.
func (f *Fluid) droppedNow() float64 {
	var total float64
	for _, l := range f.links {
		_, d := l.FluidStats()
		total += d
	}
	return total
}

// setRate applies a new aggregate rate to every route link as a delta,
// so several fluid terms (a topology's constant load, this source)
// compose on one link.
func (f *Fluid) setRate(bps float64) {
	if bps < 0 {
		bps = 0
	}
	if bps == f.rate {
		return
	}
	delta := bps - f.rate
	for _, l := range f.links {
		l.AddFluidRate(delta)
	}
	f.rate = bps
	f.RateChanges++
}
