package core

import (
	"nimbus/internal/fft"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// DetectorConfig parameterizes the elasticity detector (§3.4).
type DetectorConfig struct {
	// SampleInterval is the spacing of ẑ samples (the paper's CCP
	// implementation reports measurements every 10 ms).
	SampleInterval sim.Time
	// FFTDuration is the window over which the FFT is computed (5 s).
	FFTDuration sim.Time
	// Threshold is ηthresh; cross traffic with η >= Threshold is
	// classified elastic (2, chosen in Fig. 6).
	Threshold float64
}

// DefaultDetectorConfig returns the paper's parameters: 10 ms samples,
// 5 s FFT window, ηthresh = 2.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		SampleInterval: 10 * sim.Millisecond,
		FFTDuration:    5 * sim.Second,
		Threshold:      2,
	}
}

// Detector decides whether cross traffic contains elastic (ACK-clocked)
// flows by looking for periodicity at the pulse frequency in the
// cross-traffic rate estimate ẑ (§3.3). η (Eq. 3) compares the FFT
// magnitude at fp with the largest magnitude in (fp, 2fp); a pronounced
// peak at fp only appears when the cross traffic reacts to the pulses.
type Detector struct {
	cfg  DetectorConfig
	ring *stats.Ring
	buf  []float64
}

// NewDetector returns a detector; zero-value fields of cfg take the
// defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	def := DefaultDetectorConfig()
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = def.SampleInterval
	}
	if cfg.FFTDuration <= 0 {
		cfg.FFTDuration = def.FFTDuration
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = def.Threshold
	}
	n := int(cfg.FFTDuration / cfg.SampleInterval)
	if n < 8 {
		n = 8
	}
	return &Detector{cfg: cfg, ring: stats.NewRing(n)}
}

// Config returns the detector's configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// AddSample appends one ẑ sample (call every SampleInterval).
func (d *Detector) AddSample(z float64) { d.ring.Push(z) }

// Ready reports whether a full FFT window of samples has accumulated.
func (d *Detector) Ready() bool { return d.ring.Full() }

// SampleHz returns the sampling frequency of the ẑ series.
func (d *Detector) SampleHz() float64 { return 1 / d.cfg.SampleInterval.Seconds() }

// Mean returns the mean of the samples currently in the window.
func (d *Detector) Mean() float64 {
	d.buf = d.ring.Snapshot(d.buf)
	if len(d.buf) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.buf {
		s += v
	}
	return s / float64(len(d.buf))
}

// Spectrum returns the current one-sided magnitude spectrum of the ẑ
// window (mean removed). Useful for diagnostics and for reproducing
// Fig. 5 directly.
func (d *Detector) Spectrum() fft.Spectrum {
	d.buf = d.ring.Snapshot(d.buf)
	return fft.Analyze(d.buf, d.SampleHz())
}

// Elasticity computes η (Eq. 3) for pulse frequency fp: the magnitude at
// fp divided by the peak magnitude in the open band (fp, 2fp). Because
// the FFT length is a power of two, fp generally falls between bins; the
// numerator takes the peak within one bin of fp and the denominator
// starts a small guard band above fp to keep spectral leakage of the fp
// peak itself out of the denominator. A denominator of zero yields a
// large capped η.
func (d *Detector) Elasticity(fp float64) float64 {
	return d.ElasticityExcluding(fp, 0)
}

// ElasticityExcluding is Elasticity with an optional second frequency
// excluded from the denominator band (±1.5 bins). The multi-flow watcher
// protocol needs this: with a pulser at fpc and the band (fpc, 2fpc)
// containing fpd, a legitimate peak at fpd must not suppress η.
func (d *Detector) ElasticityExcluding(fp, exclude float64) float64 {
	spec := d.Spectrum()
	if len(spec.Mag) == 0 || spec.Resolution == 0 {
		return 0
	}
	res := spec.Resolution
	num := spec.PeakAround(fp, res)
	den := 0.0
	for k := range spec.Mag {
		f := float64(k) * res
		if f <= fp+2*res || f >= 2*fp-res {
			continue
		}
		if exclude > 0 && f > exclude-1.5*res && f < exclude+1.5*res {
			continue
		}
		if spec.Mag[k] > den {
			den = spec.Mag[k]
		}
	}
	const etaCap = 100
	if den <= 0 {
		if num > 0 {
			return etaCap
		}
		return 0
	}
	eta := num / den
	if eta > etaCap {
		eta = etaCap
	}
	return eta
}

// Elastic applies the hard decision rule: η >= ηthresh.
func (d *Detector) Elastic(fp float64) bool {
	return d.Elasticity(fp) >= d.cfg.Threshold
}

// Threshold returns ηthresh.
func (d *Detector) Threshold() float64 { return d.cfg.Threshold }

// WindowSamples returns the number of samples in the FFT window.
func (d *Detector) WindowSamples() int { return d.ring.Cap() }
