package core

import (
	"nimbus/internal/fft"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// DetectorConfig parameterizes the elasticity detector (§3.4).
type DetectorConfig struct {
	// SampleInterval is the spacing of ẑ samples (the paper's CCP
	// implementation reports measurements every 10 ms).
	SampleInterval sim.Time
	// FFTDuration is the window over which the FFT is computed (5 s).
	FFTDuration sim.Time
	// Threshold is ηthresh; cross traffic with η >= Threshold is
	// classified elastic (2, chosen in Fig. 6).
	Threshold float64
	// RFFT selects the packed real-input FFT (fft.RealPlan: one
	// half-length complex transform plus an unpack pass) for the cached
	// spectrum. It roughly halves per-window transform cost but reaches
	// each bin through differently-ordered floating-point operations, so
	// spectra agree with the default path only to rounding error
	// (~1e-12 relative) — off by default to preserve bit-identical runs.
	RFFT bool
}

// DefaultDetectorConfig returns the paper's parameters: 10 ms samples,
// 5 s FFT window, ηthresh = 2.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		SampleInterval: 10 * sim.Millisecond,
		FFTDuration:    5 * sim.Second,
		Threshold:      2,
	}
}

// Detector decides whether cross traffic contains elastic (ACK-clocked)
// flows by looking for periodicity at the pulse frequency in the
// cross-traffic rate estimate ẑ (§3.3). η (Eq. 3) compares the FFT
// magnitude at fp with the largest magnitude in (fp, 2fp); a pronounced
// peak at fp only appears when the cross traffic reacts to the pulses.
//
// The detector is built to be allocation-free per tick: it owns an
// fft.Plan (precomputed permutation and twiddle tables) plus scratch
// buffers, and it caches the spectrum per push generation, so the first
// spectral read after AddSample pays one in-place FFT and every further
// read in the same tick — a watcher probing both pulse frequencies, the
// multi-pulser check, the η guard's Mean — is free.
type Detector struct {
	cfg  DetectorConfig
	ring *stats.Ring
	buf  []float64

	plan  *fft.Plan
	rplan *fft.RealPlan // non-nil iff cfg.RFFT: packed real-input path
	// Cached per-generation spectrum. spec.Mag is owned by the detector
	// and overwritten at the first read after the next AddSample; callers
	// must not retain it across samples.
	spec     fft.Spectrum
	specMean float64 // window mean computed with the snapshot, for Mean()
	specGen  uint64
	haveSpec bool
	gen      uint64 // bumped on every AddSample
}

// NewDetector returns a detector; zero-value fields of cfg take the
// defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	def := DefaultDetectorConfig()
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = def.SampleInterval
	}
	if cfg.FFTDuration <= 0 {
		cfg.FFTDuration = def.FFTDuration
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = def.Threshold
	}
	n := int(cfg.FFTDuration / cfg.SampleInterval)
	if n < 8 {
		n = 8
	}
	d := &Detector{
		cfg:  cfg,
		ring: stats.NewRing(n),
		plan: fft.NewPlan(n, 1/cfg.SampleInterval.Seconds()),
	}
	if cfg.RFFT {
		d.rplan = fft.NewRealPlan(n, 1/cfg.SampleInterval.Seconds())
	}
	return d
}

// Config returns the detector's configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// AddSample appends one ẑ sample (call every SampleInterval).
func (d *Detector) AddSample(z float64) {
	d.ring.Push(z)
	d.gen++
}

// Ready reports whether a full FFT window of samples has accumulated.
func (d *Detector) Ready() bool { return d.ring.Full() }

// SampleHz returns the sampling frequency of the ẑ series.
func (d *Detector) SampleHz() float64 { return 1 / d.cfg.SampleInterval.Seconds() }

// Mean returns the mean of the samples currently in the window, O(1).
// When the cached spectrum is fresh (the common case: the η guard reads
// Mean right after Elasticity each tick) this is exactly the mean the
// spectrum's DC removal computed; otherwise it falls back to the ring's
// running windowed sum.
func (d *Detector) Mean() float64 {
	if d.haveSpec && d.specGen == d.gen {
		return d.specMean
	}
	n := d.ring.Len()
	if n == 0 {
		return 0
	}
	return d.ring.Sum() / float64(n)
}

// Spectrum returns the current one-sided magnitude spectrum of the ẑ
// window (mean removed). Useful for diagnostics and for reproducing
// Fig. 5 directly. The returned spectrum's Mag buffer is owned by the
// detector and valid until the next AddSample; repeated calls within one
// tick reuse the cached transform.
func (d *Detector) Spectrum() fft.Spectrum {
	if !d.haveSpec || d.specGen != d.gen {
		d.buf = d.ring.Snapshot(d.buf)
		if d.rplan != nil {
			d.spec, d.specMean = d.rplan.AnalyzeMeanInto(d.spec, d.buf)
		} else {
			d.spec, d.specMean = d.plan.AnalyzeMeanInto(d.spec, d.buf)
		}
		d.specGen = d.gen
		d.haveSpec = true
	}
	return d.spec
}

// Elasticity computes η (Eq. 3) for pulse frequency fp: the magnitude at
// fp divided by the peak magnitude in the open band (fp, 2fp). Because
// the FFT length is a power of two, fp generally falls between bins; the
// numerator takes the peak within one bin of fp and the denominator
// starts a small guard band above fp to keep spectral leakage of the fp
// peak itself out of the denominator. A denominator of zero yields a
// large capped η.
func (d *Detector) Elasticity(fp float64) float64 {
	return d.ElasticityExcluding(fp, 0)
}

// ElasticityExcluding is Elasticity with an optional second frequency
// excluded from the denominator band (±1.5 bins). The multi-flow watcher
// protocol needs this: with a pulser at fpc and the band (fpc, 2fpc)
// containing fpd, a legitimate peak at fpd must not suppress η.
func (d *Detector) ElasticityExcluding(fp, exclude float64) float64 {
	spec := d.Spectrum()
	if len(spec.Mag) == 0 || spec.Resolution == 0 {
		return 0
	}
	res := spec.Resolution
	num := spec.PeakAround(fp, res)
	den := 0.0
	for k := range spec.Mag {
		f := float64(k) * res
		if f <= fp+2*res || f >= 2*fp-res {
			continue
		}
		if exclude > 0 && f > exclude-1.5*res && f < exclude+1.5*res {
			continue
		}
		if spec.Mag[k] > den {
			den = spec.Mag[k]
		}
	}
	const etaCap = 100
	if den <= 0 {
		if num > 0 {
			return etaCap
		}
		return 0
	}
	eta := num / den
	if eta > etaCap {
		eta = etaCap
	}
	return eta
}

// Elastic applies the hard decision rule: η >= ηthresh.
func (d *Detector) Elastic(fp float64) bool {
	return d.Elasticity(fp) >= d.cfg.Threshold
}

// Threshold returns ηthresh.
func (d *Detector) Threshold() float64 { return d.cfg.Threshold }

// WindowSamples returns the number of samples in the FFT window.
func (d *Detector) WindowSamples() int { return d.ring.Cap() }
