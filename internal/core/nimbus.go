package core

import (
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// Mode is Nimbus's operating mode (§4.1).
type Mode int

// The two modes.
const (
	ModeDelay Mode = iota
	ModeCompetitive
)

func (m Mode) String() string {
	if m == ModeCompetitive {
		return "competitive"
	}
	return "delay"
}

// Role distinguishes the pulser from watchers in the multi-flow protocol
// (§6). Single Nimbus flows are always pulsers.
type Role int

// The roles.
const (
	RolePulser Role = iota
	RoleWatcher
)

func (r Role) String() string {
	if r == RoleWatcher {
		return "watcher"
	}
	return "pulser"
}

// WindowCC is the subset of congestion controllers Nimbus can run as a
// sub-algorithm: it must expose and accept a window so Nimbus can convert
// between windows and rates at mode switches.
type WindowCC interface {
	transport.Controller
	Cwnd() float64
	SetCwnd(float64)
}

// Config parameterizes a Nimbus flow.
type Config struct {
	// Mu supplies the bottleneck link rate (required). Use Oracle for
	// controlled experiments or NewMaxReceiveRate for estimation.
	Mu MuEstimator
	// PulseFraction is the pulse peak amplitude as a fraction of µ
	// (default 0.25).
	PulseFraction float64
	// FreqCompetitive (fpc) and FreqDelay (fpd) are the pulse
	// frequencies per mode. Defaults: 5 Hz and, when MultiFlow is set,
	// 6 Hz (otherwise delay mode also pulses at 5 Hz).
	FreqCompetitive float64
	FreqDelay       float64
	// Detector configures the elasticity detector.
	Detector DetectorConfig
	// BasicDelay configures Eq. 4 when Delay is nil.
	BasicDelay BasicDelayConfig
	// Competitive is the TCP-competitive algorithm (default Cubic must
	// be supplied by the caller to avoid an import cycle; see package
	// nimbuscc).
	Competitive WindowCC
	// Delay, when non-nil, is used as the delay-control algorithm
	// (e.g. Vegas or Copa default mode); when nil, BasicDelay is used.
	Delay WindowCC
	// MultiFlow enables the pulser/watcher protocol.
	MultiFlow bool
	// Kappa is the pulser-election constant of Eq. 5 (default 1).
	Kappa float64
	// ModeDwell is the minimum time between mode switches. The default
	// is the FFT duration: after a switch, the detector window still
	// spans the previous mode's dynamics, so re-deciding earlier acts
	// on stale evidence and causes flapping (and can latch the wrong
	// equilibrium against bistable cross traffic like deep-buffer BBR).
	ModeDwell sim.Time
	// StartMode is the initial mode (default ModeDelay).
	StartMode Mode
	// Pinned disables mode switching: the flow stays in StartMode. Used
	// for the paper's "delay-control without switching" baseline
	// (Fig. 1b) and for ablations.
	Pinned bool
}

// Nimbus implements transport.Controller: it transmits at the rate of the
// active sub-algorithm, modulates it with asymmetric sinusoidal pulses,
// estimates the cross-traffic rate ẑ every tick, and switches modes using
// the elasticity detector (§4).
type Nimbus struct {
	cfg Config
	env *transport.Env

	mode Mode
	role Role

	sampler RateSampler
	det     *Detector // FFT of ẑ
	rdet    *Detector // FFT of R (watchers; multi-pulser check)

	lastRTT sim.Time
	srtt    sim.Time
	xmin    sim.Time

	lastS, lastR, lastZ float64
	haveRates           bool
	rSum                float64
	rCnt                int

	rateHist  *stats.Ring // base rate per tick, FFTDuration deep
	lpFilter  *stats.EWMA // watcher low-pass on the send rate (pole 1)
	lpFilter2 *stats.EWMA // second pole: steeper roll-off at the pulse band

	startup     bool
	currentRate float64
	lastSwitch  sim.Time
	votes       []bool // recent per-tick classifications (ring)
	voteIdx     int
	voteN       int

	lastDemote sim.Time
	pulserSeen sim.Time

	// Telemetry.
	lastEta      float64
	ModeSwitches int
	// OnTick, if set, is called every detector tick with the current
	// telemetry (experiments record time series through this).
	OnTick func(t Telemetry)
}

// Telemetry is a per-tick snapshot for experiments.
type Telemetry struct {
	Now      sim.Time
	Mode     Mode
	Role     Role
	Eta      float64
	EtaReady bool
	S, R, Z  float64
	Mu       float64
	Rate     float64
	RTT      sim.Time
	MinRTT   sim.Time
}

// NewNimbus returns a Nimbus controller. cfg.Competitive and cfg.Mu are
// required.
func NewNimbus(cfg Config) *Nimbus {
	if cfg.Mu == nil {
		panic("core: Config.Mu is required")
	}
	if cfg.Competitive == nil {
		panic("core: Config.Competitive is required")
	}
	if cfg.PulseFraction == 0 {
		cfg.PulseFraction = 0.25
	}
	if cfg.FreqCompetitive == 0 {
		cfg.FreqCompetitive = 5
	}
	if cfg.FreqDelay == 0 {
		if cfg.MultiFlow {
			cfg.FreqDelay = 6
		} else {
			cfg.FreqDelay = cfg.FreqCompetitive
		}
	}
	if cfg.Kappa == 0 {
		// Eq. 5's tradeoff: smaller kappa means fewer concurrent
		// pulsers at the cost of slower election. 0.5 keeps the
		// expected election delay ~2 FFT windows while making
		// simultaneous elections rare.
		cfg.Kappa = 0.5
	}
	if cfg.BasicDelay == (BasicDelayConfig{}) {
		cfg.BasicDelay = DefaultBasicDelayConfig()
	}
	n := &Nimbus{
		cfg:  cfg,
		mode: cfg.StartMode,
		det:  NewDetector(cfg.Detector),
	}
	if n.cfg.ModeDwell == 0 {
		n.cfg.ModeDwell = n.det.Config().FFTDuration
	}
	n.rdet = NewDetector(n.det.Config())
	n.rateHist = stats.NewRing(n.det.WindowSamples())
	return n
}

// Init starts the measurement tick.
func (n *Nimbus) Init(env *transport.Env) {
	n.env = env
	n.cfg.Competitive.Init(env)
	if n.cfg.Delay != nil {
		n.cfg.Delay.Init(env)
	}
	n.startup = true
	n.currentRate = 1e6
	n.role = RolePulser
	if n.cfg.MultiFlow {
		// New flows join as watchers and only become pulsers by
		// election (§6).
		n.role = RoleWatcher
	}
	fMin := n.cfg.FreqCompetitive
	if n.cfg.FreqDelay < fMin {
		fMin = n.cfg.FreqDelay
	}
	// The paper's watcher filter "cuts off all frequencies ... that
	// exceed min(fpc, fpd)". A single-pole EWMA only attenuates 3 dB at
	// its cutoff, which would let watchers echo the pulser's oscillation
	// back into the cross traffic and confuse the pulser's detector.
	// Two cascaded poles a factor 8 below the pulse band give ~36 dB of
	// suppression at fp while still tracking congestion on ~0.3 s
	// timescales.
	alpha := stats.AlphaForCutoff(fMin/8, n.det.Config().SampleInterval.Seconds())
	n.lpFilter = stats.NewEWMA(alpha)
	n.lpFilter2 = stats.NewEWMA(alpha)
	interval := n.det.Config().SampleInterval
	var tick func()
	tick = func() {
		n.tick()
		n.env.Sch.AfterFunc(interval, tick)
	}
	// AfterFunc rides on pooled timers: the 100 Hz measurement tick is
	// never cancelled, so it needs no handle and no per-tick allocation.
	n.env.Sch.AfterFunc(interval, tick)
}

// OnAck feeds measurements and the active sub-algorithm.
func (n *Nimbus) OnAck(a transport.AckInfo) {
	n.sampler.Add(a.SentAt, a.AckedAt, a.Bytes)
	n.lastRTT = a.RTT
	if n.srtt == 0 {
		n.srtt = a.RTT
	} else {
		n.srtt += (a.RTT - n.srtt) / 8
	}
	if n.xmin == 0 || a.RTT < n.xmin {
		n.xmin = a.RTT
	}
	if n.mode == ModeCompetitive {
		n.cfg.Competitive.OnAck(a)
	} else if n.cfg.Delay != nil {
		n.cfg.Delay.OnAck(a)
	}
}

// OnLoss feeds the active sub-algorithm and ends startup.
func (n *Nimbus) OnLoss(l transport.LossInfo) {
	n.startup = false
	if n.mode == ModeCompetitive {
		n.cfg.Competitive.OnLoss(l)
	} else if n.cfg.Delay != nil {
		n.cfg.Delay.OnLoss(l)
	}
}

// pulseFreq returns the frequency the flow pulses at in its current mode.
func (n *Nimbus) pulseFreq() float64 {
	if n.mode == ModeCompetitive {
		return n.cfg.FreqCompetitive
	}
	return n.cfg.FreqDelay
}

// tick runs every SampleInterval (10 ms): measure S/R, estimate ẑ, feed
// the detectors, run role and mode logic, and recompute the send rate.
func (n *Nimbus) tick() {
	now := n.env.Sch.Now()
	window := n.srtt
	if window < 2*n.det.Config().SampleInterval {
		window = 2 * n.det.Config().SampleInterval
	}
	// Feed the µ estimator with R measured over a full pulse period
	// (not one RTT): sub-period R spikes from queue-drain bursts would
	// lock the windowed-max estimator above µ, and the resulting
	// phantom ẑ oscillates at the pulse frequency. Over a full period
	// the positive pulse half still probes the link (the queue is busy
	// at the peak) so µ is discovered, but the overshoot is bounded by
	// queue/period. This longer-window call must come first: the
	// sampler discards records older than the window it is asked for.
	period := sim.FromSeconds(1 / n.pulseFreq())
	if period < window {
		period = window
	}
	if _, rP, okP := n.sampler.Rates(now, period); okP {
		n.cfg.Mu.Observe(now, rP)
	}
	S, R, ok := n.sampler.Rates(now, window)
	if ok {
		mu := n.cfg.Mu.Mu()
		n.lastS, n.lastR = S, R
		n.lastZ = EstimateZ(mu, S, R)
		n.haveRates = true
	}
	// Keep the sample cadence fixed even when no fresh measurement is
	// available (e.g. app-limited gaps): repeat the last value.
	n.det.AddSample(n.lastZ)
	n.rdet.AddSample(n.lastR)

	if n.cfg.MultiFlow {
		n.multiFlowTick(now)
	} else if n.det.Ready() {
		n.lastEta = n.det.Elasticity(n.pulseFreq())
		n.maybeSwitch(now, n.elasticDecision(n.lastEta))
	}

	n.updateRate(now)
	n.rateHist.Push(n.baseRate())

	if n.OnTick != nil {
		n.OnTick(Telemetry{
			Now: now, Mode: n.mode, Role: n.role,
			Eta: n.lastEta, EtaReady: n.det.Ready(),
			S: n.lastS, R: n.lastR, Z: n.lastZ, Mu: n.cfg.Mu.Mu(),
			Rate: n.currentRate, RTT: n.lastRTT, MinRTT: n.xmin,
		})
	}
}

// elasticDecision applies the hard rule eta >= threshold with two
// robustness refinements over the raw Eq. 3 comparison:
//
//   - a minimum-signal guard: eta is a ratio of spectral magnitudes, so
//     with negligible cross traffic (mean ẑ under 5% of µ) it is pure
//     noise; with nothing to compete against, delay mode is correct;
//   - hysteresis: leaving competitive mode requires eta to drop below
//     3/4 of the threshold, so transient dips (e.g. a cross flow's loss
//     epoch) don't cause a 2x-FFT-duration round trip through the wrong
//     mode.
func (n *Nimbus) elasticDecision(eta float64) bool {
	thresh := n.det.Threshold()
	// eta is a ratio of spectral magnitudes: with negligible cross
	// traffic in the window it is pure noise, and with nothing to
	// compete against delay mode is the right answer regardless.
	mu := n.cfg.Mu.Mu()
	if mu > 0 && n.det.Mean() < 0.05*mu {
		return false
	}
	if n.mode == ModeCompetitive {
		thresh *= 0.75 // hysteresis: leaving competitive needs a clear drop
	}
	return eta >= thresh
}

// maybeSwitch applies the hard decision with two temporal guards: the
// dwell (no re-decision while the FFT window still spans the previous
// mode) and a majority vote over the last second of per-tick
// classifications (single-tick spikes in a noisy spectrum are not
// evidence, but a borderline mixed signal that is elastic 70% of the
// time still switches).
func (n *Nimbus) maybeSwitch(now sim.Time, elastic bool) {
	const voteWindow = 100 // ticks (1 s at the default 10 ms interval)
	if n.votes == nil {
		n.votes = make([]bool, voteWindow)
	}
	n.votes[n.voteIdx] = elastic
	n.voteIdx = (n.voteIdx + 1) % voteWindow
	if n.voteN < voteWindow {
		n.voteN++
	}
	if n.cfg.Pinned || now-n.lastSwitch < n.cfg.ModeDwell || n.voteN < voteWindow {
		return
	}
	yes := 0
	for _, v := range n.votes {
		if v {
			yes++
		}
	}
	frac := float64(yes) / float64(voteWindow)
	if n.mode == ModeDelay && frac >= 0.7 {
		n.switchToCompetitive(now)
	} else if n.mode == ModeCompetitive && frac <= 0.2 {
		// Leaving competitive mode against still-present elastic flows
		// costs throughput for a full detection period; demand a clear
		// inelastic consensus.
		n.switchToDelay(now)
	}
}

// switchToCompetitive resets the competitive window to the rate used at
// the start of the detection period (5 s ago), because the elastic cross
// traffic has been depressing the delay-mode rate while detection was in
// progress (§4.1).
func (n *Nimbus) switchToCompetitive(now sim.Time) {
	n.mode = ModeCompetitive
	n.lastSwitch = now
	n.voteN = 0
	n.ModeSwitches++
	n.startup = false
	rate := n.currentRate
	if n.rateHist.Full() {
		rate = n.rateHist.At(n.rateHist.Cap() - 1) // oldest: ~FFTDuration ago
	}
	srtt := n.srtt
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond
	}
	n.cfg.Competitive.SetCwnd(rate / 8 * srtt.Seconds())
	if n.env.Sender != nil {
		n.env.Sender.KickPacing()
	}
}

// switchToDelay hands the current rate to the delay algorithm.
func (n *Nimbus) switchToDelay(now sim.Time) {
	n.mode = ModeDelay
	n.lastSwitch = now
	n.voteN = 0
	n.ModeSwitches++
	if n.cfg.Delay != nil {
		srtt := n.srtt
		if srtt <= 0 {
			srtt = 100 * sim.Millisecond
		}
		n.cfg.Delay.SetCwnd(n.currentRate / 8 * srtt.Seconds())
	}
}

// baseRate computes the un-pulsed rate dictated by the active algorithm.
func (n *Nimbus) baseRate() float64 {
	srtt := n.srtt
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond
	}
	if n.mode == ModeCompetitive {
		return n.cfg.Competitive.Cwnd() * 8 / srtt.Seconds()
	}
	if n.cfg.Delay != nil {
		return n.cfg.Delay.Cwnd() * 8 / srtt.Seconds()
	}
	// BasicDelay (Eq. 4), with a doubling startup until the queue target
	// is reached so the µ estimator has something to measure.
	mu := n.cfg.Mu.Mu()
	if n.startup {
		if n.haveRates && n.lastRTT > n.xmin+n.cfg.BasicDelay.TargetDelay && n.xmin > 0 {
			n.startup = false
		} else {
			r := 2 * n.lastS
			if r < 1e6 {
				r = 1e6
			}
			if mu > 0 && r > mu {
				r = mu
				n.startup = false
			}
			return r
		}
	}
	if !n.haveRates || mu <= 0 {
		return n.currentRate
	}
	return BasicDelayRate(n.cfg.BasicDelay, mu, n.lastS, n.lastZ, n.lastRTT, n.xmin)
}

// updateRate recomputes the pulsed/filtered send rate.
func (n *Nimbus) updateRate(now sim.Time) {
	base := n.baseRate()
	mu := n.cfg.Mu.Mu()
	amp := n.cfg.PulseFraction * mu
	if n.role == RolePulser && amp > 0 && !n.startup {
		// The pulse must be the only pulse-band content in the send
		// rate: BasicDelay's -alpha*z term would otherwise chase the
		// z-estimator's own measurement artifacts at fp and resonate,
		// making smooth inelastic traffic look elastic. Low-pass the
		// base, then add the deliberate pulse.
		base = n.lpFilter2.Add(n.lpFilter.Add(base))
		p := Pulse{Freq: n.pulseFreq(), Amplitude: amp}
		floor := p.MinBaseRate()
		if base < floor {
			base = floor
		}
		n.currentRate = base + p.Offset(now)
	} else if n.role == RoleWatcher {
		// Watchers low-pass their rate so they do not echo the pulser's
		// oscillation back into the cross traffic (§6).
		n.currentRate = n.lpFilter2.Add(n.lpFilter.Add(base))
	} else {
		n.currentRate = base
	}
	min := 2 * float64(n.env.MSS) * 8 / 0.1 // 2 packets per 100 ms
	if n.currentRate < min {
		n.currentRate = min
	}
}

// Control paces at the pulsed rate with a generous window cap.
func (n *Nimbus) Control() transport.Transmission {
	srtt := n.srtt
	if srtt <= 0 {
		srtt = 100 * sim.Millisecond
	}
	cap := 2 * n.cfg.Mu.Mu() / 8 * srtt.Seconds()
	if c := 2 * n.cfg.Competitive.Cwnd(); n.mode == ModeCompetitive && c > cap {
		cap = c
	}
	if cap < 8*float64(n.env.MSS) {
		cap = 8 * float64(n.env.MSS)
	}
	return transport.Transmission{CwndBytes: int(cap), PaceBps: n.currentRate}
}

// Mode returns the current operating mode.
func (n *Nimbus) Mode() Mode { return n.mode }

// Role returns pulser or watcher.
func (n *Nimbus) Role() Role { return n.role }

// LastEta returns the most recent elasticity value (0 until ready).
func (n *Nimbus) LastEta() float64 { return n.lastEta }

// Detector exposes the ẑ detector (diagnostics, Fig. 5).
func (n *Nimbus) Detector() *Detector { return n.det }

// ZEstimate returns the latest cross-traffic rate estimate in bits/s.
func (n *Nimbus) ZEstimate() float64 { return n.lastZ }

// Rates returns the latest (S, R) measurement in bits/s.
func (n *Nimbus) Rates() (S, R float64) { return n.lastS, n.lastR }
