package core

import "nimbus/internal/sim"

// BasicDelayConfig holds the parameters of Eq. 4. The evaluation uses
// α = 0.8, β = 0.5, dt = 12.5 ms (§8.1).
type BasicDelayConfig struct {
	Alpha       float64  // fraction of spare capacity claimed per update
	Beta        float64  // gain on the delay error term
	TargetDelay sim.Time // dt: target queueing delay (keeps ẑ measurable)
}

// DefaultBasicDelayConfig returns the paper's parameters.
func DefaultBasicDelayConfig() BasicDelayConfig {
	return BasicDelayConfig{Alpha: 0.8, Beta: 0.5, TargetDelay: 12500 * sim.Microsecond}
}

// BasicDelayRate computes the BasicDelay sending rate (Eq. 4):
//
//	rate ← S + α(µ − S − z) + β·(µ/x)·(xmin + dt − x)
//
// where S is the measured send rate, z the estimated cross-traffic rate,
// x the current RTT and xmin the minimum observed RTT. The first
// correction claims a fraction of the estimated spare capacity; the
// second steers the queueing delay toward dt, which keeps the bottleneck
// queue non-empty so the cross-traffic estimator stays valid. The
// function is memoryless given the measurements, so Nimbus needs no
// state reset when switching into delay mode with BasicDelay.
func BasicDelayRate(cfg BasicDelayConfig, mu, S, z float64, x, xmin sim.Time) float64 {
	if x <= 0 {
		return S
	}
	spare := mu - S - z
	delayErr := (xmin + cfg.TargetDelay - x).Seconds()
	rate := S + cfg.Alpha*spare + cfg.Beta*mu/x.Seconds()*delayErr
	if rate < 0 {
		rate = 0
	}
	if rate > mu {
		rate = mu
	}
	return rate
}
