package core

import (
	"math"

	"nimbus/internal/sim"
)

// Pulse generates the asymmetric sinusoidal pulse of Fig. 7: during the
// first quarter of each period the sender adds a half-sine of amplitude
// Amplitude to its rate; during the remaining three quarters it subtracts
// a half-sine of amplitude Amplitude/3. The two halves integrate to zero
// over one period, so pulsing leaves the mean rate unchanged while
// perturbing inter-packet spacing of the cross traffic at frequency Freq.
//
// The asymmetry matters for deployability: with peak amplitude µ/4 a
// sender needs a base rate of only µ/12 to pulse (the magnitude of the
// negative half), versus µ/4 for a symmetric pulse (§3.4).
type Pulse struct {
	Freq      float64 // pulses per second (fp), e.g. 5
	Amplitude float64 // peak rate offset in bits/s, e.g. µ/4
}

// Offset returns the rate offset at time t. The pulse phase is absolute
// (t mod 1/Freq), so all computations of the same pulse agree.
func (p Pulse) Offset(t sim.Time) float64 {
	if p.Freq <= 0 || p.Amplitude == 0 {
		return 0
	}
	period := 1 / p.Freq
	phase := math.Mod(t.Seconds(), period)
	if phase < 0 {
		phase += period
	}
	quarter := period / 4
	if phase < quarter {
		// Positive half-sine over [0, T/4).
		return p.Amplitude * math.Sin(math.Pi*phase/quarter)
	}
	// Negative half-sine over [T/4, T), amplitude A/3.
	rest := period - quarter
	return -p.Amplitude / 3 * math.Sin(math.Pi*(phase-quarter)/rest)
}

// MinBaseRate returns the smallest base sending rate that keeps the
// pulsed rate nonnegative: the magnitude of the negative half-sine.
func (p Pulse) MinBaseRate() float64 { return p.Amplitude / 3 }

// BurstBytes returns the extra bytes sent above the mean during the
// positive quarter of one pulse: A/8·(2/π)·T... concretely the integral
// of the positive half-sine: Amplitude * (T/4) * (2/π) / 8 bytes.
func (p Pulse) BurstBytes() float64 {
	if p.Freq <= 0 {
		return 0
	}
	period := 1 / p.Freq
	return p.Amplitude * (period / 4) * (2 / math.Pi) / 8
}
