package core

import (
	"testing"

	"nimbus/internal/cc"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

type rig struct {
	sch  *sim.Scheduler
	link *netem.Link
	net  *netem.Network
	rng  *sim.Rand
	mu   float64
}

func newRig(rateMbps float64, buf sim.Time) *rig {
	sch := sim.NewScheduler()
	rate := rateMbps * 1e6
	link := netem.NewLink(sch, rate, netem.NewDropTail(netem.BufferBytesForDelay(rate, buf)))
	return &rig{sch: sch, link: link, net: netem.NewNetwork(sch, link), rng: sim.NewRand(11), mu: rate}
}

func (r *rig) nimbus(cfg Config, rtt sim.Time) (*Nimbus, *transport.Sender) {
	if cfg.Mu == nil {
		cfg.Mu = Oracle{Rate: r.mu}
	}
	if cfg.Competitive == nil {
		cfg.Competitive = cc.NewCubic()
	}
	n := NewNimbus(cfg)
	s := transport.NewSender(r.net, rtt, n, transport.Backlogged{}, r.rng.Split("nimbus"))
	s.Start(0)
	return n, s
}

func (r *rig) cubic(rtt sim.Time, start sim.Time) *transport.Sender {
	s := transport.NewSender(r.net, rtt, cc.NewCubic(), transport.Backlogged{}, r.rng.Split("cubic"))
	s.Start(start)
	return s
}

func mbpsOver(s *transport.Sender, dur sim.Time) float64 {
	return float64(s.DeliveredBytes) * 8 / dur.Seconds() / 1e6
}

// modeFraction runs telemetry accounting: fraction of ticks (after warmup)
// spent in competitive mode.
type modeAccount struct {
	comp, total int
}

func attach(n *Nimbus, warmup sim.Time) *modeAccount {
	acc := &modeAccount{}
	prev := n.OnTick
	n.OnTick = func(t Telemetry) {
		if prev != nil {
			prev(t)
		}
		if t.Now < warmup {
			return
		}
		acc.total++
		if t.Mode == ModeCompetitive {
			acc.comp++
		}
	}
	return acc
}

func (m *modeAccount) fracCompetitive() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.comp) / float64(m.total)
}

func TestNimbusAloneStaysDelayMode(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	n, s := r.nimbus(Config{}, 50*sim.Millisecond)
	acc := attach(n, 10*sim.Second)
	var delaySum float64
	var delayN int
	r.net.OnDeliver(func(p *netem.Packet, now sim.Time) {
		if now > 10*sim.Second {
			delaySum += p.QueueDelay.Millis()
			delayN++
		}
	})
	dur := 60 * sim.Second
	r.sch.RunUntil(dur)
	if got := mbpsOver(s, dur); got < 80 {
		t.Fatalf("Nimbus solo throughput = %.1f, want >= 80", got)
	}
	if f := acc.fracCompetitive(); f > 0.2 {
		t.Fatalf("Nimbus alone spent %.0f%% in competitive mode", f*100)
	}
	if mean := delaySum / float64(delayN); mean > 30 {
		t.Fatalf("Nimbus solo mean queueing delay = %.1f ms, want low", mean)
	}
}

func TestNimbusDetectsElasticCross(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	n, s := r.nimbus(Config{}, 50*sim.Millisecond)
	r.cubic(50*sim.Millisecond, 0)
	acc := attach(n, 10*sim.Second)
	dur := 60 * sim.Second
	r.sch.RunUntil(dur)
	// Sustained competition cycles: when Nimbus's Cubic periodically
	// crushes the cross flow, z genuinely collapses and the detector
	// (correctly) reports no elastic traffic for a few seconds; the
	// paper's Fig 8 run shows such intervals too.
	if f := acc.fracCompetitive(); f < 0.6 {
		t.Fatalf("vs Cubic: competitive fraction = %.2f, want >= 0.6", f)
	}
	// Fair share is 48; Nimbus must get a substantial share.
	if got := mbpsOver(s, dur); got < 30 {
		t.Fatalf("Nimbus vs Cubic throughput = %.1f, want >= 30", got)
	}
}

func TestNimbusDetectsInelasticCross(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	n, s := r.nimbus(Config{}, 50*sim.Millisecond)
	ct := crosstraffic.NewPoisson(r.net, 40*sim.Millisecond, 48e6, r.rng.Split("poisson"))
	ct.Start(0)
	acc := attach(n, 10*sim.Second)
	var delaySum float64
	var delayN int
	r.net.OnDeliver(func(p *netem.Packet, now sim.Time) {
		if now > 10*sim.Second {
			delaySum += p.QueueDelay.Millis()
			delayN++
		}
	})
	dur := 60 * sim.Second
	r.sch.RunUntil(dur)
	if f := acc.fracCompetitive(); f > 0.15 {
		t.Fatalf("vs Poisson: competitive fraction = %.2f, want <= 0.15", f)
	}
	// Nimbus should claim most of the remaining ~48 Mbit/s.
	if got := mbpsOver(s, dur); got < 35 {
		t.Fatalf("Nimbus vs Poisson throughput = %.1f, want >= 35", got)
	}
	if mean := delaySum / float64(delayN); mean > 35 {
		t.Fatalf("mean queueing delay vs inelastic = %.1f ms, want low", mean)
	}
}

// The Fig 1 scenario: elastic phase then inelastic phase; Nimbus must
// switch modes in both directions.
func TestNimbusModeSwitchingSequence(t *testing.T) {
	r := newRig(48, 100*sim.Millisecond)
	n, _ := r.nimbus(Config{}, 50*sim.Millisecond)
	// Elastic: Cubic from 20 s to 80 s.
	cu := transport.NewSender(r.net, 50*sim.Millisecond, cc.NewCubic(), transport.Backlogged{}, r.rng.Split("cu"))
	cu.Start(20 * sim.Second)
	r.sch.At(80*sim.Second, func() {
		cu.Stop()
		r.net.Detach(cu.ID())
	})
	// Inelastic: 24 Mbit/s Poisson from 90 s to 150 s.
	po := crosstraffic.NewPoisson(r.net, 40*sim.Millisecond, 24e6, r.rng.Split("po"))
	po.Start(90 * sim.Second)
	r.sch.At(150*sim.Second, func() { po.Stop() })

	elasticAcc := &modeAccount{}
	inelasticAcc := &modeAccount{}
	n.OnTick = func(tel Telemetry) {
		switch {
		case tel.Now > 30*sim.Second && tel.Now < 80*sim.Second:
			elasticAcc.total++
			if tel.Mode == ModeCompetitive {
				elasticAcc.comp++
			}
		case tel.Now > 100*sim.Second && tel.Now < 150*sim.Second:
			inelasticAcc.total++
			if tel.Mode == ModeCompetitive {
				inelasticAcc.comp++
			}
		}
	}
	r.sch.RunUntil(160 * sim.Second)
	if f := elasticAcc.fracCompetitive(); f < 0.6 {
		t.Fatalf("elastic phase competitive fraction = %.2f, want >= 0.6", f)
	}
	if f := inelasticAcc.fracCompetitive(); f > 0.3 {
		t.Fatalf("inelastic phase competitive fraction = %.2f, want <= 0.3", f)
	}
	if n.ModeSwitches == 0 {
		t.Fatal("no mode switches recorded")
	}
}

func TestNimbusEtaSeparation(t *testing.T) {
	// η against a Cubic flow must be well above η against Poisson.
	etaFor := func(elastic bool) float64 {
		r := newRig(96, 100*sim.Millisecond)
		n, _ := r.nimbus(Config{}, 50*sim.Millisecond)
		if elastic {
			r.cubic(50*sim.Millisecond, 0)
		} else {
			crosstraffic.NewPoisson(r.net, 40*sim.Millisecond, 48e6, r.rng.Split("p")).Start(0)
		}
		sum, cnt := 0.0, 0
		n.OnTick = func(tel Telemetry) {
			if tel.Now > 20*sim.Second && tel.EtaReady {
				sum += tel.Eta
				cnt++
			}
		}
		r.sch.RunUntil(40 * sim.Second)
		return sum / float64(cnt)
	}
	el := etaFor(true)
	inel := etaFor(false)
	if el < 2 {
		t.Fatalf("mean eta vs Cubic = %.2f, want >= 2", el)
	}
	if inel > 2 {
		t.Fatalf("mean eta vs Poisson = %.2f, want < 2", inel)
	}
	if el < 2*inel {
		t.Fatalf("eta separation too small: elastic %.2f vs inelastic %.2f", el, inel)
	}
}

func TestNimbusZEstimateTracksCrossRate(t *testing.T) {
	// §3.1: the z estimator error should be small against a known CBR.
	r := newRig(96, 100*sim.Millisecond)
	n, _ := r.nimbus(Config{}, 50*sim.Millisecond)
	cbr := crosstraffic.NewCBR(r.net, 40*sim.Millisecond, 40e6)
	cbr.Start(0)
	var errSum float64
	var cnt int
	n.OnTick = func(tel Telemetry) {
		if tel.Now > 15*sim.Second && tel.Z > 0 {
			rel := (tel.Z - 40e6) / 40e6
			if rel < 0 {
				rel = -rel
			}
			errSum += rel
			cnt++
		}
	}
	r.sch.RunUntil(45 * sim.Second)
	if cnt == 0 {
		t.Fatal("no z estimates")
	}
	if mean := errSum / float64(cnt); mean > 0.25 {
		t.Fatalf("mean relative z error = %.2f, want < 0.25", mean)
	}
}

func TestNimbusWithVegasDelayAlg(t *testing.T) {
	// Nimbus can run Vegas as its delay algorithm (§4.1).
	r := newRig(96, 100*sim.Millisecond)
	_, s := r.nimbus(Config{Delay: cc.NewVegas()}, 50*sim.Millisecond)
	dur := 40 * sim.Second
	r.sch.RunUntil(dur)
	if got := mbpsOver(s, dur); got < 70 {
		t.Fatalf("Nimbus(Vegas) solo throughput = %.1f", got)
	}
}

func TestNimbusWithCopaDelayAlg(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	_, s := r.nimbus(Config{Delay: cc.NewCopaDefaultMode()}, 50*sim.Millisecond)
	dur := 40 * sim.Second
	r.sch.RunUntil(dur)
	if got := mbpsOver(s, dur); got < 70 {
		t.Fatalf("Nimbus(Copa) solo throughput = %.1f", got)
	}
}

func TestNimbusWithRenoCompetitive(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	n, s := r.nimbus(Config{Competitive: cc.NewReno()}, 50*sim.Millisecond)
	r.cubic(50*sim.Millisecond, 0)
	acc := attach(n, 10*sim.Second)
	dur := 60 * sim.Second
	r.sch.RunUntil(dur)
	if f := acc.fracCompetitive(); f < 0.7 {
		t.Fatalf("competitive fraction with Reno = %.2f", f)
	}
	// NewReno is genuinely less aggressive than Cubic at this BDP; the
	// paper (§7) notes unfairness when the competitive algorithm differs
	// from the cross traffic's. We only require a usable share.
	if got := mbpsOver(s, dur); got < 12 {
		t.Fatalf("Nimbus(Reno) vs Cubic = %.1f Mbit/s", got)
	}
}

func TestNimbusMuEstimatorMode(t *testing.T) {
	// With the BBR-style µ estimator instead of the oracle, Nimbus should
	// still fill the link alone and stay in delay mode.
	r := newRig(96, 100*sim.Millisecond)
	n, s := r.nimbus(Config{Mu: NewMaxReceiveRate(0)}, 50*sim.Millisecond)
	acc := attach(n, 15*sim.Second)
	dur := 60 * sim.Second
	r.sch.RunUntil(dur)
	if got := mbpsOver(s, dur); got < 60 {
		t.Fatalf("throughput with estimated mu = %.1f", got)
	}
	if f := acc.fracCompetitive(); f > 0.3 {
		t.Fatalf("estimated-mu solo competitive fraction = %.2f", f)
	}
}

func TestMultiFlowElectsOnePulser(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	var flows []*Nimbus
	var senders []*transport.Sender
	for i := 0; i < 3; i++ {
		n, s := r.nimbus(Config{MultiFlow: true}, 50*sim.Millisecond)
		flows = append(flows, n)
		senders = append(senders, s)
	}
	// Count pulsers over time after convergence.
	samples, multi, zero := 0, 0, 0
	var probe func()
	probe = func() {
		if r.sch.Now() > 30*sim.Second {
			pulsers := 0
			for _, n := range flows {
				if n.Role() == RolePulser {
					pulsers++
				}
			}
			samples++
			if pulsers > 1 {
				multi++
			}
			if pulsers == 0 {
				zero++
			}
		}
		r.sch.After(100*sim.Millisecond, probe)
	}
	r.sch.After(0, probe)
	dur := 90 * sim.Second
	r.sch.RunUntil(dur)
	if samples == 0 {
		t.Fatal("no samples")
	}
	if frac := float64(multi) / float64(samples); frac > 0.2 {
		t.Fatalf("multiple pulsers %d%% of the time", int(frac*100))
	}
	if frac := float64(zero) / float64(samples); frac > 0.5 {
		t.Fatalf("no pulser %d%% of the time", int(frac*100))
	}
	// Fairness: all three flows should get a reasonable share.
	total := 0.0
	for _, s := range senders {
		total += mbpsOver(s, dur)
	}
	if total < 70 {
		t.Fatalf("aggregate throughput = %.1f", total)
	}
	for i, s := range senders {
		if got := mbpsOver(s, dur); got < total/3*0.4 {
			t.Fatalf("flow %d got %.1f of %.1f total", i, got, total)
		}
	}
}

func TestMultiFlowStaysDelayModeWithoutCross(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	var accs []*modeAccount
	for i := 0; i < 3; i++ {
		n, _ := r.nimbus(Config{MultiFlow: true}, 50*sim.Millisecond)
		accs = append(accs, attach(n, 30*sim.Second))
	}
	r.sch.RunUntil(90 * sim.Second)
	for i, acc := range accs {
		if f := acc.fracCompetitive(); f > 0.35 {
			t.Fatalf("flow %d spent %.0f%% in competitive mode with no cross traffic", i, f*100)
		}
	}
}

func TestMultiFlowFollowsPulserToCompetitive(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	var accs []*modeAccount
	for i := 0; i < 2; i++ {
		n, _ := r.nimbus(Config{MultiFlow: true}, 50*sim.Millisecond)
		accs = append(accs, attach(n, 40*sim.Second))
	}
	r.cubic(50*sim.Millisecond, 20*sim.Second)
	r.sch.RunUntil(90 * sim.Second)
	for i, acc := range accs {
		if f := acc.fracCompetitive(); f < 0.5 {
			t.Fatalf("flow %d competitive fraction = %.2f vs elastic cross", i, f)
		}
	}
}
