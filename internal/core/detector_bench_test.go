package core

import (
	"math"
	"testing"

	"nimbus/internal/fft"
)

func warmDetector() *Detector {
	det := NewDetector(DefaultDetectorConfig())
	for i := 0; i < det.WindowSamples(); i++ {
		det.AddSample(48e6 + 6e6*math.Sin(2*math.Pi*5*float64(i)*0.01))
	}
	// Warm the spectrum cache buffers so steady state owns its memory.
	det.AddSample(48e6)
	if det.Elasticity(5) <= 0 {
		panic("warmDetector: no elasticity signal")
	}
	return det
}

// The per-tick detector work — one sample push plus one η evaluation —
// must be allocation-free once the plan and scratch buffers are warm.
func TestDetectorTickAllocFree(t *testing.T) {
	det := warmDetector()
	allocs := testing.AllocsPerRun(200, func() {
		det.AddSample(48e6)
		if det.Elasticity(5) <= 0 {
			t.Fatal("eta <= 0")
		}
	})
	if allocs > 0 {
		t.Fatalf("detector tick allocates %.2f/op in steady state, want 0", allocs)
	}
}

// The spectrum is cached per push generation: repeated spectral reads in
// one tick reuse the transform, and the next AddSample invalidates it.
func TestDetectorSpectrumCachedPerGeneration(t *testing.T) {
	det := warmDetector()
	s1 := det.Spectrum()
	s2 := det.Spectrum()
	if &s1.Mag[0] != &s2.Mag[0] {
		t.Fatal("repeated Spectrum calls recomputed into a new buffer")
	}
	at5 := s1.At(5)
	// Same-generation reads through Elasticity agree with the cache.
	if eta := det.Elasticity(5); eta <= 0 {
		t.Fatal("eta <= 0")
	}
	det.AddSample(0) // new generation: cache must refresh
	s3 := det.Spectrum()
	if s3.At(5) == at5 {
		t.Fatal("Spectrum did not refresh after AddSample")
	}
	// The refreshed cache matches a from-scratch analysis of the window.
	buf := det.ring.Snapshot(nil)
	want := fft.Analyze(buf, det.SampleHz())
	for k := range want.Mag {
		if s3.Mag[k] != want.Mag[k] {
			t.Fatalf("bin %d: cached %v, fresh %v", k, s3.Mag[k], want.Mag[k])
		}
	}
}

// Mean is O(1) both through the cached spectrum (same generation as the
// last spectral read) and through the ring's running sum, and both agree
// with a direct summation to floating-point accuracy.
func TestDetectorMeanMatchesWindow(t *testing.T) {
	det := NewDetector(DefaultDetectorConfig())
	for i := 0; i < det.WindowSamples()+137; i++ {
		det.AddSample(float64(i%91) * 1e5)
	}
	buf := det.ring.Snapshot(nil)
	direct := 0.0
	for _, v := range buf {
		direct += v
	}
	direct /= float64(len(buf))
	if got := det.Mean(); math.Abs(got-direct) > 1e-6*math.Abs(direct) {
		t.Fatalf("running-sum Mean = %v, direct = %v", got, direct)
	}
	det.Spectrum() // prime the cache; Mean must now be the exact DC mean
	if got := det.Mean(); got != direct {
		// The cached mean is computed by direct summation of the snapshot,
		// so it must match bit for bit.
		t.Fatalf("cached Mean = %v, direct = %v (want bit-identical)", got, direct)
	}
}

// BenchmarkDetectorTick is the Nimbus hot path: one ẑ sample and one η
// evaluation per 10 ms tick.
func BenchmarkDetectorTick(b *testing.B) {
	det := warmDetector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.AddSample(48e6)
		if det.Elasticity(5) <= 0 {
			b.Fatal("eta <= 0")
		}
	}
}
