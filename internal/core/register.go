package core

import (
	"fmt"

	"nimbus/internal/cc"
	"nimbus/internal/scheme"
	"nimbus/internal/transport"
)

// The Nimbus scheme family registers itself here: the paper's default
// (Cubic + BasicDelay) and its sub-algorithm variants, plus the pinned
// single-mode ablations. The typed parameters replace the old SchemeOpts
// grab-bag — every knob an experiment used to set through options is a
// declared, documented spec parameter ("nimbus(pulse=0.1,mu=est)").

// nimbusParams are the parameters shared by the whole family; switching
// schemes additionally declare "start".
func nimbusParams() []scheme.Param {
	return []scheme.Param{
		{Name: "pulse", Kind: scheme.KindFloat, Default: scheme.Num(0.25),
			Doc: "pulse peak amplitude as a fraction of µ"},
		{Name: "fp", Kind: scheme.KindFloat, Default: scheme.Num(0),
			Doc: "pulse frequency in Hz (0 = per-mode defaults: 5 competitive, 5 or 6 delay)"},
		{Name: "mu", Kind: scheme.KindString, Default: scheme.Str("oracle"),
			Enum: []string{"oracle", "est"},
			Doc:  "µ source: the true link rate, or the BBR-style max-receive-rate estimator"},
		{Name: "multiflow", Kind: scheme.KindBool, Default: scheme.Flag(false),
			Doc: "enable the pulser/watcher multi-flow protocol (§6)"},
		{Name: "rfft", Kind: scheme.KindBool, Default: scheme.Flag(false),
			Doc: "use the packed real-input FFT for the detector (faster; spectra match the default path to ~1e-12, not bit-exact)"},
	}
}

// registerNimbus registers one family member. delay/comp build the
// sub-algorithms (nil delay = BasicDelay, nil comp = Cubic); pinned
// members stay in startMode forever and do not declare "start".
func registerNimbus(name, doc string, delay, comp func() WindowCC, pinned bool, startMode Mode) {
	params := nimbusParams()
	if !pinned {
		params = append(params, scheme.Param{
			Name: "start", Kind: scheme.KindString, Default: scheme.Str("delay"),
			Enum: []string{"delay", "competitive"},
			Doc:  "initial mode (against bistable cross traffic the start selects the equilibrium)",
		})
	}
	scheme.Register(name, doc, params, func(ctx scheme.BuildContext, a scheme.Args) (transport.Controller, error) {
		if a.Float("pulse") <= 0 {
			return nil, fmt.Errorf("pulse must be > 0, got %g", a.Float("pulse"))
		}
		if a.Float("fp") < 0 {
			return nil, fmt.Errorf("fp must be >= 0, got %g", a.Float("fp"))
		}
		// "oracle" means the true link rate: the context's µ estimator
		// when the rig supplies one (time-varying links pass the link
		// oracle), the fixed nominal rate otherwise. An explicit "est"
		// always gets the estimator — the context must not silently
		// upgrade a flow that asked to live without oracle knowledge.
		var mu MuEstimator
		switch {
		case a.Str("mu") == "est":
			mu = NewMaxReceiveRate(0)
		case ctx.Mu != nil:
			mu = ctx.Mu
		default:
			mu = Oracle{Rate: ctx.MuBps}
		}
		cfg := Config{
			Mu:            mu,
			PulseFraction: a.Float("pulse"),
			MultiFlow:     a.Bool("multiflow"),
			Pinned:        pinned,
			StartMode:     startMode,
		}
		cfg.Detector.RFFT = a.Bool("rfft")
		if comp != nil {
			cfg.Competitive = comp()
		} else {
			cfg.Competitive = cc.NewCubic()
		}
		if delay != nil {
			cfg.Delay = delay()
		}
		if !pinned && a.Str("start") == "competitive" {
			cfg.StartMode = ModeCompetitive
		}
		if fp := a.Float("fp"); fp > 0 {
			cfg.FreqCompetitive = fp
			if !cfg.MultiFlow {
				cfg.FreqDelay = fp
			} else {
				cfg.FreqDelay = fp + 1
			}
		}
		return NewNimbus(cfg), nil
	})
}

func init() {
	registerNimbus("nimbus", "Nimbus: Cubic + BasicDelay with elasticity-based mode switching (the paper's default)",
		nil, nil, false, ModeDelay)
	registerNimbus("nimbus-copa", "Nimbus with Copa default mode as the delay-control algorithm",
		func() WindowCC { return cc.NewCopaDefaultMode() }, nil, false, ModeDelay)
	registerNimbus("nimbus-vegas", "Nimbus with Vegas as the delay-control algorithm",
		func() WindowCC { return cc.NewVegas() }, nil, false, ModeDelay)
	registerNimbus("nimbus-reno", "Nimbus with NewReno as the TCP-competitive algorithm",
		nil, func() WindowCC { return cc.NewReno() }, false, ModeDelay)
	registerNimbus("nimbus-delay", "delay-control pinned: no mode switching (Fig. 1b's baseline)",
		nil, nil, true, ModeDelay)
	registerNimbus("nimbus-competitive", "TCP-competitive pinned: no mode switching (ablation)",
		nil, nil, true, ModeCompetitive)
}
