package core

import (
	"nimbus/internal/sim"
)

// This file implements the pulser/watcher coordination protocol of §6.
//
// One Nimbus flow (the pulser) pulses at fpc in competitive mode and fpd
// in delay mode. Watchers do not pulse; they infer the pulser's mode by
// comparing the FFT of their own receive rate at the two frequencies and
// follow it. There is no explicit communication: election is randomized
// (Eq. 5), and concurrent pulsers detect each other by observing more
// energy at the pulse frequency in the cross traffic than in their own
// receive rate.

// watcherSignal computes the watcher's decision metrics: the
// elasticity-style ratios at fpc and fpd over the receive-rate spectrum,
// each excluding the other frequency from its denominator band.
func (n *Nimbus) watcherSignal() (etaC, etaD float64) {
	etaC = n.rdet.ElasticityExcluding(n.cfg.FreqCompetitive, n.cfg.FreqDelay)
	etaD = n.rdet.ElasticityExcluding(n.cfg.FreqDelay, n.cfg.FreqCompetitive)
	return etaC, etaD
}

// multiFlowTick runs the §6 role state machine once per detector tick.
func (n *Nimbus) multiFlowTick(now sim.Time) {
	if !n.rdet.Ready() {
		return
	}
	thresh := n.det.Threshold()
	switch n.role {
	case RoleWatcher:
		etaC, etaD := n.watcherSignal()
		if etaC >= thresh || etaD >= thresh {
			// A pulser exists; adopt its mode.
			n.pulserSeen = now
			n.lastEta = etaC
			if etaD > etaC {
				n.lastEta = etaD
			}
			if etaC >= etaD {
				n.maybeSwitch(now, true)
			} else {
				n.maybeSwitch(now, false)
			}
			return
		}
		// No pulser detected: run the randomized election (Eq. 5),
		// but not while a recently-seen pulser's signal may simply
		// still be fading out of the FFT window (prevents churn).
		if n.pulserSeen != 0 && now-n.pulserSeen < n.det.Config().FFTDuration {
			return
		}
		mu := n.cfg.Mu.Mu()
		if mu <= 0 || n.lastR <= 0 {
			return
		}
		tickFrac := n.det.Config().SampleInterval.Seconds() / n.det.Config().FFTDuration.Seconds()
		p := n.cfg.Kappa * tickFrac * n.lastR / mu
		if n.env.Rand != nil && n.env.Rand.Float64() < p {
			n.role = RolePulser
			n.lastDemote = now
		}
	case RolePulser:
		// Normal elasticity detection on ẑ, at the current mode's
		// frequency, excluding the other frequency (another pulser's
		// legitimate signal must not masquerade as elastic response).
		if n.det.Ready() {
			other := n.cfg.FreqDelay
			if n.mode == ModeDelay {
				other = n.cfg.FreqCompetitive
			}
			n.lastEta = n.det.ElasticityExcluding(n.pulseFreq(), other)
			n.maybeSwitch(now, n.elasticDecision(n.lastEta))
		}
		// Multi-pulser detection: if the cross traffic has more energy
		// at fp than our own receive rate does, someone else is pulsing
		// too; back off to watcher with probability 1/2, at most once
		// per FFT window so both pulsers don't flap in lockstep. The
		// check only runs in delay mode: in competitive mode elastic
		// cross traffic legitimately responds at fp with an amplitude
		// comparable to the pulse, which would masquerade as a second
		// pulser and churn the pulser role.
		if n.mode != ModeDelay || now-n.lastDemote < n.det.Config().FFTDuration {
			return
		}
		n.lastDemote = now
		fp := n.pulseFreq()
		zspec := n.det.Spectrum()
		rspec := n.rdet.Spectrum()
		if len(zspec.Mag) == 0 || len(rspec.Mag) == 0 {
			return
		}
		zPeak := zspec.PeakAround(fp, zspec.Resolution)
		rPeak := rspec.PeakAround(fp, rspec.Resolution)
		if zPeak > 1.5*rPeak && n.env.Rand != nil && n.env.Rand.Float64() < 0.5 {
			n.role = RoleWatcher
			n.pulserSeen = now // assume the other pulser persists
		}
	}
}
