package core

import (
	"math"
	"testing"
)

// rfftDetector is warmDetector with the packed real-input path enabled.
func rfftDetector() *Detector {
	cfg := DefaultDetectorConfig()
	cfg.RFFT = true
	det := NewDetector(cfg)
	for i := 0; i < det.WindowSamples(); i++ {
		det.AddSample(48e6 + 6e6*math.Sin(2*math.Pi*5*float64(i)*0.01))
	}
	det.AddSample(48e6)
	if det.Elasticity(5) <= 0 {
		panic("rfftDetector: no elasticity signal")
	}
	return det
}

// The packed path must agree with the default path on the quantities the
// controller consumes — η at the pulse frequency and the window mean —
// to well within any decision margin, fed the identical sample stream.
func TestDetectorRFFTMatchesDefaultPath(t *testing.T) {
	cfg := DefaultDetectorConfig()
	rcfg := cfg
	rcfg.RFFT = true
	a, b := NewDetector(cfg), NewDetector(rcfg)
	if a.WindowSamples() != b.WindowSamples() {
		t.Fatalf("window mismatch: %d vs %d", a.WindowSamples(), b.WindowSamples())
	}
	push := func(v float64) {
		a.AddSample(v)
		b.AddSample(v)
	}
	for i := 0; i < a.WindowSamples()+50; i++ {
		push(48e6 + 6e6*math.Sin(2*math.Pi*5*float64(i)*0.01) + 1e6*math.Sin(2*math.Pi*11*float64(i)*0.01))
	}
	etaA, etaB := a.Elasticity(5), b.Elasticity(5)
	if d := math.Abs(etaA - etaB); d > 1e-6*etaA {
		t.Fatalf("eta diverged: default %v rfft %v", etaA, etaB)
	}
	if a.Elastic(5) != b.Elastic(5) {
		t.Fatalf("elastic decision diverged: default %v rfft %v", a.Elastic(5), b.Elastic(5))
	}
	// Window mean comes from the same in-order summation on both paths.
	if a.Mean() != b.Mean() {
		t.Fatalf("mean diverged: default %v rfft %v", a.Mean(), b.Mean())
	}
	sa, sb := a.Spectrum(), b.Spectrum()
	if len(sa.Mag) != len(sb.Mag) || sa.Resolution != sb.Resolution || sa.N != sb.N {
		t.Fatalf("spectrum shape diverged: (%d,%v,%d) vs (%d,%v,%d)",
			len(sa.Mag), sa.Resolution, sa.N, len(sb.Mag), sb.Resolution, sb.N)
	}
	peak := 0.0
	for _, m := range sa.Mag {
		if m > peak {
			peak = m
		}
	}
	for k := range sa.Mag {
		if d := math.Abs(sa.Mag[k] - sb.Mag[k]); d > 1e-9*peak {
			t.Fatalf("bin %d diverged beyond tolerance: default %v rfft %v", k, sa.Mag[k], sb.Mag[k])
		}
	}
}

// The per-tick work stays allocation-free on the packed path too.
func TestDetectorRFFTTickAllocFree(t *testing.T) {
	det := rfftDetector()
	allocs := testing.AllocsPerRun(200, func() {
		det.AddSample(48e6)
		if det.Elasticity(5) <= 0 {
			t.Fatal("eta <= 0")
		}
	})
	if allocs > 0 {
		t.Fatalf("rfft detector tick allocates %.2f/op in steady state, want 0", allocs)
	}
}

// BenchmarkDetectorTickRFFT is BenchmarkDetectorTick with the packed
// real-input FFT; the ns/op gap is the detector-level rFFT win.
func BenchmarkDetectorTickRFFT(b *testing.B) {
	det := rfftDetector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		det.AddSample(48e6)
		if det.Elasticity(5) <= 0 {
			b.Fatal("eta <= 0")
		}
	}
}
