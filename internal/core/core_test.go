package core

import (
	"math"
	"testing"
	"testing/quick"

	"nimbus/internal/sim"
)

func TestPulseZeroMean(t *testing.T) {
	// The asymmetric pulse must integrate to ~zero over one period.
	p := Pulse{Freq: 5, Amplitude: 12e6}
	period := sim.FromSeconds(1 / p.Freq)
	steps := 20000
	sum := 0.0
	for i := 0; i < steps; i++ {
		tm := sim.Time(float64(period) * float64(i) / float64(steps))
		sum += p.Offset(tm)
	}
	mean := sum / float64(steps)
	if math.Abs(mean) > p.Amplitude*1e-3 {
		t.Fatalf("pulse mean = %v (amplitude %v), want ~0", mean, p.Amplitude)
	}
}

func TestPulseShape(t *testing.T) {
	p := Pulse{Freq: 5, Amplitude: 24e6} // period 200 ms
	// Peak of the positive half-sine at T/8 = 25 ms.
	peak := p.Offset(25 * sim.Millisecond)
	if math.Abs(peak-24e6) > 1e3 {
		t.Fatalf("positive peak = %v, want %v", peak, 24e6)
	}
	// Trough of the negative half-sine at T/4 + 3T/8 = 125 ms.
	trough := p.Offset(125 * sim.Millisecond)
	if math.Abs(trough+8e6) > 1e3 {
		t.Fatalf("negative trough = %v, want %v", trough, -8e6)
	}
	// Boundaries are zero.
	for _, at := range []sim.Time{0, 50 * sim.Millisecond, 200 * sim.Millisecond} {
		if v := p.Offset(at); math.Abs(v) > 1 {
			t.Fatalf("offset at %v = %v, want 0", at, v)
		}
	}
	if p.MinBaseRate() != 8e6 {
		t.Fatalf("MinBaseRate = %v, want A/3", p.MinBaseRate())
	}
}

func TestPulsePeriodicity(t *testing.T) {
	p := Pulse{Freq: 5, Amplitude: 1e6}
	f := func(msRaw uint16) bool {
		ms := sim.Time(msRaw%1000) * sim.Millisecond
		a := p.Offset(ms)
		b := p.Offset(ms + 200*sim.Millisecond) // one period later
		return math.Abs(a-b) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPulseDisabled(t *testing.T) {
	if (Pulse{}).Offset(123*sim.Millisecond) != 0 {
		t.Fatal("zero pulse must be silent")
	}
}

func TestEstimateZExact(t *testing.T) {
	// Fluid model: if we send S and receive R on a µ link, the cross rate
	// is exactly µS/R - S when the queue is busy.
	mu := 96e6
	S := 40e6
	z := 30e6
	// R = µ * S / (S + z)
	R := mu * S / (S + z)
	got := EstimateZ(mu, S, R)
	if math.Abs(got-z) > 1 {
		t.Fatalf("z = %v, want %v", got, z)
	}
}

func TestEstimateZClamps(t *testing.T) {
	if EstimateZ(96e6, 10e6, 0) != 0 {
		t.Fatal("R=0 must yield 0")
	}
	if EstimateZ(0, 10e6, 10e6) != 0 {
		t.Fatal("mu=0 must yield 0")
	}
	// R > expected (noise): z would be negative; must clamp to 0.
	if z := EstimateZ(96e6, 10e6, 20e6); z != 48e6-10e6 {
		// sanity: µS/R - S = 96*10/20 - 10 = 38
		t.Fatalf("z = %v", z)
	}
	if z := EstimateZ(96e6, 10e6, 11e6); z < 0 {
		t.Fatal("negative z escaped clamp")
	}
	// Huge S/R ratio: clamp at µ.
	if z := EstimateZ(96e6, 90e6, 1e6); z != 96e6 {
		t.Fatalf("z = %v, want clamp at mu", z)
	}
}

// Property: EstimateZ inverts the queue-sharing equation for all valid
// inputs.
func TestEstimateZProperty(t *testing.T) {
	f := func(sRaw, zRaw uint32) bool {
		mu := 96e6
		S := 1e6 + float64(sRaw%64)*1e6
		z := float64(zRaw%64) * 1e6
		if S+z < mu {
			// Queue not necessarily busy; the estimator is only
			// specified for a busy queue, skip.
			return true
		}
		R := mu * S / (S + z)
		got := EstimateZ(mu, S, R)
		return math.Abs(got-z) < 1e-3*mu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateSamplerPairedRates(t *testing.T) {
	var rs RateSampler
	// 10 packets of 1500 B sent 1 ms apart, acked 2 ms apart: S = 12 Mbps,
	// R = 6 Mbps.
	for i := 0; i < 10; i++ {
		sent := sim.Time(i) * sim.Millisecond
		acked := 100*sim.Millisecond + sim.Time(i)*2*sim.Millisecond
		rs.Add(sent, acked, 1500)
	}
	S, R, ok := rs.Rates(118*sim.Millisecond, 200*sim.Millisecond)
	if !ok {
		t.Fatal("not ok")
	}
	if math.Abs(S-12e6) > 1e3 || math.Abs(R-6e6) > 1e3 {
		t.Fatalf("S=%v R=%v, want 12M/6M", S, R)
	}
}

func TestRateSamplerWindow(t *testing.T) {
	var rs RateSampler
	rs.Add(0, 10*sim.Millisecond, 1500)
	rs.Add(1*sim.Millisecond, 11*sim.Millisecond, 1500)
	// Old samples fall out of the window.
	_, _, ok := rs.Rates(10*sim.Second, 100*sim.Millisecond)
	if ok {
		t.Fatal("stale samples should not produce rates")
	}
	// A single packet is not enough.
	rs2 := RateSampler{}
	rs2.Add(0, 5*sim.Millisecond, 1500)
	if _, _, ok := rs2.Rates(10*sim.Millisecond, 100*sim.Millisecond); ok {
		t.Fatal("one packet should not produce rates")
	}
}

func TestBasicDelayRate(t *testing.T) {
	cfg := DefaultBasicDelayConfig()
	mu := 96e6
	// At the operating point (x = xmin + dt, S + z = µ) the rate is S.
	x := 50*sim.Millisecond + cfg.TargetDelay
	S, z := 40e6, 56e6
	got := BasicDelayRate(cfg, mu, S, z, x, 50*sim.Millisecond)
	if math.Abs(got-S) > 1e3 {
		t.Fatalf("equilibrium rate = %v, want %v", got, S)
	}
	// Spare capacity pulls the rate up.
	up := BasicDelayRate(cfg, mu, 20e6, 30e6, x, 50*sim.Millisecond)
	if up <= 20e6 {
		t.Fatalf("rate with spare capacity = %v, want > S", up)
	}
	// Excess queueing pushes the rate below S.
	down := BasicDelayRate(cfg, mu, S, 56e6, x+30*sim.Millisecond, 50*sim.Millisecond)
	if down >= S {
		t.Fatalf("rate with big queue = %v, want < S", down)
	}
	// Clamped to [0, mu].
	if BasicDelayRate(cfg, mu, 96e6, 96e6, x+sim.Second, 50*sim.Millisecond) < 0 {
		t.Fatal("negative rate escaped clamp")
	}
}

func TestDetectorSyntheticElastic(t *testing.T) {
	// ẑ with a clear 5 Hz oscillation: η must exceed the threshold.
	d := NewDetector(DetectorConfig{})
	dt := d.Config().SampleInterval.Seconds()
	for i := 0; i < d.WindowSamples(); i++ {
		tsec := float64(i) * dt
		z := 48e6 + 6e6*math.Sin(2*math.Pi*5*tsec)
		d.AddSample(z)
	}
	if !d.Ready() {
		t.Fatal("not ready after full window")
	}
	eta := d.Elasticity(5)
	if eta < 2 {
		t.Fatalf("synthetic elastic eta = %v, want >= 2", eta)
	}
	if !d.Elastic(5) {
		t.Fatal("Elastic() false")
	}
}

func TestDetectorSyntheticInelastic(t *testing.T) {
	// White noise ẑ: no pronounced peak at fp.
	d := NewDetector(DetectorConfig{})
	rng := sim.NewRand(9)
	for i := 0; i < d.WindowSamples(); i++ {
		d.AddSample(24e6 + rng.Normal(0, 3e6))
	}
	eta := d.Elasticity(5)
	if eta >= 2 {
		t.Fatalf("white-noise eta = %v, want < 2", eta)
	}
}

func TestDetectorOffFrequencyOscillation(t *testing.T) {
	// Oscillation at 7 Hz (inside the (5,10) band) must push eta DOWN,
	// not up.
	d := NewDetector(DetectorConfig{})
	dt := d.Config().SampleInterval.Seconds()
	for i := 0; i < d.WindowSamples(); i++ {
		tsec := float64(i) * dt
		d.AddSample(48e6 + 6e6*math.Sin(2*math.Pi*7*tsec))
	}
	if eta := d.Elasticity(5); eta >= 1 {
		t.Fatalf("7 Hz oscillation produced eta = %v at fp=5", eta)
	}
}

func TestDetectorExcludeFrequency(t *testing.T) {
	// Two tones: 5 Hz (ours) and 6 Hz (another pulser). Without
	// exclusion the 6 Hz tone suppresses eta; with exclusion it doesn't.
	d := NewDetector(DetectorConfig{})
	dt := d.Config().SampleInterval.Seconds()
	for i := 0; i < d.WindowSamples(); i++ {
		tsec := float64(i) * dt
		z := 48e6 + 6e6*math.Sin(2*math.Pi*5*tsec) + 5e6*math.Sin(2*math.Pi*6*tsec)
		d.AddSample(z)
	}
	plain := d.Elasticity(5)
	excl := d.ElasticityExcluding(5, 6)
	if excl <= plain {
		t.Fatalf("exclusion did not help: plain=%v excl=%v", plain, excl)
	}
	if excl < 2 {
		t.Fatalf("eta with exclusion = %v, want >= 2", excl)
	}
}

func TestDetectorHarmonicsDoNotMatter(t *testing.T) {
	// The asymmetric pulse has harmonics at 2fp, 3fp...; η only looks in
	// (fp, 2fp), so harmonics of our own pulse must not affect it. Build
	// a signal with 5 Hz + strong 10/15 Hz harmonics.
	d := NewDetector(DetectorConfig{})
	dt := d.Config().SampleInterval.Seconds()
	for i := 0; i < d.WindowSamples(); i++ {
		tsec := float64(i) * dt
		z := 48e6 + 5e6*math.Sin(2*math.Pi*5*tsec) +
			4e6*math.Sin(2*math.Pi*10*tsec) + 3e6*math.Sin(2*math.Pi*15*tsec)
		d.AddSample(z)
	}
	if eta := d.Elasticity(5); eta < 2 {
		t.Fatalf("harmonics suppressed eta = %v", eta)
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	cfg := d.Config()
	if cfg.SampleInterval != 10*sim.Millisecond || cfg.FFTDuration != 5*sim.Second || cfg.Threshold != 2 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if d.WindowSamples() != 500 {
		t.Fatalf("window samples = %d, want 500", d.WindowSamples())
	}
	if d.Ready() {
		t.Fatal("ready before any samples")
	}
}

func TestMuEstimators(t *testing.T) {
	o := Oracle{Rate: 96e6}
	o.Observe(0, 50e6)
	if o.Mu() != 96e6 {
		t.Fatal("oracle must ignore observations")
	}
	m := NewMaxReceiveRate(10 * sim.Second)
	m.Observe(1*sim.Second, 40e6)
	m.Observe(2*sim.Second, 90e6)
	m.Observe(3*sim.Second, 60e6)
	if m.Mu() != 90e6 {
		t.Fatalf("max estimator = %v", m.Mu())
	}
}
