package core

import (
	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// MuEstimator supplies the bottleneck link rate µ that the ẑ estimator
// needs (Eq. 1). The paper's implementation uses the maximum received
// rate, like BBR (§4.2); the robustness experiments "supply Nimbus with
// the correct link rate", which Oracle models.
type MuEstimator interface {
	// Observe feeds a receive-rate measurement (bits/s) at time now.
	Observe(now sim.Time, rateBps float64)
	// Mu returns the current estimate in bits/s (0 if unknown).
	Mu() float64
}

// Oracle returns the true link rate, for experiments that control for µ
// estimation error.
type Oracle struct{ Rate float64 }

// Observe is a no-op for the oracle.
func (Oracle) Observe(sim.Time, float64) {}

// Mu returns the configured rate.
func (o Oracle) Mu() float64 { return o.Rate }

// MaxReceiveRate estimates µ as the windowed maximum of the flow's
// receive rate, the BBR-style estimator the paper's implementation uses.
// The window is long (default 30 s) because µ only decays when the path
// changes; a multiplicative safety margin compensates for the flow never
// quite saturating the link between probes.
type MaxReceiveRate struct {
	filter *stats.WindowedMax
}

// NewMaxReceiveRate returns an estimator over the given window.
func NewMaxReceiveRate(window sim.Time) *MaxReceiveRate {
	if window <= 0 {
		window = 30 * sim.Second
	}
	return &MaxReceiveRate{filter: stats.NewWindowedMax(int64(window))}
}

// Observe records a receive-rate sample.
func (m *MaxReceiveRate) Observe(now sim.Time, rateBps float64) {
	if rateBps > 0 {
		m.filter.Add(int64(now), rateBps)
	}
}

// Mu returns the windowed maximum receive rate.
func (m *MaxReceiveRate) Mu() float64 { return m.filter.Max() }
