// Package core implements the paper's contribution: the cross-traffic
// rate estimator (§3.1), the FFT-based elasticity detector (§3.2–3.4),
// and the Nimbus congestion-control system that mode-switches between a
// TCP-competitive and a delay-controlling algorithm (§4), including the
// pulser/watcher protocol for multiple Nimbus flows (§6).
package core

import "nimbus/internal/sim"

// srRec records one acknowledged packet for paired send/receive rate
// estimation (Eq. 2 of the paper).
type srRec struct {
	sent  sim.Time
	acked sim.Time
	bytes int
}

// RateSampler measures the flow's send rate S and receive rate R over the
// same set of packets, as required by Eq. 2: S = nbytes/(s_{i+n}-s_i)
// using send timestamps, R = nbytes/(r_{i+n}-r_i) using ACK timestamps.
// Measurements are taken over roughly one RTT of packets, because sub-RTT
// measurements are confounded by burstiness (§3.4).
type RateSampler struct {
	recs []srRec
	head int
}

// Add records an acknowledged packet.
func (rs *RateSampler) Add(sent, acked sim.Time, bytes int) {
	rs.recs = append(rs.recs, srRec{sent, acked, bytes})
	if rs.head > 8192 && rs.head*2 >= len(rs.recs) {
		n := copy(rs.recs, rs.recs[rs.head:])
		rs.recs = rs.recs[:n]
		rs.head = 0
	}
}

// Rates returns (S, R) in bits/s over packets acknowledged within the
// last window ending at now. ok is false when there are not enough
// packets to measure (fewer than 2 or zero time spread).
func (rs *RateSampler) Rates(now, window sim.Time) (S, R float64, ok bool) {
	// Advance head past packets older than the window.
	cut := now - window
	for rs.head < len(rs.recs) && rs.recs[rs.head].acked < cut {
		rs.head++
	}
	n := len(rs.recs) - rs.head
	if n < 2 {
		return 0, 0, false
	}
	first, last := rs.recs[rs.head], rs.recs[len(rs.recs)-1]
	total := 0
	for i := rs.head; i < len(rs.recs); i++ {
		total += rs.recs[i].bytes
	}
	// Per Eq. 2, the bytes counted are those of the n packets spanning
	// the interval; we exclude the first packet's bytes so rate = bytes
	// delivered between the two timestamps.
	total -= first.bytes
	ds := (last.sent - first.sent).Seconds()
	dr := (last.acked - first.acked).Seconds()
	if ds <= 0 || dr <= 0 || total <= 0 {
		return 0, 0, false
	}
	return float64(total) * 8 / ds, float64(total) * 8 / dr, true
}

// EstimateZ implements Eq. 1: ẑ = µ·S/R − S, the total cross-traffic
// rate, valid while the bottleneck is busy. The result is clamped to
// [0, µ] — negative values and values above the link rate are
// measurement noise by construction.
func EstimateZ(mu, S, R float64) float64 {
	if R <= 0 || mu <= 0 {
		return 0
	}
	z := mu*S/R - S
	if z < 0 {
		z = 0
	}
	if z > mu {
		z = mu
	}
	return z
}
