// Package cc implements the congestion control algorithms the paper
// evaluates: the TCP-competitive schemes (NewReno, Cubic, Compound), the
// delay-controlling schemes (Vegas, Copa's default mode), the adaptive
// baselines (Copa with its own mode switching, BBR, PCC-Vivace), and a
// fixed-window sender used in Table 1. All algorithms implement
// transport.Controller. Window arithmetic is done in float64 bytes.
package cc

import (
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// common holds the bookkeeping every algorithm needs.
type common struct {
	env     *transport.Env
	mss     float64
	srtt    sim.Time
	minRTT  sim.Time
	lastCut sim.Time // for one-reduction-per-RTT loss events
}

func (c *common) init(env *transport.Env) {
	c.env = env
	c.mss = float64(env.MSS)
}

func (c *common) now() sim.Time { return c.env.Sch.Now() }

func (c *common) seeRTT(rtt sim.Time) {
	if c.srtt == 0 {
		c.srtt = rtt
	} else {
		c.srtt += (rtt - c.srtt) / 8
	}
	if c.minRTT == 0 || rtt < c.minRTT {
		c.minRTT = rtt
	}
}

// lossEvent reports whether this loss starts a new loss event (at most
// one congestion response per RTT).
func (c *common) lossEvent(now sim.Time) bool {
	guard := c.srtt
	if guard == 0 {
		guard = 100 * sim.Millisecond
	}
	if now-c.lastCut < guard {
		return false
	}
	c.lastCut = now
	return true
}

func clampWindow(w, min, max float64) float64 {
	if w < min {
		return min
	}
	if max > 0 && w > max {
		return max
	}
	return w
}

// RateEstimator measures the flow's delivery rate (bits/s) from the
// cumulative Delivered counter in AckInfo, over a sliding window. BBR and
// Vivace use it; Nimbus has its own paired S/R estimator in core.
type RateEstimator struct {
	window  sim.Time
	samples []rateSample
}

type rateSample struct {
	t         sim.Time
	delivered uint64
}

// NewRateEstimator returns an estimator over the given window.
func NewRateEstimator(window sim.Time) *RateEstimator {
	return &RateEstimator{window: window}
}

// Add records the cumulative delivered byte count at time t.
func (r *RateEstimator) Add(t sim.Time, delivered uint64) {
	r.samples = append(r.samples, rateSample{t, delivered})
	cut := t - r.window
	i := 0
	for i < len(r.samples)-1 && r.samples[i].t < cut {
		i++
	}
	if i > 0 {
		r.samples = r.samples[i:]
	}
}

// RateBps returns the delivery rate in bits/s over the window (0 if not
// enough data).
func (r *RateEstimator) RateBps() float64 {
	if len(r.samples) < 2 {
		return 0
	}
	first, last := r.samples[0], r.samples[len(r.samples)-1]
	dt := (last.t - first.t).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(last.delivered-first.delivered) * 8 / dt
}
