package cc

import "nimbus/internal/transport"

// Reno implements TCP NewReno: slow start, additive increase of one MSS
// per RTT in congestion avoidance, multiplicative decrease by half per
// loss event. It is one of the paper's TCP-competitive algorithms and the
// elastic cross-traffic generator in the robustness experiments.
type Reno struct {
	common
	cwnd     float64 // bytes
	ssthresh float64
}

// NewReno returns a NewReno controller.
func NewReno() *Reno { return &Reno{} }

// Init sets the initial window to 10 MSS (Linux default, which the paper
// uses as the elastic/inelastic boundary for trace flows).
func (r *Reno) Init(env *transport.Env) {
	r.init(env)
	r.cwnd = 10 * r.mss
	r.ssthresh = 1 << 30
}

// OnAck grows the window.
func (r *Reno) OnAck(a transport.AckInfo) {
	r.seeRTT(a.RTT)
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(a.Bytes)
	} else {
		r.cwnd += r.mss * float64(a.Bytes) / r.cwnd
	}
}

// OnLoss halves the window once per loss event.
func (r *Reno) OnLoss(l transport.LossInfo) {
	if l.Timeout {
		r.ssthresh = clampWindow(r.cwnd/2, 2*r.mss, 0)
		r.cwnd = r.mss
		r.lastCut = l.Now
		return
	}
	if !r.lossEvent(l.Now) {
		return
	}
	r.ssthresh = clampWindow(r.cwnd/2, 2*r.mss, 0)
	r.cwnd = r.ssthresh
}

// Control returns the current window; NewReno is purely ACK-clocked.
func (r *Reno) Control() transport.Transmission {
	return transport.Transmission{CwndBytes: int(r.cwnd)}
}

// Cwnd exposes the window in bytes (for Nimbus's competitive mode and
// tests).
func (r *Reno) Cwnd() float64 { return r.cwnd }

// SetCwnd forces the window (Nimbus mode switching resets the rate).
func (r *Reno) SetCwnd(w float64) {
	r.cwnd = clampWindow(w, 2*r.mss, 0)
	r.ssthresh = r.cwnd
}
