package cc

import (
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// Copa implements Copa (Arun & Balakrishnan, NSDI 2018), including its
// own default/TCP-competitive mode switching, which the paper compares
// against Nimbus's elasticity detector (Figs 10, 14, 23, 24). In default
// mode Copa steers its rate toward 1/(delta * dq) where dq is the
// standing queueing delay; in competitive mode it performs AIMD on
// 1/delta, emulating loss-based TCP aggressiveness.
//
// The mode detector is Copa's: if the standing queue has not drained to
// below 10% of (RTTmax - RTTmin) within the last 5 RTTs, Copa concludes
// buffer-filling cross traffic is present and switches to competitive
// mode. The paper shows this detector fails at high inelastic load and
// against high-RTT elastic flows; reproducing those failures requires
// implementing it faithfully.
type Copa struct {
	common
	cwnd float64

	deltaDefault float64
	delta        float64

	rttMin      *stats.WindowedMin // over 10 s
	rttStanding *stats.WindowedMin // over srtt/2
	rttMax      *stats.WindowedMax // over 10 s

	velocity   float64
	direction  int // +1 up, -1 down, 0 unknown
	dirCount   int
	lastVelUpd sim.Time
	prevCwnd   float64

	// Mode switching state.
	ModeSwitchingEnabled bool
	competitive          bool
	lastDrain            sim.Time // last time dq was "nearly empty"
	lossInRTT            bool
	lastDeltaUpd         sim.Time

	// DefaultModeOnly pins Copa to default mode (used as Nimbus's
	// delay-control algorithm).
	DefaultModeOnly bool
}

// NewCopa returns Copa with mode switching enabled (the full baseline).
func NewCopa() *Copa {
	return &Copa{deltaDefault: 0.5, ModeSwitchingEnabled: true}
}

// NewCopaDefaultMode returns Copa pinned to its default (delay-control)
// mode, the configuration Nimbus uses as a delay-controlling algorithm.
func NewCopaDefaultMode() *Copa {
	return &Copa{deltaDefault: 0.5, DefaultModeOnly: true}
}

// Init sets up the filters.
func (c *Copa) Init(env *transport.Env) {
	c.init(env)
	c.cwnd = 10 * c.mss
	c.delta = c.deltaDefault
	c.velocity = 1
	c.rttMin = stats.NewWindowedMin(int64(10 * sim.Second))
	c.rttStanding = stats.NewWindowedMin(int64(100 * sim.Millisecond))
	c.rttMax = stats.NewWindowedMax(int64(10 * sim.Second))
}

// OnAck applies Copa's per-ACK window update.
func (c *Copa) OnAck(a transport.AckInfo) {
	c.seeRTT(a.RTT)
	now := c.now()
	c.rttMin.Add(int64(now), float64(a.RTT))
	c.rttMax.Add(int64(now), float64(a.RTT))
	// Standing RTT: min over the last srtt/2.
	half := c.srtt / 2
	if half < 10*sim.Millisecond {
		half = 10 * sim.Millisecond
	}
	c.rttStanding.Window = int64(half)
	c.rttStanding.Add(int64(now), float64(a.RTT))

	rttMin := sim.Time(c.rttMin.Min())
	standing := sim.Time(c.rttStanding.Min())
	dq := standing - rttMin

	c.updateMode(now, dq)
	c.updateDelta(now)

	// Target rate 1/(delta*dq) packets/s vs current rate cwnd/standing.
	cwndPkts := c.cwnd / c.mss
	var up bool
	if dq <= 0 {
		up = true
	} else {
		target := 1 / (c.delta * dq.Seconds())   // packets per second
		current := cwndPkts / standing.Seconds() // packets per second
		up = current <= target
	}
	c.updateVelocity(now, up)
	step := c.velocity / (c.delta * cwndPkts) * float64(a.Bytes) / c.mss * c.mss
	if up {
		c.cwnd += step
	} else {
		c.cwnd -= step
	}
	c.cwnd = clampWindow(c.cwnd, 2*c.mss, 0)
}

func (c *Copa) updateVelocity(now sim.Time, up bool) {
	dir := -1
	if up {
		dir = 1
	}
	guard := c.srtt
	if guard == 0 {
		guard = 100 * sim.Millisecond
	}
	if now-c.lastVelUpd < guard {
		return
	}
	c.lastVelUpd = now
	if dir == c.direction {
		c.dirCount++
		// Velocity doubles only after the same direction persists for
		// 3 RTTs, then keeps doubling each RTT.
		if c.dirCount >= 3 {
			c.velocity *= 2
		}
	} else {
		c.direction = dir
		c.dirCount = 0
		c.velocity = 1
	}
	if c.velocity > 1<<16 {
		c.velocity = 1 << 16
	}
	// If cwnd did not actually move in the indicated direction, reset.
	if (dir > 0 && c.cwnd < c.prevCwnd) || (dir < 0 && c.cwnd > c.prevCwnd) {
		c.velocity = 1
		c.dirCount = 0
	}
	c.prevCwnd = c.cwnd
}

// updateMode runs Copa's queue-drain detector.
func (c *Copa) updateMode(now sim.Time, dq sim.Time) {
	if c.DefaultModeOnly || !c.ModeSwitchingEnabled {
		c.competitive = false
		return
	}
	rttMin := sim.Time(c.rttMin.Min())
	rttMax := sim.Time(c.rttMax.Max())
	spread := rttMax - rttMin
	if spread < sim.Millisecond {
		spread = sim.Millisecond
	}
	if dq < spread/10 {
		c.lastDrain = now
	}
	guard := c.srtt
	if guard == 0 {
		guard = 100 * sim.Millisecond
	}
	c.competitive = now-c.lastDrain > 5*guard
	if !c.competitive {
		c.delta = c.deltaDefault
	}
}

// updateDelta performs AIMD on 1/delta while in competitive mode.
func (c *Copa) updateDelta(now sim.Time) {
	if !c.competitive {
		return
	}
	guard := c.srtt
	if guard == 0 {
		guard = 100 * sim.Millisecond
	}
	if now-c.lastDeltaUpd < guard {
		return
	}
	c.lastDeltaUpd = now
	if c.lossInRTT {
		c.delta *= 2 // halve 1/delta
		c.lossInRTT = false
	} else {
		c.delta = 1 / (1/c.delta + 1) // additive increase of 1/delta
	}
	if c.delta > c.deltaDefault {
		c.delta = c.deltaDefault
	}
	if c.delta < 0.004 {
		c.delta = 0.004
	}
}

// OnLoss marks the loss for competitive-mode AIMD and applies a window
// cut in default mode only for heavy loss (Copa mostly ignores isolated
// losses).
func (c *Copa) OnLoss(l transport.LossInfo) {
	c.lossInRTT = true
	if l.Timeout {
		c.cwnd = 2 * c.mss
		c.velocity = 1
		return
	}
	if c.competitive && c.lossEvent(l.Now) {
		c.cwnd = clampWindow(c.cwnd/2, 2*c.mss, 0)
	}
}

// Control paces at 2x the window rate to smooth transmission, per Copa.
func (c *Copa) Control() transport.Transmission {
	standing := sim.Time(c.rttStanding.Min())
	if standing <= 0 {
		standing = c.srtt
	}
	var pace float64
	if standing > 0 {
		pace = 2 * c.cwnd * 8 / standing.Seconds()
	}
	return transport.Transmission{CwndBytes: int(c.cwnd), PaceBps: pace}
}

// Competitive reports whether Copa's own detector is in competitive mode
// (ground truth for the Fig 14 accuracy comparison).
func (c *Copa) Competitive() bool { return c.competitive }

// Cwnd exposes the window in bytes.
func (c *Copa) Cwnd() float64 { return c.cwnd }

// SetCwnd forces the window (used by Nimbus at mode switches).
func (c *Copa) SetCwnd(w float64) {
	c.cwnd = clampWindow(w, 2*c.mss, 0)
	c.velocity = 1
	c.dirCount = 0
}

// QueueDelayEstimate returns Copa's current standing queue estimate.
func (c *Copa) QueueDelayEstimate() sim.Time {
	return sim.Time(c.rttStanding.Min()) - sim.Time(c.rttMin.Min())
}
