package cc

import (
	"testing"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// rig is a single-bottleneck test network.
type rig struct {
	sch  *sim.Scheduler
	link *netem.Link
	net  *netem.Network
	rng  *sim.Rand
}

func newRig(rateMbps float64, buf sim.Time) *rig {
	sch := sim.NewScheduler()
	rate := rateMbps * 1e6
	link := netem.NewLink(sch, rate, netem.NewDropTail(netem.BufferBytesForDelay(rate, buf)))
	return &rig{sch: sch, link: link, net: netem.NewNetwork(sch, link), rng: sim.NewRand(7)}
}

// addFlow attaches a backlogged flow and returns its sender plus a delay
// probe that accumulates per-packet queueing delay.
func (r *rig) addFlow(ctrl transport.Controller, rtt sim.Time) *transport.Sender {
	s := transport.NewSender(r.net, rtt, ctrl, transport.Backlogged{}, r.rng.Split("flow"))
	s.Start(r.sch.Now())
	return s
}

func mbps(s *transport.Sender, dur sim.Time) float64 {
	return float64(s.DeliveredBytes) * 8 / dur.Seconds() / 1e6
}

// meanQueueDelayMs measures average queueing delay over the run using a
// link tap.
func (r *rig) tapDelay() *struct {
	sum float64
	n   int
} {
	acc := &struct {
		sum float64
		n   int
	}{}
	r.net.OnDeliver(func(p *netem.Packet, now sim.Time) {
		acc.sum += p.QueueDelay.Millis()
		acc.n++
	})
	return acc
}

func (a *rig) run(d sim.Time) { a.sch.RunUntil(d) }

func TestSoloUtilization(t *testing.T) {
	cases := []struct {
		name    string
		mk      func() transport.Controller
		minMbps float64
	}{
		{"reno", func() transport.Controller { return NewReno() }, 42},
		{"cubic", func() transport.Controller { return NewCubic() }, 42},
		{"vegas", func() transport.Controller { return NewVegas() }, 40},
		{"copa", func() transport.Controller { return NewCopa() }, 38},
		{"copa-default", func() transport.Controller { return NewCopaDefaultMode() }, 38},
		{"bbr", func() transport.Controller { return NewBBR() }, 40},
		{"compound", func() transport.Controller { return NewCompound() }, 42},
		{"vivace", func() transport.Controller { return NewVivace() }, 25},
		{"fixed", func() transport.Controller { return NewFixedWindow(200) }, 42},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := newRig(48, 100*sim.Millisecond)
			s := r.addFlow(c.mk(), 50*sim.Millisecond)
			dur := 30 * sim.Second
			r.run(dur)
			got := mbps(s, dur)
			if got < c.minMbps {
				t.Fatalf("%s solo throughput = %.1f Mbit/s, want >= %.0f", c.name, got, c.minMbps)
			}
			if got > 48.5 {
				t.Fatalf("%s throughput %.1f exceeds link rate", c.name, got)
			}
		})
	}
}

func TestCubicPairFairness(t *testing.T) {
	r := newRig(96, 100*sim.Millisecond)
	a := r.addFlow(NewCubic(), 50*sim.Millisecond)
	b := r.addFlow(NewCubic(), 50*sim.Millisecond)
	dur := 60 * sim.Second
	r.run(dur)
	ra, rb := mbps(a, dur), mbps(b, dur)
	total := ra + rb
	if total < 85 {
		t.Fatalf("pair total = %.1f, want ~96", total)
	}
	jain := (ra + rb) * (ra + rb) / (2 * (ra*ra + rb*rb))
	if jain < 0.85 {
		t.Fatalf("Jain index = %.3f (%.1f vs %.1f)", jain, ra, rb)
	}
}

func TestVegasLowDelayAlone(t *testing.T) {
	r := newRig(48, 100*sim.Millisecond)
	acc := r.tapDelay()
	r.addFlow(NewVegas(), 50*sim.Millisecond)
	r.run(30 * sim.Second)
	mean := acc.sum / float64(acc.n)
	if mean > 15 {
		t.Fatalf("Vegas mean queueing delay = %.1f ms, want < 15", mean)
	}
}

func TestCubicHighDelayAlone(t *testing.T) {
	// Cubic fills the 100 ms buffer: mean queueing delay far above Vegas.
	r := newRig(48, 100*sim.Millisecond)
	acc := r.tapDelay()
	r.addFlow(NewCubic(), 50*sim.Millisecond)
	r.run(30 * sim.Second)
	mean := acc.sum / float64(acc.n)
	if mean < 30 {
		t.Fatalf("Cubic mean queueing delay = %.1f ms, expected bufferbloat", mean)
	}
}

// The motivating pathology (§1): a delay-controlling scheme starves when
// sharing with Cubic.
func TestVegasStarvesAgainstCubic(t *testing.T) {
	r := newRig(48, 100*sim.Millisecond)
	v := r.addFlow(NewVegas(), 50*sim.Millisecond)
	c := r.addFlow(NewCubic(), 50*sim.Millisecond)
	dur := 60 * sim.Second
	r.run(dur)
	rv, rc := mbps(v, dur), mbps(c, dur)
	if rv > rc/2 {
		t.Fatalf("Vegas %.1f vs Cubic %.1f: expected starvation", rv, rc)
	}
}

func TestCopaDefaultModeStarvesButFullCopaCompetes(t *testing.T) {
	dur := 60 * sim.Second
	// Default-only Copa against Cubic: starves like Vegas.
	r1 := newRig(48, 100*sim.Millisecond)
	cd := r1.addFlow(NewCopaDefaultMode(), 50*sim.Millisecond)
	cu1 := r1.addFlow(NewCubic(), 50*sim.Millisecond)
	r1.run(dur)
	if mbps(cd, dur) > mbps(cu1, dur)*0.6 {
		t.Fatalf("Copa default vs Cubic: %.1f vs %.1f, expected starvation",
			mbps(cd, dur), mbps(cu1, dur))
	}
	// Full Copa (mode switching) against Cubic: gets a usable share.
	r2 := newRig(48, 100*sim.Millisecond)
	cf := r2.addFlow(NewCopa(), 50*sim.Millisecond)
	cu2 := r2.addFlow(NewCubic(), 50*sim.Millisecond)
	r2.run(dur)
	if mbps(cf, dur) < 8 {
		t.Fatalf("full Copa vs Cubic got only %.1f Mbit/s (cubic %.1f)",
			mbps(cf, dur), mbps(cu2, dur))
	}
}

func TestCopaModeDetector(t *testing.T) {
	// Alone, Copa should be in default mode most of the time.
	r := newRig(48, 100*sim.Millisecond)
	copa := NewCopa()
	r.addFlow(copa, 50*sim.Millisecond)
	r.run(30 * sim.Second)
	if copa.Competitive() {
		t.Fatal("Copa alone ended in competitive mode")
	}
	// Against Cubic it should have switched to competitive mode.
	r2 := newRig(48, 100*sim.Millisecond)
	copa2 := NewCopa()
	r2.addFlow(copa2, 50*sim.Millisecond)
	r2.addFlow(NewCubic(), 50*sim.Millisecond)
	r2.run(30 * sim.Second)
	if !copa2.Competitive() {
		t.Fatal("Copa vs Cubic did not enter competitive mode")
	}
}

func TestBBRKeepsQueueBelowCubic(t *testing.T) {
	rB := newRig(48, 100*sim.Millisecond)
	accB := rB.tapDelay()
	rB.addFlow(NewBBR(), 50*sim.Millisecond)
	rB.run(30 * sim.Second)
	meanBBR := accB.sum / float64(accB.n)

	rC := newRig(48, 100*sim.Millisecond)
	accC := rC.tapDelay()
	rC.addFlow(NewCubic(), 50*sim.Millisecond)
	rC.run(30 * sim.Second)
	meanCubic := accC.sum / float64(accC.n)
	if meanBBR > meanCubic {
		t.Fatalf("BBR solo delay %.1f ms >= Cubic %.1f ms", meanBBR, meanCubic)
	}
}

func TestFixedWindowThroughputMatchesWindow(t *testing.T) {
	// 40 packets on a 50 ms RTT: 40*1500*8/0.05 = 9.6 Mbit/s on an idle
	// fat link.
	r := newRig(96, 100*sim.Millisecond)
	s := r.addFlow(NewFixedWindow(40), 50*sim.Millisecond)
	dur := 20 * sim.Second
	r.run(dur)
	got := mbps(s, dur)
	if got < 8.8 || got > 10.2 {
		t.Fatalf("fixed-window throughput = %.2f, want ~9.6", got)
	}
}

func TestRenoAIMDSawtooth(t *testing.T) {
	// Reno alone with a small buffer must cycle: losses happen, window
	// halves, recovers. We simply check losses occurred and the flow
	// still achieved decent utilization.
	r := newRig(24, 25*sim.Millisecond)
	reno := NewReno()
	s := r.addFlow(reno, 50*sim.Millisecond)
	dur := 60 * sim.Second
	r.run(dur)
	if s.LostPackets == 0 {
		t.Fatal("Reno never lost a packet with a 0.5 BDP buffer")
	}
	got := mbps(s, dur)
	if got < 24*0.70 {
		t.Fatalf("Reno throughput = %.1f, want >= 70%% of 24", got)
	}
}

func TestRateEstimator(t *testing.T) {
	re := NewRateEstimator(sim.Second)
	// 1000 bytes every 10 ms = 800 kbit/s.
	var delivered uint64
	for i := 0; i <= 100; i++ {
		delivered += 1000
		re.Add(sim.Time(i)*10*sim.Millisecond, delivered)
	}
	got := re.RateBps()
	if got < 790e3 || got > 810e3 {
		t.Fatalf("rate = %v, want ~800k", got)
	}
}

func TestLossEventDeduplication(t *testing.T) {
	c := &common{}
	c.srtt = 100 * sim.Millisecond
	if !c.lossEvent(1 * sim.Second) {
		t.Fatal("first loss not an event")
	}
	if c.lossEvent(1*sim.Second + 50*sim.Millisecond) {
		t.Fatal("loss within srtt counted as new event")
	}
	if !c.lossEvent(1*sim.Second + 150*sim.Millisecond) {
		t.Fatal("loss after srtt not counted")
	}
}

func TestVivaceDoesNotAckClock(t *testing.T) {
	// Vivace's rate changes only at MI boundaries; verify Control()
	// returns a pacing rate (rate-based, not window-based).
	v := NewVivace()
	r := newRig(48, 100*sim.Millisecond)
	r.addFlow(v, 50*sim.Millisecond)
	r.run(5 * sim.Second)
	tr := v.Control()
	if tr.PaceBps <= 0 {
		t.Fatal("Vivace must be rate-based")
	}
}

func TestCompoundDelayWindowRetreats(t *testing.T) {
	// Alone on a big-buffer link Compound grows dwnd early (queue empty)
	// and shrinks it as queueing builds; eventually dwnd should be small
	// while cwnd carries the rate.
	r := newRig(48, 200*sim.Millisecond)
	comp := NewCompound()
	r.addFlow(comp, 50*sim.Millisecond)
	r.run(40 * sim.Second)
	_, dwnd := comp.Windows()
	if dwnd > 100*1500 {
		t.Fatalf("dwnd = %.0f bytes still huge after queue built", dwnd)
	}
}
