package cc

import "nimbus/internal/transport"

// FixedWindow keeps a constant congestion window. It never adapts, yet it
// is ACK-clocked: its send rate tracks its receive rate one RTT later, so
// the elasticity detector classifies it elastic (Table 1, "Fixed window").
type FixedWindow struct {
	common
	cwndBytes int
}

// NewFixedWindow returns a controller with a fixed window of n packets.
func NewFixedWindow(packets int) *FixedWindow {
	return &FixedWindow{cwndBytes: packets}
}

// Init converts the packet count into bytes.
func (f *FixedWindow) Init(env *transport.Env) {
	f.init(env)
	f.cwndBytes = f.cwndBytes * env.MSS
}

// OnAck does nothing: the window is fixed.
func (f *FixedWindow) OnAck(a transport.AckInfo) { f.seeRTT(a.RTT) }

// OnLoss does nothing.
func (f *FixedWindow) OnLoss(transport.LossInfo) {}

// Control returns the fixed window.
func (f *FixedWindow) Control() transport.Transmission {
	return transport.Transmission{CwndBytes: f.cwndBytes}
}
