package cc

import (
	"math"

	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Vivace implements PCC-Vivace (Dong et al., NSDI 2018) closely enough to
// reproduce the paper's findings: a rate-based online-learning scheme
// that maximizes u(x) = x^0.9 - b*x*d(RTT)/dt - c*x*L over monitor
// intervals. Because it adjusts its rate only at monitor-interval
// granularity (not per-ACK), it is *not* ACK-clocked: the elasticity
// detector classifies it inelastic at fp=5 Hz and elastic at fp=2 Hz
// (Table 1, App. F).
type Vivace struct {
	common
	rate float64 // bits/s

	// Utility coefficients (Vivace-latency defaults).
	exponent  float64
	latCoeff  float64
	lossCoeff float64

	miStart  sim.Time
	miRate   float64 // sending rate in force during the MI
	miBytes  uint64
	miLosses int
	miAcks   int
	rttFirst sim.Time
	rttLast  sim.Time
	startDel uint64

	phase      int // 0: slow start; 1,2: gradient trial pair; 3: move
	trialDir   int // +1 then -1
	epsilon    float64
	baseRate   float64
	utilities  [2]float64
	prevUtil   float64
	theta      float64
	sameDirCnt int
	lastDir    int
}

// NewVivace returns a PCC-Vivace controller.
func NewVivace() *Vivace {
	return &Vivace{exponent: 0.9, latCoeff: 900, lossCoeff: 11.35, epsilon: 0.05}
}

// Init starts in the doubling phase at ~1 Mbit/s.
func (v *Vivace) Init(env *transport.Env) {
	v.init(env)
	v.rate = 1e6
	v.theta = 1e6
}

func (v *Vivace) utility(rateBps float64, rttGrad float64, lossRate float64) float64 {
	x := rateBps / 1e6 // Mbit/s scale, as in the PCC papers
	u := math.Pow(x, v.exponent)
	u -= v.latCoeff * x * math.Max(0, rttGrad)
	u -= v.lossCoeff * x * lossRate
	return u
}

// OnAck accumulates monitor-interval statistics and steps the learner at
// MI boundaries.
func (v *Vivace) OnAck(a transport.AckInfo) {
	v.seeRTT(a.RTT)
	now := v.now()
	if v.miStart == 0 {
		v.beginMI(now, a)
		return
	}
	v.miAcks++
	v.miBytes = a.Delivered - v.startDel
	v.rttLast = a.RTT
	mi := v.srtt
	if mi < 10*sim.Millisecond {
		mi = 10 * sim.Millisecond
	}
	if now-v.miStart >= mi && v.miAcks >= 2 {
		v.endMI(now)
		v.beginMI(now, a)
	}
}

func (v *Vivace) beginMI(now sim.Time, a transport.AckInfo) {
	v.miStart = now
	v.miRate = v.rate
	v.startDel = a.Delivered
	v.miLosses = 0
	v.miAcks = 0
	v.rttFirst = a.RTT
	v.rttLast = a.RTT
}

func (v *Vivace) endMI(now sim.Time) {
	dur := (now - v.miStart).Seconds()
	if dur <= 0 {
		return
	}
	totalPkts := float64(v.miAcks + v.miLosses)
	lossRate := 0.0
	if totalPkts > 0 {
		lossRate = float64(v.miLosses) / totalPkts
	}
	rttGrad := (v.rttLast - v.rttFirst).Seconds() / dur
	// Per the PCC papers the utility is a function of the *sending* rate
	// of the MI (the delivered rate lags by an RTT, which is a full MI
	// here and would invert the gradient), penalized by the loss rate
	// and RTT gradient observed during the MI.
	u := v.utility(v.miRate, rttGrad, lossRate)

	switch v.phase {
	case 0: // slow start: double until utility drops
		if v.prevUtil != 0 && u < v.prevUtil {
			v.phase = 1
			v.baseRate = v.rate / 2
			v.trialDir = 1
			v.rate = v.baseRate * (1 + v.epsilon)
		} else {
			v.prevUtil = u
			v.rate *= 2
		}
	case 1: // first trial (rate*(1+eps)) just finished
		v.utilities[0] = u
		v.phase = 2
		v.rate = v.baseRate * (1 - v.epsilon)
	case 2: // second trial finished: take a gradient step
		v.utilities[1] = u
		grad := (v.utilities[0] - v.utilities[1]) / (2 * v.epsilon * v.baseRate / 1e6)
		dir := 1
		if grad < 0 {
			dir = -1
		}
		if dir == v.lastDir {
			v.sameDirCnt++
		} else {
			v.sameDirCnt = 0
			v.theta = 1e6
		}
		v.lastDir = dir
		amp := 1.0 + 0.5*float64(v.sameDirCnt) // confidence amplifier
		step := v.theta * amp * math.Abs(grad)
		// Dynamic change boundary: at most 30% per decision.
		maxStep := 0.3 * v.baseRate
		if step > maxStep {
			step = maxStep
		}
		if step < 0.01*v.baseRate {
			step = 0.01 * v.baseRate
		}
		v.baseRate += float64(dir) * step
		if v.baseRate < 0.5e6 {
			v.baseRate = 0.5e6
		}
		v.phase = 1
		v.trialDir = 1
		v.rate = v.baseRate * (1 + v.epsilon)
	}
}

// OnLoss counts losses for the MI utility; Vivace has no immediate
// backoff (that is the point: it reacts at MI timescales).
func (v *Vivace) OnLoss(l transport.LossInfo) {
	v.miLosses++
	if l.Timeout {
		v.rate /= 2
		v.baseRate = v.rate
		if v.rate < 0.5e6 {
			v.rate = 0.5e6
		}
	}
}

// Control paces at the learned rate with a generous window cap.
func (v *Vivace) Control() transport.Transmission {
	rtt := v.srtt
	if rtt == 0 {
		rtt = 100 * sim.Millisecond
	}
	cwnd := 4 * v.rate / 8 * rtt.Seconds()
	if cwnd < 4*v.mss {
		cwnd = 4 * v.mss
	}
	return transport.Transmission{CwndBytes: int(cwnd), PaceBps: v.rate}
}

// RateBps exposes the current rate (tests).
func (v *Vivace) RateBps() float64 { return v.rate }
