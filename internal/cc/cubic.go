package cc

import (
	"math"

	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Cubic parameters from RFC 8312.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// Cubic implements TCP Cubic (RFC 8312): the window grows as a cubic
// function of time since the last loss event, with the TCP-friendly
// region and fast convergence. It is the paper's primary TCP-competitive
// algorithm and its main elastic cross-traffic source.
type Cubic struct {
	common
	cwnd     float64 // bytes
	ssthresh float64

	wMax       float64  // window before last reduction (bytes)
	epochStart sim.Time // start of current cubic epoch
	k          float64  // seconds until the plateau
	wEst       float64  // TCP-friendly (Reno-equivalent) window estimate
	ackedBytes float64  // accumulator for wEst growth
}

// NewCubic returns a Cubic controller.
func NewCubic() *Cubic { return &Cubic{} }

// Init sets the initial window to 10 MSS.
func (c *Cubic) Init(env *transport.Env) {
	c.init(env)
	c.cwnd = 10 * c.mss
	c.ssthresh = 1 << 30
}

// OnAck grows the window per RFC 8312.
func (c *Cubic) OnAck(a transport.AckInfo) {
	c.seeRTT(a.RTT)
	if c.cwnd < c.ssthresh {
		c.cwnd += float64(a.Bytes)
		return
	}
	now := c.now()
	if c.epochStart == 0 {
		c.epochStart = now
		if c.cwnd < c.wMax {
			c.k = math.Cbrt((c.wMax - c.cwnd) / c.mss / cubicC)
		} else {
			c.k = 0
			c.wMax = c.cwnd
		}
		c.wEst = c.cwnd
		c.ackedBytes = 0
	}
	t := (now - c.epochStart).Seconds()
	// Cubic target window (in bytes) at time t since the epoch started.
	wCubic := (cubicC*math.Pow(t-c.k, 3) + c.wMax/c.mss) * c.mss

	// TCP-friendly region: emulate Reno's growth rate.
	c.ackedBytes += float64(a.Bytes)
	rtt := c.srtt
	if rtt == 0 {
		rtt = 100 * sim.Millisecond
	}
	c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) * (float64(a.Bytes) * c.mss / c.cwnd)

	target := wCubic
	if c.wEst > target {
		target = c.wEst
	}
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / c.cwnd * float64(a.Bytes)
	} else {
		// Slow drift toward the target to avoid stalls.
		c.cwnd += c.mss * float64(a.Bytes) / (100 * c.cwnd)
	}
}

// OnLoss applies the multiplicative decrease with fast convergence.
func (c *Cubic) OnLoss(l transport.LossInfo) {
	if l.Timeout {
		c.ssthresh = clampWindow(c.cwnd*cubicBeta, 2*c.mss, 0)
		c.cwnd = c.mss
		c.epochStart = 0
		c.lastCut = l.Now
		return
	}
	if !c.lossEvent(l.Now) {
		return
	}
	// Fast convergence: release bandwidth faster when the window is
	// still below the previous maximum.
	if c.cwnd < c.wMax {
		c.wMax = c.cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd = clampWindow(c.cwnd*cubicBeta, 2*c.mss, 0)
	c.ssthresh = c.cwnd
	c.epochStart = 0
}

// Control returns the window; Cubic is ACK-clocked.
func (c *Cubic) Control() transport.Transmission {
	return transport.Transmission{CwndBytes: int(c.cwnd)}
}

// Cwnd exposes the window in bytes.
func (c *Cubic) Cwnd() float64 { return c.cwnd }

// SetCwnd forces the window and restarts the cubic epoch (used by Nimbus
// when switching to TCP-competitive mode).
func (c *Cubic) SetCwnd(w float64) {
	c.cwnd = clampWindow(w, 2*c.mss, 0)
	c.ssthresh = c.cwnd
	c.wMax = c.cwnd
	c.epochStart = 0
}

// SRTT exposes the smoothed RTT (Nimbus converts cwnd to a rate).
func (c *Cubic) SRTT() sim.Time { return c.srtt }
