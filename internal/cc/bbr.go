package cc

import (
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// BBR state machine states.
type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "STARTUP"
	case bbrDrain:
		return "DRAIN"
	case bbrProbeBW:
		return "PROBE_BW"
	default:
		return "PROBE_RTT"
	}
}

// BBR implements the BBRv1 state machine (Cardwell et al., ACM Queue
// 2016): it estimates the bottleneck bandwidth as a windowed max of the
// delivery rate and the propagation RTT as a windowed min, paces at
// gain-cycled multiples of the bandwidth estimate, and caps inflight at
// 2x the estimated BDP. The paper uses BBR both as a baseline protocol
// and as cross traffic whose elasticity depends on buffer size (Table 1,
// App. C): with deep buffers the 2xBDP cap makes BBR ACK-clocked
// (elastic); with shallow buffers it is rate-driven (inelastic).
type BBR struct {
	common
	state bbrState

	btlbw   *stats.WindowedMax // delivery rate, bits/s, over 10 RTT
	rtprop  *stats.WindowedMin // RTT, over 10 s
	rateEst *RateEstimator

	cycleIdx   int
	cycleStart sim.Time

	startupFullBW  float64
	startupFullCnt int
	lastRoundStart sim.Time

	probeRTTStart sim.Time
	lastProbeRTT  sim.Time

	pacingGain float64
	cwndGain   float64
}

var bbrCycleGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a BBRv1 controller.
func NewBBR() *BBR { return &BBR{} }

// Init starts in STARTUP with gain 2/ln(2).
func (b *BBR) Init(env *transport.Env) {
	b.init(env)
	b.state = bbrStartup
	b.pacingGain = 2.885
	b.cwndGain = 2.885
	b.btlbw = stats.NewWindowedMax(int64(3 * sim.Second))
	b.rtprop = stats.NewWindowedMin(int64(10 * sim.Second))
	b.rateEst = NewRateEstimator(200 * sim.Millisecond)
}

func (b *BBR) bdpBytes(gain float64) float64 {
	bw := b.btlbw.Max()            // bits/s
	rt := sim.Time(b.rtprop.Min()) // ns
	if bw <= 0 || rt <= 0 {
		return 10 * b.mss * gain
	}
	return gain * bw / 8 * rt.Seconds()
}

// OnAck updates the filters and advances the state machine.
func (b *BBR) OnAck(a transport.AckInfo) {
	b.seeRTT(a.RTT)
	now := b.now()
	b.rtprop.Add(int64(now), float64(a.RTT))
	b.rateEst.Add(now, a.Delivered)
	if r := b.rateEst.RateBps(); r > 0 {
		// Don't let app-limited periods decay the estimate: windowed max.
		b.btlbw.Add(int64(now), r)
	}

	switch b.state {
	case bbrStartup:
		b.checkStartupDone(now)
	case bbrDrain:
		if float64(a.Inflight) <= b.bdpBytes(1) {
			b.enterProbeBW(now)
		}
	case bbrProbeBW:
		b.advanceCycle(now)
		b.maybeEnterProbeRTT(now)
	case bbrProbeRTT:
		if now-b.probeRTTStart > 200*sim.Millisecond {
			b.lastProbeRTT = now
			b.enterProbeBW(now)
		}
	}
}

func (b *BBR) checkStartupDone(now sim.Time) {
	rtt := b.srtt
	if rtt == 0 {
		return
	}
	if now-b.lastRoundStart < rtt {
		return
	}
	b.lastRoundStart = now
	bw := b.btlbw.Max()
	if bw > b.startupFullBW*1.25 {
		b.startupFullBW = bw
		b.startupFullCnt = 0
		return
	}
	b.startupFullCnt++
	if b.startupFullCnt >= 3 {
		b.state = bbrDrain
		b.pacingGain = 1 / 2.885
		b.cwndGain = 2.885
	}
}

func (b *BBR) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cwndGain = 2
	// Start at a random phase other than 0 (the 1.25 probe), per BBR.
	b.cycleIdx = 1 + b.env.Rand.Intn(7)
	b.cycleStart = now
	b.pacingGain = bbrCycleGains[b.cycleIdx]
}

func (b *BBR) advanceCycle(now sim.Time) {
	rt := sim.Time(b.rtprop.Min())
	if rt <= 0 {
		rt = b.srtt
	}
	if now-b.cycleStart < rt {
		return
	}
	b.cycleStart = now
	b.cycleIdx = (b.cycleIdx + 1) % 8
	b.pacingGain = bbrCycleGains[b.cycleIdx]
}

func (b *BBR) maybeEnterProbeRTT(now sim.Time) {
	if b.lastProbeRTT == 0 {
		b.lastProbeRTT = now
		return
	}
	if now-b.lastProbeRTT > 10*sim.Second {
		b.state = bbrProbeRTT
		b.probeRTTStart = now
		b.pacingGain = 1
	}
}

// OnLoss: BBRv1 ignores individual losses except timeouts.
func (b *BBR) OnLoss(l transport.LossInfo) {
	if l.Timeout {
		b.btlbw = stats.NewWindowedMax(int64(3 * sim.Second))
		b.startupFullBW = 0
		b.startupFullCnt = 0
		b.state = bbrStartup
		b.pacingGain = 2.885
		b.cwndGain = 2.885
	}
}

// Control paces at pacingGain * btlbw with a cwnd cap of cwndGain * BDP.
func (b *BBR) Control() transport.Transmission {
	bw := b.btlbw.Max()
	var pace float64
	if bw > 0 {
		pace = b.pacingGain * bw
	} else {
		// No estimate yet: pace the initial window over the RTT or a
		// default.
		rtt := b.srtt
		if rtt == 0 {
			rtt = 100 * sim.Millisecond
		}
		pace = 10 * b.mss * 8 / rtt.Seconds() * b.pacingGain
	}
	cwnd := b.bdpBytes(b.cwndGain)
	if b.state == bbrProbeRTT {
		cwnd = 4 * b.mss
	}
	if cwnd < 4*b.mss {
		cwnd = 4 * b.mss
	}
	return transport.Transmission{CwndBytes: int(cwnd), PaceBps: pace}
}

// State exposes the current BBR state name (tests, traces).
func (b *BBR) State() string { return b.state.String() }

// BtlBw exposes the bandwidth estimate in bits/s.
func (b *BBR) BtlBw() float64 { return b.btlbw.Max() }
