package cc

import (
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Vegas implements TCP Vegas (Brakmo et al., SIGCOMM 1994): it estimates
// the number of its own packets queued at the bottleneck as
// diff = cwnd * (RTT - baseRTT) / RTT and holds diff between alpha and
// beta packets. It is one of the paper's delay-controlling algorithms and
// its canonical example of a scheme that starves against loss-based cross
// traffic.
type Vegas struct {
	common
	cwnd  float64
	alpha float64 // packets
	beta  float64 // packets

	inSlowStart bool
	lastAdjust  sim.Time
	rttSum      sim.Time
	rttCnt      int
}

// NewVegas returns a Vegas controller with the classic alpha=2, beta=4.
func NewVegas() *Vegas { return &Vegas{alpha: 2, beta: 4} }

// Init sets a small initial window.
func (v *Vegas) Init(env *transport.Env) {
	v.init(env)
	v.cwnd = 4 * v.mss
	v.inSlowStart = true
}

// OnAck applies the once-per-RTT Vegas adjustment.
func (v *Vegas) OnAck(a transport.AckInfo) {
	v.seeRTT(a.RTT)
	v.rttSum += a.RTT
	v.rttCnt++
	guard := v.srtt
	if guard == 0 {
		guard = 100 * sim.Millisecond
	}
	now := v.now()
	if now-v.lastAdjust < guard {
		return
	}
	v.lastAdjust = now
	avgRTT := v.rttSum / sim.Time(v.rttCnt)
	v.rttSum, v.rttCnt = 0, 0
	if avgRTT <= 0 || v.minRTT <= 0 {
		return
	}
	// diff in packets: cwnd*(RTT-baseRTT)/RTT / mss
	diff := v.cwnd * float64(avgRTT-v.minRTT) / float64(avgRTT) / v.mss
	if v.inSlowStart {
		if diff > 1 {
			v.inSlowStart = false
		} else {
			// Double every other RTT: +50% per RTT approximates it.
			v.cwnd += v.cwnd / 2
			return
		}
	}
	switch {
	case diff < v.alpha:
		v.cwnd += v.mss
	case diff > v.beta:
		v.cwnd -= v.mss
	}
	v.cwnd = clampWindow(v.cwnd, 2*v.mss, 0)
}

// OnLoss halves the window (Vegas falls back to Reno behaviour on loss).
func (v *Vegas) OnLoss(l transport.LossInfo) {
	if l.Timeout {
		v.cwnd = 2 * v.mss
		v.inSlowStart = true
		v.lastCut = l.Now
		return
	}
	if !v.lossEvent(l.Now) {
		return
	}
	v.cwnd = clampWindow(v.cwnd/2, 2*v.mss, 0)
	v.inSlowStart = false
}

// Control returns the window; Vegas is ACK-clocked.
func (v *Vegas) Control() transport.Transmission {
	return transport.Transmission{CwndBytes: int(v.cwnd)}
}

// Cwnd exposes the window in bytes.
func (v *Vegas) Cwnd() float64 { return v.cwnd }

// SetCwnd forces the window (used by Nimbus at mode switches).
func (v *Vegas) SetCwnd(w float64) {
	v.cwnd = clampWindow(w, 2*v.mss, 0)
	v.inSlowStart = false
}
