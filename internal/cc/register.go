package cc

import (
	"fmt"

	"nimbus/internal/scheme"
	"nimbus/internal/transport"
)

// Every baseline congestion controller in this package registers itself
// with the scheme registry, so experiments, sweeps, and CLIs construct
// them from spec strings ("cubic", "copa(delta=0.1)") instead of a
// hand-maintained switch. A constructor added here without a matching
// Register call fails TestEveryControllerRegistered in internal/scheme.

// fixed registers a parameterless scheme.
func fixed(name, doc string, mk func() transport.Controller) {
	scheme.Register(name, doc, nil, func(scheme.BuildContext, scheme.Args) (transport.Controller, error) {
		return mk(), nil
	})
}

func init() {
	fixed("cubic", "TCP Cubic (RFC 8312), the paper's primary TCP-competitive algorithm",
		func() transport.Controller { return NewCubic() })
	fixed("reno", "TCP NewReno: slow start, AIMD congestion avoidance",
		func() transport.Controller { return NewReno() })
	fixed("vegas", "TCP Vegas: delay-controlling, holds alpha..beta own packets queued",
		func() transport.Controller { return NewVegas() })
	fixed("bbr", "BBR v1: model-based, paces at the estimated bottleneck rate",
		func() transport.Controller { return NewBBR() })
	fixed("vivace", "PCC-Vivace: online-learning rate control over monitor intervals",
		func() transport.Controller { return NewVivace() })
	fixed("compound", "Compound TCP: sum of loss-based and delay-based windows",
		func() transport.Controller { return NewCompound() })

	deltaParam := scheme.Param{
		Name: "delta", Kind: scheme.KindFloat, Default: scheme.Num(0.5),
		Doc: "base delta: target rate is 1/(delta*dq)",
	}
	copaFactory := func(defaultOnly bool) scheme.Factory {
		return func(_ scheme.BuildContext, a scheme.Args) (transport.Controller, error) {
			delta := a.Float("delta")
			if delta <= 0 {
				return nil, fmt.Errorf("delta must be > 0, got %g", delta)
			}
			var c *Copa
			if defaultOnly {
				c = NewCopaDefaultMode()
			} else {
				c = NewCopa()
			}
			c.deltaDefault = delta
			return c, nil
		}
	}
	scheme.Register("copa", "Copa with its own default/TCP-competitive mode switching",
		[]scheme.Param{deltaParam}, copaFactory(false))
	scheme.Register("copa-default", "Copa pinned to default (delay-control) mode",
		[]scheme.Param{deltaParam}, copaFactory(true))

	scheme.Register("fixedwindow", "constant congestion window, ACK-clocked (Table 1)",
		[]scheme.Param{{
			Name: "cwnd", Kind: scheme.KindFloat, Default: scheme.Num(10),
			Doc: "window size in packets",
		}},
		func(_ scheme.BuildContext, a scheme.Args) (transport.Controller, error) {
			cwnd := a.Float("cwnd")
			if cwnd < 1 || cwnd != float64(int(cwnd)) {
				return nil, fmt.Errorf("cwnd must be a positive integer packet count, got %g", cwnd)
			}
			return NewFixedWindow(int(cwnd)), nil
		})
}
