package cc

import (
	"math"

	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Compound implements Compound TCP (Tan et al., INFOCOM 2006): the
// congestion window is the sum of a loss-based component (Reno-like cwnd)
// and a delay-based component (dwnd) that grows aggressively when the
// queue is empty and retreats as queueing builds. The paper uses Compound
// to show that summing the two windows (instead of switching modes)
// inherits the high queueing delay of the loss-based part (Fig 8).
type Compound struct {
	common
	cwnd float64 // loss-based component, bytes
	dwnd float64 // delay-based component, bytes

	ssthresh float64
	alpha    float64
	beta     float64
	eta      float64
	k        float64
	gamma    float64 // packets of self-inflicted queueing allowed
	lastDwnd sim.Time
	rttSum   sim.Time
	rttCnt   int
}

// NewCompound returns a Compound TCP controller with the published
// parameters (alpha=1/8, beta=1/2, k=3/4, gamma=30).
func NewCompound() *Compound {
	return &Compound{alpha: 0.125, beta: 0.5, eta: 1, k: 0.75, gamma: 30}
}

// Init sets the initial windows.
func (c *Compound) Init(env *transport.Env) {
	c.init(env)
	c.cwnd = 10 * c.mss
	c.dwnd = 0
	c.ssthresh = 1 << 30
}

func (c *Compound) win() float64 { return c.cwnd + c.dwnd }

// OnAck grows cwnd like Reno and adjusts dwnd once per RTT.
func (c *Compound) OnAck(a transport.AckInfo) {
	c.seeRTT(a.RTT)
	c.rttSum += a.RTT
	c.rttCnt++
	if c.win() < c.ssthresh {
		c.cwnd += float64(a.Bytes)
	} else {
		c.cwnd += c.mss * float64(a.Bytes) / c.win()
	}
	guard := c.srtt
	if guard == 0 {
		guard = 100 * sim.Millisecond
	}
	now := c.now()
	if now-c.lastDwnd < guard || c.minRTT <= 0 || c.rttCnt == 0 {
		return
	}
	c.lastDwnd = now
	avgRTT := c.rttSum / sim.Time(c.rttCnt)
	c.rttSum, c.rttCnt = 0, 0
	// diff: estimated self-queued packets.
	diff := c.win() * float64(avgRTT-c.minRTT) / float64(avgRTT) / c.mss
	winPkts := c.win() / c.mss
	if diff < c.gamma {
		// Aggressive growth: dwnd += alpha*win^k - 1 (packets).
		inc := c.alpha*math.Pow(winPkts, c.k) - 1
		if inc < 0 {
			inc = 0
		}
		c.dwnd += inc * c.mss
	} else {
		dec := c.eta * diff
		c.dwnd -= dec * c.mss
	}
	if c.dwnd < 0 {
		c.dwnd = 0
	}
}

// OnLoss halves the total window, splitting the reduction per CTCP.
func (c *Compound) OnLoss(l transport.LossInfo) {
	if l.Timeout {
		c.ssthresh = clampWindow(c.win()/2, 2*c.mss, 0)
		c.cwnd = c.mss
		c.dwnd = 0
		c.lastCut = l.Now
		return
	}
	if !c.lossEvent(l.Now) {
		return
	}
	w := c.win()
	c.cwnd = clampWindow(c.cwnd/2, 2*c.mss, 0)
	c.dwnd = math.Max(0, w*(1-c.beta)-c.cwnd)
	c.ssthresh = clampWindow(w*(1-c.beta), 2*c.mss, 0)
}

// Control returns the combined window; Compound is ACK-clocked.
func (c *Compound) Control() transport.Transmission {
	return transport.Transmission{CwndBytes: int(c.win())}
}

// Windows exposes (cwnd, dwnd) in bytes for tests.
func (c *Compound) Windows() (float64, float64) { return c.cwnd, c.dwnd }
