// Package runner is the parallel experiment engine: a declarative
// Scenario spec with grid-sweep expansion, and a worker pool that executes
// scenarios across goroutines while keeping results byte-identical to a
// sequential run. Each simulation is single-threaded-deterministic by
// design (internal/sim), which makes sweeps embarrassingly parallel: the
// engine's only job is to hand every run an isolated random stream, fan
// the runs out, and reassemble results in submission order.
//
// # Key stability
//
// Scenario.Key is the contract that makes all of this hold together: a
// canonical one-line encoding of every parameter, fed to sim.DeriveSeed
// to give each scenario its own random stream. Three guarantees follow,
// and every change to Scenario must preserve them:
//
//  1. Two scenarios differing in any field have different keys (enforced
//     by TestKeyCoversEveryField via reflection), so no two distinct
//     cells of a sweep ever share a stream.
//  2. A scenario's key never depends on where it appears — not on the
//     grid that expanded it, the worker that ran it, or the fields that
//     happened to vary — so results are reproducible cell by cell.
//  3. New fields append to the key only when set ("/flows=", "/topo=",
//     "/churn=", ...), so every scenario expressible before the field
//     existed keeps its exact key, derived seed, and results.
//
// Fields whose string form has equivalent spellings (topologies, flow
// mixes, churn specs) must be stored canonicalized, as the CLIs do:
// the string enters the key verbatim.
package runner

import (
	"fmt"
	"sort"
	"strings"

	"nimbus/internal/scheme"
	"nimbus/internal/sim"
)

// Scenario is a declarative description of one simulation run on the
// single-bottleneck topology: the link, the scheme under test, the cross
// traffic it competes with, and the horizon. New workloads are data, not
// code — build Scenario values (directly or via Grid) and hand them to a
// Runner.
type Scenario struct {
	// Name labels the scenario in results; Grid.Expand derives it from
	// the swept fields when empty.
	Name string `json:"name"`

	// Bottleneck.
	RateMbps    float64 `json:"rate_mbps"`
	RTTms       float64 `json:"rtt_ms"`
	BufferMs    float64 `json:"buffer_ms"`
	AQM         string  `json:"aqm,omitempty"` // droptail (default), pie, codel
	PIETargetMs float64 `json:"pie_target_ms,omitempty"`

	// Time-varying bottleneck capacity. LinkTrace names an embedded
	// capacity trace (netem.TraceNames) or a trace file path; RatePattern
	// is a netem.ParsePattern spec ("step:6:24:2000", "ramp:4:40:8000",
	// "outage:10000:3000") anchored at RateMbps. Both empty means the
	// constant-rate link; setting both is a scenario error at rig time.
	LinkTrace   string `json:"link_trace,omitempty"`
	RatePattern string `json:"rate_pattern,omitempty"`

	// Topology selects the path topology: "" is the paper's single
	// bottleneck; otherwise a preset name ("access-hop", "parking-lot",
	// "rev-congested") or a chain spec like "access(x4,5ms)->bn"
	// (netem.ParseTopology). Store the canonical form
	// (netem.CanonicalTopology, as the CLIs do — it maps the single
	// topology to ""): the string enters Key() verbatim, so equivalent
	// spellings would otherwise derive different seeds.
	Topology string `json:"topology,omitempty"`

	// Scheme under test: a typed scheme spec ("nimbus", "copa(delta=0.1)",
	// "nimbus(pulse=0.1,mu=est)"; see the internal/scheme registry).
	// Ignored when FlowMix is set.
	Scheme scheme.Spec `json:"scheme"`

	// FlowMix, when non-empty, replaces the single scheme under test with
	// a heterogeneous flow set: "+"-separated items of the form
	// SPEC[*COUNT][@STARTs[:STOPs]], e.g. "nimbus*2+cubic@10" (two Nimbus
	// flows at t=0 and one Cubic flow joining at t=10s). internal/exp
	// parses it into FlowSpecs and reports per-flow and fairness metrics.
	// Store the canonical form (exp.FormatFlowMix of exp.ParseFlowMix, as
	// the CLIs do): the string enters Key() verbatim, so equivalent
	// spellings would otherwise derive different seeds.
	FlowMix string `json:"flow_mix,omitempty"`

	// Churn, when non-empty, runs the scenario as a flow-churn workload:
	// the scheme under test competes with a session-arrival process
	// (internal/workload) of short flows arriving and departing for the
	// whole horizon, and the result carries detection-accuracy and
	// fairness-under-churn metrics. The spec is a workload.Spec string
	// like "bulk(load=24)" or "web(load=12,cc=cubic)". Store the
	// canonical form (workload.ParseSpec(...).String(), as the CLIs do):
	// the string enters Key() verbatim, so equivalent spellings would
	// otherwise derive different seeds.
	Churn string `json:"churn,omitempty"`

	// Cross traffic (internal/exp.AddCross kinds) and its offered rate.
	Cross         string  `json:"cross,omitempty"`
	CrossRateMbps float64 `json:"cross_rate_mbps,omitempty"`
	CrossRTTms    float64 `json:"cross_rtt_ms,omitempty"`

	// FluidCross, when non-empty, runs the scenario's cross traffic as a
	// fluid rate process instead of per-packet events
	// (crosstraffic.Fluid): "on" for the default resample interval, or
	// "dt=5ms". Only cross kinds with a fluid model (cbr, poisson,
	// cubic, reno) are affected; the foreground scheme stays exact
	// per-packet. Fluid runs approximate the packet path, so they get
	// their own key — results are not byte-comparable to packet runs.
	// Store the canonical form (crosstraffic.ParseFluidSpec(...).String(),
	// as the CLIs do): the string enters Key() verbatim.
	FluidCross string `json:"fluid_cross,omitempty"`

	// LinkBurst, when > 1, enables burst link forwarding with that
	// per-event packet budget on every topology link without its own
	// burst= parameter (exp.NetConfig.LinkBurst). Bursting changes when
	// delivery callbacks execute (see netem.Link.SetBurst), so burst
	// scenarios get their own key — results are not byte-comparable to
	// per-packet runs.
	LinkBurst int `json:"link_burst,omitempty"`

	DurationSec float64 `json:"duration_sec"`
	// Seed is the seed the user asked for (what names and result rows
	// report). RunSeed, when non-zero, is what the simulation actually
	// uses: Grid.Expand derives it from the scenario's own parameters so
	// every cell of a sweep gets an isolated random stream.
	Seed    int64 `json:"seed"`
	RunSeed int64 `json:"run_seed,omitempty"`
}

// EffectiveSeed returns the seed the simulation should run with.
func (s Scenario) EffectiveSeed() int64 {
	if s.RunSeed != 0 {
		return s.RunSeed
	}
	return s.Seed
}

// Key returns a canonical one-line encoding of every parameter. It is the
// label fed to sim.DeriveSeed, so two scenarios differing in any field get
// independent random streams, and the same scenario always gets the same
// stream no matter where in a sweep it appears.
//
// Every Scenario field must be encoded here except Name (a display label)
// and RunSeed (derived from this very key). TestKeyCoversEveryField
// enforces that invariant by reflection — adding a field without
// extending Key (or the test's exemption list) fails the build.
func (s Scenario) Key() string {
	key := fmt.Sprintf("rate=%g/trace=%s/pattern=%s/rtt=%g/buf=%g/aqm=%s/pie=%g/scheme=%s/cross=%s:%g@%g/dur=%g/seed=%d",
		s.RateMbps, s.LinkTrace, s.RatePattern, s.RTTms, s.BufferMs, s.AQM, s.PIETargetMs, s.Scheme,
		s.Cross, s.CrossRateMbps, s.CrossRTTms, s.DurationSec, s.Seed)
	// Appended only when set, so every pre-existing scenario keeps its
	// exact key (and therefore its derived seed and results).
	if s.FlowMix != "" {
		key += "/flows=" + s.FlowMix
	}
	if s.Topology != "" {
		key += "/topo=" + s.Topology
	}
	if s.LinkBurst > 0 {
		key += fmt.Sprintf("/burst=%d", s.LinkBurst)
	}
	if s.Churn != "" {
		key += "/churn=" + s.Churn
	}
	if s.FluidCross != "" {
		key += "/fluid=" + s.FluidCross
	}
	return key
}

// CacheKey returns the content address of this scenario's result for a
// given simulator build: Key()/effectiveSeed/codeVersion. It is the key
// the experiment service (internal/svc) stores results under, so the
// composition is load-bearing:
//
//   - Key() covers every scenario parameter (TestKeyCoversEveryField), so
//     two scenarios that could produce different results never share a
//     cached entry.
//   - EffectiveSeed() covers RunSeed, which Key() deliberately omits (it
//     is derived from the key for Grid-expanded scenarios but may be set
//     freely on hand-built ones) yet changes the random stream the
//     simulation actually runs with.
//   - codeVersion identifies the simulation code that produced the
//     result, so a rebuild with different behavior invalidates every
//     entry instead of serving stale results.
//
// TestCacheKeyCoversEveryField pins this composition by reflection.
func (s Scenario) CacheKey(codeVersion string) string {
	return fmt.Sprintf("%s/%d/%s", s.Key(), s.EffectiveSeed(), codeVersion)
}

// label is the human-readable name Grid.Expand assigns, listing only the
// fields that vary.
func (s Scenario) label(varying []string) string {
	parts := make([]string, 0, len(varying))
	for _, f := range varying {
		switch f {
		case "rate":
			parts = append(parts, fmt.Sprintf("rate=%g", s.RateMbps))
		case "rtt":
			parts = append(parts, fmt.Sprintf("rtt=%g", s.RTTms))
		case "buf":
			parts = append(parts, fmt.Sprintf("buf=%g", s.BufferMs))
		case "trace":
			parts = append(parts, "trace="+s.LinkTrace)
		case "pattern":
			parts = append(parts, "pattern="+s.RatePattern)
		case "topo":
			topo := s.Topology
			if topo == "" {
				topo = "single"
			}
			parts = append(parts, "topo="+topo)
		case "aqm":
			parts = append(parts, "aqm="+s.AQM)
		case "scheme":
			parts = append(parts, s.Scheme.String())
		case "flows":
			parts = append(parts, "flows="+s.FlowMix)
		case "churn":
			parts = append(parts, "churn="+s.Churn)
		case "cross":
			parts = append(parts, fmt.Sprintf("cross=%s:%g", s.Cross, s.CrossRateMbps))
		case "fluid":
			fluid := s.FluidCross
			if fluid == "" {
				fluid = "off"
			}
			parts = append(parts, "fluid="+fluid)
		case "seed":
			parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
		}
	}
	if len(parts) == 0 {
		if s.FlowMix != "" {
			return s.FlowMix
		}
		return s.Scheme.String()
	}
	return strings.Join(parts, "/")
}

// Cross pairs a cross-traffic kind with its offered rate for sweeps.
type Cross struct {
	Kind     string  `json:"kind"`
	RateMbps float64 `json:"rate_mbps"`
}

// Grid is a declarative sweep: the cartesian product of every non-empty
// axis applied to a base scenario. Empty axes keep the base value.
type Grid struct {
	Base Scenario `json:"base"`

	RatesMbps    []float64     `json:"rates_mbps,omitempty"`
	LinkTraces   []string      `json:"link_traces,omitempty"`
	RatePatterns []string      `json:"rate_patterns,omitempty"`
	Topologies   []string      `json:"topologies,omitempty"`
	RTTsMs       []float64     `json:"rtts_ms,omitempty"`
	BuffersMs    []float64     `json:"buffers_ms,omitempty"`
	AQMs         []string      `json:"aqms,omitempty"`
	Schemes      []scheme.Spec `json:"schemes,omitempty"`
	FlowMixes    []string      `json:"flow_mixes,omitempty"`
	Churns       []string      `json:"churns,omitempty"`
	Crosses      []Cross       `json:"crosses,omitempty"`
	// Fluids sweeps the fluid cross-traffic axis; "" means the exact
	// per-packet path (the base default).
	Fluids []string `json:"fluids,omitempty"`
	Seeds  []int64  `json:"seeds,omitempty"`
}

// Expand returns the scenarios of the grid in a stable order (outermost
// axis first: scheme, flow mix, churn, cross, fluid, rate, trace,
// pattern, topology, rtt, buffer, aqm, seed). Every scenario gets a per-run seed derived from its own
// parameters via sim.DeriveSeed, so results do not depend on expansion
// order or worker count, and a Name naming the varying axes.
func (g Grid) Expand() []Scenario {
	rates := g.RatesMbps
	if len(rates) == 0 {
		rates = []float64{g.Base.RateMbps}
	}
	traces := g.LinkTraces
	if len(traces) == 0 {
		traces = []string{g.Base.LinkTrace}
	}
	patterns := g.RatePatterns
	if len(patterns) == 0 {
		patterns = []string{g.Base.RatePattern}
	}
	topos := g.Topologies
	if len(topos) == 0 {
		topos = []string{g.Base.Topology}
	}
	rtts := g.RTTsMs
	if len(rtts) == 0 {
		rtts = []float64{g.Base.RTTms}
	}
	bufs := g.BuffersMs
	if len(bufs) == 0 {
		bufs = []float64{g.Base.BufferMs}
	}
	aqms := g.AQMs
	if len(aqms) == 0 {
		aqms = []string{g.Base.AQM}
	}
	schemes := g.Schemes
	if len(schemes) == 0 {
		schemes = []scheme.Spec{g.Base.Scheme}
	}
	mixes := g.FlowMixes
	if len(mixes) == 0 {
		mixes = []string{g.Base.FlowMix}
	}
	churns := g.Churns
	if len(churns) == 0 {
		churns = []string{g.Base.Churn}
	}
	// A flow mix replaces the scheme under test, so sweeping both axes
	// would emit duplicate scenarios whose scheme= key component differs
	// but whose runs are identical in everything except the derived
	// seed — results that look scheme-dependent while the scheme was
	// never used. FlowMixes therefore collapses the scheme axis.
	if len(g.FlowMixes) > 0 || g.Base.FlowMix != "" {
		schemes = []scheme.Spec{{}}
	}
	crosses := g.Crosses
	if len(crosses) == 0 {
		crosses = []Cross{{Kind: g.Base.Cross, RateMbps: g.Base.CrossRateMbps}}
	}
	fluids := g.Fluids
	if len(fluids) == 0 {
		fluids = []string{g.Base.FluidCross}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{g.Base.Seed}
	}

	var varying []string
	for _, v := range []struct {
		name string
		n    int
	}{
		{"scheme", len(schemes)}, {"flows", len(mixes)}, {"churn", len(churns)}, {"cross", len(crosses)}, {"fluid", len(fluids)}, {"rate", len(rates)},
		{"trace", len(traces)}, {"pattern", len(patterns)}, {"topo", len(topos)},
		{"rtt", len(rtts)}, {"buf", len(bufs)}, {"aqm", len(aqms)}, {"seed", len(seeds)},
	} {
		if v.n > 1 {
			varying = append(varying, v.name)
		}
	}

	out := make([]Scenario, 0, len(schemes)*len(mixes)*len(churns)*len(crosses)*len(fluids)*len(rates)*len(traces)*len(patterns)*len(topos)*len(rtts)*len(bufs)*len(aqms)*len(seeds))
	for _, sp := range schemes {
		for _, mix := range mixes {
			for _, churn := range churns {
				for _, cross := range crosses {
					for _, fluid := range fluids {
						for _, rate := range rates {
							for _, trace := range traces {
								for _, pattern := range patterns {
									for _, topo := range topos {
										for _, rtt := range rtts {
											for _, buf := range bufs {
												for _, aqm := range aqms {
													for _, seed := range seeds {
														sc := g.Base
														sc.Scheme = sp
														sc.FlowMix = mix
														sc.Churn = churn
														sc.Cross = cross.Kind
														sc.CrossRateMbps = cross.RateMbps
														sc.FluidCross = fluid
														sc.RateMbps = rate
														sc.LinkTrace = trace
														sc.RatePattern = pattern
														sc.Topology = topo
														sc.RTTms = rtt
														sc.BufferMs = buf
														sc.AQM = aqm
														sc.Seed = seed
														sc.RunSeed = sim.DeriveSeed(seed, sc.Key())
														if sc.Name == "" || sc.Name == g.Base.Name {
															sc.Name = sc.label(varying)
														}
														out = append(out, sc)
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Result is one structured row of a sweep.
type Result struct {
	Scenario Scenario `json:"scenario"`
	// Metrics holds named measurements (mean_mbps, qdelay_p95_ms, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Events is the number of simulator events executed.
	Events uint64 `json:"events"`
	// WallSec is the host wall-clock time the run took.
	WallSec float64 `json:"wall_sec"`
	// Err is set when the run failed; Metrics is then nil.
	Err string `json:"err,omitempty"`
}

// EventsPerSec returns simulator events per wall-clock second.
func (r Result) EventsPerSec() float64 {
	if r.WallSec <= 0 {
		return 0
	}
	return float64(r.Events) / r.WallSec
}

// MetricNames returns the union of metric keys across results, sorted.
func MetricNames(rs []Result) []string {
	set := map[string]bool{}
	for _, r := range rs {
		for k := range r.Metrics {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
