package runner

import (
	"fmt"
	"reflect"
	"testing"

	"nimbus/internal/scheme"
)

// keyExempt lists the Scenario fields deliberately excluded from Key():
// Name is a display label derived from the swept axes, and RunSeed is
// itself derived from the key, so including either would be circular.
var keyExempt = map[string]bool{
	"Name":    true,
	"RunSeed": true,
}

// TestKeyCoversEveryField perturbs each Scenario field by reflection and
// requires Key() to change. It fails the moment someone adds a field to
// Scenario without encoding it in Key() (or consciously exempting it),
// which would silently give distinct scenarios the same random stream.
func TestKeyCoversEveryField(t *testing.T) {
	base := Scenario{}
	baseKey := base.Key()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		probe := base
		fv := reflect.ValueOf(&probe).Elem().Field(i)
		switch {
		case f.Type == reflect.TypeOf(scheme.Spec{}):
			fv.Set(reflect.ValueOf(scheme.MustParse("probe-scheme")))
		case f.Type.Kind() == reflect.String:
			fv.SetString("probe-" + f.Name)
		case f.Type.Kind() == reflect.Float64:
			fv.SetFloat(123.456)
		case f.Type.Kind() == reflect.Int64 || f.Type.Kind() == reflect.Int:
			fv.SetInt(987654321)
		case f.Type.Kind() == reflect.Bool:
			fv.SetBool(true)
		default:
			t.Fatalf("field %s has kind %s: teach this test how to perturb it", f.Name, f.Type.Kind())
		}
		changed := probe.Key() != baseKey
		if keyExempt[f.Name] {
			if changed {
				t.Errorf("field %s is exempt from Key() but changes it; drop the exemption", f.Name)
			}
			continue
		}
		if !changed {
			t.Errorf("field %s is not encoded in Scenario.Key(): two scenarios differing only in %s would share a random stream", f.Name, f.Name)
		}
	}
}

// TestCacheKeyCoversEveryField perturbs each Scenario field by reflection
// and requires CacheKey() to change. The cache key is what the experiment
// service stores results under, so the bar is stricter than Key()'s:
// every field except the Name display label must reach it — including
// RunSeed, which Key() omits (it is derived from the key) but which
// changes what the simulation actually runs. Adding a Scenario field
// without invalidating cached results is therefore impossible: the field
// must flow into Key() (and hence CacheKey) or be consciously exempted
// here AND in keyExempt.
func TestCacheKeyCoversEveryField(t *testing.T) {
	const version = "codev1"
	base := Scenario{}
	baseKey := base.CacheKey(version)
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		probe := base
		fv := reflect.ValueOf(&probe).Elem().Field(i)
		switch {
		case f.Type == reflect.TypeOf(scheme.Spec{}):
			fv.Set(reflect.ValueOf(scheme.MustParse("probe-scheme")))
		case f.Type.Kind() == reflect.String:
			fv.SetString("probe-" + f.Name)
		case f.Type.Kind() == reflect.Float64:
			fv.SetFloat(123.456)
		case f.Type.Kind() == reflect.Int64 || f.Type.Kind() == reflect.Int:
			fv.SetInt(987654321)
		case f.Type.Kind() == reflect.Bool:
			fv.SetBool(true)
		default:
			t.Fatalf("field %s has kind %s: teach this test how to perturb it", f.Name, f.Type.Kind())
		}
		changed := probe.CacheKey(version) != baseKey
		if f.Name == "Name" {
			if changed {
				t.Errorf("display label %s changes CacheKey(); equivalent scenarios with different labels would re-simulate", f.Name)
			}
			continue
		}
		if !changed {
			t.Errorf("field %s is not encoded in Scenario.CacheKey(): changing %s would serve a stale cached result", f.Name, f.Name)
		}
	}
}

// TestCacheKeyComposition pins the exact Key()/seed/codeVersion layout so
// the on-disk cache address of every existing result is stable: a change
// here invalidates every cache directory in the wild and must be
// deliberate.
func TestCacheKeyComposition(t *testing.T) {
	sc := Scenario{RateMbps: 96, RTTms: 50, BufferMs: 100, DurationSec: 30, Seed: 7}
	want := sc.Key() + "/7/v-abc"
	if got := sc.CacheKey("v-abc"); got != want {
		t.Fatalf("CacheKey = %q, want %q", got, want)
	}
	// RunSeed overrides the user seed in the composition: it is what the
	// simulation actually runs with.
	sc.RunSeed = 42
	want = sc.Key() + "/42/v-abc"
	if got := sc.CacheKey("v-abc"); got != want {
		t.Fatalf("CacheKey with RunSeed = %q, want %q", got, want)
	}
	// A code-version change misses; a seed change misses.
	keys := map[string]bool{
		sc.CacheKey("v-abc"): true,
		sc.CacheKey("v-def"): true,
	}
	sc.RunSeed = 43
	keys[sc.CacheKey("v-abc")] = true
	if len(keys) != 3 {
		t.Fatalf("cache keys collide across code versions / run seeds: %v", keys)
	}
}

// TestKeyDistinguishesNewAxes pins the concrete encodings of the
// time-varying and topology axes (a regression guard beyond the
// reflection sweep).
func TestKeyDistinguishesNewAxes(t *testing.T) {
	a := Scenario{RateMbps: 48, LinkTrace: "cell-ramp"}
	b := Scenario{RateMbps: 48, LinkTrace: "outage"}
	c := Scenario{RateMbps: 48, RatePattern: "step:6:24:2000"}
	d := Scenario{RateMbps: 48, Topology: "parking-lot"}
	e := Scenario{RateMbps: 48, Topology: "access(x4,5ms)->bn"}
	f := Scenario{RateMbps: 48, LinkBurst: 16}
	g := Scenario{RateMbps: 48, Churn: "bulk(load=24)"}
	h := Scenario{RateMbps: 48, Churn: "web(load=24)"}
	i := Scenario{RateMbps: 48, FluidCross: "on"}
	j := Scenario{RateMbps: 48, FluidCross: "dt=5ms"}
	keys := map[string]string{}
	for _, sc := range []Scenario{a, b, c, d, e, f, g, h, i, j, {RateMbps: 48}} {
		k := sc.Key()
		if prev, dup := keys[k]; dup {
			t.Fatalf("key collision between %q and %q: %s", prev, fmt.Sprintf("%+v", sc), k)
		}
		keys[k] = fmt.Sprintf("%+v", sc)
	}
}
