package runner

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunWatchedPassesThrough: a cell finishing inside the timeout comes
// back untouched.
func TestRunWatchedPassesThrough(t *testing.T) {
	sc := Scenario{Name: "fast"}
	r, reaped := RunWatched(context.Background(), sc, time.Second, func(context.Context) Result {
		return Result{Scenario: sc, Events: 7}
	})
	if reaped || r.Events != 7 || r.Err != "" {
		t.Fatalf("RunWatched = %+v reaped=%v, want the run's own result", r, reaped)
	}
	// timeout <= 0 disables the watchdog entirely.
	r, reaped = RunWatched(context.Background(), sc, 0, func(context.Context) Result {
		return Result{Scenario: sc, Events: 9}
	})
	if reaped || r.Events != 9 {
		t.Fatalf("unwatched run = %+v reaped=%v", r, reaped)
	}
}

// TestRunWatchedReapsHungCell: a run that blocks past the timeout is
// reaped into a watchdog error row, and the goroutine exits because the
// watchdog cancels the context it handed the run.
func TestRunWatchedReapsHungCell(t *testing.T) {
	sc := Scenario{Name: "hung"}
	exited := make(chan struct{})
	start := time.Now()
	r, reaped := RunWatched(context.Background(), sc, 50*time.Millisecond, func(ctx context.Context) Result {
		defer close(exited)
		<-ctx.Done()
		return Result{Scenario: sc, Err: ctx.Err().Error()}
	})
	if !reaped {
		t.Fatalf("hung cell not reaped: %+v", r)
	}
	if !strings.Contains(r.Err, "watchdog") {
		t.Fatalf("reaped row error %q does not name the watchdog", r.Err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("reap took %v, want ~the 50ms timeout", elapsed)
	}
	select {
	case <-exited:
	case <-time.After(2 * time.Second):
		t.Fatal("watched goroutine did not exit after the watchdog canceled its context")
	}
}

// TestRunWatchedGuardsPanics: a panic inside the watched goroutine
// becomes an error row, never a process crash.
func TestRunWatchedGuardsPanics(t *testing.T) {
	sc := Scenario{Name: "bad"}
	r, reaped := RunWatched(context.Background(), sc, time.Second, func(context.Context) Result {
		panic("scenario exploded")
	})
	if reaped || !strings.Contains(r.Err, "scenario exploded") {
		t.Fatalf("panicking run = %+v reaped=%v, want its panic as an error row", r, reaped)
	}
}

// TestRunnerCellTimeout: the Runner-level watchdog reaps a hung cell and
// the rest of the sweep completes normally.
func TestRunnerCellTimeout(t *testing.T) {
	scs := []Scenario{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	release := make(chan struct{})
	defer close(release)
	rn := &Runner{Workers: 2, CellTimeout: 50 * time.Millisecond}
	rs := rn.RunGrid(context.Background(), scs, func(i int, sc Scenario) Result {
		if i == 1 {
			<-release // hangs past the watchdog (released at test end)
		}
		return Result{Scenario: sc, Events: uint64(i) + 1}
	})
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	if rs[0].Err != "" || rs[2].Err != "" {
		t.Fatalf("healthy cells errored: %+v", rs)
	}
	if !strings.Contains(rs[1].Err, "watchdog") {
		t.Fatalf("hung cell result %+v, want a watchdog error row", rs[1])
	}
	if rs[1].WallSec == 0 {
		t.Fatalf("reaped row has no wall-clock: %+v", rs[1])
	}
}
