package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWorkers is the worker count used when a Runner (or Map) is given
// zero: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Map runs f(i) for i in [0,n) on a pool of workers and returns the
// results indexed by i. Results are identical to a sequential loop as long
// as f is self-contained (every experiment cell builds its own scheduler
// and random streams, so they are). workers <= 1 runs inline, 0 means
// DefaultWorkers. This is the engine's core primitive: the declarative
// Scenario path and the hand-written figure grids both go through it.
func Map[T any](workers, n int, f func(i int) T) []T {
	out := make([]T, n)
	if workers == 0 {
		workers = DefaultWorkers()
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// RunFunc executes one scenario and reports its structured result.
// internal/exp provides the standard implementation (exp.RunScenario);
// the indirection keeps this package free of a dependency on the
// experiment layer.
type RunFunc func(sc Scenario) Result

// Runner executes scenarios on a worker pool.
type Runner struct {
	// Workers is the pool size; 0 means DefaultWorkers, 1 is sequential.
	Workers int
	// CellTimeout, when > 0, bounds each cell's wall-clock time: a cell
	// still running after the timeout is reaped into an error row
	// ("watchdog: ...") and the sweep moves on. The reaped cell's
	// goroutine is released through the context RunWatched hands it;
	// a run function that ignores that context keeps running detached
	// (Go cannot kill goroutines) but no longer blocks the sweep.
	CellTimeout time.Duration
	// OnProgress, if set, is called after each completed run with the
	// number done, the total, and the result. Calls are serialized but
	// arrive in completion order, not submission order.
	OnProgress func(done, total int, r Result)
	// OnCell, if set, is called after each completed run with the cell's
	// submission index and result, under the same lock as OnProgress (so
	// the two observe cells in the same order). It exists for callers
	// that track per-cell state — the experiment service marks job cells
	// done through it.
	OnCell func(i int, r Result)
}

// IndexedRunFunc executes cell i of a grid. The index lets callers that
// track per-cell state (the experiment service's hit/miss accounting)
// correlate a run with its submission slot without threading that state
// through the Scenario.
type IndexedRunFunc func(i int, sc Scenario) Result

// Run executes every scenario through run and returns results in
// submission order, regardless of worker count or completion order.
func (rn *Runner) Run(scs []Scenario, run RunFunc) []Result {
	return rn.RunGrid(context.Background(), scs, func(_ int, sc Scenario) Result { return run(sc) })
}

// RunGrid is Run with cancellation: cells that have not started when ctx
// is done are not run and report ctx's error in their Err field (cells
// already in flight finish — a simulation is not interruptible mid-run,
// and a completed result is worth caching). Results still come back in
// submission order, one per scenario, for any worker count, and OnCell
// fires for every cell — run or cancelled — so per-cell accounting always
// reaches the total.
func (rn *Runner) RunGrid(ctx context.Context, scs []Scenario, run IndexedRunFunc) []Result {
	var mu sync.Mutex
	done := 0
	return Map(rn.Workers, len(scs), func(i int) Result {
		var r Result
		if err := ctx.Err(); err != nil {
			r = Result{Scenario: scs[i], Err: err.Error()}
		} else {
			start := time.Now()
			if rn.CellTimeout > 0 {
				r, _ = RunWatched(ctx, scs[i], rn.CellTimeout, func(context.Context) Result {
					return runGuarded(func(sc Scenario) Result { return run(i, sc) }, scs[i])
				})
			} else {
				r = runGuarded(func(sc Scenario) Result { return run(i, sc) }, scs[i])
			}
			if r.WallSec == 0 {
				r.WallSec = time.Since(start).Seconds()
			}
		}
		if rn.OnProgress != nil || rn.OnCell != nil {
			mu.Lock()
			done++
			if rn.OnProgress != nil {
				rn.OnProgress(done, len(scs), r)
			}
			if rn.OnCell != nil {
				rn.OnCell(i, r)
			}
			mu.Unlock()
		}
		return r
	})
}

// RunWatched executes run on its own goroutine under a wall-clock
// watchdog. If run returns within timeout, its result comes back with
// reaped=false. Otherwise the cell is reaped: RunWatched cancels the
// context it handed run — releasing any run function that honors it
// (blocking IO, injected hangs) so the goroutine exits — and returns an
// error row naming the watchdog, with reaped=true. A run function that
// ignores the context keeps running detached; its eventual result is
// discarded.
//
// timeout <= 0 disables the watchdog and runs inline. Panics in run are
// converted to error rows either way, so a watched goroutine can never
// tear the process down.
//
// This is the primitive the experiment service wraps around each cell
// inside the store's singleflight: when a cell hangs, the watchdog's
// error row settles the flight, so every job waiting on that cell is
// released with the error instead of blocking forever.
func RunWatched(ctx context.Context, sc Scenario, timeout time.Duration, run func(ctx context.Context) Result) (r Result, reaped bool) {
	guarded := func(cctx context.Context) Result {
		return runGuarded(func(Scenario) Result { return run(cctx) }, sc)
	}
	if timeout <= 0 {
		return guarded(ctx), false
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan Result, 1)
	go func() { ch <- guarded(cctx) }()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r = <-ch:
		return r, false
	case <-timer.C:
		cancel() // release a context-aware run so its goroutine exits
		return Result{Scenario: sc, Err: fmt.Sprintf("watchdog: cell exceeded %v", timeout)}, true
	}
}

// runGuarded converts a panicking scenario (unknown scheme, bad AQM) into
// an error row instead of tearing down the whole sweep.
func runGuarded(run RunFunc, sc Scenario) (r Result) {
	defer func() {
		if p := recover(); p != nil {
			r = Result{Scenario: sc, Err: fmt.Sprint(p)}
		}
	}()
	return run(sc)
}

// FormatProgress renders the one-line status of a completed run: position
// in the sweep, elapsed wall-clock seconds since the sweep started, the
// scenario name, and the run's simulator throughput in events per
// wall-clock second (or its error). Progress prints exactly these lines;
// the experiment service streams them per job so a remote sweep reads the
// same as a local one.
func FormatProgress(elapsed time.Duration, done, total int, r Result) string {
	status := fmt.Sprintf("%.1fs %.0f ev/s", r.WallSec, r.EventsPerSec())
	if r.Err != "" {
		status = "ERROR: " + r.Err
	}
	return fmt.Sprintf("[%3d/%3d %6.1fs] %-40s %s",
		done, total, elapsed.Seconds(), r.Scenario.Name, status)
}

// Progress returns an OnProgress callback that writes one FormatProgress
// status line per completed run to w (typically os.Stderr). The writer is
// the injection point: CLIs pass a terminal, the service a per-job event
// log, tests a buffer.
func Progress(w io.Writer) func(done, total int, r Result) {
	start := time.Now()
	return func(done, total int, r Result) {
		fmt.Fprintln(w, FormatProgress(time.Since(start), done, total, r))
	}
}
