package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"nimbus/internal/scheme"
	"nimbus/internal/sim"
)

// fakeRun is a deterministic stand-in for a simulation: its metrics depend
// only on the scenario (through the derived seed), like a real run.
func fakeRun(sc Scenario) Result {
	rng := sim.NewRand(sc.EffectiveSeed())
	return Result{
		Scenario: sc,
		Metrics: map[string]float64{
			"mean_mbps": sc.RateMbps * rng.Float64(),
			"qdelay_ms": 10 * rng.Float64(),
		},
		Events: uint64(sc.EffectiveSeed() & 0xffff),
	}
}

func testGrid() Grid {
	return Grid{
		Base:      Scenario{RateMbps: 96, RTTms: 50, BufferMs: 100, DurationSec: 30, Cross: "poisson", CrossRateMbps: 48},
		Schemes:   scheme.Specs("nimbus", "cubic", "bbr"),
		RTTsMs:    []float64{25, 50, 100},
		BuffersMs: []float64{50, 100},
		Seeds:     []int64{1, 2},
	}
}

func TestGridExpand(t *testing.T) {
	scs := testGrid().Expand()
	if len(scs) != 3*3*2*2 {
		t.Fatalf("expanded %d scenarios, want 36", len(scs))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		k := sc.Key()
		if seen[k] {
			t.Fatalf("duplicate scenario %s", k)
		}
		seen[k] = true
		if sc.RateMbps != 96 || sc.Cross != "poisson" {
			t.Fatalf("base fields not inherited: %+v", sc)
		}
		if sc.Name == "" || !strings.Contains(sc.Name, "rtt=") {
			t.Fatalf("name should list varying axes, got %q", sc.Name)
		}
	}
	// Expansion order and derived seeds are stable.
	again := testGrid().Expand()
	for i := range scs {
		if !reflect.DeepEqual(scs[i], again[i]) {
			t.Fatalf("expansion not stable at %d: %+v vs %+v", i, scs[i], again[i])
		}
	}
}

func TestGridSeedIsolation(t *testing.T) {
	scs := testGrid().Expand()
	seeds := map[int64]bool{}
	for _, sc := range scs {
		if seeds[sc.RunSeed] {
			t.Fatalf("run seed %d reused across scenarios", sc.RunSeed)
		}
		seeds[sc.RunSeed] = true
		if sc.Seed != 1 && sc.Seed != 2 {
			t.Fatalf("requested seed not preserved for reporting: %d", sc.Seed)
		}
	}
	// The derived seed depends only on the scenario, not its grid position:
	// a single-cell grid holding everything else at the same values must
	// produce the same seed as the full sweep.
	g := testGrid()
	g.Schemes = g.Schemes[:1]
	g.RTTsMs = g.RTTsMs[:1]
	g.BuffersMs = g.BuffersMs[:1]
	g.Seeds = g.Seeds[:1]
	one := g.Expand()
	if len(one) != 1 || one[0].RunSeed != scs[0].RunSeed {
		t.Fatalf("derived seed depends on grid position: %d vs %d", one[0].RunSeed, scs[0].RunSeed)
	}
}

func TestGridFlowMixCollapsesSchemeAxis(t *testing.T) {
	g := Grid{
		Base:      Scenario{RateMbps: 96, DurationSec: 10},
		Schemes:   scheme.Specs("nimbus", "cubic"),
		FlowMixes: []string{"nimbus+cubic", "nimbus*2+bbr"},
	}
	scs := g.Expand()
	// The scheme axis is ignored when flow mixes run, so it must not
	// multiply the grid (or scenarios would differ only in derived seed
	// while claiming to differ in scheme).
	if len(scs) != 2 {
		t.Fatalf("expanded %d scenarios, want 2 (one per mix)", len(scs))
	}
	for _, sc := range scs {
		if !sc.Scheme.Zero() {
			t.Fatalf("flow-mix scenario kept a scheme: %+v", sc)
		}
		if sc.FlowMix == "" {
			t.Fatalf("scenario lost its mix: %+v", sc)
		}
	}
	// Same for a base-level mix.
	g2 := Grid{Base: Scenario{FlowMix: "nimbus+cubic"}, Schemes: scheme.Specs("nimbus", "cubic")}
	if scs := g2.Expand(); len(scs) != 1 || !scs[0].Scheme.Zero() {
		t.Fatalf("base mix should collapse the scheme axis: %+v", scs)
	}
}

// marshal strips wall-clock timing so runs are comparable byte-for-byte.
func marshal(t *testing.T, rs []Result) []byte {
	t.Helper()
	for i := range rs {
		rs[i].WallSec = 0
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunnerParallelDeterminism(t *testing.T) {
	scs := testGrid().Expand()
	seq := (&Runner{Workers: 1}).Run(scs, fakeRun)
	for _, workers := range []int{2, 8, 32} {
		par := (&Runner{Workers: workers}).Run(scs, fakeRun)
		if !bytes.Equal(marshal(t, seq), marshal(t, par)) {
			t.Fatalf("workers=%d results differ from sequential", workers)
		}
	}
}

func TestRunnerProgressAndOrder(t *testing.T) {
	scs := testGrid().Expand()
	calls := 0
	rn := &Runner{Workers: 4, OnProgress: func(done, total int, r Result) {
		calls++
		if done != calls || total != len(scs) {
			t.Errorf("progress done=%d total=%d, want %d/%d", done, total, calls, len(scs))
		}
	}}
	rs := rn.Run(scs, fakeRun)
	if calls != len(scs) {
		t.Fatalf("progress called %d times, want %d", calls, len(scs))
	}
	for i := range rs {
		if rs[i].Scenario.Key() != scs[i].Key() {
			t.Fatalf("result %d out of submission order", i)
		}
	}
}

func TestRunGridCancel(t *testing.T) {
	scs := testGrid().Expand()
	ctx, cancel := context.WithCancel(context.Background())
	started := 0
	rs := (&Runner{Workers: 1}).RunGrid(ctx, scs, func(i int, sc Scenario) Result {
		if i != started {
			t.Errorf("cell %d ran out of order (want %d)", i, started)
		}
		started++
		if started == 3 {
			cancel() // cells after this one must not run
		}
		return fakeRun(sc)
	})
	if started != 3 {
		t.Fatalf("ran %d cells after cancel, want 3", started)
	}
	if len(rs) != len(scs) {
		t.Fatalf("got %d results, want one per scenario", len(rs))
	}
	for i, r := range rs {
		if i < 3 {
			if r.Err != "" {
				t.Fatalf("completed cell %d reports error %q", i, r.Err)
			}
			continue
		}
		if r.Err != context.Canceled.Error() {
			t.Fatalf("cancelled cell %d: err = %q, want %q", i, r.Err, context.Canceled)
		}
		if r.Scenario.Key() != scs[i].Key() {
			t.Fatalf("cancelled cell %d lost its scenario", i)
		}
	}
}

func TestRunGridOnCell(t *testing.T) {
	scs := testGrid().Expand()
	got := make([]bool, len(scs))
	rn := &Runner{Workers: 4, OnCell: func(i int, r Result) {
		if got[i] {
			t.Errorf("cell %d completed twice", i)
		}
		got[i] = true
		if r.Scenario.Key() != scs[i].Key() {
			t.Errorf("cell %d delivered result for wrong scenario", i)
		}
	}}
	rn.RunGrid(context.Background(), scs, func(i int, sc Scenario) Result {
		if sc.Key() != scs[i].Key() {
			t.Errorf("cell %d handed wrong scenario", i)
		}
		return fakeRun(sc)
	})
	for i, ok := range got {
		if !ok {
			t.Fatalf("cell %d never reported completion", i)
		}
	}
}

// TestProgressWritesToInjectedWriter pins the injectable progress path:
// every completed run emits exactly one FormatProgress line to the given
// writer — nothing goes to stdout — so the daemon can stream a job's
// progress and tests can assert on it.
func TestProgressWritesToInjectedWriter(t *testing.T) {
	scs := testGrid().Expand()[:5]
	var buf bytes.Buffer
	rn := &Runner{Workers: 2, OnProgress: Progress(&buf)}
	rn.Run(scs, fakeRun)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(scs) {
		t.Fatalf("progress wrote %d lines, want %d:\n%s", len(lines), len(scs), buf.String())
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, fmt.Sprintf("[%3d/%3d", i+1, len(scs))) {
			t.Fatalf("line %d = %q, want ordered [done/total ...] prefix", i, ln)
		}
		if !strings.Contains(ln, "ev/s") {
			t.Fatalf("line %d = %q, want events-per-second status", i, ln)
		}
	}
	// The line text itself is FormatProgress verbatim.
	r := Result{Scenario: Scenario{Name: "cell"}, Events: 100, WallSec: 2}
	want := "[  1/  2    3.0s] cell                                     2.0s 50 ev/s"
	if got := FormatProgress(3*time.Second, 1, 2, r); got != want {
		t.Fatalf("FormatProgress = %q, want %q", got, want)
	}
}

func TestRunnerPanicBecomesError(t *testing.T) {
	scs := []Scenario{{Name: "boom", Scheme: scheme.New("nope")}}
	rs := (&Runner{Workers: 2}).Run(scs, func(sc Scenario) Result {
		panic("unknown scheme " + sc.Scheme.String())
	})
	if rs[0].Err == "" || !strings.Contains(rs[0].Err, "unknown scheme") {
		t.Fatalf("panic not captured: %+v", rs[0])
	}
}

func TestEmitters(t *testing.T) {
	rs := (&Runner{Workers: 1}).Run(testGrid().Expand()[:4], fakeRun)

	var jbuf bytes.Buffer
	if err := WriteJSON(&jbuf, rs); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 || back[2].Metrics["mean_mbps"] != rs[2].Metrics["mean_mbps"] {
		t.Fatalf("JSON round trip lost data")
	}

	var cbuf bytes.Buffer
	if err := WriteCSV(&cbuf, rs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header+4", len(lines))
	}
	if !strings.Contains(lines[0], "mean_mbps") || !strings.Contains(lines[0], "qdelay_ms") {
		t.Fatalf("CSV header missing metrics: %s", lines[0])
	}
}

func TestMapMatchesSequential(t *testing.T) {
	f := func(i int) string { return fmt.Sprintf("cell-%d", i*i) }
	want := Map(1, 100, f)
	got := Map(16, 100, f)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Map parallel mismatch at %d", i)
		}
	}
}
