package runner

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteJSON writes results as indented JSON.
func WriteJSON(w io.Writer, rs []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// WriteCSV writes results as CSV: one row per run, scenario fields first,
// then the union of metric names in sorted order, then events and wall
// time. Missing metrics render as empty cells.
func WriteCSV(w io.Writer, rs []Result) error {
	names := MetricNames(rs)
	cw := csv.NewWriter(w)
	header := []string{"name", "scheme", "flow_mix", "rate_mbps", "link_trace", "rate_pattern",
		"rtt_ms", "buffer_ms", "aqm", "cross", "cross_rate_mbps", "duration_sec", "seed"}
	header = append(header, names...)
	header = append(header, "events", "wall_sec", "err")
	if err := cw.Write(header); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := make([]string, 0, len(header)) // reused across rows
	for _, r := range rs {
		sc := r.Scenario
		row = append(row[:0], sc.Name, sc.Scheme.String(), sc.FlowMix, g(sc.RateMbps), sc.LinkTrace, sc.RatePattern,
			g(sc.RTTms), g(sc.BufferMs), sc.AQM,
			sc.Cross, g(sc.CrossRateMbps), g(sc.DurationSec), strconv.FormatInt(sc.Seed, 10))
		for _, n := range names {
			if v, ok := r.Metrics[n]; ok {
				row = append(row, g(v))
			} else {
				row = append(row, "")
			}
		}
		row = append(row, strconv.FormatUint(r.Events, 10), g(r.WallSec), r.Err)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFile writes results to path, choosing the format from the
// extension (".csv" → CSV, anything else → JSON).
func WriteFile(path string, rs []Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = WriteCSV(f, rs)
	} else {
		err = WriteJSON(f, rs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("runner: writing %s: %w", path, err)
	}
	return nil
}
