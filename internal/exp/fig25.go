package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig25Row is one cell of the App. E multi-factor sweep: detection
// accuracy for a given pulse size, Nimbus link share, link rate, and
// cross-traffic mix.
type Fig25Row struct {
	PulseFrac float64
	Share     float64 // Nimbus's fair share of the link
	RateMbps  float64
	Mix       string
	Accuracy  float64
}

// RunFig25Cell runs one cell. The share is implemented the way the paper
// does: cross traffic occupies (1 - share) of the link; for the elastic
// mixes the elastic flows are NewReno, for inelastic Poisson.
func RunFig25Cell(pulse, share, rateMbps float64, mix string, seed int64, dur sim.Time) Fig25Row {
	rtt := 50 * sim.Millisecond
	r := NewRig(NetConfig{RateMbps: rateMbps, RTT: rtt, Buffer: 100 * sim.Millisecond, Seed: seed})
	n := MustBuildScheme(spec.MustParse("nimbus").With("pulse", spec.Num(pulse)), r.MuBps)
	r.AddFlow(n, rtt, 0)

	crossRate := (1 - share) * r.MuBps
	var truly bool
	switch mix {
	case "elastic":
		// Enough NewReno flows to claim the share: one per ~24 Mbit/s.
		k := int(crossRate/24e6) + 1
		for i := 0; i < k; i++ {
			s := transport.NewSender(r.Net, rtt, cc.NewReno(), transport.Backlogged{}, r.Rng.Split(fmt.Sprintf("reno%d", i)))
			s.Start(0)
		}
		truly = true
	case "inelastic":
		newPoisson(r, rtt, crossRate).Start(0)
		truly = false
	case "mix":
		k := int(crossRate/2/24e6) + 1
		for i := 0; i < k; i++ {
			s := transport.NewSender(r.Net, rtt, cc.NewReno(), transport.Backlogged{}, r.Rng.Split(fmt.Sprintf("reno%d", i)))
			s.Start(0)
		}
		newPoisson(r, rtt, crossRate/2).Start(0)
		truly = true
	default:
		panic("exp: unknown mix " + mix)
	}

	var mt ModeTracker
	mt.Track(n.Nimbus, func(sim.Time) bool { return truly }, 10*sim.Second)
	r.Sch.RunUntil(dur)
	return Fig25Row{PulseFrac: pulse, Share: share, RateMbps: rateMbps, Mix: mix, Accuracy: mt.Acc.Accuracy()}
}

// Fig25 runs the sweep. The full grid matches App. E; quick mode runs a
// reduced but representative grid.
func Fig25(seed int64, quick bool) []Fig25Row {
	pulses := []float64{0.0625, 0.125, 0.25, 0.375, 0.5}
	shares := []float64{0.125, 0.25, 0.5, 0.75}
	rates := []float64{96, 192, 384}
	mixes := []string{"elastic", "inelastic", "mix"}
	dur := 60 * sim.Second
	if quick {
		pulses = []float64{0.125, 0.25}
		shares = []float64{0.25, 0.5}
		rates = []float64{96}
		dur = 30 * sim.Second
	}
	type cell struct {
		pulse, share, rate float64
		mix                string
	}
	var cells []cell
	for _, mix := range mixes {
		for _, rate := range rates {
			for _, share := range shares {
				for _, p := range pulses {
					cells = append(cells, cell{p, share, rate, mix})
				}
			}
		}
	}
	return mapCells(len(cells), func(i int) Fig25Row {
		c := cells[i]
		return RunFig25Cell(c.pulse, c.share, c.rate, c.mix, seed, dur)
	})
}

// FormatFig25 renders the sweep grouped by mix.
func FormatFig25(rows []Fig25Row) string {
	var b strings.Builder
	b.WriteString("Fig 25 (App E): accuracy vs pulse size x share x link rate\n")
	fmt.Fprintf(&b, "%-10s %6s %6s %6s %9s\n", "mix", "rate", "share", "pulse", "accuracy")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6.0f %6.2f %6.3f %9.2f\n", r.Mix, r.RateMbps, r.Share, r.PulseFrac, r.Accuracy)
		sum += r.Accuracy
	}
	fmt.Fprintf(&b, "mean accuracy over grid: %.2f (paper: >0.90)\n", sum/float64(len(rows)))
	b.WriteString("expected shape: accuracy rises with pulse size and link rate, falls slightly with nimbus share\n")
	return b.String()
}
