package exp

import (
	"strings"
	"testing"

	"nimbus/internal/netem"
	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	// Every experiment in the DESIGN.md index must be present.
	want := []string{
		"fig01", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
		"fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"fig23", "fig24", "fig25", "fig26", "table1", "tableE", "mobile",
		"coexist", "topo", "churn", "fidelity",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("registry missing %s", id)
		}
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("IDs() returned %d", len(ids))
	}
}

func TestEveryExperimentHasFamily(t *testing.T) {
	for _, id := range IDs() {
		if FamilyOf(id) == "" {
			t.Errorf("experiment %s belongs to no family; add one to exp.Families", id)
		}
	}
	list := FormatExperimentList()
	for _, f := range Families {
		if !strings.Contains(list, f.Name+": ") {
			t.Errorf("FormatExperimentList missing family header %q", f.Name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", 1, true); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestMustSchemeNames(t *testing.T) {
	names := []string{
		"cubic", "reno", "vegas", "copa", "copa-default", "bbr", "vivace",
		"compound", "fixedwindow", "nimbus", "nimbus-copa", "nimbus-vegas",
		"nimbus-reno", "nimbus-delay", "nimbus-competitive",
	}
	for _, n := range names {
		s := MustScheme(n, 96e6)
		if s.Ctrl == nil {
			t.Fatalf("scheme %s has nil controller", n)
		}
		if s.Name != n {
			t.Fatalf("scheme %s reports Name %q", n, s.Name)
		}
		if strings.HasPrefix(n, "nimbus") && s.Nimbus == nil {
			t.Fatalf("scheme %s should expose Nimbus", n)
		}
		if strings.HasPrefix(n, "copa") && s.Copa == nil {
			t.Fatalf("scheme %s should expose Copa", n)
		}
	}
	// Parameterized specs resolve through the same registry.
	s := MustScheme("nimbus(pulse=0.1,mu=est,multiflow=true)", 96e6)
	if s.Nimbus == nil || s.Name != "nimbus" {
		t.Fatalf("parameterized nimbus: %+v", s)
	}
}

func TestMustSchemeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown scheme")
		}
	}()
	MustScheme("quic", 96e6)
}

func TestBuildSchemeRejectsBadParams(t *testing.T) {
	for _, s := range []string{"cubic(pulse=0.1)", "nimbus(mu=maybe)", "nimbus(pulse=zero)", "copa(delta=-1)"} {
		sp, err := spec.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if _, err := BuildScheme(sp, 96e6, nil); err == nil {
			t.Errorf("BuildScheme(%q) accepted a bad spec", s)
		}
	}
}

func TestNewRigAQMs(t *testing.T) {
	for _, aqm := range []string{"droptail", "pie", "codel", ""} {
		r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, AQM: aqm, Seed: 1})
		if r.Link == nil || r.Net == nil {
			t.Fatalf("rig for %q incomplete", aqm)
		}
	}
}

func TestAddCrossKinds(t *testing.T) {
	for _, kind := range []string{"none", "cubic", "reno", "poisson", "cbr", "trace", "video4k", "video1080p"} {
		r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Seed: 1})
		if err := AddCross(r, kind, 24e6, 50*sim.Millisecond); err != nil {
			t.Fatalf("AddCross(%s): %v", kind, err)
		}
		r.Sch.RunUntil(200 * sim.Millisecond) // must not panic
	}
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Seed: 1})
	if err := AddCross(r, "bogus", 0, 0); err == nil {
		t.Fatal("expected error for unknown cross kind")
	}
}

func TestFig07PulseChecks(t *testing.T) {
	r := Fig07()
	if r.PeakFracOfMu < 0.249 || r.PeakFracOfMu > 0.251 {
		t.Fatalf("peak = %v", r.PeakFracOfMu)
	}
	if r.TroughFracOfMu < 0.082 || r.TroughFracOfMu > 0.085 {
		t.Fatalf("trough = %v", r.TroughFracOfMu)
	}
	if r.MeanFracOfMu > 1e-3 {
		t.Fatalf("mean = %v", r.MeanFracOfMu)
	}
	if r.BurstFracOfBDP < 0.035 || r.BurstFracOfBDP > 0.045 {
		t.Fatalf("burst/BDP = %v, paper says ~0.04", r.BurstFracOfBDP)
	}
}

func TestFig05Shape(t *testing.T) {
	rows := Fig05(1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	elastic, inelastic := rows[0], rows[1]
	if !elastic.Elastic || inelastic.Elastic {
		t.Fatal("row order wrong")
	}
	if elastic.Eta < 2 {
		t.Fatalf("elastic eta = %v, want >= 2", elastic.Eta)
	}
	if inelastic.Eta >= 2 {
		t.Fatalf("inelastic eta = %v, want < 2", inelastic.Eta)
	}
	// The discriminating quantity is eta (a ratio); the absolute peak
	// magnitudes depend on the operating mode but must still separate.
	if elastic.PeakAt5 < 1.5*inelastic.PeakAt5 {
		t.Fatalf("5 Hz peak separation too small: %v vs %v", elastic.PeakAt5, inelastic.PeakAt5)
	}
}

func TestFig04Shape(t *testing.T) {
	rows := Fig04(1)
	el, inel := rows[0], rows[1]
	if el.ZOscillation < 2*inel.ZOscillation {
		t.Fatalf("elastic z oscillation %v not clearly above inelastic %v",
			el.ZOscillation, inel.ZOscillation)
	}
	if el.S.Len() == 0 || el.Z.Len() == 0 {
		t.Fatal("series empty")
	}
}

func TestFig03SelfDelayRatios(t *testing.T) {
	res := RunFig03(1)
	// The paper's point: the ratios are similar in both phases, near
	// the flow's throughput share. Allow a broad band.
	if res.ElasticSelfRatio < 0.2 || res.ElasticSelfRatio > 0.8 {
		t.Fatalf("elastic self ratio = %v", res.ElasticSelfRatio)
	}
	if res.InelasticSelfRatio < 0.2 {
		t.Fatalf("inelastic self ratio = %v", res.InelasticSelfRatio)
	}
	diff := res.ElasticSelfRatio - res.InelasticSelfRatio
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.45 {
		t.Fatalf("self ratios should be indistinguishable-ish: %v vs %v",
			res.ElasticSelfRatio, res.InelasticSelfRatio)
	}
}

func TestFig23HighCBRShape(t *testing.T) {
	// The key claim of App D.1: at 80 Mbit/s CBR Copa misclassifies
	// (high wrong-mode fraction and delay), Nimbus does not.
	copa := RunFig23Point("copa", 80, 1, 40*sim.Second)
	nimb := RunFig23Point("nimbus", 80, 1, 40*sim.Second)
	if nimb.WrongModeFrac > 0.3 {
		t.Fatalf("nimbus wrong-mode at 80M CBR = %v", nimb.WrongModeFrac)
	}
	if copa.WrongModeFrac < nimb.WrongModeFrac {
		t.Fatalf("copa (%v) should be worse than nimbus (%v) at high CBR",
			copa.WrongModeFrac, nimb.WrongModeFrac)
	}
}

func TestPaths25Properties(t *testing.T) {
	paths := Paths25()
	if len(paths) != 25 {
		t.Fatalf("got %d paths", len(paths))
	}
	policers, varying := 0, 0
	names := map[string]bool{}
	for _, p := range paths {
		if names[p.Name] {
			t.Fatalf("duplicate path name %s", p.Name)
		}
		names[p.Name] = true
		if p.RateMbps <= 0 || p.RTT <= 0 || p.Buffer <= 0 {
			t.Fatalf("invalid path %+v", p)
		}
		if p.Policer {
			policers++
		}
		if p.Pattern != "" {
			varying++
			if _, err := netem.ParsePattern(p.Pattern, p.RateMbps*1e6); err != nil {
				t.Fatalf("path %s has unparseable pattern %q: %v", p.Name, p.Pattern, err)
			}
		}
	}
	if policers == 0 {
		t.Fatal("suite needs lossy/policed paths")
	}
	if policers > 12 {
		t.Fatal("too many policed paths; Fig 19 needs paths with queueing")
	}
	if varying < 3 {
		t.Fatalf("suite should include time-varying paths, got %d", varying)
	}
}

func TestParallelFigureDeterminism(t *testing.T) {
	// The acceptance bar for the sweep engine: running a figure grid on N
	// workers must produce byte-identical reports to a sequential run.
	// Fig22 (4 cells in quick mode at a shortened horizon) keeps this fast.
	old := Workers
	defer func() { Workers = old }()

	run := func(w int) string {
		Workers = w
		rows := mapCells(2, func(i int) Fig22Row {
			return RunFig22Point([]float64{0.5, 2}[i], 1, 10*sim.Second)
		})
		return FormatFig22(rows)
	}
	seq := run(1)
	for _, w := range []int{2, 8} {
		if par := run(w); par != seq {
			t.Fatalf("workers=%d report differs from sequential:\n%s\nvs\n%s", w, par, seq)
		}
	}
}

func TestRunScenarioMetrics(t *testing.T) {
	r := RunScenario(runner.Scenario{
		Name: "smoke", RateMbps: 48, RTTms: 50, BufferMs: 100,
		Scheme: spec.MustParse("nimbus"), Cross: "poisson", CrossRateMbps: 12,
		DurationSec: 8, Seed: 7,
	})
	if r.Err != "" {
		t.Fatalf("scenario failed: %s", r.Err)
	}
	if r.Events == 0 {
		t.Fatal("no simulator events recorded")
	}
	m := r.Metrics
	if m["mean_mbps"] <= 1 || m["mean_mbps"] > 48 {
		t.Fatalf("mean_mbps = %v, want within (1, 48]", m["mean_mbps"])
	}
	if _, ok := m["mode_switches"]; !ok {
		t.Fatal("nimbus scheme should report mode telemetry")
	}
	// Unknown cross kinds surface as error rows, not panics.
	bad := RunScenario(runner.Scenario{RateMbps: 48, RTTms: 50, Scheme: spec.MustParse("cubic"), Cross: "flood", DurationSec: 1})
	if bad.Err == "" {
		t.Fatal("bad cross kind should produce an error row")
	}
}

func TestFormattersNonEmpty(t *testing.T) {
	// Cheap formatting checks (no simulation).
	if s := FormatFig07(Fig07()); !strings.Contains(s, "pulse") {
		t.Fatal("fig07 format")
	}
	if s := FormatTable1([]Table1Row{{CrossTraffic: "x", PaperSays: "Elastic", Classified: "Elastic"}}); !strings.Contains(s, "Table 1") {
		t.Fatal("table1 format")
	}
	if s := FormatFig14(Fig14Result{}); !strings.Contains(s, "Fig 14") {
		t.Fatal("fig14 format")
	}
}

// TestRigLinkBurstWiring: the scenario-level LinkBurst default applies
// to every link of the rig, and a per-link burst= spec parameter wins
// over it.
func TestRigLinkBurstWiring(t *testing.T) {
	cfg := NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: 1, LinkBurst: 16}
	if got := NewRig(cfg).Link.BurstBudget(); got != 16 {
		t.Fatalf("single-bottleneck budget = %d, want 16", got)
	}
	cfg.Topology = "access(100mbps,5ms)->bn(burst=8)"
	links := NewRig(cfg).Net.Links()
	if len(links) != 2 {
		t.Fatalf("links: %d", len(links))
	}
	for _, l := range links {
		want := 16 // the scenario default...
		if l.Name == "bn" {
			want = 8 // ...unless the link spec pins its own budget
		}
		if l.BurstBudget() != want {
			t.Errorf("link %s budget = %d, want %d", l.Name, l.BurstBudget(), want)
		}
	}
}
