package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// Fig06Row reproduces one curve of Fig. 6: the CDF of the elasticity
// metric η as the fraction of cross-traffic bytes belonging to elastic
// flows varies from 0% to 100%.
type Fig06Row struct {
	ElasticFraction float64 // 0, 0.25, 0.5, 0.75, 1.0
	EtaCDF          []stats.CDFPoint
	MedianEta       float64
	FracAboveThresh float64 // fraction of samples with eta >= 2
}

// RunFig06Point runs one elastic-fraction point: cross traffic is a
// fixed-window (ACK-clocked, rate-pinned) elastic component plus Poisson
// inelastic traffic, together offering ~half the link.
func RunFig06Point(frac float64, seed int64, dur sim.Time) Fig06Row {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	s := MustScheme("nimbus", r.MuBps)
	r.AddFlow(s, 50*sim.Millisecond, 0)

	crossTotal := 48e6
	elasticRate := frac * crossTotal
	inelasticRate := (1 - frac) * crossTotal
	if elasticRate > 0 {
		// Fixed window sized for the target rate at the base RTT plus
		// expected queueing: W = rate * rtt / 8 bytes, in packets.
		rtt := 62 * sim.Millisecond // base + BasicDelay's target queue
		pkts := int(elasticRate / 8 * rtt.Seconds() / 1500)
		if pkts < 2 {
			pkts = 2
		}
		r.AddFlowSrc(Scheme{Name: "fixedwin", Ctrl: cc.NewFixedWindow(pkts)}, 50*sim.Millisecond, 0, transport.Backlogged{})
	}
	if inelasticRate > 0 {
		newPoisson(r, 40*sim.Millisecond, inelasticRate).Start(0)
	}

	var etas []float64
	s.Nimbus.OnTick = func(t core.Telemetry) {
		if t.Now > 10*sim.Second && t.EtaReady {
			etas = append(etas, t.Eta)
		}
	}
	r.Sch.RunUntil(dur)

	row := Fig06Row{ElasticFraction: frac}
	row.EtaCDF = stats.CDF(etas, 200)
	row.MedianEta = stats.Median(etas)
	above := 0
	for _, e := range etas {
		if e >= 2 {
			above++
		}
	}
	if len(etas) > 0 {
		row.FracAboveThresh = float64(above) / float64(len(etas))
	}
	return row
}

// Fig06 sweeps the elastic fraction.
func Fig06(seed int64, quick bool) []Fig06Row {
	dur := 120 * sim.Second
	if quick {
		dur = 40 * sim.Second
	}
	fracs := []float64{0, 0.25, 0.5, 0.75, 1.0}
	return mapCells(len(fracs), func(i int) Fig06Row {
		return RunFig06Point(fracs[i], seed, dur)
	})
}

// FormatFig06 renders the result.
func FormatFig06(rows []Fig06Row) string {
	var b strings.Builder
	b.WriteString("Fig 6: elasticity metric vs elastic fraction of cross traffic\n")
	fmt.Fprintf(&b, "%-16s %10s %18s\n", "elastic frac", "median eta", "frac eta>=2")
	for _, r := range rows {
		fmt.Fprintf(&b, "%15.0f%% %10.2f %18.2f\n", r.ElasticFraction*100, r.MedianEta, r.FracAboveThresh)
	}
	b.WriteString("expected shape: median eta ~1 at 0% rising monotonically; >=25% elastic mostly above threshold\n")
	return b.String()
}
