package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// Fig17Result reproduces Fig. 17: three Nimbus flows on a 192 Mbit/s
// link, with three Cubic cross flows during 30-90 s (elastic phase) and
// a 96 Mbit/s CBR stream during 90-150 s (inelastic phase). The Nimbus
// aggregate should track its fair share and keep delays low in the
// inelastic phase.
type Fig17Result struct {
	// Aggregate Nimbus throughput per phase vs fair share.
	ElasticAggMbps   float64 // fair share: 3/6 * 192 = 96
	InelasticAggMbps float64 // fair share: 192 - 96 = 96
	ElasticDelayMs   float64
	InelasticDelayMs float64
	AggSeries        []float64
}

// RunFig17 runs the scenario; scale shrinks phase lengths.
func RunFig17(seed int64, scale float64) Fig17Result {
	r := NewRig(NetConfig{RateMbps: 192, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	phase := func(x float64) sim.Time { return sim.Time(x * scale * float64(sim.Second)) }

	var probes []*FlowProbe
	for i := 0; i < 3; i++ {
		s := MustScheme("nimbus(multiflow=true)", r.MuBps)
		probes = append(probes, r.AddFlow(s, 50*sim.Millisecond, 0))
	}
	cross := r.AddCubicCross(3, 50*sim.Millisecond, phase(30))
	r.StopFlows(cross, phase(90))
	cbr := newCBR(r, 40*sim.Millisecond, 96e6)
	cbr.Start(phase(90))
	r.Sch.At(phase(150), func() { cbr.Stop() })

	// Delay sampled from all Nimbus flows per phase.
	var elDelay, inelDelay struct {
		sum float64
		n   int
	}
	for _, p := range probes {
		addDeliverTapProbe(r, p, phase(35), phase(90), &elDelay.sum, &elDelay.n,
			phase(95), phase(150), &inelDelay.sum, &inelDelay.n)
	}

	r.Sch.RunUntil(phase(150))

	var res Fig17Result
	for _, p := range probes {
		res.ElasticAggMbps += p.MeanMbps(phase(35), phase(90))
		res.InelasticAggMbps += p.MeanMbps(phase(95), phase(150))
	}
	if elDelay.n > 0 {
		res.ElasticDelayMs = elDelay.sum / float64(elDelay.n)
	}
	if inelDelay.n > 0 {
		res.InelasticDelayMs = inelDelay.sum / float64(inelDelay.n)
	}
	// Aggregate series.
	var maxLen int
	series := make([][]float64, len(probes))
	for i, p := range probes {
		series[i] = p.Tput.SeriesMbps()
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	res.AggSeries = make([]float64, maxLen)
	for _, s := range series {
		for i, v := range s {
			res.AggSeries[i] += v
		}
	}
	return res
}

func addDeliverTapProbe(r *Rig, p *FlowProbe,
	f1, t1 sim.Time, sum1 *float64, n1 *int,
	f2, t2 sim.Time, sum2 *float64, n2 *int) {
	addDeliverTap(p.Sender, func(pkt *netem.Packet, now sim.Time) {
		switch {
		case now >= f1 && now < t1:
			*sum1 += pkt.QueueDelay.Millis()
			*n1++
		case now >= f2 && now < t2:
			*sum2 += pkt.QueueDelay.Millis()
			*n2++
		}
	})
}

// Fig17 runs at full or quarter scale.
func Fig17(seed int64, quick bool) Fig17Result {
	scale := 1.0
	if quick {
		scale = 0.4
	}
	return RunFig17(seed, scale)
}

// FormatFig17 renders the result.
func FormatFig17(r Fig17Result) string {
	var b strings.Builder
	b.WriteString("Fig 17: 3 Nimbus flows + elastic (3 Cubic) then inelastic (96 Mbit/s CBR) on 192 Mbit/s\n")
	fmt.Fprintf(&b, "elastic phase:   aggregate %.1f Mbit/s (fair 96), delay %.1f ms\n", r.ElasticAggMbps, r.ElasticDelayMs)
	fmt.Fprintf(&b, "inelastic phase: aggregate %.1f Mbit/s (fair 96), delay %.1f ms\n", r.InelasticAggMbps, r.InelasticDelayMs)
	b.WriteString("expected shape: ~fair share in both phases; much lower delay in the inelastic phase\n")
	return b.String()
}
