package exp

import (
	"strings"
	"testing"

	"nimbus/internal/netem"
	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

// TestParkingLotPenalty: the classic multi-bottleneck result — a flow
// crossing three congested hops gets less than the single-hop flows it
// competes with at each hop.
func TestParkingLotPenalty(t *testing.T) {
	row := TopoParkingLot("cubic", 1, 15*sim.Second)
	if row.Mbps <= 0 {
		t.Fatalf("long flow starved entirely: %.2f Mbit/s", row.Mbps)
	}
	if row.Mbps >= row.CrossMbps {
		t.Fatalf("long flow (%.2f) should get less than single-hop flows (%.2f)", row.Mbps, row.CrossMbps)
	}
	if len(row.HopUtil) != 3 {
		t.Fatalf("want 3 hops, got %v", row.HopUtil)
	}
	for i, u := range row.HopUtil {
		if u < 0.8 {
			t.Errorf("hop %d underutilized: %.2f", i, u)
		}
	}
}

// TestRevCongestedDegrades: congesting the ACK path costs forward
// throughput relative to the same scheme on an ideal reverse path.
func TestRevCongestedDegrades(t *testing.T) {
	dur := 15 * sim.Second
	congested := TopoRevCongested("cubic", 1, dur)

	r := NewRig(NetConfig{RateMbps: 48, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: 1})
	probe := r.AddFlow(MustScheme("cubic", r.MuBps), 50*sim.Millisecond, 0)
	r.Sch.RunUntil(dur)
	ideal := probe.MeanMbps(0, dur)

	if congested.Mbps >= ideal {
		t.Fatalf("congested ACK path (%.2f) should cost throughput vs ideal (%.2f)", congested.Mbps, ideal)
	}
	if congested.Mbps <= 0 {
		t.Fatal("flow starved entirely under ACK congestion")
	}
	// The reverse link is the second hop of the preset; it must have
	// seen real contention.
	if congested.HopUtil[1] < 0.5 {
		t.Fatalf("reverse link barely used: %.2f", congested.HopUtil[1])
	}
}

// TestScenarioTopologyMetrics: a declarative scenario on a multi-hop
// topology reports per-hop metrics; the default topology reports none.
func TestScenarioTopologyMetrics(t *testing.T) {
	sc := runner.Scenario{
		RateMbps: 24, RTTms: 20, BufferMs: 50, DurationSec: 3,
		Scheme: spec.MustParse("cubic"), Topology: "access-hop", Seed: 1,
	}
	res := RunScenario(sc)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	for _, k := range []string{"hop00_access_util", "hop01_bn_util", "hop01_bn_qdelay_ms"} {
		if _, ok := res.Metrics[k]; !ok {
			t.Errorf("missing per-hop metric %s (have %v)", k, res.Metrics)
		}
	}
	sc.Topology = ""
	res = RunScenario(sc)
	if res.Err != "" {
		t.Fatal(res.Err)
	}
	for k := range res.Metrics {
		if strings.HasPrefix(k, "hop") {
			t.Errorf("single topology leaked per-hop metric %s", k)
		}
	}
}

// TestScenarioTopologyErrors: malformed topologies are scenario errors,
// not panics, in both the single-scheme and flow-mix paths.
func TestScenarioTopologyErrors(t *testing.T) {
	sc := runner.Scenario{
		RateMbps: 24, RTTms: 20, BufferMs: 50, DurationSec: 1,
		Scheme: spec.MustParse("cubic"), Topology: "no-such-topo", Seed: 1,
	}
	if res := RunScenario(sc); res.Err == "" || !strings.Contains(res.Err, "unknown topology") {
		t.Fatalf("want topology error, got %q", res.Err)
	}
	sc.Scheme = spec.Spec{}
	sc.FlowMix = "cubic*2"
	if res := RunScenario(sc); res.Err == "" || !strings.Contains(res.Err, "unknown topology") {
		t.Fatalf("flow-mix path: want topology error, got %q", res.Err)
	}
}

// TestFlowSpecRouteValidation: AddFlowSpecs rejects unknown routes before
// touching the rig.
func TestFlowSpecRouteValidation(t *testing.T) {
	r := NewRig(NetConfig{RateMbps: 24, RTT: 20 * sim.Millisecond, Seed: 1, Topology: "parking-lot"})
	_, err := r.AddFlowSpecs(
		FlowSpec{Scheme: spec.MustParse("cubic"), Route: "hop9"},
	)
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Fatalf("want route error, got %v", err)
	}
	if r.Link.DeliveredPackets != 0 || len(r.Net.RouteNames()) == 0 {
		t.Fatal("failed AddFlowSpecs disturbed the rig")
	}
	// Valid routes attach fine.
	flows, err := r.AddFlowSpecs(FlowSpec{Scheme: spec.MustParse("cubic"), Route: "hop2"})
	if err != nil || len(flows) != 1 {
		t.Fatalf("valid route rejected: %v", err)
	}
}

// TestLinkOracleInstantaneous: the oracle reports the schedule's rate at
// the current instant — including exactly at a transition, where the
// link's internal drain rate depends on event ordering. The probe below
// is scheduled at construction time for the *second* transition's
// timestamp; the link's event for that transition is only created when
// the first transition fires, so the probe runs first and the internal
// drain rate still reads the old 6e6 there. The oracle must answer from
// the schedule.
func TestLinkOracleInstantaneous(t *testing.T) {
	sch, err := netem.NewRateSchedule([]netem.RatePoint{
		{At: 0, Bps: 24e6},
		{At: 100 * sim.Millisecond, Bps: 6e6},
		{At: 200 * sim.Millisecond, Bps: 12e6},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRig(NetConfig{RateMbps: 24, RTT: 20 * sim.Millisecond, Seed: 1, Schedule: sch})
	oracle := LinkOracle{Link: r.Link}
	var atSecond, internal float64
	r.Sch.At(200*sim.Millisecond, func() {
		atSecond = oracle.Mu()
		internal = r.Link.Rate()
	})
	r.Sch.RunUntil(300 * sim.Millisecond)
	if internal != 6e6 {
		t.Fatalf("test premise broken: internal drain rate at the race is %g, want the stale 6e6", internal)
	}
	if atSecond != 12e6 {
		t.Fatalf("oracle at second transition = %g, want the scheduled 12e6", atSecond)
	}
}

// TestMultiHopOracleReadsBottleneck: in a multi-hop rig with a
// time-varying bottleneck, flows get the bottleneck hop's oracle, not an
// access hop's.
func TestMultiHopOracleReadsBottleneck(t *testing.T) {
	sched := netem.SquareWave(6e6, 24e6, 100*sim.Millisecond)
	r := NewRig(NetConfig{RateMbps: 24, RTT: 20 * sim.Millisecond, Seed: 1,
		Topology: "access-hop", Schedule: sched})
	if !r.Link.Varying() {
		t.Fatal("bottleneck link should carry the schedule")
	}
	if r.Link.Name != "bn" {
		t.Fatalf("rig bottleneck is %q, want bn", r.Link.Name)
	}
	links := r.Net.Links()
	if links[0].Name != "access" || links[0].Varying() {
		t.Fatal("access hop should stay constant-rate")
	}
	oracle := LinkOracle{Link: r.Link}
	var mid float64
	r.Sch.At(75*sim.Millisecond, func() { mid = oracle.Mu() })
	r.Sch.RunUntil(100 * sim.Millisecond)
	if mid != 6e6 {
		t.Fatalf("oracle mid-low-phase = %g, want 6e6 (the bottleneck's), not the access rate", mid)
	}
}

// TestRigMixedRateBottleneck: a chain mixing a scaled access link with an
// absolute-rate link must bottleneck at the slower link for the actual
// nominal rate — Rig.Link, the oracle, and the inherited schedule all
// hang off that choice.
func TestRigMixedRateBottleneck(t *testing.T) {
	r := NewRig(NetConfig{RateMbps: 24, RTT: 20 * sim.Millisecond, Seed: 1,
		Topology: "access(x4,5ms)->bn(48mbps)"})
	if r.Link.Name != "bn" {
		t.Fatalf("bottleneck link %q, want bn (access is x4 = 96 Mbit/s)", r.Link.Name)
	}
	if got := r.Link.Rate(); got != 48e6 {
		t.Fatalf("bottleneck rate %g, want 48e6", got)
	}
	// µ oracles must see the bottleneck's resolved capacity, not the
	// scenario's nominal rate.
	if r.MuBps != 48e6 {
		t.Fatalf("MuBps %g, want the bottleneck's 48e6", r.MuBps)
	}
	single := NewRig(NetConfig{RateMbps: 24, RTT: 20 * sim.Millisecond, Seed: 1})
	if single.MuBps != 24e6 {
		t.Fatalf("single-topology MuBps %g, want the nominal 24e6", single.MuBps)
	}
}

// TestSingleTopologyKeyStability pins the byte-identity contract at the
// scenario level: the empty topology adds nothing to Key(), and
// canonicalization maps "single" (and bare one-link chains) to "".
func TestSingleTopologyKeyStability(t *testing.T) {
	base := runner.Scenario{RateMbps: 48, Scheme: spec.MustParse("cubic")}
	withTopo := base
	withTopo.Topology = "parking-lot"
	if base.Key() == withTopo.Key() {
		t.Fatal("topology not in Key()")
	}
	if strings.Contains(base.Key(), "topo=") {
		t.Fatalf("default key grew a topo component: %s", base.Key())
	}
	for _, alias := range []string{"single", "bn()"} {
		c, err := netem.CanonicalTopology(alias)
		if err != nil || c != "" {
			t.Errorf("CanonicalTopology(%q) = %q, %v", alias, c, err)
		}
	}
}
