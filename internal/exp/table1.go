package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Table1Row is one row of Table 1: how the elasticity detector
// classifies a class of cross traffic.
type Table1Row struct {
	CrossTraffic string
	PaperSays    string // paper's expected classification
	MedianEta    float64
	FracElastic  float64 // fraction of decisions "elastic"
	Classified   string
}

// table1Cases enumerates the paper's Table 1, with BBR split by buffer
// depth (the paper's asterisk: BBR is elastic only when CWND-limited,
// i.e. with deep buffers).
var table1Cases = []struct {
	name  string
	paper string
}{
	{"cubic", "Elastic"},
	{"reno", "Elastic"},
	{"copa", "Elastic"},
	{"vegas", "Elastic"},
	{"bbr-deep", "Elastic*"},
	{"bbr-shallow", "Inelastic*"},
	{"vivace", "Inelastic*"},
	{"fixed-window", "Elastic"},
	{"app-limited", "Inelastic"},
	{"const-stream", "Inelastic"},
}

// RunTable1Case measures the detector against one cross-traffic class.
func RunTable1Case(name string, seed int64, dur sim.Time) Table1Row {
	buf := 100 * sim.Millisecond // 2 BDP default
	if name == "bbr-shallow" {
		buf = 25 * sim.Millisecond // 0.5 BDP
	}
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: buf, Seed: seed})
	// Table 1 characterizes the *detector*, not the controller: the
	// measuring flow is pinned to one mode so the cross traffic's
	// operating point is stable, and the classification is the median
	// eta against the threshold. bbr-deep is measured from competitive
	// mode because BBR is ACK-clocked only once the standing queue
	// exceeds its rtprop (the paper's asterisk).
	scheme := "nimbus-delay"
	if name == "bbr-deep" {
		scheme = "nimbus-competitive"
	}
	n := MustScheme(scheme, r.MuBps)
	r.AddFlow(n, 50*sim.Millisecond, 0)

	rtt := 50 * sim.Millisecond
	startSender := func(ctrl transport.Controller) {
		s := transport.NewSender(r.Net, rtt, ctrl, transport.Backlogged{}, r.Rng.Split("cross"))
		s.Start(0)
	}
	switch name {
	case "cubic":
		startSender(cc.NewCubic())
	case "reno":
		startSender(cc.NewReno())
	case "copa":
		startSender(cc.NewCopa())
	case "vegas":
		startSender(cc.NewVegas())
	case "bbr-deep", "bbr-shallow":
		startSender(cc.NewBBR())
	case "vivace":
		startSender(cc.NewVivace())
	case "fixed-window":
		startSender(cc.NewFixedWindow(160)) // ~48 Mbit/s at 50 ms
	case "app-limited":
		v := &crosstraffic.VideoClient{
			Net: r.Net, Rng: r.Rng.Split("video"), RTT: rtt,
			Ladder: crosstraffic.Ladder1080p,
			NewCC:  func() transport.Controller { return cc.NewCubic() },
		}
		v.Start(0)
	case "const-stream":
		newCBR(r, rtt, 48e6).Start(0)
	default:
		panic("exp: unknown table1 case " + name)
	}

	var etas []float64
	elastic := 0
	fp := 5.0
	n.Nimbus.OnTick = func(t core.Telemetry) {
		if t.Now > 10*sim.Second && n.Nimbus.Detector().Ready() {
			eta := n.Nimbus.Detector().Elasticity(fp)
			etas = append(etas, eta)
			if eta >= n.Nimbus.Detector().Threshold() {
				elastic++
			}
		}
	}
	r.Sch.RunUntil(dur)

	row := Table1Row{CrossTraffic: name}
	if len(etas) > 0 {
		row.MedianEta = median(etas)
		row.FracElastic = float64(elastic) / float64(len(etas))
	}
	row.Classified = "Inelastic"
	if row.MedianEta >= 2 {
		row.Classified = "Elastic"
	}
	return row
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion-free: use stats? avoid import cycle none; simple sort.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// Table1 runs all rows.
func Table1(seed int64, quick bool) []Table1Row {
	dur := 90 * sim.Second
	if quick {
		dur = 40 * sim.Second
	}
	return mapCells(len(table1Cases), func(i int) Table1Row {
		row := RunTable1Case(table1Cases[i].name, seed, dur)
		row.PaperSays = table1Cases[i].paper
		return row
	})
}

// FormatTable1 renders the table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: classification by the elasticity detector\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %12s %8s\n", "cross traffic", "paper", "measured", "frac-elast", "med eta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12s %12s %12.2f %8.2f\n",
			r.CrossTraffic, r.PaperSays, r.Classified, r.FracElastic, r.MedianEta)
	}
	return b.String()
}
