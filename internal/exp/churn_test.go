package exp

import (
	"strings"
	"testing"

	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
)

func TestRunChurnScenarioMetrics(t *testing.T) {
	r := RunScenario(runner.Scenario{
		Name: "churn", RateMbps: 48, RTTms: 50, BufferMs: 100,
		Scheme: spec.MustParse("nimbus"), Churn: "bulk(load=12)",
		DurationSec: 10, Seed: 1,
	})
	if r.Err != "" {
		t.Fatalf("churn scenario failed: %s", r.Err)
	}
	for _, k := range []string{
		"churn_started", "churn_completed", "churn_fct_p50_ms", "churn_fct_p95_ms",
		"churn_jain", "churn_mean_active", "churn_max_active", "churn_elastic_frac",
		"mean_mbps", "utilization", "mode_accuracy",
	} {
		if _, ok := r.Metrics[k]; !ok {
			t.Fatalf("metric %s missing: %v", k, r.Metrics)
		}
	}
	if r.Metrics["churn_completed"] < 10 {
		t.Fatalf("almost no sessions completed: %v", r.Metrics["churn_completed"])
	}
	if r.Metrics["mean_mbps"] <= 1 {
		t.Fatalf("primary flow starved: %v", r.Metrics["mean_mbps"])
	}
	if ef := r.Metrics["churn_elastic_frac"]; ef <= 0 || ef > 1 {
		t.Fatalf("elastic_frac out of range: %v", ef)
	}

	// Malformed workload specs surface as error rows, not panics.
	bad := RunScenario(runner.Scenario{
		RateMbps: 48, RTTms: 50, Scheme: spec.MustParse("cubic"),
		Churn: "bulk(load=oops)", DurationSec: 1,
	})
	if bad.Err == "" {
		t.Fatal("bad churn spec should produce an error row")
	}
	// Churn and FlowMix are mutually exclusive.
	both := RunScenario(runner.Scenario{
		RateMbps: 48, RTTms: 50, FlowMix: "nimbus+cubic",
		Churn: "bulk", DurationSec: 1,
	})
	if both.Err == "" || !strings.Contains(both.Err, "pick one") {
		t.Fatalf("churn+flowmix should be rejected, got %q", both.Err)
	}
}

func TestChurnFlowCap(t *testing.T) {
	r := RunScenario(runner.Scenario{
		RateMbps: 24, RTTms: 50, BufferMs: 100,
		Scheme: spec.MustParse("cubic"), Churn: "bulk(load=40,max=4)",
		DurationSec: 10, Seed: 3,
	})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.Metrics["churn_max_active"] > 4 {
		t.Fatalf("max=4 cap exceeded: %v active", r.Metrics["churn_max_active"])
	}
	if r.Metrics["churn_capped"] == 0 {
		t.Fatal("overloaded capped workload reports no capped arrivals")
	}
}

func TestChurnTraceWorkload(t *testing.T) {
	r := RunScenario(runner.Scenario{
		RateMbps: 48, RTTms: 50, BufferMs: 100,
		Scheme: spec.MustParse("cubic"), Churn: "trace(src=flash-crowd)",
		DurationSec: 12, Seed: 1,
	})
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	// The flash-crowd trace bursts at t=5s; by 12s plenty of its sessions
	// have arrived and completed.
	if r.Metrics["churn_started"] < 50 {
		t.Fatalf("trace replay started only %v sessions", r.Metrics["churn_started"])
	}
	if r.Metrics["churn_completed"] < 20 {
		t.Fatalf("trace replay completed only %v sessions", r.Metrics["churn_completed"])
	}
}

func TestChurnSweepDeterminism(t *testing.T) {
	g := ChurnGrid(1, true)
	// Keep the unit test quick: two schemes, two workloads, short horizon.
	g.Schemes = g.Schemes[:2]
	g.Churns = []string{"bulk(load=12)", "web(load=12)"}
	g.Base.DurationSec = 6
	run := func(workers int) string {
		return FormatChurn(RunSweep(g, workers, nil))
	}
	seq := run(1)
	if par := run(8); par != seq {
		t.Fatalf("workers=8 output differs:\n%s\nvs\n%s", par, seq)
	}
	if strings.Contains(seq, "ERROR") {
		t.Fatalf("churn sweep has error rows:\n%s", seq)
	}
	for _, w := range g.Churns {
		if !strings.Contains(seq, w) {
			t.Fatalf("report missing workload %s:\n%s", w, seq)
		}
	}
}
