package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// TableERow is one cell of the §8.2 buffer/RTT/AQM robustness summary
// (App. E.2): Nimbus's classification accuracy across buffer sizes,
// propagation delays, and with PIE at the bottleneck.
type TableERow struct {
	BufferBDP float64
	PropRTTms float64
	AQM       string
	Mix       string
	Accuracy  float64
}

// RunTableECell runs one configuration.
func RunTableECell(bufBDP float64, prop sim.Time, aqm string, pieTargetBDP float64, mix string, seed int64, dur sim.Time) TableERow {
	buf := sim.Time(bufBDP * float64(prop))
	cfg := NetConfig{RateMbps: 96, RTT: prop, Buffer: buf, AQM: aqm, Seed: seed}
	if aqm == "pie" {
		cfg.Buffer = sim.Time(4 * float64(prop)) // deep physical buffer
		cfg.PIETarget = sim.Time(pieTargetBDP * float64(prop))
	}
	r := NewRig(cfg)
	n := MustScheme("nimbus", r.MuBps)
	r.AddFlow(n, prop, 0)

	var truly bool
	switch mix {
	case "elastic":
		s := transport.NewSender(r.Net, prop, cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno"))
		s.Start(0)
		truly = true
	case "inelastic":
		newPoisson(r, prop, 0.4*r.MuBps).Start(0)
		truly = false
	case "mix":
		s := transport.NewSender(r.Net, prop, cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno"))
		s.Start(0)
		newPoisson(r, prop, 0.25*r.MuBps).Start(0)
		truly = true
	}
	var mt ModeTracker
	mt.Track(n.Nimbus, func(sim.Time) bool { return truly }, 10*sim.Second)
	r.Sch.RunUntil(dur)
	label := aqm
	if label == "" {
		label = "droptail"
	}
	if aqm == "pie" {
		label = fmt.Sprintf("pie-%.2g", pieTargetBDP)
	}
	return TableERow{
		BufferBDP: bufBDP, PropRTTms: prop.Millis(), AQM: label, Mix: mix,
		Accuracy: mt.Acc.Accuracy(),
	}
}

// TableE runs the robustness grid.
func TableE(seed int64, quick bool) []TableERow {
	bufs := []float64{0.25, 0.5, 1, 2, 4}
	props := []sim.Time{25 * sim.Millisecond, 50 * sim.Millisecond, 75 * sim.Millisecond}
	mixes := []string{"elastic", "inelastic", "mix"}
	dur := 60 * sim.Second
	if quick {
		bufs = []float64{0.5, 2}
		props = []sim.Time{50 * sim.Millisecond}
		dur = 30 * sim.Second
	}
	type cell struct {
		buf          float64
		prop         sim.Time
		aqm          string
		pieTargetBDP float64
		mix          string
	}
	var cells []cell
	for _, mix := range mixes {
		for _, prop := range props {
			for _, b := range bufs {
				cells = append(cells, cell{b, prop, "droptail", 0, mix})
			}
			// PIE at two target delays (0.25 and 1 BDP), 50 ms only.
			if prop == 50*sim.Millisecond {
				cells = append(cells, cell{4, prop, "pie", 0.25, mix})
				cells = append(cells, cell{4, prop, "pie", 1, mix})
			}
		}
	}
	return mapCells(len(cells), func(i int) TableERow {
		c := cells[i]
		return RunTableECell(c.buf, c.prop, c.aqm, c.pieTargetBDP, c.mix, seed, dur)
	})
}

// FormatTableE renders the grid.
func FormatTableE(rows []TableERow) string {
	var b strings.Builder
	b.WriteString("Table E (§8.2/App E.2): buffer, RTT and AQM robustness\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %10s %9s\n", "mix", "buf BDP", "prop ms", "queue", "accuracy")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.2f %8.0f %10s %9.2f\n", r.Mix, r.BufferBDP, r.PropRTTms, r.AQM, r.Accuracy)
		sum += r.Accuracy
	}
	fmt.Fprintf(&b, "mean accuracy: %.2f\n", sum/float64(len(rows)))
	b.WriteString("expected shape: >=98% pure traffic, >=85% mixes; dips only at very shallow buffers / tight PIE targets\n")
	return b.String()
}
