package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/core"
	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/workload"
)

// The churn experiment family asks the paper's question at Internet
// scale: the figures score elasticity detection against one or two
// long-lived cross flows, but a production bottleneck serves sessions —
// thousands of short flows arriving and departing, flipping the link
// between "elastic traffic present" and "not" many times a minute. Here
// the scheme under test shares the bottleneck with an
// internal/workload session process, the detector's mode decisions are
// scored against the workload's exact elastic ground truth, and the
// session population's completion times and fairness expose what the
// pulsing scheme costs the short flows around it.

// ChurnWorkloads are the session workloads the family sweeps.
var ChurnWorkloads = []string{
	"bulk(load=24)",          // heavy-tailed singles, moderate load
	"bulk(load=48)",          // same tail at half the bottleneck
	"web(load=24)",           // multi-object page sessions (mice)
	"video(load=24)",         // chunked inelastic-on-average streams
	"trace(src=flash-crowd)", // replayed arrival burst
}

// ChurnSchemes are the schemes under test.
var ChurnSchemes = spec.Specs("nimbus", "cubic", "copa", "bbr")

// RunChurnScenario is RunScenario for scenarios whose Churn is set: the
// scheme under test runs as the long-lived flow while the churn workload
// arrives and departs around it. Beyond the usual link metrics the
// result carries the workload's streaming summary (churn_* metrics) and,
// for Nimbus schemes, mode accuracy scored against the workload's exact
// elastic-flow ground truth instead of a static label.
func RunChurnScenario(sc runner.Scenario) runner.Result {
	fail := func(err error) runner.Result {
		return runner.Result{Scenario: sc, Err: err.Error()}
	}
	if sc.FlowMix != "" {
		return fail(fmt.Errorf("exp: scenario %q sets both FlowMix (%s) and Churn (%s); pick one",
			sc.Name, sc.FlowMix, sc.Churn))
	}
	wsp, err := workload.ParseSpec(sc.Churn)
	if err != nil {
		return fail(err)
	}
	r, scheme, probe, err := RigForScenario(sc)
	if err != nil {
		return fail(err)
	}
	gen := &workload.Generator{
		Net:   r.Net,
		Rng:   r.Rng.Split("churn"),
		Spec:  wsp,
		RTT:   sim.FromSeconds(sc.RTTms / 1e3),
		MuBps: r.MuBps,
	}
	if err := gen.Start(0); err != nil {
		return fail(err)
	}
	end := sim.FromSeconds(sc.DurationSec)
	var mt ModeTracker
	if scheme.Nimbus != nil {
		// Ground truth is live: "is any elastic session flow active right
		// now", not a per-scenario constant.
		mt.Track(scheme.Nimbus, func(sim.Time) bool { return gen.ElasticActive() }, end/4)
	}
	r.Sch.RunUntil(end)

	m := linkMetrics(r, probe.MeanMbps(0, end))
	addQdelayMetrics(m, probe.Delay)
	sm := gen.Stats.Snapshot(end)
	m["churn_started"] = float64(sm.Started)
	m["churn_completed"] = float64(sm.Completed)
	m["churn_capped"] = float64(sm.Capped)
	m["churn_mbps"] = sm.AggMbps
	m["churn_mean_active"] = sm.MeanActive
	m["churn_max_active"] = float64(sm.MaxActive)
	m["churn_fct_mean_ms"] = sm.FCTMeanMs
	m["churn_fct_p50_ms"] = sm.FCTP50Ms
	m["churn_fct_p95_ms"] = sm.FCTP95Ms
	m["churn_jain"] = sm.Jain
	m["churn_elastic_frac"] = sm.ElasticFrac
	if scheme.Nimbus != nil {
		m["mode_switches"] = float64(scheme.Nimbus.ModeSwitches)
		m["eta"] = scheme.Nimbus.LastEta()
		mode := 0.0
		if scheme.Nimbus.Mode() == core.ModeCompetitive {
			mode = 1
		}
		m["competitive_mode"] = mode
		m["mode_accuracy"] = mt.Acc.Accuracy()
	}
	dropNonFinite(m)
	return runner.Result{Scenario: sc, Metrics: m, Events: r.Sch.Executed}
}

// ChurnGrid is the declarative sweep behind `nimbus-bench -run churn`:
// schemes x session workloads on the standard bottleneck.
func ChurnGrid(seed int64, quick bool) runner.Grid {
	dur := 60.0
	workloads := ChurnWorkloads
	if quick {
		dur = 30
		workloads = workloads[:3]
	}
	return runner.Grid{
		Base: runner.Scenario{
			RateMbps: 96, RTTms: 50, BufferMs: 100,
			DurationSec: dur, Seed: seed,
		},
		Schemes: ChurnSchemes,
		Churns:  workloads,
	}
}

// Churn runs the sweep on the package worker pool.
func Churn(seed int64, quick bool) []runner.Result {
	return RunSweep(ChurnGrid(seed, quick), Workers, nil)
}

// FormatChurn renders one row per (scheme, workload) cell: the
// long-lived flow's throughput, the session population's completion
// times and fairness, and — for Nimbus — detection accuracy against the
// live ground truth.
func FormatChurn(rs []runner.Result) string {
	var b strings.Builder
	b.WriteString("Churn: schemes vs session-arrival workloads (flow churn)\n")
	fmt.Fprintf(&b, "%-8s %-22s %7s %7s %6s %9s %9s %6s %7s %7s\n",
		"scheme", "workload", "Mbit/s", "flows", "active", "fct p50", "fct p95", "jain", "el.frac", "acc")
	for _, r := range rs {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-8s %-22s ERROR: %s\n", r.Scenario.Scheme, r.Scenario.Churn, r.Err)
			continue
		}
		acc := "-"
		if v, ok := r.Metrics["mode_accuracy"]; ok {
			acc = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "%-8s %-22s %7.2f %7.0f %6.1f %6.0f ms %6.0f ms %6.3f %7.2f %7s\n",
			r.Scenario.Scheme, r.Scenario.Churn,
			r.Metrics["mean_mbps"], r.Metrics["churn_completed"], r.Metrics["churn_mean_active"],
			r.Metrics["churn_fct_p50_ms"], r.Metrics["churn_fct_p95_ms"],
			r.Metrics["churn_jain"], r.Metrics["churn_elastic_frac"], acc)
	}
	b.WriteString("expected shape: session FCTs under nimbus stay at or below cubic's (pulsing does not starve the mice); detection accuracy is highest for mice-dominated churn (web) and degrades as elephant churn deepens — rapidly arriving elastic flows are the detector's hardest case\n")
	return b.String()
}
