package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/sim"
)

// Fig05Result reproduces Fig. 5: the FFT of the ẑ series for elastic and
// inelastic cross traffic. Only elastic traffic shows a pronounced peak
// at fp = 5 Hz.
type Fig05Result struct {
	Elastic bool
	Freqs   []float64
	Mags    []float64 // Mbit/s
	PeakAt5 float64   // magnitude at fp, Mbit/s
	Eta     float64
}

// RunFig05 reuses the Fig. 4 scenarios and reads the detector's spectrum.
func RunFig05(elastic bool, seed int64) Fig05Result {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	s := MustScheme("nimbus", r.MuBps)
	r.AddFlow(s, 50*sim.Millisecond, 0)
	if elastic {
		r.AddCubicCross(1, 50*sim.Millisecond, 0)
	} else {
		newCBR(r, 50*sim.Millisecond, 48e6).Start(0)
	}
	r.Sch.RunUntil(40 * sim.Second)

	det := s.Nimbus.Detector()
	spec := det.Spectrum()
	res := Fig05Result{Elastic: elastic, Eta: det.Elasticity(5)}
	for k, m := range spec.Mag {
		f := float64(k) * spec.Resolution
		if f > 50 {
			break
		}
		res.Freqs = append(res.Freqs, f)
		res.Mags = append(res.Mags, m/1e6)
	}
	res.PeakAt5 = spec.PeakAround(5, spec.Resolution) / 1e6
	return res
}

// Fig05 runs both panels.
func Fig05(seed int64) []Fig05Result {
	return mapCells(2, func(i int) Fig05Result {
		return RunFig05(i == 0, seed)
	})
}

// FormatFig05 renders the result.
func FormatFig05(rows []Fig05Result) string {
	var b strings.Builder
	b.WriteString("Fig 5: FFT of cross-traffic rate estimate\n")
	fmt.Fprintf(&b, "%-10s %14s %8s\n", "cross", "|FFT| @5Hz Mbps", "eta")
	for _, r := range rows {
		name := "inelastic"
		if r.Elastic {
			name = "elastic"
		}
		fmt.Fprintf(&b, "%-10s %14.2f %8.2f\n", name, r.PeakAt5, r.Eta)
	}
	b.WriteString("expected shape: pronounced 5 Hz peak (eta >= 2) only for elastic cross traffic\n")
	return b.String()
}
