package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig15Row is one point of Fig. 15: Nimbus's classification accuracy as
// the cross-traffic RTT varies from 0.2x to 4x the flow's RTT, for
// elastic, inelastic, and 50/50 mixed cross traffic.
type Fig15Row struct {
	RTTRatio float64
	Mix      string // "elastic", "inelastic", "mix"
	Accuracy float64
}

// RunFig15Point runs one (ratio, mix) cell.
func RunFig15Point(ratio float64, mix string, seed int64, dur sim.Time) Fig15Row {
	base := 50 * sim.Millisecond
	crossRTT := sim.Time(float64(base) * ratio)
	r := NewRig(NetConfig{RateMbps: 96, RTT: base, Buffer: 100 * sim.Millisecond, Seed: seed})
	n := MustScheme("nimbus", r.MuBps)
	r.AddFlow(n, base, 0)

	var truly bool
	switch mix {
	case "elastic":
		s := transport.NewSender(r.Net, crossRTT, cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno"))
		s.Start(0)
		truly = true
	case "inelastic":
		newPoisson(r, crossRTT, 0.4*r.MuBps).Start(0)
		truly = false
	case "mix":
		s := transport.NewSender(r.Net, crossRTT, cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno"))
		s.Start(0)
		newPoisson(r, crossRTT, 0.25*r.MuBps).Start(0)
		truly = true
	default:
		panic("exp: unknown mix " + mix)
	}

	var mt ModeTracker
	mt.Track(n.Nimbus, func(sim.Time) bool { return truly }, 10*sim.Second)
	r.Sch.RunUntil(dur)
	return Fig15Row{RTTRatio: ratio, Mix: mix, Accuracy: mt.Acc.Accuracy()}
}

// Fig15 runs the sweep.
func Fig15(seed int64, quick bool) []Fig15Row {
	dur := 120 * sim.Second
	ratios := []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0, 4.0}
	if quick {
		dur = 45 * sim.Second
		ratios = []float64{0.2, 1.0, 4.0}
	}
	type cell struct {
		ratio float64
		mix   string
	}
	var cells []cell
	for _, mix := range []string{"elastic", "mix", "inelastic"} {
		for _, rt := range ratios {
			cells = append(cells, cell{rt, mix})
		}
	}
	return mapCells(len(cells), func(i int) Fig15Row {
		return RunFig15Point(cells[i].ratio, cells[i].mix, seed, dur)
	})
}

// FormatFig15 renders the sweep.
func FormatFig15(rows []Fig15Row) string {
	var b strings.Builder
	b.WriteString("Fig 15: Nimbus accuracy vs cross-traffic RTT ratio\n")
	fmt.Fprintf(&b, "%-10s %6s %9s\n", "mix", "ratio", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6.1f %9.2f\n", r.Mix, r.RTTRatio, r.Accuracy)
	}
	b.WriteString("expected shape: ~98% for pure elastic/inelastic, >=80% for mixes, flat across ratios\n")
	return b.String()
}
