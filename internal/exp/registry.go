package exp

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"nimbus/internal/netem"
	spec "nimbus/internal/scheme"
)

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Run executes the experiment and returns the formatted report.
	Run func(seed int64, quick bool) string
}

// Registry maps experiment ids ("fig01".."fig26", "table1", "tableE",
// "mobile", "coexist", "topo") to their runners. cmd/nimbus-bench and
// the root benchmarks both use it.
var Registry = map[string]Experiment{
	"fig01": {"fig01", "Motivating comparison (Cubic / delay-control / Nimbus)",
		func(seed int64, quick bool) string { return FormatFig01(Fig01(seed)) }},
	"fig03": {"fig03", "Self-inflicted delay does not reveal elasticity",
		func(seed int64, quick bool) string { return FormatFig03(RunFig03(seed)) }},
	"fig04": {"fig04", "Cross-traffic reaction to pulses",
		func(seed int64, quick bool) string { return FormatFig04(Fig04(seed)) }},
	"fig05": {"fig05", "FFT of the cross-traffic estimate",
		func(seed int64, quick bool) string { return FormatFig05(Fig05(seed)) }},
	"fig06": {"fig06", "Eta distribution vs elastic fraction",
		func(seed int64, quick bool) string { return FormatFig06(Fig06(seed, quick)) }},
	"fig07": {"fig07", "Asymmetric pulse shape",
		func(seed int64, quick bool) string { return FormatFig07(Fig07()) }},
	"fig08": {"fig08", "Eight-scheme panel with scripted cross traffic",
		func(seed int64, quick bool) string { return FormatFig08(Fig08(seed, quick)) }},
	"fig09": {"fig09", "WAN trace workload: rate/RTT distributions",
		func(seed int64, quick bool) string { return FormatFig09(Fig09(seed, quick)) }},
	"fig10": {"fig10", "Copa throughput drop vs elastic flows",
		func(seed int64, quick bool) string { return FormatFig10(Fig10(seed, quick)) }},
	"fig11": {"fig11", "Video cross traffic",
		func(seed int64, quick bool) string { return FormatFig11(Fig11(seed, quick)) }},
	"fig12": {"fig12", "Eta tracks true elastic fraction",
		func(seed int64, quick bool) string { return FormatFig12(Fig12(seed, quick)) }},
	"fig13": {"fig13", "Offered load and pulse size",
		func(seed int64, quick bool) string { return FormatFig13(Fig13(seed, quick)) }},
	"fig14": {"fig14", "Accuracy vs Copa (inelastic share; RTT ratio)",
		func(seed int64, quick bool) string { return FormatFig14(Fig14(seed, quick)) }},
	"fig15": {"fig15", "Accuracy vs cross-traffic RTT",
		func(seed int64, quick bool) string { return FormatFig15(Fig15(seed, quick)) }},
	"fig16": {"fig16", "Multiple Nimbus flows: fairness and pulser election",
		func(seed int64, quick bool) string { return FormatFig16(Fig16(seed, quick)) }},
	"fig17": {"fig17", "Multiple Nimbus flows with cross traffic",
		func(seed int64, quick bool) string { return FormatFig17(Fig17(seed, quick)) }},
	"fig18": {"fig18", "Three example Internet paths",
		func(seed int64, quick bool) string { return FormatFig18(Fig18(seed, quick)) }},
	"fig19": {"fig19", "25-path suite summary",
		func(seed int64, quick bool) string { return FormatFig19(Fig19(seed, quick)) }},
	"fig20": {"fig20", "Cubic vs delay-control over repeated runs",
		func(seed int64, quick bool) string { return FormatFig20(Fig20(seed, quick)) }},
	"fig21": {"fig21", "Cross-flow FCTs",
		func(seed int64, quick bool) string { return FormatFig21(Fig21(seed, quick)) }},
	"fig22": {"fig22", "Competing with BBR across buffer sizes",
		func(seed int64, quick bool) string { return FormatFig22(Fig22(seed, quick)) }},
	"fig23": {"fig23", "Copa vs Nimbus: CBR dynamics",
		func(seed int64, quick bool) string { return FormatFig23(Fig23(seed, quick)) }},
	"fig24": {"fig24", "Copa vs Nimbus: elastic RTT dynamics",
		func(seed int64, quick bool) string { return FormatFig24(Fig24(seed, quick)) }},
	"fig25": {"fig25", "Multi-factor accuracy sweep",
		func(seed int64, quick bool) string { return FormatFig25(Fig25(seed, quick)) }},
	"fig26": {"fig26", "Detecting PCC-Vivace via pulse frequency",
		func(seed int64, quick bool) string { return FormatFig26(Fig26(seed, quick)) }},
	"churn": {"churn", "Internet-scale flow churn: schemes x session workloads",
		func(seed int64, quick bool) string { return FormatChurn(Churn(seed, quick)) }},
	"coexist": {"coexist", "Heterogeneous flow mixes: coexistence and fairness",
		func(seed int64, quick bool) string { return FormatCoexist(Coexist(seed, quick)) }},
	"fidelity": {"fidelity", "Fluid vs per-packet cross traffic: approximation error and event savings",
		func(seed int64, quick bool) string { return FormatFidelity(Fidelity(seed, quick)) }},
	"mobile": {"mobile", "Time-varying links: schemes x capacity-trace corpus",
		func(seed int64, quick bool) string { return FormatMobile(Mobile(seed, quick)) }},
	"topo": {"topo", "Multi-hop topologies: parking-lot fairness, congested ACK paths",
		func(seed int64, quick bool) string { return FormatTopo(Topo(seed, quick)) }},
	"table1": {"table1", "Classification by traffic class",
		func(seed int64, quick bool) string { return FormatTable1(Table1(seed, quick)) }},
	"tableE": {"tableE", "Buffer/RTT/AQM robustness",
		func(seed int64, quick bool) string { return FormatTableE(TableE(seed, quick)) }},
}

// IDs returns the experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run runs one experiment by id.
func Run(id string, seed int64, quick bool) (string, error) {
	e, ok := Registry[id]
	if !ok {
		return "", fmt.Errorf("unknown experiment %q (known: %v)", id, IDs())
	}
	return e.Run(seed, quick), nil
}

// ListText renders the uniform -list-* flag output every CLI shares:
// the scheme registry, the embedded trace corpus, the topology presets,
// and the experiment index, concatenated in that order for whichever
// flags are set.
func ListText(schemes, traces, topologies, experiments bool) (string, error) {
	var b strings.Builder
	if schemes {
		b.WriteString(spec.FormatList())
	}
	if traces {
		out, err := FormatTraceList()
		if err != nil {
			return "", err
		}
		b.WriteString(out)
	}
	if topologies {
		b.WriteString(FormatTopologyList())
	}
	if experiments {
		b.WriteString(FormatExperimentList())
	}
	return b.String(), nil
}

// HandleListFlags is the CLIs' shared dispatch for the uniform -list-*
// flags: when any is set it prints the listing to stdout (exiting 1 on
// error) and reports true, so each main can simply return. Keeping the
// dispatch here, next to the renderers, means the three binaries cannot
// drift in output, error path, or exit code.
func HandleListFlags(schemes, traces, topologies, experiments bool) bool {
	if !schemes && !traces && !topologies && !experiments {
		return false
	}
	out, err := ListText(schemes, traces, topologies, experiments)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
	return true
}

// Family is one group of related experiments in the registry: the paper
// reproductions (fig*, table*) and each sweep family grown on top of
// them. Name is an id prefix ("fig" covers fig01..fig26) or an exact id.
type Family struct {
	Name string
	Doc  string
}

// Families lists the experiment families in documentation order. Every
// registry id must belong to exactly one family
// (TestEveryExperimentHasFamily); docs/experiments.md documents each
// family with a runnable invocation (scripts/check_docs.sh).
var Families = []Family{
	{"fig", "paper figure reproductions (pulses, detection, coexistence dynamics)"},
	{"table", "paper table reproductions (classification accuracy, robustness)"},
	{"mobile", "time-varying links: schemes x capacity-trace corpus"},
	{"coexist", "heterogeneous flow mixes: coexistence and fairness"},
	{"topo", "multi-hop topologies: parking-lot fairness, congested ACK paths"},
	{"churn", "Internet-scale flow churn: session workloads vs long-lived schemes"},
	{"fidelity", "fluid vs per-packet cross traffic: approximation error and event savings"},
}

// FamilyOf returns the family an experiment id belongs to ("" if none):
// the longest family name that prefixes the id.
func FamilyOf(id string) string {
	best := ""
	for _, f := range Families {
		if strings.HasPrefix(id, f.Name) && len(f.Name) > len(best) {
			best = f.Name
		}
	}
	return best
}

// FormatExperimentList renders the registry index grouped by family —
// the text every CLI prints for -list-experiments. Each family gets a
// "family: doc" header followed by its member experiments, so the
// listing explains what a family is for, not just which ids exist.
func FormatExperimentList() string {
	var b strings.Builder
	for _, f := range Families {
		fmt.Fprintf(&b, "%s: %s\n", f.Name, f.Doc)
		for _, id := range IDs() {
			if FamilyOf(id) == f.Name {
				fmt.Fprintf(&b, "  %-8s %s\n", id, Registry[id].Title)
			}
		}
	}
	return b.String()
}

// FormatTopologyList renders the registered topology presets with their
// hop structure — the text every CLI prints for -list-topologies. Chain
// specs ("access(x4,5ms)->bn") are accepted anywhere a preset name is.
func FormatTopologyList() string {
	var b strings.Builder
	for _, name := range netem.TopologyNames() {
		ts, err := netem.ParseTopology(name)
		if err != nil {
			continue
		}
		var hops []string
		for _, l := range ts.Links {
			hops = append(hops, l.Name)
		}
		fmt.Fprintf(&b, "%-14s %-28s %s\n", name, strings.Join(hops, "->"), netem.TopologyDoc(name))
	}
	b.WriteString("or a chain spec: name(params,...)->... with params like 100mbps, x4, 5ms, droptail|pie|codel, buf=50ms, pattern=step:6:24:2000\n")
	return b.String()
}

// FormatTraceList renders the embedded capacity-trace corpus with each
// trace's span and rate range — the text every CLI prints for
// -list-traces.
func FormatTraceList() (string, error) {
	var b strings.Builder
	for _, name := range netem.TraceNames() {
		s, err := netem.LoadTrace(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s %3d points, %5.1fs span, %5.1f-%5.1f Mbit/s (mean %5.1f)\n",
			name, len(s.Points), s.Span().Seconds(),
			s.MinBps()/1e6, s.MaxBps()/1e6, s.MeanBps(0, s.Span())/1e6)
	}
	return b.String(), nil
}
