package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// fig08Phase is one 20-second segment of the Fig. 8 cross-traffic script:
// xM Mbit/s of Poisson traffic plus y long-running Cubic flows.
type fig08Phase struct {
	PoissonMbps float64
	CubicFlows  int
}

// The script printed across the top of Fig. 8 ("xM / yT").
var fig08Script = []fig08Phase{
	{16, 1}, {32, 2}, {0, 4}, {0, 3}, {0, 1}, {16, 0}, {32, 0}, {48, 0}, {16, 0},
}

// fairShare returns the correct fair-share rate for the probe flow in a
// phase: (µ - inelastic) / (1 + elastic flows).
func (p fig08Phase) fairShare(muMbps float64) float64 {
	return (muMbps - p.PoissonMbps) / float64(1+p.CubicFlows)
}

// Fig08Row is one scheme's result on the Fig. 8 scenario.
type Fig08Row struct {
	Scheme string
	// MeanMbps and MeanDelayMs over the full run (after warmup).
	MeanMbps    float64
	MeanDelayMs float64
	// FairShareError is the mean |rate - fairShare| / fairShare across
	// phases (how closely the black line is tracked).
	FairShareError float64
	// ModeCorrectFrac, for mode-switching schemes: fraction of time in
	// the correct mode (elastic present => competitive).
	ModeCorrectFrac float64
	HasMode         bool
	// TputSeries / DelaySeries for the plot (1 s bins).
	TputSeries []float64
}

// RunFig08 runs the scripted scenario for one scheme on a 96 Mbit/s,
// 50 ms, 2 BDP link. phaseDur shortens the script for quick runs.
func RunFig08(scheme string, seed int64, phaseDur sim.Time) Fig08Row {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	sch := MustScheme(scheme, r.MuBps)
	probe := r.AddFlow(sch, 50*sim.Millisecond, 0)

	po := newPoisson(r, 40*sim.Millisecond, 0)
	po.Start(0)
	elastic := 0
	var cubics []*transport.Sender
	setPhase := func(p fig08Phase) func() {
		return func() {
			po.SetRate(p.PoissonMbps * 1e6)
			for elastic > p.CubicFlows {
				s := cubics[len(cubics)-1]
				cubics = cubics[:len(cubics)-1]
				s.Stop()
				r.Net.Detach(s.ID())
				elastic--
			}
			for elastic < p.CubicFlows {
				cubics = append(cubics, r.AddCubicCross(1, 50*sim.Millisecond, r.Sch.Now())...)
				elastic++
			}
		}
	}
	for i, p := range fig08Script {
		r.Sch.At(sim.Time(i)*phaseDur, setPhase(p))
	}
	total := sim.Time(len(fig08Script)) * phaseDur

	// Ground truth for mode-switching schemes.
	truth := func(now sim.Time) bool {
		idx := int(now / phaseDur)
		if idx >= len(fig08Script) {
			idx = len(fig08Script) - 1
		}
		return fig08Script[idx].CubicFlows > 0
	}
	var mt ModeTracker
	row := Fig08Row{Scheme: scheme}
	if sch.Nimbus != nil {
		mt.Track(sch.Nimbus, truth, 10*sim.Second)
		row.HasMode = true
	} else if sch.Copa != nil {
		acc := r.CopaModeProbe(sch.Copa, truth, 10*sim.Second)
		defer func() { row.ModeCorrectFrac = acc.Accuracy() }()
		row.HasMode = true
	}

	r.Sch.RunUntil(total)

	row.MeanMbps = probe.MeanMbps(5*sim.Second, total)
	row.MeanDelayMs = probe.Delay.Summary().Mean
	if sch.Nimbus != nil {
		row.ModeCorrectFrac = mt.Acc.Accuracy()
	}
	row.TputSeries = probe.Tput.SeriesMbps()

	// Fair-share tracking error, skipping the first 5 s of each phase
	// (convergence time; the paper's detector itself needs 5 s).
	var errSum float64
	var phases int
	for i, p := range fig08Script {
		from := sim.Time(i)*phaseDur + 5*sim.Second
		to := sim.Time(i+1) * phaseDur
		if from >= to {
			continue
		}
		got := probe.MeanMbps(from, to)
		want := p.fairShare(96)
		if want <= 0 {
			continue
		}
		e := (got - want) / want
		if e < 0 {
			e = -e
		}
		errSum += e
		phases++
	}
	if phases > 0 {
		row.FairShareError = errSum / float64(phases)
	}
	return row
}

// Fig08Schemes are the eight panels of Fig. 8.
var Fig08Schemes = []string{
	"nimbus", "nimbus-copa", "cubic", "bbr", "vegas", "compound", "copa", "vivace",
}

// Fig08 runs all panels.
func Fig08(seed int64, quick bool) []Fig08Row {
	phase := 20 * sim.Second
	if quick {
		phase = 12 * sim.Second
	}
	return mapCells(len(Fig08Schemes), func(i int) Fig08Row {
		return RunFig08(Fig08Schemes[i], seed, phase)
	})
}

// FormatFig08 renders the comparison.
func FormatFig08(rows []Fig08Row) string {
	var b strings.Builder
	b.WriteString("Fig 8: scripted cross traffic on 96 Mbit/s, 50 ms, 2 BDP (9 phases: Poisson Mbps / Cubic flows)\n")
	fmt.Fprintf(&b, "%-14s %8s %10s %12s %10s\n", "scheme", "Mbit/s", "delay ms", "fair-err", "mode-acc")
	for _, r := range rows {
		mode := "   -"
		if r.HasMode {
			mode = fmt.Sprintf("%.2f", r.ModeCorrectFrac)
		}
		fmt.Fprintf(&b, "%-14s %8.1f %10.1f %12.2f %10s\n",
			r.Scheme, r.MeanMbps, r.MeanDelayMs, r.FairShareError, mode)
	}
	b.WriteString("expected shape: nimbus tracks fair share with low delay vs inelastic; cubic high delay; vegas/compound lose to cubic; copa switches modes but with more errors\n")
	return b.String()
}
