package exp

import (
	"fmt"
	"math"
	"strings"

	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
)

// The fidelity experiment family scores the fluid cross-traffic
// approximation against the exact per-packet path it replaces: each
// cell runs the same scenario twice — once with per-packet cross
// traffic, once with the aggregate as a fluid rate process
// (Scenario.FluidCross) — and reports what the approximation costs
// (mode-accuracy delta, queueing-delay error) against what it buys
// (scheduler events saved, wall-clock speedup). It is the regression
// gate for the fluid path: scripts/check_bench.sh pins the event
// reduction, and this family pins the accuracy side of the trade.

// FidelityPair is one packet-vs-fluid comparison cell.
type FidelityPair struct {
	Packet runner.Result
	Fluid  runner.Result
}

// AccDelta is the absolute mode-accuracy difference (0 when the
// scenario has no Nimbus mode telemetry).
func (p FidelityPair) AccDelta() float64 {
	ap, okP := p.Packet.Metrics["mode_accuracy"]
	af, okF := p.Fluid.Metrics["mode_accuracy"]
	if !okP || !okF {
		return 0
	}
	return math.Abs(ap - af)
}

// QdelayErrPct is the relative error of the fluid run's mean queueing
// delay against the packet run's, in percent.
func (p FidelityPair) QdelayErrPct() float64 {
	qp := p.Packet.Metrics["qdelay_mean_ms"]
	qf := p.Fluid.Metrics["qdelay_mean_ms"]
	if qp == 0 {
		return 0
	}
	return math.Abs(qf-qp) / qp * 100
}

// EventsRatio is how many fewer scheduler events the fluid run
// executed (>1 means fewer).
func (p FidelityPair) EventsRatio() float64 {
	if p.Fluid.Events == 0 {
		return 0
	}
	return float64(p.Packet.Events) / float64(p.Fluid.Events)
}

// WallSpeedup is the wall-clock ratio (>1 means the fluid run was
// faster). Unlike the other columns it is host-dependent.
func (p FidelityPair) WallSpeedup() float64 {
	if p.Fluid.WallSec == 0 {
		return 0
	}
	return p.Packet.WallSec / p.Fluid.WallSec
}

// fidelityCell is one sweep point; the zero AQM/topology means the
// standard drop-tail bottleneck.
type fidelityCell struct {
	cross     string
	crossMbps float64
	aqm       string
	topology  string
}

// fidelityCells returns the sweep. The cross-heavy cells (84 Mbit/s of
// aggregate on the 96 Mbit/s bottleneck, 0.875 of capacity) are the
// headline: the regime the fluid path exists for, where per-packet
// cross traffic dominates the event count and the approximation is
// near-exact. The moderate and elastic cells chart the fidelity
// envelope, and the full horizon adds the cases DESIGN.md's decision
// table calls out — an AQM bottleneck (fluid load is invisible to the
// drop law) and a multi-hop topology (fluid on every hop). Loads much
// past ~0.9 of capacity are outside the model's validity envelope (see
// DESIGN.md) and deliberately not swept.
func fidelityCells(quick bool) []fidelityCell {
	cells := []fidelityCell{
		{cross: "cbr", crossMbps: 84},
		{cross: "poisson", crossMbps: 84},
		{cross: "poisson", crossMbps: 48},
		{cross: "cbr", crossMbps: 24},
		{cross: "cubic"},
	}
	if !quick {
		cells = append(cells,
			fidelityCell{cross: "reno"},
			fidelityCell{cross: "poisson", crossMbps: 48, aqm: "codel"},
			fidelityCell{cross: "poisson", crossMbps: 48, topology: "access-hop"},
		)
	}
	return cells
}

// Fidelity runs the packet-vs-fluid comparison on the package worker
// pool: both variants of every cell share one scenario definition (and
// therefore one effective seed), differing only in FluidCross.
func Fidelity(seed int64, quick bool) []FidelityPair {
	dur := 60.0
	if quick {
		dur = 30
	}
	cells := fidelityCells(quick)
	scs := make([]runner.Scenario, 0, 2*len(cells))
	for _, c := range cells {
		base := runner.Scenario{
			Scheme: spec.New("nimbus"), RateMbps: 96, RTTms: 50, BufferMs: 100,
			AQM: c.aqm, Topology: c.topology,
			Cross: c.cross, CrossRateMbps: c.crossMbps,
			DurationSec: dur, Seed: seed,
		}
		fluid := base
		fluid.FluidCross = "on"
		scs = append(scs, base, fluid)
	}
	rn := &runner.Runner{Workers: Workers}
	rs := rn.Run(scs, RunScenario)
	pairs := make([]FidelityPair, len(cells))
	for i := range pairs {
		pairs[i] = FidelityPair{Packet: rs[2*i], Fluid: rs[2*i+1]}
	}
	return pairs
}

// FormatFidelity renders one row per cell: both runs' mode accuracy
// and mean queueing delay, the approximation error, and the event and
// wall-clock savings. The wall column is host-dependent; everything
// else is deterministic per seed.
func FormatFidelity(ps []FidelityPair) string {
	var b strings.Builder
	b.WriteString("Fidelity: per-packet vs fluid-model cross traffic (same scenario, same seed)\n")
	fmt.Fprintf(&b, "%-11s %-12s %7s %7s %6s %8s %8s %7s %8s %6s\n",
		"cross", "where", "acc pkt", "acc fld", "dacc", "qd pkt", "qd fld", "qd err", "ev ratio", "wall")
	for _, p := range ps {
		sc := p.Packet.Scenario
		if p.Packet.Err != "" || p.Fluid.Err != "" {
			fmt.Fprintf(&b, "%-11s %-12s ERROR: %s%s\n", crossLabel(sc), where(sc), p.Packet.Err, p.Fluid.Err)
			continue
		}
		fmt.Fprintf(&b, "%-11s %-12s %7.3f %7.3f %6.3f %5.1f ms %5.1f ms %6.1f%% %7.1fx %5.1fx\n",
			crossLabel(sc), where(sc),
			p.Packet.Metrics["mode_accuracy"], p.Fluid.Metrics["mode_accuracy"], p.AccDelta(),
			p.Packet.Metrics["qdelay_mean_ms"], p.Fluid.Metrics["qdelay_mean_ms"], p.QdelayErrPct(),
			p.EventsRatio(), p.WallSpeedup())
	}
	b.WriteString("expected shape: inelastic drop-tail cells hold mode accuracy within 0.02 and mean queueing delay within a few percent, with >=5x fewer events on the cross-heavy (84 Mbit/s) cells; elastic cells keep the detector's classification but overdeepen the queue (the window model is coarser than per-flow cwnd dynamics); the codel row shows the documented AQM fidelity gap (fluid load is invisible to the drop law) — both gaps are why the fluid path is an explicit opt-in\n")
	return b.String()
}

// crossLabel names a row's aggregate: kind plus offered rate for the
// inelastic models (elastic aggregates find their own rate).
func crossLabel(sc runner.Scenario) string {
	if sc.CrossRateMbps > 0 {
		return fmt.Sprintf("%s@%g", sc.Cross, sc.CrossRateMbps)
	}
	return sc.Cross
}

// where labels the bottleneck variant of a fidelity row.
func where(sc runner.Scenario) string {
	switch {
	case sc.Topology != "":
		return sc.Topology
	case sc.AQM != "":
		return sc.AQM
	}
	return "droptail"
}
