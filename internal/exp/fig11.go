package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig11Row is one scheme's (rate, delay) point against DASH video cross
// traffic (Fig. 11).
type Fig11Row struct {
	Scheme      string
	Video       string // "4k" or "1080p"
	MeanMbps    float64
	MeanDelayMs float64
	VideoMbps   float64
}

// RunFig11 runs one scheme against one video quality on a 48 Mbit/s,
// 50 ms link.
func RunFig11(scheme, video string, seed int64, dur sim.Time) Fig11Row {
	r := NewRig(NetConfig{RateMbps: 48, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	sch := MustScheme(scheme, r.MuBps)
	probe := r.AddFlow(sch, 50*sim.Millisecond, 0)
	ladder := crosstraffic.Ladder1080p
	if video == "4k" {
		ladder = crosstraffic.Ladder4K
	}
	v := &crosstraffic.VideoClient{
		Net: r.Net, Rng: r.Rng.Split("video"), RTT: 50 * sim.Millisecond,
		Ladder: ladder,
		NewCC:  func() transport.Controller { return cc.NewCubic() },
	}
	v.Start(0)
	r.Sch.RunUntil(dur)
	return Fig11Row{
		Scheme:      scheme,
		Video:       video,
		MeanMbps:    probe.MeanMbps(5*sim.Second, dur),
		MeanDelayMs: probe.Delay.Summary().Mean,
		VideoMbps:   float64(v.Sender().DeliveredBytes) * 8 / dur.Seconds() / 1e6,
	}
}

// Fig11 runs all schemes against both video qualities.
func Fig11(seed int64, quick bool) []Fig11Row {
	dur := 120 * sim.Second
	if quick {
		dur = 60 * sim.Second
	}
	type cell struct{ scheme, video string }
	var cells []cell
	for _, video := range []string{"4k", "1080p"} {
		for _, s := range SchemeNames {
			cells = append(cells, cell{s, video})
		}
	}
	return mapCells(len(cells), func(i int) Fig11Row {
		return RunFig11(cells[i].scheme, cells[i].video, seed, dur)
	})
}

// FormatFig11 renders the scatter as a table.
func FormatFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Fig 11: competition with DASH video cross traffic (48 Mbit/s, 50 ms)\n")
	fmt.Fprintf(&b, "%-6s %-10s %8s %10s %11s\n", "video", "scheme", "Mbit/s", "delay ms", "video Mbps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-10s %8.1f %10.1f %11.1f\n", r.Video, r.Scheme, r.MeanMbps, r.MeanDelayMs, r.VideoMbps)
	}
	b.WriteString("expected shape: 4k video is elastic (nimbus ~ cubic; vegas/copa near zero); 1080p inelastic (delay-controllers much lower delay at similar rate)\n")
	return b.String()
}
