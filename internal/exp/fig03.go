package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// Fig03Result reproduces Fig. 3: the strawman. A Cubic flow's
// self-inflicted queueing delay looks identical in the elastic and
// inelastic phases (~half the total delay in both), so instantaneous
// delay decomposition cannot reveal elasticity.
type Fig03Result struct {
	// Ratios self/total per phase (the paper's point: both ~ flow's
	// throughput share ~ 0.5).
	ElasticSelfRatio   float64
	InelasticSelfRatio float64
	TotalDelaySer      []float64 // per-100ms total queueing delay (ms)
	SelfDelaySer       []float64 // per-100ms self-inflicted share (ms)
	TimeSer            []float64
}

// RunFig03 runs the Fig. 1a scenario with a Cubic flow and measures the
// flow's exact share of the bottleneck queue occupancy over time.
func RunFig03(seed int64) Fig03Result {
	r := NewRig(NetConfig{RateMbps: 48, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	probe := r.AddFlow(MustScheme("cubic", r.MuBps), 50*sim.Millisecond, 0)
	cross := r.AddCubicCross(1, 50*sim.Millisecond, 30*sim.Second)
	r.StopFlows(cross, 90*sim.Second)
	po := newPoisson(r, 40*sim.Millisecond, 24e6)
	po.Start(90 * sim.Second)
	r.Sch.At(150*sim.Second, func() { po.Stop() })

	// Track exact per-flow bytes in the bottleneck queue via taps.
	flowID := probe.Sender.ID()
	var res Fig03Result
	var sumSelfEl, sumTotEl, sumSelfInel, sumTotInel float64
	q := r.Link.Q.(*netem.DropTail)
	var sample func()
	sample = func() {
		now := r.Sch.Now()
		totalBytes := float64(q.BytesQueued())
		selfBytes := float64(q.BytesForFlow(flowID))
		toMs := func(b float64) float64 { return b * 8 / r.MuBps * 1000 }
		res.TimeSer = append(res.TimeSer, now.Seconds())
		res.TotalDelaySer = append(res.TotalDelaySer, toMs(totalBytes))
		res.SelfDelaySer = append(res.SelfDelaySer, toMs(selfBytes))
		switch {
		case now >= 35*sim.Second && now < 90*sim.Second:
			sumSelfEl += selfBytes
			sumTotEl += totalBytes
		case now >= 95*sim.Second && now < 150*sim.Second:
			sumSelfInel += selfBytes
			sumTotInel += totalBytes
		}
		r.Sch.After(100*sim.Millisecond, sample)
	}
	r.Sch.After(100*sim.Millisecond, sample)
	r.Sch.RunUntil(175 * sim.Second)

	if sumTotEl > 0 {
		res.ElasticSelfRatio = sumSelfEl / sumTotEl
	}
	if sumTotInel > 0 {
		res.InelasticSelfRatio = sumSelfInel / sumTotInel
	}
	return res
}

// FormatFig03 renders the result.
func FormatFig03(res Fig03Result) string {
	var b strings.Builder
	b.WriteString("Fig 3: self-inflicted delay does not reveal elasticity (Cubic flow)\n")
	fmt.Fprintf(&b, "self/total queue share, elastic phase:   %.2f\n", res.ElasticSelfRatio)
	fmt.Fprintf(&b, "self/total queue share, inelastic phase: %.2f\n", res.InelasticSelfRatio)
	b.WriteString("expected shape: both ratios ~ flow's throughput share (~0.5), indistinguishable\n")
	return b.String()
}
