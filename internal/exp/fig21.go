package exp

import (
	"fmt"
	"sort"
	"strings"

	"nimbus/internal/metrics"
	"nimbus/internal/sim"
)

// Fig21Row holds the p95 flow-completion time of the cross flows by size
// bucket for one scheme (App. B, Fig. 21), normalized by Nimbus.
type Fig21Row struct {
	Scheme string
	// P95 seconds per bucket name.
	P95 map[string]float64
	// Normalized is P95 / Nimbus's P95 per bucket.
	Normalized map[string]float64
}

var fig21Buckets = []string{"15KB", "150KB", "1.5MB", "15MB", "150MB"}

// Fig21 measures cross-flow FCTs under each scheme using the Fig 9
// scenario.
func Fig21(seed int64, quick bool) []Fig21Row {
	dur := 150 * sim.Second
	if quick {
		dur = 60 * sim.Second
	}
	schemes := []string{"nimbus", "bbr", "cubic", "vegas", "copa", "vivace"}
	rows := mapCells(len(schemes), func(i int) Fig21Row {
		r9 := RunFig09(schemes[i], seed, dur, 0.5)
		b := metrics.FCTBuckets(r9.CrossFCTs)
		p95 := map[string]float64{}
		for name, sum := range b {
			p95[name] = sum.P95
		}
		return Fig21Row{Scheme: schemes[i], P95: p95}
	})
	var nimbusP95 map[string]float64
	for _, r := range rows {
		if r.Scheme == "nimbus" {
			nimbusP95 = r.P95
		}
	}
	for i := range rows {
		rows[i].Normalized = map[string]float64{}
		for name, v := range rows[i].P95 {
			if base, ok := nimbusP95[name]; ok && base > 0 {
				rows[i].Normalized[name] = v / base
			}
		}
	}
	return rows
}

// FormatFig21 renders the table.
func FormatFig21(rows []Fig21Row) string {
	var b strings.Builder
	b.WriteString("Fig 21 (App B): p95 cross-flow FCT normalized to Nimbus, by flow size\n")
	fmt.Fprintf(&b, "%-8s", "scheme")
	for _, name := range fig21Buckets {
		fmt.Fprintf(&b, " %8s", name)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s", r.Scheme)
		names := append([]string(nil), fig21Buckets...)
		sort.Strings(names)
		for _, name := range fig21Buckets {
			if v, ok := r.Normalized[name]; ok {
				fmt.Fprintf(&b, " %8.2f", v)
			} else {
				fmt.Fprintf(&b, " %8s", "-")
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("expected shape: bbr/vivace much worse than nimbus at all sizes; cubic worse for short flows; vegas best for cross flows\n")
	return b.String()
}
