package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/metrics"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig12Result reproduces Fig. 12: the elasticity metric over time
// tracking the ground-truth elastic byte fraction of the trace workload;
// the headline number is classification accuracy > 90%.
type Fig12Result struct {
	EtaSeries         metrics.Series
	ElasticFracSeries metrics.Series
	Accuracy          float64
}

// RunFig12 runs Nimbus against the trace workload and scores the
// detector against ground truth (elastic fraction of active cross bytes
// above a low threshold — the paper classifies flows larger than the
// initial window as elastic).
func RunFig12(seed int64, dur sim.Time) Fig12Result {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	sch := MustScheme("nimbus", r.MuBps)
	r.AddFlow(sch, 50*sim.Millisecond, 0)
	w := &crosstraffic.TraceWorkload{
		Net:     r.Net,
		Rng:     r.Rng.Split("trace"),
		LoadBps: 0.5 * r.MuBps,
		RTT:     50 * sim.Millisecond,
		NewCC:   func() transport.Controller { return cc.NewCubic() },
	}
	w.Start(0)

	var res Fig12Result
	// The paper's Fig 12 shading: delay mode is "correct" when the
	// elastic byte fraction is low (< 0.3). The detector is scored with
	// hysteresis-free instantaneous truth, which understates accuracy
	// slightly (the detector needs 5 s of signal).
	truth := func(now sim.Time) bool { return w.ElasticByteFraction() >= 0.3 }
	var acc metrics.AccuracyTracker
	acc.Warmup = 10 * sim.Second
	sch.Nimbus.OnTick = func(t core.Telemetry) {
		acc.Observe(t.Now, t.Mode == core.ModeCompetitive, truth(t.Now))
	}
	// Sample the two series at 100 ms for the plot.
	var sample func()
	sample = func() {
		res.EtaSeries.Add(r.Sch.Now(), sch.Nimbus.LastEta())
		res.ElasticFracSeries.Add(r.Sch.Now(), w.ElasticByteFraction())
		r.Sch.After(100*sim.Millisecond, sample)
	}
	r.Sch.After(100*sim.Millisecond, sample)

	r.Sch.RunUntil(dur)
	res.Accuracy = acc.Accuracy()
	return res
}

// Fig12 runs the experiment at the paper's horizon (or a quick one).
func Fig12(seed int64, quick bool) Fig12Result {
	dur := 200 * sim.Second
	if quick {
		dur = 60 * sim.Second
	}
	return RunFig12(seed, dur)
}

// FormatFig12 renders the result.
func FormatFig12(r Fig12Result) string {
	var b strings.Builder
	b.WriteString("Fig 12: elasticity metric vs ground-truth elastic fraction (trace workload)\n")
	fmt.Fprintf(&b, "detector accuracy: %.0f%% (paper: >90%%)\n", r.Accuracy*100)
	return b.String()
}
