package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig22Row compares Nimbus's and Cubic's throughput when competing with
// one BBR flow, across buffer sizes (App. C, Fig. 22). The claim: Nimbus
// does no worse than Cubic against BBR regardless of buffer depth, even
// though the detector classifies BBR differently by buffer size
// (inelastic when shallow, elastic when deep).
type Fig22Row struct {
	BufferBDP  float64
	NimbusMbps float64
	CubicMbps  float64
	// NimbusCompetitiveFrac: how the detector classified BBR.
	NimbusCompetitiveFrac float64
}

// RunFig22Point runs both schemes against BBR at one buffer depth.
func RunFig22Point(bufBDP float64, seed int64, dur sim.Time) Fig22Row {
	rtt := 50 * sim.Millisecond
	buf := sim.Time(bufBDP * float64(rtt))
	run := func(scheme string) (float64, float64) {
		r := NewRig(NetConfig{RateMbps: 96, RTT: rtt, Buffer: buf, Seed: seed})
		sch := MustScheme(scheme, r.MuBps)
		probe := r.AddFlow(sch, rtt, 0)
		bbr := transport.NewSender(r.Net, rtt, cc.NewBBR(), transport.Backlogged{}, r.Rng.Split("bbr"))
		bbr.Start(0)
		var mt ModeTracker
		if sch.Nimbus != nil {
			mt.Track(sch.Nimbus, func(sim.Time) bool { return true }, 10*sim.Second)
		}
		r.Sch.RunUntil(dur)
		frac := 0.0
		if sch.Nimbus != nil && mt.Acc.TotalScored() > 0 {
			frac = mt.Acc.Accuracy() // truth=elastic, so accuracy == competitive fraction
		}
		return probe.MeanMbps(5*sim.Second, dur), frac
	}
	nim, frac := run("nimbus")
	cub, _ := run("cubic")
	return Fig22Row{BufferBDP: bufBDP, NimbusMbps: nim, CubicMbps: cub, NimbusCompetitiveFrac: frac}
}

// Fig22 sweeps buffer sizes 0.5-4 BDP.
func Fig22(seed int64, quick bool) []Fig22Row {
	dur := 120 * sim.Second
	bufs := []float64{0.5, 1, 2, 4}
	if quick {
		dur = 45 * sim.Second
		bufs = []float64{0.5, 2}
	}
	return mapCells(len(bufs), func(i int) Fig22Row {
		return RunFig22Point(bufs[i], seed, dur)
	})
}

// FormatFig22 renders the sweep.
func FormatFig22(rows []Fig22Row) string {
	var b strings.Builder
	b.WriteString("Fig 22 (App C): competing with one BBR flow on 96 Mbit/s\n")
	fmt.Fprintf(&b, "%10s %12s %12s %18s\n", "buffer BDP", "nimbus Mbps", "cubic Mbps", "nimbus comp. frac")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.1f %12.1f %12.1f %18.2f\n", r.BufferBDP, r.NimbusMbps, r.CubicMbps, r.NimbusCompetitiveFrac)
	}
	b.WriteString("expected shape: nimbus ~ cubic at every buffer; BBR classified elastic only with deep buffers\n")
	return b.String()
}
