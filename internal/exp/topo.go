package exp

import (
	"fmt"
	"strings"

	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

// The topo experiment family is what the topology subsystem buys: the
// paper evaluates elasticity detection on a single bottleneck with an
// ideal reverse path, and this family probes the two classic deployment
// conditions that shape breaks — multi-bottleneck parking-lot contention
// (does a scheme crossing several congested hops hold a fair share
// against single-hop competitors?) and a congested ACK path (does the
// forward direction survive ACK thinning and loss?) — for Nimbus against
// the cubic/copa/bbr baselines. Neither scenario exists as a figure in
// the paper; both are a topology preset plus routed flow specs here.

// TopoSchemes are the schemes under test.
var TopoSchemes = []string{"nimbus", "cubic", "copa", "bbr"}

// TopoRow is one (scenario, scheme) cell.
type TopoRow struct {
	Scenario string // "parking-lot" or "rev-congested"
	Scheme   string
	// Mbps is the scheme-under-test's throughput on the full route.
	Mbps float64
	// CrossMbps is the mean throughput of the competing flows
	// (parking-lot: the per-hop cubic flows; rev-congested: zero).
	CrossMbps float64
	// Jain scores the long flow against the per-hop flows (parking-lot).
	Jain float64
	// HopUtil is each hop's utilization, in topology order.
	HopUtil []float64
	// HopQDelayMs is each hop's mean queueing delay.
	HopQDelayMs []float64
	// AckDrops counts ACK packets lost on the congested reverse path
	// (rev-congested only; the reverse link's own drop counter would also
	// include the CBR cross traffic's losses).
	AckDrops uint64
}

// TopoParkingLot runs one scheme over the parking-lot preset: the scheme
// under test crosses all three equal-rate hops while one cubic flow
// contends at each hop.
func TopoParkingLot(schemeName string, seed int64, dur sim.Time) TopoRow {
	rtt := 50 * sim.Millisecond
	r := NewRig(NetConfig{
		RateMbps: 48, RTT: rtt, Buffer: 100 * sim.Millisecond,
		Seed:     sim.DeriveSeed(seed, "topo/parking-lot/"+schemeName),
		Topology: "parking-lot",
	})
	cubic := spec.MustParse("cubic")
	flows, err := r.AddFlowSpecs(
		FlowSpec{Scheme: spec.MustParse(schemeName)},
		FlowSpec{Scheme: cubic, Route: "hop1"},
		FlowSpec{Scheme: cubic, Route: "hop2"},
		FlowSpec{Scheme: cubic, Route: "hop3"},
	)
	if err != nil {
		panic(err)
	}
	r.Sch.RunUntil(dur)
	st := FlowStats(flows, dur)
	row := TopoRow{Scenario: "parking-lot", Scheme: schemeName,
		Mbps: st.PerFlowMbps[0], Jain: st.Jain}
	for _, v := range st.PerFlowMbps[1:] {
		row.CrossMbps += v
	}
	row.CrossMbps /= float64(len(st.PerFlowMbps) - 1)
	for _, l := range r.Net.Links() {
		row.HopUtil = append(row.HopUtil, l.Utilization())
		row.HopQDelayMs = append(row.HopQDelayMs, l.MeanQueueDelay().Millis())
	}
	return row
}

// TopoRevCongested runs one scheme over the rev-congested preset: the
// scheme's ACKs share a narrow reverse link (5% of nominal) with a CBR
// stream sized to over-subscribe it, so ACKs queue and drop.
func TopoRevCongested(schemeName string, seed int64, dur sim.Time) TopoRow {
	rtt := 50 * sim.Millisecond
	r := NewRig(NetConfig{
		RateMbps: 48, RTT: rtt, Buffer: 100 * sim.Millisecond,
		Seed:     sim.DeriveSeed(seed, "topo/rev-congested/"+schemeName),
		Topology: "rev-congested",
	})
	flows, err := r.AddFlowSpecs(FlowSpec{Scheme: spec.MustParse(schemeName)})
	if err != nil {
		panic(err)
	}
	// The reverse link carries ~2 Mbit/s of ACKs at full forward
	// throughput against 2.4 Mbit/s capacity; 1.5 Mbit/s of CBR pushes it
	// into overload.
	if err := AddCrossOn(r, "rev-cross", "cbr", 1.5e6, rtt); err != nil {
		panic(err)
	}
	r.Sch.RunUntil(dur)
	row := TopoRow{Scenario: "rev-congested", Scheme: schemeName,
		Mbps: flows[0].Probe.MeanMbps(0, dur), AckDrops: r.Net.AckDrops}
	for _, l := range r.Net.Links() {
		row.HopUtil = append(row.HopUtil, l.Utilization())
		row.HopQDelayMs = append(row.HopQDelayMs, l.MeanQueueDelay().Millis())
	}
	return row
}

// Topo runs the family: every scheme through both scenarios, fanned out
// on the package worker pool.
func Topo(seed int64, quick bool) []TopoRow {
	dur := 60 * sim.Second
	if quick {
		dur = 20 * sim.Second
	}
	n := len(TopoSchemes)
	return mapCells(2*n, func(i int) TopoRow {
		schemeName := TopoSchemes[i%n]
		if i < n {
			return TopoParkingLot(schemeName, seed, dur)
		}
		return TopoRevCongested(schemeName, seed, dur)
	})
}

// FormatTopo renders the family's report.
func FormatTopo(rows []TopoRow) string {
	var b strings.Builder
	b.WriteString("Topo: multi-hop topologies (parking-lot fairness; congested ACK path)\n")
	fmt.Fprintf(&b, "%-14s %-8s %8s %10s %6s %9s  %s\n",
		"scenario", "scheme", "Mbit/s", "crossMbps", "jain", "ackDrops", "per-hop util / qdelay(ms)")
	for _, r := range rows {
		var hops []string
		for i := range r.HopUtil {
			hops = append(hops, fmt.Sprintf("%.2f/%.1f", r.HopUtil[i], r.HopQDelayMs[i]))
		}
		cross, jain, drops := "-", "-", "-"
		if r.Scenario == "parking-lot" {
			cross = fmt.Sprintf("%.2f", r.CrossMbps)
			jain = fmt.Sprintf("%.3f", r.Jain)
		} else {
			drops = fmt.Sprintf("%d", r.AckDrops)
		}
		fmt.Fprintf(&b, "%-14s %-8s %8.2f %10s %6s %9s  [%s]\n",
			r.Scenario, r.Scheme, r.Mbps, cross, jain, drops, strings.Join(hops, ", "))
	}
	b.WriteString("expected shape: parking-lot long flows get less than single-hop competitors (the classic multi-bottleneck penalty); on rev-congested, loss- and model-based schemes ride out ACK thinning while delay-based ones see reverse queueing as path delay\n")
	return b.String()
}
