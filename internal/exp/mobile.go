package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/netem"
	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
)

// The mobile experiment family spends the time-varying link capability:
// schemes × the embedded capacity-trace corpus (cellular ramp/fade,
// coffee-shop Wi-Fi, outage-and-recover) with inelastic cross traffic,
// reporting throughput, delay, utilization, and how well Nimbus keeps its
// mode decision right while the capacity moves under it. It extends the
// paper's emulated-path methodology (§8.4) to the Mahimahi-style
// fluctuating links the paper evaluates on.

// MobileSchemes are the schemes the mobile family compares.
var MobileSchemes = spec.Specs("nimbus", "cubic", "bbr")

// MobileGrid is the declarative sweep behind `nimbus-bench -run mobile`.
func MobileGrid(seed int64, quick bool) runner.Grid {
	dur := 90.0
	if quick {
		dur = 24
	}
	return runner.Grid{
		Base: runner.Scenario{
			// Nominal rate sizes the buffer; the traces set the capacity.
			RateMbps: 48, RTTms: 50, BufferMs: 100,
			Cross: "poisson", CrossRateMbps: 4,
			DurationSec: dur, Seed: seed,
		},
		Schemes:    MobileSchemes,
		LinkTraces: netem.TraceNames(),
	}
}

// Mobile runs the sweep on the package worker pool.
func Mobile(seed int64, quick bool) []runner.Result {
	return RunSweep(MobileGrid(seed, quick), Workers, nil)
}

// FormatMobile renders one row per (trace, scheme) cell.
func FormatMobile(rs []runner.Result) string {
	var b strings.Builder
	b.WriteString("Mobile: schemes over time-varying links (embedded trace corpus)\n")
	fmt.Fprintf(&b, "%-10s %-8s %8s %12s %6s %8s %9s\n",
		"trace", "scheme", "Mbit/s", "qdelay p95", "util", "mode sw", "mode acc")
	for _, r := range rs {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-10s %s\n", r.Scenario.LinkTrace, "ERROR: "+r.Err)
			continue
		}
		sw, acc := "-", "-"
		if v, ok := r.Metrics["mode_switches"]; ok {
			sw = fmt.Sprintf("%.0f", v)
			acc = fmt.Sprintf("%.2f", r.Metrics["mode_accuracy"])
		}
		fmt.Fprintf(&b, "%-10s %-8s %8.2f %9.1f ms %6.2f %8s %9s\n",
			r.Scenario.LinkTrace, r.Scenario.Scheme,
			r.Metrics["mean_mbps"], r.Metrics["qdelay_p95_ms"], r.Metrics["utilization"], sw, acc)
	}
	b.WriteString("expected shape: schemes track the trace's mean capacity; mode acc shows how often capacity swings masquerade as elastic cross traffic (the cross here is inelastic, so delay mode is correct)\n")
	return b.String()
}
