package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/core"
	"nimbus/internal/metrics"
	"nimbus/internal/sim"
)

// Fig16Result reproduces Fig. 16 (§8.3): four staggered Nimbus flows
// (Vegas as the delay algorithm, per the paper) share a 96 Mbit/s link
// with no other cross traffic. One flow at a time should be the pulser;
// the flows should share fairly and stay in delay mode.
type Fig16Result struct {
	// PerFlowMbps in the all-four-active window.
	PerFlowMbps []float64
	JainIndex   float64
	// Pulser counts sampled at 100 ms after convergence.
	FracOnePulser   float64
	FracMultiPulser float64
	FracNoPulser    float64
	// DelayModeFrac: fraction of flow-time in delay mode (correct).
	DelayModeFrac float64
	MeanDelayMs   float64
	RateSeries    []metrics.Series
}

// RunFig16 runs the staggered-arrival scenario. Scale shrinks the
// 120 s/480 s schedule for quick runs.
func RunFig16(seed int64, scale float64) Fig16Result {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	stagger := sim.Time(float64(120*sim.Second) * scale)
	life := sim.Time(float64(480*sim.Second) * scale)

	type flow struct {
		n     *core.Nimbus
		probe *FlowProbe
	}
	var flows []*flow
	for i := 0; i < 4; i++ {
		s := MustScheme("nimbus-vegas(multiflow=true)", r.MuBps)
		start := sim.Time(i) * stagger
		probe := r.AddFlow(s, 50*sim.Millisecond, start)
		f := &flow{n: s.Nimbus, probe: probe}
		flows = append(flows, f)
		end := start + life
		r.Sch.At(end, func() {
			f.probe.Sender.Stop()
			r.Net.Detach(f.probe.Sender.ID())
		})
	}

	// Delay-mode accounting per tick.
	var delayTicks, totalTicks int
	for _, f := range flows {
		f.n.OnTick = func(t core.Telemetry) {
			totalTicks++
			if t.Mode == core.ModeDelay {
				delayTicks++
			}
		}
	}
	// Pulser census after the first flow's detector warms up.
	var one, multi, zero, census int
	warm := stagger / 2
	var probeFn func()
	probeFn = func() {
		now := r.Sch.Now()
		if now > warm {
			active := 0
			pulsers := 0
			for i, f := range flows {
				start := sim.Time(i) * stagger
				if now < start || now > start+life {
					continue
				}
				active++
				if f.n.Role() == core.RolePulser {
					pulsers++
				}
			}
			if active > 0 {
				census++
				switch {
				case pulsers == 1:
					one++
				case pulsers > 1:
					multi++
				default:
					zero++
				}
			}
		}
		r.Sch.After(100*sim.Millisecond, probeFn)
	}
	r.Sch.After(0, probeFn)

	end := 3*stagger + life
	r.Sch.RunUntil(end)

	res := Fig16Result{}
	// Fairness window: all four flows active (3*stagger .. stagger+life).
	from, to := 3*stagger, stagger+life
	if to > from {
		for _, f := range flows {
			res.PerFlowMbps = append(res.PerFlowMbps, f.probe.MeanMbps(from, to))
		}
		res.JainIndex = metrics.JainIndex(res.PerFlowMbps)
	}
	if census > 0 {
		res.FracOnePulser = float64(one) / float64(census)
		res.FracMultiPulser = float64(multi) / float64(census)
		res.FracNoPulser = float64(zero) / float64(census)
	}
	if totalTicks > 0 {
		res.DelayModeFrac = float64(delayTicks) / float64(totalTicks)
	}
	var delays []float64
	for _, f := range flows {
		delays = append(delays, f.probe.Delay.Summary().Mean)
		res.RateSeries = append(res.RateSeries, metrics.Series{V: f.probe.Tput.SeriesMbps()})
	}
	var s float64
	for _, d := range delays {
		s += d
	}
	res.MeanDelayMs = s / float64(len(delays))
	return res
}

// Fig16 runs at the paper's horizon or a scaled-down one.
func Fig16(seed int64, quick bool) Fig16Result {
	scale := 1.0
	if quick {
		scale = 0.25
	}
	return RunFig16(seed, scale)
}

// FormatFig16 renders the result.
func FormatFig16(r Fig16Result) string {
	var b strings.Builder
	b.WriteString("Fig 16: four staggered Nimbus flows (Vegas delay mode), no cross traffic\n")
	fmt.Fprintf(&b, "per-flow Mbit/s (all active): %v\n", fmtSlice(r.PerFlowMbps))
	fmt.Fprintf(&b, "Jain fairness index: %.3f\n", r.JainIndex)
	fmt.Fprintf(&b, "pulser census: one=%.2f multi=%.2f none=%.2f\n", r.FracOnePulser, r.FracMultiPulser, r.FracNoPulser)
	fmt.Fprintf(&b, "delay-mode fraction: %.2f   mean queueing delay: %.1f ms\n", r.DelayModeFrac, r.MeanDelayMs)
	b.WriteString("expected shape: fair shares, exactly one pulser nearly always, mostly delay mode, low delays\n")
	return b.String()
}

func fmtSlice(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.1f", x)
	}
	return strings.Join(parts, ", ")
}
