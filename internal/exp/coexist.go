package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/runner"
)

// The coexist experiment family is what the FlowSpec redesign buys: the
// paper's core claim is about Nimbus coexisting with arbitrary mixes of
// elastic and inelastic competitors, and this family sweeps exactly
// those mixes — heterogeneous scheme pairings, unequal flow counts, late
// joiners — across constant and time-varying bottlenecks, reporting
// per-flow throughput and two fairness scores (Jain's index and the
// Jensen-Shannon divergence from the equal split) for every cell. None
// of these scenarios existed as figures in the paper; all of them are
// three lines of FlowMix syntax now.

// CoexistMixes are the flow mixes the family sweeps.
var CoexistMixes = []string{
	"nimbus+cubic",        // the paper's central pairing
	"nimbus+bbr",          // model-based competitor
	"nimbus+copa",         // mode-switching competitor
	"nimbus*2+cubic",      // Nimbus majority vs one elastic flow
	"nimbus+cubic*2",      // outnumbered by loss-based flows
	"nimbus+cubic@20",     // elastic late joiner
	"nimbus+vegas+cubic",  // three-way: delay, loss, and Nimbus
	"nimbus*2+cubic@5:25", // finite elastic intruder
}

// CoexistGrid is the declarative sweep behind `nimbus-bench -run coexist`.
func CoexistGrid(seed int64, quick bool) runner.Grid {
	dur := 60.0
	if quick {
		dur = 30
	}
	return runner.Grid{
		Base: runner.Scenario{
			RateMbps: 96, RTTms: 50, BufferMs: 100,
			DurationSec: dur, Seed: seed,
		},
		FlowMixes:  CoexistMixes,
		LinkTraces: []string{"", "cell-ramp"},
	}
}

// Coexist runs the sweep on the package worker pool.
func Coexist(seed int64, quick bool) []runner.Result {
	return RunSweep(CoexistGrid(seed, quick), Workers, nil)
}

// FormatCoexist renders one row per (mix, link) cell with per-flow
// throughput and the fairness of the split.
func FormatCoexist(rs []runner.Result) string {
	var b strings.Builder
	b.WriteString("Coexist: heterogeneous flow mixes (per-flow Mbit/s, fairness)\n")
	fmt.Fprintf(&b, "%-22s %-10s %8s %6s %6s %9s  %s\n",
		"mix", "link", "Mbit/s", "jain", "jsd", "qdelay", "per-flow Mbit/s")
	for _, r := range rs {
		link := r.Scenario.LinkTrace
		if link == "" {
			link = "constant"
		}
		if r.Err != "" {
			fmt.Fprintf(&b, "%-22s %-10s ERROR: %s\n", r.Scenario.FlowMix, link, r.Err)
			continue
		}
		var flows []string
		for i := 0; ; i++ {
			v, ok := r.Metrics[fmt.Sprintf("flow%02d_mbps", i)]
			if !ok {
				break
			}
			flows = append(flows, fmt.Sprintf("%.1f", v))
		}
		fmt.Fprintf(&b, "%-22s %-10s %8.2f %6.3f %6.3f %6.1f ms  [%s]\n",
			r.Scenario.FlowMix, link,
			r.Metrics["mean_mbps"], r.Metrics["jain"], r.Metrics["jsd_uniform"],
			r.Metrics["qdelay_p95_ms"], strings.Join(flows, ", "))
	}
	b.WriteString("expected shape: nimbus holds its share against elastic mixes (jain near 1 for like-for-like splits); late joiners converge; jsd exposes starvation jain smooths over\n")
	return b.String()
}
