package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig14LeftRow compares Nimbus's and Copa's classification accuracy
// against purely inelastic cross traffic occupying a varying share of
// the link (Fig. 14 left). The correct answer is always "inelastic"
// (delay mode / Copa default mode).
type Fig14LeftRow struct {
	Share     float64 // cross traffic share of the link
	Kind      string  // "cbr" or "poisson"
	NimbusAcc float64
	CopaAcc   float64
}

// RunFig14Left runs one share point.
func RunFig14Left(share float64, kind string, seed int64, dur sim.Time) Fig14LeftRow {
	truth := func(sim.Time) bool { return false } // never elastic

	// Nimbus run.
	r1 := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	n := MustScheme("nimbus", r1.MuBps)
	r1.AddFlow(n, 50*sim.Millisecond, 0)
	addInelastic(r1, kind, share*r1.MuBps)
	var mt ModeTracker
	mt.Track(n.Nimbus, truth, 10*sim.Second)
	r1.Sch.RunUntil(dur)

	// Copa run.
	r2 := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	c := MustScheme("copa", r2.MuBps)
	r2.AddFlow(c, 50*sim.Millisecond, 0)
	addInelastic(r2, kind, share*r2.MuBps)
	acc := r2.CopaModeProbe(c.Copa, truth, 10*sim.Second)
	r2.Sch.RunUntil(dur)

	return Fig14LeftRow{
		Share: share, Kind: kind,
		NimbusAcc: mt.Acc.Accuracy(),
		CopaAcc:   acc.Accuracy(),
	}
}

func addInelastic(r *Rig, kind string, rate float64) {
	switch kind {
	case "cbr":
		newCBR(r, 40*sim.Millisecond, rate).Start(0)
	case "poisson":
		newPoisson(r, 40*sim.Millisecond, rate).Start(0)
	default:
		panic("exp: unknown inelastic kind " + kind)
	}
}

// Fig14RightRow compares accuracy against one elastic NewReno cross flow
// whose RTT is a multiple of the probe flow's (Fig. 14 right). The
// correct answer is always "elastic".
type Fig14RightRow struct {
	RTTRatio  float64
	NimbusAcc float64
	CopaAcc   float64
}

// RunFig14Right runs one RTT-ratio point.
func RunFig14Right(ratio float64, seed int64, dur sim.Time) Fig14RightRow {
	truth := func(sim.Time) bool { return true }
	base := 50 * sim.Millisecond
	crossRTT := sim.Time(float64(base) * ratio)

	r1 := NewRig(NetConfig{RateMbps: 96, RTT: base, Buffer: 100 * sim.Millisecond, Seed: seed})
	n := MustScheme("nimbus", r1.MuBps)
	r1.AddFlow(n, base, 0)
	reno1 := transport.NewSender(r1.Net, crossRTT, cc.NewReno(), transport.Backlogged{}, r1.Rng.Split("reno"))
	reno1.Start(0)
	var mt ModeTracker
	mt.Track(n.Nimbus, truth, 10*sim.Second)
	r1.Sch.RunUntil(dur)

	r2 := NewRig(NetConfig{RateMbps: 96, RTT: base, Buffer: 100 * sim.Millisecond, Seed: seed})
	c := MustScheme("copa", r2.MuBps)
	r2.AddFlow(c, base, 0)
	reno2 := transport.NewSender(r2.Net, crossRTT, cc.NewReno(), transport.Backlogged{}, r2.Rng.Split("reno"))
	reno2.Start(0)
	acc := r2.CopaModeProbe(c.Copa, truth, 10*sim.Second)
	r2.Sch.RunUntil(dur)

	return Fig14RightRow{RTTRatio: ratio, NimbusAcc: mt.Acc.Accuracy(), CopaAcc: acc.Accuracy()}
}

// Fig14Result bundles both panels.
type Fig14Result struct {
	Left  []Fig14LeftRow
	Right []Fig14RightRow
}

// Fig14 runs both sweeps.
func Fig14(seed int64, quick bool) Fig14Result {
	dur := 120 * sim.Second
	shares := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	ratios := []float64{1, 1.5, 2, 2.5, 3, 3.5, 4}
	if quick {
		dur = 45 * sim.Second
		shares = []float64{0.3, 0.5, 0.7, 0.9}
		ratios = []float64{1, 2, 4}
	}
	type cell struct {
		share float64
		kind  string
	}
	var cells []cell
	for _, s := range shares {
		for _, kind := range []string{"cbr", "poisson"} {
			cells = append(cells, cell{s, kind})
		}
	}
	var res Fig14Result
	res.Left = mapCells(len(cells), func(i int) Fig14LeftRow {
		return RunFig14Left(cells[i].share, cells[i].kind, seed, dur)
	})
	res.Right = mapCells(len(ratios), func(i int) Fig14RightRow {
		return RunFig14Right(ratios[i], seed, dur)
	})
	return res
}

// FormatFig14 renders both panels.
func FormatFig14(r Fig14Result) string {
	var b strings.Builder
	b.WriteString("Fig 14 (left): accuracy vs inelastic cross-traffic share\n")
	fmt.Fprintf(&b, "%6s %-8s %8s %8s\n", "share", "kind", "nimbus", "copa")
	for _, row := range r.Left {
		fmt.Fprintf(&b, "%5.0f%% %-8s %8.2f %8.2f\n", row.Share*100, row.Kind, row.NimbusAcc, row.CopaAcc)
	}
	b.WriteString("Fig 14 (right): accuracy vs elastic cross-flow RTT ratio\n")
	fmt.Fprintf(&b, "%6s %8s %8s\n", "ratio", "nimbus", "copa")
	for _, row := range r.Right {
		fmt.Fprintf(&b, "%6.1f %8.2f %8.2f\n", row.RTTRatio, row.NimbusAcc, row.CopaAcc)
	}
	b.WriteString("expected shape: copa collapses above ~80% share and degrades with RTT ratio; nimbus stays high\n")
	return b.String()
}
