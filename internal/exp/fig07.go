package exp

import (
	"fmt"
	"math"
	"strings"

	"nimbus/internal/core"
	"nimbus/internal/sim"
)

// Fig07Result validates the asymmetric pulse of Fig. 7 numerically: the
// positive half-sine lasts T/4 with amplitude µ/4, the negative half
// lasts 3T/4 with amplitude µ/12, and the two cancel over a period.
type Fig07Result struct {
	PeakFracOfMu   float64 // positive peak / µ (expected 0.25)
	TroughFracOfMu float64 // |negative trough| / µ (expected 1/12)
	MeanFracOfMu   float64 // |mean over a period| / µ (expected ~0)
	BurstFracOfBDP float64 // burst bytes per pulse / BDP at 200 ms RTT
	Samples        []float64
	SampleT        []float64
}

// Fig07 evaluates the pulse shape for a 96 Mbit/s link at fp = 5 Hz.
func Fig07() Fig07Result {
	mu := 96e6
	p := core.Pulse{Freq: 5, Amplitude: mu / 4}
	period := sim.FromSeconds(1 / p.Freq)
	n := 2000
	var res Fig07Result
	sum, peak, trough := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		tm := sim.Time(float64(period) * float64(i) / float64(n))
		v := p.Offset(tm)
		sum += v
		if v > peak {
			peak = v
		}
		if v < trough {
			trough = v
		}
		if i%20 == 0 {
			res.Samples = append(res.Samples, v/1e6)
			res.SampleT = append(res.SampleT, tm.Seconds()*1000)
		}
	}
	res.PeakFracOfMu = peak / mu
	res.TroughFracOfMu = math.Abs(trough) / mu
	res.MeanFracOfMu = math.Abs(sum/float64(n)) / mu
	bdp := mu / 8 * 0.2 // 200 ms worth of bytes
	res.BurstFracOfBDP = p.BurstBytes() / bdp
	return res
}

// FormatFig07 renders the validation.
func FormatFig07(r Fig07Result) string {
	var b strings.Builder
	b.WriteString("Fig 7: asymmetric sinusoidal pulse shape (mu=96 Mbit/s, fp=5 Hz)\n")
	fmt.Fprintf(&b, "positive peak / mu:  %.4f (paper: 0.2500)\n", r.PeakFracOfMu)
	fmt.Fprintf(&b, "negative peak / mu:  %.4f (paper: 0.0833)\n", r.TroughFracOfMu)
	fmt.Fprintf(&b, "|mean| / mu:         %.5f (paper: 0)\n", r.MeanFracOfMu)
	fmt.Fprintf(&b, "burst / BDP(200ms):  %.4f (paper: ~0.04)\n", r.BurstFracOfBDP)
	return b.String()
}
