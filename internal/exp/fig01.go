package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/metrics"
	"nimbus/internal/netem"
	"nimbus/internal/sim"
)

// Fig01Result reproduces Fig. 1: a flow on a 48 Mbit/s link competing
// with one Cubic flow for 60 s (elastic phase) and then 24 Mbit/s of
// Poisson traffic for 60 s (inelastic phase).
type Fig01Result struct {
	Scheme string
	// Phase means: throughput (Mbit/s) and mean queueing delay (ms).
	ElasticMbps    float64
	ElasticDelay   float64
	InelasticMbps  float64
	InelasticDelay float64
	// Series for the plots (1 s bins / per-second means).
	Tput  []float64
	Delay metrics.Series
}

// RunFig01 runs the Fig. 1 scenario for one scheme ("cubic",
// "nimbus-delay" for Fig 1b, "nimbus" for Fig 1c).
func RunFig01(scheme string, seed int64) Fig01Result {
	r := NewRig(NetConfig{RateMbps: 48, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	probe := r.AddFlow(MustScheme(scheme, r.MuBps), 50*sim.Millisecond, 0)

	// Elastic phase: one Cubic flow from 30 s to 90 s.
	cross := r.AddCubicCross(1, 50*sim.Millisecond, 30*sim.Second)
	r.StopFlows(cross, 90*sim.Second)
	// Inelastic phase: 24 Mbit/s Poisson from 90 s to 150 s.
	po := newPoisson(r, 40*sim.Millisecond, 24e6)
	po.Start(90 * sim.Second)
	r.Sch.At(150*sim.Second, func() { po.Stop() })

	// Queueing delay series sampled every 100 ms from the probe flow,
	// plus per-phase delay recorders.
	var delaySer metrics.Series
	var lastQ float64
	elasticDelay := metrics.NewDelayRecorder(0, r.Rng.Split("ed"))
	inelasticDelay := metrics.NewDelayRecorder(0, r.Rng.Split("id"))
	addDeliverTap(probe.Sender, func(p *netem.Packet, now sim.Time) {
		lastQ = p.QueueDelay.Millis()
		switch {
		case now >= 35*sim.Second && now < 90*sim.Second:
			elasticDelay.Add(p.QueueDelay)
		case now >= 95*sim.Second && now < 150*sim.Second:
			inelasticDelay.Add(p.QueueDelay)
		}
	})
	var sample func()
	sample = func() {
		delaySer.Add(r.Sch.Now(), lastQ)
		r.Sch.After(100*sim.Millisecond, sample)
	}
	r.Sch.After(100*sim.Millisecond, sample)

	r.Sch.RunUntil(175 * sim.Second)

	return Fig01Result{
		Scheme:         scheme,
		ElasticMbps:    probe.MeanMbps(35*sim.Second, 90*sim.Second),
		ElasticDelay:   elasticDelay.Summary().Mean,
		InelasticMbps:  probe.MeanMbps(95*sim.Second, 150*sim.Second),
		InelasticDelay: inelasticDelay.Summary().Mean,
		Tput:           probe.Tput.SeriesMbps(),
		Delay:          delaySer,
	}
}

// Fig01 runs the three panels of Fig. 1.
func Fig01(seed int64) []Fig01Result {
	schemes := []string{"cubic", "nimbus-delay", "nimbus"}
	return mapCells(len(schemes), func(i int) Fig01Result {
		return RunFig01(schemes[i], seed)
	})
}

// FormatFig01 renders the paper-style comparison.
func FormatFig01(rows []Fig01Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: 48 Mbit/s link; elastic (1 Cubic, 30-90s) then inelastic (24 Mbit/s Poisson, 90-150s)\n")
	fmt.Fprintf(&b, "%-14s %18s %18s\n", "scheme", "elastic phase", "inelastic phase")
	fmt.Fprintf(&b, "%-14s %9s %8s %9s %8s\n", "", "Mbit/s", "delay ms", "Mbit/s", "delay ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.1f %8.1f %9.1f %8.1f\n",
			r.Scheme, r.ElasticMbps, r.ElasticDelay, r.InelasticMbps, r.InelasticDelay)
	}
	b.WriteString("expected shape: cubic=fair share+high delay both phases; nimbus-delay=low tput vs elastic, low delay vs inelastic; nimbus=fair share vs elastic AND low delay vs inelastic\n")
	return b.String()
}
