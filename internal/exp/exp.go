// Package exp contains the experiment harness: one constructor per table
// or figure of the paper, each returning typed rows and a textual
// rendering that mirrors what the paper reports. The DESIGN.md experiment
// index maps every figure/table to its function here and its benchmark in
// the repository root.
package exp

import (
	"fmt"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/metrics"
	"nimbus/internal/netem"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// NetConfig describes the emulated network (the Mahimahi stand-in): the
// nominal bottleneck parameters plus, optionally, a topology the path is
// built from.
type NetConfig struct {
	RateMbps  float64
	RTT       sim.Time // base RTT of the primary flow
	Buffer    sim.Time // drop-tail buffer depth in time at the link rate
	AQM       string   // "droptail" (default), "pie", "codel"
	PIETarget sim.Time // PIE target delay (default 20 ms)
	Seed      int64
	// Schedule, when non-nil, makes the bottleneck capacity time-varying
	// (traces, ramps, outages). RateMbps stays the nominal rate: buffer
	// depth and the AQM drain-rate estimate are sized from it, the way a
	// real deployment provisions for a nominal capacity.
	Schedule *netem.RateSchedule
	// Topology selects the path topology: empty (or "single") is the
	// paper's Fig. 2 single bottleneck; otherwise a preset name
	// ("access-hop", "parking-lot", "rev-congested") or a chain spec like
	// "access(x4,5ms)->bn" (netem.ParseTopology). Links without explicit
	// rates/buffers inherit RateMbps/Buffer; the bottleneck link inherits
	// AQM and Schedule.
	Topology string
	// LinkBurst, when > 1, enables burst forwarding (Link.SetBurst) with
	// that per-event packet budget on every link that does not set its
	// own burst= in the topology spec. Only constant-rate drop-tail
	// links burst; see Link.SetBurst for the (documented) event-timing
	// difference versus per-packet forwarding.
	LinkBurst int
	// TimerWheel backs the scheduler's event queue with the hashed timer
	// wheel (sim.Scheduler.UseTimerWheel) instead of the 4-ary heap.
	// Event order — and therefore every result — is identical either
	// way; the wheel wins on dense timer churn (thousands of concurrent
	// flows), so churn scenarios enable it automatically.
	TimerWheel bool
	// Fluid, when non-empty, is a canonical crosstraffic.FluidSpec string
	// ("on", "dt=5ms"): every link gets the fluid load term enabled
	// (Link.EnableFluid), and AddCross kinds with a fluid model (cbr,
	// poisson, cubic, reno) attach as rate processes instead of packet
	// sources. Fluid and burst forwarding are mutually exclusive per
	// link; enabling fluid wins. Kinds without a model (trace, video*)
	// stay exact per-packet.
	Fluid string
}

// Rig is an instantiated network for one experiment run. Link is the
// bottleneck hop; Net is the full topology (the trivial one-hop topology
// by default).
type Rig struct {
	Sch   *sim.Scheduler
	Link  *netem.Link
	Net   *netem.Network
	Rng   *sim.Rand
	MuBps float64
	Cfg   NetConfig
	// Fluid is the parsed form of Cfg.Fluid (zero = disabled).
	Fluid crosstraffic.FluidSpec
}

// NewRig builds the network from the config's topology spec (the single
// bottleneck when none is given). Unknown AQMs and malformed topologies
// panic; the sweep harness's runGuarded turns panics into error rows, and
// RigForScenario validates scenario specs up front.
func NewRig(cfg NetConfig) *Rig {
	if cfg.Buffer == 0 {
		cfg.Buffer = 100 * sim.Millisecond
	}
	ts, err := netem.ParseTopology(cfg.Topology)
	if err != nil {
		panic("exp: " + err.Error())
	}
	fluid, err := crosstraffic.ParseFluidSpec(cfg.Fluid)
	if err != nil {
		panic("exp: " + err.Error())
	}
	sch := sim.NewScheduler()
	if cfg.TimerWheel {
		sch.UseTimerWheel()
	}
	rng := sim.NewRand(cfg.Seed + 1)
	nominal := cfg.RateMbps * 1e6
	// The µ link depends on the nominal rate for chains mixing scaled and
	// absolute rates ("access(x4)->bn(48mbps)" at -rate 24 bottlenecks at
	// bn, not access).
	bottleneck := ts.BottleneckAt(nominal)
	// µ is the bottleneck's resolved capacity — the nominal rate for the
	// single topology and every preset (their bottlenecks inherit it),
	// but a chain may pin the bottleneck to an explicit absolute rate.
	muBps := nominal
	byName := make(map[string]*netem.Link, len(ts.Links))
	net := netem.NewTopology(sch)
	for _, ls := range ts.Links {
		isBn := ls.Name == bottleneck
		rate := ls.ResolveRate(nominal)
		if isBn {
			muBps = rate
		}
		aqm := ls.AQM
		if aqm == "" && isBn {
			aqm = cfg.AQM
		}
		buf := cfg.Buffer
		if ls.BufferMs > 0 {
			buf = sim.FromSeconds(ls.BufferMs / 1e3)
		}
		bufBytes := netem.BufferBytesForDelay(rate, buf)
		var q netem.Queue
		switch aqm {
		case "", "droptail":
			q = netem.NewDropTail(bufBytes)
		case "pie":
			target := cfg.PIETarget
			if target == 0 {
				target = 20 * sim.Millisecond
			}
			// The bottleneck's PIE stream keeps its historical label so
			// single-topology results stay byte-identical.
			label := "pie"
			if !isBn {
				label = "pie-" + ls.Name
			}
			q = netem.NewPIE(bufBytes, rate, target, rng.Split(label))
		case "codel":
			q = netem.NewCoDel(bufBytes)
		default:
			panic("exp: unknown AQM " + aqm)
		}
		var sched *netem.RateSchedule
		switch {
		case isBn && cfg.Schedule != nil:
			sched = cfg.Schedule
		case ls.Pattern != "":
			sched, err = netem.ParsePattern(ls.Pattern, rate)
			if err != nil {
				panic("exp: " + err.Error())
			}
		default:
			sched = netem.ConstantRate(rate)
		}
		link := netem.NewLinkSchedule(sch, sched, q)
		link.Name = ls.Name
		if ls.Burst > 0 {
			link.SetBurst(ls.Burst)
		} else if cfg.LinkBurst > 0 {
			link.SetBurst(cfg.LinkBurst)
		}
		if fluid.Enabled || ls.FluidMbps > 0 {
			// After SetBurst: fluid and burst are mutually exclusive on a
			// link, and fluid wins (EnableFluid withdraws the burst path).
			link.EnableFluid(bufBytes)
			if ls.FluidMbps > 0 {
				link.AddFluidRate(ls.FluidMbps * 1e6)
			}
		}
		net.AddLink(link)
		byName[ls.Name] = link
	}
	for _, rs := range ts.Routes {
		r := &netem.Route{Name: rs.Name}
		for _, hop := range rs.Fwd {
			r.Fwd = append(r.Fwd, netem.Hop{Link: byName[hop], Delay: hopDelay(ts, hop)})
		}
		for _, hop := range rs.Rev {
			r.Rev = append(r.Rev, netem.Hop{Link: byName[hop], Delay: hopDelay(ts, hop)})
		}
		net.AddRoute(r)
	}
	net.Link = byName[bottleneck]
	net.SetNodes(ts.Nodes())
	return &Rig{
		Sch:   sch,
		Link:  net.Link,
		Net:   net,
		Rng:   rng,
		MuBps: muBps,
		Cfg:   cfg,
		Fluid: fluid,
	}
}

// hopDelay returns a link's wire delay from its spec.
func hopDelay(ts netem.TopoSpec, name string) sim.Time {
	return sim.FromSeconds(ts.LinkByName(name).DelayMs / 1e3)
}

// Scheme is a constructed congestion controller, with the Nimbus core
// exposed when the scheme is Nimbus-based. Schemes are built from typed
// specs through the internal/scheme registry, which internal/cc and
// internal/core populate at init time.
type Scheme struct {
	// Name is the registered scheme name (the spec's name without
	// parameters); random streams and result rows are labeled with it.
	Name string
	// Spec is the full typed spec the scheme was built from.
	Spec   spec.Spec
	Ctrl   transport.Controller
	Nimbus *core.Nimbus // nil for non-Nimbus schemes
	Copa   *cc.Copa     // non-nil for the Copa baseline (mode telemetry)
}

// BuildScheme constructs the scheme a spec describes. muBps is the
// nominal bottleneck rate (the µ oracle's truth); mu, when non-nil, is
// the environment's true-rate µ source — rigs with time-varying links
// pass a LinkOracle, since a fixed-rate oracle would hand Nimbus a
// stale µ the moment the capacity moves. A spec that explicitly asks
// for the estimator (mu=est) keeps the estimator either way.
func BuildScheme(sp spec.Spec, muBps float64, mu core.MuEstimator) (Scheme, error) {
	ctrl, err := spec.Build(sp, spec.BuildContext{MuBps: muBps, Mu: mu})
	if err != nil {
		return Scheme{}, err
	}
	s := Scheme{Name: sp.Name, Spec: sp, Ctrl: ctrl}
	if n, ok := ctrl.(*core.Nimbus); ok {
		s.Nimbus = n
	}
	if c, ok := ctrl.(*cc.Copa); ok {
		s.Copa = c
	}
	return s, nil
}

// MustBuildScheme is BuildScheme for known-good specs; it panics on
// error (the harness's runGuarded turns panics into error rows).
func MustBuildScheme(sp spec.Spec, muBps float64) Scheme {
	s, err := BuildScheme(sp, muBps, nil)
	if err != nil {
		panic(err)
	}
	return s
}

// MustScheme parses a spec string ("nimbus", "copa(delta=0.1)",
// "nimbus(pulse=0.1,multiflow=true)") and builds it, panicking on error.
// It is the one-liner the figure reproductions use.
func MustScheme(s string, muBps float64) Scheme {
	return MustBuildScheme(spec.MustParse(s), muBps)
}

// LinkOracle is the time-varying analogue of core.Oracle: it reports the
// link's instantaneous capacity as µ, for experiments that control for µ
// estimation error on schedules where no single rate is "the" truth. In
// multi-hop rigs the oracle reads the bottleneck hop's link (Rig.Link).
type LinkOracle struct{ Link *netem.Link }

// Observe is a no-op; the oracle reads the link directly.
func (LinkOracle) Observe(sim.Time, float64) {}

// Mu returns the scheduled instantaneous capacity. It evaluates the
// schedule at the current time rather than returning the link's internal
// drain rate: the drain rate is updated by scheduler events, so a reader
// running at the same timestamp as a transition would see the old rate or
// the new one depending on event seeding order, while the schedule gives
// one well-defined answer.
func (o LinkOracle) Mu() float64 { return o.Link.Schedule.RateAt(o.Link.Sch.Now()) }

// SchemeNames lists the schemes most experiments compare.
var SchemeNames = []string{"nimbus", "cubic", "bbr", "vegas", "copa", "vivace"}

// FlowProbe records a flow's throughput, per-packet queueing delay, and
// RTT samples.
type FlowProbe struct {
	Tput   *metrics.Meter
	Delay  *metrics.DelayRecorder
	RTTms  *metrics.DelayRecorder
	Sender *transport.Sender
}

// AddFlow attaches a backlogged flow with the scheme and a probe.
func (r *Rig) AddFlow(s Scheme, rtt sim.Time, start sim.Time) *FlowProbe {
	return r.AddFlowSrc(s, rtt, start, transport.Backlogged{})
}

// AddFlowSrc attaches a flow with an explicit application source on the
// default route.
func (r *Rig) AddFlowSrc(s Scheme, rtt sim.Time, start sim.Time, src transport.Source) *FlowProbe {
	return r.AddFlowOn("", s, rtt, start, src)
}

// AddFlowOn attaches a flow on a named route of the rig's topology (""
// is the default end-to-end route).
func (r *Rig) AddFlowOn(route string, s Scheme, rtt sim.Time, start sim.Time, src transport.Source) *FlowProbe {
	sender := transport.NewSenderOn(r.Net, route, rtt, s.Ctrl, src, r.Rng.Split("flow-"+s.Name))
	probe := &FlowProbe{
		Tput:   metrics.NewMeter(sim.Second),
		Delay:  metrics.NewDelayRecorder(0, r.Rng.Split("dlyrec")),
		RTTms:  metrics.NewDelayRecorder(0, r.Rng.Split("rttrec")),
		Sender: sender,
	}
	sender.OnDeliverHook = func(p *netem.Packet, now sim.Time) {
		probe.Tput.Add(now, p.Size)
		probe.Delay.Add(p.QueueDelay)
	}
	sender.OnAckHook = func(a transport.AckInfo) {
		probe.RTTms.Add(a.RTT)
	}
	sender.Start(start)
	return probe
}

// MeanMbps is the probe's mean throughput over [from, to).
func (p *FlowProbe) MeanMbps(from, to sim.Time) float64 { return p.Tput.MeanMbps(from, to) }

// FlowSpec declares one group of flows for a Rig: which scheme, how many
// copies, when they start and stop, and what application drives them.
// It is the composition unit behind heterogeneous coexistence
// experiments (Nimbus-vs-Cubic-vs-BBR mixes, late joiners, finite
// flows) — one Rig hosts any number of FlowSpecs.
type FlowSpec struct {
	// Scheme is the typed scheme spec each flow runs.
	Scheme spec.Spec
	// Count is how many identical flows to start (0 means 1). Each gets
	// its own controller instance and random stream.
	Count int
	// RTT is the flows' base RTT; 0 uses the rig's configured RTT.
	RTT sim.Time
	// StartAt / StopAt bound the flows' lifetime; StopAt 0 means the
	// flows run to the end of the simulation.
	StartAt, StopAt sim.Time
	// Source is the application source (nil means backlogged).
	Source transport.Source
	// Route is the topology route the flows take ("" = the default
	// end-to-end route). Parking-lot style experiments use it to pin
	// flows to individual hops.
	Route string
}

// Flow is one instantiated flow of a FlowSpec: its constructed scheme,
// its probe, and where it came from.
type Flow struct {
	Spec   FlowSpec
	Index  int // index within the FlowSpec's Count
	Scheme Scheme
	Probe  *FlowProbe
}

// Active returns the flow's active interval clipped to [0, end).
func (f *Flow) Active(end sim.Time) (from, to sim.Time) {
	from, to = f.Spec.StartAt, end
	if f.Spec.StopAt > 0 && f.Spec.StopAt < end {
		to = f.Spec.StopAt
	}
	return from, to
}

// MeanMbps is the flow's mean throughput over its active interval
// clipped to end.
func (f *Flow) MeanMbps(end sim.Time) float64 {
	from, to := f.Active(end)
	return f.Probe.MeanMbps(from, to)
}

// AddFlowSpecs instantiates flow specs on the rig, in order. Flows on a
// time-varying rig get the link oracle as µ unless their spec says
// otherwise; start/stop scheduling and per-flow probes are wired the
// same way AddFlow does for a single flow. The call is atomic: every
// scheme is built (and validated) before any flow touches the rig, so
// an error leaves the rig exactly as it was.
func (r *Rig) AddFlowSpecs(specs ...FlowSpec) ([]*Flow, error) {
	var mu core.MuEstimator
	if r.Link.Varying() {
		mu = LinkOracle{Link: r.Link}
	}
	var flows []*Flow
	for _, fs := range specs {
		if fs.StopAt > 0 && fs.StopAt <= fs.StartAt {
			return nil, fmt.Errorf("exp: flow spec %s: stop %gs not after start %gs",
				fs.Scheme, fs.StopAt.Seconds(), fs.StartAt.Seconds())
		}
		if r.Net.Route(fs.Route) == nil {
			return nil, fmt.Errorf("exp: flow spec %s: no route %q in topology %s",
				fs.Scheme, fs.Route, r.Cfg.Topology)
		}
		count := fs.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			s, err := BuildScheme(fs.Scheme, r.MuBps, mu)
			if err != nil {
				return nil, err
			}
			flows = append(flows, &Flow{Spec: fs, Index: i, Scheme: s})
		}
	}
	for _, f := range flows {
		rtt := f.Spec.RTT
		if rtt == 0 {
			rtt = r.Cfg.RTT
		}
		src := f.Spec.Source
		if src == nil {
			src = transport.Backlogged{}
		}
		f.Probe = r.AddFlowOn(f.Spec.Route, f.Scheme, rtt, f.Spec.StartAt, src)
		if stop := f.Spec.StopAt; stop > 0 {
			probe := f.Probe
			r.Sch.At(stop, func() {
				probe.Sender.Stop()
				r.Net.Detach(probe.Sender.ID())
			})
		}
	}
	return flows, nil
}

// FlowSetStats are the aggregate measurements of a heterogeneous flow
// set: per-flow throughput plus the fairness of the allocation.
type FlowSetStats struct {
	// PerFlowMbps is each flow's mean throughput over its own active
	// interval, in AddFlowSpecs order.
	PerFlowMbps []float64
	// AggMbps is the flow set's aggregate throughput over the whole run
	// ([0, end)) — total delivered bits over total time, so it is
	// bounded by the link capacity and comparable to a single flow's
	// mean_mbps regardless of how the flows' active windows stagger.
	AggMbps float64
	// Jain and JSDUniform score the allocation over the window where
	// every flow is active (Jain's fairness index; Jensen-Shannon
	// divergence from the equal-share split, in bits). Both are 0 when
	// no such window exists.
	Jain       float64
	JSDUniform float64
}

// FlowStats measures a flow set at the end of a run.
func FlowStats(flows []*Flow, end sim.Time) FlowSetStats {
	st := FlowSetStats{}
	// The fairness window: every flow active.
	winFrom, winTo := sim.Time(0), end
	for _, f := range flows {
		from, to := f.Active(end)
		if from > winFrom {
			winFrom = from
		}
		if to < winTo {
			winTo = to
		}
		st.PerFlowMbps = append(st.PerFlowMbps, f.Probe.MeanMbps(from, to))
		st.AggMbps += f.Probe.MeanMbps(0, end)
	}
	if winTo > winFrom {
		shared := make([]float64, len(flows))
		for i, f := range flows {
			shared[i] = f.Probe.MeanMbps(winFrom, winTo)
		}
		st.Jain = metrics.JainIndex(shared)
		st.JSDUniform = metrics.JSDUniform(shared)
	}
	return st
}

// AddCubicCross starts n long-running Cubic cross flows at time start and
// returns their senders.
func (r *Rig) AddCubicCross(n int, rtt sim.Time, start sim.Time) []*transport.Sender {
	out := make([]*transport.Sender, n)
	for i := range out {
		s := transport.NewSender(r.Net, rtt, cc.NewCubic(), transport.Backlogged{}, r.Rng.Split(fmt.Sprintf("ccross%d", i)))
		s.Start(start)
		out[i] = s
	}
	return out
}

// StopFlows stops senders and detaches them from the network.
func (r *Rig) StopFlows(ss []*transport.Sender, at sim.Time) {
	r.Sch.At(at, func() {
		for _, s := range ss {
			s.Stop()
			r.Net.Detach(s.ID())
		}
	})
}

// ModeTracker accumulates Nimbus mode/accuracy statistics from telemetry.
type ModeTracker struct {
	Acc          metrics.AccuracyTracker
	EtaSer       metrics.Series
	ModeSer      metrics.Series // 1 = competitive
	CompTime     sim.Time
	lastT        sim.Time
	RecordSeries bool
}

// Track wires the tracker to a Nimbus instance with the given ground
// truth ("is the cross traffic elastic right now").
func (mt *ModeTracker) Track(n *core.Nimbus, truth func(now sim.Time) bool, warmup sim.Time) {
	mt.Acc.Warmup = warmup
	prev := n.OnTick
	n.OnTick = func(t core.Telemetry) {
		if prev != nil {
			prev(t)
		}
		pred := t.Mode == core.ModeCompetitive
		mt.Acc.Observe(t.Now, pred, truth(t.Now))
		if pred && mt.lastT != 0 {
			mt.CompTime += t.Now - mt.lastT
		}
		mt.lastT = t.Now
		if mt.RecordSeries {
			mt.EtaSer.Add(t.Now, t.Eta)
			m := 0.0
			if pred {
				m = 1
			}
			mt.ModeSer.Add(t.Now, m)
		}
	}
}

// CopaModeProbe samples Copa's own mode every 10 ms against ground truth.
func (r *Rig) CopaModeProbe(c *cc.Copa, truth func(now sim.Time) bool, warmup sim.Time) *metrics.AccuracyTracker {
	acc := &metrics.AccuracyTracker{Warmup: warmup}
	var tick func()
	tick = func() {
		acc.Observe(r.Sch.Now(), c.Competitive(), truth(r.Sch.Now()))
		r.Sch.AfterFunc(10*sim.Millisecond, tick)
	}
	r.Sch.AfterFunc(10*sim.Millisecond, tick)
	return acc
}

// Mbps formats a bits/s value in Mbit/s.
func Mbps(bps float64) float64 { return bps / 1e6 }

// newPoisson attaches a Poisson raw source to the rig.
func newPoisson(r *Rig, rtt sim.Time, rateBps float64) *crosstraffic.RawSource {
	return crosstraffic.NewPoisson(r.Net, rtt, rateBps, r.Rng.Split("poisson"))
}

// newCBR attaches a constant-bit-rate raw source to the rig.
func newCBR(r *Rig, rtt sim.Time, rateBps float64) *crosstraffic.RawSource {
	return crosstraffic.NewCBR(r.Net, rtt, rateBps)
}

// AddCross attaches a named cross-traffic generator to the rig's default
// route (used by cmd/nimbus-sim and the examples). kind is one of: none,
// cubic, reno, poisson, cbr, trace, video4k, video1080p.
func AddCross(r *Rig, kind string, rateBps float64, rtt sim.Time) error {
	return AddCrossOn(r, "", kind, rateBps, rtt)
}

// AddCrossOn is AddCross on a named route of the rig's topology, so
// cross traffic can enter at individual hops (parking-lot contention) or
// on the reverse path (ACK-path congestion via "rev-cross").
func AddCrossOn(r *Rig, route, kind string, rateBps float64, rtt sim.Time) error {
	if r.Net.Route(route) == nil {
		return fmt.Errorf("exp: cross traffic %q: no route %q in topology %s", kind, route, r.Cfg.Topology)
	}
	if r.Fluid.Enabled && crosstraffic.HasFluidModel(kind) {
		f, err := crosstraffic.NewFluid(r.Net, route, kind, rateBps, rtt, r.Fluid, r.Rng.Split("fluid-"+kind))
		if err != nil {
			return fmt.Errorf("exp: %w", err)
		}
		f.Start(0)
		return nil
	}
	switch kind {
	case "none", "":
	case "cubic":
		s := transport.NewSenderOn(r.Net, route, rtt, cc.NewCubic(), transport.Backlogged{}, r.Rng.Split("ccross0"))
		s.Start(0)
	case "reno":
		s := transport.NewSenderOn(r.Net, route, rtt, cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno-cross"))
		s.Start(0)
	case "poisson":
		crosstraffic.NewPoissonOn(r.Net, route, rtt, rateBps, r.Rng.Split("poisson")).Start(0)
	case "cbr":
		crosstraffic.NewCBROn(r.Net, route, rtt, rateBps).Start(0)
	case "trace":
		w := &crosstraffic.TraceWorkload{
			Net:     r.Net,
			Rng:     r.Rng.Split("trace"),
			LoadBps: rateBps,
			RTT:     rtt,
			Route:   route,
			NewCC:   func() transport.Controller { return cc.NewCubic() },
		}
		w.Start(0)
	case "video4k", "video1080p":
		ladder := crosstraffic.Ladder1080p
		if kind == "video4k" {
			ladder = crosstraffic.Ladder4K
		}
		v := &crosstraffic.VideoClient{
			Net: r.Net, Rng: r.Rng.Split("video"), RTT: rtt, Route: route,
			Ladder: ladder,
			NewCC:  func() transport.Controller { return cc.NewCubic() },
		}
		v.Start(0)
	default:
		return fmt.Errorf("exp: unknown cross traffic kind %q", kind)
	}
	return nil
}

// addDeliverTap chains an extra observer onto a sender's delivery hook
// without disturbing existing observers (the probe's meters).
func addDeliverTap(s *transport.Sender, tap func(p *netem.Packet, now sim.Time)) {
	prev := s.OnDeliverHook
	s.OnDeliverHook = func(p *netem.Packet, now sim.Time) {
		if prev != nil {
			prev(p, now)
		}
		tap(p, now)
	}
}
