// Package exp contains the experiment harness: one constructor per table
// or figure of the paper, each returning typed rows and a textual
// rendering that mirrors what the paper reports. The DESIGN.md experiment
// index maps every figure/table to its function here and its benchmark in
// the repository root.
package exp

import (
	"fmt"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/metrics"
	"nimbus/internal/netem"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// NetConfig describes the emulated bottleneck (the Mahimahi stand-in).
type NetConfig struct {
	RateMbps  float64
	RTT       sim.Time // base RTT of the primary flow
	Buffer    sim.Time // drop-tail buffer depth in time at the link rate
	AQM       string   // "droptail" (default), "pie", "codel"
	PIETarget sim.Time // PIE target delay (default 20 ms)
	Seed      int64
	// Schedule, when non-nil, makes the bottleneck capacity time-varying
	// (traces, ramps, outages). RateMbps stays the nominal rate: buffer
	// depth and the AQM drain-rate estimate are sized from it, the way a
	// real deployment provisions for a nominal capacity.
	Schedule *netem.RateSchedule
}

// Rig is an instantiated bottleneck network for one experiment run.
type Rig struct {
	Sch   *sim.Scheduler
	Link  *netem.Link
	Net   *netem.Network
	Rng   *sim.Rand
	MuBps float64
	Cfg   NetConfig
}

// NewRig builds the network.
func NewRig(cfg NetConfig) *Rig {
	if cfg.Buffer == 0 {
		cfg.Buffer = 100 * sim.Millisecond
	}
	sch := sim.NewScheduler()
	rng := sim.NewRand(cfg.Seed + 1)
	rate := cfg.RateMbps * 1e6
	bufBytes := netem.BufferBytesForDelay(rate, cfg.Buffer)
	var q netem.Queue
	switch cfg.AQM {
	case "", "droptail":
		q = netem.NewDropTail(bufBytes)
	case "pie":
		target := cfg.PIETarget
		if target == 0 {
			target = 20 * sim.Millisecond
		}
		q = netem.NewPIE(bufBytes, rate, target, rng.Split("pie"))
	case "codel":
		q = netem.NewCoDel(bufBytes)
	default:
		panic("exp: unknown AQM " + cfg.AQM)
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = netem.ConstantRate(rate)
	}
	link := netem.NewLinkSchedule(sch, sched, q)
	return &Rig{
		Sch:   sch,
		Link:  link,
		Net:   netem.NewNetwork(sch, link),
		Rng:   rng,
		MuBps: rate,
		Cfg:   cfg,
	}
}

// SchemeOpts tunes scheme construction.
type SchemeOpts struct {
	// PulseFraction overrides Nimbus's pulse amplitude fraction.
	PulseFraction float64
	// EstimateMu uses the BBR-style µ estimator instead of the oracle.
	EstimateMu bool
	// Mu, when non-nil, overrides the µ estimator entirely. Rigs with
	// time-varying links pass a LinkOracle here: a fixed-rate oracle
	// would hand Nimbus a stale µ the moment the capacity moves.
	Mu core.MuEstimator
	// MultiFlow enables the pulser/watcher protocol.
	MultiFlow bool
	// PulseFreq overrides fpc (and fpd when not multi-flow).
	PulseFreq float64
	// Detector overrides the detector configuration.
	Detector core.DetectorConfig
	// StartCompetitive starts Nimbus in TCP-competitive mode. Against
	// bistable cross traffic (BBR with deep buffers: ACK-clocked only
	// when the queue exceeds its rtprop) the starting mode selects the
	// equilibrium.
	StartCompetitive bool
}

// Scheme is a constructed congestion controller, with the Nimbus core
// exposed when the scheme is Nimbus-based.
type Scheme struct {
	Name   string
	Ctrl   transport.Controller
	Nimbus *core.Nimbus // nil for non-Nimbus schemes
	Copa   *cc.Copa     // non-nil for the Copa baseline (mode telemetry)
}

// NewScheme builds a congestion controller by name. Recognized names:
//
//	cubic, reno, vegas, copa, copa-default, bbr, vivace, compound
//	nimbus            — Cubic + BasicDelay (the paper's default)
//	nimbus-copa       — Cubic + Copa default mode
//	nimbus-vegas      — Cubic + Vegas
//	nimbus-reno       — NewReno + BasicDelay
//	nimbus-delay      — BasicDelay pinned (no switching; "delay-control")
//	nimbus-competitive— Cubic pinned (ablation)
func NewScheme(name string, muBps float64, opts SchemeOpts) Scheme {
	mu := core.MuEstimator(core.Oracle{Rate: muBps})
	if opts.EstimateMu {
		mu = core.NewMaxReceiveRate(0)
	}
	if opts.Mu != nil {
		mu = opts.Mu
	}
	nimbusCfg := func(delay core.WindowCC, comp core.WindowCC, pinned bool, startMode core.Mode) Scheme {
		if comp == nil {
			comp = cc.NewCubic()
		}
		if opts.StartCompetitive && !pinned {
			startMode = core.ModeCompetitive
		}
		cfg := core.Config{
			Mu:            mu,
			Competitive:   comp,
			Delay:         delay,
			PulseFraction: opts.PulseFraction,
			MultiFlow:     opts.MultiFlow,
			Pinned:        pinned,
			StartMode:     startMode,
			Detector:      opts.Detector,
		}
		if opts.PulseFreq > 0 {
			cfg.FreqCompetitive = opts.PulseFreq
			if !opts.MultiFlow {
				cfg.FreqDelay = opts.PulseFreq
			} else {
				cfg.FreqDelay = opts.PulseFreq + 1
			}
		}
		n := core.NewNimbus(cfg)
		return Scheme{Name: name, Ctrl: n, Nimbus: n}
	}
	switch name {
	case "cubic":
		return Scheme{Name: name, Ctrl: cc.NewCubic()}
	case "reno":
		return Scheme{Name: name, Ctrl: cc.NewReno()}
	case "vegas":
		return Scheme{Name: name, Ctrl: cc.NewVegas()}
	case "copa":
		c := cc.NewCopa()
		return Scheme{Name: name, Ctrl: c, Copa: c}
	case "copa-default":
		c := cc.NewCopaDefaultMode()
		return Scheme{Name: name, Ctrl: c, Copa: c}
	case "bbr":
		return Scheme{Name: name, Ctrl: cc.NewBBR()}
	case "vivace":
		return Scheme{Name: name, Ctrl: cc.NewVivace()}
	case "compound":
		return Scheme{Name: name, Ctrl: cc.NewCompound()}
	case "nimbus":
		return nimbusCfg(nil, nil, false, core.ModeDelay)
	case "nimbus-copa":
		return nimbusCfg(cc.NewCopaDefaultMode(), nil, false, core.ModeDelay)
	case "nimbus-vegas":
		return nimbusCfg(cc.NewVegas(), nil, false, core.ModeDelay)
	case "nimbus-reno":
		return nimbusCfg(nil, cc.NewReno(), false, core.ModeDelay)
	case "nimbus-delay":
		return nimbusCfg(nil, nil, true, core.ModeDelay)
	case "nimbus-competitive":
		return nimbusCfg(nil, nil, true, core.ModeCompetitive)
	default:
		panic("exp: unknown scheme " + name)
	}
}

// LinkOracle is the time-varying analogue of core.Oracle: it reports the
// link's instantaneous capacity as µ, for experiments that control for µ
// estimation error on schedules where no single rate is "the" truth.
type LinkOracle struct{ Link *netem.Link }

// Observe is a no-op; the oracle reads the link directly.
func (LinkOracle) Observe(sim.Time, float64) {}

// Mu returns the link's current drain rate.
func (o LinkOracle) Mu() float64 { return o.Link.Rate() }

// SchemeNames lists the schemes most experiments compare.
var SchemeNames = []string{"nimbus", "cubic", "bbr", "vegas", "copa", "vivace"}

// FlowProbe records a flow's throughput, per-packet queueing delay, and
// RTT samples.
type FlowProbe struct {
	Tput   *metrics.Meter
	Delay  *metrics.DelayRecorder
	RTTms  *metrics.DelayRecorder
	Sender *transport.Sender
}

// AddFlow attaches a backlogged flow with the scheme and a probe.
func (r *Rig) AddFlow(s Scheme, rtt sim.Time, start sim.Time) *FlowProbe {
	return r.AddFlowSrc(s, rtt, start, transport.Backlogged{})
}

// AddFlowSrc attaches a flow with an explicit application source.
func (r *Rig) AddFlowSrc(s Scheme, rtt sim.Time, start sim.Time, src transport.Source) *FlowProbe {
	sender := transport.NewSender(r.Net, rtt, s.Ctrl, src, r.Rng.Split("flow-"+s.Name))
	probe := &FlowProbe{
		Tput:   metrics.NewMeter(sim.Second),
		Delay:  metrics.NewDelayRecorder(0, r.Rng.Split("dlyrec")),
		RTTms:  metrics.NewDelayRecorder(0, r.Rng.Split("rttrec")),
		Sender: sender,
	}
	sender.OnDeliverHook = func(p *netem.Packet, now sim.Time) {
		probe.Tput.Add(now, p.Size)
		probe.Delay.Add(p.QueueDelay)
	}
	sender.OnAckHook = func(a transport.AckInfo) {
		probe.RTTms.Add(a.RTT)
	}
	sender.Start(start)
	return probe
}

// MeanMbps is the probe's mean throughput over [from, to).
func (p *FlowProbe) MeanMbps(from, to sim.Time) float64 { return p.Tput.MeanMbps(from, to) }

// AddCubicCross starts n long-running Cubic cross flows at time start and
// returns their senders.
func (r *Rig) AddCubicCross(n int, rtt sim.Time, start sim.Time) []*transport.Sender {
	out := make([]*transport.Sender, n)
	for i := range out {
		s := transport.NewSender(r.Net, rtt, cc.NewCubic(), transport.Backlogged{}, r.Rng.Split(fmt.Sprintf("ccross%d", i)))
		s.Start(start)
		out[i] = s
	}
	return out
}

// StopFlows stops senders and detaches them from the network.
func (r *Rig) StopFlows(ss []*transport.Sender, at sim.Time) {
	r.Sch.At(at, func() {
		for _, s := range ss {
			s.Stop()
			r.Net.Detach(s.ID())
		}
	})
}

// ModeTracker accumulates Nimbus mode/accuracy statistics from telemetry.
type ModeTracker struct {
	Acc          metrics.AccuracyTracker
	EtaSer       metrics.Series
	ModeSer      metrics.Series // 1 = competitive
	CompTime     sim.Time
	lastT        sim.Time
	RecordSeries bool
}

// Track wires the tracker to a Nimbus instance with the given ground
// truth ("is the cross traffic elastic right now").
func (mt *ModeTracker) Track(n *core.Nimbus, truth func(now sim.Time) bool, warmup sim.Time) {
	mt.Acc.Warmup = warmup
	prev := n.OnTick
	n.OnTick = func(t core.Telemetry) {
		if prev != nil {
			prev(t)
		}
		pred := t.Mode == core.ModeCompetitive
		mt.Acc.Observe(t.Now, pred, truth(t.Now))
		if pred && mt.lastT != 0 {
			mt.CompTime += t.Now - mt.lastT
		}
		mt.lastT = t.Now
		if mt.RecordSeries {
			mt.EtaSer.Add(t.Now, t.Eta)
			m := 0.0
			if pred {
				m = 1
			}
			mt.ModeSer.Add(t.Now, m)
		}
	}
}

// CopaModeProbe samples Copa's own mode every 10 ms against ground truth.
func (r *Rig) CopaModeProbe(c *cc.Copa, truth func(now sim.Time) bool, warmup sim.Time) *metrics.AccuracyTracker {
	acc := &metrics.AccuracyTracker{Warmup: warmup}
	var tick func()
	tick = func() {
		acc.Observe(r.Sch.Now(), c.Competitive(), truth(r.Sch.Now()))
		r.Sch.After(10*sim.Millisecond, tick)
	}
	r.Sch.After(10*sim.Millisecond, tick)
	return acc
}

// Mbps formats a bits/s value in Mbit/s.
func Mbps(bps float64) float64 { return bps / 1e6 }

// newPoisson attaches a Poisson raw source to the rig.
func newPoisson(r *Rig, rtt sim.Time, rateBps float64) *crosstraffic.RawSource {
	return crosstraffic.NewPoisson(r.Net, rtt, rateBps, r.Rng.Split("poisson"))
}

// newCBR attaches a constant-bit-rate raw source to the rig.
func newCBR(r *Rig, rtt sim.Time, rateBps float64) *crosstraffic.RawSource {
	return crosstraffic.NewCBR(r.Net, rtt, rateBps)
}

// AddCross attaches a named cross-traffic generator to the rig (used by
// cmd/nimbus-sim and the examples). kind is one of: none, cubic, reno,
// poisson, cbr, trace, video4k, video1080p.
func AddCross(r *Rig, kind string, rateBps float64, rtt sim.Time) error {
	switch kind {
	case "none", "":
	case "cubic":
		r.AddCubicCross(1, rtt, 0)
	case "reno":
		s := transport.NewSender(r.Net, rtt, cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno-cross"))
		s.Start(0)
	case "poisson":
		newPoisson(r, rtt, rateBps).Start(0)
	case "cbr":
		newCBR(r, rtt, rateBps).Start(0)
	case "trace":
		w := &crosstraffic.TraceWorkload{
			Net:     r.Net,
			Rng:     r.Rng.Split("trace"),
			LoadBps: rateBps,
			RTT:     rtt,
			NewCC:   func() transport.Controller { return cc.NewCubic() },
		}
		w.Start(0)
	case "video4k", "video1080p":
		ladder := crosstraffic.Ladder1080p
		if kind == "video4k" {
			ladder = crosstraffic.Ladder4K
		}
		v := &crosstraffic.VideoClient{
			Net: r.Net, Rng: r.Rng.Split("video"), RTT: rtt,
			Ladder: ladder,
			NewCC:  func() transport.Controller { return cc.NewCubic() },
		}
		v.Start(0)
	default:
		return fmt.Errorf("exp: unknown cross traffic kind %q", kind)
	}
	return nil
}

// addDeliverTap chains an extra observer onto a sender's delivery hook
// without disturbing existing observers (the probe's meters).
func addDeliverTap(s *transport.Sender, tap func(p *netem.Packet, now sim.Time)) {
	prev := s.OnDeliverHook
	s.OnDeliverHook = func(p *netem.Packet, now sim.Time) {
		if prev != nil {
			prev(p, now)
		}
		tap(p, now)
	}
}
