package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// Fig23Row shows Copa vs Nimbus dynamics against CBR cross traffic at a
// low (25%) and high (83%) share (App. D.1): Copa misclassifies the
// high-share case as buffer-filling and keeps delays high; Nimbus stays
// in delay mode.
type Fig23Row struct {
	Scheme      string
	CBRMbps     float64
	MeanMbps    float64
	MeanDelayMs float64
	// WrongModeFrac: time fraction in competitive mode (truth:
	// inelastic, so any competitive time is wrong).
	WrongModeFrac float64
}

// RunFig23Point runs one (scheme, cbr) cell on a 96 Mbit/s link.
func RunFig23Point(scheme string, cbrMbps float64, seed int64, dur sim.Time) Fig23Row {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	sch := MustScheme(scheme, r.MuBps)
	probe := r.AddFlow(sch, 50*sim.Millisecond, 0)
	newCBR(r, 40*sim.Millisecond, cbrMbps*1e6).Start(0)

	row := Fig23Row{Scheme: scheme, CBRMbps: cbrMbps}
	truth := func(sim.Time) bool { return false }
	var mt ModeTracker
	if sch.Nimbus != nil {
		mt.Track(sch.Nimbus, truth, 10*sim.Second)
	}
	var copaAcc *accProxy
	if sch.Copa != nil {
		copaAcc = &accProxy{t: r.CopaModeProbe(sch.Copa, truth, 10*sim.Second)}
	}
	r.Sch.RunUntil(dur)
	row.MeanMbps = probe.MeanMbps(5*sim.Second, dur)
	row.MeanDelayMs = probe.Delay.Summary().Mean
	if sch.Nimbus != nil {
		row.WrongModeFrac = 1 - mt.Acc.Accuracy()
	}
	if copaAcc != nil {
		row.WrongModeFrac = 1 - copaAcc.t.Accuracy()
	}
	return row
}

type accProxy struct{ t accuracyReader }

type accuracyReader interface{ Accuracy() float64 }

// Fig23 runs the 2x2 grid.
func Fig23(seed int64, quick bool) []Fig23Row {
	dur := 60 * sim.Second
	if quick {
		dur = 40 * sim.Second
	}
	type cell struct {
		scheme string
		cbr    float64
	}
	var cells []cell
	for _, cbr := range []float64{24, 80} {
		for _, s := range []string{"copa", "nimbus"} {
			cells = append(cells, cell{s, cbr})
		}
	}
	return mapCells(len(cells), func(i int) Fig23Row {
		return RunFig23Point(cells[i].scheme, cells[i].cbr, seed, dur)
	})
}

// FormatFig23 renders the grid.
func FormatFig23(rows []Fig23Row) string {
	var b strings.Builder
	b.WriteString("Fig 23 (App D.1): CBR cross traffic, 96 Mbit/s, 2 BDP\n")
	fmt.Fprintf(&b, "%-8s %6s %8s %10s %12s\n", "scheme", "CBR", "Mbit/s", "delay ms", "wrong-mode")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %4.0fM %8.1f %10.1f %12.2f\n", r.Scheme, r.CBRMbps, r.MeanMbps, r.MeanDelayMs, r.WrongModeFrac)
	}
	b.WriteString("expected shape: at 80M copa sticks in competitive mode (high delay); nimbus correct at both\n")
	return b.String()
}

// Fig24Row shows Copa vs Nimbus against an elastic NewReno flow with
// equal or 4x RTT (App. D.2): Copa misses the slow-growing high-RTT
// flow and underutilizes; Nimbus classifies it elastic.
type Fig24Row struct {
	Scheme        string
	RTTRatio      float64
	MeanMbps      float64
	WrongModeFrac float64 // truth: elastic
}

// RunFig24Point runs one cell.
func RunFig24Point(scheme string, ratio float64, seed int64, dur sim.Time) Fig24Row {
	rtt := 50 * sim.Millisecond
	r := NewRig(NetConfig{RateMbps: 96, RTT: rtt, Buffer: 100 * sim.Millisecond, Seed: seed})
	sch := MustScheme(scheme, r.MuBps)
	probe := r.AddFlow(sch, rtt, 0)
	reno := transport.NewSender(r.Net, sim.Time(float64(rtt)*ratio), cc.NewReno(), transport.Backlogged{}, r.Rng.Split("reno"))
	reno.Start(0)

	truth := func(sim.Time) bool { return true }
	var mt ModeTracker
	if sch.Nimbus != nil {
		mt.Track(sch.Nimbus, truth, 10*sim.Second)
	}
	var copaAcc *accProxy
	if sch.Copa != nil {
		copaAcc = &accProxy{t: r.CopaModeProbe(sch.Copa, truth, 10*sim.Second)}
	}
	r.Sch.RunUntil(dur)
	row := Fig24Row{Scheme: scheme, RTTRatio: ratio}
	row.MeanMbps = probe.MeanMbps(5*sim.Second, dur)
	if sch.Nimbus != nil {
		row.WrongModeFrac = 1 - mt.Acc.Accuracy()
	}
	if copaAcc != nil {
		row.WrongModeFrac = 1 - copaAcc.t.Accuracy()
	}
	return row
}

// Fig24 runs the 2x2 grid.
func Fig24(seed int64, quick bool) []Fig24Row {
	dur := 60 * sim.Second
	if quick {
		dur = 40 * sim.Second
	}
	type cell struct {
		scheme string
		ratio  float64
	}
	var cells []cell
	for _, ratio := range []float64{1, 4} {
		for _, s := range []string{"copa", "nimbus"} {
			cells = append(cells, cell{s, ratio})
		}
	}
	return mapCells(len(cells), func(i int) Fig24Row {
		return RunFig24Point(cells[i].scheme, cells[i].ratio, seed, dur)
	})
}

// FormatFig24 renders the grid.
func FormatFig24(rows []Fig24Row) string {
	var b strings.Builder
	b.WriteString("Fig 24 (App D.2): one elastic NewReno cross flow, RTT ratio 1x / 4x\n")
	fmt.Fprintf(&b, "%-8s %6s %8s %12s\n", "scheme", "ratio", "Mbit/s", "wrong-mode")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %6.1f %8.1f %12.2f\n", r.Scheme, r.RTTRatio, r.MeanMbps, r.WrongModeFrac)
	}
	b.WriteString("expected shape: at 4x copa misclassifies (low share); nimbus stays competitive and keeps its share\n")
	return b.String()
}
