package exp

import (
	"strings"
	"testing"

	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

func TestParseFlowMix(t *testing.T) {
	fss, err := ParseFlowMix("nimbus*2+cubic@10+bbr@5:25+copa(delta=0.1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(fss) != 4 {
		t.Fatalf("got %d specs", len(fss))
	}
	if fss[0].Scheme.Name != "nimbus" || fss[0].Count != 2 || fss[0].StartAt != 0 {
		t.Fatalf("item 0: %+v", fss[0])
	}
	if fss[1].Scheme.Name != "cubic" || fss[1].Count != 1 || fss[1].StartAt != 10*sim.Second || fss[1].StopAt != 0 {
		t.Fatalf("item 1: %+v", fss[1])
	}
	if fss[2].StartAt != 5*sim.Second || fss[2].StopAt != 25*sim.Second {
		t.Fatalf("item 2: %+v", fss[2])
	}
	if fss[3].Scheme.String() != "copa(delta=0.1)" {
		t.Fatalf("item 3: %+v", fss[3])
	}
	if got := FormatFlowMix(fss); got != "nimbus*2+cubic@10+bbr@5:25+copa(delta=0.1)" {
		t.Fatalf("FormatFlowMix round trip: %q", got)
	}

	for _, bad := range []string{
		"", "+", "nimbus*0", "nimbus*x", "nimbus@-1", "nimbus@5:2",
		"nimbus@x", "nosuchformat(", "cubic@1:1",
	} {
		if _, err := ParseFlowMix(bad); err == nil {
			t.Errorf("ParseFlowMix(%q) accepted", bad)
		}
	}
}

func TestAddFlowSpecsHeterogeneous(t *testing.T) {
	r := NewRig(NetConfig{RateMbps: 48, RTT: 40 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: 5})
	flows, err := r.AddFlowSpecs(
		FlowSpec{Scheme: mustSpec(t, "cubic"), Count: 2},
		FlowSpec{Scheme: mustSpec(t, "bbr"), StartAt: 2 * sim.Second, StopAt: 8 * sim.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 {
		t.Fatalf("got %d flows", len(flows))
	}
	end := 12 * sim.Second
	r.Sch.RunUntil(end)

	st := FlowStats(flows, end)
	if len(st.PerFlowMbps) != 3 {
		t.Fatalf("per-flow stats: %v", st.PerFlowMbps)
	}
	for i, m := range st.PerFlowMbps {
		if m <= 1 {
			t.Fatalf("flow %d starved: %v Mbit/s (all: %v)", i, m, st.PerFlowMbps)
		}
	}
	// Two identical Cubic flows over the full horizon should split fairly.
	a, b := st.PerFlowMbps[0], st.PerFlowMbps[1]
	if ratio := a / b; ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("cubic/cubic split unfair: %v vs %v", a, b)
	}
	if st.Jain <= 0.5 || st.Jain > 1+1e-9 {
		t.Fatalf("jain = %v", st.Jain)
	}
	if st.JSDUniform < 0 || st.JSDUniform >= 1 {
		t.Fatalf("jsd = %v", st.JSDUniform)
	}
	// The stopped BBR flow must detach: its throughput measured after
	// StopAt is zero.
	if m := flows[2].Probe.MeanMbps(9*sim.Second, end); m > 0.5 {
		t.Fatalf("stopped flow still sending: %v Mbit/s", m)
	}

	// Unknown schemes surface as errors, not panics.
	if _, err := r.AddFlowSpecs(FlowSpec{Scheme: mustSpec(t, "quic")}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunFlowMixScenarioMetrics(t *testing.T) {
	r := RunScenario(runner.Scenario{
		Name: "mix", RateMbps: 48, RTTms: 40, BufferMs: 100,
		FlowMix: "nimbus+cubic", DurationSec: 10, Seed: 2,
	})
	if r.Err != "" {
		t.Fatalf("mix scenario failed: %s", r.Err)
	}
	for _, k := range []string{"flow00_mbps", "flow01_mbps", "jain", "jsd_uniform", "mean_mbps", "utilization"} {
		if _, ok := r.Metrics[k]; !ok {
			t.Fatalf("metric %s missing: %v", k, r.Metrics)
		}
	}
	if r.Metrics["mean_mbps"] <= 1 {
		t.Fatalf("aggregate throughput: %v", r.Metrics["mean_mbps"])
	}
	bad := RunScenario(runner.Scenario{RateMbps: 48, RTTms: 40, FlowMix: "nimbus*oops", DurationSec: 1})
	if bad.Err == "" {
		t.Fatal("bad mix should produce an error row")
	}
}

func TestCoexistSweepDeterminism(t *testing.T) {
	g := CoexistGrid(1, true)
	// Keep the unit test quick: two mixes, constant link only.
	g.FlowMixes = g.FlowMixes[:2]
	g.LinkTraces = nil
	g.Base.DurationSec = 6
	run := func(workers int) string {
		return FormatCoexist(RunSweep(g, workers, nil))
	}
	seq := run(1)
	if par := run(8); par != seq {
		t.Fatalf("workers=8 output differs:\n%s\nvs\n%s", par, seq)
	}
	if strings.Contains(seq, "ERROR") {
		t.Fatalf("coexist sweep has error rows:\n%s", seq)
	}
	for _, mix := range g.FlowMixes {
		if !strings.Contains(seq, mix) {
			t.Fatalf("report missing mix %s:\n%s", mix, seq)
		}
	}
}

func mustSpec(t *testing.T, s string) spec.Spec {
	t.Helper()
	return spec.MustParse(s)
}

func TestAddFlowSpecsRejectsInvertedWindow(t *testing.T) {
	r := NewRig(NetConfig{RateMbps: 48, RTT: 40 * sim.Millisecond, Seed: 1})
	_, err := r.AddFlowSpecs(FlowSpec{Scheme: mustSpec(t, "cubic"), StartAt: 10 * sim.Second, StopAt: 5 * sim.Second})
	if err == nil {
		t.Fatal("stop before start accepted")
	}
	// And nothing was wired: the rig still runs with zero flows.
	r.Sch.RunUntil(sim.Second)
	if r.Link.DeliveredPackets != 0 {
		t.Fatalf("rejected spec left %d packets on the rig", r.Link.DeliveredPackets)
	}
}
