package exp

import (
	"fmt"
	"strconv"
	"strings"

	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

// ParseFlowMix parses the compact flow-mix syntax scenarios and CLIs use
// to describe a heterogeneous flow set on one bottleneck:
//
//	MIX  := ITEM ("+" ITEM)*
//	ITEM := SPEC ["*" COUNT] ["@" START [":" STOP]]
//
// SPEC is a scheme spec ("nimbus", "copa(delta=0.1)"); COUNT is how many
// copies; START and STOP are seconds. "+" and "@" inside a spec's
// parentheses do not delimit. Examples:
//
//	nimbus+cubic               — one Nimbus and one Cubic flow from t=0
//	nimbus*2+cubic@10          — two Nimbus flows, a Cubic joining at 10 s
//	nimbus+bbr@5:25            — a BBR flow active only during [5 s, 25 s)
//	nimbus(mu=est)+copa(delta=0.1)*3
func ParseFlowMix(mix string) ([]FlowSpec, error) {
	items := spec.SplitTop(mix, '+')
	if len(items) == 0 {
		return nil, fmt.Errorf("exp: empty flow mix %q", mix)
	}
	out := make([]FlowSpec, 0, len(items))
	for _, item := range items {
		fs := FlowSpec{Count: 1}

		rest := item
		if at := lastTop(rest, '@'); at >= 0 {
			window := rest[at+1:]
			rest = rest[:at]
			start, stop, ok := strings.Cut(window, ":")
			fromSec, err := strconv.ParseFloat(strings.TrimSpace(start), 64)
			if err != nil || fromSec < 0 {
				return nil, fmt.Errorf("exp: flow mix item %q: bad start time %q", item, start)
			}
			fs.StartAt = sim.FromSeconds(fromSec)
			if ok {
				toSec, err := strconv.ParseFloat(strings.TrimSpace(stop), 64)
				if err != nil || toSec <= fromSec {
					return nil, fmt.Errorf("exp: flow mix item %q: bad stop time %q", item, stop)
				}
				fs.StopAt = sim.FromSeconds(toSec)
			}
		}
		if star := lastTop(rest, '*'); star >= 0 {
			n, err := strconv.Atoi(strings.TrimSpace(rest[star+1:]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("exp: flow mix item %q: bad count %q", item, rest[star+1:])
			}
			fs.Count = n
			rest = rest[:star]
		}
		sp, err := spec.Parse(rest)
		if err != nil {
			return nil, fmt.Errorf("exp: flow mix item %q: %w", item, err)
		}
		fs.Scheme = sp
		out = append(out, fs)
	}
	return out, nil
}

// FormatFlowMix renders flow specs back into the mix syntax (canonical
// spec strings, counts and windows only when set).
func FormatFlowMix(specs []FlowSpec) string {
	parts := make([]string, len(specs))
	for i, fs := range specs {
		s := fs.Scheme.String()
		if fs.Count > 1 {
			s += fmt.Sprintf("*%d", fs.Count)
		}
		if fs.StopAt > 0 {
			s += fmt.Sprintf("@%g:%g", fs.StartAt.Seconds(), fs.StopAt.Seconds())
		} else if fs.StartAt > 0 {
			s += fmt.Sprintf("@%g", fs.StartAt.Seconds())
		}
		parts[i] = s
	}
	return strings.Join(parts, "+")
}

// lastTop returns the index of the last occurrence of sep at parenthesis
// depth zero, or -1.
func lastTop(s string, sep byte) int {
	depth := 0
	last := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				last = i
			}
		}
	}
	return last
}
