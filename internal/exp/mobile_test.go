package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"nimbus/internal/runner"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
)

func TestScheduleForScenario(t *testing.T) {
	if s, err := ScheduleForScenario(runner.Scenario{RateMbps: 48}); err != nil || s != nil {
		t.Fatalf("constant scenario: schedule %v, err %v", s, err)
	}
	s, err := ScheduleForScenario(runner.Scenario{RateMbps: 48, LinkTrace: "cell-ramp"})
	if err != nil || s == nil || s.Constant() {
		t.Fatalf("trace scenario: schedule %v, err %v", s, err)
	}
	s, err = ScheduleForScenario(runner.Scenario{RateMbps: 48, RatePattern: "step:6:24:2000"})
	if err != nil || s == nil || s.MaxBps() != 24e6 {
		t.Fatalf("pattern scenario: schedule %v, err %v", s, err)
	}
	if _, err := ScheduleForScenario(runner.Scenario{LinkTrace: "cell-ramp", RatePattern: "step:6:24:2000"}); err == nil {
		t.Fatal("trace+pattern should be rejected")
	}
	if _, err := ScheduleForScenario(runner.Scenario{LinkTrace: "no-such-trace"}); err == nil {
		t.Fatal("unknown trace should be rejected")
	}
	if _, err := ScheduleForScenario(runner.Scenario{RatePattern: "warp:9"}); err == nil {
		t.Fatal("unknown pattern should be rejected")
	}
}

// TestRunScenarioVaryingLink: a scheme on a traced link achieves a
// throughput bounded by the trace's mean capacity, not the nominal rate,
// and error rows (not panics) surface bad trace names through the runner.
func TestRunScenarioVaryingLink(t *testing.T) {
	r := RunScenario(runner.Scenario{
		Name: "vary", RateMbps: 48, RTTms: 40, BufferMs: 100,
		Scheme: spec.MustParse("cubic"), LinkTrace: "cell-ramp", DurationSec: 10, Seed: 3,
	})
	if r.Err != "" {
		t.Fatalf("scenario failed: %s", r.Err)
	}
	sched, _ := ScheduleForScenario(runner.Scenario{LinkTrace: "cell-ramp"})
	meanMbps := sched.MeanBps(0, 10*sim.Second) / 1e6
	if got := r.Metrics["mean_mbps"]; got <= 1 || got > meanMbps {
		t.Fatalf("mean_mbps = %v, want within (1, %v] on the traced link", got, meanMbps)
	}
	if u := r.Metrics["utilization"]; u > 1.0+1e-9 {
		t.Fatalf("utilization %v > 1", u)
	}
	bad := RunScenario(runner.Scenario{RateMbps: 48, RTTms: 40, Scheme: spec.MustParse("cubic"), LinkTrace: "nope", DurationSec: 1})
	if bad.Err == "" {
		t.Fatal("unknown trace should produce an error row")
	}
}

// TestRunScenarioDarkLinkEmits: a run that delivers nothing (the link is
// dark for the whole horizon) must not poison result emission with NaN
// metrics — one such cell used to abort WriteJSON for the entire sweep.
func TestRunScenarioDarkLinkEmits(t *testing.T) {
	r := RunScenario(runner.Scenario{
		Name: "dark", RateMbps: 24, RTTms: 40, BufferMs: 100,
		Scheme: spec.MustParse("cubic"), RatePattern: "outage:0:10000", DurationSec: 5, Seed: 1,
	})
	if r.Err != "" {
		t.Fatalf("dark scenario failed: %s", r.Err)
	}
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("metric %s is non-finite: %v", k, v)
		}
	}
	var buf bytes.Buffer
	if err := runner.WriteJSON(&buf, []runner.Result{r}); err != nil {
		t.Fatalf("dark-link result does not serialize: %v", err)
	}
	if _, ok := r.Metrics["qdelay_p95_ms"]; ok {
		t.Fatal("zero-sample delay summary should be omitted, not reported")
	}
}

// TestMobileSweepDeterminism is the acceptance check for the registry
// family: ≥3 embedded traces × 3 schemes through the runner, identical
// formatted output at workers=1 and workers=8.
func TestMobileSweepDeterminism(t *testing.T) {
	g := MobileGrid(1, true)
	g.Base.DurationSec = 5 // keep the unit test quick; the axes are what matter
	if len(g.LinkTraces) < 3 || len(g.Schemes) < 3 {
		t.Fatalf("mobile grid too small: %d traces x %d schemes", len(g.LinkTraces), len(g.Schemes))
	}
	run := func(workers int) string {
		return FormatMobile(RunSweep(g, workers, nil))
	}
	seq := run(1)
	if par := run(8); par != seq {
		t.Fatalf("workers=8 output differs from workers=1:\n%s\nvs\n%s", par, seq)
	}
	if strings.Contains(seq, "ERROR") {
		t.Fatalf("mobile sweep has error rows:\n%s", seq)
	}
	for _, trace := range g.LinkTraces {
		if !strings.Contains(seq, trace) {
			t.Fatalf("report missing trace %s:\n%s", trace, seq)
		}
	}
}
