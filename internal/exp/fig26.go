package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/core"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// Fig26Row is one pulse frequency's η distribution against a PCC-Vivace
// cross flow (App. F): at fp=5 Hz Vivace is too slow to follow the
// pulses (classified inelastic); at fp=2 Hz the longer pulses are slow
// enough for Vivace's monitor intervals to track (classified elastic).
type Fig26Row struct {
	PulseFreq   float64
	EtaCDF      []stats.CDFPoint
	MedianEta   float64
	FracElastic float64
}

// RunFig26Point runs one frequency.
func RunFig26Point(freq float64, seed int64, dur sim.Time) Fig26Row {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	n := MustBuildScheme(spec.MustParse("nimbus").With("fp", spec.Num(freq)), r.MuBps)
	r.AddFlow(n, 50*sim.Millisecond, 0)
	v := transport.NewSender(r.Net, 50*sim.Millisecond, cc.NewVivace(), transport.Backlogged{}, r.Rng.Split("vivace"))
	v.Start(0)

	var etas []float64
	n.Nimbus.OnTick = func(t core.Telemetry) {
		if t.Now > 10*sim.Second && t.EtaReady {
			etas = append(etas, t.Eta)
		}
	}
	r.Sch.RunUntil(dur)
	row := Fig26Row{PulseFreq: freq}
	row.EtaCDF = stats.CDF(etas, 200)
	row.MedianEta = stats.Median(etas)
	above := 0
	for _, e := range etas {
		if e >= 2 {
			above++
		}
	}
	if len(etas) > 0 {
		row.FracElastic = float64(above) / float64(len(etas))
	}
	return row
}

// Fig26 runs both frequencies.
func Fig26(seed int64, quick bool) []Fig26Row {
	dur := 120 * sim.Second
	if quick {
		dur = 50 * sim.Second
	}
	freqs := []float64{5, 2}
	return mapCells(len(freqs), func(i int) Fig26Row {
		return RunFig26Point(freqs[i], seed, dur)
	})
}

// FormatFig26 renders the result.
func FormatFig26(rows []Fig26Row) string {
	var b strings.Builder
	b.WriteString("Fig 26 (App F): detecting PCC-Vivace (rate-based, not ACK-clocked)\n")
	fmt.Fprintf(&b, "%6s %12s %14s\n", "fp Hz", "median eta", "frac elastic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.0f %12.2f %14.2f\n", r.PulseFreq, r.MedianEta, r.FracElastic)
	}
	b.WriteString("expected shape: mostly inelastic at 5 Hz; elastic at 2 Hz\n")
	return b.String()
}
