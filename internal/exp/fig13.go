package exp

import (
	"fmt"
	"strings"

	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// Fig13Row is one cell of Fig. 13: Nimbus at a given pulse size against
// the trace workload at a given offered load, with Cubic and Vegas
// baselines.
type Fig13Row struct {
	Scheme      string
	LoadFrac    float64
	PulseFrac   float64
	MeanMbps    float64
	MedianRTTms float64
	RateCDF     []stats.CDFPoint
	RTTCDF      []stats.CDFPoint
}

// Fig13 sweeps load {50%, 90%} and Nimbus pulse size {0.125, 0.25}
// against Cubic and Vegas baselines.
func Fig13(seed int64, quick bool) []Fig13Row {
	dur := 120 * sim.Second
	if quick {
		dur = 50 * sim.Second
	}
	type cell struct {
		name, scheme string
		pulse, load  float64
	}
	var cells []cell
	for _, load := range []float64{0.5, 0.9} {
		for _, pulse := range []float64{0.125, 0.25} {
			cells = append(cells, cell{fmt.Sprintf("nimbus%.3g", pulse), "nimbus", pulse, load})
		}
		cells = append(cells, cell{"cubic", "cubic", 0, load})
		cells = append(cells, cell{"vegas", "vegas", 0, load})
	}
	return mapCells(len(cells), func(i int) Fig13Row {
		c := cells[i]
		return runFig13(c.name, c.scheme, c.pulse, c.load, seed, dur)
	})
}

func runFig13(label, scheme string, pulse, load float64, seed int64, dur sim.Time) Fig13Row {
	sp := spec.MustParse(scheme)
	if pulse > 0 {
		sp = sp.With("pulse", spec.Num(pulse))
	}
	row9 := runFig09Spec(sp, seed, dur, load)
	return Fig13Row{
		Scheme:      label,
		LoadFrac:    load,
		PulseFrac:   pulse,
		MeanMbps:    row9.MeanMbps,
		MedianRTTms: row9.MedianRTTms,
		RateCDF:     row9.RateCDF,
		RTTCDF:      row9.RTTCDF,
	}
}

// FormatFig13 renders the sweep.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Fig 13: cross-traffic load and pulse size\n")
	fmt.Fprintf(&b, "%-12s %6s %8s %12s\n", "scheme", "load", "Mbit/s", "median RTT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5.0f%% %8.1f %9.0f ms\n", r.Scheme, r.LoadFrac*100, r.MeanMbps, r.MedianRTTms)
	}
	b.WriteString("expected shape: nimbus ~ cubic throughput at both loads; delay benefit largest at 50% load; larger pulse behaves better at 50%\n")
	return b.String()
}
