package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/netem"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// PathProfile is one emulated Internet path (the stand-in for the
// paper's 25 EC2-to-residential paths in §8.4). Profiles vary link rate,
// RTT, buffer depth, background traffic mix, and whether the path drops
// packets aggressively (a shallow buffer emulating a policer).
type PathProfile struct {
	Name      string
	RateMbps  float64
	RTT       sim.Time
	Buffer    sim.Time
	BgLoad    float64 // inelastic background as a fraction of the link
	BgElastic int     // number of intermittent elastic background flows
	Policer   bool    // shallow buffer => loss-limited path
	// Pattern, when non-empty, makes the path's capacity time-varying
	// (a netem.ParsePattern spec anchored at RateMbps), standing in for
	// the last-mile paths whose capacity fluctuates during a transfer.
	Pattern string
}

// Paths25 is the suite of 25 path profiles. The three named paths A/B/C
// mirror Fig. 18's examples: deep-buffer paths (A, B) and a lossy /
// policed path (C).
func Paths25() []PathProfile {
	var out []PathProfile
	// Three showcase paths.
	out = append(out,
		PathProfile{Name: "A-deep", RateMbps: 40, RTT: 80 * sim.Millisecond, Buffer: 200 * sim.Millisecond, BgLoad: 0.2},
		PathProfile{Name: "B-deep", RateMbps: 90, RTT: 60 * sim.Millisecond, Buffer: 150 * sim.Millisecond, BgLoad: 0.3},
		PathProfile{Name: "C-lossy", RateMbps: 30, RTT: 95 * sim.Millisecond, Buffer: 15 * sim.Millisecond, BgLoad: 0.1, Policer: true},
	)
	rates := []float64{20, 35, 50, 65, 80, 100}
	rtts := []sim.Time{25, 45, 70, 100, 120}
	i := 0
	for len(out) < 25 {
		rate := rates[i%len(rates)]
		rtt := rtts[i%len(rtts)] * sim.Millisecond
		buf := sim.Time(50+50*(i%4)) * sim.Millisecond
		p := PathProfile{
			Name:     fmt.Sprintf("p%02d", len(out)),
			RateMbps: rate,
			RTT:      rtt,
			Buffer:   buf,
			BgLoad:   0.1 + 0.1*float64(i%4),
		}
		if i%5 == 4 {
			p.Policer = true
			p.Buffer = 20 * sim.Millisecond
		}
		if i%3 == 1 {
			p.BgElastic = 1
		}
		// A subset of non-policed paths fluctuates: alternating cellular-like
		// ramps and Wi-Fi-like steps around the path's nominal rate.
		if i%4 == 2 && !p.Policer {
			if i%8 == 2 {
				p.Pattern = fmt.Sprintf("ramp:%g:%g:8000", 0.3*rate, rate)
			} else {
				p.Pattern = fmt.Sprintf("step:%g:%g:6000", 0.4*rate, rate)
			}
		}
		i++
		out = append(out, p)
	}
	return out
}

// PathRow is one (path, scheme) measurement: mean throughput and mean
// RTT over a one-minute bulk transfer (the paper's methodology).
type PathRow struct {
	Path      string
	Scheme    string
	MeanMbps  float64
	MeanRTTms float64
	Policer   bool
}

// RunPath runs one scheme over one path profile.
func RunPath(p PathProfile, scheme string, seed int64, dur sim.Time) PathRow {
	cfg := NetConfig{RateMbps: p.RateMbps, RTT: p.RTT, Buffer: p.Buffer, Seed: seed}
	if p.Pattern != "" {
		sched, err := netem.ParsePattern(p.Pattern, p.RateMbps*1e6)
		if err != nil {
			panic("exp: path " + p.Name + ": " + err.Error())
		}
		cfg.Schedule = sched
	}
	r := NewRig(cfg)
	// Real paths don't tell you µ: schemes that take a µ source use the
	// estimator, as the paper's implementation does.
	sp := spec.MustParse(scheme)
	if spec.HasParam(sp.Name, "mu") {
		sp = sp.With("mu", spec.Str("est"))
	}
	sch := MustBuildScheme(sp, r.MuBps)
	probe := r.AddFlow(sch, p.RTT, 0)
	if p.BgLoad > 0 {
		newPoisson(r, p.RTT/2, p.BgLoad*r.MuBps).Start(0)
	}
	// Intermittent elastic background: a Cubic flow for the middle third.
	if p.BgElastic > 0 {
		cross := r.AddCubicCross(p.BgElastic, p.RTT, dur/3)
		r.StopFlows(cross, 2*dur/3)
	}
	r.Sch.RunUntil(dur)
	return PathRow{
		Path:      p.Name,
		Scheme:    scheme,
		MeanMbps:  probe.MeanMbps(5*sim.Second, dur),
		MeanRTTms: probe.RTTms.Summary().Mean,
		Policer:   p.Policer,
	}
}

// PathSchemes are the four schemes the paper runs on real paths.
var PathSchemes = []string{"nimbus", "cubic", "bbr", "vegas"}

// Fig18 runs the three showcase paths for all schemes.
func Fig18(seed int64, quick bool) []PathRow {
	dur := 60 * sim.Second
	if quick {
		dur = 30 * sim.Second
	}
	type cell struct {
		path   PathProfile
		scheme string
	}
	var cells []cell
	for _, p := range Paths25()[:3] {
		for _, s := range PathSchemes {
			cells = append(cells, cell{p, s})
		}
	}
	return mapCells(len(cells), func(i int) PathRow {
		return RunPath(cells[i].path, cells[i].scheme, seed, dur)
	})
}

// FormatFig18 renders the three example paths.
func FormatFig18(rows []PathRow) string {
	var b strings.Builder
	b.WriteString("Fig 18: three example paths (A,B deep buffers; C lossy/policed)\n")
	fmt.Fprintf(&b, "%-8s %-8s %8s %10s\n", "path", "scheme", "Mbit/s", "mean RTT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-8s %8.1f %7.0f ms\n", r.Path, r.Scheme, r.MeanMbps, r.MeanRTTms)
	}
	b.WriteString("expected shape: on A/B nimbus ~ cubic/bbr rate at lower RTT; on C cubic suffers, nimbus keeps rate; vegas low rate everywhere elastic bg exists\n")
	return b.String()
}

// Fig19Result summarizes the full 25-path suite: CDFs across paths of
// each scheme's throughput and RTT (paths with queueing only, per the
// paper).
type Fig19Result struct {
	Scheme              string
	TputCDF             []stats.CDFPoint
	RTTCDF              []stats.CDFPoint
	MeanMbps, MeanRTTms float64
}

// Fig19 runs the suite.
func Fig19(seed int64, quick bool) []Fig19Result {
	dur := 60 * sim.Second
	paths := Paths25()
	if quick {
		dur = 20 * sim.Second
		paths = paths[:8]
	}
	// "paths with queueing" per Fig 19
	var queued []PathProfile
	for _, p := range paths {
		if !p.Policer {
			queued = append(queued, p)
		}
	}
	// One cell per (scheme, path); aggregate per scheme afterwards.
	rows := mapCells(len(PathSchemes)*len(queued), func(i int) PathRow {
		return RunPath(queued[i%len(queued)], PathSchemes[i/len(queued)], seed, dur)
	})
	var out []Fig19Result
	for si, s := range PathSchemes {
		var tputs, rtts []float64
		var tputSum, rttSum float64
		for pi, p := range queued {
			row := rows[si*len(queued)+pi]
			// Normalize throughput by the path rate so different paths
			// are comparable in one CDF.
			tputs = append(tputs, row.MeanMbps/p.RateMbps)
			rtts = append(rtts, row.MeanRTTms)
			tputSum += row.MeanMbps
			rttSum += row.MeanRTTms
		}
		out = append(out, Fig19Result{
			Scheme:    s,
			TputCDF:   stats.CDF(tputs, 0),
			RTTCDF:    stats.CDF(rtts, 0),
			MeanMbps:  tputSum / float64(len(queued)),
			MeanRTTms: rttSum / float64(len(queued)),
		})
	}
	return out
}

// FormatFig19 renders the summary.
func FormatFig19(rows []Fig19Result) string {
	var b strings.Builder
	b.WriteString("Fig 19: 25-path suite, paths with queueing\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "scheme", "mean Mbit/s", "mean RTT ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.1f %12.0f\n", r.Scheme, r.MeanMbps, r.MeanRTTms)
	}
	b.WriteString("expected shape: nimbus ~ cubic rate, ~10% below bbr, at 40-50 ms lower RTT than cubic/bbr\n")
	return b.String()
}

// Fig20Result is App. A: repeated runs of Cubic vs the pure
// delay-control scheme on one path, showing inelastic cross traffic is
// common enough that delay control often wins on delay at equal
// throughput.
type Fig20Result struct {
	Runs []PathRow // alternating cubic / nimbus-delay
}

// Fig20 runs N seeds of each scheme on path A with time-varying
// background (the per-run variance stands in for diurnal variation).
func Fig20(seed int64, quick bool) Fig20Result {
	n := 20
	dur := 60 * sim.Second
	if quick {
		n = 5
		dur = 20 * sim.Second
	}
	p := Paths25()[0]
	var res Fig20Result
	res.Runs = mapCells(2*n, func(j int) PathRow {
		i := j / 2
		s := seed + int64(i)*101
		// Vary the background load per run.
		pv := p
		pv.BgLoad = 0.1 + 0.6*sim.NewRand(s).Float64()
		pv.BgElastic = i % 2
		scheme := "cubic"
		if j%2 == 1 {
			scheme = "nimbus-delay"
		}
		return RunPath(pv, scheme, s, dur)
	})
	return res
}

// FormatFig20 renders the scatter summary.
func FormatFig20(r Fig20Result) string {
	var cub, del struct {
		tput, rtt float64
		n         int
	}
	for _, row := range r.Runs {
		if row.Scheme == "cubic" {
			cub.tput += row.MeanMbps
			cub.rtt += row.MeanRTTms
			cub.n++
		} else {
			del.tput += row.MeanMbps
			del.rtt += row.MeanRTTms
			del.n++
		}
	}
	var b strings.Builder
	b.WriteString("Fig 20 (App A): loss-based vs delay-based over repeated runs\n")
	if cub.n > 0 && del.n > 0 {
		fmt.Fprintf(&b, "cubic:        %.1f Mbit/s at %.0f ms mean RTT\n", cub.tput/float64(cub.n), cub.rtt/float64(cub.n))
		fmt.Fprintf(&b, "nimbus-delay: %.1f Mbit/s at %.0f ms mean RTT\n", del.tput/float64(del.n), del.rtt/float64(del.n))
	}
	b.WriteString("expected shape: similar throughput, much lower delay for the delay-controller (inelastic cross traffic is common)\n")
	return b.String()
}
