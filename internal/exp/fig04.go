package exp

import (
	"fmt"
	"math"
	"strings"

	"nimbus/internal/core"
	"nimbus/internal/metrics"
	"nimbus/internal/sim"
)

// Fig04Result reproduces Fig. 4: the sender's pulsed rate S(t) and the
// estimated cross-traffic rate ẑ(t) over a 3-second zoom window, against
// elastic and inelastic cross traffic. Elastic ẑ is anti-correlated with
// the pulses; inelastic ẑ is flat.
type Fig04Result struct {
	Elastic bool
	S, Z    metrics.Series
	// ZOscillation is the peak-to-peak amplitude of ẑ within the window
	// relative to its mean — the quantitative "reaction" signal.
	ZOscillation float64
	// Correlation between S(t) and z(t) shifted by one cross-RTT
	// (elastic: strongly negative; inelastic: near zero).
	ShiftedCorrelation float64
}

// RunFig04 runs a Nimbus flow against either one Cubic flow (elastic) or
// half-link CBR (inelastic) and records S/ẑ telemetry for a window.
func RunFig04(elastic bool, seed int64) Fig04Result {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	s := MustScheme("nimbus", r.MuBps)
	r.AddFlow(s, 50*sim.Millisecond, 0)
	if elastic {
		r.AddCubicCross(1, 50*sim.Millisecond, 0)
	} else {
		newCBR(r, 50*sim.Millisecond, 48e6).Start(0)
	}
	res := Fig04Result{Elastic: elastic}
	from, to := 75*sim.Second, 78*sim.Second
	var sSamp, zSamp []float64
	s.Nimbus.OnTick = func(t core.Telemetry) {
		if t.Now >= from && t.Now < to {
			res.S.Add(t.Now, Mbps(t.Rate))
			res.Z.Add(t.Now, Mbps(t.Z))
			sSamp = append(sSamp, t.Rate)
			zSamp = append(zSamp, t.Z)
		}
	}
	r.Sch.RunUntil(to)

	if len(zSamp) > 10 {
		min, max, sum := zSamp[0], zSamp[0], 0.0
		for _, v := range zSamp {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		mean := sum / float64(len(zSamp))
		if mean > 0 {
			res.ZOscillation = (max - min) / mean
		}
		res.ShiftedCorrelation = corrShift(sSamp, zSamp, 5) // 50 ms at 10 ms ticks
	}
	return res
}

// corrShift computes Pearson correlation between x(t) and y(t+shift).
func corrShift(x, y []float64, shift int) float64 {
	n := len(x) - shift
	if n < 3 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += x[i]
		my += y[i+shift]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i+shift]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (sqrt(sxx) * sqrt(syy))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Fig04 runs both panels.
func Fig04(seed int64) []Fig04Result {
	return mapCells(2, func(i int) Fig04Result {
		return RunFig04(i == 0, seed)
	})
}

// FormatFig04 renders the result.
func FormatFig04(rows []Fig04Result) string {
	var b strings.Builder
	b.WriteString("Fig 4: cross traffic reaction to 5 Hz pulses (75-78 s window)\n")
	fmt.Fprintf(&b, "%-10s %16s %22s\n", "cross", "z osc (pk-pk/mean)", "corr S(t) vs z(t+RTT)")
	for _, r := range rows {
		name := "inelastic"
		if r.Elastic {
			name = "elastic"
		}
		fmt.Fprintf(&b, "%-10s %16.2f %22.2f\n", name, r.ZOscillation, r.ShiftedCorrelation)
	}
	b.WriteString("expected shape: elastic z oscillates (negative correlation with pulses); inelastic flat\n")
	return b.String()
}
