package exp

import (
	"fmt"
	"strings"

	"nimbus/internal/cc"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/metrics"
	spec "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
	"nimbus/internal/transport"
)

// Fig09Row is one scheme's performance against the WAN trace workload
// (Fig. 9): CDFs of per-second rate and per-packet RTT, plus the cross
// flows' completion times (reused by Fig. 21).
type Fig09Row struct {
	Scheme      string
	RateCDF     []stats.CDFPoint
	RTTCDF      []stats.CDFPoint
	MeanMbps    float64
	MedianRTTms float64
	P95RTTms    float64
	CrossFCTs   []metrics.FCTRecord
	// For Fig 10: the 1-second throughput series.
	TputSeries []float64
}

// RunFig09 runs one scheme against the heavy-tailed trace workload at
// the given offered load on a 96 Mbit/s, 50 ms, 100 ms-buffer link.
func RunFig09(scheme string, seed int64, dur sim.Time, loadFrac float64) Fig09Row {
	return runFig09Spec(spec.MustParse(scheme), seed, dur, loadFrac)
}

func runFig09Spec(sp spec.Spec, seed int64, dur sim.Time, loadFrac float64) Fig09Row {
	r := NewRig(NetConfig{RateMbps: 96, RTT: 50 * sim.Millisecond, Buffer: 100 * sim.Millisecond, Seed: seed})
	sch := MustBuildScheme(sp, r.MuBps)
	probe := r.AddFlow(sch, 50*sim.Millisecond, 0)
	w := &crosstraffic.TraceWorkload{
		Net:     r.Net,
		Rng:     r.Rng.Split("trace"),
		LoadBps: loadFrac * r.MuBps,
		RTT:     50 * sim.Millisecond,
		NewCC:   func() transport.Controller { return cc.NewCubic() },
	}
	w.Start(0)
	r.Sch.RunUntil(dur)

	row := Fig09Row{Scheme: sp.String()}
	row.MeanMbps = probe.MeanMbps(5*sim.Second, dur)
	rates := probe.Tput.SeriesMbps()
	if len(rates) > 5 {
		rates = rates[5:] // warmup
	}
	row.RateCDF = stats.CDF(rates, 100)
	rtts := probe.RTTms.Samples()
	row.RTTCDF = stats.CDF(rtts, 100)
	rttQs := stats.Percentiles(rtts, 0.5, 0.95) // one sort for both quantiles
	row.MedianRTTms, row.P95RTTms = rttQs[0], rttQs[1]
	for _, rec := range w.Completed() {
		row.CrossFCTs = append(row.CrossFCTs, metrics.FCTRecord{SizeBytes: rec.Size, FCT: rec.FCT})
	}
	row.TputSeries = probe.Tput.SeriesMbps()
	return row
}

// Fig09 runs the six schemes of the figure.
func Fig09(seed int64, quick bool) []Fig09Row {
	dur := 120 * sim.Second
	if quick {
		dur = 60 * sim.Second
	}
	return mapCells(len(SchemeNames), func(i int) Fig09Row {
		return RunFig09(SchemeNames[i], seed, dur, 0.5)
	})
}

// FormatFig09 renders the comparison.
func FormatFig09(rows []Fig09Row) string {
	var b strings.Builder
	b.WriteString("Fig 9: WAN (heavy-tailed trace) cross traffic at 50% load, 96 Mbit/s\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %10s\n", "scheme", "Mbit/s", "median RTT", "p95 RTT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.1f %9.0f ms %7.0f ms\n", r.Scheme, r.MeanMbps, r.MedianRTTms, r.P95RTTms)
	}
	b.WriteString("expected shape: nimbus ~ cubic/bbr rate with much lower median RTT; vegas/copa lower rate\n")
	return b.String()
}

// Fig10Result compares Nimbus and Copa throughput over time against the
// trace workload (Fig. 10: Copa's throughput collapses during elastic
// periods).
type Fig10Result struct {
	NimbusSeries []float64
	CopaSeries   []float64
	// P20Nimbus / P20Copa: 20th percentile of the 1 s rates — the
	// paper's observation is Copa's low tail.
	P20Nimbus float64
	P20Copa   float64
}

// Fig10 derives the comparison from two Fig 9 runs.
func Fig10(seed int64, quick bool) Fig10Result {
	dur := 120 * sim.Second
	if quick {
		dur = 60 * sim.Second
	}
	rows := mapCells(2, func(i int) Fig09Row {
		return RunFig09([]string{"nimbus", "copa"}[i], seed, dur, 0.5)
	})
	n, c := rows[0], rows[1]
	res := Fig10Result{NimbusSeries: n.TputSeries, CopaSeries: c.TputSeries}
	trim := func(xs []float64) []float64 {
		if len(xs) > 5 {
			return xs[5:]
		}
		return xs
	}
	res.P20Nimbus = stats.Percentile(trim(n.TputSeries), 0.2)
	res.P20Copa = stats.Percentile(trim(c.TputSeries), 0.2)
	return res
}

// FormatFig10 renders the result.
func FormatFig10(r Fig10Result) string {
	var b strings.Builder
	b.WriteString("Fig 10: Copa vs Nimbus against trace cross traffic\n")
	fmt.Fprintf(&b, "p20 of 1s throughput: nimbus %.1f Mbit/s, copa %.1f Mbit/s\n", r.P20Nimbus, r.P20Copa)
	b.WriteString("expected shape: copa's low-percentile throughput below nimbus (drops vs elastic flows)\n")
	return b.String()
}
