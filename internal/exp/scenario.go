package exp

import (
	"fmt"
	"math"

	"nimbus/internal/core"
	"nimbus/internal/crosstraffic"
	"nimbus/internal/metrics"
	"nimbus/internal/netem"
	"nimbus/internal/runner"
	"nimbus/internal/sim"
)

// Workers is the worker-pool size every experiment grid in this package
// runs on: 0 means one worker per CPU, 1 forces sequential execution.
// cmd binaries set it from their -workers flag. Changing it never changes
// results — each grid cell owns its scheduler and random streams — only
// how many cells run at once.
var Workers = 0

// TimerWheel makes every rig back its scheduler with the hashed timer
// wheel (sim.Scheduler.UseTimerWheel) instead of the 4-ary heap. Results
// are identical either way — the wheel pops events in the same order —
// so this is purely a performance knob; cmd binaries set it from their
// -timer-wheel flag. Churn scenarios use the wheel regardless: their
// dense per-flow timer populations are what it exists for.
var TimerWheel = false

// mapCells fans the n cells of an experiment grid out on the shared
// worker pool, returning results in cell order.
func mapCells[T any](n int, f func(i int) T) []T {
	return runner.Map(Workers, n, f)
}

// NetConfigFor translates a declarative scenario's link description.
func NetConfigFor(sc runner.Scenario) NetConfig {
	return NetConfig{
		RateMbps:   sc.RateMbps,
		RTT:        sim.FromSeconds(sc.RTTms / 1e3),
		Buffer:     sim.FromSeconds(sc.BufferMs / 1e3),
		AQM:        sc.AQM,
		PIETarget:  sim.FromSeconds(sc.PIETargetMs / 1e3),
		Seed:       sc.EffectiveSeed(),
		Topology:   sc.Topology,
		LinkBurst:  sc.LinkBurst,
		TimerWheel: TimerWheel || sc.Churn != "",
		Fluid:      sc.FluidCross,
	}
}

// ScheduleForScenario resolves the scenario's time-varying link axes into
// a rate schedule: a named/loaded trace, a parsed pattern spec anchored
// at the scenario's nominal rate, or nil for the constant link.
func ScheduleForScenario(sc runner.Scenario) (*netem.RateSchedule, error) {
	hasPattern := sc.RatePattern != "" && sc.RatePattern != "constant"
	if sc.LinkTrace != "" && hasPattern {
		return nil, fmt.Errorf("exp: scenario %q sets both LinkTrace (%s) and RatePattern (%s); pick one",
			sc.Name, sc.LinkTrace, sc.RatePattern)
	}
	if sc.LinkTrace != "" {
		return netem.LoadTrace(sc.LinkTrace)
	}
	if hasPattern {
		return netem.ParsePattern(sc.RatePattern, sc.RateMbps*1e6)
	}
	return nil, nil
}

// RigForScenario materializes a declarative scenario: the bottleneck
// (constant or time-varying), the scheme under test as a backlogged flow
// with a probe, and the scenario's cross traffic. The caller may attach
// extra instrumentation before running the rig to sc.DurationSec.
func RigForScenario(sc runner.Scenario) (*Rig, Scheme, *FlowProbe, error) {
	cfg := NetConfigFor(sc)
	sched, err := ScheduleForScenario(sc)
	if err != nil {
		return nil, Scheme{}, nil, err
	}
	cfg.Schedule = sched
	// Validate the topology and fluid specs up front so a malformed spec
	// is a scenario error, not a panic out of NewRig.
	if _, err := netem.ParseTopology(sc.Topology); err != nil {
		return nil, Scheme{}, nil, err
	}
	if _, err := crosstraffic.ParseFluidSpec(sc.FluidCross); err != nil {
		return nil, Scheme{}, nil, err
	}
	r := NewRig(cfg)
	var mu core.MuEstimator
	if r.Link.Varying() {
		mu = LinkOracle{Link: r.Link}
	}
	scheme, err := BuildScheme(sc.Scheme, r.MuBps, mu)
	if err != nil {
		return nil, Scheme{}, nil, err
	}
	rtt := sim.FromSeconds(sc.RTTms / 1e3)
	probe := r.AddFlow(scheme, rtt, 0)
	crossRTT := rtt
	if sc.CrossRTTms > 0 {
		crossRTT = sim.FromSeconds(sc.CrossRTTms / 1e3)
	}
	if err := AddCross(r, sc.Cross, sc.CrossRateMbps*1e6, crossRTT); err != nil {
		return nil, Scheme{}, nil, err
	}
	return r, scheme, probe, nil
}

// CrossElastic reports whether a cross-traffic kind backs off under
// congestion — the ground truth Nimbus's mode decision is scored against.
func CrossElastic(kind string) bool {
	switch kind {
	case "cubic", "reno", "trace":
		return true
	}
	return false // none, poisson, cbr, video*: inelastic (or no) cross traffic
}

// RunScenario is the standard runner.RunFunc: it materializes the
// scenario, runs it to its horizon, and reports the measurements every
// sweep wants — throughput, queueing delay, utilization, drops, and (for
// Nimbus schemes) mode telemetry including time-weighted mode accuracy
// against the cross traffic's known elasticity. The engine fills in wall
// time.
func RunScenario(sc runner.Scenario) runner.Result {
	if sc.Churn != "" {
		return RunChurnScenario(sc)
	}
	if sc.FlowMix != "" {
		return RunFlowMixScenario(sc)
	}
	r, scheme, probe, err := RigForScenario(sc)
	if err != nil {
		return runner.Result{Scenario: sc, Err: err.Error()}
	}
	end := sim.FromSeconds(sc.DurationSec)
	var mt ModeTracker
	if scheme.Nimbus != nil {
		truth := CrossElastic(sc.Cross)
		mt.Track(scheme.Nimbus, func(sim.Time) bool { return truth }, end/4)
	}
	r.Sch.RunUntil(end)

	m := linkMetrics(r, probe.MeanMbps(0, end))
	addQdelayMetrics(m, probe.Delay)
	dropNonFinite(m)
	if scheme.Nimbus != nil {
		m["mode_switches"] = float64(scheme.Nimbus.ModeSwitches)
		m["eta"] = scheme.Nimbus.LastEta()
		mode := 0.0
		if scheme.Nimbus.Mode() == core.ModeCompetitive {
			mode = 1
		}
		m["competitive_mode"] = mode
		m["mode_accuracy"] = mt.Acc.Accuracy()
	}
	return runner.Result{Scenario: sc, Metrics: m, Events: r.Sch.Executed}
}

// RunFlowMixScenario is RunScenario for scenarios whose FlowMix is set:
// the mix's heterogeneous flow set replaces the single scheme under
// test, and the result carries per-flow throughput (flowNN_mbps) plus
// fairness of the allocation (jain, jsd_uniform) alongside the usual
// link-level metrics. The fairness window is the interval where every
// flow in the mix is active.
func RunFlowMixScenario(sc runner.Scenario) runner.Result {
	fail := func(err error) runner.Result {
		return runner.Result{Scenario: sc, Err: err.Error()}
	}
	specs, err := ParseFlowMix(sc.FlowMix)
	if err != nil {
		return fail(err)
	}
	cfg := NetConfigFor(sc)
	sched, err := ScheduleForScenario(sc)
	if err != nil {
		return fail(err)
	}
	cfg.Schedule = sched
	if _, err := netem.ParseTopology(sc.Topology); err != nil {
		return fail(err)
	}
	if _, err := crosstraffic.ParseFluidSpec(sc.FluidCross); err != nil {
		return fail(err)
	}
	r := NewRig(cfg)
	flows, err := r.AddFlowSpecs(specs...)
	if err != nil {
		return fail(err)
	}
	// Aggregate queueing delay comes from one shared recorder fed by
	// every flow's deliveries: per-flow recorders are reservoirs over
	// their own flow, so concatenating their samples would weight flows
	// equally once a busy flow hits the reservoir cap, instead of by
	// packets actually delivered.
	sharedDelay := metrics.NewDelayRecorder(0, r.Rng.Split("mix-dlyrec"))
	for _, f := range flows {
		addDeliverTap(f.Probe.Sender, func(p *netem.Packet, now sim.Time) {
			sharedDelay.Add(p.QueueDelay)
		})
	}
	rtt := sim.FromSeconds(sc.RTTms / 1e3)
	crossRTT := rtt
	if sc.CrossRTTms > 0 {
		crossRTT = sim.FromSeconds(sc.CrossRTTms / 1e3)
	}
	if err := AddCross(r, sc.Cross, sc.CrossRateMbps*1e6, crossRTT); err != nil {
		return fail(err)
	}
	end := sim.FromSeconds(sc.DurationSec)
	r.Sch.RunUntil(end)

	st := FlowStats(flows, end)
	m := linkMetrics(r, st.AggMbps)
	m["jain"] = st.Jain
	m["jsd_uniform"] = st.JSDUniform
	for i := range flows {
		m[fmt.Sprintf("flow%02d_mbps", i)] = st.PerFlowMbps[i]
	}
	if len(sharedDelay.Samples()) > 0 {
		addQdelayMetrics(m, sharedDelay)
	}
	dropNonFinite(m)
	return runner.Result{Scenario: sc, Metrics: m, Events: r.Sch.Executed}
}

// linkMetrics starts the metric map every scenario runner shares:
// aggregate throughput, the bottleneck's utilization and drops, and the
// per-hop decomposition on multi-hop topologies.
func linkMetrics(r *Rig, meanMbps float64) map[string]float64 {
	m := map[string]float64{
		"mean_mbps":       meanMbps,
		"utilization":     r.Link.Utilization(),
		"dropped_packets": float64(r.Link.DroppedPackets),
	}
	// Fluid-path runs additionally report the background aggregate's
	// achieved rate and loss; emitted only when fluid is on, so exact
	// per-packet results (and their JSON) are unchanged.
	if r.Link.FluidEnabled() {
		delivered, dropped := r.Link.FluidStats()
		if now := r.Sch.Now(); now > 0 {
			m["fluid_mbps"] = delivered * 8 / now.Seconds() / 1e6
		}
		if total := delivered + dropped; total > 0 {
			m["fluid_drop_pct"] = dropped / total * 100
		}
	}
	hopMetrics(m, r)
	return m
}

// addQdelayMetrics records a delay recorder's mean/p50/p95 summary.
func addQdelayMetrics(m map[string]float64, d *metrics.DelayRecorder) {
	dMean, dQs := d.MeanQuantiles(0.5, 0.95)
	m["qdelay_mean_ms"] = dMean
	m["qdelay_p50_ms"] = dQs[0]
	m["qdelay_p95_ms"] = dQs[1]
}

// dropNonFinite removes non-finite metrics: a run that delivers nothing
// (reachable on dark/outage schedules) has no delay samples and NaN
// summaries, and one such cell must not abort JSON emission for the
// whole sweep.
func dropNonFinite(m map[string]float64) {
	for k, v := range m {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			delete(m, k)
		}
	}
}

// hopMetrics decomposes the path into per-hop measurements on multi-hop
// topologies: each hop's utilization, drops, and mean queueing delay land
// as hopNN_<name>_* metrics. Single-bottleneck runs emit nothing extra,
// so pre-topology results (and their JSON) are unchanged.
func hopMetrics(m map[string]float64, r *Rig) {
	links := r.Net.Links()
	if len(links) <= 1 {
		return
	}
	for i, l := range links {
		prefix := fmt.Sprintf("hop%02d_%s_", i, l.Name)
		m[prefix+"util"] = l.Utilization()
		// The discipline's own counter, so CoDel's dequeue-time drops
		// (invisible to Link.DroppedPackets) are included.
		m[prefix+"drops"] = float64(l.Q.DropCount())
		m[prefix+"qdelay_ms"] = l.MeanQueueDelay().Millis()
	}
}

// RunSweep expands the grid and executes it on the pool, reporting
// progress through onProgress (which may be nil).
func RunSweep(g runner.Grid, workers int, onProgress func(done, total int, r runner.Result)) []runner.Result {
	rn := &runner.Runner{Workers: workers, OnProgress: onProgress}
	return rn.Run(g.Expand(), RunScenario)
}
