package exp

import (
	"nimbus/internal/core"
	"nimbus/internal/runner"
	"nimbus/internal/sim"
)

// Workers is the worker-pool size every experiment grid in this package
// runs on: 0 means one worker per CPU, 1 forces sequential execution.
// cmd binaries set it from their -workers flag. Changing it never changes
// results — each grid cell owns its scheduler and random streams — only
// how many cells run at once.
var Workers = 0

// mapCells fans the n cells of an experiment grid out on the shared
// worker pool, returning results in cell order.
func mapCells[T any](n int, f func(i int) T) []T {
	return runner.Map(Workers, n, f)
}

// NetConfigFor translates a declarative scenario's link description.
func NetConfigFor(sc runner.Scenario) NetConfig {
	return NetConfig{
		RateMbps:  sc.RateMbps,
		RTT:       sim.FromSeconds(sc.RTTms / 1e3),
		Buffer:    sim.FromSeconds(sc.BufferMs / 1e3),
		AQM:       sc.AQM,
		PIETarget: sim.FromSeconds(sc.PIETargetMs / 1e3),
		Seed:      sc.EffectiveSeed(),
	}
}

// RigForScenario materializes a declarative scenario: the bottleneck, the
// scheme under test as a backlogged flow with a probe, and the scenario's
// cross traffic. The caller may attach extra instrumentation before
// running the rig to sc.DurationSec.
func RigForScenario(sc runner.Scenario) (*Rig, Scheme, *FlowProbe, error) {
	r := NewRig(NetConfigFor(sc))
	scheme := NewScheme(sc.Scheme, r.MuBps, SchemeOpts{})
	rtt := sim.FromSeconds(sc.RTTms / 1e3)
	probe := r.AddFlow(scheme, rtt, 0)
	crossRTT := rtt
	if sc.CrossRTTms > 0 {
		crossRTT = sim.FromSeconds(sc.CrossRTTms / 1e3)
	}
	if err := AddCross(r, sc.Cross, sc.CrossRateMbps*1e6, crossRTT); err != nil {
		return nil, Scheme{}, nil, err
	}
	return r, scheme, probe, nil
}

// RunScenario is the standard runner.RunFunc: it materializes the
// scenario, runs it to its horizon, and reports the measurements every
// sweep wants — throughput, queueing delay, utilization, drops, and (for
// Nimbus schemes) mode telemetry. The engine fills in wall time.
func RunScenario(sc runner.Scenario) runner.Result {
	r, scheme, probe, err := RigForScenario(sc)
	if err != nil {
		return runner.Result{Scenario: sc, Err: err.Error()}
	}
	end := sim.FromSeconds(sc.DurationSec)
	r.Sch.RunUntil(end)

	d := probe.Delay.Summary()
	m := map[string]float64{
		"mean_mbps":       probe.MeanMbps(0, end),
		"qdelay_mean_ms":  d.Mean,
		"qdelay_p50_ms":   d.P50,
		"qdelay_p95_ms":   d.P95,
		"utilization":     r.Link.Utilization(),
		"dropped_packets": float64(r.Link.DroppedPackets),
	}
	if scheme.Nimbus != nil {
		m["mode_switches"] = float64(scheme.Nimbus.ModeSwitches)
		m["eta"] = scheme.Nimbus.LastEta()
		mode := 0.0
		if scheme.Nimbus.Mode() == core.ModeCompetitive {
			mode = 1
		}
		m["competitive_mode"] = mode
	}
	return runner.Result{Scenario: sc, Metrics: m, Events: r.Sch.Executed}
}

// RunSweep expands the grid and executes it on the pool, reporting
// progress through onProgress (which may be nil).
func RunSweep(g runner.Grid, workers int, onProgress func(done, total int, r runner.Result)) []runner.Result {
	rn := &runner.Runner{Workers: workers, OnProgress: onProgress}
	return rn.Run(g.Expand(), RunScenario)
}
