package netem

import (
	"fmt"

	"nimbus/internal/sim"
)

// Network is the single-bottleneck topology of the paper (Fig. 2). Each
// attached flow has its own forward (sender→queue) and reverse
// (receiver→sender) one-way propagation delays, so flows can have
// different base RTTs. Data packets traverse: sender → forward delay →
// bottleneck queue → link → receiver. The reverse path is uncongested.
type Network struct {
	Sch  *sim.Scheduler
	Link *Link

	flows map[FlowID]*Attachment
	next  FlowID

	// QueueMonitor, if set, is sampled by experiments that plot queue
	// occupancy over time. (The link's queue is directly accessible too.)
	onDeliver []func(p *Packet, now sim.Time)
}

// Attachment describes one flow's path through the network.
type Attachment struct {
	ID       FlowID
	FwdDelay sim.Time // one-way sender→bottleneck (includes bottleneck→receiver wire)
	RevDelay sim.Time // one-way receiver→sender

	// Receive is called when a data packet of this flow exits the link.
	Receive func(p *Packet, now sim.Time)
	// Dropped, if set, is called when a packet of this flow is dropped
	// at the bottleneck.
	Dropped func(p *Packet, now sim.Time)

	net *Network
	// toLink is the reusable forward-path arrival callback; building it
	// once per attachment keeps Send free of per-packet closures.
	toLink func(arg any)
}

// NewNetwork builds a network around the given bottleneck link.
func NewNetwork(sch *sim.Scheduler, link *Link) *Network {
	n := &Network{Sch: sch, Link: link, flows: make(map[FlowID]*Attachment)}
	link.Deliver = n.deliver
	link.OnDrop = n.drop
	return n
}

// BaseRTT returns the two-way propagation delay of a flow attachment.
func (a *Attachment) BaseRTT() sim.Time { return a.FwdDelay + a.RevDelay }

// Attach adds a flow with the given base RTT, split evenly between the
// forward and reverse paths.
func (n *Network) Attach(rtt sim.Time) *Attachment {
	return n.AttachAsym(rtt/2, rtt-rtt/2)
}

// AttachAsym adds a flow with explicit one-way delays.
func (n *Network) AttachAsym(fwd, rev sim.Time) *Attachment {
	n.next++
	a := &Attachment{ID: n.next, FwdDelay: fwd, RevDelay: rev, net: n}
	a.toLink = func(arg any) { a.net.Link.Send(arg.(*Packet)) }
	n.flows[a.ID] = a
	return a
}

// Detach removes a flow. In-flight packets of the flow are delivered to a
// no-op receiver.
func (n *Network) Detach(id FlowID) { delete(n.flows, id) }

// Send injects a data packet from the flow's sender: after the forward
// propagation delay it reaches the bottleneck queue.
func (a *Attachment) Send(p *Packet) {
	p.Flow = a.ID
	p.SentAt = a.net.Sch.Now()
	a.net.Sch.AfterArg(a.FwdDelay, a.toLink, p)
}

// SendAck schedules fn at the sender after the reverse propagation delay.
// Transports use it to deliver ACK information; the reverse path is
// uncongested per the paper's model.
func (a *Attachment) SendAck(fn func(now sim.Time)) {
	a.net.Sch.AfterFunc(a.RevDelay, func() { fn(a.net.Sch.Now()) })
}

// SendAckArg schedules fn(arg) after the reverse propagation delay. The
// argument rides on the event itself, so transports can reuse one callback
// and a pooled record for every ACK instead of capturing per-packet state
// in a fresh closure.
func (a *Attachment) SendAckArg(fn func(arg any), arg any) {
	a.net.Sch.AfterArg(a.RevDelay, fn, arg)
}

func (n *Network) deliver(p *Packet, now sim.Time) {
	for _, f := range n.onDeliver {
		f(p, now)
	}
	a, ok := n.flows[p.Flow]
	if !ok || a.Receive == nil {
		return
	}
	a.Receive(p, now)
}

func (n *Network) drop(p *Packet, now sim.Time) {
	a, ok := n.flows[p.Flow]
	if !ok || a.Dropped == nil {
		return
	}
	a.Dropped(p, now)
}

// OnDeliver registers a tap invoked for every packet exiting the link
// (before per-flow delivery). Experiments use it to measure aggregate
// cross-traffic rates and per-packet queueing delay.
func (n *Network) OnDeliver(f func(p *Packet, now sim.Time)) {
	n.onDeliver = append(n.onDeliver, f)
}

// QueueDelayNow returns the current queueing delay implied by occupancy
// at the link's current rate (0 during an outage, when no drain rate is
// defined).
func (n *Network) QueueDelayNow() sim.Time {
	rate := n.Link.Rate()
	if rate <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(n.Link.Q.BytesQueued()) * 8 / rate)
}

// String describes the network configuration.
func (n *Network) String() string {
	return fmt.Sprintf("bottleneck %.1f Mbit/s, %d flows", n.Link.Rate()/1e6, len(n.flows))
}

// Mbps converts bits/s to Mbit/s for reporting.
func Mbps(bps float64) float64 { return bps / 1e6 }

// BpsFromMbps converts Mbit/s to bits/s.
func BpsFromMbps(m float64) float64 { return m * 1e6 }
