package netem

import (
	"testing"
	"testing/quick"

	"nimbus/internal/sim"
)

func TestDropTailCapacity(t *testing.T) {
	q := NewDropTail(3000)
	now := sim.Time(0)
	if !q.Enqueue(&Packet{Size: 1500}, now) || !q.Enqueue(&Packet{Size: 1500}, now) {
		t.Fatal("enqueue within capacity failed")
	}
	if q.Enqueue(&Packet{Size: 1500}, now) {
		t.Fatal("enqueue beyond capacity succeeded")
	}
	if q.Drops != 1 || q.BytesQueued() != 3000 || q.Len() != 2 {
		t.Fatalf("state: drops=%d bytes=%d len=%d", q.Drops, q.BytesQueued(), q.Len())
	}
}

func TestDropTailFIFOAndDelay(t *testing.T) {
	q := NewDropTail(1 << 20)
	for i := 0; i < 5; i++ {
		q.Enqueue(&Packet{Seq: uint64(i), Size: 100}, sim.Time(i)*sim.Millisecond)
	}
	for i := 0; i < 5; i++ {
		p := q.Dequeue(10 * sim.Millisecond)
		if p.Seq != uint64(i) {
			t.Fatalf("not FIFO: got %d", p.Seq)
		}
		want := 10*sim.Millisecond - sim.Time(i)*sim.Millisecond
		if p.QueueDelay != want {
			t.Fatalf("delay = %v, want %v", p.QueueDelay, want)
		}
	}
	if q.Dequeue(0) != nil {
		t.Fatal("dequeue from empty queue")
	}
}

// Property: bytes queued always equals the sum of the sizes of packets
// enqueued minus dequeued.
func TestDropTailConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewDropTail(50000)
		expected := 0
		seq := uint64(0)
		for _, op := range ops {
			if op%3 != 0 {
				size := 100 + int(op)
				if q.Enqueue(&Packet{Seq: seq, Size: size}, 0) {
					expected += size
				}
				seq++
			} else if p := q.Dequeue(0); p != nil {
				expected -= p.Size
			}
		}
		return q.BytesQueued() == expected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferBytesForDelay(t *testing.T) {
	// 96 Mbit/s, 100 ms => 1.2 MB.
	got := BufferBytesForDelay(96e6, 100*sim.Millisecond)
	if got != 1200000 {
		t.Fatalf("got %d", got)
	}
}

func TestLinkDrainRate(t *testing.T) {
	sch := sim.NewScheduler()
	q := NewDropTail(1 << 20)
	link := NewLink(sch, 12e6, q) // 12 Mbit/s: 1500B = 1 ms each
	var delivered []sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { delivered = append(delivered, now) }
	for i := 0; i < 10; i++ {
		link.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	sch.Run()
	if len(delivered) != 10 {
		t.Fatalf("delivered %d", len(delivered))
	}
	for i, at := range delivered {
		want := sim.Time(i+1) * sim.Millisecond
		if at != want {
			t.Fatalf("packet %d delivered at %v, want %v", i, at, want)
		}
	}
	if link.DeliveredBytes != 15000 {
		t.Fatalf("bytes = %d", link.DeliveredBytes)
	}
}

func TestLinkUtilization(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 12e6, NewDropTail(1<<20))
	link.Deliver = func(p *Packet, now sim.Time) {}
	link.Send(&Packet{Size: 1500})
	sch.At(2*sim.Millisecond, func() {}) // extend sim to 2 ms
	sch.Run()
	if u := link.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestNetworkRTTAndDelivery(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 96e6, NewDropTail(1<<20))
	net := NewNetwork(sch, link)
	att := net.Attach(50 * sim.Millisecond)
	if att.BaseRTT() != 50*sim.Millisecond {
		t.Fatalf("BaseRTT = %v", att.BaseRTT())
	}
	var rtt sim.Time
	att.Receive = func(p *Packet, now sim.Time) {
		att.SendAck(func(ackNow sim.Time) { rtt = ackNow - p.SentAt })
	}
	att.Send(&Packet{Size: 1500})
	sch.Run()
	// RTT = 50 ms prop + 125 us transmission.
	tx := link.TxTime(1500)
	want := 50*sim.Millisecond + tx
	if rtt != want {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
}

func TestNetworkPerFlowRouting(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 96e6, NewDropTail(1<<20))
	net := NewNetwork(sch, link)
	a := net.Attach(20 * sim.Millisecond)
	b := net.Attach(40 * sim.Millisecond)
	var gotA, gotB int
	a.Receive = func(p *Packet, now sim.Time) { gotA++ }
	b.Receive = func(p *Packet, now sim.Time) { gotB++ }
	a.Send(&Packet{Size: 100})
	b.Send(&Packet{Size: 100})
	b.Send(&Packet{Size: 100})
	sch.Run()
	if gotA != 1 || gotB != 2 {
		t.Fatalf("routing wrong: a=%d b=%d", gotA, gotB)
	}
}

func TestNetworkDropCallback(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 1e6, NewDropTail(2000)) // tiny buffer
	net := NewNetwork(sch, link)
	att := net.Attach(10 * sim.Millisecond)
	drops := 0
	att.Dropped = func(p *Packet, now sim.Time) { drops++ }
	for i := 0; i < 10; i++ {
		att.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	sch.Run()
	if drops == 0 {
		t.Fatal("expected drops with tiny buffer")
	}
	if link.DroppedPackets != uint64(drops) {
		t.Fatalf("link counter %d != callback %d", link.DroppedPackets, drops)
	}
}

func TestPIEControlsDelay(t *testing.T) {
	sch := sim.NewScheduler()
	rng := sim.NewRand(1)
	rate := 10e6
	target := 20 * sim.Millisecond
	q := NewPIE(BufferBytesForDelay(rate, 500*sim.Millisecond), rate, target, rng)
	link := NewLink(sch, rate, q)
	net := NewNetwork(sch, link)
	att := net.Attach(10 * sim.Millisecond)
	var delays []float64
	att.Receive = func(p *Packet, now sim.Time) {
		delays = append(delays, p.QueueDelay.Millis())
	}
	// Offered load 1.5x the link rate for 10 seconds.
	interval := sim.FromSeconds(1500 * 8 / (1.5 * rate))
	var inject func()
	n := 0
	inject = func() {
		if sch.Now() > 10*sim.Second {
			return
		}
		att.Send(&Packet{Seq: uint64(n), Size: 1500})
		n++
		sch.After(interval, inject)
	}
	sch.After(0, inject)
	sch.Run()
	if q.Drops == 0 {
		t.Fatal("PIE never dropped under persistent overload")
	}
	// Steady-state delay should hover near the target, far below the
	// 500 ms tail-drop horizon.
	late := delays[len(delays)/2:]
	sum := 0.0
	for _, d := range late {
		sum += d
	}
	mean := sum / float64(len(late))
	if mean > 3*target.Millis() {
		t.Fatalf("mean delay %v ms far above PIE target %v ms", mean, target.Millis())
	}
}

func TestCoDelDropsUnderOverload(t *testing.T) {
	sch := sim.NewScheduler()
	rate := 10e6
	q := NewCoDel(BufferBytesForDelay(rate, 1*sim.Second))
	link := NewLink(sch, rate, q)
	net := NewNetwork(sch, link)
	att := net.Attach(10 * sim.Millisecond)
	var lastDelay sim.Time
	att.Receive = func(p *Packet, now sim.Time) { lastDelay = p.QueueDelay }
	interval := sim.FromSeconds(1500 * 8 / (1.3 * rate))
	n := 0
	var inject func()
	inject = func() {
		// CoDel's sqrt(count) control law ramps slowly against
		// unresponsive overload; give it 30 s to converge.
		if sch.Now() > 30*sim.Second {
			return
		}
		att.Send(&Packet{Seq: uint64(n), Size: 1500})
		n++
		sch.After(interval, inject)
	}
	sch.After(0, inject)
	sch.Run()
	if q.Drops == 0 {
		t.Fatal("CoDel never dropped under persistent overload")
	}
	if lastDelay > 200*sim.Millisecond {
		t.Fatalf("CoDel let the queue run away: %v", lastDelay)
	}
}

func TestCoDelNoDropsWhenUnderloaded(t *testing.T) {
	sch := sim.NewScheduler()
	rate := 10e6
	q := NewCoDel(1 << 20)
	link := NewLink(sch, rate, q)
	net := NewNetwork(sch, link)
	att := net.Attach(10 * sim.Millisecond)
	att.Receive = func(p *Packet, now sim.Time) {}
	interval := sim.FromSeconds(1500 * 8 / (0.5 * rate))
	n := 0
	var inject func()
	inject = func() {
		if sch.Now() > 3*sim.Second {
			return
		}
		att.Send(&Packet{Seq: uint64(n), Size: 1500})
		n++
		sch.After(interval, inject)
	}
	sch.After(0, inject)
	sch.Run()
	if q.Drops != 0 {
		t.Fatalf("CoDel dropped %d packets at 50%% load", q.Drops)
	}
}

func TestQueueDelayNow(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 96e6, NewDropTail(1<<20))
	net := NewNetwork(sch, link)
	link.Q.Enqueue(&Packet{Size: 120000}, 0) // 120 kB at 96 Mbit/s = 10 ms
	got := net.QueueDelayNow()
	if got != 10*sim.Millisecond {
		t.Fatalf("QueueDelayNow = %v", got)
	}
}
