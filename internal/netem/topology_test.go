package netem

import (
	"testing"

	"nimbus/internal/sim"
)

// twoHop builds sender →10ms→ [access 48 Mbit/s] →5ms→ [bn 12 Mbit/s] →
// receiver with an ideal reverse path, returning the topology and links.
func twoHop(sch *sim.Scheduler) (*Topology, *Link, *Link) {
	access := NewLink(sch, 48e6, NewDropTail(1<<20))
	access.Name = "access"
	bn := NewLink(sch, 12e6, NewDropTail(1<<20))
	bn.Name = "bn"
	t := NewTopology(sch)
	t.AddLink(access)
	t.AddLink(bn)
	t.AddRoute(&Route{
		Fwd: []Hop{{Link: access}, {Link: bn, Delay: 5 * sim.Millisecond}},
	})
	t.Link = bn
	return t, access, bn
}

// TestMultiHopTiming pins exact end-to-end timing across two hops: 10 ms
// access delay, 0.25 ms serialization at 48 Mbit/s, 5 ms inter-hop wire,
// 1 ms serialization at 12 Mbit/s → delivery at 16.25 ms.
func TestMultiHopTiming(t *testing.T) {
	sch := sim.NewScheduler()
	topo, _, _ := twoHop(sch)
	att := topo.AttachAsym(10*sim.Millisecond, 10*sim.Millisecond)
	var deliveredAt sim.Time
	att.Receive = func(p *Packet, now sim.Time) {
		deliveredAt = now
		topo.PutPacket(p)
	}
	p := topo.GetPacket()
	*p = Packet{Seq: 1, Size: 1500}
	att.Send(p)
	sch.Run()
	want := 10*sim.Millisecond + 250*sim.Microsecond + 5*sim.Millisecond + 1*sim.Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

// TestMultiHopQueueDelayAccumulates: with the second hop backlogged, a
// packet's QueueDelay is the sum of its per-hop queueing.
func TestMultiHopQueueDelayAccumulates(t *testing.T) {
	sch := sim.NewScheduler()
	topo, _, bn := twoHop(sch)
	att := topo.AttachAsym(0, 0)
	var last sim.Time
	att.Receive = func(p *Packet, now sim.Time) {
		last = p.QueueDelay
		topo.PutPacket(p)
	}
	// Three back-to-back packets: at the 48 Mbit/s access hop they queue
	// briefly behind each other, then again behind the slow bottleneck.
	for i := 0; i < 3; i++ {
		p := topo.GetPacket()
		*p = Packet{Seq: uint64(i), Size: 1500}
		att.Send(p)
	}
	sch.Run()
	// Last packet: access queueing 2*0.25 ms, bottleneck queueing is
	// 2*1 ms minus the 2*0.75 ms head start the faster access hop gave
	// the earlier packets' transmissions... easier to assert the sum is
	// strictly larger than either hop alone could produce.
	if last <= 500*sim.Microsecond {
		t.Fatalf("accumulated queue delay %v does not include the bottleneck hop", last)
	}
	if bn.MeanQueueDelay() == 0 {
		t.Fatal("bottleneck hop recorded no queueing")
	}
}

// TestDetachRecyclesInFlight is the regression test for the detach leak:
// packets of a detached flow that are still in flight must return to the
// shared pool when they complete their route, not fall out of the
// allocation-free path.
func TestDetachRecyclesInFlight(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 12e6, NewDropTail(1<<20))
	topo := NewNetwork(sch, link)
	att := topo.Attach(20 * sim.Millisecond)
	att.Receive = func(p *Packet, now sim.Time) { topo.PutPacket(p) }
	const n = 5
	for i := 0; i < n; i++ {
		p := topo.GetPacket()
		*p = Packet{Seq: uint64(i), Size: 1500}
		att.Send(p)
	}
	topo.Detach(att.ID)
	sch.Run()
	if topo.OrphanRecycled != n {
		t.Fatalf("recycled %d orphaned packets, want %d", topo.OrphanRecycled, n)
	}
	if got := topo.FreePackets(); got != n {
		t.Fatalf("free list has %d packets after detach, want %d", got, n)
	}
}

// revTopo builds a forward bottleneck plus a slow reverse link ACKs
// traverse.
func revTopo(sch *sim.Scheduler, revBuf int) (*Topology, *Link) {
	bn := NewLink(sch, 48e6, NewDropTail(1<<20))
	rev := NewLink(sch, 1e6, NewDropTail(revBuf))
	rev.Name = "rev"
	t := NewTopology(sch)
	t.AddLink(bn)
	t.AddLink(rev)
	t.AddRoute(&Route{Fwd: []Hop{{Link: bn}}, Rev: []Hop{{Link: rev}}})
	t.Link = bn
	return t, rev
}

// TestRevRouteAckTiming: an ACK on a congested reverse route crosses the
// reverse propagation delay and the reverse link's serialization.
func TestRevRouteAckTiming(t *testing.T) {
	sch := sim.NewScheduler()
	topo, _ := revTopo(sch, 1<<20)
	att := topo.AttachAsym(5*sim.Millisecond, 5*sim.Millisecond)
	var ackAt sim.Time
	sch.At(0, func() {
		att.SendAckArg(func(any) { ackAt = sch.Now() }, nil)
	})
	sch.Run()
	// 5 ms reverse propagation + 64 B at 1 Mbit/s = 0.512 ms.
	want := 5*sim.Millisecond + sim.FromSeconds(64*8/1e6)
	if ackAt != want {
		t.Fatalf("ack delivered at %v, want %v", ackAt, want)
	}
	if topo.FreePackets() != 1 {
		t.Fatalf("ack packet not recycled: free list %d", topo.FreePackets())
	}
}

// TestRevRouteAckDrop: an ACK dropped on the congested reverse path never
// invokes its callback, and its packet returns to the pool.
func TestRevRouteAckDrop(t *testing.T) {
	sch := sim.NewScheduler()
	// 100-byte buffer: the first ACK goes straight into transmission, the
	// second queues (64 B), the third would overflow and drops.
	topo, rev := revTopo(sch, 100)
	att := topo.AttachAsym(0, 0)
	delivered := 0
	sch.At(0, func() {
		for i := 0; i < 3; i++ {
			att.SendAckArg(func(any) { delivered++ }, nil)
		}
	})
	sch.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d acks, want 2 (third should drop)", delivered)
	}
	if rev.DroppedPackets != 1 {
		t.Fatalf("reverse link dropped %d, want 1", rev.DroppedPackets)
	}
	if topo.FreePackets() != 3 {
		t.Fatalf("free list %d after drop, want all three ack packets back", topo.FreePackets())
	}
}

// TestIdealRevPathUnchanged: a route without reverse hops delivers ACKs
// as pure-delay events — no packets, no link traffic.
func TestIdealRevPathUnchanged(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 12e6, NewDropTail(1<<20))
	topo := NewNetwork(sch, link)
	att := topo.AttachAsym(3*sim.Millisecond, 7*sim.Millisecond)
	var ackAt sim.Time
	sch.At(0, func() {
		att.SendAck(func(now sim.Time) { ackAt = now })
	})
	sch.Run()
	if ackAt != 7*sim.Millisecond {
		t.Fatalf("ack at %v, want 7ms", ackAt)
	}
	if link.DeliveredPackets != 0 || topo.FreePackets() != 0 {
		t.Fatal("ideal reverse path should not touch links or the packet pool")
	}
}

// TestRouteLookupAndBaseRTT covers route registration and the RTT
// decomposition (access delays plus hop wire delays).
func TestRouteLookupAndBaseRTT(t *testing.T) {
	sch := sim.NewScheduler()
	topo, access, bn := twoHop(sch)
	topo.AddRoute(&Route{Name: "bn-only", Fwd: []Hop{{Link: bn}}})
	if topo.Route("bn-only") == nil || topo.Route("") == nil || topo.Route("nope") != nil {
		t.Fatal("route lookup broken")
	}
	att := topo.AttachAsymOn("", 10*sim.Millisecond, 10*sim.Millisecond)
	want := 20*sim.Millisecond + 5*sim.Millisecond // access delays + bn hop wire
	if att.BaseRTT() != want {
		t.Fatalf("BaseRTT %v, want %v", att.BaseRTT(), want)
	}
	// The bn-only route has no hop wire delay, so only the access delays
	// count.
	short := topo.AttachAsymOn("bn-only", 10*sim.Millisecond, 10*sim.Millisecond)
	if short.BaseRTT() != 20*sim.Millisecond {
		t.Fatalf("bn-only BaseRTT %v, want 20ms", short.BaseRTT())
	}
	_ = access
}

// TestTopologyForwardingAllocFree: once pools are warm, pushing a packet
// across a two-hop path allocates nothing — the gate behind
// BenchmarkTopologyThroughput.
func TestTopologyForwardingAllocFree(t *testing.T) {
	sch := sim.NewScheduler()
	topo, _, _ := twoHop(sch)
	att := topo.AttachAsym(1*sim.Millisecond, 1*sim.Millisecond)
	att.Receive = func(p *Packet, now sim.Time) { topo.PutPacket(p) }
	seq := uint64(0)
	send := func() {
		p := topo.GetPacket()
		*p = Packet{Seq: seq, Size: 1500}
		seq++
		att.Send(p)
		sch.Run()
	}
	for i := 0; i < 64; i++ {
		send() // warm pools, grow queue rings
	}
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("multi-hop forwarding allocates %.1f/op, want 0", allocs)
	}
}
