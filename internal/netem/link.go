package netem

import "nimbus/internal/sim"

// Link models the bottleneck: it drains its Queue at the capacity its
// RateSchedule prescribes and hands completed packets to Deliver. It also
// keeps the counters the experiments report (delivered bytes, drops, busy
// time for utilization).
//
// Rate changes are applied as scheduler events: the link registers one
// event per schedule transition, and a packet in flight across a
// transition finishes exactly when the integral of the rate over its
// transmission interval reaches its size — serialization, busy-time, and
// utilization accounting stay exact across transitions. A constant-rate
// link (the common case) keeps the allocation-free fast path: pooled
// no-handle completion events and no per-packet state beyond the slot.
type Link struct {
	Sch *sim.Scheduler
	// Name labels the link as a hop of a topology ("bn", "access", ...).
	Name string
	// Schedule is the capacity signal. Immutable after construction.
	Schedule *RateSchedule
	Q        Queue

	// Deliver is called when a packet finishes transmission.
	Deliver func(p *Packet, now sim.Time)
	// OnDrop, if set, is called for packets rejected by the queue.
	OnDrop func(p *Packet, now sim.Time)

	rateBps float64 // current drain rate
	varying bool    // whether Schedule has transitions

	busy bool
	// In-flight transmission state: the link serializes one packet at a
	// time, so a single slot plus a reusable completion callback avoids a
	// closure allocation per packet on the hottest path in the simulator.
	txPkt  *Packet
	txTime sim.Time // constant path: serialization time of txPkt
	txDone func()
	// Varying path: remaining bits of txPkt and when they were last
	// drained; the completion timer is cancellable because a rate change
	// mid-packet reschedules it.
	txBitsLeft float64
	txUpdated  sim.Time
	txTimer    *sim.Timer
	txVarDone  func()
	rateChange func()

	// enterFn is the topology's prebound entry callback ("send the event's
	// packet on this link"): one per link, so inter-hop forwarding rides
	// pooled AfterArg events with no per-packet closures.
	enterFn func(arg any)

	// Burst forwarding (SetBurst): a constant-rate link draining a
	// burst-capable queue stages up to burstBudget back-to-back packets
	// at their exact virtual start times and retires them all with one
	// pooled completion event. bq is non-nil only while bursting is
	// active; burstPkts/burstTx hold the staged packets and their
	// serialization times, reused across bursts.
	burstBudget int
	bq          BurstQueue
	burstFn     func()
	burstStart  sim.Time
	burstPkts   []*Packet
	burstTx     []sim.Time

	// Fluid cross-traffic term (EnableFluid, see fluid.go): an aggregate
	// background load integrated analytically between rate changes
	// instead of simulated per packet. fluidBacklog is the standing
	// fluid bytes sharing the buffer with foreground packets.
	fluidOn        bool
	fluidCap       int
	fluidBps       float64
	fluidBacklog   float64
	fluidSettled   sim.Time
	fluidDelivered float64
	fluidDropped   float64

	DeliveredPackets uint64
	DeliveredBytes   uint64
	DroppedPackets   uint64
	busyTime         sim.Time
	lastStart        sim.Time
	qdelaySum        sim.Time
	dequeues         uint64
}

// NewLink returns a constant-rate link draining q at rateBps.
func NewLink(sch *sim.Scheduler, rateBps float64, q Queue) *Link {
	return NewLinkSchedule(sch, ConstantRate(rateBps), q)
}

// NewLinkSchedule returns a link whose capacity follows the schedule.
func NewLinkSchedule(sch *sim.Scheduler, schedule *RateSchedule, q Queue) *Link {
	l := &Link{
		Sch:      sch,
		Schedule: schedule,
		Q:        q,
		rateBps:  schedule.RateAt(sch.Now()),
		varying:  !schedule.Constant(),
	}
	l.txDone = l.finishTx
	if l.varying {
		l.txVarDone = l.finishVarTx
		l.rateChange = l.applyRateChange
		if next, ok := schedule.NextChange(sch.Now()); ok {
			sch.AtFunc(next, l.rateChange)
		}
	}
	return l
}

// Rate returns the link's current drain rate in bits/s.
func (l *Link) Rate() float64 { return l.rateBps }

// Varying reports whether the link's capacity changes over time.
func (l *Link) Varying() bool { return l.varying }

// TxTime returns the serialization time of a packet of n bytes at the
// current rate (an instantaneous view; a varying link may revise it).
func (l *Link) TxTime(n int) sim.Time {
	return sim.FromSeconds(float64(n) * 8 / l.rateBps)
}

// Send enqueues p, starting transmission if the link is idle.
func (l *Link) Send(p *Packet) {
	now := l.Sch.Now()
	if l.fluidOn {
		// Settle so the queue's admission check sees the current fluid
		// backlog, not a stale one, then stamp the packet's FIFO
		// position relative to the fluid process (flushFluidAhead).
		l.settleFluid(now)
		p.fluidMark = l.fluidDelivered + l.fluidBacklog
	}
	if !l.Q.Enqueue(p, now) {
		l.DroppedPackets++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		return
	}
	if !l.busy {
		l.startNext()
	}
}

func (l *Link) startNext() {
	now := l.Sch.Now()
	if l.fluidOn {
		// Settle before the dequeue: the interval just ended still had
		// the head packet in the buffer, so backlog capping sees it.
		l.settleFluid(now)
	}
	p := l.Q.Dequeue(now)
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.lastStart = now
	l.qdelaySum += now - p.EnqueuedAt
	l.dequeues++
	if !l.varying {
		tx := l.TxTime(p.Size)
		if l.bq != nil && l.Q.Len() > 0 {
			l.startBurst(now, p, tx)
			return
		}
		if l.fluidOn {
			ftx, _ := l.flushFluidAhead(p)
			tx += ftx
		}
		l.txPkt = p
		l.txTime = tx
		l.Sch.AfterFunc(tx, l.txDone)
		return
	}
	l.txPkt = p
	l.txBitsLeft = float64(p.Size) * 8
	if l.fluidOn {
		// Fold the standing backlog into the in-flight bits: the exact
		// piecewise-rate integration then drains fluid and packet
		// together across any schedule transitions.
		_, fbits := l.flushFluidAhead(p)
		l.txBitsLeft += fbits
	}
	l.txUpdated = now
	l.armTx()
}

// MaxBurst caps the per-event packet budget of burst forwarding; beyond
// ~64 packets the event-count savings flatten while staged state grows.
const MaxBurst = 64

// SetBurst enables burst forwarding with the given per-event packet
// budget (values <= 1 disable it). It takes effect only on constant-rate
// links draining a burst-capable queue (DropTail): time-varying links
// must observe every rate transition per packet, and AQM disciplines
// (CoDel, PIE) make drop decisions from the wall clock at dequeue or
// enqueue time, so those keep the one-event-per-packet path and behave
// identically whatever the budget. Configure before traffic starts.
//
// With bursting active, every staged packet keeps its exact per-packet
// virtual start and completion times — queueing delay, busy time, and
// delivered counters are identical to the per-packet path, and Deliver
// receives the exact completion timestamp. What changes is when the
// delivery callbacks execute: the whole burst retires when its last
// packet completes, so downstream events (ACKs, next-hop entries) are
// scheduled up to one burst window later than per-packet forwarding
// would. And an arrival at exactly a staged packet's start instant sees
// that packet's bytes already released, whereas the per-packet path
// resolves such a tie by scheduler event order. Runs with bursting on
// are therefore not byte-identical to runs with it off.
func (l *Link) SetBurst(budget int) {
	if budget > MaxBurst {
		budget = MaxBurst
	}
	l.burstBudget = budget
	l.bq = nil
	if budget <= 1 || l.varying || l.fluidOn {
		return
	}
	bq, ok := l.Q.(BurstQueue)
	if !ok {
		return
	}
	l.bq = bq
	if l.burstFn == nil {
		l.burstFn = l.finishBurst
	}
}

// BurstBudget returns the configured burst budget (0 or 1 = disabled).
func (l *Link) BurstBudget() int { return l.burstBudget }

// startBurst stages the head packet p (already dequeued at now, with tx
// its serialization time) plus up to budget-1 more packets at their
// exact virtual start times, then schedules one pooled completion event
// at the last packet's completion.
func (l *Link) startBurst(now sim.Time, p *Packet, tx sim.Time) {
	l.burstStart = now
	l.burstPkts = append(l.burstPkts[:0], p)
	l.burstTx = append(l.burstTx[:0], tx)
	at := now + tx // completion of each staged packet = start of the next
	for len(l.burstPkts) < l.burstBudget {
		q := l.bq.DequeueAt(at)
		if q == nil {
			break
		}
		l.qdelaySum += at - q.EnqueuedAt
		l.dequeues++
		qtx := l.TxTime(q.Size)
		l.burstPkts = append(l.burstPkts, q)
		l.burstTx = append(l.burstTx, qtx)
		at += qtx
	}
	l.Sch.AtFunc(at, l.burstFn)
}

// finishBurst retires the staged burst: each packet is delivered with its
// exact per-packet completion time and accounted exactly as the
// per-packet path would have.
func (l *Link) finishBurst() {
	t := l.burstStart
	for i, p := range l.burstPkts {
		tx := l.burstTx[i]
		t += tx
		l.busyTime += tx
		l.DeliveredPackets++
		l.DeliveredBytes += uint64(p.Size)
		l.burstPkts[i] = nil
		if l.Deliver != nil {
			l.Deliver(p, t)
		}
	}
	l.burstPkts = l.burstPkts[:0]
	l.burstTx = l.burstTx[:0]
	l.startNext()
}

// armTx schedules the in-flight packet's completion at the current rate.
// At rate zero (an outage) no completion is scheduled; the pending rate
// change event re-arms when capacity returns. Rearm recycles the one
// completion-timer struct, so a varying link stays allocation-free per
// packet like the constant-rate fast path.
func (l *Link) armTx() {
	if l.rateBps <= 0 {
		return
	}
	at := l.Sch.Now() + sim.FromSeconds(l.txBitsLeft/l.rateBps)
	l.txTimer = l.Sch.Rearm(l.txTimer, at, l.txVarDone)
}

// applyRateChange is the scheduler event at every schedule transition: it
// settles the in-flight packet's drained bits at the old rate, switches
// to the new rate, reschedules the packet's completion, and registers the
// next transition.
func (l *Link) applyRateChange() {
	now := l.Sch.Now()
	if l.fluidOn {
		// Close the constant-rate segment before switching, so each
		// fluid integration interval has a single drain rate.
		l.settleFluid(now)
	}
	newRate := l.Schedule.RateAt(now)
	if newRate != l.rateBps {
		if l.txPkt != nil {
			l.txBitsLeft -= l.rateBps * (now - l.txUpdated).Seconds()
			if l.txBitsLeft < 0 {
				l.txBitsLeft = 0
			}
			l.txUpdated = now
			l.txTimer.Cancel()
			l.rateBps = newRate
			l.armTx()
		} else {
			l.rateBps = newRate
		}
	}
	if next, ok := l.Schedule.NextChange(now); ok {
		l.Sch.AtFunc(next, l.rateChange)
	}
}

func (l *Link) finishTx() {
	p, tx := l.txPkt, l.txTime
	l.txPkt = nil
	l.busyTime += tx
	l.DeliveredPackets++
	l.DeliveredBytes += uint64(p.Size)
	if l.Deliver != nil {
		l.Deliver(p, l.Sch.Now())
	}
	l.startNext()
}

func (l *Link) finishVarTx() {
	now := l.Sch.Now()
	p := l.txPkt
	l.txPkt = nil
	// Busy time is the packet's wall occupancy of the link, including any
	// stall while the rate was zero, so Utilization stays <= 1.
	l.busyTime += now - l.lastStart
	l.DeliveredPackets++
	l.DeliveredBytes += uint64(p.Size)
	if l.Deliver != nil {
		l.Deliver(p, now)
	}
	l.startNext()
}

// Busy reports whether a packet is currently being transmitted.
func (l *Link) Busy() bool { return l.busy }

// MeanQueueDelay returns the mean per-packet queueing delay at this hop
// (time between enqueue and the start of transmission), the per-hop
// decomposition of a route's end-to-end queueing delay.
func (l *Link) MeanQueueDelay() sim.Time {
	if l.dequeues == 0 {
		return 0
	}
	return l.qdelaySum / sim.Time(l.dequeues)
}

// Utilization returns the fraction of time the link has been transmitting
// since the start of the simulation.
func (l *Link) Utilization() float64 {
	now := l.Sch.Now()
	if now == 0 {
		return 0
	}
	if l.fluidOn {
		// Bring idle-time fluid drain up to date before reading.
		l.settleFluid(now)
	}
	return l.busyTime.Seconds() / now.Seconds()
}
