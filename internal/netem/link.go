package netem

import "nimbus/internal/sim"

// Link models the bottleneck: it drains its Queue at the capacity its
// RateSchedule prescribes and hands completed packets to Deliver. It also
// keeps the counters the experiments report (delivered bytes, drops, busy
// time for utilization).
//
// Rate changes are applied as scheduler events: the link registers one
// event per schedule transition, and a packet in flight across a
// transition finishes exactly when the integral of the rate over its
// transmission interval reaches its size — serialization, busy-time, and
// utilization accounting stay exact across transitions. A constant-rate
// link (the common case) keeps the allocation-free fast path: pooled
// no-handle completion events and no per-packet state beyond the slot.
type Link struct {
	Sch *sim.Scheduler
	// Name labels the link as a hop of a topology ("bn", "access", ...).
	Name string
	// Schedule is the capacity signal. Immutable after construction.
	Schedule *RateSchedule
	Q        Queue

	// Deliver is called when a packet finishes transmission.
	Deliver func(p *Packet, now sim.Time)
	// OnDrop, if set, is called for packets rejected by the queue.
	OnDrop func(p *Packet, now sim.Time)

	rateBps float64 // current drain rate
	varying bool    // whether Schedule has transitions

	busy bool
	// In-flight transmission state: the link serializes one packet at a
	// time, so a single slot plus a reusable completion callback avoids a
	// closure allocation per packet on the hottest path in the simulator.
	txPkt  *Packet
	txTime sim.Time // constant path: serialization time of txPkt
	txDone func()
	// Varying path: remaining bits of txPkt and when they were last
	// drained; the completion timer is cancellable because a rate change
	// mid-packet reschedules it.
	txBitsLeft float64
	txUpdated  sim.Time
	txTimer    *sim.Timer
	txVarDone  func()
	rateChange func()

	// enterFn is the topology's prebound entry callback ("send the event's
	// packet on this link"): one per link, so inter-hop forwarding rides
	// pooled AfterArg events with no per-packet closures.
	enterFn func(arg any)

	DeliveredPackets uint64
	DeliveredBytes   uint64
	DroppedPackets   uint64
	busyTime         sim.Time
	lastStart        sim.Time
	qdelaySum        sim.Time
	dequeues         uint64
}

// NewLink returns a constant-rate link draining q at rateBps.
func NewLink(sch *sim.Scheduler, rateBps float64, q Queue) *Link {
	return NewLinkSchedule(sch, ConstantRate(rateBps), q)
}

// NewLinkSchedule returns a link whose capacity follows the schedule.
func NewLinkSchedule(sch *sim.Scheduler, schedule *RateSchedule, q Queue) *Link {
	l := &Link{
		Sch:      sch,
		Schedule: schedule,
		Q:        q,
		rateBps:  schedule.RateAt(sch.Now()),
		varying:  !schedule.Constant(),
	}
	l.txDone = l.finishTx
	if l.varying {
		l.txVarDone = l.finishVarTx
		l.rateChange = l.applyRateChange
		if next, ok := schedule.NextChange(sch.Now()); ok {
			sch.AtFunc(next, l.rateChange)
		}
	}
	return l
}

// Rate returns the link's current drain rate in bits/s.
func (l *Link) Rate() float64 { return l.rateBps }

// Varying reports whether the link's capacity changes over time.
func (l *Link) Varying() bool { return l.varying }

// TxTime returns the serialization time of a packet of n bytes at the
// current rate (an instantaneous view; a varying link may revise it).
func (l *Link) TxTime(n int) sim.Time {
	return sim.FromSeconds(float64(n) * 8 / l.rateBps)
}

// Send enqueues p, starting transmission if the link is idle.
func (l *Link) Send(p *Packet) {
	now := l.Sch.Now()
	if !l.Q.Enqueue(p, now) {
		l.DroppedPackets++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		return
	}
	if !l.busy {
		l.startNext()
	}
}

func (l *Link) startNext() {
	now := l.Sch.Now()
	p := l.Q.Dequeue(now)
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.lastStart = now
	l.qdelaySum += now - p.EnqueuedAt
	l.dequeues++
	l.txPkt = p
	if !l.varying {
		tx := l.TxTime(p.Size)
		l.txTime = tx
		l.Sch.AfterFunc(tx, l.txDone)
		return
	}
	l.txBitsLeft = float64(p.Size) * 8
	l.txUpdated = now
	l.armTx()
}

// armTx schedules the in-flight packet's completion at the current rate.
// At rate zero (an outage) no completion is scheduled; the pending rate
// change event re-arms when capacity returns. Rearm recycles the one
// completion-timer struct, so a varying link stays allocation-free per
// packet like the constant-rate fast path.
func (l *Link) armTx() {
	if l.rateBps <= 0 {
		return
	}
	at := l.Sch.Now() + sim.FromSeconds(l.txBitsLeft/l.rateBps)
	l.txTimer = l.Sch.Rearm(l.txTimer, at, l.txVarDone)
}

// applyRateChange is the scheduler event at every schedule transition: it
// settles the in-flight packet's drained bits at the old rate, switches
// to the new rate, reschedules the packet's completion, and registers the
// next transition.
func (l *Link) applyRateChange() {
	now := l.Sch.Now()
	newRate := l.Schedule.RateAt(now)
	if newRate != l.rateBps {
		if l.txPkt != nil {
			l.txBitsLeft -= l.rateBps * (now - l.txUpdated).Seconds()
			if l.txBitsLeft < 0 {
				l.txBitsLeft = 0
			}
			l.txUpdated = now
			l.txTimer.Cancel()
			l.rateBps = newRate
			l.armTx()
		} else {
			l.rateBps = newRate
		}
	}
	if next, ok := l.Schedule.NextChange(now); ok {
		l.Sch.AtFunc(next, l.rateChange)
	}
}

func (l *Link) finishTx() {
	p, tx := l.txPkt, l.txTime
	l.txPkt = nil
	l.busyTime += tx
	l.DeliveredPackets++
	l.DeliveredBytes += uint64(p.Size)
	if l.Deliver != nil {
		l.Deliver(p, l.Sch.Now())
	}
	l.startNext()
}

func (l *Link) finishVarTx() {
	now := l.Sch.Now()
	p := l.txPkt
	l.txPkt = nil
	// Busy time is the packet's wall occupancy of the link, including any
	// stall while the rate was zero, so Utilization stays <= 1.
	l.busyTime += now - l.lastStart
	l.DeliveredPackets++
	l.DeliveredBytes += uint64(p.Size)
	if l.Deliver != nil {
		l.Deliver(p, now)
	}
	l.startNext()
}

// Busy reports whether a packet is currently being transmitted.
func (l *Link) Busy() bool { return l.busy }

// MeanQueueDelay returns the mean per-packet queueing delay at this hop
// (time between enqueue and the start of transmission), the per-hop
// decomposition of a route's end-to-end queueing delay.
func (l *Link) MeanQueueDelay() sim.Time {
	if l.dequeues == 0 {
		return 0
	}
	return l.qdelaySum / sim.Time(l.dequeues)
}

// Utilization returns the fraction of time the link has been transmitting
// since the start of the simulation.
func (l *Link) Utilization() float64 {
	now := l.Sch.Now()
	if now == 0 {
		return 0
	}
	return l.busyTime.Seconds() / now.Seconds()
}
