package netem

import "nimbus/internal/sim"

// Link models the bottleneck: it drains its Queue at RateBps and hands
// completed packets to Deliver. It also keeps the counters the experiments
// report (delivered bytes, drops, busy time for utilization).
type Link struct {
	Sch     *sim.Scheduler
	RateBps float64 // bits per second
	Q       Queue

	// Deliver is called when a packet finishes transmission.
	Deliver func(p *Packet, now sim.Time)
	// OnDrop, if set, is called for packets rejected by the queue.
	OnDrop func(p *Packet, now sim.Time)

	busy bool
	// In-flight transmission state: the link serializes one packet at a
	// time, so a single slot plus a reusable completion callback avoids a
	// closure allocation per packet on the hottest path in the simulator.
	txPkt  *Packet
	txTime sim.Time
	txDone func()

	DeliveredPackets uint64
	DeliveredBytes   uint64
	DroppedPackets   uint64
	busyTime         sim.Time
	lastStart        sim.Time
}

// NewLink returns a link draining q at rateBps.
func NewLink(sch *sim.Scheduler, rateBps float64, q Queue) *Link {
	l := &Link{Sch: sch, RateBps: rateBps, Q: q}
	l.txDone = l.finishTx
	return l
}

// TxTime returns the serialization time of a packet of n bytes.
func (l *Link) TxTime(n int) sim.Time {
	return sim.FromSeconds(float64(n) * 8 / l.RateBps)
}

// Send enqueues p, starting transmission if the link is idle.
func (l *Link) Send(p *Packet) {
	now := l.Sch.Now()
	if !l.Q.Enqueue(p, now) {
		l.DroppedPackets++
		if l.OnDrop != nil {
			l.OnDrop(p, now)
		}
		return
	}
	if !l.busy {
		l.startNext()
	}
}

func (l *Link) startNext() {
	now := l.Sch.Now()
	p := l.Q.Dequeue(now)
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	l.lastStart = now
	tx := l.TxTime(p.Size)
	l.txPkt = p
	l.txTime = tx
	l.Sch.AfterFunc(tx, l.txDone)
}

func (l *Link) finishTx() {
	p, tx := l.txPkt, l.txTime
	l.txPkt = nil
	l.busyTime += tx
	l.DeliveredPackets++
	l.DeliveredBytes += uint64(p.Size)
	if l.Deliver != nil {
		l.Deliver(p, l.Sch.Now())
	}
	l.startNext()
}

// Busy reports whether a packet is currently being transmitted.
func (l *Link) Busy() bool { return l.busy }

// Utilization returns the fraction of time the link has been transmitting
// since the start of the simulation.
func (l *Link) Utilization() float64 {
	now := l.Sch.Now()
	if now == 0 {
		return 0
	}
	return l.busyTime.Seconds() / now.Seconds()
}
