// Package netem emulates the paper's network model (Fig. 2): senders and
// cross-traffic sources share a single bottleneck link of rate µ with a
// finite buffer, and each flow has its own propagation delays. It is the
// stand-in for the Mahimahi emulator used in the paper: a packet-level
// discrete-event model with drop-tail, PIE and CoDel queues.
package netem

import "nimbus/internal/sim"

// FlowID identifies a flow at the bottleneck.
type FlowID uint32

// Packet is a data packet traversing the bottleneck. ACKs are not modelled
// as packets: the reverse path is uncongested (as in the paper's model), so
// ACK delivery is a scheduled event with the flow's reverse propagation
// delay.
type Packet struct {
	Flow FlowID
	Seq  uint64
	Size int // bytes, including headers

	SentAt     sim.Time // when the sender emitted it
	EnqueuedAt sim.Time // when it entered the bottleneck queue
	QueueDelay sim.Time // time spent queued (excludes transmission), set at dequeue

	// Raw marks cross-traffic packets injected without a transport
	// (CBR/Poisson sources). They are counted at the receiver side but
	// generate no ACKs.
	Raw bool
}

// DefaultMSS is the segment size used throughout, matching a typical
// 1500-byte Ethernet MTU minus headers plus our accounting convention: we
// count 1500 bytes on the wire per full segment.
const DefaultMSS = 1500
