// Package netem emulates the paper's network model and its
// generalizations: flows and cross-traffic sources traverse a Topology of
// named nodes and directed Links (each with its own queue, AQM, and
// capacity schedule) along per-flow Routes. The paper's Fig. 2
// single-bottleneck network is the trivial one-hop topology. It is the
// stand-in for the Mahimahi emulator used in the paper: a packet-level
// discrete-event model with drop-tail, PIE and CoDel queues.
package netem

import "nimbus/internal/sim"

// FlowID identifies a flow in the topology.
type FlowID uint32

// Packet is a data packet traversing the topology. On routes with an
// ideal (pure-delay) reverse path, ACKs are not modelled as packets — ACK
// delivery is a scheduled event with the flow's reverse propagation
// delay, exactly the paper's model. On routes whose ACK direction crosses
// links, the ACK state rides through those links' queues as a small
// packet (AckSize bytes), so the reverse path can be congested.
type Packet struct {
	Flow FlowID
	Seq  uint64
	Size int // bytes, including headers

	SentAt     sim.Time // when the sender emitted it
	EnqueuedAt sim.Time // when it entered the current hop's queue
	QueueDelay sim.Time // total time spent queued across hops (excludes transmission)

	// Raw marks cross-traffic packets injected without a transport
	// (CBR/Poisson sources). They are counted at the receiver side but
	// generate no ACKs.
	Raw bool

	// fluidMark is the link-local FIFO position of the packet relative
	// to the fluid cross-traffic process: the link's cumulative
	// delivered-plus-standing fluid bytes when the packet enqueued
	// (see Link.flushFluidAhead). Stamped per hop by Send on fluid
	// links; meaningless (and unread) elsewhere.
	fluidMark float64

	// Routing state, owned by the topology: the route the packet follows,
	// its position on it, and the direction (data vs. ACK). ACK packets
	// carry their sender-side delivery callback so the reverse traversal
	// stays allocation-free.
	route  *Route
	hop    int16
	rev    bool
	ackFn  func(arg any)
	ackArg any
}

// AckSize is the wire size of an ACK packet on congested reverse paths
// (a TCP ACK with options, rounded up).
const AckSize = 64

// DefaultMSS is the segment size used throughout, matching a typical
// 1500-byte Ethernet MTU minus headers plus our accounting convention: we
// count 1500 bytes on the wire per full segment.
const DefaultMSS = 1500
