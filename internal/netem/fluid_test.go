package netem

import (
	"math"
	"testing"

	"nimbus/internal/sim"
)

// runFluidScenario drives the burst_test.go arrival pattern through a
// 12 Mbit/s link, letting the caller configure the link (enable fluid,
// add rate) before traffic starts. Reuses delivery/burstRun/
// requireSameRun so fluid equivalence failures report the first
// diverging observable.
func runFluidScenario(t *testing.T, mkQueue func() Queue, configure func(l *Link)) burstRun {
	t.Helper()
	sch := sim.NewScheduler()
	l := NewLink(sch, 12e6, mkQueue())
	if configure != nil {
		configure(l)
	}
	var r burstRun
	l.Deliver = func(p *Packet, now sim.Time) {
		r.dels = append(r.dels, delivery{p.Seq, now, p.QueueDelay})
	}
	l.OnDrop = func(p *Packet, now sim.Time) {
		r.drops = append(r.drops, p.Seq)
	}
	seq := uint64(0)
	send := func(at sim.Time, n, size int) {
		for i := 0; i < n; i++ {
			p := &Packet{Seq: seq, Size: size}
			seq++
			sch.At(at, func() { l.Send(p) })
		}
	}
	send(0, 8, 1500)
	for i := 0; i < 30; i++ {
		send(sim.Time(i)*730*sim.Microsecond, 1, 1500)
	}
	send(40*sim.Millisecond, 10, 1500)
	for i := 0; i < 12; i++ {
		send(55*sim.Millisecond+sim.Time(i)*300*sim.Microsecond, 1, 500)
	}
	sch.RunUntil(100 * sim.Millisecond)

	r.executed = sch.Executed
	r.delivered = l.DeliveredPackets
	r.bytes = l.DeliveredBytes
	r.dropped = l.DroppedPackets
	r.meanQD = l.MeanQueueDelay()
	r.util = l.Utilization()
	r.queued = l.Q.BytesQueued()
	return r
}

// TestFluidDisabledByteIdentical pins the flag-off contract: a link that
// never enables fluid behaves event-for-event like the seed — the
// admission hook left nil, a hook pinned at zero extra occupancy, and a
// fluid-enabled link carrying zero rate must all produce the identical
// run (same deliveries, delays, drops, counters, and executed event
// count), so compiling the fluid machinery in changes nothing until a
// rate actually flows.
func TestFluidDisabledByteIdentical(t *testing.T) {
	dt := func() Queue { return NewDropTail(6000) }
	base := runFluidScenario(t, dt, nil)
	if len(base.drops) == 0 {
		t.Fatal("scenario produced no drops; it no longer exercises admission under load")
	}
	t.Run("zero-extra-hook", func(t *testing.T) {
		got := runFluidScenario(t, dt, func(l *Link) {
			l.Q.(FluidAware).SetExtraOccupancy(func() int { return 0 })
		})
		requireSameRun(t, base, got)
		if got.executed != base.executed {
			t.Fatalf("executed %d events with a zero hook, %d without", got.executed, base.executed)
		}
	})
	t.Run("fluid-on-zero-rate", func(t *testing.T) {
		got := runFluidScenario(t, dt, func(l *Link) { l.EnableFluid(6000) })
		requireSameRun(t, base, got)
		if got.executed != base.executed {
			t.Fatalf("executed %d events with zero-rate fluid, %d without", got.executed, base.executed)
		}
	})
}

// TestFluidBurstMutuallyExclusive pins the restaging conflict guard:
// enabling fluid tears down an armed burst queue, and SetBurst after
// EnableFluid refuses to bind one.
func TestFluidBurstMutuallyExclusive(t *testing.T) {
	l := NewLink(sim.NewScheduler(), 12e6, NewDropTail(6000))
	l.SetBurst(16)
	if l.bq == nil {
		t.Fatal("SetBurst did not bind a burst queue on a plain drop-tail link")
	}
	l.EnableFluid(6000)
	if l.bq != nil {
		t.Fatal("EnableFluid left the burst queue bound")
	}
	l.SetBurst(16)
	if l.bq != nil {
		t.Fatal("SetBurst bound a burst queue on a fluid link")
	}
}

// fluidConservation asserts the integrator's bookkeeping identity:
// every byte that arrived is delivered, dropped, or still standing.
func fluidConservation(t *testing.T, l *Link, arrivedBytes float64) {
	t.Helper()
	delivered, dropped := l.FluidStats()
	total := delivered + dropped + l.FluidBacklog()
	if math.Abs(total-arrivedBytes) > 1e-6*arrivedBytes+1e-9 {
		t.Fatalf("conservation: delivered %.1f + dropped %.1f + backlog %.1f = %.1f, want %.1f arrived",
			delivered, dropped, l.FluidBacklog(), total, arrivedBytes)
	}
}

// TestFluidCBRUnderload checks the analytic drain on an otherwise idle
// link: a 24 Mbit/s fluid load on a 96 Mbit/s link delivers exactly its
// arrivals, drops nothing, leaves no standing backlog, and charges the
// link 25% busy time.
func TestFluidCBRUnderload(t *testing.T) {
	sch := sim.NewScheduler()
	l := NewLink(sch, 96e6, NewDropTail(1<<20))
	l.EnableFluid(1 << 20)
	l.AddFluidRate(24e6)
	dur := 10 * sim.Second
	sch.RunUntil(dur)
	arrived := 24e6 / 8 * dur.Seconds()
	fluidConservation(t, l, arrived)
	delivered, dropped := l.FluidStats()
	if math.Abs(delivered-arrived) > 1 {
		t.Fatalf("delivered %.0f fluid bytes, want %.0f", delivered, arrived)
	}
	if dropped != 0 {
		t.Fatalf("dropped %.0f fluid bytes on an underloaded link", dropped)
	}
	if u := l.Utilization(); math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

// TestFluidOverloadDropsAndAdmission overloads the link (120 Mbit/s of
// fluid on 96): the backlog must cap at the buffer, the excess count as
// dropped fluid, delivery run at capacity, and a foreground packet must
// be refused admission because the fluid backlog fills the buffer.
func TestFluidOverloadDropsAndAdmission(t *testing.T) {
	sch := sim.NewScheduler()
	const capBytes = 60000
	l := NewLink(sch, 96e6, NewDropTail(capBytes))
	l.EnableFluid(capBytes)
	l.AddFluidRate(120e6)
	dur := 10 * sim.Second
	sch.RunUntil(dur)
	arrived := 120e6 / 8 * dur.Seconds()
	fluidConservation(t, l, arrived)
	if bl := l.FluidBacklog(); math.Abs(bl-capBytes) > 1 {
		t.Fatalf("backlog = %.0f, want capped at %d", bl, capBytes)
	}
	delivered, dropped := l.FluidStats()
	// Capacity-bound delivery: 96 Mbit/s for the whole run (modulo the
	// instant the buffer first filled).
	wantDelivered := 96e6 / 8 * dur.Seconds()
	if math.Abs(delivered-wantDelivered) > capBytes {
		t.Fatalf("delivered %.0f fluid bytes, want ~%.0f (capacity-bound)", delivered, wantDelivered)
	}
	if dropped <= 0 {
		t.Fatal("overload dropped no fluid")
	}
	if u := l.Utilization(); math.Abs(u-1) > 1e-3 {
		t.Fatalf("utilization = %v, want ~1 under overload", u)
	}
	// The standing backlog fills the buffer, so foreground admission
	// must fail against the combined occupancy.
	var droppedPkt bool
	l.OnDrop = func(p *Packet, now sim.Time) { droppedPkt = true }
	l.Send(&Packet{Seq: 1, Size: 1500})
	if !droppedPkt {
		t.Fatal("foreground packet admitted past a full fluid backlog")
	}
}

// TestFluidFlushAhead pins the FIFO serialization semantics: only
// fluid that arrived before a foreground packet enqueued serializes
// ahead of it (extending its queueing delay and completion time by
// exactly those bytes' transmission time); fluid arriving while the
// packet waits stays behind it, exactly as later cross packets would.
func TestFluidFlushAhead(t *testing.T) {
	sch := sim.NewScheduler()
	// 12 Mbit/s: a 1500 B packet serializes in exactly 1 ms, and the
	// matched fluid rate accumulates 1500 B per busy ms.
	l := NewLink(sch, 12e6, NewDropTail(1<<20))
	l.EnableFluid(1 << 20)
	l.AddFluidRate(12e6)
	var dels []delivery
	l.Deliver = func(p *Packet, now sim.Time) {
		dels = append(dels, delivery{p.Seq, now, p.QueueDelay})
	}
	sch.At(0, func() {
		l.Send(&Packet{Seq: 0, Size: 1500})
		l.Send(&Packet{Seq: 1, Size: 1500})
	})
	sch.At(500*sim.Microsecond, func() {
		l.Send(&Packet{Seq: 2, Size: 1500})
	})
	sch.RunUntil(10 * sim.Millisecond)
	if len(dels) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(dels))
	}
	// Packet 0 starts on an idle link with no standing fluid: done at
	// 1 ms, no queueing delay.
	if dels[0].at != sim.Millisecond || dels[0].qd != 0 {
		t.Fatalf("packet 0 delivered at %v (qd %v), want 1ms (qd 0)", dels[0].at, dels[0].qd)
	}
	// Packet 1 enqueued at t=0 before any fluid arrived: the 1500 B of
	// fluid accumulated during packet 0's transmission is all behind it,
	// so it waits only for packet 0 — done at 2 ms, 1 ms of delay.
	if dels[1].at != 2*sim.Millisecond || dels[1].qd != sim.Millisecond {
		t.Fatalf("packet 1 delivered at %v (qd %v), want 2ms (qd 1ms): fluid arriving after enqueue must not delay it",
			dels[1].at, dels[1].qd)
	}
	// Packet 2 enqueued at t=0.5 ms, when 750 B of fluid stood in the
	// queue: after packet 1 finishes at 2 ms those 750 B (0.5 ms) flush
	// ahead of it — done at 3.5 ms with 2 ms of delay (1.5 ms waiting
	// for packets 0 and 1, 0.5 ms behind its fluid).
	if dels[2].at != 3500*sim.Microsecond {
		t.Fatalf("packet 2 delivered at %v, want 3.5ms (2ms wait + 0.5ms fluid + 1ms tx)", dels[2].at)
	}
	if dels[2].qd != 2*sim.Millisecond {
		t.Fatalf("packet 2 QueueDelay = %v, want 2ms", dels[2].qd)
	}
}

// TestFluidVaryingLink runs fluid across a rate step and an outage: the
// integration must hold the conservation identity exactly, accumulate
// backlog while capacity is zero, and drain it when capacity returns.
func TestFluidVaryingLink(t *testing.T) {
	sched, err := NewRateSchedule([]RatePoint{
		{At: 0, Bps: 12e6},
		{At: 10 * sim.Millisecond, Bps: 0},
		{At: 20 * sim.Millisecond, Bps: 24e6},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sch := sim.NewScheduler()
	l := NewLinkSchedule(sch, sched, NewDropTail(1<<20))
	l.EnableFluid(1 << 20)
	l.AddFluidRate(6e6)

	sch.RunUntil(15 * sim.Millisecond)
	// 5 ms into the outage: 10 ms drained fully (6 < 12 Mbit/s), then
	// 5 ms accumulated at 6 Mbit/s = 3750 B standing.
	if bl := l.FluidBacklog(); math.Abs(bl-3750) > 1 {
		t.Fatalf("mid-outage backlog = %.0f, want 3750", bl)
	}
	sch.RunUntil(100 * sim.Millisecond)
	arrived := 6e6 / 8 * (100 * sim.Millisecond).Seconds()
	fluidConservation(t, l, arrived)
	if bl := l.FluidBacklog(); bl != 0 {
		t.Fatalf("backlog = %.0f after recovery, want 0 (24 Mbit/s drains 6)", bl)
	}
	if _, dropped := l.FluidStats(); dropped != 0 {
		t.Fatalf("dropped %.0f fluid bytes with a huge buffer", dropped)
	}
}

// TestFluidAllocFree pins the optimization's point: a link carrying
// both foreground packets and a fluid load in steady state allocates
// nothing — settlement and flush-ahead are pure arithmetic on link
// fields, and the completion events stay pooled.
func TestFluidAllocFree(t *testing.T) {
	sch := sim.NewScheduler()
	l := NewLink(sch, 96e6, NewDropTail(1<<20))
	l.EnableFluid(1 << 20)
	l.AddFluidRate(48e6)
	l.Deliver = func(p *Packet, now sim.Time) { l.Send(p) }
	for i := 0; i < 32; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	end := 50 * sim.Millisecond
	sch.RunUntil(end)
	allocs := testing.AllocsPerRun(50, func() {
		end += 10 * sim.Millisecond
		sch.RunUntil(end)
	})
	if allocs != 0 {
		t.Fatalf("steady-state fluid forwarding allocates %v per run, want 0", allocs)
	}
}

// BenchmarkFluidLink measures the saturated foreground event loop with
// a 48 Mbit/s fluid load settling on every dequeue — the hot path the
// analytic integrator must keep allocation-free. Compare with
// BenchmarkLinkPerPacket for the fluid term's per-event overhead; both
// are gated in scripts/check_bench.sh.
func BenchmarkFluidLink(b *testing.B) {
	sch := sim.NewScheduler()
	l := NewLink(sch, 96e6, NewDropTail(1<<20))
	l.EnableFluid(1 << 20)
	l.AddFluidRate(48e6)
	l.Deliver = func(p *Packet, now sim.Time) { l.Send(p) }
	for i := 0; i < 32; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	end := 10 * sim.Millisecond
	sch.RunUntil(end)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end += 64 * 125 * sim.Microsecond
		sch.RunUntil(end)
	}
	if l.DeliveredPackets == 0 {
		b.Fatal("no packets delivered")
	}
}
