package netem

import (
	"math"

	"nimbus/internal/sim"
)

// CoDel implements the Controlled Delay AQM (RFC 8289). The paper's AQM
// experiments use PIE; CoDel is provided as an additional discipline for
// robustness sweeps beyond the paper. Drops happen at dequeue when the
// sojourn time has stayed above Target for at least Interval.
type CoDel struct {
	Target   sim.Time
	Interval sim.Time
	Capacity int

	q fifo

	firstAbove sim.Time // when sojourn first exceeded Target plus Interval
	dropping   bool
	dropNext   sim.Time
	count      int
	lastCount  int
	Drops      uint64
}

// NewCoDel returns a CoDel queue with the standard 5 ms / 100 ms knobs.
func NewCoDel(capacityBytes int) *CoDel {
	return &CoDel{
		Target:   5 * sim.Millisecond,
		Interval: 100 * sim.Millisecond,
		Capacity: capacityBytes,
	}
}

// Enqueue applies only the hard byte capacity; CoDel drops at dequeue.
func (c *CoDel) Enqueue(p *Packet, now sim.Time) bool {
	if c.q.queued()+p.Size > c.Capacity {
		c.Drops++
		return false
	}
	p.EnqueuedAt = now
	c.q.push(p)
	return true
}

func (c *CoDel) controlLaw(t sim.Time) sim.Time {
	return t + sim.Time(float64(c.Interval)/math.Sqrt(float64(c.count)))
}

// doDequeue pops one packet and reports whether the drop state should
// advance (sojourn continuously above Target for at least Interval).
func (c *CoDel) doDequeue(now sim.Time) (p *Packet, okToDrop bool) {
	p = c.q.pop()
	if p == nil {
		c.firstAbove = 0
		return nil, false
	}
	// The control law acts on this hop's sojourn time; the packet's
	// QueueDelay accumulates it into the route total, like DropTail.
	sojourn := now - p.EnqueuedAt
	p.QueueDelay += sojourn
	if sojourn < c.Target || c.q.queued() <= DefaultMSS {
		c.firstAbove = 0
		return p, false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.Interval
		return p, false
	}
	return p, now >= c.firstAbove
}

// Dequeue implements the RFC 8289 state machine.
func (c *CoDel) Dequeue(now sim.Time) *Packet {
	p, okToDrop := c.doDequeue(now)
	if p == nil {
		c.dropping = false
		return nil
	}
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return p
		}
		for now >= c.dropNext && c.dropping {
			c.Drops++
			c.count++
			p, okToDrop = c.doDequeue(now)
			if p == nil {
				c.dropping = false
				return nil
			}
			if !okToDrop {
				c.dropping = false
				return p
			}
			c.dropNext = c.controlLaw(c.dropNext)
		}
		return p
	}
	if okToDrop {
		// Enter dropping state: drop this packet, deliver the next.
		c.Drops++
		c.dropping = true
		if c.count > 2 && now-c.dropNext < 8*c.Interval {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		p2, _ := c.doDequeue(now)
		if p2 == nil {
			c.dropping = false
			return nil
		}
		return p2
	}
	return p
}

// BytesQueued returns occupancy in bytes.
func (c *CoDel) BytesQueued() int { return c.q.queued() }

// Len returns the number of queued packets.
func (c *CoDel) Len() int { return c.q.len() }

// DropCount returns the total drops (control-law dequeue drops plus
// hard-cap refusals).
func (c *CoDel) DropCount() uint64 { return c.Drops }
