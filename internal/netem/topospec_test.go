package netem

import (
	"strings"
	"testing"
)

// TestTopoSpecPresets: every registered preset parses, validates, and is
// its own canonical form; the single preset canonicalizes to "".
func TestTopoSpecPresets(t *testing.T) {
	names := TopologyNames()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 presets, got %v", names)
	}
	for _, name := range names {
		ts, err := ParseTopology(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if ts.String() != name {
			t.Errorf("preset %s renders as %q", name, ts.String())
		}
		if ts.LinkByName(ts.Bottleneck) == nil {
			t.Errorf("preset %s: bottleneck %q not a link", name, ts.Bottleneck)
		}
		if TopologyDoc(name) == "" {
			t.Errorf("preset %s has no doc", name)
		}
	}
	for _, alias := range []string{"", "single", "SINGLE"} {
		c, err := CanonicalTopology(alias)
		if err != nil || c != "" {
			t.Errorf("CanonicalTopology(%q) = %q, %v; want \"\"", alias, c, err)
		}
	}
}

// TestTopoSpecChainRoundTrip: chain specs parse to the expected structure
// and round-trip through their canonical form.
func TestTopoSpecChainRoundTrip(t *testing.T) {
	in := "access( 100mbps , 5ms )->bn(droptail,buf=50ms)"
	ts, err := ParseTopology(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Links) != 2 || ts.Links[0].Name != "access" || ts.Links[1].Name != "bn" {
		t.Fatalf("links: %+v", ts.Links)
	}
	if ts.Links[0].RateMbps != 100 || ts.Links[0].DelayMs != 5 {
		t.Fatalf("access params: %+v", ts.Links[0])
	}
	if ts.Links[1].AQM != "droptail" || ts.Links[1].BufferMs != 50 {
		t.Fatalf("bn params: %+v", ts.Links[1])
	}
	// bn has no explicit rate, so it is the bottleneck.
	if ts.Bottleneck != "bn" {
		t.Fatalf("bottleneck %q, want bn", ts.Bottleneck)
	}
	canon := ts.String()
	ts2, err := ParseTopology(canon)
	if err != nil {
		t.Fatalf("canonical %q does not reparse: %v", canon, err)
	}
	if ts2.String() != canon {
		t.Fatalf("canonical form unstable: %q -> %q", canon, ts2.String())
	}
	// One default route spanning the chain.
	if len(ts.Routes) != 1 || len(ts.Routes[0].Fwd) != 2 || ts.Routes[0].Name != "" {
		t.Fatalf("routes: %+v", ts.Routes)
	}
}

// TestTopoSpecScaleAndPattern: x-scales resolve against the nominal rate
// and pattern params validate at parse time.
func TestTopoSpecScaleAndPattern(t *testing.T) {
	ts, err := ParseTopology("access(x4,5ms)->bn(pattern=step:6:24:2000)")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Links[0].ResolveRate(48e6); got != 192e6 {
		t.Fatalf("x4 of 48e6 = %g", got)
	}
	if got := ts.Links[1].ResolveRate(48e6); got != 48e6 {
		t.Fatalf("inherit = %g", got)
	}
	if ts.Links[1].Pattern != "step:6:24:2000" {
		t.Fatalf("pattern: %q", ts.Links[1].Pattern)
	}
	// All-explicit-rate chain: the lowest rate wins the µ link once the
	// nominal rate is known (the static Bottleneck only anchors
	// validation).
	ts, err = ParseTopology("a(100mbps)->b(20mbps)->c(50mbps)")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.BottleneckAt(48e6); got != "b" {
		t.Fatalf("bottleneck %q, want b (lowest rate)", got)
	}
	// Mixed scaled and absolute rates resolve against the actual nominal:
	// x4 of 24 Mbit/s is 96, so the 48 Mbit/s link is the bottleneck —
	// and at a 200 Mbit/s nominal the scaled link still isn't (x4 = 800).
	ts, err = ParseTopology("access(x4,5ms)->bn(48mbps)")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.BottleneckAt(24e6); got != "bn" {
		t.Fatalf("mixed-rate bottleneck at 24 Mbit/s: %q, want bn", got)
	}
	if got := ts.BottleneckAt(10e6); got != "access" {
		t.Fatalf("mixed-rate bottleneck at 10 Mbit/s: %q, want access (x4 = 40 < 48)", got)
	}
	// Presets keep their declared bottleneck even when another link is
	// slower (rev-congested's reverse link carries ACKs, not data).
	ts, err = ParseTopology("rev-congested")
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.BottleneckAt(48e6); got != "bn" {
		t.Fatalf("rev-congested bottleneck: %q, want the declared bn", got)
	}
}

// TestTopoSpecSingleEquivalents: a bare one-link chain with no parameters
// is the single topology.
func TestTopoSpecSingleEquivalents(t *testing.T) {
	for _, in := range []string{"bn()", "x()"} {
		ts, err := ParseTopology(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if !ts.Single() {
			t.Errorf("%q should canonicalize to the single preset, got %q", in, ts.String())
		}
	}
	// But a one-link chain with parameters is its own topology.
	ts, err := ParseTopology("bn(pie)")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Single() {
		t.Error("bn(pie) should not collapse to the single preset")
	}
}

// TestTopoSpecErrors: malformed specs fail with useful messages.
func TestTopoSpecErrors(t *testing.T) {
	cases := map[string]string{
		"warp-core":                       "unknown topology",
		"a(12mbps)->a(6mbps)":             "duplicate link",
		"a(bogus)":                        "unknown parameter",
		"a(-5ms)":                         "bad delay",
		"a(x0)":                           "bad rate scale",
		"a(10mbps,x2)":                    "both an absolute rate and a scale",
		"a(pattern=step:6)":               "want 3 args",
		"a(10mbps)->b(":                   "missing closing parenthesis",
		strings.Repeat("A", 3) + "(10ms)": "", // uppercase names are lowered, no error
	}
	for in, want := range cases {
		_, err := ParseTopology(in)
		if want == "" {
			if err != nil {
				t.Errorf("%q: unexpected error %v", in, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: error %v, want containing %q", in, err, want)
		}
	}
}

// TestTopoSpecPresetIsolation: mutating a parsed preset (LinkByName
// returns pointers into the spec) must not corrupt the registry.
func TestTopoSpecPresetIsolation(t *testing.T) {
	ts, err := ParseTopology("parking-lot")
	if err != nil {
		t.Fatal(err)
	}
	ts.LinkByName("hop2").AQM = "pie"
	ts.Routes[0].Fwd[0] = "mutated"
	again, err := ParseTopology("parking-lot")
	if err != nil {
		t.Fatal(err)
	}
	if again.LinkByName("hop2").AQM != "" {
		t.Fatal("mutating a parsed preset leaked into the registry (Links)")
	}
	if again.Routes[0].Fwd[0] != "hop1" {
		t.Fatal("mutating a parsed preset leaked into the registry (Routes)")
	}
}

// TestTopoSpecNodes: node names derive from the links.
func TestTopoSpecNodes(t *testing.T) {
	ts, err := ParseTopology("parking-lot")
	if err != nil {
		t.Fatal(err)
	}
	nodes := ts.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("parking-lot nodes: %v", nodes)
	}
	ts, err = ParseTopology("a(10mbps)->b(20mbps)")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(ts.Nodes(), ","); got != "n0,n1,n2" {
		t.Fatalf("chain nodes: %s", got)
	}
}

// TestTopoSpecBurst: the burst= link parameter parses, round-trips
// through the canonical form, and rejects out-of-range budgets.
func TestTopoSpecBurst(t *testing.T) {
	ts, err := ParseTopology("access(100mbps,5ms)->bn(48mbps,burst=16)")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Links[0].Burst != 0 || ts.Links[1].Burst != 16 {
		t.Fatalf("burst budgets: %+v", ts.Links)
	}
	canon := ts.String()
	if !strings.Contains(canon, "burst=16") {
		t.Fatalf("canonical form %q drops burst=", canon)
	}
	ts2, err := ParseTopology(canon)
	if err != nil {
		t.Fatal(err)
	}
	if ts2.String() != canon {
		t.Fatalf("round trip: %q -> %q", canon, ts2.String())
	}
	for _, bad := range []string{"bn(burst=0)", "bn(burst=-2)", "bn(burst=65)", "bn(burst=x)"} {
		if _, err := ParseTopology(bad); err == nil || !strings.Contains(err.Error(), "burst") {
			t.Errorf("%q: error %v, want a burst budget error", bad, err)
		}
	}
}
