package netem

import (
	"nimbus/internal/sim"
)

// PIE implements the Proportional Integral controller Enhanced AQM
// (RFC 8033) used in the paper's AQM robustness experiments (§8.2,
// App. E.2). The drop probability is updated every TUpdate from the
// estimated queueing delay; packets are dropped probabilistically on
// enqueue. A hard byte capacity still applies (tail drop beyond it).
type PIE struct {
	Target   sim.Time // target queueing delay
	TUpdate  sim.Time // update interval
	Alpha    float64  // proportional gain (per update, on delay in seconds)
	Beta     float64  // derivative gain
	Capacity int      // hard byte limit
	RateBps  float64  // drain rate used for delay estimation
	Burst    sim.Time // burst allowance

	rng *sim.Rand
	q   fifo

	prob       float64
	qdelayOld  sim.Time
	lastUpdate sim.Time
	burstLeft  sim.Time
	Drops      uint64
}

// NewPIE returns a PIE queue with RFC 8033 default parameters.
func NewPIE(capacityBytes int, rateBps float64, target sim.Time, rng *sim.Rand) *PIE {
	return &PIE{
		Target:    target,
		TUpdate:   15 * sim.Millisecond,
		Alpha:     0.125,
		Beta:      1.25,
		Capacity:  capacityBytes,
		RateBps:   rateBps,
		Burst:     150 * sim.Millisecond,
		rng:       rng,
		burstLeft: 150 * sim.Millisecond,
	}
}

// qdelay estimates queueing delay from occupancy and drain rate.
func (p *PIE) qdelay() sim.Time {
	if p.RateBps <= 0 {
		return 0
	}
	return sim.FromSeconds(float64(p.q.queued()) * 8 / p.RateBps)
}

// update recomputes the drop probability (lazily, from Enqueue).
func (p *PIE) update(now sim.Time) {
	for now-p.lastUpdate >= p.TUpdate {
		p.lastUpdate += p.TUpdate
		qd := p.qdelay()
		dp := p.Alpha*(qd-p.Target).Seconds() + p.Beta*(qd-p.qdelayOld).Seconds()
		// RFC 8033: scale the adjustment down when prob is small so the
		// controller is stable near zero.
		switch {
		case p.prob < 0.000001:
			dp /= 2048
		case p.prob < 0.00001:
			dp /= 512
		case p.prob < 0.0001:
			dp /= 128
		case p.prob < 0.001:
			dp /= 32
		case p.prob < 0.01:
			dp /= 8
		case p.prob < 0.1:
			dp /= 2
		}
		p.prob += dp
		// Decay when the queue is idle.
		if qd == 0 && p.qdelayOld == 0 {
			p.prob *= 0.98
		}
		if p.prob < 0 {
			p.prob = 0
		}
		if p.prob > 1 {
			p.prob = 1
		}
		p.qdelayOld = qd
		// Burst allowance countdown.
		if p.burstLeft > 0 {
			p.burstLeft -= p.TUpdate
		}
		if p.prob == 0 && qd < p.Target/2 && p.qdelayOld < p.Target/2 {
			p.burstLeft = p.Burst
		}
	}
}

// Enqueue applies PIE's probabilistic drop, then the hard capacity.
func (p *PIE) Enqueue(pkt *Packet, now sim.Time) bool {
	if p.lastUpdate == 0 {
		p.lastUpdate = now
	}
	p.update(now)
	drop := false
	if p.burstLeft <= 0 && p.prob > 0 {
		// RFC 8033 safeguards: don't drop when the queue is tiny.
		if p.qdelay() > p.Target/2 || p.q.queued() > 2*DefaultMSS {
			drop = p.rng.Float64() < p.prob
		}
	}
	if drop || p.q.queued()+pkt.Size > p.Capacity {
		p.Drops++
		return false
	}
	pkt.EnqueuedAt = now
	p.q.push(pkt)
	return true
}

// Dequeue removes the head packet. Queueing delay accumulates across
// hops, like DropTail.Dequeue.
func (p *PIE) Dequeue(now sim.Time) *Packet {
	pkt := p.q.pop()
	if pkt != nil {
		pkt.QueueDelay += now - pkt.EnqueuedAt
	}
	return pkt
}

// BytesQueued returns occupancy in bytes.
func (p *PIE) BytesQueued() int { return p.q.queued() }

// Len returns the number of queued packets.
func (p *PIE) Len() int { return p.q.len() }

// DropCount returns the total drops (probabilistic plus hard-cap).
func (p *PIE) DropCount() uint64 { return p.Drops }

// DropProb exposes the current drop probability (for tests).
func (p *PIE) DropProb() float64 { return p.prob }
