package netem

import (
	"testing"

	"nimbus/internal/sim"
)

// delivery is one observed packet completion: who, when, and how long it
// queued. The burst equivalence tests compare full delivery sequences, so
// any divergence in ordering, timing, or delay accounting fails loudly.
type delivery struct {
	seq uint64
	at  sim.Time
	qd  sim.Time
}

// burstRun holds everything a scenario run produces that bursting must
// not change.
type burstRun struct {
	dels     []delivery
	drops    []uint64
	executed uint64

	delivered uint64
	bytes     uint64
	dropped   uint64
	meanQD    sim.Time
	util      float64
	queued    int
}

// runBurstScenario drives a deterministic arrival pattern through a
// 12 Mbit/s link (1500 B = 1 ms serialization) with a 6000 B drop-tail
// buffer: an opening flood that overflows the buffer, a sustained phase
// whose 0.73 ms inter-arrivals interleave with the 1 ms service times
// without ever landing exactly on a completion instant (at an exact tie
// the two paths legitimately differ — see SetBurst), a second flood
// after an idle gap, and a tail of short 500 B packets that vary the
// per-packet serialization time.
func runBurstScenario(t *testing.T, budget int, mkQueue func() Queue) burstRun {
	t.Helper()
	sch := sim.NewScheduler()
	l := NewLink(sch, 12e6, mkQueue())
	if budget > 0 {
		l.SetBurst(budget)
	}
	var r burstRun
	l.Deliver = func(p *Packet, now sim.Time) {
		r.dels = append(r.dels, delivery{p.Seq, now, p.QueueDelay})
	}
	l.OnDrop = func(p *Packet, now sim.Time) {
		r.drops = append(r.drops, p.Seq)
	}
	seq := uint64(0)
	send := func(at sim.Time, n, size int) {
		for i := 0; i < n; i++ {
			p := &Packet{Seq: seq, Size: size}
			seq++
			sch.At(at, func() { l.Send(p) })
		}
	}
	send(0, 8, 1500) // floods the 4-packet buffer: tail drops up front
	for i := 0; i < 30; i++ {
		send(sim.Time(i)*730*sim.Microsecond, 1, 1500)
	}
	send(40*sim.Millisecond, 10, 1500) // second flood after the queue drains
	for i := 0; i < 12; i++ {
		send(55*sim.Millisecond+sim.Time(i)*300*sim.Microsecond, 1, 500)
	}
	end := 100 * sim.Millisecond
	sch.RunUntil(end)

	r.executed = sch.Executed
	r.delivered = l.DeliveredPackets
	r.bytes = l.DeliveredBytes
	r.dropped = l.DroppedPackets
	r.meanQD = l.MeanQueueDelay()
	r.util = l.Utilization()
	r.queued = l.Q.BytesQueued()
	return r
}

// requireSameRun asserts that two runs are observably identical: same
// delivery sequence (identity, completion time, queueing delay), same
// drops, and same counters.
func requireSameRun(t *testing.T, want, got burstRun) {
	t.Helper()
	if len(got.dels) != len(want.dels) {
		t.Fatalf("delivered %d packets, want %d", len(got.dels), len(want.dels))
	}
	for i := range want.dels {
		if got.dels[i] != want.dels[i] {
			t.Fatalf("delivery %d = %+v, want %+v", i, got.dels[i], want.dels[i])
		}
	}
	if len(got.drops) != len(want.drops) {
		t.Fatalf("dropped %d packets, want %d", len(got.drops), len(want.drops))
	}
	for i := range want.drops {
		if got.drops[i] != want.drops[i] {
			t.Fatalf("drop %d = seq %d, want seq %d", i, got.drops[i], want.drops[i])
		}
	}
	if got.delivered != want.delivered || got.bytes != want.bytes || got.dropped != want.dropped {
		t.Fatalf("counters delivered=%d bytes=%d dropped=%d, want %d/%d/%d",
			got.delivered, got.bytes, got.dropped, want.delivered, want.bytes, want.dropped)
	}
	if got.meanQD != want.meanQD {
		t.Fatalf("MeanQueueDelay = %v, want %v", got.meanQD, want.meanQD)
	}
	if got.util != want.util {
		t.Fatalf("Utilization = %v, want %v", got.util, want.util)
	}
	if got.queued != want.queued {
		t.Fatalf("BytesQueued = %d, want %d", got.queued, want.queued)
	}
}

// TestLinkBurstEquivalence is the core burst-forwarding guarantee: on a
// constant-rate drop-tail link, every observable — per-packet completion
// timestamps, queueing delays, drop decisions (including overflow drops
// that land while a burst is in flight, checked against the phantom-byte
// reservations), and all link counters — is identical with bursting on,
// while the run executes strictly fewer scheduler events.
func TestLinkBurstEquivalence(t *testing.T) {
	dt := func() Queue { return NewDropTail(6000) }
	base := runBurstScenario(t, 0, dt)
	if len(base.drops) == 0 {
		t.Fatal("scenario produced no drops; it no longer exercises admission under load")
	}
	for _, budget := range []int{2, 4, 16, MaxBurst, MaxBurst + 100} {
		burst := runBurstScenario(t, budget, dt)
		requireSameRun(t, base, burst)
		if burst.executed >= base.executed {
			t.Fatalf("budget %d executed %d events, per-packet path %d: bursting never engaged",
				budget, burst.executed, base.executed)
		}
	}
}

// TestLinkBurstAQMDisabled pins that SetBurst on an AQM queue is a no-op:
// CoDel and PIE drop from the wall clock (dequeue sojourn, per-enqueue
// probability), so they do not implement BurstQueue and must keep the
// per-packet path — the run is event-for-event identical, per-hop
// queueing delay included.
func TestLinkBurstAQMDisabled(t *testing.T) {
	queues := map[string]func() Queue{
		"codel": func() Queue { return NewCoDel(6000) },
		"pie":   func() Queue { return NewPIE(6000, 12e6, 15*sim.Millisecond, sim.NewRand(7)) },
	}
	for name, mk := range queues {
		t.Run(name, func(t *testing.T) {
			base := runBurstScenario(t, 0, mk)
			burst := runBurstScenario(t, 16, mk)
			requireSameRun(t, base, burst)
			if burst.executed != base.executed {
				t.Fatalf("executed %d events with SetBurst, %d without: AQM path must not burst",
					burst.executed, base.executed)
			}
		})
	}
	l := NewLink(sim.NewScheduler(), 12e6, NewCoDel(6000))
	l.SetBurst(16)
	if l.bq != nil {
		t.Fatal("SetBurst bound a burst queue on CoDel")
	}
}

// TestLinkBurstVaryingDisabled pins that SetBurst on a time-varying link
// is a no-op: rate transitions and outages must be observed per packet,
// so the run — including behavior across a step down and a dead interval
// — is event-for-event identical to the per-packet path.
func TestLinkBurstVaryingDisabled(t *testing.T) {
	// 12 -> 3 Mbit/s at 10 ms, outage at 25..30 ms, back to 12 after.
	sched, err := NewRateSchedule([]RatePoint{
		{At: 0, Bps: 12e6},
		{At: 10 * sim.Millisecond, Bps: 3e6},
		{At: 25 * sim.Millisecond, Bps: 0},
		{At: 30 * sim.Millisecond, Bps: 12e6},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(budget int) burstRun {
		sch := sim.NewScheduler()
		l := NewLinkSchedule(sch, sched, NewDropTail(1<<20))
		if budget > 0 {
			l.SetBurst(budget)
			if l.bq != nil {
				t.Fatal("SetBurst bound a burst queue on a varying link")
			}
		}
		var r burstRun
		l.Deliver = func(p *Packet, now sim.Time) {
			r.dels = append(r.dels, delivery{p.Seq, now, p.QueueDelay})
		}
		for i := 0; i < 40; i++ {
			p := &Packet{Seq: uint64(i), Size: 1500}
			sch.At(sim.Time(i)*sim.Millisecond, func() { l.Send(p) })
		}
		sch.RunUntil(60 * sim.Millisecond)
		r.executed = sch.Executed
		r.delivered = l.DeliveredPackets
		r.meanQD = l.MeanQueueDelay()
		r.util = l.Utilization()
		return r
	}
	base, burst := run(0), run(16)
	requireSameRun(t, base, burst)
	if burst.executed != base.executed {
		t.Fatalf("executed %d events with SetBurst, %d without: varying path must not burst",
			burst.executed, base.executed)
	}
}

// TestDropTailDequeueAt exercises the phantom-byte reservation directly:
// a burst-committed packet keeps counting against Capacity until its
// virtual start time, so admission decisions between the commit and the
// staged start match the per-packet path.
func TestDropTailDequeueAt(t *testing.T) {
	q := NewDropTail(3000)
	q.Enqueue(&Packet{Seq: 0, Size: 1500}, 0)
	q.Enqueue(&Packet{Seq: 1, Size: 1500}, 0)
	p := q.DequeueAt(5 * sim.Millisecond)
	if p == nil || p.Seq != 0 {
		t.Fatalf("DequeueAt returned %+v, want seq 0", p)
	}
	if p.QueueDelay != 5*sim.Millisecond {
		t.Fatalf("QueueDelay = %v, want the virtual start time", p.QueueDelay)
	}
	// Before the virtual start the committed bytes still occupy the buffer.
	if q.BytesQueued() != 3000 {
		t.Fatalf("BytesQueued = %d, want 3000 (reservation held)", q.BytesQueued())
	}
	if q.Enqueue(&Packet{Seq: 2, Size: 1500}, 2*sim.Millisecond) {
		t.Fatal("enqueue succeeded against a held reservation")
	}
	// At the virtual start the reservation expires and the slot frees.
	if !q.Enqueue(&Packet{Seq: 3, Size: 1500}, 5*sim.Millisecond) {
		t.Fatal("enqueue failed after the reservation expired")
	}
	if q.BytesQueued() != 3000 {
		t.Fatalf("BytesQueued = %d, want 3000 after expiry+enqueue", q.BytesQueued())
	}
	if q.DropCount() != 1 {
		t.Fatalf("DropCount = %d, want 1", q.DropCount())
	}
}

// TestLinkBurstAllocFree pins the point of the optimization: a saturated
// burst-forwarding link in steady state schedules pooled events only and
// allocates nothing per packet.
func TestLinkBurstAllocFree(t *testing.T) {
	sch := sim.NewScheduler()
	l := NewLink(sch, 96e6, NewDropTail(1<<20))
	l.SetBurst(16)
	l.Deliver = func(p *Packet, now sim.Time) { l.Send(p) }
	for i := 0; i < 32; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	end := 50 * sim.Millisecond
	sch.RunUntil(end) // warm: ring, staged slices, event pool all at size
	allocs := testing.AllocsPerRun(50, func() {
		end += 10 * sim.Millisecond
		sch.RunUntil(end)
	})
	if allocs != 0 {
		t.Fatalf("steady-state burst forwarding allocates %v per run, want 0", allocs)
	}
}

// benchLink measures the event-loop cost of a saturated constant-rate
// link: 32 packets circulate (Deliver re-sends), and each benchmark op
// advances the clock by 64 packet serialization times (1500 B at
// 96 Mbit/s = 125 us each).
func benchLink(b *testing.B, budget int) {
	sch := sim.NewScheduler()
	l := NewLink(sch, 96e6, NewDropTail(1<<20))
	if budget > 0 {
		l.SetBurst(budget)
	}
	l.Deliver = func(p *Packet, now sim.Time) { l.Send(p) }
	for i := 0; i < 32; i++ {
		l.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	end := 10 * sim.Millisecond
	sch.RunUntil(end)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end += 64 * 125 * sim.Microsecond
		sch.RunUntil(end)
	}
	if l.DeliveredPackets == 0 {
		b.Fatal("no packets delivered")
	}
}

// BenchmarkLinkBurst is the burst fast path (budget 16); compare with
// BenchmarkLinkPerPacket for the one-event-per-packet baseline. Both are
// gated in scripts/check_bench.sh (zero allocs, wall-clock band).
func BenchmarkLinkBurst(b *testing.B)     { benchLink(b, 16) }
func BenchmarkLinkPerPacket(b *testing.B) { benchLink(b, 0) }
