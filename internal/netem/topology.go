package netem

import (
	"fmt"

	"nimbus/internal/sim"
)

// Hop is one step of a route: a wire-delay segment crossed before
// entering the hop's link.
type Hop struct {
	Link  *Link
	Delay sim.Time
}

// Route is a flow path through the topology: the ordered hops of the data
// direction and, separately, of the ACK direction. An empty Rev list is
// the paper's ideal reverse path (a pure propagation delay); a non-empty
// one sends ACK packets through those links' queues, so the reverse path
// can be congested.
type Route struct {
	Name string
	Fwd  []Hop
	Rev  []Hop
}

// Topology is a network of named nodes and directed links with per-flow
// routes. Each attached flow follows one route; its own access
// propagation delays (FwdDelay/RevDelay) come on top of the route's hop
// delays, so flows sharing a route can still have different base RTTs.
//
// The paper's Fig. 2 single-bottleneck network is the trivial topology:
// one link, one route, an ideal reverse path (see NewNetwork). Network is
// an alias for Topology, so every layer that speaks *netem.Network works
// on any topology unchanged.
//
// Hop forwarding is allocation-free: packets ride pooled AfterArg events
// between hops through each link's prebound entry callback, and the
// topology owns a shared packet free list that senders and raw sources
// draw from and that delivery (including delivery for detached flows)
// returns packets to.
type Topology struct {
	Sch *sim.Scheduler
	// Link is the designated bottleneck hop: the µ link that oracles and
	// single-valued link metrics (utilization, drops) refer to.
	Link *Link

	links  []*Link
	routes map[string]*Route
	def    *Route
	nodes  []string

	flows map[FlowID]*Attachment
	next  FlowID

	// onDeliver taps run for every data packet reaching the end of its
	// route (before per-flow delivery).
	onDeliver []func(p *Packet, now sim.Time)

	pktFree []*Packet
	// OrphanRecycled counts in-flight packets recycled at delivery because
	// their flow was detached (or its receiver cleared) — observable in
	// tests for the detach-leak regression.
	OrphanRecycled uint64
	// AckDrops counts ACK packets lost on congested reverse routes.
	// Reverse links carry cross traffic too, so their DroppedPackets
	// counter alone cannot say how many of the losses were ACKs.
	AckDrops uint64
}

// Network is the trivial-through-general topology every layer attaches
// to. (Historically the single-bottleneck struct; the alias keeps the
// paper-model name in signatures while the implementation is the general
// topology.)
type Network = Topology

// NewTopology returns an empty topology; add links and routes, then set
// Link to the bottleneck hop.
func NewTopology(sch *sim.Scheduler) *Topology {
	return &Topology{
		Sch:    sch,
		routes: make(map[string]*Route),
		flows:  make(map[FlowID]*Attachment),
	}
}

// NewNetwork builds the paper's single-bottleneck network: one link, one
// route over it, an ideal reverse path.
func NewNetwork(sch *sim.Scheduler, link *Link) *Network {
	t := NewTopology(sch)
	t.AddLink(link)
	t.AddRoute(&Route{Fwd: []Hop{{Link: link}}})
	t.Link = link
	return t
}

// AddLink registers a link as a hop of this topology, wiring its delivery
// and drop paths to the topology's forwarding logic.
func (t *Topology) AddLink(l *Link) {
	l.Deliver = t.advance
	l.OnDrop = t.drop
	l.enterFn = func(arg any) { l.Send(arg.(*Packet)) }
	t.links = append(t.links, l)
}

// AddRoute registers a route. The first route added with an empty name is
// the default route Attach uses.
func (t *Topology) AddRoute(r *Route) {
	if len(r.Fwd) == 0 {
		panic("netem: route " + r.Name + " has no forward hops")
	}
	t.routes[r.Name] = r
	if r.Name == "" {
		t.def = r
	}
}

// Links returns the topology's links in registration order (the hop order
// presets and chain specs declare).
func (t *Topology) Links() []*Link { return t.links }

// Route returns the named route ("" is the default), or nil.
func (t *Topology) Route(name string) *Route {
	if name == "" {
		return t.def
	}
	return t.routes[name]
}

// RouteNames returns the registered route names (unsorted).
func (t *Topology) RouteNames() []string {
	out := make([]string, 0, len(t.routes))
	for name := range t.routes {
		out = append(out, name)
	}
	return out
}

// SetNodes records the topology's node names (display/introspection).
func (t *Topology) SetNodes(nodes []string) { t.nodes = nodes }

// Nodes returns the topology's node names in path order.
func (t *Topology) Nodes() []string { return t.nodes }

// GetPacket returns a packet from the shared free list (or a fresh one).
// Callers reset it with a composite literal before use.
func (t *Topology) GetPacket() *Packet {
	if n := len(t.pktFree); n > 0 {
		p := t.pktFree[n-1]
		t.pktFree[n-1] = nil
		t.pktFree = t.pktFree[:n-1]
		return p
	}
	return &Packet{}
}

// PutPacket returns a packet to the shared free list. The caller must be
// the packet's last holder.
func (t *Topology) PutPacket(p *Packet) {
	p.route = nil
	p.ackFn = nil
	p.ackArg = nil
	t.pktFree = append(t.pktFree, p)
}

// FreePackets returns the shared free list's size (tests).
func (t *Topology) FreePackets() int { return len(t.pktFree) }

// Attachment describes one flow's path through the topology.
type Attachment struct {
	ID       FlowID
	FwdDelay sim.Time // one-way sender→first hop (plus last hop→receiver wire)
	RevDelay sim.Time // one-way receiver→sender (receiver→first reverse hop on congested reverse paths)

	// Receive is called when a data packet of this flow exits its route.
	Receive func(p *Packet, now sim.Time)
	// Dropped, if set, is called when a data packet of this flow is
	// dropped at any hop.
	Dropped func(p *Packet, now sim.Time)

	net   *Topology
	route *Route
}

// BaseRTT returns the two-way propagation delay of a flow attachment:
// the access delays plus every hop delay of its route, both directions.
func (a *Attachment) BaseRTT() sim.Time {
	rtt := a.FwdDelay + a.RevDelay
	for _, h := range a.route.Fwd {
		rtt += h.Delay
	}
	for _, h := range a.route.Rev {
		rtt += h.Delay
	}
	return rtt
}

// Attach adds a flow on the default route with the given access RTT,
// split evenly between the forward and reverse directions.
func (t *Topology) Attach(rtt sim.Time) *Attachment {
	return t.AttachAsym(rtt/2, rtt-rtt/2)
}

// AttachOn adds a flow on the named route ("" = default).
func (t *Topology) AttachOn(route string, rtt sim.Time) *Attachment {
	return t.AttachAsymOn(route, rtt/2, rtt-rtt/2)
}

// AttachAsym adds a flow on the default route with explicit one-way
// access delays.
func (t *Topology) AttachAsym(fwd, rev sim.Time) *Attachment {
	return t.AttachAsymOn("", fwd, rev)
}

// AttachAsymOn adds a flow on the named route with explicit one-way
// access delays. Unknown routes are a programming error and panic.
func (t *Topology) AttachAsymOn(route string, fwd, rev sim.Time) *Attachment {
	r := t.Route(route)
	if r == nil {
		panic(fmt.Sprintf("netem: no route %q in topology", route))
	}
	t.next++
	a := &Attachment{ID: t.next, FwdDelay: fwd, RevDelay: rev, net: t, route: r}
	t.flows[a.ID] = a
	return a
}

// Detach removes a flow. In-flight packets of the flow are delivered to a
// no-op receiver and recycled into the shared packet pool.
func (t *Topology) Detach(id FlowID) { delete(t.flows, id) }

// GetPacket draws from the topology's shared packet pool.
func (a *Attachment) GetPacket() *Packet { return a.net.GetPacket() }

// PutPacket returns a delivered packet to the topology's shared pool.
func (a *Attachment) PutPacket(p *Packet) { a.net.PutPacket(p) }

// Send injects a data packet from the flow's sender: after the access
// propagation delay (plus the first hop's wire delay) it reaches the
// first hop's queue.
func (a *Attachment) Send(p *Packet) {
	p.Flow = a.ID
	p.SentAt = a.net.Sch.Now()
	p.QueueDelay = 0
	p.route = a.route
	p.hop = 0
	p.rev = false
	h := a.route.Fwd[0]
	a.net.Sch.AfterArg(a.FwdDelay+h.Delay, h.Link.enterFn, p)
}

// SendAck schedules fn at the sender after the reverse path: a pure
// propagation delay on ideal reverse routes, or the congested reverse
// hops plus the propagation delay otherwise.
func (a *Attachment) SendAck(fn func(now sim.Time)) {
	a.SendAckArg(func(any) { fn(a.net.Sch.Now()) }, nil)
}

// SendAckArg delivers fn(arg) across the flow's reverse path. On ideal
// reverse routes the argument rides on a pooled scheduler event (the
// paper's uncongested-ACK model, allocation-free). On routes with reverse
// hops, the ACK state rides through those links' queues as an AckSize
// packet from the shared pool — queued, delayed, and possibly dropped
// like any other traffic; a dropped ACK packet simply never invokes fn
// (transports recover via dup-ACKs and RTOs).
func (a *Attachment) SendAckArg(fn func(arg any), arg any) {
	r := a.route
	if len(r.Rev) == 0 {
		a.net.Sch.AfterArg(a.RevDelay, fn, arg)
		return
	}
	p := a.net.GetPacket()
	*p = Packet{Flow: a.ID, Size: AckSize, Raw: true}
	p.SentAt = a.net.Sch.Now()
	p.route = r
	p.hop = 0
	p.rev = true
	p.ackFn = fn
	p.ackArg = arg
	h := r.Rev[0]
	a.net.Sch.AfterArg(a.RevDelay+h.Delay, h.Link.enterFn, p)
}

// advance is every link's delivery callback: it moves the packet to its
// route's next hop, or completes the traversal — data packets are
// delivered to the flow's receiver, ACK packets invoke their callback at
// the sender. Inter-hop forwarding uses the link's prebound entry
// callback on a pooled AfterArg event, so multi-hop paths cost zero
// allocations per packet like the single-bottleneck fast path.
func (t *Topology) advance(p *Packet, now sim.Time) {
	if r := p.route; r != nil {
		hops := r.Fwd
		if p.rev {
			hops = r.Rev
		}
		if n := int(p.hop) + 1; n < len(hops) {
			p.hop = int16(n)
			h := hops[n]
			t.Sch.AfterArg(h.Delay, h.Link.enterFn, p)
			return
		}
	}
	if p.rev {
		fn, arg := p.ackFn, p.ackArg
		t.PutPacket(p)
		fn(arg)
		return
	}
	t.deliver(p, now)
}

func (t *Topology) deliver(p *Packet, now sim.Time) {
	for _, f := range t.onDeliver {
		f(p, now)
	}
	a, ok := t.flows[p.Flow]
	if !ok || a.Receive == nil {
		// The flow was detached (or its receiver stopped): the packet's
		// journey ends here, so return it to the shared pool instead of
		// leaking it from the allocation-free path.
		t.OrphanRecycled++
		t.PutPacket(p)
		return
	}
	a.Receive(p, now)
}

func (t *Topology) drop(p *Packet, now sim.Time) {
	if p.rev {
		// A lost ACK: the callback never runs; transports recover.
		t.AckDrops++
		t.PutPacket(p)
		return
	}
	a, ok := t.flows[p.Flow]
	if !ok || a.Dropped == nil {
		return
	}
	a.Dropped(p, now)
}

// OnDeliver registers a tap invoked for every data packet completing its
// route (before per-flow delivery). Experiments use it to measure
// aggregate cross-traffic rates and per-packet queueing delay.
func (t *Topology) OnDeliver(f func(p *Packet, now sim.Time)) {
	t.onDeliver = append(t.onDeliver, f)
}

// QueueDelayNow returns the current queueing delay implied by occupancy
// at the bottleneck link's current rate (0 during an outage, when no
// drain rate is defined).
func (t *Topology) QueueDelayNow() sim.Time {
	rate := t.Link.Rate()
	if rate <= 0 {
		return 0
	}
	bytes := float64(t.Link.Q.BytesQueued())
	if t.Link.FluidEnabled() {
		// The fluid backlog stands in front of arriving packets exactly
		// like queued bytes do.
		bytes += t.Link.FluidBacklog()
	}
	return sim.FromSeconds(bytes * 8 / rate)
}

// String describes the network configuration.
func (t *Topology) String() string {
	if len(t.links) > 1 {
		return fmt.Sprintf("bottleneck %.1f Mbit/s, %d hops, %d flows",
			t.Link.Rate()/1e6, len(t.links), len(t.flows))
	}
	return fmt.Sprintf("bottleneck %.1f Mbit/s, %d flows", t.Link.Rate()/1e6, len(t.flows))
}

// Mbps converts bits/s to Mbit/s for reporting.
func Mbps(bps float64) float64 { return bps / 1e6 }

// BpsFromMbps converts Mbit/s to bits/s.
func BpsFromMbps(m float64) float64 { return m * 1e6 }
