package netem

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nimbus/internal/sim"
)

// RatePoint is one step of a piecewise-constant rate schedule: from At
// onwards the link drains at Bps, until the next point (or forever).
type RatePoint struct {
	At  sim.Time
	Bps float64
}

// RateSchedule is a piecewise-constant bottleneck capacity signal. It is
// the packed form every time-varying link model reduces to: a constant
// link is a single point, a step pattern or periodic ramp is a short
// point list with a wrap period, and a Mahimahi-style trace is a long
// point list loaded from a "time_ms,mbps" file. Links evaluate it lazily
// (RateAt / NextChange), so schedules are immutable and shareable across
// concurrent simulations.
type RateSchedule struct {
	// Points is sorted by At; Points[0].At is always 0.
	Points []RatePoint
	// Period, when non-zero, wraps the schedule: the rate at time t is
	// the rate at t mod Period. Zero holds the last point's rate forever.
	Period sim.Time
}

// NewRateSchedule validates and builds a schedule. Points must be
// non-empty, start at time 0, be strictly increasing in time, and carry
// non-negative rates (zero models an outage). A non-zero period must
// extend strictly past the last point.
func NewRateSchedule(points []RatePoint, period sim.Time) (*RateSchedule, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("netem: rate schedule needs at least one point")
	}
	if points[0].At != 0 {
		return nil, fmt.Errorf("netem: rate schedule must start at time 0, got %v", points[0].At)
	}
	for i, p := range points {
		if p.Bps < 0 {
			return nil, fmt.Errorf("netem: negative rate %g bps at %v", p.Bps, p.At)
		}
		if i > 0 && p.At <= points[i-1].At {
			return nil, fmt.Errorf("netem: rate points must be strictly increasing in time (%v after %v)", p.At, points[i-1].At)
		}
	}
	if period < 0 {
		return nil, fmt.Errorf("netem: negative period %v", period)
	}
	if period > 0 && period <= points[len(points)-1].At {
		return nil, fmt.Errorf("netem: period %v must extend past the last point at %v", period, points[len(points)-1].At)
	}
	return &RateSchedule{Points: points, Period: period}, nil
}

// ConstantRate returns the schedule of a fixed-rate link.
func ConstantRate(bps float64) *RateSchedule {
	return &RateSchedule{Points: []RatePoint{{0, bps}}}
}

// SquareWave alternates between highBps (first half-period) and lowBps.
func SquareWave(lowBps, highBps float64, period sim.Time) *RateSchedule {
	return &RateSchedule{
		Points: []RatePoint{{0, highBps}, {period / 2, lowBps}},
		Period: period,
	}
}

// TriangleRamp ramps from minBps up to maxBps and back down every period,
// quantized into 2*steps piecewise-constant segments.
func TriangleRamp(minBps, maxBps float64, period sim.Time, steps int) *RateSchedule {
	if steps < 1 {
		steps = 1
	}
	n := 2 * steps
	points := make([]RatePoint, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(steps) // 0..2
		if frac > 1 {
			frac = 2 - frac
		}
		points = append(points, RatePoint{
			At:  period * sim.Time(i) / sim.Time(n),
			Bps: minBps + (maxBps-minBps)*frac,
		})
	}
	return &RateSchedule{Points: points, Period: period}
}

// OutageAt models a link at baseBps that goes dark at `at` for `dur`,
// then recovers and holds baseBps forever.
func OutageAt(baseBps float64, at, dur sim.Time) *RateSchedule {
	if at == 0 {
		return &RateSchedule{Points: []RatePoint{{0, 0}, {dur, baseBps}}}
	}
	return &RateSchedule{Points: []RatePoint{{0, baseBps}, {at, 0}, {at + dur, baseBps}}}
}

// Constant reports whether the schedule never changes rate.
func (s *RateSchedule) Constant() bool { return len(s.Points) <= 1 }

// RateAt returns the capacity in bits/s at simulated time t.
func (s *RateSchedule) RateAt(t sim.Time) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	if s.Period > 0 {
		t %= s.Period
	}
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].At > t }) - 1
	if i < 0 {
		i = 0
	}
	return s.Points[i].Bps
}

// NextChange returns the first time strictly after t at which the rate
// may change, and false when the schedule is constant from t onwards.
// Binary search keeps transition events O(log P) on long trace files.
func (s *RateSchedule) NextChange(t sim.Time) (sim.Time, bool) {
	if s.Constant() {
		return 0, false
	}
	if s.Period == 0 {
		i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].At > t })
		if i == len(s.Points) {
			return 0, false
		}
		return s.Points[i].At, true
	}
	base := t - t%s.Period
	pos := t - base
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].At > pos })
	if i == len(s.Points) {
		return base + s.Period, true
	}
	return base + s.Points[i].At, true
}

// Bits integrates the schedule over [from, to): the number of bits a
// fully-backlogged link would serialize in that window. Experiments and
// tests use it as the ground truth for delivered bytes.
func (s *RateSchedule) Bits(from, to sim.Time) float64 {
	total := 0.0
	for t := from; t < to; {
		seg := to
		if next, ok := s.NextChange(t); ok && next < to {
			seg = next
		}
		total += s.RateAt(t) * (seg - t).Seconds()
		t = seg
	}
	return total
}

// MeanBps returns the schedule's average capacity over [from, to).
func (s *RateSchedule) MeanBps(from, to sim.Time) float64 {
	if to <= from {
		return s.RateAt(from)
	}
	return s.Bits(from, to) / (to - from).Seconds()
}

// MaxBps returns the schedule's peak capacity.
func (s *RateSchedule) MaxBps() float64 {
	max := 0.0
	for _, p := range s.Points {
		if p.Bps > max {
			max = p.Bps
		}
	}
	return max
}

// MinBps returns the schedule's lowest capacity (0 if it has outages).
func (s *RateSchedule) MinBps() float64 {
	min := s.Points[0].Bps
	for _, p := range s.Points {
		if p.Bps < min {
			min = p.Bps
		}
	}
	return min
}

// Span returns the time covered by the point list (the period for
// wrapping schedules, the last point's time for hold-last ones).
func (s *RateSchedule) Span() sim.Time {
	if s.Period > 0 {
		return s.Period
	}
	return s.Points[len(s.Points)-1].At
}

// ParsePattern builds a schedule from a compact spec string, the form the
// CLIs sweep over. baseBps anchors specs that are relative to the
// scenario's nominal link rate. Recognized forms (times in ms, rates in
// Mbit/s, fields separated by ':'):
//
//	constant                 — fixed at baseBps (same as the empty spec)
//	step:LO:HI:PERIOD        — square wave between LO and HI Mbit/s
//	ramp:MIN:MAX:PERIOD      — triangle ramp between MIN and MAX Mbit/s
//	outage:AT:DUR            — baseBps with an outage at AT for DUR ms
func ParsePattern(spec string, baseBps float64) (*RateSchedule, error) {
	if spec == "" || spec == "constant" {
		return ConstantRate(baseBps), nil
	}
	fields := strings.Split(spec, ":")
	args := make([]float64, 0, len(fields)-1)
	for _, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("netem: rate pattern %q: bad number %q", spec, f)
		}
		args = append(args, v)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("netem: rate pattern %q: want %d args, got %d", spec, n, len(args))
		}
		return nil
	}
	var s *RateSchedule
	switch fields[0] {
	case "step":
		if err := need(3); err != nil {
			return nil, err
		}
		if args[2] <= 0 {
			return nil, fmt.Errorf("netem: rate pattern %q: period must be positive", spec)
		}
		s = SquareWave(args[0]*1e6, args[1]*1e6, sim.FromSeconds(args[2]/1e3))
	case "ramp":
		if err := need(3); err != nil {
			return nil, err
		}
		if args[2] <= 0 {
			return nil, fmt.Errorf("netem: rate pattern %q: period must be positive", spec)
		}
		s = TriangleRamp(args[0]*1e6, args[1]*1e6, sim.FromSeconds(args[2]/1e3), 8)
	case "outage":
		if err := need(2); err != nil {
			return nil, err
		}
		if args[0] < 0 || args[1] <= 0 {
			return nil, fmt.Errorf("netem: rate pattern %q: outage needs at>=0 and dur>0", spec)
		}
		s = OutageAt(baseBps, sim.FromSeconds(args[0]/1e3), sim.FromSeconds(args[1]/1e3))
	default:
		return nil, fmt.Errorf("netem: unknown rate pattern kind %q (want step, ramp, outage, constant)", fields[0])
	}
	// Constructors trust their arguments; spec strings don't earn that
	// trust. Re-validate so a sign typo (step:6:-24:2000) is a parse
	// error, not a silent permanent outage.
	if _, err := NewRateSchedule(s.Points, s.Period); err != nil {
		return nil, fmt.Errorf("rate pattern %q: %w", spec, err)
	}
	return s, nil
}

// ParseTrace reads a capacity trace in the repository's trace format:
// one "time_ms,mbps" pair per line, '#' comments, an optional literal
// "time_ms,mbps" header, and an optional "# period_ms: N" directive that
// makes the schedule wrap (loop) every N milliseconds instead of holding
// the last rate.
func ParseTrace(r io.Reader) (*RateSchedule, error) {
	var points []RatePoint
	var period sim.Time
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if v, ok := strings.CutPrefix(strings.TrimSpace(line[1:]), "period_ms:"); ok {
				ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil || ms <= 0 {
					return nil, fmt.Errorf("netem: trace line %d: bad period_ms directive %q", lineno, line)
				}
				period = sim.FromSeconds(ms / 1e3)
			}
			continue
		}
		if line == "time_ms,mbps" {
			continue
		}
		t, rate, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("netem: trace line %d: want \"time_ms,mbps\", got %q", lineno, line)
		}
		ms, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil {
			return nil, fmt.Errorf("netem: trace line %d: bad time %q", lineno, t)
		}
		mbps, err := strconv.ParseFloat(strings.TrimSpace(rate), 64)
		if err != nil {
			return nil, fmt.Errorf("netem: trace line %d: bad rate %q", lineno, rate)
		}
		if ms < 0 {
			return nil, fmt.Errorf("netem: trace line %d: negative time %g", lineno, ms)
		}
		points = append(points, RatePoint{At: sim.FromSeconds(ms / 1e3), Bps: mbps * 1e6})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netem: reading trace: %w", err)
	}
	return NewRateSchedule(points, period)
}

// WriteTrace emits the schedule in the trace file format ParseTrace
// reads, so schedules round-trip through files exactly.
func (s *RateSchedule) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s.Period > 0 {
		fmt.Fprintf(bw, "# period_ms: %g\n", s.Period.Millis())
	}
	fmt.Fprintln(bw, "time_ms,mbps")
	for _, p := range s.Points {
		fmt.Fprintf(bw, "%g,%g\n", p.At.Millis(), p.Bps/1e6)
	}
	return bw.Flush()
}
