package netem

import (
	"math"
	"testing"

	"nimbus/internal/sim"
)

// TestVarLinkPacketSpansRateChange checks exact serialization across a
// transition: a 1500 B packet (12000 bits) on a link that runs at
// 12 Mbit/s for 0.5 ms and then drops to 6 Mbit/s. 6000 bits drain in
// the first phase; the remaining 6000 bits take 1 ms at the new rate, so
// delivery is at exactly 1.5 ms.
func TestVarLinkPacketSpansRateChange(t *testing.T) {
	sch := sim.NewScheduler()
	s, err := NewRateSchedule([]RatePoint{{0, 12e6}, {500 * sim.Microsecond, 6e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLinkSchedule(sch, s, NewDropTail(1<<20))
	var deliveredAt sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { deliveredAt = now }
	link.Send(&Packet{Size: 1500})
	sch.Run()
	want := 1500 * sim.Microsecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if link.DeliveredBytes != 1500 {
		t.Fatalf("bytes = %d", link.DeliveredBytes)
	}
}

// TestVarLinkPacketSpansOutage: the same packet stalls through a
// zero-rate window and resumes when capacity returns.
func TestVarLinkPacketSpansOutage(t *testing.T) {
	sch := sim.NewScheduler()
	s, err := NewRateSchedule([]RatePoint{
		{0, 12e6},
		{500 * sim.Microsecond, 0},
		{2500 * sim.Microsecond, 12e6},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLinkSchedule(sch, s, NewDropTail(1<<20))
	var deliveredAt sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { deliveredAt = now }
	link.Send(&Packet{Size: 1500})
	sch.Run()
	// 6000 bits by 0.5 ms, stall until 2.5 ms, last 6000 bits by 3.0 ms.
	want := 3 * sim.Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if u := link.Utilization(); u > 1.0+1e-9 {
		t.Fatalf("utilization %v > 1 across an outage", u)
	}
}

// TestVarLinkArrivalDuringOutage: a packet arriving at an idle, dark link
// must wait for capacity, not divide by zero or complete instantly.
func TestVarLinkArrivalDuringOutage(t *testing.T) {
	sch := sim.NewScheduler()
	s, err := NewRateSchedule([]RatePoint{{0, 0}, {2 * sim.Millisecond, 12e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLinkSchedule(sch, s, NewDropTail(1<<20))
	var deliveredAt sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { deliveredAt = now }
	link.Send(&Packet{Size: 1500})
	sch.Run()
	want := 3 * sim.Millisecond // capacity at 2 ms + 1 ms serialization
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

// backlog fills the queue so the link never idles over the horizon.
func backlog(link *Link, n int) (bytes uint64) {
	for i := 0; i < n; i++ {
		link.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	return uint64(n) * 1500
}

// TestVarLinkConservationAndUtilization: every byte sent is either
// delivered, dropped, or still queued/in flight, and utilization never
// exceeds 1 across many rate steps.
func TestVarLinkConservationAndUtilization(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLinkSchedule(sch, SquareWave(6e6, 24e6, 20*sim.Millisecond), NewDropTail(1<<30))
	sent := backlog(link, 2000)
	sch.RunUntil(1 * sim.Second)

	inFlight := uint64(0)
	if link.txPkt != nil {
		inFlight = uint64(link.txPkt.Size)
	}
	total := link.DeliveredBytes + uint64(link.Q.BytesQueued()) + inFlight
	if total != sent {
		t.Fatalf("byte conservation broken: delivered %d + queued %d + in flight %d != sent %d",
			link.DeliveredBytes, link.Q.BytesQueued(), inFlight, sent)
	}
	if link.DroppedPackets != 0 {
		t.Fatalf("unexpected drops: %d", link.DroppedPackets)
	}
	u := link.Utilization()
	if u > 1.0+1e-9 {
		t.Fatalf("utilization %v > 1", u)
	}
	if u < 0.9 {
		t.Fatalf("backlogged link should be near fully utilized, got %v", u)
	}
}

// TestVarLinkDeliveredMatchesIntegral is the acceptance check for the
// time-varying link: with the queue always backlogged, delivered bytes
// must match the integral of the rate schedule to within one in-flight
// packet (per the piecewise-exact serialization model).
func TestVarLinkDeliveredMatchesIntegral(t *testing.T) {
	schedules := map[string]*RateSchedule{
		"square": SquareWave(6e6, 24e6, 20*sim.Millisecond),
		"ramp":   TriangleRamp(4e6, 40e6, 100*sim.Millisecond, 8),
	}
	for _, name := range TraceNames() {
		s, err := LoadTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		schedules["trace:"+name] = s
	}
	const horizon = 2 * sim.Second
	for name, s := range schedules {
		sch := sim.NewScheduler()
		link := NewLinkSchedule(sch, s, NewDropTail(1<<30))
		// Enough backlog to stay busy: peak rate over the whole horizon.
		need := int(s.MaxBps()*horizon.Seconds()/8/1500) + 10
		backlog(link, need)
		sch.RunUntil(horizon)
		if link.Busy() == false {
			t.Fatalf("%s: link went idle; test needs a standing backlog", name)
		}
		wantBits := s.Bits(0, horizon)
		gotBits := float64(link.DeliveredBytes) * 8
		// Tolerance: one packet in flight plus sub-ns truncation drift.
		tol := 2 * 1500 * 8.0
		if math.Abs(gotBits-wantBits) > tol {
			t.Fatalf("%s: delivered %g bits, schedule integral %g (diff %g > %g)",
				name, gotBits, wantBits, gotBits-wantBits, tol)
		}
		if u := link.Utilization(); u > 1.0+1e-9 {
			t.Fatalf("%s: utilization %v > 1", name, u)
		}
	}
}

// TestConstantLinkFastPathUnchanged: a constant-rate link must not pay
// the varying-path costs (cancellable timers) and must behave as before.
func TestConstantLinkFastPathUnchanged(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 12e6, NewDropTail(1<<20))
	if link.Varying() {
		t.Fatal("constant link reports varying")
	}
	var times []sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { times = append(times, now) }
	backlog(link, 5)
	sch.Run()
	for i, at := range times {
		if want := sim.Time(i+1) * sim.Millisecond; at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
	}
	if sch.PoolReuses == 0 {
		t.Fatal("constant path should use pooled timers")
	}
}
