package netem

import (
	"math"
	"testing"

	"nimbus/internal/sim"
)

// TestVarLinkPacketSpansRateChange checks exact serialization across a
// transition: a 1500 B packet (12000 bits) on a link that runs at
// 12 Mbit/s for 0.5 ms and then drops to 6 Mbit/s. 6000 bits drain in
// the first phase; the remaining 6000 bits take 1 ms at the new rate, so
// delivery is at exactly 1.5 ms.
func TestVarLinkPacketSpansRateChange(t *testing.T) {
	sch := sim.NewScheduler()
	s, err := NewRateSchedule([]RatePoint{{0, 12e6}, {500 * sim.Microsecond, 6e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLinkSchedule(sch, s, NewDropTail(1<<20))
	var deliveredAt sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { deliveredAt = now }
	link.Send(&Packet{Size: 1500})
	sch.Run()
	want := 1500 * sim.Microsecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if link.DeliveredBytes != 1500 {
		t.Fatalf("bytes = %d", link.DeliveredBytes)
	}
}

// TestVarLinkPacketSpansOutage: the same packet stalls through a
// zero-rate window and resumes when capacity returns.
func TestVarLinkPacketSpansOutage(t *testing.T) {
	sch := sim.NewScheduler()
	s, err := NewRateSchedule([]RatePoint{
		{0, 12e6},
		{500 * sim.Microsecond, 0},
		{2500 * sim.Microsecond, 12e6},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLinkSchedule(sch, s, NewDropTail(1<<20))
	var deliveredAt sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { deliveredAt = now }
	link.Send(&Packet{Size: 1500})
	sch.Run()
	// 6000 bits by 0.5 ms, stall until 2.5 ms, last 6000 bits by 3.0 ms.
	want := 3 * sim.Millisecond
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if u := link.Utilization(); u > 1.0+1e-9 {
		t.Fatalf("utilization %v > 1 across an outage", u)
	}
}

// TestVarLinkArrivalDuringOutage: a packet arriving at an idle, dark link
// must wait for capacity, not divide by zero or complete instantly.
func TestVarLinkArrivalDuringOutage(t *testing.T) {
	sch := sim.NewScheduler()
	s, err := NewRateSchedule([]RatePoint{{0, 0}, {2 * sim.Millisecond, 12e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	link := NewLinkSchedule(sch, s, NewDropTail(1<<20))
	var deliveredAt sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { deliveredAt = now }
	link.Send(&Packet{Size: 1500})
	sch.Run()
	want := 3 * sim.Millisecond // capacity at 2 ms + 1 ms serialization
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

// backlog fills the queue so the link never idles over the horizon.
func backlog(link *Link, n int) (bytes uint64) {
	for i := 0; i < n; i++ {
		link.Send(&Packet{Seq: uint64(i), Size: 1500})
	}
	return uint64(n) * 1500
}

// TestVarLinkConservationAndUtilization: every byte sent is either
// delivered, dropped, or still queued/in flight, and utilization never
// exceeds 1 across many rate steps.
func TestVarLinkConservationAndUtilization(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLinkSchedule(sch, SquareWave(6e6, 24e6, 20*sim.Millisecond), NewDropTail(1<<30))
	sent := backlog(link, 2000)
	sch.RunUntil(1 * sim.Second)

	inFlight := uint64(0)
	if link.txPkt != nil {
		inFlight = uint64(link.txPkt.Size)
	}
	total := link.DeliveredBytes + uint64(link.Q.BytesQueued()) + inFlight
	if total != sent {
		t.Fatalf("byte conservation broken: delivered %d + queued %d + in flight %d != sent %d",
			link.DeliveredBytes, link.Q.BytesQueued(), inFlight, sent)
	}
	if link.DroppedPackets != 0 {
		t.Fatalf("unexpected drops: %d", link.DroppedPackets)
	}
	u := link.Utilization()
	if u > 1.0+1e-9 {
		t.Fatalf("utilization %v > 1", u)
	}
	if u < 0.9 {
		t.Fatalf("backlogged link should be near fully utilized, got %v", u)
	}
}

// TestVarLinkDeliveredMatchesIntegral is the acceptance check for the
// time-varying link: with the queue always backlogged, delivered bytes
// must match the integral of the rate schedule to within one in-flight
// packet (per the piecewise-exact serialization model).
func TestVarLinkDeliveredMatchesIntegral(t *testing.T) {
	schedules := map[string]*RateSchedule{
		"square": SquareWave(6e6, 24e6, 20*sim.Millisecond),
		"ramp":   TriangleRamp(4e6, 40e6, 100*sim.Millisecond, 8),
	}
	for _, name := range TraceNames() {
		s, err := LoadTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		schedules["trace:"+name] = s
	}
	const horizon = 2 * sim.Second
	for name, s := range schedules {
		sch := sim.NewScheduler()
		link := NewLinkSchedule(sch, s, NewDropTail(1<<30))
		// Enough backlog to stay busy: peak rate over the whole horizon.
		need := int(s.MaxBps()*horizon.Seconds()/8/1500) + 10
		backlog(link, need)
		sch.RunUntil(horizon)
		if link.Busy() == false {
			t.Fatalf("%s: link went idle; test needs a standing backlog", name)
		}
		wantBits := s.Bits(0, horizon)
		gotBits := float64(link.DeliveredBytes) * 8
		// Tolerance: one packet in flight plus sub-ns truncation drift.
		tol := 2 * 1500 * 8.0
		if math.Abs(gotBits-wantBits) > tol {
			t.Fatalf("%s: delivered %g bits, schedule integral %g (diff %g > %g)",
				name, gotBits, wantBits, gotBits-wantBits, tol)
		}
		if u := link.Utilization(); u > 1.0+1e-9 {
			t.Fatalf("%s: utilization %v > 1", name, u)
		}
	}
}

// feed drives a link with a steady packet arrival process (one 1500 B
// packet every gap), the way AQM controllers expect to be exercised —
// PIE's drop probability updates lazily at enqueue time, so a
// backlog-at-t-zero test would never run its control loop. Returns a
// pointer to the bytes-sent counter (final value valid after the run).
func feed(sch *sim.Scheduler, link *Link, gap sim.Time) *uint64 {
	sent := new(uint64)
	seq := uint64(0)
	var tick func()
	tick = func() {
		link.Send(&Packet{Seq: seq, Size: 1500})
		seq++
		*sent += 1500
		sch.After(gap, tick)
	}
	sch.At(0, tick)
	return sent
}

// aqmConservation checks the invariant every discipline must keep across
// rate transitions: byte conservation (sent = delivered + dropped +
// queued + in flight) and utilization <= 1. drops must be the
// discipline's total drop count (which includes enqueue refusals, so
// Link.DroppedPackets is a subset of it, not an addend).
func aqmConservation(t *testing.T, name string, link *Link, sent, drops uint64) {
	t.Helper()
	inFlight := uint64(0)
	if link.txPkt != nil {
		inFlight = uint64(link.txPkt.Size)
	}
	total := link.DeliveredBytes + drops*1500 + uint64(link.Q.BytesQueued()) + inFlight
	if total != sent {
		t.Fatalf("%s: conservation broken: delivered %d + dropped %d + queued %d + in flight %d != sent %d",
			name, link.DeliveredBytes, drops*1500, link.Q.BytesQueued(), inFlight, sent)
	}
	if u := link.Utilization(); u > 1.0+1e-9 {
		t.Fatalf("%s: utilization %v > 1", name, u)
	}
}

// TestVarLinkPIEAcrossTransitions: PIE estimates queueing delay from a
// fixed nominal drain rate, so on a square wave whose low phase quarters
// the capacity the real delay exceeds the estimate — the controller must
// still engage (its drop probability held above zero by the standing
// queue), keep the queue off the byte cap, and conserve bytes exactly
// across every transition.
func TestVarLinkPIEAcrossTransitions(t *testing.T) {
	nominal := 24e6
	capBytes := BufferBytesForDelay(nominal, 200*sim.Millisecond)
	rng := sim.NewRand(7)
	q := NewPIE(capBytes, nominal, 20*sim.Millisecond, rng)
	sch := sim.NewScheduler()
	link := NewLinkSchedule(sch, SquareWave(6e6, 24e6, 40*sim.Millisecond), q)
	// Offered load: 24 Mbit/s against a 15 Mbit/s mean capacity.
	sent := feed(sch, link, 500*sim.Microsecond)
	sch.RunUntil(2 * sim.Second)
	aqmConservation(t, "pie/square", link, *sent, q.Drops)
	if q.Drops == 0 {
		t.Fatal("pie never dropped under sustained overload across rate steps")
	}
	if q.DropProb() == 0 {
		t.Fatal("pie drop probability is zero under sustained overload")
	}
	// The controller keeps occupancy near target*nominal (60 KB), far
	// below the 600 KB byte cap; a pinned queue means it disengaged.
	if q.BytesQueued() > capBytes/2 {
		t.Fatalf("pie queue pinned near the byte cap: %d of %d", q.BytesQueued(), capBytes)
	}
}

// TestVarLinkPIEOutage: PIE on a link with an outage (rate 0) must not
// divide by zero, must absorb the stall, and must resume draining after
// recovery.
func TestVarLinkPIEOutage(t *testing.T) {
	nominal := 12e6
	rng := sim.NewRand(9)
	q := NewPIE(BufferBytesForDelay(nominal, 500*sim.Millisecond), nominal, 20*sim.Millisecond, rng)
	sch := sim.NewScheduler()
	link := NewLinkSchedule(sch, OutageAt(nominal, 100*sim.Millisecond, 200*sim.Millisecond), q)
	sent := feed(sch, link, 1*sim.Millisecond) // offered exactly at nominal
	sch.RunUntil(1 * sim.Second)
	aqmConservation(t, "pie/outage", link, *sent, q.Drops)
	// 800 ms of service at 12 Mbit/s is 1.2 MB; require most of it.
	wantMin := uint64(0.7 * 0.8 * nominal / 8)
	if link.DeliveredBytes < wantMin {
		t.Fatalf("delivered %d bytes across outage, want >= %d", link.DeliveredBytes, wantMin)
	}
}

// TestVarLinkCoDelAcrossTransitions: CoDel acts on measured sojourn time,
// so unlike PIE it needs no drain-rate estimate — across capacity steps
// it must engage and keep the standing queue's sojourn bounded near its
// target once in the dropping state.
func TestVarLinkCoDelAcrossTransitions(t *testing.T) {
	q := NewCoDel(1 << 22)
	s := SquareWave(6e6, 24e6, 40*sim.Millisecond)
	sch := sim.NewScheduler()
	link := NewLinkSchedule(sch, s, q)
	// Keep the queue fed (but finite) over the horizon.
	sent := backlog(link, 4000)
	sch.RunUntil(2 * sim.Second)
	if q.Drops == 0 {
		t.Fatal("codel never entered dropping state under overload across rate steps")
	}
	inFlight := uint64(0)
	if link.txPkt != nil {
		inFlight = uint64(link.txPkt.Size)
	}
	total := link.DeliveredBytes + q.Drops*1500 + uint64(q.BytesQueued()) + inFlight
	if total != sent {
		t.Fatalf("codel conservation broken: %d != %d", total, sent)
	}
	// CoDel's control law drains the standing queue toward Target
	// sojourn; with drops accounted, the queue must sit far below an
	// uncontrolled tail-drop queue (which would hold nearly all 4000
	// packets).
	if q.Len() > 2000 {
		t.Fatalf("codel standing queue %d packets; control law not engaging", q.Len())
	}
}

// TestConstantLinkFastPathUnchanged: a constant-rate link must not pay
// the varying-path costs (cancellable timers) and must behave as before.
func TestConstantLinkFastPathUnchanged(t *testing.T) {
	sch := sim.NewScheduler()
	link := NewLink(sch, 12e6, NewDropTail(1<<20))
	if link.Varying() {
		t.Fatal("constant link reports varying")
	}
	var times []sim.Time
	link.Deliver = func(p *Packet, now sim.Time) { times = append(times, now) }
	backlog(link, 5)
	sch.Run()
	for i, at := range times {
		if want := sim.Time(i+1) * sim.Millisecond; at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
	}
	if sch.PoolReuses == 0 {
		t.Fatal("constant path should use pooled timers")
	}
}
