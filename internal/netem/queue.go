package netem

import "nimbus/internal/sim"

// Queue is the buffering discipline at the bottleneck. Enqueue returns
// false when the packet is dropped (tail drop or AQM drop). Dequeue
// returns nil when empty.
type Queue interface {
	Enqueue(p *Packet, now sim.Time) bool
	Dequeue(now sim.Time) *Packet
	BytesQueued() int
	Len() int
}

// fifo is the common FIFO storage used by all queue disciplines.
type fifo struct {
	pkts  []*Packet
	head  int
	bytes int
}

func (q *fifo) push(p *Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
}

func (q *fifo) pop() *Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size
	// Compact occasionally so the slice does not grow without bound.
	if q.head > 1024 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	return p
}

func (q *fifo) len() int    { return len(q.pkts) - q.head }
func (q *fifo) queued() int { return q.bytes }

// DropTail is a FIFO queue with a fixed byte capacity.
type DropTail struct {
	Capacity int // bytes
	q        fifo
	Drops    uint64
}

// NewDropTail returns a drop-tail queue with the given byte capacity.
func NewDropTail(capacityBytes int) *DropTail {
	return &DropTail{Capacity: capacityBytes}
}

// Enqueue adds p unless the buffer would overflow.
func (d *DropTail) Enqueue(p *Packet, now sim.Time) bool {
	if d.q.queued()+p.Size > d.Capacity {
		d.Drops++
		return false
	}
	p.EnqueuedAt = now
	d.q.push(p)
	return true
}

// Dequeue removes and returns the head packet, recording its queueing delay.
func (d *DropTail) Dequeue(now sim.Time) *Packet {
	p := d.q.pop()
	if p != nil {
		p.QueueDelay = now - p.EnqueuedAt
	}
	return p
}

// BytesQueued returns the queue occupancy in bytes.
func (d *DropTail) BytesQueued() int { return d.q.queued() }

// BytesForFlow returns the bytes currently queued that belong to one
// flow. O(queue length); used by experiments that decompose queueing
// delay into self-inflicted and cross-traffic components (Fig. 3).
func (d *DropTail) BytesForFlow(id FlowID) int {
	total := 0
	for i := d.q.head; i < len(d.q.pkts); i++ {
		if d.q.pkts[i].Flow == id {
			total += d.q.pkts[i].Size
		}
	}
	return total
}

// Len returns the number of queued packets.
func (d *DropTail) Len() int { return d.q.len() }

// BufferBytesForDelay returns the buffer size in bytes corresponding to
// "ms milliseconds of buffering" at rateBps (bits/s), the way the paper
// specifies buffers (e.g. "100 ms buffering" on a 96 Mbit/s link = 2 BDP
// at 50 ms RTT).
func BufferBytesForDelay(rateBps float64, d sim.Time) int {
	return int(rateBps / 8 * d.Seconds())
}
