package netem

import "nimbus/internal/sim"

// Queue is the buffering discipline at a hop. Enqueue returns false when
// the packet is dropped (tail drop or AQM drop). Dequeue returns nil
// when empty. DropCount is the discipline's total drops — enqueue
// refusals (which Link.DroppedPackets also sees) plus any dequeue-time
// drops (CoDel's control-law drops happen inside Dequeue and never reach
// the link's counter), so per-hop drop metrics read it instead of the
// link counter.
type Queue interface {
	Enqueue(p *Packet, now sim.Time) bool
	Dequeue(now sim.Time) *Packet
	BytesQueued() int
	Len() int
	DropCount() uint64
}

// BurstQueue is implemented by disciplines whose dequeues can be
// committed ahead of wall time, which is what lets a link retire several
// back-to-back packets with one completion event (Link.SetBurst).
// DequeueAt removes the head packet as if it were dequeued at the future
// virtual time at — the packet's recorded queueing delay uses at, and its
// bytes keep counting toward admission occupancy until at — so enqueue
// decisions made between the commit and the staged start are identical to
// the per-packet path. Disciplines whose drop law depends on the dequeue
// wall clock (CoDel) or on observing occupancy per enqueue (PIE)
// deliberately do not implement it: bursting must never change a drop
// decision.
type BurstQueue interface {
	Queue
	DequeueAt(at sim.Time) *Packet
}

// FluidAware is implemented by disciplines that can count an external
// byte occupancy — a link's fluid cross-traffic backlog (Link.EnableFluid)
// — in their admission decision, so foreground packets see the same drop
// pressure the equivalent packetized background load would create.
// Disciplines whose drop law reads per-packet state the fluid term cannot
// feed (CoDel sojourn times, PIE's per-enqueue drop probability)
// deliberately do not implement it; on those queues fluid load consumes
// buffer room and link time but is invisible to the AQM law — one of the
// approximation's documented fidelity boundaries.
type FluidAware interface {
	Queue
	SetExtraOccupancy(extra func() int)
}

// fifo is the common FIFO storage used by all queue disciplines: a ring
// buffer with power-of-two capacity, so steady-state enqueue/dequeue does
// no copying and no allocation once the ring has grown to the working set.
type fifo struct {
	ring  []*Packet // len(ring) is a power of two (or zero before first push)
	head  int       // index of the oldest packet
	count int
	bytes int
}

func (q *fifo) push(p *Packet) {
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)&(len(q.ring)-1)] = p
	q.count++
	q.bytes += p.Size
}

func (q *fifo) grow() {
	n := len(q.ring) * 2
	if n == 0 {
		n = 64
	}
	next := make([]*Packet, n)
	for i := 0; i < q.count; i++ {
		next[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring = next
	q.head = 0
}

func (q *fifo) pop() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.count--
	q.bytes -= p.Size
	return p
}

// at returns the i-th queued packet (0 = head) without removing it.
func (q *fifo) at(i int) *Packet { return q.ring[(q.head+i)&(len(q.ring)-1)] }

func (q *fifo) len() int    { return q.count }
func (q *fifo) queued() int { return q.bytes }

// DropTail is a FIFO queue with a fixed byte capacity.
type DropTail struct {
	Capacity int // bytes
	q        fifo
	Drops    uint64
	// Burst-committed dequeues (DequeueAt): each entry reserves the
	// packet's bytes until its virtual transmission start so that
	// admission checks between a burst commit and the staged starts see
	// the same occupancy the per-packet path would. Entries are appended
	// in start order and expired lazily as the wall clock reaches them.
	pending      []pendingTx
	pendHead     int
	pendingBytes int
	// extra, when set, reports external bytes (a link's fluid backlog)
	// that count toward admission occupancy (FluidAware).
	extra func() int
}

// pendingTx is one burst-committed dequeue: bytes reserved until at.
type pendingTx struct {
	at    sim.Time
	bytes int
}

// NewDropTail returns a drop-tail queue with the given byte capacity.
func NewDropTail(capacityBytes int) *DropTail {
	return &DropTail{Capacity: capacityBytes}
}

// expirePending releases reservations whose transmission has started by
// now. The slice is reset (not resliced) when drained so the backing
// array is reused by the next burst.
func (d *DropTail) expirePending(now sim.Time) {
	for d.pendHead < len(d.pending) && d.pending[d.pendHead].at <= now {
		d.pendingBytes -= d.pending[d.pendHead].bytes
		d.pendHead++
	}
	if d.pendHead == len(d.pending) {
		d.pending = d.pending[:0]
		d.pendHead = 0
	}
}

// Enqueue adds p unless the buffer would overflow. Occupancy counts
// burst-committed packets until their virtual transmission start, so the
// drop decision is identical with bursting on or off.
func (d *DropTail) Enqueue(p *Packet, now sim.Time) bool {
	if d.pendingBytes > 0 {
		d.expirePending(now)
	}
	occ := d.q.queued() + d.pendingBytes
	if d.extra != nil {
		occ += d.extra()
	}
	if occ+p.Size > d.Capacity {
		d.Drops++
		return false
	}
	p.EnqueuedAt = now
	d.q.push(p)
	return true
}

// Dequeue removes and returns the head packet, recording its queueing
// delay. The delay accumulates across hops (a packet starts at zero when
// sent), so on multi-hop routes QueueDelay is the route's total queueing.
func (d *DropTail) Dequeue(now sim.Time) *Packet {
	if d.pendingBytes > 0 {
		d.expirePending(now)
	}
	p := d.q.pop()
	if p != nil {
		p.QueueDelay += now - p.EnqueuedAt
	}
	return p
}

// DequeueAt removes and returns the head packet as dequeued at the future
// virtual time at (see BurstQueue): the recorded queueing delay uses at,
// and the packet's bytes stay reserved against Capacity until at.
func (d *DropTail) DequeueAt(at sim.Time) *Packet {
	p := d.q.pop()
	if p == nil {
		return nil
	}
	p.QueueDelay += at - p.EnqueuedAt
	d.pending = append(d.pending, pendingTx{at: at, bytes: p.Size})
	d.pendingBytes += p.Size
	return p
}

// BytesQueued returns the queue occupancy in bytes, including
// burst-committed packets whose transmission has not yet started. The
// external fluid occupancy is not included: the link tracks its backlog
// separately (Link.FluidBacklog).
func (d *DropTail) BytesQueued() int { return d.q.queued() + d.pendingBytes }

// SetExtraOccupancy registers an external occupancy source counted by
// Enqueue's admission check (FluidAware).
func (d *DropTail) SetExtraOccupancy(extra func() int) { d.extra = extra }

// BytesForFlow returns the bytes currently queued that belong to one
// flow. O(queue length); used by experiments that decompose queueing
// delay into self-inflicted and cross-traffic components (Fig. 3).
func (d *DropTail) BytesForFlow(id FlowID) int {
	total := 0
	for i := 0; i < d.q.len(); i++ {
		if p := d.q.at(i); p.Flow == id {
			total += p.Size
		}
	}
	return total
}

// Len returns the number of queued packets.
func (d *DropTail) Len() int { return d.q.len() }

// DropCount returns the total tail drops.
func (d *DropTail) DropCount() uint64 { return d.Drops }

// BufferBytesForDelay returns the buffer size in bytes corresponding to
// "ms milliseconds of buffering" at rateBps (bits/s), the way the paper
// specifies buffers (e.g. "100 ms buffering" on a 96 Mbit/s link = 2 BDP
// at 50 ms RTT).
func BufferBytesForDelay(rateBps float64, d sim.Time) int {
	return int(rateBps / 8 * d.Seconds())
}
