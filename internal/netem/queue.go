package netem

import "nimbus/internal/sim"

// Queue is the buffering discipline at a hop. Enqueue returns false when
// the packet is dropped (tail drop or AQM drop). Dequeue returns nil
// when empty. DropCount is the discipline's total drops — enqueue
// refusals (which Link.DroppedPackets also sees) plus any dequeue-time
// drops (CoDel's control-law drops happen inside Dequeue and never reach
// the link's counter), so per-hop drop metrics read it instead of the
// link counter.
type Queue interface {
	Enqueue(p *Packet, now sim.Time) bool
	Dequeue(now sim.Time) *Packet
	BytesQueued() int
	Len() int
	DropCount() uint64
}

// fifo is the common FIFO storage used by all queue disciplines: a ring
// buffer with power-of-two capacity, so steady-state enqueue/dequeue does
// no copying and no allocation once the ring has grown to the working set.
type fifo struct {
	ring  []*Packet // len(ring) is a power of two (or zero before first push)
	head  int       // index of the oldest packet
	count int
	bytes int
}

func (q *fifo) push(p *Packet) {
	if q.count == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.count)&(len(q.ring)-1)] = p
	q.count++
	q.bytes += p.Size
}

func (q *fifo) grow() {
	n := len(q.ring) * 2
	if n == 0 {
		n = 64
	}
	next := make([]*Packet, n)
	for i := 0; i < q.count; i++ {
		next[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring = next
	q.head = 0
}

func (q *fifo) pop() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.count--
	q.bytes -= p.Size
	return p
}

// at returns the i-th queued packet (0 = head) without removing it.
func (q *fifo) at(i int) *Packet { return q.ring[(q.head+i)&(len(q.ring)-1)] }

func (q *fifo) len() int    { return q.count }
func (q *fifo) queued() int { return q.bytes }

// DropTail is a FIFO queue with a fixed byte capacity.
type DropTail struct {
	Capacity int // bytes
	q        fifo
	Drops    uint64
}

// NewDropTail returns a drop-tail queue with the given byte capacity.
func NewDropTail(capacityBytes int) *DropTail {
	return &DropTail{Capacity: capacityBytes}
}

// Enqueue adds p unless the buffer would overflow.
func (d *DropTail) Enqueue(p *Packet, now sim.Time) bool {
	if d.q.queued()+p.Size > d.Capacity {
		d.Drops++
		return false
	}
	p.EnqueuedAt = now
	d.q.push(p)
	return true
}

// Dequeue removes and returns the head packet, recording its queueing
// delay. The delay accumulates across hops (a packet starts at zero when
// sent), so on multi-hop routes QueueDelay is the route's total queueing.
func (d *DropTail) Dequeue(now sim.Time) *Packet {
	p := d.q.pop()
	if p != nil {
		p.QueueDelay += now - p.EnqueuedAt
	}
	return p
}

// BytesQueued returns the queue occupancy in bytes.
func (d *DropTail) BytesQueued() int { return d.q.queued() }

// BytesForFlow returns the bytes currently queued that belong to one
// flow. O(queue length); used by experiments that decompose queueing
// delay into self-inflicted and cross-traffic components (Fig. 3).
func (d *DropTail) BytesForFlow(id FlowID) int {
	total := 0
	for i := 0; i < d.q.len(); i++ {
		if p := d.q.at(i); p.Flow == id {
			total += p.Size
		}
	}
	return total
}

// Len returns the number of queued packets.
func (d *DropTail) Len() int { return d.q.len() }

// DropCount returns the total tail drops.
func (d *DropTail) DropCount() uint64 { return d.Drops }

// BufferBytesForDelay returns the buffer size in bytes corresponding to
// "ms milliseconds of buffering" at rateBps (bits/s), the way the paper
// specifies buffers (e.g. "100 ms buffering" on a 96 Mbit/s link = 2 BDP
// at 50 ms RTT).
func BufferBytesForDelay(rateBps float64, d sim.Time) int {
	return int(rateBps / 8 * d.Seconds())
}
