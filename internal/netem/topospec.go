package netem

import (
	"fmt"
	"strconv"
	"strings"
)

// LinkSpec declares one directed link of a topology, symbolically: rates
// and buffers may be left to the scenario ("inherit the nominal
// bottleneck rate") so one spec works across a rate sweep, the way scheme
// specs leave defaulted parameters to the registry.
type LinkSpec struct {
	Name string
	// From/To are the node names the link connects (derived for chain
	// specs, declared by presets). Display/introspection only.
	From, To string
	// RateMbps is the link's absolute capacity; 0 defers to RateScale.
	RateMbps float64
	// RateScale, when RateMbps is 0 and RateScale > 0, makes the link's
	// capacity a multiple of the scenario's nominal rate ("x4"). Both
	// zero means the link inherits the nominal rate itself.
	RateScale float64
	// DelayMs is the wire propagation delay crossed before entering the
	// link.
	DelayMs float64
	// AQM is the link's queue discipline; empty means drop-tail, except
	// on the bottleneck link where it defers to the scenario's AQM.
	AQM string
	// BufferMs sizes the link's buffer in time at its own rate; 0 defers
	// to the scenario's buffer depth.
	BufferMs float64
	// Pattern, when non-empty, gives the link a time-varying capacity
	// (ParsePattern, anchored at the link's resolved rate). The
	// scenario's LinkTrace/RatePattern, when set, override the
	// bottleneck link's pattern.
	Pattern string
	// Burst, when > 1, enables burst forwarding on this link with that
	// per-event packet budget (Link.SetBurst); it only takes effect on
	// constant-rate drop-tail links. 0 defers to the scenario's
	// link-burst setting.
	Burst int
	// FluidMbps, when > 0, loads this link with a constant fluid
	// background aggregate of that rate (Link.EnableFluid +
	// AddFluidRate): the load shapes queue occupancy, drops, and
	// utilization analytically without per-packet events. It composes
	// with a scenario-level fluid cross-traffic source on the same link.
	FluidMbps float64
}

// ResolveRate returns the link's capacity in bits/s given the scenario's
// nominal rate.
func (ls LinkSpec) ResolveRate(nominalBps float64) float64 {
	if ls.RateMbps > 0 {
		return ls.RateMbps * 1e6
	}
	if ls.RateScale > 0 {
		return ls.RateScale * nominalBps
	}
	return nominalBps
}

// RouteSpec names an ordered hop list for each direction. An empty Name
// is the default route; an empty Rev is the ideal (pure-delay) reverse
// path.
type RouteSpec struct {
	Name string
	Fwd  []string
	Rev  []string
}

// TopoSpec is a parsed topology: links, routes over them, and the
// designated bottleneck (the µ link oracles and link-level metrics refer
// to). Specs are symbolic — instantiation (queues, schedules, random
// streams) happens in the experiment layer.
type TopoSpec struct {
	// Preset is the registered preset name this spec came from; empty
	// for parsed chain specs. The canonical string form of a preset is
	// its name.
	Preset string
	Links  []LinkSpec
	Routes []RouteSpec
	// Bottleneck names the µ link.
	Bottleneck string
}

// Single reports whether the spec is the paper's trivial one-hop
// topology.
func (ts TopoSpec) Single() bool { return ts.Preset == "single" }

// clone deep-copies the spec's slices, so a parsed preset can be tweaked
// (LinkByName returns pointers into Links) without mutating the registry.
func (ts TopoSpec) clone() TopoSpec {
	out := ts
	out.Links = append([]LinkSpec(nil), ts.Links...)
	out.Routes = make([]RouteSpec, len(ts.Routes))
	for i, r := range ts.Routes {
		out.Routes[i] = RouteSpec{
			Name: r.Name,
			Fwd:  append([]string(nil), r.Fwd...),
			Rev:  append([]string(nil), r.Rev...),
		}
	}
	return out
}

// LinkByName returns the named link spec, or nil.
func (ts TopoSpec) LinkByName(name string) *LinkSpec {
	for i := range ts.Links {
		if ts.Links[i].Name == name {
			return &ts.Links[i]
		}
	}
	return nil
}

// Nodes returns the spec's node names in link order (unique, preserving
// first appearance).
func (ts TopoSpec) Nodes() []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, l := range ts.Links {
		add(l.From)
		add(l.To)
	}
	return out
}

// String renders the canonical form: the preset name, or the forward
// chain with each link's non-default parameters ("access(x4,5ms)->bn").
func (ts TopoSpec) String() string {
	if ts.Preset != "" {
		return ts.Preset
	}
	parts := make([]string, 0, len(ts.Links))
	for _, l := range ts.Links {
		parts = append(parts, l.format())
	}
	return strings.Join(parts, "->")
}

func (ls LinkSpec) format() string {
	var params []string
	if ls.RateMbps > 0 {
		params = append(params, formatNum(ls.RateMbps)+"mbps")
	} else if ls.RateScale > 0 {
		params = append(params, "x"+formatNum(ls.RateScale))
	}
	if ls.DelayMs > 0 {
		params = append(params, formatNum(ls.DelayMs)+"ms")
	}
	if ls.AQM != "" {
		params = append(params, ls.AQM)
	}
	if ls.BufferMs > 0 {
		params = append(params, "buf="+formatNum(ls.BufferMs)+"ms")
	}
	if ls.Pattern != "" {
		params = append(params, "pattern="+ls.Pattern)
	}
	if ls.Burst > 0 {
		params = append(params, "burst="+strconv.Itoa(ls.Burst))
	}
	if ls.FluidMbps > 0 {
		params = append(params, "fluid="+formatNum(ls.FluidMbps)+"mbps")
	}
	if len(params) == 0 {
		return ls.Name
	}
	return ls.Name + "(" + strings.Join(params, ",") + ")"
}

func formatNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// topoPreset pairs a registered preset spec with its documentation.
type topoPreset struct {
	spec TopoSpec
	doc  string
}

// topoPresets is the preset registry; presetOrder fixes listing order.
var topoPresets = map[string]topoPreset{}
var presetOrder []string

// RegisterTopology adds a preset topology to the registry, making it
// available to spec strings, scenarios, and sweeps everywhere. The
// spec's Preset field is set to name; its canonical form is the name.
func RegisterTopology(name, doc string, spec TopoSpec) {
	if _, dup := topoPresets[name]; dup {
		panic("netem: duplicate topology preset " + name)
	}
	spec.Preset = name
	if err := validateTopoSpec(spec); err != nil {
		panic("netem: preset " + name + ": " + err.Error())
	}
	// Stored and handed out by deep copy, so neither the registrant nor
	// ParseTopology callers can mutate the registry through the slices.
	topoPresets[name] = topoPreset{spec: spec.clone(), doc: doc}
	presetOrder = append(presetOrder, name)
}

// TopologyNames lists the registered preset names in registration order.
func TopologyNames() []string { return append([]string(nil), presetOrder...) }

// TopologyDoc returns a preset's one-line documentation.
func TopologyDoc(name string) string { return topoPresets[name].doc }

func init() {
	RegisterTopology("single",
		"the paper's Fig. 2 single bottleneck (the default)",
		TopoSpec{
			Links:      []LinkSpec{{Name: "bn", From: "sender", To: "receiver"}},
			Routes:     []RouteSpec{{Fwd: []string{"bn"}}},
			Bottleneck: "bn",
		})
	RegisterTopology("access-hop",
		"a fast access link (4x nominal, 5 ms) in front of the bottleneck; cross traffic can enter at the bottleneck via route bn-only",
		TopoSpec{
			Links: []LinkSpec{
				{Name: "access", From: "sender", To: "edge", RateScale: 4, DelayMs: 5},
				{Name: "bn", From: "edge", To: "receiver"},
			},
			Routes: []RouteSpec{
				{Fwd: []string{"access", "bn"}},
				{Name: "bn-only", Fwd: []string{"bn"}},
			},
			Bottleneck: "bn",
		})
	RegisterTopology("parking-lot",
		"three equal-rate hops in a chain; the default route crosses all three, routes hop1/hop2/hop3 cross one each (multi-bottleneck fairness)",
		TopoSpec{
			Links: []LinkSpec{
				{Name: "hop1", From: "n0", To: "n1", DelayMs: 2},
				{Name: "hop2", From: "n1", To: "n2", DelayMs: 2},
				{Name: "hop3", From: "n2", To: "n3", DelayMs: 2},
			},
			Routes: []RouteSpec{
				{Fwd: []string{"hop1", "hop2", "hop3"}},
				{Name: "hop1", Fwd: []string{"hop1"}},
				{Name: "hop2", Fwd: []string{"hop2"}},
				{Name: "hop3", Fwd: []string{"hop3"}},
			},
			Bottleneck: "hop1",
		})
	RegisterTopology("rev-congested",
		"the bottleneck plus a narrow reverse link (5% of nominal) that ACKs traverse; congest it via route rev-cross",
		TopoSpec{
			Links: []LinkSpec{
				{Name: "bn", From: "sender", To: "receiver"},
				{Name: "rev", From: "receiver", To: "sender", RateScale: 0.05},
			},
			Routes: []RouteSpec{
				{Fwd: []string{"bn"}, Rev: []string{"rev"}},
				{Name: "rev-cross", Fwd: []string{"rev"}},
			},
			Bottleneck: "bn",
		})
}

// ParseTopology resolves a topology spec string: empty or "single" is the
// paper's one-hop topology, other registered preset names resolve from
// the registry, and anything else parses as a forward chain of link
// specs — "access(100mbps,5ms)->bn(48mbps,droptail)" — whose default
// route crosses every link in order. Link parameters, comma-separated in
// any order: an absolute rate ("100mbps"), a nominal-rate multiple
// ("x4"), a wire delay ("5ms"), an AQM name (droptail, pie, codel), a
// buffer depth ("buf=50ms"), a capacity pattern
// ("pattern=step:6:24:2000"), a burst budget ("burst=32"), and a
// constant fluid background load ("fluid=24mbps"). A chain's
// bottleneck is its link with no
// explicit rate, or the lowest-rate link when all rates are explicit.
func ParseTopology(s string) (TopoSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		s = "single"
	}
	if !strings.Contains(s, "->") && !strings.Contains(s, "(") {
		p, ok := topoPresets[strings.ToLower(s)]
		if !ok {
			return TopoSpec{}, fmt.Errorf("netem: unknown topology %q (presets: %s; or a chain like access(x4,5ms)->bn)",
				s, strings.Join(TopologyNames(), ", "))
		}
		return p.spec.clone(), nil
	}
	var ts TopoSpec
	segs := strings.Split(s, "->")
	// Keep routes far inside the packet hop index's range; no plausible
	// emulated path needs more hops than this.
	const maxChainLinks = 64
	if len(segs) > maxChainLinks {
		return TopoSpec{}, fmt.Errorf("netem: topology %q: %d links exceeds the %d-link limit", s, len(segs), maxChainLinks)
	}
	for _, seg := range segs {
		ls, err := parseLinkSpec(seg)
		if err != nil {
			return TopoSpec{}, fmt.Errorf("netem: topology %q: %w", s, err)
		}
		if ts.LinkByName(ls.Name) != nil {
			return TopoSpec{}, fmt.Errorf("netem: topology %q: duplicate link %q", s, ls.Name)
		}
		ls.From = fmt.Sprintf("n%d", len(ts.Links))
		ls.To = fmt.Sprintf("n%d", len(ts.Links)+1)
		ts.Links = append(ts.Links, ls)
	}
	route := RouteSpec{}
	for _, l := range ts.Links {
		route.Fwd = append(route.Fwd, l.Name)
	}
	ts.Routes = []RouteSpec{route}
	ts.Bottleneck = chainBottleneck(ts.Links)
	// A one-link chain with no parameters — "bn()"-style, since a bare
	// name without parens is a preset lookup — is the single topology;
	// canonicalize so it shares a key with "single" and "".
	if len(ts.Links) == 1 && ts.Links[0] == (LinkSpec{Name: ts.Links[0].Name, From: "n0", To: "n1"}) {
		return topoPresets["single"].spec.clone(), nil
	}
	if err := validateTopoSpec(ts); err != nil {
		return TopoSpec{}, fmt.Errorf("netem: topology %q: %w", s, err)
	}
	return ts, nil
}

// chainBottleneck is the static µ-link guess for a freshly parsed chain:
// the (first) link deferring to the nominal rate, else the first link.
// A chain whose rates mix scales and absolute values cannot be ordered
// without knowing the nominal rate, so every consumer re-resolves with
// BottleneckAt; this static pick only anchors validation.
func chainBottleneck(links []LinkSpec) string {
	for _, l := range links {
		if l.RateMbps == 0 && l.RateScale == 0 {
			return l.Name
		}
	}
	return links[0].Name
}

// BottleneckAt returns the µ link given the scenario's nominal rate.
// Presets keep their declared bottleneck (rev-congested's reverse link
// is slower than its declared bottleneck on purpose — it carries ACKs,
// not the data direction). Chains resolve every rate against the nominal
// and pick the slowest link, preferring a nominal-inheriting link on
// ties (the "the unnamed rate is the bottleneck" convention).
func (ts TopoSpec) BottleneckAt(nominalBps float64) string {
	if ts.Preset != "" {
		return ts.Bottleneck
	}
	for _, l := range ts.Links {
		if l.RateMbps == 0 && l.RateScale == 0 {
			return l.Name
		}
	}
	best := ts.Links[0]
	for _, l := range ts.Links[1:] {
		if l.ResolveRate(nominalBps) < best.ResolveRate(nominalBps) {
			best = l
		}
	}
	return best.Name
}

func parseLinkSpec(seg string) (LinkSpec, error) {
	seg = strings.TrimSpace(seg)
	name := seg
	params := ""
	if i := strings.IndexByte(seg, '('); i >= 0 {
		if !strings.HasSuffix(seg, ")") {
			return LinkSpec{}, fmt.Errorf("link %q: missing closing parenthesis", seg)
		}
		name, params = seg[:i], seg[i+1:len(seg)-1]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if err := checkTopoToken(name, "link name"); err != nil {
		return LinkSpec{}, err
	}
	ls := LinkSpec{Name: name}
	for _, tok := range strings.Split(params, ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		if tok == "" {
			continue
		}
		switch {
		// fluid= before the bare-rate case: its value also ends in "mbps".
		case strings.HasPrefix(tok, "fluid="):
			v := strings.TrimSuffix(strings.TrimPrefix(tok, "fluid="), "mbps")
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return LinkSpec{}, fmt.Errorf("link %q: bad fluid load %q (want fluid=24mbps)", name, tok)
			}
			ls.FluidMbps = f
		case strings.HasSuffix(tok, "mbps"):
			v, err := strconv.ParseFloat(strings.TrimSuffix(tok, "mbps"), 64)
			if err != nil || v <= 0 {
				return LinkSpec{}, fmt.Errorf("link %q: bad rate %q", name, tok)
			}
			ls.RateMbps = v
		case strings.HasPrefix(tok, "x"):
			v, err := strconv.ParseFloat(tok[1:], 64)
			if err != nil || v <= 0 {
				return LinkSpec{}, fmt.Errorf("link %q: bad rate scale %q", name, tok)
			}
			ls.RateScale = v
		case strings.HasSuffix(tok, "ms") && !strings.Contains(tok, "="):
			v, err := strconv.ParseFloat(strings.TrimSuffix(tok, "ms"), 64)
			if err != nil || v < 0 {
				return LinkSpec{}, fmt.Errorf("link %q: bad delay %q", name, tok)
			}
			ls.DelayMs = v
		case tok == "droptail" || tok == "pie" || tok == "codel":
			ls.AQM = tok
		case strings.HasPrefix(tok, "buf="):
			v := strings.TrimSuffix(strings.TrimPrefix(tok, "buf="), "ms")
			b, err := strconv.ParseFloat(v, 64)
			if err != nil || b <= 0 {
				return LinkSpec{}, fmt.Errorf("link %q: bad buffer %q", name, tok)
			}
			ls.BufferMs = b
		case strings.HasPrefix(tok, "pattern="):
			pat := strings.TrimPrefix(tok, "pattern=")
			// Validate the pattern's syntax now with a probe rate, so a
			// typo fails at parse time rather than mid-sweep.
			if _, err := ParsePattern(pat, 1e6); err != nil {
				return LinkSpec{}, fmt.Errorf("link %q: %w", name, err)
			}
			ls.Pattern = pat
		case strings.HasPrefix(tok, "burst="):
			v, err := strconv.Atoi(strings.TrimPrefix(tok, "burst="))
			if err != nil || v < 1 || v > MaxBurst {
				return LinkSpec{}, fmt.Errorf("link %q: bad burst budget %q (want 1..%d)", name, tok, MaxBurst)
			}
			ls.Burst = v
		default:
			return LinkSpec{}, fmt.Errorf("link %q: unknown parameter %q (want rate like 100mbps or x4, delay like 5ms, an AQM, buf=, pattern=, burst=, or fluid=)", name, tok)
		}
	}
	if ls.RateMbps > 0 && ls.RateScale > 0 {
		return LinkSpec{}, fmt.Errorf("link %q: both an absolute rate and a scale given", name)
	}
	return ls, nil
}

func validateTopoSpec(ts TopoSpec) error {
	if len(ts.Links) == 0 {
		return fmt.Errorf("no links")
	}
	names := map[string]bool{}
	for _, l := range ts.Links {
		if err := checkTopoToken(l.Name, "link name"); err != nil {
			return err
		}
		if names[l.Name] {
			return fmt.Errorf("duplicate link %q", l.Name)
		}
		names[l.Name] = true
	}
	if ts.Bottleneck == "" || !names[ts.Bottleneck] {
		return fmt.Errorf("bottleneck %q is not a declared link", ts.Bottleneck)
	}
	hasDefault := false
	routes := map[string]bool{}
	for _, r := range ts.Routes {
		if r.Name == "" {
			hasDefault = true
		} else if err := checkTopoToken(r.Name, "route name"); err != nil {
			return err
		}
		if routes[r.Name] {
			return fmt.Errorf("duplicate route %q", r.Name)
		}
		routes[r.Name] = true
		if len(r.Fwd) == 0 {
			return fmt.Errorf("route %q has no forward hops", r.Name)
		}
		for _, hop := range append(append([]string(nil), r.Fwd...), r.Rev...) {
			if !names[hop] {
				return fmt.Errorf("route %q references unknown link %q", r.Name, hop)
			}
		}
	}
	if !hasDefault {
		return fmt.Errorf("no default route")
	}
	return nil
}

// checkTopoToken enforces the token charset shared with scheme specs:
// lowercase letters, digits, and [-_.], starting with a letter or digit.
func checkTopoToken(s, what string) error {
	if s == "" {
		return fmt.Errorf("empty %s", what)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '_' || c == '.') && i > 0:
		default:
			return fmt.Errorf("bad %s %q: character %q not allowed", what, s, c)
		}
	}
	return nil
}

// CanonicalTopology parses a topology spec string and returns its
// canonical form for scenario keys: the empty string for the single
// (default) topology — so "", "single", and parameterless one-link
// chains like "bn()" all share the pre-topology scenario keys — and the
// preset name or formatted chain otherwise.
func CanonicalTopology(s string) (string, error) {
	ts, err := ParseTopology(s)
	if err != nil {
		return "", err
	}
	if ts.Single() {
		return "", nil
	}
	return ts.String(), nil
}
