package netem

import "nimbus/internal/sim"

// Fluid cross traffic: a link can carry an aggregate background load as a
// piecewise-constant *rate process* instead of discrete packets. Between
// rate-change events the load's effect on the queue is integrated
// analytically — backlog growth while the link is busy with foreground
// packets, drain while it is idle, overflow against the buffer — so the
// aggregate costs one scheduler event per rate change instead of one per
// packet. Foreground packets stay exact: they are admitted against the
// combined (packet + fluid) occupancy, and any fluid backlog standing in
// front of a dequeued packet serializes ahead of it, extending its
// transmission and recorded queueing delay exactly as the equivalent
// packet burst would.
//
// The approximation holds when the aggregate is far from the detector's
// measurement window: it preserves mean load, queue occupancy, and drop
// pressure, but replaces per-packet arrival jitter with its fluid limit.
// It deliberately composes only with DropTail (the FluidAware queue):
// AQM disciplines (CoDel, PIE) make drop decisions from per-packet
// sojourn times and wall-clock laws that a rate process cannot feed, so
// on those queues the fluid backlog still consumes buffer room and link
// time but is invisible to the AQM drop law — a documented fidelity gap
// (see DESIGN.md's decision table). Burst forwarding and fluid are
// mutually exclusive on a link: both restage the drain loop, and the
// fluid path already amortizes events without reordering deliveries.

// EnableFluid turns on the link's fluid cross-traffic term. capBytes is
// the buffer room the fluid backlog shares with foreground packets
// (normally the queue's own capacity). Foreground admission on a
// FluidAware queue then counts the fluid backlog as occupancy, and the
// backlog itself is capped at the room foreground packets leave —
// overflow is dropped fluid. Configure before traffic starts; enabling
// fluid disables burst forwarding on this link.
func (l *Link) EnableFluid(capBytes int) {
	l.fluidOn = true
	l.fluidCap = capBytes
	l.fluidSettled = l.Sch.Now()
	l.bq = nil
	if fa, ok := l.Q.(FluidAware); ok {
		fa.SetExtraOccupancy(l.fluidOccupancy)
	}
}

// FluidEnabled reports whether the link carries a fluid load term.
func (l *Link) FluidEnabled() bool { return l.fluidOn }

// fluidOccupancy is the admission hook handed to FluidAware queues: the
// current backlog in whole bytes. Send settles before enqueueing, so the
// backlog is already current when the queue consults it.
func (l *Link) fluidOccupancy() int { return int(l.fluidBacklog) }

// AddFluidRate adds deltaBps (bits/s, may be negative) to the link's
// fluid arrival rate. Deltas compose: a topology's constant per-link
// load and a scenario's fluid source can both feed one link. The rate
// is clamped at zero. EnableFluid must have been called.
func (l *Link) AddFluidRate(deltaBps float64) {
	l.settleFluid(l.Sch.Now())
	l.fluidBps += deltaBps
	if l.fluidBps < 0 {
		l.fluidBps = 0
	}
}

// FluidRate returns the current fluid arrival rate in bits/s.
func (l *Link) FluidRate() float64 { return l.fluidBps }

// FluidBacklog settles and returns the current fluid backlog in bytes.
func (l *Link) FluidBacklog() float64 {
	l.settleFluid(l.Sch.Now())
	return l.fluidBacklog
}

// FluidStats settles and returns the cumulative fluid bytes delivered
// and dropped. Elastic fluid sources read the dropped counter's delta as
// their congestion signal.
func (l *Link) FluidStats() (delivered, dropped float64) {
	l.settleFluid(l.Sch.Now())
	return l.fluidDelivered, l.fluidDropped
}

// settleFluid integrates the fluid process from the last settlement to
// now: while the link is busy with a foreground packet (or in an outage)
// arrivals accumulate as backlog; while it is idle the backlog plus
// arrivals drain at capacity, charging the link's busy time so
// utilization includes the background load. The backlog is then capped
// at the buffer room foreground packets leave, the overflow counted as
// dropped fluid. Every caller that changes the rate, the capacity, or
// the busy state settles first, so each integrated segment has constant
// parameters and the result is exact for the fluid model.
func (l *Link) settleFluid(now sim.Time) {
	if !l.fluidOn || now <= l.fluidSettled {
		return
	}
	dt := (now - l.fluidSettled).Seconds()
	l.fluidSettled = now
	arrived := l.fluidBps / 8 * dt
	if l.busy || l.rateBps <= 0 {
		l.fluidBacklog += arrived
	} else {
		drainable := l.rateBps / 8 * dt
		delivered := l.fluidBacklog + arrived
		if delivered > drainable {
			delivered = drainable
		}
		l.fluidBacklog += arrived - delivered
		if delivered > 0 {
			l.fluidDelivered += delivered
			l.busyTime += sim.FromSeconds(delivered * 8 / l.rateBps)
		}
	}
	room := float64(l.fluidCap - l.Q.BytesQueued())
	if room < 0 {
		room = 0
	}
	if l.fluidBacklog > room {
		l.fluidDropped += l.fluidBacklog - room
		l.fluidBacklog = room
	}
}

// flushFluidAhead serializes the fluid that stands in FIFO order ahead
// of the foreground packet the link just dequeued: only fluid that
// arrived before the packet enqueued (its fluidMark, stamped by Send)
// delays it — fluid arriving while it waited stays backlog behind it,
// exactly as later cross packets would in the per-packet path. The
// flushed bytes' transmission time extends the packet's queueing delay
// and, on the constant-rate path, its completion event. On a varying
// link the caller folds the returned bits into txBitsLeft instead, so
// only the delay attribution (at the current rate, zero during an
// outage) happens here.
//
// The mark is the link's cumulative delivered+standing fluid at
// enqueue time, so "ahead" is mark minus delivered-so-far: head-of-
// line fluid deliveries consume it, while overflow drops (which shed
// the newest fluid, behind the packet) do not.
func (l *Link) flushFluidAhead(p *Packet) (ftx sim.Time, bits float64) {
	ahead := p.fluidMark - l.fluidDelivered
	if ahead > l.fluidBacklog {
		ahead = l.fluidBacklog
	}
	if ahead <= 0 {
		return 0, 0
	}
	l.fluidBacklog -= ahead
	l.fluidDelivered += ahead
	if l.rateBps > 0 {
		ftx = sim.FromSeconds(ahead * 8 / l.rateBps)
	}
	p.QueueDelay += ftx
	l.qdelaySum += ftx
	return ftx, ahead * 8
}
