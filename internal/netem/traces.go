package netem

import (
	"bytes"
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// The embedded trace corpus: small, hand-written capacity traces in the
// "time_ms,mbps" format that cover the qualitative regimes the paper's
// emulated paths exercise (cellular rate ramps, Wi-Fi contention swings,
// outage-and-recover).
//
//go:embed traces/*.csv
var traceFS embed.FS

// TraceNames lists the embedded capacity traces, sorted.
func TraceNames() []string {
	entries, err := traceFS.ReadDir("traces")
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".csv"))
	}
	sort.Strings(out)
	return out
}

// traceCache memoizes parsed schedules: they are immutable and shared,
// and a sweep resolves the same trace once per scenario from worker
// goroutines, so each name/path should be read and parsed only once.
var traceCache sync.Map // string -> *RateSchedule

// LoadTrace resolves a trace by name from the embedded corpus, falling
// back to reading nameOrPath as a trace file on disk. Results are cached
// for the life of the process.
func LoadTrace(nameOrPath string) (*RateSchedule, error) {
	if s, ok := traceCache.Load(nameOrPath); ok {
		return s.(*RateSchedule), nil
	}
	s, err := loadTraceUncached(nameOrPath)
	if err != nil {
		return nil, err
	}
	traceCache.Store(nameOrPath, s)
	return s, nil
}

func loadTraceUncached(nameOrPath string) (*RateSchedule, error) {
	if data, err := traceFS.ReadFile("traces/" + nameOrPath + ".csv"); err == nil {
		s, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("embedded trace %s: %w", nameOrPath, err)
		}
		return s, nil
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		return nil, fmt.Errorf("netem: trace %q is not embedded (have %v) and not readable: %w",
			nameOrPath, TraceNames(), err)
	}
	defer f.Close()
	s, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("trace file %s: %w", nameOrPath, err)
	}
	return s, nil
}
