package netem

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nimbus/internal/sim"
)

func TestRateScheduleValidation(t *testing.T) {
	cases := []struct {
		name   string
		points []RatePoint
		period sim.Time
	}{
		{"empty", nil, 0},
		{"first not at zero", []RatePoint{{sim.Millisecond, 1e6}}, 0},
		{"non-increasing", []RatePoint{{0, 1e6}, {sim.Millisecond, 2e6}, {sim.Millisecond, 3e6}}, 0},
		{"negative rate", []RatePoint{{0, -1}}, 0},
		{"period inside points", []RatePoint{{0, 1e6}, {10 * sim.Millisecond, 2e6}}, 10 * sim.Millisecond},
		{"negative period", []RatePoint{{0, 1e6}}, -sim.Second},
	}
	for _, c := range cases {
		if _, err := NewRateSchedule(c.points, c.period); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewRateSchedule([]RatePoint{{0, 1e6}, {sim.Second, 0}}, 2*sim.Second); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestRateAtAndNextChange(t *testing.T) {
	// Hold-last schedule.
	s, err := NewRateSchedule([]RatePoint{{0, 10e6}, {10 * sim.Millisecond, 5e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RateAt(0); got != 10e6 {
		t.Fatalf("RateAt(0) = %g", got)
	}
	if got := s.RateAt(10 * sim.Millisecond); got != 5e6 {
		t.Fatalf("RateAt(10ms) = %g", got)
	}
	if got := s.RateAt(sim.Second); got != 5e6 {
		t.Fatalf("hold-last RateAt(1s) = %g", got)
	}
	if next, ok := s.NextChange(0); !ok || next != 10*sim.Millisecond {
		t.Fatalf("NextChange(0) = %v, %v", next, ok)
	}
	if _, ok := s.NextChange(10 * sim.Millisecond); ok {
		t.Fatal("hold-last schedule should have no change after the last point")
	}

	// Periodic schedule: wraps and keeps changing forever.
	p, err := NewRateSchedule([]RatePoint{{0, 8e6}, {10 * sim.Millisecond, 2e6}}, 20*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RateAt(25 * sim.Millisecond); got != 8e6 {
		t.Fatalf("periodic RateAt(25ms) = %g", got)
	}
	if got := p.RateAt(35 * sim.Millisecond); got != 2e6 {
		t.Fatalf("periodic RateAt(35ms) = %g", got)
	}
	if next, ok := p.NextChange(10 * sim.Millisecond); !ok || next != 20*sim.Millisecond {
		t.Fatalf("NextChange(10ms) = %v, %v (want the wrap point)", next, ok)
	}
	if next, ok := p.NextChange(20 * sim.Millisecond); !ok || next != 30*sim.Millisecond {
		t.Fatalf("NextChange(20ms) = %v, %v", next, ok)
	}
	if _, ok := ConstantRate(5e6).NextChange(0); ok {
		t.Fatal("constant schedule reported a change")
	}
}

func TestBitsIntegral(t *testing.T) {
	s := SquareWave(2e6, 8e6, 20*sim.Millisecond)
	// One full period: 8 Mbit/s for 10 ms + 2 Mbit/s for 10 ms = 100000 bits.
	if got := s.Bits(0, 20*sim.Millisecond); math.Abs(got-100000) > 1e-6 {
		t.Fatalf("Bits(one period) = %g, want 100000", got)
	}
	// Misaligned window spanning a wrap: [15ms, 45ms) = 5ms low + 10ms
	// high + 10ms low + 5ms high = 10000+80000+20000+40000 = 150000.
	if got := s.Bits(15*sim.Millisecond, 45*sim.Millisecond); math.Abs(got-150000) > 1e-6 {
		t.Fatalf("Bits(wrap window) = %g, want 150000", got)
	}
	if got := s.MeanBps(0, 40*sim.Millisecond); math.Abs(got-5e6) > 1 {
		t.Fatalf("MeanBps = %g, want 5e6", got)
	}
	if got := s.MaxBps(); got != 8e6 {
		t.Fatalf("MaxBps = %g", got)
	}
}

func TestParsePattern(t *testing.T) {
	base := 48e6
	for spec, wantMax := range map[string]float64{
		"":                  48e6,
		"constant":          48e6,
		"step:6:24:2000":    24e6,
		"ramp:4:40:8000":    40e6,
		"outage:10000:3000": 48e6,
	} {
		s, err := ParsePattern(spec, base)
		if err != nil {
			t.Fatalf("ParsePattern(%q): %v", spec, err)
		}
		if got := s.MaxBps(); got != wantMax {
			t.Fatalf("ParsePattern(%q).MaxBps = %g, want %g", spec, got, wantMax)
		}
	}
	s, _ := ParsePattern("outage:10000:3000", base)
	if got := s.RateAt(11 * sim.Second); got != 0 {
		t.Fatalf("outage not dark: %g", got)
	}
	if got := s.RateAt(14 * sim.Second); got != base {
		t.Fatalf("outage did not recover: %g", got)
	}
	// outage starting at 0 is a valid dark-then-recover schedule.
	s, err := ParsePattern("outage:0:2000", base)
	if err != nil {
		t.Fatalf("outage at t=0: %v", err)
	}
	if s.RateAt(0) != 0 || s.RateAt(3*sim.Second) != base {
		t.Fatalf("outage at t=0 wrong shape: %g, %g", s.RateAt(0), s.RateAt(3*sim.Second))
	}
	for _, bad := range []string{
		"wave:1:2:3", "step:1:2", "step:1:2:x", "step:1:2:0",
		"ramp:1:2:-5", "outage:-1:5", "outage:0:0",
		// Sign typos must be parse errors, not silent permanent outages.
		"step:6:-24:2000", "step:-6:24:2000", "ramp:-4:40:8000",
	} {
		if _, err := ParsePattern(bad, base); err == nil {
			t.Errorf("ParsePattern(%q): expected error", bad)
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	for name, text := range map[string]string{
		"empty":              "# nothing here\n",
		"missing comma":      "time_ms,mbps\n0 24\n",
		"bad time":           "x,24\n",
		"bad rate":           "0,fast\n",
		"negative time":      "-5,24\n",
		"negative rate":      "0,-24\n",
		"not starting at 0":  "5,24\n10,12\n",
		"non-increasing":     "0,24\n10,12\n10,6\n",
		"bad period":         "# period_ms: soon\n0,24\n",
		"period before last": "# period_ms: 5\n0,24\n10,12\n",
	} {
		if _, err := ParseTrace(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestEmbeddedTraceCorpus(t *testing.T) {
	names := TraceNames()
	for _, want := range []string{"cell-ramp", "wifi-cafe", "outage"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("embedded corpus missing %q (have %v)", want, names)
		}
	}
	for _, n := range names {
		s, err := LoadTrace(n)
		if err != nil {
			t.Fatalf("LoadTrace(%s): %v", n, err)
		}
		if s.Constant() {
			t.Fatalf("embedded trace %s is constant", n)
		}
		if s.Period == 0 {
			t.Fatalf("embedded trace %s should loop", n)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	for _, n := range TraceNames() {
		orig, err := LoadTrace(n)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := orig.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ParseTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: re-parse: %v", n, err)
		}
		if back.Period != orig.Period || len(back.Points) != len(orig.Points) {
			t.Fatalf("%s: round trip changed shape", n)
		}
		for i := range orig.Points {
			if back.Points[i] != orig.Points[i] {
				t.Fatalf("%s: point %d changed: %v vs %v", n, i, back.Points[i], orig.Points[i])
			}
		}
	}
}

func TestLoadTraceFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custom.csv")
	if err := os.WriteFile(path, []byte("time_ms,mbps\n0,10\n500,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.RateAt(600*sim.Millisecond) != 2e6 {
		t.Fatalf("file trace rate wrong: %g", s.RateAt(600*sim.Millisecond))
	}
	if _, err := LoadTrace("no-such-trace"); err == nil {
		t.Fatal("expected error for unknown trace")
	}
}
