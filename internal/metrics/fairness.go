package metrics

import "math"

// JainIndex is Jain's fairness index of an allocation: (Σx)²/(n·Σx²),
// 1.0 for perfectly equal shares, 1/n when one flow takes everything.
// It returns 0 for an empty or all-zero allocation.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq <= 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// OnlineJain accumulates Jain's fairness index one observation at a
// time, so a churn workload can score fairness over tens of thousands of
// completed flows without retaining a per-flow slice. Feed it one
// representative rate per flow (e.g. size/FCT) as each flow completes;
// Index() is then exactly JainIndex of the values seen so far.
type OnlineJain struct {
	n          int
	sum, sumSq float64
}

// Add records one flow's value.
func (j *OnlineJain) Add(x float64) {
	j.n++
	j.sum += x
	j.sumSq += x * x
}

// N returns the number of values observed.
func (j *OnlineJain) N() int { return j.n }

// Index returns Jain's index over the values observed so far (0 when
// empty or all-zero, matching JainIndex).
func (j *OnlineJain) Index() float64 {
	if j.sumSq <= 0 {
		return 0
	}
	return j.sum * j.sum / (float64(j.n) * j.sumSq)
}

// JSDUniform is the Jensen-Shannon divergence, in bits, between the
// normalized share vector and the equal-share (uniform) allocation: 0
// for perfect fairness, approaching 1 as the allocation concentrates.
// Unlike Jain's index it weighs starvation heavily — a flow at zero
// share moves JSD much further than it moves Jain. It returns 0 for an
// empty or all-zero allocation.
func JSDUniform(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 || len(xs) == 0 {
		return 0
	}
	u := 1 / float64(len(xs))
	var jsd float64
	for _, x := range xs {
		p := 0.0
		if x > 0 {
			p = x / total
		}
		m := (p + u) / 2
		if p > 0 {
			jsd += p * math.Log2(p/m) / 2
		}
		jsd += u * math.Log2(u/m) / 2
	}
	// Clamp tiny negative float error.
	if jsd < 0 {
		jsd = 0
	}
	return jsd
}
