package metrics

import "math"

// JainIndex is Jain's fairness index of an allocation: (Σx)²/(n·Σx²),
// 1.0 for perfectly equal shares, 1/n when one flow takes everything.
// It returns 0 for an empty or all-zero allocation.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq <= 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// JSDUniform is the Jensen-Shannon divergence, in bits, between the
// normalized share vector and the equal-share (uniform) allocation: 0
// for perfect fairness, approaching 1 as the allocation concentrates.
// Unlike Jain's index it weighs starvation heavily — a flow at zero
// share moves JSD much further than it moves Jain. It returns 0 for an
// empty or all-zero allocation.
func JSDUniform(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 || len(xs) == 0 {
		return 0
	}
	u := 1 / float64(len(xs))
	var jsd float64
	for _, x := range xs {
		p := 0.0
		if x > 0 {
			p = x / total
		}
		m := (p + u) / 2
		if p > 0 {
			jsd += p * math.Log2(p/m) / 2
		}
		jsd += u * math.Log2(u/m) / 2
	}
	// Clamp tiny negative float error.
	if jsd < 0 {
		jsd = 0
	}
	return jsd
}
