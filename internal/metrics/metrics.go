// Package metrics provides the recorders the experiments use to produce
// the paper's tables and figures: binned throughput series, per-packet
// queueing-delay samples with reservoir capping, classification accuracy
// against ground truth, and flow-completion-time collections.
package metrics

import (
	"math"
	"sort"

	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// Meter bins delivered bytes into fixed-width time bins and reports a
// throughput series in Mbit/s.
type Meter struct {
	Bin  sim.Time
	bins []float64 // bytes per bin
}

// NewMeter returns a meter with the given bin width (e.g. 1 s).
func NewMeter(bin sim.Time) *Meter { return &Meter{Bin: bin} }

// Add records n bytes delivered at time now.
func (m *Meter) Add(now sim.Time, n int) {
	idx := int(now / m.Bin)
	for len(m.bins) <= idx {
		m.bins = append(m.bins, 0)
	}
	m.bins[idx] += float64(n)
}

// SeriesMbps returns per-bin throughput in Mbit/s.
func (m *Meter) SeriesMbps() []float64 {
	out := make([]float64, len(m.bins))
	secs := m.Bin.Seconds()
	for i, b := range m.bins {
		out[i] = b * 8 / secs / 1e6
	}
	return out
}

// MeanMbps returns the mean throughput over [from, to).
func (m *Meter) MeanMbps(from, to sim.Time) float64 {
	lo, hi := int(from/m.Bin), int(to/m.Bin)
	if hi > len(m.bins) {
		hi = len(m.bins)
	}
	if lo >= hi {
		return 0
	}
	total := 0.0
	for i := lo; i < hi; i++ {
		total += m.bins[i]
	}
	return total * 8 / (float64(hi-lo) * m.Bin.Seconds()) / 1e6
}

// DelayRecorder collects per-packet queueing (or RTT) delay samples in
// milliseconds, with reservoir sampling beyond a cap so long experiments
// stay in memory.
type DelayRecorder struct {
	Cap     int
	samples []float64
	seen    int
	rng     *sim.Rand
}

// NewDelayRecorder returns a recorder keeping at most cap samples.
func NewDelayRecorder(cap int, rng *sim.Rand) *DelayRecorder {
	if cap <= 0 {
		cap = 200000
	}
	return &DelayRecorder{Cap: cap, rng: rng}
}

// Add records a delay sample.
func (d *DelayRecorder) Add(delay sim.Time) {
	d.seen++
	ms := delay.Millis()
	if len(d.samples) < d.Cap {
		d.samples = append(d.samples, ms)
		return
	}
	// Reservoir replacement keeps a uniform sample.
	j := d.rng.Intn(d.seen)
	if j < d.Cap {
		d.samples[j] = ms
	}
}

// Samples returns the retained samples (milliseconds).
func (d *DelayRecorder) Samples() []float64 { return d.samples }

// Summary summarizes the samples.
func (d *DelayRecorder) Summary() stats.Summary { return stats.Summarize(d.samples) }

// MeanQuantiles returns the sample mean and the requested quantiles with a
// single sort of one copy — what report emission needs (mean, p50, p95)
// without Summary's full order-statistic battery. The mean is accumulated
// over the sorted copy exactly like Summary's, so switching emission from
// Summary() to MeanQuantiles changes no reported value. Empty input yields
// NaNs throughout.
func (d *DelayRecorder) MeanQuantiles(ps ...float64) (mean float64, qs []float64) {
	if len(d.samples) == 0 {
		qs = make([]float64, len(ps))
		for i := range qs {
			qs[i] = math.NaN()
		}
		return math.NaN(), qs
	}
	cp := append([]float64(nil), d.samples...)
	sort.Float64s(cp)
	var w stats.Welford
	for _, x := range cp {
		w.Add(x)
	}
	return w.Mean(), stats.PercentilesSorted(cp, ps...)
}

// AccuracyTracker scores a binary classifier against ground truth over
// time, integrating the fraction of time the prediction is correct
// (the paper's accuracy metric in §8.2).
type AccuracyTracker struct {
	Warmup sim.Time // ignore decisions before this time

	lastT     sim.Time
	lastPred  bool
	lastTruth bool
	have      bool
	correct   sim.Time
	total     sim.Time
}

// Observe records the classifier state at time now. Call on every
// decision tick; time is credited to the previous state.
func (a *AccuracyTracker) Observe(now sim.Time, predictedElastic, trulyElastic bool) {
	if a.have && a.lastT >= a.Warmup {
		dt := now - a.lastT
		a.total += dt
		if a.lastPred == a.lastTruth {
			a.correct += dt
		}
	}
	a.lastT, a.lastPred, a.lastTruth, a.have = now, predictedElastic, trulyElastic, true
}

// Accuracy returns the time-weighted fraction of correct classification.
func (a *AccuracyTracker) Accuracy() float64 {
	if a.total == 0 {
		return 0
	}
	return a.correct.Seconds() / a.total.Seconds()
}

// TotalScored returns how much time has been scored.
func (a *AccuracyTracker) TotalScored() sim.Time { return a.total }

// Series is a simple (t, value) time series for figure output.
type Series struct {
	T []float64 // seconds
	V []float64
}

// Add appends a point.
func (s *Series) Add(t sim.Time, v float64) {
	s.T = append(s.T, t.Seconds())
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// Downsample returns every k-th point (k >= 1).
func (s *Series) Downsample(k int) Series {
	if k <= 1 {
		return *s
	}
	var out Series
	for i := 0; i < len(s.T); i += k {
		out.T = append(out.T, s.T[i])
		out.V = append(out.V, s.V[i])
	}
	return out
}

// FCTRecord is one flow completion.
type FCTRecord struct {
	SizeBytes int
	FCT       sim.Time
}

// FCTBuckets groups completion times by the paper's size buckets
// (Fig. 21) and reports the p95 per bucket.
func FCTBuckets(recs []FCTRecord) map[string]stats.Summary {
	buckets := map[string][]float64{}
	for _, r := range recs {
		var name string
		switch {
		case r.SizeBytes <= 15e3:
			name = "15KB"
		case r.SizeBytes <= 150e3:
			name = "150KB"
		case r.SizeBytes <= 1.5e6:
			name = "1.5MB"
		case r.SizeBytes <= 15e6:
			name = "15MB"
		default:
			name = "150MB"
		}
		buckets[name] = append(buckets[name], r.FCT.Seconds())
	}
	out := map[string]stats.Summary{}
	for k, v := range buckets {
		out[k] = stats.Summarize(v)
	}
	return out
}
