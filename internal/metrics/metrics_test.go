package metrics

import (
	"math"
	"testing"

	"nimbus/internal/sim"
)

func TestMeter(t *testing.T) {
	m := NewMeter(sim.Second)
	m.Add(500*sim.Millisecond, 125000)  // bin 0: 1 Mbit
	m.Add(1500*sim.Millisecond, 250000) // bin 1: 2 Mbit
	s := m.SeriesMbps()
	if len(s) != 2 || math.Abs(s[0]-1) > 1e-9 || math.Abs(s[1]-2) > 1e-9 {
		t.Fatalf("series = %v", s)
	}
	if got := m.MeanMbps(0, 2*sim.Second); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if got := m.MeanMbps(1*sim.Second, 2*sim.Second); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mean bin1 = %v", got)
	}
	if m.MeanMbps(5*sim.Second, 6*sim.Second) != 0 {
		t.Fatal("mean beyond data should be 0")
	}
}

func TestDelayRecorderReservoir(t *testing.T) {
	d := NewDelayRecorder(100, sim.NewRand(1))
	for i := 0; i < 10000; i++ {
		d.Add(sim.Time(i%50) * sim.Millisecond)
	}
	if len(d.Samples()) != 100 {
		t.Fatalf("reservoir size = %d", len(d.Samples()))
	}
	s := d.Summary()
	// Uniform over 0..49 ms: median near 24.5.
	if s.P50 < 10 || s.P50 > 40 {
		t.Fatalf("p50 = %v implausible for uniform 0-49", s.P50)
	}
}

func TestAccuracyTracker(t *testing.T) {
	var a AccuracyTracker
	// 10 s correct, 10 s wrong.
	a.Observe(0, true, true)
	a.Observe(10*sim.Second, true, false) // previous 10 s were correct
	a.Observe(20*sim.Second, false, false)
	if got := a.Accuracy(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
	if a.TotalScored() != 20*sim.Second {
		t.Fatalf("scored %v", a.TotalScored())
	}
}

func TestAccuracyTrackerWarmup(t *testing.T) {
	a := AccuracyTracker{Warmup: 10 * sim.Second}
	a.Observe(0, false, true) // wrong, but inside warmup
	a.Observe(10*sim.Second, true, true)
	a.Observe(20*sim.Second, true, true)
	if got := a.Accuracy(); got != 1 {
		t.Fatalf("accuracy = %v, want 1 (warmup excluded)", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(sim.Time(i)*sim.Second, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	d := s.Downsample(3)
	if d.Len() != 4 || d.V[1] != 3 {
		t.Fatalf("downsample = %+v", d)
	}
}

func TestFCTBuckets(t *testing.T) {
	recs := []FCTRecord{
		{SizeBytes: 10e3, FCT: 100 * sim.Millisecond},
		{SizeBytes: 12e3, FCT: 200 * sim.Millisecond},
		{SizeBytes: 100e3, FCT: 500 * sim.Millisecond},
		{SizeBytes: 1e6, FCT: 2 * sim.Second},
		{SizeBytes: 10e6, FCT: 5 * sim.Second},
		{SizeBytes: 100e6, FCT: 30 * sim.Second},
	}
	b := FCTBuckets(recs)
	if b["15KB"].N != 2 {
		t.Fatalf("15KB bucket n = %d", b["15KB"].N)
	}
	for _, name := range []string{"150KB", "1.5MB", "15MB", "150MB"} {
		if b[name].N != 1 {
			t.Fatalf("bucket %s n = %d", name, b[name].N)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10, 10}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal shares: %v", j)
	}
	if j := JainIndex([]float64{40, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("one-flow-takes-all: %v", j)
	}
	if j := JainIndex(nil); j != 0 {
		t.Fatalf("empty: %v", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 0 {
		t.Fatalf("all-zero: %v", j)
	}
	mid := JainIndex([]float64{30, 10})
	if mid <= 0.5 || mid >= 1 {
		t.Fatalf("skewed shares should land in (1/n, 1): %v", mid)
	}
}

func TestJSDUniform(t *testing.T) {
	if d := JSDUniform([]float64{5, 5, 5}); math.Abs(d) > 1e-12 {
		t.Fatalf("uniform shares: %v", d)
	}
	if d := JSDUniform(nil); d != 0 {
		t.Fatalf("empty: %v", d)
	}
	// One flow starved: strictly positive, below the 1-bit ceiling.
	d := JSDUniform([]float64{10, 10, 0})
	if d <= 0 || d >= 1 {
		t.Fatalf("starved flow: %v", d)
	}
	// Concentration hurts more than mild skew.
	if JSDUniform([]float64{100, 1, 1}) <= JSDUniform([]float64{40, 30, 30}) {
		t.Fatal("JSD should grow with concentration")
	}
	// Scale invariance: shares, not magnitudes.
	a, b := JSDUniform([]float64{3, 1}), JSDUniform([]float64{300, 100})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("not scale invariant: %v vs %v", a, b)
	}
}
