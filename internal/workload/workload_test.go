package workload

import (
	"math"
	"strings"
	"testing"

	"nimbus/internal/sim"

	// Register the baseline and nimbus schemes, so cc= parameters resolve.
	_ "nimbus/internal/cc"
	_ "nimbus/internal/core"
)

func TestParseSpecCanonical(t *testing.T) {
	cases := []struct{ in, want string }{
		{"bulk", "bulk"},
		{" bulk ", "bulk"},
		{"bulk()", "bulk"},
		{"bulk(load=24)", "bulk(load=24)"},
		{"bulk(load=24.0)", "bulk(load=24)"},
		{"bulk(cc=cubic, load=24)", "bulk(cc=cubic,load=24)"},
		{"web(load=12)", "web(load=12)"},
		{"video(rate=8,load=16)", "video(load=16,rate=8)"},
		{"trace(src=flash-crowd)", "trace(src=flash-crowd)"},
		{"bulk(max=50,alpha=1.1)", "bulk(alpha=1.1,max=50)"},
		{"bulk(cc=nimbus(pulse=0.25))", "bulk(cc=nimbus(pulse=0.25))"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got := sp.String(); got != c.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form must be a fixed point.
		sp2, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", sp.String(), err)
		}
		if sp2.String() != sp.String() {
			t.Errorf("canonical form not a fixed point: %q -> %q", sp.String(), sp2.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"ftp",
		"bulk(load=24",
		"bulk(load)",
		"bulk(load=x)",
		"bulk(load=0)",
		"bulk(load=-3)",
		"bulk(rate=4)",   // rate is video-only
		"web(alpha=1.2)", // alpha is bulk-only
		"trace",          // src required
		"trace(src=)",    // empty src
		"bulk(max=-1)",
		"bulk(xm=0)",
		"bulk(xm=5e7)",   // xm >= cap
		"bulk(cc=warp9)", // unknown scheme
		"video(rate=0)",
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", in)
		}
	}
}

func TestSizeDistMeanMatchesSamples(t *testing.T) {
	for _, d := range []SizeDist{
		{XM: 6e3, Cap: 3e7, Alpha: 1.2},
		{XM: 2e3, Cap: 1e6, Alpha: 1.3},
		{XM: 1e4, Cap: 1e7, Alpha: 1}, // alpha==1 special case
	} {
		rng := sim.NewRand(7)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := d.Sample(rng)
			if float64(x) < d.XM-1 || float64(x) > d.Cap {
				t.Fatalf("sample %d outside [%g, %g]", x, d.XM, d.Cap)
			}
			sum += float64(x)
		}
		mean, want := sum/n, d.MeanBytes()
		if math.Abs(mean-want)/want > 0.05 {
			t.Errorf("SizeDist%+v: sample mean %.0f vs analytic %.0f", d, mean, want)
		}
	}
}

func TestParseSessionTrace(t *testing.T) {
	tr, err := ParseSessionTrace("t", []byte("time_ms,bytes\n# c\n0,100\n\n5.5,200\n5.5,300\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) != 3 {
		t.Fatalf("got %d arrivals, want 3", len(tr.Arrivals))
	}
	if tr.Arrivals[1].At != sim.FromSeconds(0.0055) || tr.Arrivals[1].Bytes != 200 {
		t.Errorf("arrival 1 = %+v", tr.Arrivals[1])
	}

	for _, bad := range []string{
		"",
		"hello",
		"0,100\ntime_ms,bytes", // header after data
		"0,0",                  // zero bytes
		"0,-5",
		"-1,100",
		"nan,100",
		"1e13,100",     // beyond time bound
		"5,100\n4,100", // decreasing
	} {
		if _, err := ParseSessionTrace("t", []byte(bad)); err == nil {
			t.Errorf("ParseSessionTrace(%q): want error, got nil", bad)
		}
	}
}

func TestEmbeddedTraces(t *testing.T) {
	names := TraceNames()
	if len(names) == 0 {
		t.Fatal("no embedded traces")
	}
	for _, n := range names {
		tr, err := LoadSessionTrace(n)
		if err != nil {
			t.Fatalf("embedded trace %s: %v", n, err)
		}
		if len(tr.Arrivals) == 0 {
			t.Fatalf("embedded trace %s: empty", n)
		}
	}
	if _, err := LoadSessionTrace("no-such-trace"); err == nil {
		t.Error("LoadSessionTrace(no-such-trace): want error")
	} else if !strings.Contains(err.Error(), "flash-crowd") {
		t.Errorf("error should list available traces: %v", err)
	}
}

func TestStatsStreaming(t *testing.T) {
	st := NewStats(sim.NewRand(1))
	s := sim.FromSeconds
	st.flowStarted(s(0), true)
	st.flowStarted(s(1), false)
	if !st.ElasticActive() || st.Active() != 2 {
		t.Fatalf("active=%d elastic=%v", st.Active(), st.ElasticActive())
	}
	st.flowCompleted(s(2), 1e6, s(2), true)
	if st.ElasticActive() {
		t.Fatal("elastic flow completed but still marked active")
	}
	st.flowCompleted(s(4), 2e6, s(3), false)
	st.flowCapped()
	sm := st.Snapshot(s(10))
	if sm.Started != 2 || sm.Completed != 2 || sm.Capped != 1 {
		t.Fatalf("counts: %+v", sm)
	}
	// Active area: 1 flow over [0,1), 2 over [1,2), 1 over [2,4) → 5 flow-s / 10 s.
	if math.Abs(sm.MeanActive-0.5) > 1e-9 || sm.MaxActive != 2 {
		t.Errorf("MeanActive=%g MaxActive=%d", sm.MeanActive, sm.MaxActive)
	}
	// 3e6 bytes over 10 s = 2.4 Mbit/s.
	if math.Abs(sm.AggMbps-2.4) > 1e-9 {
		t.Errorf("AggMbps=%g", sm.AggMbps)
	}
	// Elastic over [0,2) of [0,10).
	if math.Abs(sm.ElasticFrac-0.2) > 1e-9 {
		t.Errorf("ElasticFrac=%g", sm.ElasticFrac)
	}
	if sm.FCTMeanMs != 2500 {
		t.Errorf("FCTMeanMs=%g", sm.FCTMeanMs)
	}
	if sm.Jain <= 0.9 || sm.Jain > 1 {
		t.Errorf("Jain=%g", sm.Jain)
	}
}

func FuzzParseSessionTrace(f *testing.F) {
	f.Add("time_ms,bytes\n0,100\n5,200\n")
	f.Add("# comment\n0,100")
	f.Add("0,100\n0,100\n1e3,5\n")
	f.Add("nan,1")
	f.Add("5,100\n4,100")
	f.Add(",")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseSessionTrace("fuzz", []byte(data))
		if err != nil {
			return
		}
		// Parsed traces must uphold the invariants the generator relies on.
		if len(tr.Arrivals) == 0 {
			t.Fatal("nil error but no arrivals")
		}
		last := sim.Time(-1)
		for _, a := range tr.Arrivals {
			if a.At < 0 || a.At < last {
				t.Fatalf("arrival times not non-decreasing: %v after %v", a.At, last)
			}
			if a.Bytes <= 0 {
				t.Fatalf("non-positive bytes %d", a.Bytes)
			}
			last = a.At
		}
	})
}
