package workload

import (
	"embed"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"nimbus/internal/sim"
)

// SessionArrival is one scheduled session: a flow of Bytes arriving At
// after the workload starts.
type SessionArrival struct {
	At    sim.Time
	Bytes int
}

// SessionTrace is a deterministic arrival schedule for the trace session
// model: instead of drawing arrival times and sizes from distributions,
// the generator replays exactly these sessions. Traces capture structured
// load a Poisson model can't — flash crowds, diurnal ramps, measured
// packet captures reduced to (start, bytes) pairs.
type SessionTrace struct {
	Name     string
	Arrivals []SessionArrival
}

// maxTraceLines bounds parsed traces; a line per session at this cap is
// far beyond any plausible scenario and keeps hostile inputs cheap.
const maxTraceLines = 1 << 20

// ParseSessionTrace parses the session-trace format: one
// "time_ms,bytes" pair per line, '#' comments and blank lines ignored,
// an optional "time_ms,bytes" header. Times must be non-negative and
// non-decreasing; sizes must be positive. name labels errors.
func ParseSessionTrace(name string, data []byte) (*SessionTrace, error) {
	tr := &SessionTrace{Name: name}
	lastMs := -1.0
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "time_ms,bytes" { // optional header
			if len(tr.Arrivals) == 0 {
				continue
			}
			return nil, fmt.Errorf("workload: trace %s:%d: header after data", name, ln+1)
		}
		tf, bf, found := strings.Cut(line, ",")
		if !found {
			return nil, fmt.Errorf("workload: trace %s:%d: want time_ms,bytes, got %q", name, ln+1, line)
		}
		tms, err := strconv.ParseFloat(strings.TrimSpace(tf), 64)
		if err != nil || tms < 0 || tms != tms || tms > 1e12 {
			return nil, fmt.Errorf("workload: trace %s:%d: bad time_ms %q", name, ln+1, tf)
		}
		bytes, err := strconv.Atoi(strings.TrimSpace(bf))
		if err != nil || bytes <= 0 {
			return nil, fmt.Errorf("workload: trace %s:%d: bad bytes %q", name, ln+1, bf)
		}
		if tms < lastMs {
			return nil, fmt.Errorf("workload: trace %s:%d: time %g ms before previous %g ms", name, ln+1, tms, lastMs)
		}
		lastMs = tms
		if len(tr.Arrivals) >= maxTraceLines {
			return nil, fmt.Errorf("workload: trace %s: more than %d sessions", name, maxTraceLines)
		}
		tr.Arrivals = append(tr.Arrivals, SessionArrival{At: sim.FromSeconds(tms / 1e3), Bytes: bytes})
	}
	if len(tr.Arrivals) == 0 {
		return nil, fmt.Errorf("workload: trace %s: no sessions", name)
	}
	return tr, nil
}

//go:embed straces/*.csv
var embeddedTraces embed.FS

// TraceNames lists the embedded session traces, sorted.
func TraceNames() []string {
	entries, _ := embeddedTraces.ReadDir("straces")
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".csv"))
	}
	sort.Strings(names)
	return names
}

// LoadSessionTrace resolves src as an embedded trace name first, then as
// a file path.
func LoadSessionTrace(src string) (*SessionTrace, error) {
	if data, err := embeddedTraces.ReadFile("straces/" + src + ".csv"); err == nil {
		return ParseSessionTrace(src, data)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return nil, fmt.Errorf("workload: trace %q: not an embedded trace (have %s) and %v",
			src, strings.Join(TraceNames(), ", "), err)
	}
	return ParseSessionTrace(src, data)
}
