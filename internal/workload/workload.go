// Package workload generates Internet-scale flow churn: sessions arriving
// and departing continuously on an emulated network, the load a
// production bottleneck actually serves. A Generator replays one parsed
// Spec — Poisson or trace-driven arrivals, bounded-Pareto flow sizes,
// bulk/web/video session models — as finite transport flows that attach
// to the network, run their congestion controller, deliver their bytes,
// and detach.
//
// Determinism: a Generator draws every random variate from the one
// *sim.Rand it is given (per-flow streams come from Rng.Split labels),
// so a scenario's churn is a pure function of its seed — byte-identical
// across runs and at any sweep worker count.
//
// Memory: per-flow results stream into Stats (Welford aggregation, a
// reservoir sample for percentiles, an online Jain index, time-integrated
// gauges), so a run's footprint is bounded by its peak concurrent flows,
// not by flows × time. See docs/architecture.md for where the package
// sits in the stack.
package workload

import (
	"fmt"

	"nimbus/internal/netem"
	scheme "nimbus/internal/scheme"
	"nimbus/internal/sim"
	"nimbus/internal/transport"
)

// ElasticThresholdBytes is the ground-truth elasticity rule (the paper's
// Fig. 12 convention, shared with internal/crosstraffic): flows larger
// than the initial congestion window of 10 packets are ACK-clocked over
// their lifetime and counted elastic.
const ElasticThresholdBytes = 10 * netem.DefaultMSS

// Web and video session-model constants. They are fixed (not Spec
// parameters) so the models stay comparable across experiments; the
// load, cc, and max knobs cover what churn experiments sweep.
var (
	// webObjSizes is the web model's per-object size distribution:
	// page objects are small-to-medium, without bulk's elephant tail.
	webObjSizes = SizeDist{XM: 2e3, Cap: 1e6, Alpha: 1.3}
)

const (
	webMinObjects  = 2                    // objects per page session: uniform 2..16
	webMaxObjects  = 16                   //
	webObjGapMean  = 30 * sim.Millisecond // mean stagger between object starts
	videoChunkTime = 4 * sim.Second       // chunk pacing interval
	videoMinChunks = 1                    // chunks per session: uniform 1..8
	videoMaxChunks = 8                    //
)

// Generator instantiates one workload Spec on a network: it owns the
// arrival process, spawns each session's flows, and streams their
// lifecycle into Stats. Construct with the fields set, then Start it.
type Generator struct {
	Net   *netem.Network
	Rng   *sim.Rand
	Spec  Spec
	RTT   sim.Time // base RTT of session flows
	Route string   // topology route the flows take ("" = default)
	// MuBps is the nominal bottleneck rate, handed to the session
	// flows' congestion-controller factory (schemes with µ oracles).
	MuBps float64
	// Stats receives the streaming per-flow measurements; NewStats is
	// used when nil.
	Stats *Stats
	// OnDeliver, when non-nil, observes every session-flow packet
	// delivery (for feeding rate meters or detectors).
	OnDeliver func(p *netem.Packet, now sim.Time)

	ccSpec  scheme.Spec
	trace   *SessionTrace
	stopped bool
	active  map[netem.FlowID]*sessionFlow
}

type sessionFlow struct {
	sender  *transport.Sender
	size    int
	started sim.Time
	elastic bool
}

// Start validates the generator's spec against its environment (the cc
// scheme, the session trace) and begins arrivals at time at.
func (g *Generator) Start(at sim.Time) error {
	cs, err := scheme.Parse(g.Spec.CC)
	if err != nil {
		return fmt.Errorf("workload: cc: %v", err)
	}
	if err := scheme.Validate(cs); err != nil {
		return fmt.Errorf("workload: cc: %v", err)
	}
	g.ccSpec = cs
	if g.Spec.Model == "trace" {
		if g.trace, err = LoadSessionTrace(g.Spec.Src); err != nil {
			return err
		}
	}
	if g.Stats == nil {
		g.Stats = NewStats(g.Rng.Split("wstats"))
	}
	g.active = make(map[netem.FlowID]*sessionFlow)
	switch g.Spec.Model {
	case "trace":
		for _, a := range g.trace.Arrivals {
			bytes := a.Bytes
			g.Net.Sch.At(at+a.At, func() { g.spawnFlow(bytes) })
		}
	default:
		g.Net.Sch.At(at, g.arrival)
	}
	return nil
}

// Stop halts new arrivals; active flows run to completion.
func (g *Generator) Stop() { g.stopped = true }

// ElasticActive reports whether any active session flow is elastic — the
// detector's ground truth (Stats.ElasticActive, surfaced for trackers).
func (g *Generator) ElasticActive() bool { return g.Stats.ElasticActive() }

// ActiveFlows returns the number of in-progress session flows.
func (g *Generator) ActiveFlows() int { return len(g.active) }

// meanSessionBytes is the analytic mean bytes per session, which turns
// the offered load into the Poisson session arrival rate.
func (g *Generator) meanSessionBytes() float64 {
	switch g.Spec.Model {
	case "web":
		meanObjs := float64(webMinObjects+webMaxObjects) / 2
		return meanObjs * webObjSizes.MeanBytes()
	case "video":
		meanChunks := float64(videoMinChunks+videoMaxChunks) / 2
		return meanChunks * g.videoChunkBytes()
	default: // bulk
		return g.sizes().MeanBytes()
	}
}

func (g *Generator) sizes() SizeDist {
	return SizeDist{XM: g.Spec.XM, Cap: g.Spec.Cap, Alpha: g.Spec.Alpha}
}

// videoChunkBytes is one chunk of the session bitrate: Rate Mbit/s over
// the chunk interval.
func (g *Generator) videoChunkBytes() float64 {
	return g.Spec.Rate * 1e6 * videoChunkTime.Seconds() / 8
}

// arrival spawns one session and schedules the next with an exponential
// gap sized so the long-run offered load matches Spec.Load.
func (g *Generator) arrival() {
	if g.stopped {
		return
	}
	g.spawnSession()
	meanGap := sim.FromSeconds(g.meanSessionBytes() * 8 / (g.Spec.Load * 1e6))
	g.Net.Sch.After(g.Rng.ExpTime(meanGap), g.arrival)
}

func (g *Generator) spawnSession() {
	switch g.Spec.Model {
	case "web":
		// A page session: several small objects, starts staggered by
		// think/parse gaps, all sizes and gaps drawn up front so the
		// variate order never depends on flow completion timing.
		nobj := webMinObjects + g.Rng.Intn(webMaxObjects-webMinObjects+1)
		at := sim.Time(0)
		for i := 0; i < nobj; i++ {
			size := webObjSizes.Sample(g.Rng)
			if i > 0 {
				at += g.Rng.ExpTime(webObjGapMean)
			}
			g.spawnFlowAfter(at, size)
		}
	case "video":
		// A streaming session: fixed-size chunks on a fixed cadence —
		// inelastic on average (the pacing caps the session's rate), but
		// each chunk individually fills the pipe while it lasts.
		nchunks := videoMinChunks + g.Rng.Intn(videoMaxChunks-videoMinChunks+1)
		size := int(g.videoChunkBytes())
		for i := 0; i < nchunks; i++ {
			g.spawnFlowAfter(sim.Time(i)*videoChunkTime, size)
		}
	default: // bulk
		g.spawnFlow(g.sizes().Sample(g.Rng))
	}
}

func (g *Generator) spawnFlowAfter(d sim.Time, size int) {
	if d == 0 {
		g.spawnFlow(size)
		return
	}
	g.Net.Sch.After(d, func() { g.spawnFlow(size) })
}

func (g *Generator) spawnFlow(size int) {
	if g.stopped {
		return
	}
	if g.Spec.Max > 0 && len(g.active) >= g.Spec.Max {
		g.Stats.flowCapped()
		return
	}
	ctrl, err := scheme.Build(g.ccSpec, scheme.BuildContext{MuBps: g.MuBps})
	if err != nil {
		// The spec was validated at Start; a build error here is a
		// harness bug, and runGuarded turns panics into error rows.
		panic(err)
	}
	now := g.Net.Sch.Now()
	sf := &sessionFlow{size: size, started: now, elastic: size > ElasticThresholdBytes}
	src := transport.NewFiniteFlow(size, func(done sim.Time) { g.finish(sf, done) })
	sf.sender = transport.NewSenderOn(g.Net, g.Route, g.RTT, ctrl, src, g.Rng.Split("sess"))
	if g.OnDeliver != nil {
		prev := sf.sender.OnDeliverHook
		tap := g.OnDeliver
		sf.sender.OnDeliverHook = func(p *netem.Packet, now sim.Time) {
			if prev != nil {
				prev(p, now)
			}
			tap(p, now)
		}
	}
	g.active[sf.sender.ID()] = sf
	g.Stats.flowStarted(now, sf.elastic)
	sf.sender.Start(now)
}

func (g *Generator) finish(sf *sessionFlow, done sim.Time) {
	sf.sender.Stop()
	g.Net.Detach(sf.sender.ID())
	delete(g.active, sf.sender.ID())
	g.Stats.flowCompleted(done, sf.size, done-sf.started, sf.elastic)
}
