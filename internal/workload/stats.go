package workload

import (
	"nimbus/internal/metrics"
	"nimbus/internal/sim"
	"nimbus/internal/stats"
)

// Stats accumulates per-flow measurements of a churn run online, so
// memory stays O(1) in flows × time: flow-completion times feed a
// Welford accumulator plus a reservoir sample (percentiles), per-flow
// rates feed an online Jain index, and the active-flow count is
// integrated over time rather than recorded as a series. A 10k-flow,
// minutes-long run costs the same memory as a 10-flow one.
type Stats struct {
	fctMs  stats.Welford          // flow completion time, ms
	fctRes *metrics.DelayRecorder // reservoir of FCTs for percentiles, ms
	rates  metrics.OnlineJain     // per-flow mean rate (bits/s) at completion
	sizes  stats.Welford          // completed flow sizes, bytes

	started, completed, capped int
	bytes                      float64 // delivered by completed flows

	// Active-flow gauge, integrated over time.
	activeNow, maxActive int
	lastT                sim.Time
	activeArea           float64 // flow-seconds

	// Elastic ground-truth accounting (time with ≥1 elastic flow active).
	elasticNow   int
	elasticSince sim.Time
	elasticTime  sim.Time
}

// NewStats returns an empty accumulator; rng seeds the FCT reservoir.
func NewStats(rng *sim.Rand) *Stats {
	return &Stats{fctRes: metrics.NewDelayRecorder(0, rng)}
}

func (st *Stats) tick(now sim.Time) {
	st.activeArea += float64(st.activeNow) * (now - st.lastT).Seconds()
	st.lastT = now
}

func (st *Stats) flowStarted(now sim.Time, elastic bool) {
	st.tick(now)
	st.started++
	st.activeNow++
	if st.activeNow > st.maxActive {
		st.maxActive = st.activeNow
	}
	if elastic {
		if st.elasticNow == 0 {
			st.elasticSince = now
		}
		st.elasticNow++
	}
}

func (st *Stats) flowCompleted(now sim.Time, size int, fct sim.Time, elastic bool) {
	st.tick(now)
	st.completed++
	st.activeNow--
	st.bytes += float64(size)
	st.sizes.Add(float64(size))
	st.fctMs.Add(fct.Millis())
	st.fctRes.Add(fct)
	if fct > 0 {
		st.rates.Add(float64(size) * 8 / fct.Seconds())
	}
	if elastic {
		st.elasticNow--
		if st.elasticNow == 0 {
			st.elasticTime += now - st.elasticSince
		}
	}
}

func (st *Stats) flowCapped() { st.capped++ }

// Active returns the number of currently active flows.
func (st *Stats) Active() int { return st.activeNow }

// ElasticActive reports whether any active flow is in the elastic class
// (size above ElasticThresholdBytes) — the ground truth an elasticity
// detector's mode decision is scored against.
func (st *Stats) ElasticActive() bool { return st.elasticNow > 0 }

// Summary is the streaming statistics of a churn run, evaluated at the
// horizon.
type Summary struct {
	Started, Completed, Capped int
	// AggMbps is the load completed flows actually delivered over [0, end).
	AggMbps float64
	// MeanActive and MaxActive describe the concurrent-flow population
	// (MeanActive is time-weighted).
	MeanActive float64
	MaxActive  int
	// FCT statistics over completed flows, milliseconds; percentiles
	// come from the reservoir sample.
	FCTMeanMs, FCTP50Ms, FCTP95Ms float64
	// MeanSizeBytes is the mean completed-flow size.
	MeanSizeBytes float64
	// Jain is Jain's fairness index over per-flow mean rates
	// (size/FCT) at completion — fairness across the session population,
	// complementing the long-lived flows' share-based index.
	Jain float64
	// ElasticFrac is the fraction of [0, end) during which at least one
	// elastic flow was active (the detector's ground-truth positive rate).
	ElasticFrac float64
}

// Snapshot evaluates the accumulators at the horizon end.
func (st *Stats) Snapshot(end sim.Time) Summary {
	st.tick(end)
	sm := Summary{
		Started:       st.started,
		Completed:     st.completed,
		Capped:        st.capped,
		MaxActive:     st.maxActive,
		MeanSizeBytes: st.sizes.Mean(),
		FCTMeanMs:     st.fctMs.Mean(),
		Jain:          st.rates.Index(),
	}
	if end > 0 {
		sm.AggMbps = st.bytes * 8 / end.Seconds() / 1e6
		sm.MeanActive = st.activeArea / end.Seconds()
		et := st.elasticTime
		if st.elasticNow > 0 {
			et += end - st.elasticSince
		}
		sm.ElasticFrac = et.Seconds() / end.Seconds()
	}
	if len(st.fctRes.Samples()) > 0 {
		_, qs := st.fctRes.MeanQuantiles(0.5, 0.95)
		sm.FCTP50Ms, sm.FCTP95Ms = qs[0], qs[1]
	}
	return sm
}
