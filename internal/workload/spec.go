package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	scheme "nimbus/internal/scheme"
)

// Spec is a parsed churn-workload spec: a session model plus typed
// parameters, written "model(k=v,...)" — "bulk(load=24)",
// "web(load=12,cc=bbr)", "video(load=16,rate=4)",
// "trace(src=flash-crowd)". Unset parameters take defaults and stay out
// of the canonical String(), mirroring scheme specs: the canonical form
// enters runner.Scenario.Key verbatim, so equivalent spellings must
// collapse to one string.
type Spec struct {
	// Model is the session model: "bulk" (single Poisson flows with
	// bounded-Pareto sizes), "web" (multi-object page sessions), "video"
	// (chunked streaming sessions), or "trace" (arrivals replayed from a
	// session trace).
	Model string
	// Load is the offered load in Mbit/s (bulk, web, video; default 12).
	Load float64
	// CC is the congestion-control scheme each session flow runs, as a
	// canonical scheme spec string (default "cubic").
	CC string
	// Max caps concurrently active flows; arrivals beyond it are dropped
	// and counted (0 = unlimited).
	Max int
	// Alpha, XM, Cap parameterize the bulk model's bounded-Pareto flow
	// sizes: shape, minimum bytes, maximum bytes.
	Alpha, XM, Cap float64
	// Rate is the video model's per-session bitrate in Mbit/s.
	Rate float64
	// Src names the trace model's session trace: an embedded name (see
	// TraceNames) or a time_ms,bytes file path.
	Src string

	set []string // explicitly-set parameter names, for String
}

// specDefaults are the parameter defaults every model starts from.
func specDefaults(model string) Spec {
	return Spec{
		Model: model,
		Load:  12,
		CC:    "cubic",
		Alpha: 1.2,
		XM:    6e3,
		Cap:   3e7,
		Rate:  4,
	}
}

// validParams lists the parameters each model accepts.
var validParams = map[string][]string{
	"bulk":  {"load", "cc", "max", "alpha", "xm", "cap"},
	"web":   {"load", "cc", "max"},
	"video": {"load", "cc", "max", "rate"},
	"trace": {"src", "cc", "max"},
}

// Models lists the session models, in documentation order.
func Models() []string { return []string{"bulk", "web", "video", "trace"} }

// ParseSpec parses and validates a workload spec string. The returned
// spec's String() is canonical: parameters sorted, defaults omitted,
// values normalized ("load=24.0" becomes "load=24").
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	model, body := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Spec{}, fmt.Errorf("workload: spec %q: missing closing parenthesis", s)
		}
		model, body = s[:i], s[i+1:len(s)-1]
	}
	model = strings.TrimSpace(model)
	valid, ok := validParams[model]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown session model %q (have %s)", model, strings.Join(Models(), ", "))
	}
	sp := specDefaults(model)
	for _, kv := range scheme.SplitTop(body, ',') {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			return Spec{}, fmt.Errorf("workload: spec %q: parameter %q is not k=v", s, kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !slicesContains(valid, k) {
			return Spec{}, fmt.Errorf("workload: model %s has no parameter %q (has %s)", model, k, strings.Join(valid, ", "))
		}
		if err := sp.setParam(k, v); err != nil {
			return Spec{}, fmt.Errorf("workload: spec %q: %v", s, err)
		}
		if !slicesContains(sp.set, k) {
			sp.set = append(sp.set, k)
		}
	}
	if err := sp.validate(); err != nil {
		return Spec{}, fmt.Errorf("workload: spec %q: %v", s, err)
	}
	return sp, nil
}

// MustParseSpec is ParseSpec for known-good specs; it panics on error.
func MustParseSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

func (sp *Spec) setParam(k, v string) error {
	parseF := func() (float64, error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("parameter %s: bad number %q", k, v)
		}
		return f, nil
	}
	var err error
	switch k {
	case "load":
		sp.Load, err = parseF()
	case "alpha":
		sp.Alpha, err = parseF()
	case "xm":
		sp.XM, err = parseF()
	case "cap":
		sp.Cap, err = parseF()
	case "rate":
		sp.Rate, err = parseF()
	case "max":
		sp.Max, err = strconv.Atoi(v)
		if err != nil {
			err = fmt.Errorf("parameter max: bad integer %q", v)
		}
	case "cc":
		cs, perr := scheme.Parse(v)
		if perr != nil {
			return perr
		}
		if perr := scheme.Validate(cs); perr != nil {
			return perr
		}
		sp.CC = cs.String()
	case "src":
		if v == "" {
			return fmt.Errorf("parameter src: empty")
		}
		sp.Src = v
	}
	return err
}

func (sp Spec) validate() error {
	if sp.Model == "trace" {
		if sp.Src == "" {
			return fmt.Errorf("model trace requires src=")
		}
	} else if sp.Load <= 0 {
		return fmt.Errorf("load %g must be positive", sp.Load)
	}
	if sp.Max < 0 {
		return fmt.Errorf("max %d must be non-negative", sp.Max)
	}
	if sp.Alpha <= 0 {
		return fmt.Errorf("alpha %g must be positive", sp.Alpha)
	}
	if sp.XM <= 0 || sp.Cap <= sp.XM {
		return fmt.Errorf("size bounds need 0 < xm (%g) < cap (%g)", sp.XM, sp.Cap)
	}
	if sp.Rate <= 0 {
		return fmt.Errorf("rate %g must be positive", sp.Rate)
	}
	return nil
}

// String returns the canonical spec: the model name alone when every
// parameter is default, otherwise "model(k=v,...)" with the explicitly
// set parameters sorted by name.
func (sp Spec) String() string {
	if len(sp.set) == 0 {
		return sp.Model
	}
	keys := append([]string(nil), sp.set...)
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+sp.paramString(k))
	}
	return sp.Model + "(" + strings.Join(parts, ",") + ")"
}

func (sp Spec) paramString(k string) string {
	g := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	switch k {
	case "load":
		return g(sp.Load)
	case "alpha":
		return g(sp.Alpha)
	case "xm":
		return g(sp.XM)
	case "cap":
		return g(sp.Cap)
	case "rate":
		return g(sp.Rate)
	case "max":
		return strconv.Itoa(sp.Max)
	case "cc":
		return sp.CC
	case "src":
		return sp.Src
	}
	return ""
}

func slicesContains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
