package workload

import (
	"math"

	"nimbus/internal/sim"
)

// SizeDist draws flow sizes from a bounded Pareto distribution on
// [XM, Cap] bytes with shape Alpha — the standard heavy-tailed model for
// Internet flow sizes: most flows are mice, most bytes belong to
// elephants, and the Cap bound keeps the mean finite (and the simulation
// horizon meaningful) even at shapes ≤ 1.
type SizeDist struct {
	XM, Cap float64 // minimum and maximum size, bytes
	Alpha   float64 // tail shape; smaller is heavier
}

// Sample draws one flow size by inverse-CDF, consuming one variate.
func (d SizeDist) Sample(rng *sim.Rand) int {
	u := rng.Float64()
	r := d.XM / d.Cap
	var x float64
	if d.Alpha == 1 {
		x = d.XM / (1 - u*(1-r))
	} else {
		x = d.XM / math.Pow(1-u*(1-math.Pow(r, d.Alpha)), 1/d.Alpha)
	}
	if x > d.Cap {
		x = d.Cap // guard float round-up at u → 1
	}
	return int(x)
}

// MeanBytes returns the distribution's analytic mean, used to convert an
// offered load into a Poisson arrival rate.
func (d SizeDist) MeanBytes() float64 {
	r := d.XM / d.Cap
	if d.Alpha == 1 {
		return d.XM * math.Log(d.Cap/d.XM) / (1 - r)
	}
	a := d.Alpha
	num := math.Pow(d.XM, a) * a / (a - 1) * (math.Pow(d.XM, 1-a) - math.Pow(d.Cap, 1-a))
	return num / (1 - math.Pow(r, a))
}
