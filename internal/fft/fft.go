// Package fft implements the discrete Fourier transforms the elasticity
// detector needs: an iterative radix-2 complex FFT, a real-input helper
// that returns one-sided magnitudes, and a Goertzel single-bin DFT used by
// Nimbus watcher flows that only need the response at two known
// frequencies. Only the standard library is used.
package fft

import (
	"math"
	"math/cmplx"
)

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place decimation-in-time radix-2 FFT of x. The
// length of x must be a power of two; FFT panics otherwise. The transform
// is unnormalized: IFFT(FFT(x)) == x.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fft: length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// IFFT computes the inverse FFT of x in place (normalized by 1/n).
func IFFT(x []complex128) {
	n := len(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
}

// Spectrum holds a one-sided magnitude spectrum of a real signal.
type Spectrum struct {
	// Mag[k] is the magnitude at frequency k*Resolution Hz, for
	// k = 0..N/2. Magnitudes are |X_k|/N scaled by 2 for k in (0, N/2)
	// so a unit-amplitude sinusoid at a bin frequency has magnitude ~1.
	Mag []float64
	// Resolution is the bin width in Hz.
	Resolution float64
	// N is the FFT length used.
	N int
}

// Analyze computes the one-sided magnitude spectrum of the real signal
// samples taken at sampleHz. The mean is removed first (the detector cares
// about fluctuations, not the DC rate), and the signal is zero-padded to
// the next power of two. It is a compatibility wrapper over a one-shot
// Plan; hot paths that analyze the same window size repeatedly should hold
// a Plan and call AnalyzeInto to skip the per-call table building and
// allocations.
func Analyze(samples []float64, sampleHz float64) Spectrum {
	if len(samples) == 0 {
		return Spectrum{}
	}
	return NewPlan(len(samples), sampleHz).AnalyzeInto(Spectrum{}, samples)
}

// BinFor returns the index of the bin closest to freq Hz.
func (s Spectrum) BinFor(freq float64) int {
	if s.Resolution == 0 {
		return 0
	}
	k := int(math.Round(freq / s.Resolution))
	if k < 0 {
		k = 0
	}
	if k >= len(s.Mag) {
		k = len(s.Mag) - 1
	}
	return k
}

// At returns the magnitude at the bin closest to freq Hz.
func (s Spectrum) At(freq float64) float64 {
	if len(s.Mag) == 0 {
		return 0
	}
	return s.Mag[s.BinFor(freq)]
}

// PeakAround returns the maximum magnitude among bins within +-width Hz of
// freq. The detector uses a small width to tolerate off-bin pulse
// frequencies.
func (s Spectrum) PeakAround(freq, width float64) float64 {
	if len(s.Mag) == 0 || s.Resolution == 0 {
		return 0
	}
	lo := s.BinFor(freq - width)
	hi := s.BinFor(freq + width)
	max := 0.0
	for k := lo; k <= hi; k++ {
		if s.Mag[k] > max {
			max = s.Mag[k]
		}
	}
	return max
}

// MaxInBand returns the maximum magnitude over bins with frequencies in
// the open interval (fLo, fHi).
func (s Spectrum) MaxInBand(fLo, fHi float64) float64 {
	max := 0.0
	for k := range s.Mag {
		f := float64(k) * s.Resolution
		if f > fLo && f < fHi {
			if s.Mag[k] > max {
				max = s.Mag[k]
			}
		}
	}
	return max
}

// Goertzel computes the magnitude of the DFT of samples at the single
// frequency freq Hz (samples taken at sampleHz), normalized like Analyze
// (mean removed, scaled by 2/N). It matches the FFT magnitude at bin
// frequencies and is much cheaper when only one or two bins are needed.
func Goertzel(samples []float64, sampleHz, freq float64) float64 {
	n := len(samples)
	if n == 0 || sampleHz <= 0 {
		return 0
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)
	w := 2 * math.Pi * freq / sampleHz
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range samples {
		s0 = v - mean + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return 2 * math.Sqrt(power) / float64(n)
}
