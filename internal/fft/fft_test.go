package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"nimbus/internal/sim"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 500: 512, 512: 512, 513: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,1,1,1] is [4,0,0,0].
	x := []complex128{1, 1, 1, 1}
	FFT(x)
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Fatalf("DC = %v", x[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(x[k]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", k, x[k])
		}
	}
	// FFT of a unit impulse is all ones.
	y := []complex128{1, 0, 0, 0, 0, 0, 0, 0}
	FFT(y)
	for k := range y {
		if cmplx.Abs(y[k]-1) > 1e-12 {
			t.Fatalf("impulse bin %d = %v", k, y[k])
		}
	}
}

func TestFFTNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestIFFTInverts(t *testing.T) {
	rng := sim.NewRand(1)
	x := make([]complex128, 256)
	orig := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), rng.Normal(0, 1))
		orig[i] = x[i]
	}
	FFT(x)
	IFFT(x)
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip failed at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

// Parseval's theorem: sum |x|^2 == (1/N) sum |X|^2.
func TestFFTParseval(t *testing.T) {
	rng := sim.NewRand(2)
	x := make([]complex128, 128)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.Normal(0, 1), 0)
		timeEnergy += real(x[i]) * real(x[i])
	}
	FFT(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(len(x))
	if math.Abs(timeEnergy-freqEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy)
	}
}

// Linearity property via quick.Check on small random vectors.
func TestFFTLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRand(seed)
		n := 64
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(rng.Normal(0, 1), 0)
			b[i] = complex(rng.Normal(0, 1), 0)
			sum[i] = a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeSinusoid(t *testing.T) {
	// A 5 Hz unit sinusoid sampled at 100 Hz for 512 samples (bin 25.6,
	// so energy splits across neighbouring bins; peak within 1 bin of
	// 5 Hz must still be dominant).
	sampleHz := 100.0
	n := 512
	samples := make([]float64, n)
	for i := range samples {
		tsec := float64(i) / sampleHz
		samples[i] = 10 + math.Sin(2*math.Pi*5*tsec) // DC offset removed by Analyze
	}
	spec := Analyze(samples, sampleHz)
	peak := spec.PeakAround(5, 2*spec.Resolution)
	if peak < 0.5 {
		t.Fatalf("5 Hz peak = %v, want >= 0.5 for unit sinusoid", peak)
	}
	// Energy away from 5 Hz should be much smaller.
	far := spec.PeakAround(20, spec.Resolution)
	if far > peak/4 {
		t.Fatalf("20 Hz magnitude %v too large vs peak %v", far, peak)
	}
	// DC must be ~zero (mean removed).
	if spec.Mag[0] > 1e-9 {
		t.Fatalf("DC = %v", spec.Mag[0])
	}
}

func TestAnalyzeBinFrequency(t *testing.T) {
	// Exact-bin sinusoid: 8 Hz at 128 samples/s over 128 samples -> bin 8.
	n := 128
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = 3 * math.Cos(2*math.Pi*8*float64(i)/128)
	}
	spec := Analyze(samples, 128)
	if got := spec.At(8); math.Abs(got-3) > 1e-9 {
		t.Fatalf("amplitude at 8 Hz = %v, want 3", got)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	spec := Analyze(nil, 100)
	if len(spec.Mag) != 0 {
		t.Fatal("expected empty spectrum")
	}
	if spec.At(5) != 0 || spec.PeakAround(5, 1) != 0 {
		t.Fatal("empty spectrum lookups should be 0")
	}
}

func TestMaxInBand(t *testing.T) {
	n := 128
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = math.Sin(2*math.Pi*8*float64(i)/128) + 0.5*math.Sin(2*math.Pi*12*float64(i)/128)
	}
	spec := Analyze(samples, 128)
	got := spec.MaxInBand(9, 15)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("MaxInBand(9,15) = %v, want 0.5", got)
	}
	// Band excluding both peaks.
	if spec.MaxInBand(20, 30) > 1e-9 {
		t.Fatal("empty band should be ~0")
	}
}

func TestGoertzelMatchesFFT(t *testing.T) {
	rng := sim.NewRand(3)
	n := 128
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = math.Sin(2*math.Pi*8*float64(i)/128) + 0.2*rng.Normal(0, 1)
	}
	spec := Analyze(samples, 128)
	for _, f := range []float64{4, 8, 16} {
		g := Goertzel(samples, 128, f)
		a := spec.At(f)
		if math.Abs(g-a) > 0.05*(a+0.01) {
			t.Fatalf("Goertzel(%v Hz) = %v, FFT = %v", f, g, a)
		}
	}
}

func TestGoertzelEdgeCases(t *testing.T) {
	if Goertzel(nil, 100, 5) != 0 {
		t.Fatal("empty input")
	}
	if Goertzel([]float64{1, 2}, 0, 5) != 0 {
		t.Fatal("zero sample rate")
	}
}

func TestSpectrumBinFor(t *testing.T) {
	spec := Spectrum{Mag: make([]float64, 257), Resolution: 100.0 / 512}
	if b := spec.BinFor(5); b != 26 { // 5 / 0.1953 = 25.6 -> 26
		t.Fatalf("BinFor(5) = %d", b)
	}
	if b := spec.BinFor(-3); b != 0 {
		t.Fatalf("BinFor(-3) = %d", b)
	}
	if b := spec.BinFor(1e9); b != 256 {
		t.Fatalf("BinFor(huge) = %d", b)
	}
}
