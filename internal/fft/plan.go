package fft

import (
	"math"
	"math/cmplx"
)

// Plan precomputes everything a fixed-size real-input spectrum analysis
// needs — the bit-reversal permutation and the per-stage twiddle factors —
// so the per-call work is just the butterflies and the magnitude fold.
// The tables are built with the same multiplicative recurrence FFT uses
// inline (w[0] = 1, w[k] = w[k-1] * wl), so every butterfly multiplies
// bit-identical values and a Plan-based transform reproduces FFT and
// Analyze exactly, bit for bit.
//
// A Plan owns scratch buffers and is not safe for concurrent use; give
// each goroutine (each simulation) its own.
type Plan struct {
	size     int     // FFT length: NextPow2 of the nominal sample count
	sampleHz float64 // sampling frequency of the input series
	rev      []int32 // bit-reversal permutation for size
	tw       [][]complex128
	buf      []complex128 // scratch transform input/output
}

// NewPlan returns a plan for analyzing windows of n real samples taken at
// sampleHz. The FFT length is NextPow2(n); AnalyzeInto accepts any sample
// count that pads to the same length (shorter warmup windows that pad to a
// smaller transform fall back to the generic Analyze path).
func NewPlan(n int, sampleHz float64) *Plan {
	if n < 1 {
		n = 1
	}
	size := NextPow2(n)
	p := &Plan{
		size:     size,
		sampleHz: sampleHz,
		rev:      make([]int32, size),
		buf:      make([]complex128, size),
	}
	// The permutation is the exact j-sequence FFT's swap loop walks.
	for i, j := 1, 0; i < size; i++ {
		bit := size >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		p.rev[i] = int32(j)
	}
	// One twiddle table per butterfly stage, built with the same
	// recurrence the inline FFT uses per block (it resets w at each block
	// start, so the k-th value is identical across blocks).
	for length := 2; length <= size; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		half := length / 2
		ws := make([]complex128, half)
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			ws[k] = w
			w *= wl
		}
		p.tw = append(p.tw, ws)
	}
	return p
}

// Size returns the plan's FFT length.
func (p *Plan) Size() int { return p.size }

// SampleHz returns the sampling frequency the plan was built for.
func (p *Plan) SampleHz() float64 { return p.sampleHz }

// Transform computes the in-place DIT radix-2 FFT of x using the
// precomputed tables. len(x) must equal Size; the output is bit-identical
// to FFT(x).
func (p *Plan) Transform(x []complex128) {
	if len(x) != p.size {
		panic("fft: Transform length does not match plan size")
	}
	for i := 1; i < p.size; i++ {
		j := int(p.rev[i])
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for li, ws := range p.tw {
		length := 2 << li
		half := length >> 1
		for start := 0; start < p.size; start += length {
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * ws[k]
				x[start+k] = u + v
				x[start+k+half] = u - v
			}
		}
	}
}

// AnalyzeInto computes the one-sided magnitude spectrum of samples exactly
// like Analyze (mean removal, zero-padding to the plan size, 2/N scaling),
// but writes the magnitudes into dst's buffer (grown only if too small)
// and runs the transform in the plan's scratch space, so steady-state
// calls allocate nothing. It returns the filled spectrum; dst's previous
// contents are overwritten. Sample counts that pad to a different FFT
// length than the plan's (short warmup windows) take the allocating
// Analyze path instead.
func (p *Plan) AnalyzeInto(dst Spectrum, samples []float64) Spectrum {
	spec, _ := p.AnalyzeMeanInto(dst, samples)
	return spec
}

// AnalyzeMeanInto is AnalyzeInto returning also the window mean the
// DC removal computed (a plain in-order summation over samples), so
// callers that need both — the detector's η guard — avoid a second pass.
func (p *Plan) AnalyzeMeanInto(dst Spectrum, samples []float64) (Spectrum, float64) {
	n := len(samples)
	if n == 0 {
		return Spectrum{}, 0
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)
	if NextPow2(n) != p.size {
		return Analyze(samples, p.sampleHz), mean
	}
	buf := p.buf
	for i, v := range samples {
		buf[i] = complex(v-mean, 0)
	}
	for i := n; i < p.size; i++ {
		buf[i] = 0
	}
	p.Transform(buf)
	half := p.size/2 + 1
	mag := dst.Mag
	if cap(mag) < half {
		mag = make([]float64, half)
	}
	mag = mag[:half]
	scale := 1 / float64(n) // normalize by true sample count, not padded size
	for k := 0; k < half; k++ {
		m := cmplx.Abs(buf[k]) * scale
		if k != 0 && k != p.size/2 {
			m *= 2
		}
		mag[k] = m
	}
	return Spectrum{
		Mag:        mag,
		Resolution: p.sampleHz / float64(p.size),
		N:          p.size,
	}, mean
}
