package fft

import (
	"math"
	"math/cmplx"
)

// RealPlan is the packed real-input counterpart of Plan: it computes the
// same one-sided magnitude spectrum from a real length-N window using one
// complex FFT of length N/2 plus an O(N) unpack pass, roughly halving the
// butterfly work. The trick is standard: pack adjacent real samples into
// complex points z[i] = y[2i] + i·y[2i+1], transform with the half-size
// plan (reusing Plan's bit-reversal and twiddle machinery), then split the
// result into the even/odd sub-spectra and recombine with one extra
// twiddle per output bin:
//
//	E[k] = (Z[k] + conj(Z[N/2-k])) / 2
//	O[k] = (Z[k] - conj(Z[N/2-k])) · (-i/2)
//	X[k] = E[k] + W^k · O[k],  W = e^(-2πi/N),  k = 0..N/2
//
// The magnitude fold (mean removal, zero padding, 1/n scaling, ×2 off the
// DC and Nyquist bins) matches Plan.AnalyzeMeanInto exactly, but the
// floating-point operations reach each X[k] in a different order than the
// full-size transform, so magnitudes agree only to rounding error (~1e-12
// relative), not bit-for-bit — which is why the detector keeps the packed
// path behind an explicit flag.
//
// Like Plan, a RealPlan owns scratch buffers and is not safe for
// concurrent use.
type RealPlan struct {
	size     int          // real FFT length: NextPow2 of the nominal sample count
	sampleHz float64      // sampling frequency of the input series
	half     *Plan        // complex plan of length size/2 for the packed points
	utw      []complex128 // unpack twiddles W^k, k = 0..size/2
	buf      []complex128 // scratch packed input/output, length size/2
}

// NewRealPlan returns a packed-real plan for analyzing windows of n real
// samples taken at sampleHz. The FFT length is NextPow2(n) (minimum 2, so
// the half-size complex plan exists); like Plan.AnalyzeInto, sample counts
// that pad to a different length fall back to the generic Analyze path.
func NewRealPlan(n int, sampleHz float64) *RealPlan {
	if n < 2 {
		n = 2
	}
	size := NextPow2(n)
	p := &RealPlan{
		size:     size,
		sampleHz: sampleHz,
		half:     NewPlan(size/2, sampleHz),
		utw:      make([]complex128, size/2+1),
		buf:      make([]complex128, size/2),
	}
	// Unpack twiddles, built with the same multiplicative recurrence the
	// stage tables use so repeated runs are deterministic.
	ang := -2 * math.Pi / float64(size)
	wl := cmplx.Rect(1, ang)
	w := complex(1, 0)
	for k := range p.utw {
		p.utw[k] = w
		w *= wl
	}
	return p
}

// Size returns the plan's real FFT length.
func (p *RealPlan) Size() int { return p.size }

// SampleHz returns the sampling frequency the plan was built for.
func (p *RealPlan) SampleHz() float64 { return p.sampleHz }

// AnalyzeInto computes the one-sided magnitude spectrum of samples with
// the same contract as Plan.AnalyzeInto — mean removal, zero padding to
// the plan size, 1/n scaling with the ×2 one-sided fold, magnitudes
// written into dst's buffer (grown only if too small) — via the packed
// half-size transform. Steady-state calls allocate nothing.
func (p *RealPlan) AnalyzeInto(dst Spectrum, samples []float64) Spectrum {
	spec, _ := p.AnalyzeMeanInto(dst, samples)
	return spec
}

// AnalyzeMeanInto is AnalyzeInto returning also the window mean the DC
// removal computed, mirroring Plan.AnalyzeMeanInto.
func (p *RealPlan) AnalyzeMeanInto(dst Spectrum, samples []float64) (Spectrum, float64) {
	n := len(samples)
	if n == 0 {
		return Spectrum{}, 0
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(n)
	if NextPow2(n) != p.size {
		return Analyze(samples, p.sampleHz), mean
	}
	// Pack adjacent mean-removed samples into complex points; the zero
	// padding beyond n packs to complex zeros.
	buf := p.buf
	half := p.size / 2
	i := 0
	for ; 2*i+1 < n; i++ {
		buf[i] = complex(samples[2*i]-mean, samples[2*i+1]-mean)
	}
	if 2*i < n { // odd sample count: the last sample pairs with padding
		buf[i] = complex(samples[2*i]-mean, 0)
		i++
	}
	for ; i < half; i++ {
		buf[i] = 0
	}
	p.half.Transform(buf)
	bins := half + 1
	mag := dst.Mag
	if cap(mag) < bins {
		mag = make([]float64, bins)
	}
	mag = mag[:bins]
	scale := 1 / float64(n) // normalize by true sample count, not padded size
	for k := 0; k < bins; k++ {
		// Z[k mod N/2] and conj(Z[(N/2-k) mod N/2]); both indices stay in
		// [0, N/2) because Z is periodic with period N/2.
		zk := buf[k&(half-1)]
		zc := cmplx.Conj(buf[(half-k)&(half-1)])
		even := (zk + zc) * 0.5
		odd := (zk - zc) * complex(0, -0.5)
		m := cmplx.Abs(even+p.utw[k]*odd) * scale
		if k != 0 && k != half {
			m *= 2
		}
		mag[k] = m
	}
	return Spectrum{
		Mag:        mag,
		Resolution: p.sampleHz / float64(p.size),
		N:          p.size,
	}, mean
}
