package fft

import (
	"encoding/binary"
	"math"
	"testing"

	"nimbus/internal/sim"
)

// realPlanTol is the documented equivalence bound between the packed
// real-input path and the full complex path: the two reach each output
// bin through differently-ordered floating-point operations, so the
// magnitudes agree to rounding error, not bit-for-bit.
const realPlanTol = 1e-9

// specClose compares two spectra bin by bin within realPlanTol relative
// to the spectrum's peak (tiny bins near zero carry absolute rounding
// noise from the mean removal, so a pure relative bound would be unfair).
func specClose(t *testing.T, got, want Spectrum, label string) {
	t.Helper()
	if len(got.Mag) != len(want.Mag) || got.Resolution != want.Resolution || got.N != want.N {
		t.Fatalf("%s: shape mismatch: got (%d,%v,%d) want (%d,%v,%d)",
			label, len(got.Mag), got.Resolution, got.N, len(want.Mag), want.Resolution, want.N)
	}
	ref := 0.0
	for _, m := range want.Mag {
		if m > ref {
			ref = m
		}
	}
	if ref == 0 {
		ref = 1
	}
	for k := range want.Mag {
		if d := math.Abs(got.Mag[k] - want.Mag[k]); d > realPlanTol*ref {
			t.Fatalf("%s bin %d: got %v want %v (|diff| %g > %g)",
				label, k, got.Mag[k], want.Mag[k], d, realPlanTol*ref)
		}
	}
}

// The packed real path must reproduce the complex path's spectrum within
// the documented tolerance across sizes, including odd counts, short
// windows that pad to the plan size, and the fallback path for counts
// that pad elsewhere.
func TestRealPlanMatchesPlanAcrossSizes(t *testing.T) {
	for _, n := range []int{2, 3, 8, 100, 256, 257, 300, 500, 512, 1024} {
		plan := NewPlan(n, 100)
		rplan := NewRealPlan(n, 100)
		if plan.Size() != rplan.Size() {
			t.Fatalf("n=%d: size mismatch: Plan %d RealPlan %d", n, plan.Size(), rplan.Size())
		}
		samples := planSignal(n)
		want := plan.AnalyzeInto(Spectrum{}, samples)
		got := rplan.AnalyzeInto(Spectrum{}, samples)
		specClose(t, got, want, "sized")
		// Shorter windows: same-pad counts use the packed path, others
		// fall back to Analyze exactly like Plan does.
		for _, m := range []int{1, n / 2, n - 1} {
			if m < 1 || m == n {
				continue
			}
			sub := samples[:m]
			specClose(t, rplan.AnalyzeInto(Spectrum{}, sub), plan.AnalyzeInto(Spectrum{}, sub), "short")
		}
	}
}

// Random-window equivalence: seeded noise windows, mean returned by both
// paths bit-identical (same in-order summation), spectra within tolerance.
func TestRealPlanRandomWindows(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := sim.NewRand(seed)
		n := 2 + rng.Intn(1000)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Normal(48e6, 12e6)
		}
		plan := NewPlan(n, 100)
		rplan := NewRealPlan(n, 100)
		want, wantMean := plan.AnalyzeMeanInto(Spectrum{}, samples)
		got, gotMean := rplan.AnalyzeMeanInto(Spectrum{}, samples)
		if gotMean != wantMean {
			t.Fatalf("seed=%d n=%d: mean mismatch: got %v want %v", seed, n, gotMean, wantMean)
		}
		specClose(t, got, want, "random")
	}
}

func TestRealPlanEmpty(t *testing.T) {
	spec := NewRealPlan(500, 100).AnalyzeInto(Spectrum{}, nil)
	if len(spec.Mag) != 0 {
		t.Fatal("expected empty spectrum for empty input")
	}
}

// Steady-state AnalyzeInto on the packed path must not allocate.
func TestRealPlanAnalyzeIntoAllocFree(t *testing.T) {
	rplan := NewRealPlan(500, 100)
	samples := planSignal(500)
	dst := rplan.AnalyzeInto(Spectrum{}, samples) // warm the dst buffer
	allocs := testing.AllocsPerRun(100, func() {
		dst = rplan.AnalyzeInto(dst, samples)
	})
	if allocs > 0 {
		t.Fatalf("AnalyzeInto allocates %.2f/op in steady state, want 0", allocs)
	}
	if dst.At(5) == 0 {
		t.Fatal("no signal at 5 Hz")
	}
}

// FuzzRealPlanEquivalence feeds arbitrary byte strings as real windows
// (8 bytes per sample, clamped to finite values) through both the packed
// and complex paths and requires tolerance-level agreement.
func FuzzRealPlanEquivalence(f *testing.F) {
	seed := make([]byte, 64*8)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint64(seed[i*8:], math.Float64bits(float64(i)*1e6))
	}
	f.Add(seed)
	f.Add(seed[:24])
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n < 2 {
			return
		}
		if n > 4096 {
			n = 4096
		}
		samples := make([]float64, n)
		for i := range samples {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				v = float64(i)
			}
			samples[i] = v
		}
		plan := NewPlan(n, 100)
		rplan := NewRealPlan(n, 100)
		want := plan.AnalyzeInto(Spectrum{}, samples)
		got := rplan.AnalyzeInto(Spectrum{}, samples)
		specClose(t, got, want, "fuzz")
	})
}

// BenchmarkRealPlanAnalyze mirrors BenchmarkPlanAnalyze on the packed
// path: a 500-sample window through a reusable RealPlan into a reused
// spectrum. Compare ns/op against BenchmarkPlanAnalyze for the rFFT win.
func BenchmarkRealPlanAnalyze(b *testing.B) {
	rplan := NewRealPlan(500, 100)
	samples := planSignal(500)
	var dst Spectrum
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = rplan.AnalyzeInto(dst, samples)
		if dst.At(5) == 0 {
			b.Fatal("no signal")
		}
	}
}
